#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "disparity/analyzer.hpp"
#include "helpers.hpp"

namespace ceta {
namespace {

/// One ECU, a long low-priority task and a short high-priority one with a
/// later offset — exercises non-preemptive blocking.
TaskGraph blocking_graph() {
  TaskGraph g;
  Task s;
  s.name = "S";
  s.period = Duration::ms(100);
  const TaskId sid = g.add_task(s);
  Task lo;
  lo.name = "low";
  lo.wcet = lo.bcet = Duration::ms(5);
  lo.period = Duration::ms(100);
  lo.ecu = 0;
  lo.priority = 1;
  const TaskId loid = g.add_task(lo);
  Task hi;
  hi.name = "high";
  hi.wcet = hi.bcet = Duration::ms(1);
  hi.period = Duration::ms(100);
  hi.offset = Duration::ms(1);
  hi.ecu = 0;
  hi.priority = 0;
  const TaskId hiid = g.add_task(hi);
  g.add_edge(sid, loid);
  g.add_edge(sid, hiid);
  g.validate();
  return g;
}

SimOptions traced(Duration duration) {
  SimOptions opt;
  opt.duration = duration;
  opt.record_trace = true;
  opt.exec_model = ExecTimeModel::kWorstCase;
  return opt;
}

TEST(Engine, PeriodicReleases) {
  const TaskGraph g = testing::simple_chain_graph();
  const SimResult res = Simulator(g, traced(Duration::ms(100))).run();
  // S and A: T = 10ms → 10 jobs each; B: T = 20ms → 5 jobs.
  EXPECT_EQ(res.jobs_finished[0], 10);
  EXPECT_EQ(res.jobs_finished[1], 10);
  EXPECT_EQ(res.jobs_finished[2], 5);
  // Releases at k·T.
  const auto& jobs = res.trace.tasks[1].jobs;
  ASSERT_EQ(jobs.size(), 10u);
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    EXPECT_EQ(jobs[k].release, Duration::ms(10) * static_cast<int>(k));
  }
}

TEST(Engine, OffsetShiftsReleases) {
  TaskGraph g = testing::simple_chain_graph();
  g.task(1).offset = Duration::ms(3);
  const SimResult res = Simulator(g, traced(Duration::ms(50))).run();
  const auto& jobs = res.trace.tasks[1].jobs;
  ASSERT_GE(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].release, Duration::ms(3));
  EXPECT_EQ(jobs[1].release, Duration::ms(13));
}

TEST(Engine, SourceJobsExecuteInstantly) {
  const TaskGraph g = testing::simple_chain_graph();
  const SimResult res = Simulator(g, traced(Duration::ms(50))).run();
  for (const JobRecord& j : res.trace.tasks[0].jobs) {
    EXPECT_EQ(j.release, j.start);
    EXPECT_EQ(j.start, j.finish);
  }
}

TEST(Engine, NonPreemptiveBlocking) {
  const TaskGraph g = blocking_graph();
  const SimResult res = Simulator(g, traced(Duration::ms(100))).run();
  // low starts at 0 and runs to 5ms; high released at 1ms must wait.
  const JobRecord& hi = res.trace.tasks[2].jobs.at(0);
  EXPECT_EQ(hi.release, Duration::ms(1));
  EXPECT_EQ(hi.start, Duration::ms(5));
  EXPECT_EQ(hi.finish, Duration::ms(6));
  EXPECT_EQ(res.max_response_time[2], Duration::ms(5));
}

TEST(Engine, PriorityOrderAtSimultaneousRelease) {
  TaskGraph g = blocking_graph();
  g.task(2).offset = Duration::zero();  // both ready at t = 0
  const SimResult res = Simulator(g, traced(Duration::ms(100))).run();
  const JobRecord& hi = res.trace.tasks[2].jobs.at(0);
  const JobRecord& lo = res.trace.tasks[1].jobs.at(0);
  EXPECT_EQ(hi.start, Duration::zero());
  EXPECT_EQ(lo.start, Duration::ms(1));  // after high finishes
}

TEST(Engine, ImplicitReadAtStartNotAtRelease) {
  // high is blocked from 1ms to 5ms; a fresh source sample arrives at 4ms
  // (source period 4ms) and must be the one high reads when it starts.
  TaskGraph g;
  Task s;
  s.name = "S";
  s.period = Duration::ms(4);
  const TaskId sid = g.add_task(s);
  Task lo;
  lo.name = "low";
  lo.wcet = lo.bcet = Duration::ms(5);
  lo.period = Duration::ms(1000);
  lo.ecu = 0;
  lo.priority = 1;
  const TaskId loid = g.add_task(lo);
  Task hi;
  hi.name = "high";
  hi.wcet = hi.bcet = Duration::ms(1);
  hi.period = Duration::ms(1000);
  hi.offset = Duration::ms(1);
  hi.ecu = 0;
  hi.priority = 0;
  const TaskId hiid = g.add_task(hi);
  g.add_edge(sid, hiid);
  g.add_edge(sid, loid);
  g.validate();

  const SimResult res = Simulator(g, traced(Duration::ms(20))).run();
  const JobRecord& hij = res.trace.tasks[hiid].jobs.at(0);
  EXPECT_EQ(hij.start, Duration::ms(5));
  ASSERT_EQ(hij.reads.size(), 1u);
  EXPECT_EQ(hij.reads[0].producer_release, Duration::ms(4));
}

TEST(Engine, SameInstantWriteVisibleToStart) {
  // Source releases at t=0 and the consumer also starts at t=0: the token
  // "finishes no later than the start" and must be readable.
  const TaskGraph g = testing::simple_chain_graph();
  const SimResult res = Simulator(g, traced(Duration::ms(30))).run();
  const JobRecord& a0 = res.trace.tasks[1].jobs.at(0);
  EXPECT_EQ(a0.start, Duration::zero());
  ASSERT_EQ(a0.reads.size(), 1u);
  EXPECT_EQ(a0.reads[0].producer_job, 0);
  EXPECT_EQ(a0.reads[0].producer_release, Duration::zero());
}

TEST(Engine, RegisterKeepsLatestToken) {
  // Slow consumer (T=20) of a fast source (T=10) reads the newest sample.
  const TaskGraph g = testing::simple_chain_graph();
  const SimResult res = Simulator(g, traced(Duration::ms(100))).run();
  // B@k releases at 20k; at its start the latest finished A job is the one
  // released at 20k (A runs 1ms from 20k; B starts after A finishes...).
  // Instead of re-deriving exact pipeline timing, assert monotone
  // freshness: each B job reads an A token no older than one A period
  // before its start.
  for (const JobRecord& j : res.trace.tasks[2].jobs) {
    ASSERT_EQ(j.reads.size(), 1u);
    if (j.reads[0].producer_job < 0) continue;
    EXPECT_GE(j.reads[0].producer_release, j.start - Duration::ms(10));
    EXPECT_LE(j.reads[0].producer_release, j.start);
  }
}

TEST(Engine, FifoBufferDelaysData) {
  // Consumer with a FIFO of 3 on its input reads the sample from two
  // producer periods earlier (steady state).
  TaskGraph g;
  Task s;
  s.name = "S";
  s.period = Duration::ms(10);
  const TaskId sid = g.add_task(s);
  Task a;
  a.name = "A";
  a.wcet = a.bcet = Duration::ms(1);
  a.period = Duration::ms(10);
  a.offset = Duration::ms(5);
  a.ecu = 0;
  a.priority = 0;
  const TaskId aid = g.add_task(a);
  g.add_edge(sid, aid, ChannelSpec{3});
  g.validate();

  const SimResult res = Simulator(g, traced(Duration::ms(200))).run();
  for (const JobRecord& j : res.trace.tasks[aid].jobs) {
    if (j.release < Duration::ms(50)) continue;  // let the FIFO fill
    ASSERT_EQ(j.reads.size(), 1u);
    // A@t reads S token from floor-to-period(t) − 20ms.
    EXPECT_EQ(j.reads[0].producer_release,
              j.release - Duration::ms(5) - Duration::ms(20));
  }
}

TEST(Engine, DisparityMeasuredAtJoin) {
  // Fork-join with branches of different rates: the slow branch (T=40ms)
  // holds source samples older than the fast branch's (T=20ms), so sink
  // jobs see a positive disparity, bounded by the Theorem 2 analysis.
  TaskGraph g = testing::diamond_graph();
  g.task(3).period = Duration::ms(40);  // slow down branch D
  g.validate();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const Duration bound = analyze_time_disparity(g, 4, rtm).worst_case;

  SimOptions opt = traced(Duration::s(2));
  const SimResult res = Simulator(g, opt).run();
  EXPECT_GT(res.jobs_observed[4], 0);
  EXPECT_GT(res.max_disparity[4], Duration::zero());
  EXPECT_LE(res.max_disparity[4], bound);
}

TEST(Engine, WarmupExcludesEarlyJobs) {
  const TaskGraph g = testing::diamond_graph();
  SimOptions opt;
  opt.duration = Duration::ms(400);
  opt.exec_model = ExecTimeModel::kWorstCase;
  const SimResult all = Simulator(g, opt).run();
  opt.warmup = Duration::ms(200);
  const SimResult late = Simulator(g, opt).run();
  EXPECT_LT(late.jobs_observed[4], all.jobs_observed[4]);
  EXPECT_LE(late.max_disparity[4], all.max_disparity[4]);
}

TEST(Engine, DeterministicPerSeed) {
  const TaskGraph g = testing::random_dag_graph(10, 2, 5);
  SimOptions opt;
  opt.duration = Duration::ms(500);
  opt.seed = 99;
  const SimResult a = Simulator(g, opt).run();
  const SimResult b = Simulator(g, opt).run();
  EXPECT_EQ(a.max_disparity, b.max_disparity);
  EXPECT_EQ(a.jobs_finished, b.jobs_finished);
}

TEST(Engine, ResponseTimesRespectRtaBound) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const TaskGraph g = testing::random_dag_graph(12, 3, seed + 40);
    const ResponseTimeMap rtm = testing::response_times_of(g);
    SimOptions opt;
    opt.duration = Duration::s(1);
    opt.seed = seed;
    const SimResult res = Simulator(g, opt).run();
    for (TaskId id = 0; id < g.num_tasks(); ++id) {
      EXPECT_LE(res.max_response_time[id], rtm[id])
          << "seed " << seed << " task " << g.task(id).name;
    }
  }
}

TEST(Engine, BestCaseModelRunsFaster) {
  TaskGraph g = testing::simple_chain_graph();
  g.task(1).bcet = Duration::us(100);  // spread [0.1, 1]ms
  SimOptions opt;
  opt.duration = Duration::ms(200);
  opt.record_trace = true;
  opt.exec_model = ExecTimeModel::kBestCase;
  const SimResult bc = Simulator(g, opt).run();
  for (const JobRecord& j : bc.trace.tasks[1].jobs) {
    EXPECT_EQ(j.finish - j.start, Duration::us(100));
  }
  opt.exec_model = ExecTimeModel::kWorstCase;
  const SimResult wc = Simulator(g, opt).run();
  for (const JobRecord& j : wc.trace.tasks[1].jobs) {
    EXPECT_EQ(j.finish - j.start, Duration::ms(1));
  }
}

TEST(Engine, UniformModelStaysInRange) {
  TaskGraph g = testing::simple_chain_graph();
  g.task(1).bcet = Duration::us(200);
  SimOptions opt;
  opt.duration = Duration::ms(500);
  opt.record_trace = true;
  opt.exec_model = ExecTimeModel::kUniform;
  const SimResult res = Simulator(g, opt).run();
  bool varied = false;
  Duration first;
  bool have_first = false;
  for (const JobRecord& j : res.trace.tasks[1].jobs) {
    const Duration e = j.finish - j.start;
    EXPECT_GE(e, Duration::us(200));
    EXPECT_LE(e, Duration::ms(1));
    if (!have_first) {
      first = e;
      have_first = true;
    } else if (e != first) {
      varied = true;
    }
  }
  EXPECT_TRUE(varied);
}

TEST(Engine, CustomExecHook) {
  TaskGraph g = testing::simple_chain_graph();
  g.task(1).bcet = Duration::us(1);
  SimOptions opt;
  opt.duration = Duration::ms(100);
  opt.record_trace = true;
  opt.exec_model = ExecTimeModel::kCustom;
  opt.exec_hook = [](const Task& t, std::int64_t job, Rng&) {
    // Alternate between BCET and WCET per job index.
    return (job % 2 == 0) ? t.bcet : t.wcet;
  };
  const SimResult res = Simulator(g, opt).run();
  const auto& jobs = res.trace.tasks[1].jobs;
  ASSERT_GE(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].finish - jobs[0].start, Duration::us(1));
  EXPECT_EQ(jobs[1].finish - jobs[1].start, Duration::ms(1));
}

TEST(Engine, CustomHookOutOfRangeRejected) {
  TaskGraph g = testing::simple_chain_graph();
  SimOptions opt;
  opt.duration = Duration::ms(50);
  opt.exec_model = ExecTimeModel::kCustom;
  opt.exec_hook = [](const Task& t, std::int64_t, Rng&) {
    return t.wcet + Duration::ns(1);
  };
  EXPECT_THROW(Simulator(g, opt).run(), PreconditionError);
}

TEST(Engine, JobCapGuards) {
  const TaskGraph g = testing::simple_chain_graph();
  SimOptions opt;
  opt.duration = Duration::s(10);
  opt.max_jobs = 100;
  EXPECT_THROW(Simulator(g, opt).run(), CapacityError);
}

TEST(Engine, OptionValidation) {
  // SimOptions::validate() rejects nonsensical combinations with
  // InvalidOptionsError before any simulation state exists; the same gate
  // covers the Simulator ctor, the simulate() shim and the Monte-Carlo
  // driver.
  const TaskGraph g = testing::simple_chain_graph();
  SimOptions opt;
  opt.duration = Duration::zero();
  EXPECT_THROW(Simulator(g, opt), InvalidOptionsError);
  EXPECT_THROW(simulate(g, opt), InvalidOptionsError);
  opt.duration = Duration::ms(10);
  opt.warmup = Duration::ms(10);
  EXPECT_THROW(Simulator(g, opt), InvalidOptionsError);
  opt.warmup = Duration::ms(-1);
  EXPECT_THROW(Simulator(g, opt), InvalidOptionsError);
  opt.warmup = Duration::zero();
  opt.max_jobs = 0;
  EXPECT_THROW(Simulator(g, opt), InvalidOptionsError);
  opt.max_jobs = 1000;
  opt.exec_model = ExecTimeModel::kCustom;  // no hook
  EXPECT_THROW(Simulator(g, opt), InvalidOptionsError);
  opt.exec_model = ExecTimeModel::kUniform;
  opt.exec_hook = [](const Task& t, std::int64_t, Rng&) { return t.wcet; };
  EXPECT_THROW(Simulator(g, opt), InvalidOptionsError);  // ignored hook
  opt.exec_hook = {};
  EXPECT_NO_THROW(Simulator(g, opt));
}

TEST(Engine, ShimBitIdenticalToSimulator) {
  // The deprecated simulate() entry point is a thin wrapper over
  // Simulator and must stay field-for-field identical to it (the only
  // remaining caller of simulate() is this test).
  const TaskGraph g = testing::random_dag_graph(10, 3, 17);
  SimOptions opt;
  opt.duration = Duration::ms(300);
  opt.seed = 1234;
  opt.record_trace = true;
  const SimResult via_shim = simulate(g, opt);
  const SimResult via_api = Simulator(g, opt).run();
  EXPECT_EQ(via_shim.max_disparity, via_api.max_disparity);
  EXPECT_EQ(via_shim.jobs_observed, via_api.jobs_observed);
  EXPECT_EQ(via_shim.jobs_finished, via_api.jobs_finished);
  EXPECT_EQ(via_shim.max_response_time, via_api.max_response_time);
  EXPECT_EQ(via_shim.preemptions, via_api.preemptions);
  ASSERT_EQ(via_shim.trace.tasks.size(), via_api.trace.tasks.size());
  for (std::size_t t = 0; t < via_shim.trace.tasks.size(); ++t) {
    const auto& a = via_shim.trace.tasks[t].jobs;
    const auto& b = via_api.trace.tasks[t].jobs;
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].index, b[i].index);
      EXPECT_EQ(a[i].release, b[i].release);
      EXPECT_EQ(a[i].start, b[i].start);
      EXPECT_EQ(a[i].finish, b[i].finish);
    }
  }
}

TEST(Engine, InvalidGraphRejected) {
  TaskGraph g;  // empty
  EXPECT_THROW(Simulator(g, SimOptions{}).run(), PreconditionError);
}

}  // namespace
}  // namespace ceta
