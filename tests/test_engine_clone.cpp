// AnalysisEngine::clone(): deep, independent copies with warm caches.
//
// The explorer's parallelism rests on three clone guarantees
// (analysis_engine.hpp):
//  1. Query parity — every memoized query of a fresh clone is
//     bit-identical to the parent's, and the clone's caches are *warm*
//     (the first post-clone query is a hit, not a recompute).
//  2. Mutation isolation — commits on the clone never invalidate the
//     parent and vice versa; each side stays field-identical to a fresh
//     engine over its own graph.
//  3. Concurrency — clone() is a const query; N clones may be built and
//     queried concurrently with parent reads (run this file under
//     -DCETA_SANITIZE=thread too).

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "engine/analysis_engine.hpp"
#include "graph/paths.hpp"
#include "helpers.hpp"

namespace ceta {
namespace {

using ceta::testing::diamond_graph;
using ceta::testing::random_dag_graph;
using ceta::testing::random_two_chain_graph;
using ceta::testing::response_times_of;

/// Every memoized query surface at once, for cheap parity asserts.
struct QueryDigest {
  ResponseTimeMap rtm;
  DisparityReport disparity;
  std::size_t chain_count = 0;
  Duration max_data_age;

  static QueryDigest of(AnalysisEngine& e, TaskId sink) {
    QueryDigest d;
    d.rtm = e.response_times();
    DisparityOptions opt;
    opt.keep_pairs = KeepPairs::kWorstOnly;
    d.disparity = e.disparity(sink, opt);
    const std::vector<Path>& chains = e.chains(sink);
    d.chain_count = chains.size();
    d.max_data_age = Duration::zero();
    for (const Path& c : chains) {
      const LatencyReport lr = e.latency(c);
      if (lr.max_data_age > d.max_data_age) d.max_data_age = lr.max_data_age;
    }
    return d;
  }
};

void expect_equal(const QueryDigest& a, const QueryDigest& b) {
  EXPECT_EQ(a.rtm, b.rtm);
  EXPECT_EQ(a.disparity.worst_case, b.disparity.worst_case);
  EXPECT_EQ(a.disparity.chain_count, b.disparity.chain_count);
  EXPECT_EQ(a.chain_count, b.chain_count);
  EXPECT_EQ(a.max_data_age, b.max_data_age);
}

TEST(EngineClone, QueriesBitIdenticalAndCachesWarm) {
  const TaskGraph g = random_dag_graph(12, 3, 2024);
  const TaskId sink = g.sinks().front();
  AnalysisEngine parent(g);
  const QueryDigest before = QueryDigest::of(parent, sink);

  const std::unique_ptr<AnalysisEngine> clone = parent.clone();
  const EngineCacheStats at_birth = clone->cache_stats();
  const QueryDigest cloned = QueryDigest::of(*clone, sink);
  expect_equal(before, cloned);

  // The copied caches must serve the clone's first queries: zero fresh RTA
  // runs, at least one report/chain-set hit, and not a single miss beyond
  // what the parent had already paid.
  const EngineCacheStats warmed = clone->cache_stats();
  EXPECT_EQ(warmed.rta_runs, at_birth.rta_runs);
  EXPECT_GT(warmed.report_hits, at_birth.report_hits);
  EXPECT_GT(warmed.chain_set_hits, at_birth.chain_set_hits);
  EXPECT_EQ(warmed.report_misses, at_birth.report_misses);
  EXPECT_EQ(warmed.chain_set_misses, at_birth.chain_set_misses);
}

TEST(EngineClone, MetricsRegistryStartsFresh) {
  AnalysisEngine parent(diamond_graph());
  (void)parent.disparity(4);
  const std::unique_ptr<AnalysisEngine> clone = parent.clone();
  // Parent counters are non-zero; the clone's registry starts at zero and
  // the two never share counters afterwards.
  EXPECT_FALSE(parent.metrics_registry().snapshot().counters.empty());
  for (const auto& [name, value] :
       clone->metrics_registry().snapshot().counters) {
    EXPECT_EQ(value, 0u) << name;
  }
  (void)clone->disparity(4);
  const auto parent_snap = parent.metrics_registry().snapshot();
  (void)clone->disparity(4);
  EXPECT_EQ(parent.metrics_registry().snapshot().counters,
            parent_snap.counters);
}

TEST(EngineClone, CloneMutationsNeverTouchTheParent) {
  const TaskGraph g = random_two_chain_graph(5, 3, 77);
  const TaskId sink = g.sinks().front();
  AnalysisEngine parent(g);
  const QueryDigest before = QueryDigest::of(parent, sink);

  const std::unique_ptr<AnalysisEngine> clone = parent.clone();
  {
    const Edge& e = clone->graph().edges().front();
    AnalysisEngine::Transaction txn(*clone);
    txn.set_buffer(e.from, e.to, 4);
    txn.commit();
  }
  EXPECT_EQ(clone->graph().edges().front().channel.buffer_size, 4);
  EXPECT_EQ(parent.graph().edges().front().channel.buffer_size, 1);

  // Parent queries after the clone's commit: all hits (nothing was
  // invalidated), same values as before the clone existed.
  const EngineCacheStats pre = parent.cache_stats();
  const QueryDigest after = QueryDigest::of(parent, sink);
  expect_equal(before, after);
  const EngineCacheStats post = parent.cache_stats();
  EXPECT_EQ(post.report_misses, pre.report_misses);
  EXPECT_EQ(post.report_stale, pre.report_stale);

  // And the mutated clone matches a fresh engine over its mutated graph.
  AnalysisEngine fresh(clone->graph());
  expect_equal(QueryDigest::of(*clone, sink), QueryDigest::of(fresh, sink));
}

TEST(EngineClone, ParentMutationsNeverTouchTheClone) {
  const TaskGraph g = random_two_chain_graph(5, 3, 78);
  const TaskId sink = g.sinks().front();
  AnalysisEngine parent(g);
  (void)QueryDigest::of(parent, sink);

  const std::unique_ptr<AnalysisEngine> clone = parent.clone();
  const QueryDigest before = QueryDigest::of(*clone, sink);
  {
    const Edge& e = parent.graph().edges().front();
    AnalysisEngine::Transaction txn(parent);
    txn.set_buffer(e.from, e.to, 3);
    txn.commit();
  }
  const EngineCacheStats pre = clone->cache_stats();
  const QueryDigest after = QueryDigest::of(*clone, sink);
  expect_equal(before, after);
  const EngineCacheStats post = clone->cache_stats();
  EXPECT_EQ(post.report_stale, pre.report_stale);
  EXPECT_EQ(post.chain_set_stale, pre.chain_set_stale);
}

TEST(EngineClone, ExternalRtmModeClones) {
  const TaskGraph g = diamond_graph();
  const ResponseTimeMap rtm = response_times_of(g);
  AnalysisEngine parent(g, rtm);
  EXPECT_THROW((void)parent.rta(), PreconditionError);

  const std::unique_ptr<AnalysisEngine> clone = parent.clone();
  EXPECT_THROW((void)clone->rta(), PreconditionError);
  EXPECT_EQ(clone->response_times(), rtm);
  EXPECT_EQ(clone->disparity(4).worst_case, parent.disparity(4).worst_case);
}

TEST(EngineClone, ManyClonesQueryConcurrently) {
  // TSan target: build clones while the parent is being read, then hammer
  // independent queries from every clone at once.  Each clone also commits
  // a private mutation, so the test fails loudly if any cache state is
  // accidentally shared.
  const TaskGraph g = random_dag_graph(12, 3, 4096);
  const TaskId sink = g.sinks().front();
  AnalysisEngine parent(g);
  const QueryDigest base = QueryDigest::of(parent, sink);

  constexpr int kClones = 4;
  std::vector<std::unique_ptr<AnalysisEngine>> clones(kClones);
  {
    std::vector<std::thread> workers;
    workers.emplace_back([&] {
      for (int i = 0; i < 50; ++i) (void)parent.disparity(sink);
    });
    for (int c = 0; c < kClones; ++c) {
      workers.emplace_back([&, c] { clones[c] = parent.clone(); });
    }
    for (std::thread& t : workers) t.join();
  }

  std::vector<QueryDigest> digests(kClones);
  {
    std::vector<std::thread> workers;
    for (int c = 0; c < kClones; ++c) {
      workers.emplace_back([&, c] {
        AnalysisEngine& e = *clones[c];
        const Edge& edge = e.graph().edges().front();
        AnalysisEngine::Transaction txn(e);
        txn.set_buffer(edge.from, edge.to, 2 + c);
        txn.commit();
        digests[c] = QueryDigest::of(e, sink);
      });
    }
    for (std::thread& t : workers) t.join();
  }
  for (int c = 0; c < kClones; ++c) {
    EXPECT_EQ(clones[c]->graph().edges().front().channel.buffer_size, 2 + c);
    AnalysisEngine fresh(clones[c]->graph());
    expect_equal(digests[c], QueryDigest::of(fresh, sink));
  }
  // The parent never saw any of it.
  expect_equal(base, QueryDigest::of(parent, sink));
}

}  // namespace
}  // namespace ceta
