// Shared fixtures for the ceta test suite.
//
// The fixture graphs come with hand-computed scheduling and bound values
// (documented at the definition sites) so tests can assert exact numbers.

#pragma once

#include <cstdint>

#include "graph/task_graph.hpp"
#include "sched/npfp_rta.hpp"

namespace ceta::testing {

/// Linear chain  S → A → B  on one ECU.
///
///   S: source, T = 10ms
///   A: W = B = 1ms, T = 10ms, ecu 0, prio 0
///   B: W = B = 1ms, T = 20ms, ecu 0, prio 1
///
/// Hand-computed NP-FP WCRTs: R(S) = 0, R(A) = 2ms, R(B) = 2ms.
/// Chain {S, A, B}: W = 20ms, B = 0ms.
TaskGraph simple_chain_graph();

/// Fork–join diamond:
///
///        ┌─> C (ecu0) ─┐
///   S → A               E  (sink)
///        └─> D (ecu1) ─┘
///
///   S: source, T = 10ms
///   A: W = B = 1ms, T = 10ms, ecu 0, prio 0
///   C: W = B = 1ms, T = 20ms, ecu 0, prio 1
///   D: W = B = 1ms, T = 20ms, ecu 1, prio 0
///   E: W = B = 1ms, T = 20ms, ecu 1, prio 1
///
/// Hand-computed WCRTs: R(A)=R(C)=R(D)=R(E)=2ms.
/// λ = {S,A,C,E}: W = 42ms, B = 1ms.
/// ν = {S,A,D,E}: W = 42ms, B = 1ms.
/// Theorem 2 on (λ, ν): joints {A, E}, x1 = −3, y1 = 3,
/// separation 41ms, bound 40ms (shared source, T(S) = 10ms).
TaskGraph diamond_graph();

/// Two chains of the given per-chain length merged at a sink, WATERS
/// parameters, random ECU mapping over `num_ecus`, rate-monotonic
/// priorities; guaranteed schedulable (resampled until so).
TaskGraph random_two_chain_graph(std::size_t length, int num_ecus,
                                 std::uint64_t seed);

/// Random single-sink GNM DAG with WATERS parameters, schedulable, whose
/// sink has at least two source chains.
TaskGraph random_dag_graph(std::size_t num_tasks, int num_ecus,
                           std::uint64_t seed);

/// Convenience: response-time map of a graph (asserts all schedulable).
ResponseTimeMap response_times_of(const TaskGraph& g);

}  // namespace ceta::testing
