#include "graph/paths.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "graph/generator.hpp"
#include "helpers.hpp"

namespace ceta {
namespace {

TEST(Paths, ChainGraphSinglePath) {
  const TaskGraph g = testing::simple_chain_graph();
  const auto chains = enumerate_source_chains(g, 2);
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0], (Path{0, 1, 2}));
}

TEST(Paths, DiamondTwoPaths) {
  const TaskGraph g = testing::diamond_graph();
  auto chains = enumerate_source_chains(g, 4);  // E
  ASSERT_EQ(chains.size(), 2u);
  std::sort(chains.begin(), chains.end());
  EXPECT_EQ(chains[0], (Path{0, 1, 2, 4}));  // S A C E
  EXPECT_EQ(chains[1], (Path{0, 1, 3, 4}));  // S A D E
}

TEST(Paths, TargetIsSourceYieldsSingleton) {
  const TaskGraph g = testing::diamond_graph();
  const auto chains = enumerate_source_chains(g, 0);
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0], Path{0});
}

TEST(Paths, MidChainTarget) {
  const TaskGraph g = testing::diamond_graph();
  const auto chains = enumerate_source_chains(g, 1);  // A
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0], (Path{0, 1}));
}

TEST(Paths, CapOverflowThrows) {
  const TaskGraph g = testing::diamond_graph();
  EXPECT_THROW(enumerate_source_chains(g, 4, 1), CapacityError);
}

TEST(Paths, EnumeratePathsBetweenNodes) {
  const TaskGraph g = testing::diamond_graph();
  const auto paths = enumerate_paths(g, 1, 4);  // A to E
  EXPECT_EQ(paths.size(), 2u);
  const auto none = enumerate_paths(g, 2, 3);  // C to D: unreachable
  EXPECT_TRUE(none.empty());
  const auto self = enumerate_paths(g, 2, 2);
  ASSERT_EQ(self.size(), 1u);
  EXPECT_EQ(self[0], Path{2});
}

TEST(Paths, CountMatchesEnumeration) {
  const TaskGraph g = testing::diamond_graph();
  EXPECT_EQ(count_source_chains(g, 4), 2u);
  EXPECT_EQ(count_source_chains(g, 1), 1u);
  EXPECT_EQ(count_source_chains(g, 0), 1u);
}

TEST(Paths, CountMatchesEnumerationOnRandomDags) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    GnmDagOptions opt;
    opt.num_tasks = 12;
    const TaskGraph g = gnm_random_dag(opt, rng);
    const TaskId sink = g.sinks().front();
    const std::size_t count = count_source_chains(g, sink);
    if (count <= 5000) {
      EXPECT_EQ(enumerate_source_chains(g, sink, 5000).size(), count)
          << "seed " << seed;
    }
  }
}

TEST(Paths, LayeredGraphExponentialCount) {
  // k diamond layers in series: 2^k paths, counted without enumeration.
  TaskGraph g;
  Task t;
  t.period = Duration::ms(10);
  TaskId prev = g.add_task(t);  // source
  int prio = 0;
  const int layers = 10;
  for (int l = 0; l < layers; ++l) {
    Task mid;
    mid.wcet = mid.bcet = Duration::us(1);
    mid.period = Duration::ms(10);
    mid.ecu = 0;
    mid.priority = prio++;
    const TaskId up = g.add_task(mid);
    mid.priority = prio++;
    const TaskId down = g.add_task(mid);
    mid.priority = prio++;
    const TaskId join = g.add_task(mid);
    g.add_edge(prev, up);
    g.add_edge(prev, down);
    g.add_edge(up, join);
    g.add_edge(down, join);
    prev = join;
  }
  EXPECT_EQ(count_source_chains(g, prev), 1024u);
  EXPECT_THROW(enumerate_source_chains(g, prev, 100), CapacityError);
  EXPECT_EQ(enumerate_source_chains(g, prev, 1024).size(), 1024u);
}

TEST(Paths, IsPath) {
  const TaskGraph g = testing::diamond_graph();
  EXPECT_TRUE(is_path(g, Path{0, 1, 2, 4}));
  EXPECT_TRUE(is_path(g, Path{1, 3}));
  EXPECT_TRUE(is_path(g, Path{4}));
  EXPECT_FALSE(is_path(g, Path{}));
  EXPECT_FALSE(is_path(g, Path{0, 2}));   // no edge S->C
  EXPECT_FALSE(is_path(g, Path{0, 99}));  // unknown id
}

TEST(Paths, CommonTasksOrdered) {
  const Path a = {0, 1, 2, 4};
  const Path b = {0, 1, 3, 4};
  EXPECT_EQ(common_tasks(a, b), (std::vector<TaskId>{0, 1, 4}));
}

TEST(Paths, CommonTasksDisjointExceptTail) {
  const Path a = {0, 2, 4};
  const Path b = {1, 3, 4};
  EXPECT_EQ(common_tasks(a, b), (std::vector<TaskId>{4}));
}

TEST(Paths, CommonTasksInconsistentOrderThrows) {
  const Path a = {1, 2, 3};
  const Path b = {2, 1, 3};
  EXPECT_THROW(common_tasks(a, b), PreconditionError);
}

}  // namespace
}  // namespace ceta
