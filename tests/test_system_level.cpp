// System-level integration: compose bus insertion, scoping, critical
// chains, requirements, sensitivity and simulation on one mid-size system
// — the same flow the full_vehicle example walks a human through, kept
// under regression coverage here.

#include <gtest/gtest.h>

#include "chain/critical.hpp"
#include "chain/latency.hpp"
#include "common/rng.hpp"
#include "disparity/analyzer.hpp"
#include "disparity/requirements.hpp"
#include "disparity/sensitivity.hpp"
#include "graph/algorithms.hpp"
#include "graph/generator.hpp"
#include "graph/paths.hpp"
#include "sched/bus.hpp"
#include "sched/npfp_rta.hpp"
#include "sched/priority.hpp"
#include "sim/engine.hpp"
#include "waters/generator.hpp"

namespace ceta {
namespace {

/// 3 sensor chains over 3 ECUs, rewritten through a CAN bus.
struct System {
  TaskGraph graph;
  RtaResult rta;
  TaskId fusion;
};

System build_system(std::uint64_t seed) {
  Rng rng(seed);
  for (int attempt = 0; attempt < 64; ++attempt) {
    TaskGraph g = sensor_fusion_pipeline(3, 2);
    WatersAssignOptions wopt;
    wopt.num_ecus = 3;
    assign_waters_parameters(g, wopt, rng);
    BusConfig bus;
    bus.bus_resource = 50;
    TaskGraph sys = insert_can_messages(g, bus);
    RtaResult rta = analyze_response_times(sys);
    if (!rta.all_schedulable) continue;
    const TaskId fusion = g.sinks().front();  // id preserved
    if (count_source_chains(sys, fusion) != 3) continue;
    return {std::move(sys), std::move(rta), fusion};
  }
  throw Error("build_system: no admissible draw");
}

class SystemLevel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SystemLevel, EndToEndFlowConsistent) {
  const System sys = build_system(GetParam());
  const TaskGraph& g = sys.graph;
  const ResponseTimeMap& rtm = sys.rta.response_time;

  // Scoped analysis agrees with the full graph (fusion is the sink here,
  // so the closure covers everything — the equality is the point).
  const SubgraphExtract scope = ancestor_subgraph(g, sys.fusion);
  EXPECT_LE(scope.graph.num_tasks(), g.num_tasks());
  const Duration full =
      analyze_time_disparity(g, sys.fusion, rtm).worst_case;
  EXPECT_EQ(full, analyze_time_disparity(
                      scope.graph, scope.from_original[sys.fusion],
                      map_response_times(scope, rtm))
                      .worst_case);

  // The critical chain's WCBT bounds every chain's WCBT and feeds the
  // data-age budget.
  const CriticalChain crit = critical_chain(g, sys.fusion, rtm);
  for (const Path& chain : enumerate_source_chains(g, sys.fusion)) {
    EXPECT_LE(wcbt_bound(g, chain, rtm), crit.wcbt);
    EXPECT_LE(max_data_age_bound(g, chain, rtm), crit.wcbt + rtm[sys.fusion]);
  }

  // A requirement at the exact bound is satisfied; one at half the bound
  // either gets fixed by buffers or stays violated — never mislabeled.
  const RequirementsReport exact =
      verify_disparity_requirements(g, {{sys.fusion, full}}, rtm);
  EXPECT_EQ(exact.outcomes[0].status, RequirementStatus::kSatisfied);
  const RequirementsReport tight =
      verify_disparity_requirements(g, {{sys.fusion, full / 2}}, rtm);
  if (tight.all_satisfied) {
    EXPECT_EQ(tight.outcomes[0].status, RequirementStatus::kFixedByBuffers);
    EXPECT_LE(tight.outcomes[0].final_bound, full / 2);
  } else {
    EXPECT_EQ(tight.outcomes[0].status, RequirementStatus::kViolated);
  }

  // Sensitivity entries cover exactly the fusion ancestors.
  const auto sens = disparity_sensitivity(g, sys.fusion);
  const auto anc = ancestors(g, sys.fusion);
  for (const SensitivityEntry& e : sens) {
    EXPECT_NE(std::find(anc.begin(), anc.end(), e.task), anc.end());
  }

  // Simulation respects the (possibly remediated) bounds.
  SimOptions opt;
  opt.warmup = Duration::s(2);
  opt.duration = Duration::s(5);
  opt.seed = GetParam();
  const SimResult res = Simulator(tight.final_graph, opt).run();
  const Duration final_bound =
      analyze_time_disparity(tight.final_graph, sys.fusion, rtm).worst_case;
  EXPECT_LE(res.max_disparity[sys.fusion], final_bound);
}

TEST_P(SystemLevel, BusMessagesAreOnEveryCrossEcuChainHop) {
  const System sys = build_system(GetParam() + 100);
  const TaskGraph& g = sys.graph;
  for (const Path& chain : enumerate_source_chains(g, sys.fusion)) {
    for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
      const Task& u = g.task(chain[i]);
      const Task& v = g.task(chain[i + 1]);
      if (u.ecu == kNoEcu || v.ecu == kNoEcu) continue;
      // After bus insertion no edge crosses two real ECUs directly.
      EXPECT_TRUE(u.ecu == v.ecu || u.ecu == 50 || v.ecu == 50)
          << u.name << " -> " << v.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SystemLevel,
                         ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace ceta
