#include "sim/gantt.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "helpers.hpp"
#include "sim/engine.hpp"

namespace ceta {
namespace {

std::vector<std::string> lines_of(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string line;
  while (std::getline(is, line)) out.push_back(line);
  return out;
}

TEST(Gantt, DeterministicChainLayout) {
  // S (T=10ms) -> A (W=2ms, T=10ms), 20ms window, 20 cells = 1ms/cell.
  TaskGraph g;
  Task s;
  s.name = "S";
  s.period = Duration::ms(10);
  const TaskId sid = g.add_task(s);
  Task a;
  a.name = "A";
  a.wcet = a.bcet = Duration::ms(2);
  a.period = Duration::ms(10);
  a.ecu = 0;
  a.priority = 0;
  const TaskId aid = g.add_task(a);
  g.add_edge(sid, aid);
  g.validate();

  SimOptions opt;
  opt.duration = Duration::ms(20);
  opt.record_trace = true;
  opt.exec_model = ExecTimeModel::kWorstCase;
  const SimResult res = Simulator(g, opt).run();

  GanttOptions gopt;
  gopt.from = Duration::zero();
  gopt.to = Duration::ms(20);
  gopt.width = 20;
  const auto lines = lines_of(render_gantt(g, res.trace, gopt));
  ASSERT_EQ(lines.size(), 3u);  // header + 2 task rows
  // Source: release markers at cells 0 and 10.
  EXPECT_EQ(lines[1], "S  ^.........^.........");
  // A executes [0,2] and [10,12] (inclusive end cell).
  EXPECT_EQ(lines[2], "A  ###.......###.......");
}

TEST(Gantt, ReleaseMarkerDoesNotOverwriteExecution) {
  // A released and started at the same instant shows '#', not '^'.
  const TaskGraph g = testing::simple_chain_graph();
  SimOptions opt;
  opt.duration = Duration::ms(10);
  opt.record_trace = true;
  opt.exec_model = ExecTimeModel::kWorstCase;
  const SimResult res = Simulator(g, opt).run();
  GanttOptions gopt;
  gopt.from = Duration::zero();
  gopt.to = Duration::ms(10);
  gopt.width = 10;
  const auto lines = lines_of(render_gantt(g, res.trace, gopt));
  EXPECT_EQ(lines[2][3], '#');  // "A  #........." first cell
}

TEST(Gantt, AutoWindowCoversAllEvents) {
  const TaskGraph g = testing::diamond_graph();
  SimOptions opt;
  opt.duration = Duration::ms(60);
  opt.record_trace = true;
  const SimResult res = Simulator(g, opt).run();
  const std::string out = render_gantt(g, res.trace);
  EXPECT_FALSE(out.empty());
  const auto lines = lines_of(out);
  EXPECT_EQ(lines.size(), 1u + g.num_tasks());
  // Every task row carries at least one mark.
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_NE(lines[i].find_first_of("#^"), std::string::npos) << lines[i];
  }
}

TEST(Gantt, EmptyTraceRendersEmpty) {
  const TaskGraph g = testing::simple_chain_graph();
  Trace empty;
  empty.tasks.resize(g.num_tasks());
  EXPECT_TRUE(render_gantt(g, empty).empty());
}

TEST(Gantt, Preconditions) {
  const TaskGraph g = testing::simple_chain_graph();
  Trace mismatched;  // wrong size
  GanttOptions gopt;
  EXPECT_THROW(render_gantt(g, mismatched, gopt), PreconditionError);
  Trace ok;
  ok.tasks.resize(g.num_tasks());
  gopt.width = 1;
  EXPECT_THROW(render_gantt(g, ok, gopt), PreconditionError);
}

}  // namespace
}  // namespace ceta
