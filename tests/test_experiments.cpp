#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "experiments/fig6ab.hpp"
#include "experiments/fig6cd.hpp"
#include "experiments/table.hpp"

namespace ceta {
namespace {

TEST(ConsoleTable, RendersAlignedRows) {
  ConsoleTable t({"n", "value"});
  t.add_row({"5", "1.25"});
  t.add_row({"10", "12.50"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("n"), std::string::npos);
  EXPECT_NE(out.find("12.50"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(ConsoleTable, CsvOutput) {
  ConsoleTable t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(ConsoleTable, RowWidthMismatchRejected) {
  ConsoleTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), PreconditionError);
}

TEST(Formatters, FixedPrecision) {
  EXPECT_EQ(fmt_double(1.2345), "1.23");
  EXPECT_EQ(fmt_double(1.2345, 3), "1.234");
  EXPECT_EQ(fmt_percent(0.256), "25.6%");
}

TEST(Fig6ab, SmallRunHasPaperShape) {
  Fig6abConfig cfg;
  cfg.task_counts = {6, 8};
  cfg.graphs_per_point = 2;
  cfg.offsets_per_graph = 2;
  cfg.sim_duration = Duration::ms(500);
  cfg.seed = 7;
  const auto points = run_fig6ab(cfg);
  ASSERT_EQ(points.size(), 2u);
  for (const Fig6abPoint& p : points) {
    EXPECT_GT(p.pdiff_ms, 0.0);
    // Safety ordering of the mean curves.
    EXPECT_GE(p.pdiff_ms, p.sdiff_ms);
    EXPECT_GE(p.sdiff_ms, p.sim_ms);
    EXPECT_GE(p.sim_ms, 0.0);
    EXPECT_GE(p.pdiff_ratio, p.sdiff_ratio);
    EXPECT_GE(p.sdiff_ratio, 0.0);
  }
}

TEST(Fig6ab, ConfigValidation) {
  Fig6abConfig cfg;
  cfg.task_counts = {};
  EXPECT_THROW(run_fig6ab(cfg), PreconditionError);
  cfg = Fig6abConfig{};
  cfg.graphs_per_point = 0;
  EXPECT_THROW(run_fig6ab(cfg), PreconditionError);
}

TEST(Fig6cd, SmallRunHasPaperShape) {
  Fig6cdConfig cfg;
  cfg.chain_lengths = {5};
  cfg.instances_per_point = 2;
  cfg.offsets_per_instance = 2;
  cfg.sim_measure_window = Duration::ms(500);
  cfg.seed = 11;
  const auto points = run_fig6cd(cfg);
  ASSERT_EQ(points.size(), 1u);
  const Fig6cdPoint& p = points.front();
  EXPECT_GT(p.sdiff_ms, 0.0);
  // The optimization cuts the bound and stays safe.
  EXPECT_LE(p.sdiff_b_ms, p.sdiff_ms);
  EXPECT_GE(p.sdiff_ms, p.sim_ms);
  EXPECT_GE(p.sdiff_b_ms, p.sim_b_ms);
  EXPECT_GE(p.buffer_size, 1.0);
}

TEST(Fig6cd, ConfigValidation) {
  Fig6cdConfig cfg;
  cfg.chain_lengths = {};
  EXPECT_THROW(run_fig6cd(cfg), PreconditionError);
}

}  // namespace
}  // namespace ceta
