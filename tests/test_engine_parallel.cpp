// AnalysisEngine::disparity_all and ThreadPool: the parallel batch path
// must be bit-identical to the serial loop, and the pool must execute,
// propagate exceptions and shut down cleanly.  These tests are the TSan
// targets (configure with -DCETA_SANITIZE=thread).

#include "engine/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <latch>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "engine/analysis_engine.hpp"
#include "helpers.hpp"
#include "obs/tracer.hpp"

namespace ceta {
namespace {

using ceta::testing::random_dag_graph;
using ceta::testing::response_times_of;

void expect_reports_equal(const DisparityReport& a, const DisparityReport& b) {
  EXPECT_EQ(a.worst_case, b.worst_case);
  ASSERT_EQ(a.chains, b.chains);
  ASSERT_EQ(a.pairs.size(), b.pairs.size());
  for (std::size_t i = 0; i < a.pairs.size(); ++i) {
    EXPECT_EQ(a.pairs[i].chain_a, b.pairs[i].chain_a);
    EXPECT_EQ(a.pairs[i].chain_b, b.pairs[i].chain_b);
    EXPECT_EQ(a.pairs[i].bound, b.pairs[i].bound);
  }
}

TEST(ThreadPool, ExecutesPostedJobs) {
  std::atomic<int> count{0};
  std::latch done(100);
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    for (int i = 0; i < 100; ++i) {
      pool.post([&] {
        count.fetch_add(1, std::memory_order_relaxed);
        done.count_down();
      });
    }
    done.wait();
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  // Jobs posted before destruction all run, even if never awaited.
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.post([&] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, SubmitReturnsValues) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)f.get(), std::runtime_error);
  // The pool survives a throwing job.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, RejectsZeroThreadsAndEmptyJobs) {
  EXPECT_THROW(ThreadPool{0}, PreconditionError);
  ThreadPool pool(1);
  EXPECT_THROW(pool.post(std::function<void()>{}), PreconditionError);
}

TEST(ThreadPool, DefaultConcurrencyIsSane) {
  const std::size_t n = ThreadPool::default_concurrency();
  EXPECT_GE(n, 1u);
  EXPECT_LE(n, 8u);
}

TEST(ThreadPool, DefaultConcurrencyHonorsCetaThreadsEnv) {
  // Precedence is EngineOptions::num_threads > CETA_THREADS > hardware
  // clamp; this covers the env layer (each TEST is its own process, so
  // setenv cannot leak into other tests).
  const std::size_t hw_default = ThreadPool::default_concurrency();

  ASSERT_EQ(setenv("CETA_THREADS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(ThreadPool::default_concurrency(), 3u);

  // Values above the hardware clamp are taken verbatim: the override is
  // an explicit user decision.
  ASSERT_EQ(setenv("CETA_THREADS", "12", 1), 0);
  EXPECT_EQ(ThreadPool::default_concurrency(), 12u);

  // Garbage, zero, negative and trailing-junk values fall back to the
  // hardware default (never below one thread).
  for (const char* bad : {"0", "-2", "abc", "4x", ""}) {
    ASSERT_EQ(setenv("CETA_THREADS", bad, 1), 0);
    EXPECT_EQ(ThreadPool::default_concurrency(), hw_default)
        << "CETA_THREADS='" << bad << "'";
  }

  ASSERT_EQ(unsetenv("CETA_THREADS"), 0);
  EXPECT_EQ(ThreadPool::default_concurrency(), hw_default);
}

// The headline determinism property: disparity_all with >= 2 worker
// threads is bit-identical to the serial loop, across many generated
// graphs and both analysis methods.
TEST(EngineParallel, DisparityAllMatchesSerialAcrossGraphs) {
  constexpr std::uint64_t kNumGraphs = 100;
  for (std::uint64_t seed = 1; seed <= kNumGraphs; ++seed) {
    const TaskGraph g = random_dag_graph(12 + seed % 5, 3, seed);
    for (const DisparityMethod m :
         {DisparityMethod::kIndependent, DisparityMethod::kForkJoin}) {
      DisparityOptions opt;
      opt.method = m;

      EngineOptions serial_opt;
      serial_opt.num_threads = 1;
      const AnalysisEngine serial(g, serial_opt);

      EngineOptions parallel_opt;
      parallel_opt.num_threads = 4;
      const AnalysisEngine parallel(g, parallel_opt);

      const std::vector<TaskId> tasks = serial.fusing_tasks();
      ASSERT_FALSE(tasks.empty());
      const std::vector<DisparityReport> expected =
          serial.disparity_all(tasks, opt);
      const std::vector<DisparityReport> got =
          parallel.disparity_all(tasks, opt);
      ASSERT_EQ(got.size(), expected.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        expect_reports_equal(got[i], expected[i]);
      }
    }
  }
}

TEST(EngineParallel, DisparityAllMatchesFreeFunctions) {
  const TaskGraph g = random_dag_graph(16, 4, /*seed=*/77);
  const ResponseTimeMap rtm = response_times_of(g);
  EngineOptions opt;
  opt.num_threads = 2;
  const AnalysisEngine engine(g, opt);
  const std::vector<TaskId> tasks = engine.fusing_tasks();
  const std::vector<DisparityReport> got = engine.disparity_all(tasks);
  ASSERT_EQ(got.size(), tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    expect_reports_equal(got[i], analyze_time_disparity(g, tasks[i], rtm));
  }
}

TEST(EngineParallel, RepeatedBatchesAreStable) {
  // Re-running the batch (fully warm caches) returns the same reports.
  const TaskGraph g = random_dag_graph(14, 3, /*seed=*/5);
  EngineOptions opt;
  opt.num_threads = 4;
  const AnalysisEngine engine(g, opt);
  const std::vector<TaskId> tasks = engine.fusing_tasks();
  const std::vector<DisparityReport> first = engine.disparity_all(tasks);
  for (int round = 0; round < 3; ++round) {
    const std::vector<DisparityReport> again = engine.disparity_all(tasks);
    ASSERT_EQ(again.size(), first.size());
    for (std::size_t i = 0; i < again.size(); ++i) {
      expect_reports_equal(again[i], first[i]);
    }
  }
  EXPECT_EQ(engine.cache_stats().rta_runs, 1u);
}

TEST(EngineParallel, ConcurrentCallersOnOneEngine) {
  // All engine accessors are const and internally synchronized: hammer one
  // engine from several external threads (on top of its own pool) and
  // check every thread saw the serial-reference reports.
  const TaskGraph g = random_dag_graph(13, 3, /*seed=*/9);
  EngineOptions opt;
  opt.num_threads = 2;
  const AnalysisEngine engine(g, opt);
  const AnalysisEngine reference(g);
  const std::vector<TaskId> tasks = engine.fusing_tasks();
  ASSERT_FALSE(tasks.empty());

  std::vector<DisparityReport> expected;
  expected.reserve(tasks.size());
  for (const TaskId t : tasks) expected.push_back(reference.disparity(t));

  std::atomic<int> failures{0};
  {
    std::vector<std::jthread> callers;
    for (int c = 0; c < 4; ++c) {
      callers.emplace_back([&] {
        for (int round = 0; round < 3; ++round) {
          const std::vector<DisparityReport> got =
              engine.disparity_all(tasks);
          for (std::size_t i = 0; i < tasks.size(); ++i) {
            if (got[i].worst_case != expected[i].worst_case ||
                got[i].chains != expected[i].chains) {
              failures.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      });
    }
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(engine.cache_stats().rta_runs, 1u);
}

TEST(EngineParallel, TracedBatchesStayCorrectAndRaceFree) {
  // Tracing ON while the pool fans out: per-thread trace buffers and the
  // span clock reads must not race with the workers or perturb results.
  // This is a primary TSan target (-DCETA_SANITIZE=thread).
  const TaskGraph g = random_dag_graph(14, 3, /*seed=*/23);
  EngineOptions opt;
  opt.num_threads = 4;
  const AnalysisEngine engine(g, opt);
  const std::vector<TaskId> tasks = engine.fusing_tasks();
  ASSERT_FALSE(tasks.empty());
  const std::vector<DisparityReport> expected = engine.disparity_all(tasks);

  obs::Tracer::global().start();  // in-memory
  AnalysisEngine traced(g, opt);
  std::vector<DisparityReport> got;
  {
    // External callers hammering the engine while its pool runs traced
    // jobs: every layer that records spans is exercised concurrently.
    std::vector<std::jthread> callers;
    for (int c = 0; c < 2; ++c) {
      callers.emplace_back([&] { (void)traced.disparity_all(tasks); });
    }
    got = traced.disparity_all(tasks);
  }
  {
    // A directly-owned pool guarantees pool.job / pool-worker spans even
    // when the graph has a single fusing task (inline batch path).
    ThreadPool pool(2);
    for (int i = 0; i < 4; ++i) pool.submit([] {}).get();
  }
  const std::string json = obs::Tracer::global().stop_to_string();

  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    expect_reports_equal(got[i], expected[i]);
  }
  // The trace saw the batch: disparity_all itself plus pool worker spans.
  EXPECT_NE(json.find("\"disparity_all\""), std::string::npos);
  EXPECT_NE(json.find("\"pool.job\""), std::string::npos);
  EXPECT_NE(json.find("pool-worker-"), std::string::npos);
}

TEST(EngineParallel, SingleTaskBatchRunsInline) {
  const TaskGraph g = random_dag_graph(12, 3, /*seed=*/13);
  EngineOptions opt;
  opt.num_threads = 8;
  const AnalysisEngine engine(g, opt);
  const std::vector<TaskId> tasks = engine.fusing_tasks();
  ASSERT_FALSE(tasks.empty());
  const std::vector<TaskId> one{tasks.front()};
  const std::vector<DisparityReport> got = engine.disparity_all(one);
  ASSERT_EQ(got.size(), 1u);
  expect_reports_equal(got[0], engine.disparity(tasks.front()));
  EXPECT_TRUE(engine.disparity_all({}).empty());
}

}  // namespace
}  // namespace ceta
