// AnalysisEngine::disparity_all and ThreadPool: the parallel batch path
// must be bit-identical to the serial loop, and the pool must execute,
// propagate exceptions and shut down cleanly.  These tests are the TSan
// targets (configure with -DCETA_SANITIZE=thread).

#include "engine/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <latch>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "engine/analysis_engine.hpp"
#include "helpers.hpp"

namespace ceta {
namespace {

using ceta::testing::random_dag_graph;
using ceta::testing::response_times_of;

void expect_reports_equal(const DisparityReport& a, const DisparityReport& b) {
  EXPECT_EQ(a.worst_case, b.worst_case);
  ASSERT_EQ(a.chains, b.chains);
  ASSERT_EQ(a.pairs.size(), b.pairs.size());
  for (std::size_t i = 0; i < a.pairs.size(); ++i) {
    EXPECT_EQ(a.pairs[i].chain_a, b.pairs[i].chain_a);
    EXPECT_EQ(a.pairs[i].chain_b, b.pairs[i].chain_b);
    EXPECT_EQ(a.pairs[i].bound, b.pairs[i].bound);
  }
}

TEST(ThreadPool, ExecutesPostedJobs) {
  std::atomic<int> count{0};
  std::latch done(100);
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    for (int i = 0; i < 100; ++i) {
      pool.post([&] {
        count.fetch_add(1, std::memory_order_relaxed);
        done.count_down();
      });
    }
    done.wait();
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  // Jobs posted before destruction all run, even if never awaited.
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.post([&] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, SubmitReturnsValues) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)f.get(), std::runtime_error);
  // The pool survives a throwing job.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, RejectsZeroThreadsAndEmptyJobs) {
  EXPECT_THROW(ThreadPool{0}, PreconditionError);
  ThreadPool pool(1);
  EXPECT_THROW(pool.post(std::function<void()>{}), PreconditionError);
}

TEST(ThreadPool, DefaultConcurrencyIsSane) {
  const std::size_t n = ThreadPool::default_concurrency();
  EXPECT_GE(n, 1u);
  EXPECT_LE(n, 8u);
}

// The headline determinism property: disparity_all with >= 2 worker
// threads is bit-identical to the serial loop, across many generated
// graphs and both analysis methods.
TEST(EngineParallel, DisparityAllMatchesSerialAcrossGraphs) {
  constexpr std::uint64_t kNumGraphs = 100;
  for (std::uint64_t seed = 1; seed <= kNumGraphs; ++seed) {
    const TaskGraph g = random_dag_graph(12 + seed % 5, 3, seed);
    for (const DisparityMethod m :
         {DisparityMethod::kIndependent, DisparityMethod::kForkJoin}) {
      DisparityOptions opt;
      opt.method = m;

      EngineOptions serial_opt;
      serial_opt.num_threads = 1;
      const AnalysisEngine serial(g, serial_opt);

      EngineOptions parallel_opt;
      parallel_opt.num_threads = 4;
      const AnalysisEngine parallel(g, parallel_opt);

      const std::vector<TaskId> tasks = serial.fusing_tasks();
      ASSERT_FALSE(tasks.empty());
      const std::vector<DisparityReport> expected =
          serial.disparity_all(tasks, opt);
      const std::vector<DisparityReport> got =
          parallel.disparity_all(tasks, opt);
      ASSERT_EQ(got.size(), expected.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        expect_reports_equal(got[i], expected[i]);
      }
    }
  }
}

TEST(EngineParallel, DisparityAllMatchesFreeFunctions) {
  const TaskGraph g = random_dag_graph(16, 4, /*seed=*/77);
  const ResponseTimeMap rtm = response_times_of(g);
  EngineOptions opt;
  opt.num_threads = 2;
  const AnalysisEngine engine(g, opt);
  const std::vector<TaskId> tasks = engine.fusing_tasks();
  const std::vector<DisparityReport> got = engine.disparity_all(tasks);
  ASSERT_EQ(got.size(), tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    expect_reports_equal(got[i], analyze_time_disparity(g, tasks[i], rtm));
  }
}

TEST(EngineParallel, RepeatedBatchesAreStable) {
  // Re-running the batch (fully warm caches) returns the same reports.
  const TaskGraph g = random_dag_graph(14, 3, /*seed=*/5);
  EngineOptions opt;
  opt.num_threads = 4;
  const AnalysisEngine engine(g, opt);
  const std::vector<TaskId> tasks = engine.fusing_tasks();
  const std::vector<DisparityReport> first = engine.disparity_all(tasks);
  for (int round = 0; round < 3; ++round) {
    const std::vector<DisparityReport> again = engine.disparity_all(tasks);
    ASSERT_EQ(again.size(), first.size());
    for (std::size_t i = 0; i < again.size(); ++i) {
      expect_reports_equal(again[i], first[i]);
    }
  }
  EXPECT_EQ(engine.cache_stats().rta_runs, 1u);
}

TEST(EngineParallel, ConcurrentCallersOnOneEngine) {
  // All engine accessors are const and internally synchronized: hammer one
  // engine from several external threads (on top of its own pool) and
  // check every thread saw the serial-reference reports.
  const TaskGraph g = random_dag_graph(13, 3, /*seed=*/9);
  EngineOptions opt;
  opt.num_threads = 2;
  const AnalysisEngine engine(g, opt);
  const AnalysisEngine reference(g);
  const std::vector<TaskId> tasks = engine.fusing_tasks();
  ASSERT_FALSE(tasks.empty());

  std::vector<DisparityReport> expected;
  expected.reserve(tasks.size());
  for (const TaskId t : tasks) expected.push_back(reference.disparity(t));

  std::atomic<int> failures{0};
  {
    std::vector<std::jthread> callers;
    for (int c = 0; c < 4; ++c) {
      callers.emplace_back([&] {
        for (int round = 0; round < 3; ++round) {
          const std::vector<DisparityReport> got =
              engine.disparity_all(tasks);
          for (std::size_t i = 0; i < tasks.size(); ++i) {
            if (got[i].worst_case != expected[i].worst_case ||
                got[i].chains != expected[i].chains) {
              failures.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      });
    }
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(engine.cache_stats().rta_runs, 1u);
}

TEST(EngineParallel, SingleTaskBatchRunsInline) {
  const TaskGraph g = random_dag_graph(12, 3, /*seed=*/13);
  EngineOptions opt;
  opt.num_threads = 8;
  const AnalysisEngine engine(g, opt);
  const std::vector<TaskId> tasks = engine.fusing_tasks();
  ASSERT_FALSE(tasks.empty());
  const std::vector<TaskId> one{tasks.front()};
  const std::vector<DisparityReport> got = engine.disparity_all(one);
  ASSERT_EQ(got.size(), 1u);
  expect_reports_equal(got[0], engine.disparity(tasks.front()));
  EXPECT_TRUE(engine.disparity_all({}).empty());
}

}  // namespace
}  // namespace ceta
