#include "common/interval.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace ceta {
namespace {

TEST(Interval, ConstructionAndAccessors) {
  const Interval iv(Duration::ms(-5), Duration::ms(3));
  EXPECT_EQ(iv.lo(), Duration::ms(-5));
  EXPECT_EQ(iv.hi(), Duration::ms(3));
  EXPECT_EQ(iv.width(), Duration::ms(8));
}

TEST(Interval, RejectsInvertedBounds) {
  EXPECT_THROW(Interval(Duration::ms(1), Duration::ms(0)), PreconditionError);
}

TEST(Interval, PointIntervalAllowed) {
  const Interval iv(Duration::ms(2), Duration::ms(2));
  EXPECT_EQ(iv.width(), Duration::zero());
  EXPECT_TRUE(iv.contains(Duration::ms(2)));
}

TEST(Interval, DoubledMidpointExact) {
  // Midpoint of [1ns, 2ns] is 1.5ns; doubled midpoint stays integral.
  const Interval iv(Duration::ns(1), Duration::ns(2));
  EXPECT_EQ(iv.doubled_midpoint(), 3);
}

TEST(Interval, ContainsPointAndInterval) {
  const Interval outer(Duration::ms(0), Duration::ms(10));
  const Interval inner(Duration::ms(2), Duration::ms(8));
  EXPECT_TRUE(outer.contains(inner));
  EXPECT_FALSE(inner.contains(outer));
  EXPECT_TRUE(outer.contains(Duration::ms(0)));
  EXPECT_TRUE(outer.contains(Duration::ms(10)));
  EXPECT_FALSE(outer.contains(Duration::ms(11)));
}

TEST(Interval, Overlaps) {
  const Interval a(Duration::ms(0), Duration::ms(5));
  const Interval b(Duration::ms(5), Duration::ms(9));
  const Interval c(Duration::ms(6), Duration::ms(9));
  EXPECT_TRUE(a.overlaps(b));  // closed intervals: touching counts
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_FALSE(a.overlaps(c));
}

TEST(Interval, Shifted) {
  const Interval iv(Duration::ms(0), Duration::ms(4));
  const Interval left = iv.shifted(Duration::ms(-10));
  EXPECT_EQ(left.lo(), Duration::ms(-10));
  EXPECT_EQ(left.hi(), Duration::ms(-6));
}

TEST(Interval, Hull) {
  const Interval a(Duration::ms(0), Duration::ms(2));
  const Interval b(Duration::ms(5), Duration::ms(7));
  const Interval h = a.hull(b);
  EXPECT_EQ(h.lo(), Duration::ms(0));
  EXPECT_EQ(h.hi(), Duration::ms(7));
}

TEST(Interval, MaxSeparationDisjoint) {
  const Interval a(Duration::ms(0), Duration::ms(2));
  const Interval b(Duration::ms(10), Duration::ms(12));
  // Farthest pair: 0 and 12.
  EXPECT_EQ(a.max_separation(b), Duration::ms(12));
  EXPECT_EQ(b.max_separation(a), Duration::ms(12));
}

TEST(Interval, MaxSeparationOverlapping) {
  const Interval a(Duration::ms(0), Duration::ms(10));
  const Interval b(Duration::ms(5), Duration::ms(7));
  EXPECT_EQ(a.max_separation(b), Duration::ms(7));
}

TEST(Interval, ToString) {
  const Interval iv(Duration::ms(-1), Duration::ms(1));
  EXPECT_EQ(to_string(iv), "[-1ms, 1ms]");
}

}  // namespace
}  // namespace ceta
