// Calendar-queue unit tests: the queue must reproduce, event for event,
// the (time, kind, seq) total order a binary heap would produce — across
// same-instant FIFO ties, year wraparound, far-future overflow storage
// and clear()-based reuse.  The geometry is deliberately tiny (a few
// nanosecond-wide buckets) so every test crosses year boundaries.

#include "sim/calendar_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace ceta::sim {
namespace {

SimEvent ev(std::int64_t t, EventKind kind, std::uint64_t seq,
            std::int64_t job = 0) {
  SimEvent e;
  e.time = Instant::ns(t);
  e.kind = kind;
  e.seq = seq;
  e.job = job;
  return e;
}

std::vector<SimEvent> drain(CalendarQueue& q) {
  std::vector<SimEvent> out;
  while (!q.empty()) out.push_back(q.pop());
  return out;
}

TEST(CalendarQueue, PopsInTimeOrderAcrossYears) {
  CalendarQueue q;
  q.configure(Duration::ns(8), 4);  // year = 32 ns
  // Push out of time order, spanning several years.
  std::uint64_t seq = 0;
  for (std::int64_t t : {5, 120, 37, 41, 200, 39, 80, 6}) {
    q.push(ev(t, EventKind::kRelease, seq++));
  }
  const std::vector<SimEvent> got = drain(q);
  ASSERT_EQ(got.size(), 8u);
  for (std::size_t i = 1; i < got.size(); ++i) {
    EXPECT_FALSE(event_before(got[i], got[i - 1]))
        << "pop " << i << " out of order";
  }
  EXPECT_EQ(got.front().time, Instant::ns(5));
  EXPECT_EQ(got.back().time, Instant::ns(200));
}

TEST(CalendarQueue, SameTickIsFifoWithinKind) {
  CalendarQueue q;
  q.configure(Duration::ns(8), 4);
  // Ten events at the same instant and kind, tagged by push order in
  // `job`; seq is what makes them FIFO.
  for (std::int64_t i = 0; i < 10; ++i) {
    q.push(ev(25, EventKind::kRelease, static_cast<std::uint64_t>(i), i));
  }
  const std::vector<SimEvent> got = drain(q);
  ASSERT_EQ(got.size(), 10u);
  for (std::int64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)].job, i) << "FIFO broken";
  }
}

TEST(CalendarQueue, KindsOrderWritesBeforeReadsAtSameInstant) {
  CalendarQueue q;
  q.configure(Duration::ns(8), 4);
  // Push in reverse kind order at one instant; pops must come back as
  // finish < publish < source-release < release (engine total order).
  q.push(ev(7, EventKind::kRelease, 0));
  q.push(ev(7, EventKind::kSourceRelease, 1));
  q.push(ev(7, EventKind::kPublish, 2));
  q.push(ev(7, EventKind::kFinish, 3));
  const std::vector<SimEvent> got = drain(q);
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0].kind, EventKind::kFinish);
  EXPECT_EQ(got[1].kind, EventKind::kPublish);
  EXPECT_EQ(got[2].kind, EventKind::kSourceRelease);
  EXPECT_EQ(got[3].kind, EventKind::kRelease);
}

TEST(CalendarQueue, FarFutureEventsWaitInOverflow) {
  CalendarQueue q;
  q.configure(Duration::ns(8), 4);  // year = 32 ns
  // One event thousands of years out, plus near-term traffic.  The far
  // event must neither block the near pops nor get lost; draining must
  // cross the empty years without visiting them bucket by bucket.
  q.push(ev(3, EventKind::kRelease, 0));
  q.push(ev(1'000'000, EventKind::kRelease, 1));
  q.push(ev(12, EventKind::kRelease, 2));
  EXPECT_EQ(q.pop().time, Instant::ns(3));
  EXPECT_EQ(q.pop().time, Instant::ns(12));
  // Still pending: only the far-future one.
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.peek().time, Instant::ns(1'000'000));
  // New near-term work (relative to the far event's year) interleaves
  // correctly after the year advances.
  EXPECT_EQ(q.pop().time, Instant::ns(1'000'000));
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, OverflowSpillsAcrossMultipleYears) {
  CalendarQueue q;
  q.configure(Duration::ns(8), 4);  // year = 32 ns
  // Three events in three distinct far-future years: advancing to the
  // first must respill the others instead of binning them mod year.
  q.push(ev(0, EventKind::kRelease, 0));
  q.push(ev(100, EventKind::kRelease, 1));
  q.push(ev(500, EventKind::kRelease, 2));
  q.push(ev(900, EventKind::kRelease, 3));
  const std::vector<SimEvent> got = drain(q);
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0].time, Instant::ns(0));
  EXPECT_EQ(got[1].time, Instant::ns(100));
  EXPECT_EQ(got[2].time, Instant::ns(500));
  EXPECT_EQ(got[3].time, Instant::ns(900));
}

TEST(CalendarQueue, ClearKeepsGeometryAndAcceptsEarlierTimes) {
  CalendarQueue q;
  q.configure(Duration::ns(8), 4);
  q.push(ev(1'000'000, EventKind::kRelease, 0));
  EXPECT_EQ(q.pop().time, Instant::ns(1'000'000));
  q.clear();
  EXPECT_TRUE(q.empty());
  // After clear() the calendar rebases on the next push, so "earlier"
  // times are fine again — this is exactly what Simulator::reset() relies
  // on between seeded replications.
  q.push(ev(5, EventKind::kRelease, 1));
  q.push(ev(45, EventKind::kRelease, 2));
  EXPECT_EQ(q.pop().time, Instant::ns(5));
  EXPECT_EQ(q.pop().time, Instant::ns(45));
}

TEST(CalendarQueue, NegativeTimesAreHandled) {
  // Offsets can make the first nominal release negative after jitter
  // subtraction in principle; the calendar's year-floor mask must not
  // bin negative instants into the wrong year.
  CalendarQueue q;
  q.configure(Duration::ns(8), 4);
  q.push(ev(-35, EventKind::kRelease, 0));
  q.push(ev(-1, EventKind::kRelease, 1));
  q.push(ev(2, EventKind::kRelease, 2));
  const std::vector<SimEvent> got = drain(q);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].time, Instant::ns(-35));
  EXPECT_EQ(got[1].time, Instant::ns(-1));
  EXPECT_EQ(got[2].time, Instant::ns(2));
}

TEST(CalendarQueue, ExactYearBoundaryInstantsBinCorrectly) {
  // year = 32ns: instants at k·32 are the first bucket of year k, k·32-1
  // the last bucket of year k-1.  Straddling pushes in adversarial order
  // must still drain sorted — a mis-bucketing at the boundary would pop
  // 32 before 31 or lose an event to overflow.
  CalendarQueue q;
  q.configure(Duration::ns(8), 4);
  std::uint64_t seq = 0;
  for (std::int64_t t : {32, 31, 0, 63, 64, 33, 1, 95, 96, 65}) {
    q.push(ev(t, EventKind::kRelease, seq++));
  }
  const std::vector<SimEvent> got = drain(q);
  ASSERT_EQ(got.size(), 10u);
  const std::vector<std::int64_t> want{0, 1, 31, 32, 33, 63, 64, 65, 95, 96};
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].time, Instant::ns(want[i])) << "pop " << i;
  }
}

TEST(CalendarQueue, NegativeYearBoundariesBinCorrectly) {
  // Two's-complement year flooring: -32 opens its own year, -1 is the
  // last instant of year [-32, 0), 0 the first of [0, 32).
  CalendarQueue q;
  q.configure(Duration::ns(8), 4);
  std::uint64_t seq = 0;
  for (std::int64_t t : {0, -32, -1, -33, 31, -64, -31, 1}) {
    q.push(ev(t, EventKind::kRelease, seq++));
  }
  const std::vector<SimEvent> got = drain(q);
  ASSERT_EQ(got.size(), 8u);
  const std::vector<std::int64_t> want{-64, -33, -32, -31, -1, 0, 1, 31};
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].time, Instant::ns(want[i])) << "pop " << i;
  }
}

TEST(CalendarQueue, ClearedQueueRebasesOnNegativeAndBoundaryTimes) {
  // Simulator::reset() reuse: after clear(), a replication starting at a
  // negative or exactly-on-boundary instant must rebase cleanly, with no
  // state leaking from the previous run's years.
  CalendarQueue q;
  q.configure(Duration::ns(8), 4);
  for (int round = 0; round < 3; ++round) {
    q.push(ev(1000 + round, EventKind::kRelease, 0));
    EXPECT_EQ(q.pop().time, Instant::ns(1000 + round));
    q.clear();

    std::uint64_t seq = 0;
    for (std::int64_t t : {-32, 32, -1, 0, 31}) {
      q.push(ev(t, EventKind::kRelease, seq++));
    }
    const std::vector<SimEvent> got = drain(q);
    ASSERT_EQ(got.size(), 5u) << "round " << round;
    const std::vector<std::int64_t> want{-32, -1, 0, 31, 32};
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].time, Instant::ns(want[i]))
          << "round " << round << " pop " << i;
    }
    q.clear();
  }
}

TEST(CalendarQueue, RandomSoakWithNegativeTimesAfterClearMatchesSort) {
  // Differential soak across clear() boundaries with a signed time range:
  // every round drains bit-identically to std::sort on event_before.
  Rng rng(99);
  CalendarQueue q;
  q.configure(Duration::ns(16), 8);  // year = 128 ns
  for (int round = 0; round < 20; ++round) {
    std::vector<SimEvent> ref;
    const int n = static_cast<int>(rng.uniform_int(1, 60));
    for (int i = 0; i < n; ++i) {
      const std::int64_t t = rng.uniform_int(-1000, 1000);
      const SimEvent e =
          ev(t, EventKind::kRelease, static_cast<std::uint64_t>(i));
      ref.push_back(e);
      q.push(e);
    }
    std::sort(ref.begin(), ref.end(), event_before);
    const std::vector<SimEvent> got = drain(q);
    ASSERT_EQ(got.size(), ref.size()) << "round " << round;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(got[i].time, ref[i].time) << "round " << round << " pop " << i;
      EXPECT_EQ(got[i].seq, ref[i].seq) << "round " << round << " pop " << i;
    }
    q.clear();
  }
}

TEST(CalendarQueue, RandomSoakMatchesReferenceSort) {
  // Differential soak against std::sort on the same comparator: random
  // times over many years, interleaved pushes and pops respecting the
  // discrete-event invariant (never push before the current minimum).
  Rng rng(7);
  CalendarQueue q;
  q.configure(Duration::ns(16), 8);  // year = 128 ns
  std::vector<SimEvent> reference;
  std::uint64_t seq = 0;
  std::int64_t now = 0;
  std::vector<SimEvent> popped;
  for (int step = 0; step < 5000; ++step) {
    const bool do_push = q.empty() || rng.uniform_int(0, 2) != 0;
    if (do_push) {
      const std::int64_t t =
          now + static_cast<std::int64_t>(rng.uniform_int(0, 1000));
      const auto kind = static_cast<EventKind>(rng.uniform_int(0, 3));
      const SimEvent e = ev(t, kind, seq++);
      q.push(e);
      reference.push_back(e);
    } else {
      const SimEvent e = q.pop();
      now = e.time.count();
      popped.push_back(e);
    }
  }
  while (!q.empty()) popped.push_back(q.pop());
  std::sort(reference.begin(), reference.end(), event_before);
  ASSERT_EQ(popped.size(), reference.size());
  for (std::size_t i = 0; i < popped.size(); ++i) {
    EXPECT_EQ(popped[i].seq, reference[i].seq) << "divergence at pop " << i;
  }
}

TEST(CalendarQueue, RejectsBadGeometry) {
  CalendarQueue q;
  EXPECT_THROW(q.configure(Duration::zero(), 4), PreconditionError);
  EXPECT_THROW(q.configure(Duration::ns(10), 4), PreconditionError);  // !pow2
  EXPECT_THROW(q.configure(Duration::ns(16), 3), PreconditionError);
  EXPECT_THROW(q.configure(Duration::ns(16), 1), PreconditionError);
}

TEST(CalendarQueue, PopOnEmptyIsRejected) {
  CalendarQueue q;
  EXPECT_THROW(q.pop(), PreconditionError);
  EXPECT_THROW(q.peek(), PreconditionError);
}

}  // namespace
}  // namespace ceta::sim
