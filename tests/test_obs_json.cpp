// obs::JsonWriter: escaping, nesting discipline, number formatting, and
// the precondition checks that make emitting invalid JSON impossible.
// Everything the writer produces must parse with the independent
// json_checker.hpp parser.

#include "obs/json_writer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "json_checker.hpp"

namespace ceta {
namespace {

using obs::JsonWriter;
using testing::JsonParser;
using testing::JsonValue;

std::string compact(const std::function<void(JsonWriter&)>& fill) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/false);
  fill(w);
  w.done();
  return os.str();
}

std::string pretty(const std::function<void(JsonWriter&)>& fill) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/true);
  fill(w);
  w.done();
  return os.str();
}

TEST(JsonWriter, EmptyContainers) {
  EXPECT_EQ(compact([](JsonWriter& w) { w.begin_object().end_object(); }),
            "{}");
  EXPECT_EQ(compact([](JsonWriter& w) { w.begin_array().end_array(); }), "[]");
}

TEST(JsonWriter, CompactObjectBytes) {
  const std::string out = compact([](JsonWriter& w) {
    w.begin_object();
    w.member("a", std::int64_t{1});
    w.member("b", "two");
    w.key("c");
    w.begin_array();
    w.value(true);
    w.null();
    w.end_array();
    w.end_object();
  });
  EXPECT_EQ(out, R"({"a":1,"b":"two","c":[true,null]})");
}

TEST(JsonWriter, PrettyOutputParsesBackToSameTree) {
  const auto fill = [](JsonWriter& w) {
    w.begin_object();
    w.member("name", "ceta");
    w.key("nested");
    w.begin_object();
    w.member("depth", std::int64_t{2});
    w.end_object();
    w.key("list");
    w.begin_array();
    for (int i = 0; i < 3; ++i) w.value(i);
    w.end_array();
    w.end_object();
  };
  const JsonValue p = JsonParser::parse(pretty(fill));
  const JsonValue c = JsonParser::parse(compact(fill));
  EXPECT_EQ(p.at("name").string, "ceta");
  EXPECT_EQ(p.at("nested").at("depth").number, 2.0);
  ASSERT_EQ(p.at("list").size(), 3u);
  EXPECT_EQ(p.at("list").items()[2].number, 2.0);
  EXPECT_EQ(c.at("nested").at("depth").number, 2.0);
}

TEST(JsonWriter, StringEscaping) {
  EXPECT_EQ(JsonWriter::escape("plain"), "plain");
  EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonWriter::escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(JsonWriter::escape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonWriter::escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonWriter::escape(std::string("nul\0byte", 8)), "nul\\u0000byte");
  // A string containing every troublesome character survives the
  // write -> parse round trip.
  const std::string nasty = "q\"u\\o\tt\ne\rd\x01";
  const std::string doc = compact([&](JsonWriter& w) {
    w.begin_object();
    w.member("s", nasty);
    w.end_object();
  });
  EXPECT_EQ(JsonParser::parse(doc).at("s").string, nasty);
}

TEST(JsonWriter, NumberFormatting) {
  EXPECT_EQ(JsonWriter::format_double(0.0), "0");
  EXPECT_EQ(JsonWriter::format_double(1.5), "1.5");
  EXPECT_EQ(JsonWriter::format_double(-3.0), "-3");
  // Shortest round-trip: 0.1 prints as "0.1", not 0.1000000000000000055...
  EXPECT_EQ(JsonWriter::format_double(0.1), "0.1");
  const double third = 1.0 / 3.0;
  EXPECT_EQ(std::stod(JsonWriter::format_double(third)), third);
  // JSON has no Inf/NaN; the writer must not emit them.
  EXPECT_EQ(JsonWriter::format_double(std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(JsonWriter::format_double(std::nan("")), "null");
}

TEST(JsonWriter, NonFiniteDoublesEmitNullEverywhere) {
  // format_double's "null" must also hold through value()/member() in any
  // nesting position, and the resulting document must stay parseable (a
  // bare `nan`/`inf` token would be rejected by the independent parser).
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  const std::string doc = compact([&](JsonWriter& w) {
    w.begin_object();
    w.member("nan", nan);
    w.member("pinf", inf);
    w.member("ninf", -inf);
    w.key("arr");
    w.begin_array();
    w.value(nan);
    w.value(1.5);
    w.end_array();
    w.end_object();
  });
  const JsonValue root = JsonParser::parse(doc);
  EXPECT_EQ(root.at("nan").kind, JsonValue::Kind::kNull);
  EXPECT_EQ(root.at("pinf").kind, JsonValue::Kind::kNull);
  EXPECT_EQ(root.at("ninf").kind, JsonValue::Kind::kNull);
  ASSERT_EQ(root.at("arr").size(), 2u);
  EXPECT_EQ(root.at("arr").items()[0].kind, JsonValue::Kind::kNull);
  EXPECT_EQ(root.at("arr").items()[1].number, 1.5);
}

TEST(JsonWriter, IntegerWidths) {
  const std::string doc = compact([](JsonWriter& w) {
    w.begin_object();
    w.member("i64min", std::numeric_limits<std::int64_t>::min());
    w.member("u64max", std::numeric_limits<std::uint64_t>::max());
    w.end_object();
  });
  EXPECT_NE(doc.find("-9223372036854775808"), std::string::npos);
  EXPECT_NE(doc.find("18446744073709551615"), std::string::npos);
  EXPECT_NO_THROW(JsonParser::parse(doc));
}

TEST(JsonWriter, RootScalarAllowed) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/false);
  w.value(std::int64_t{42});
  w.done();
  EXPECT_EQ(os.str(), "42");
}

TEST(JsonWriter, NestingErrorsThrow) {
  // Value directly inside an object (no key).
  {
    std::ostringstream os;
    JsonWriter w(os, false);
    w.begin_object();
    EXPECT_THROW(w.value(std::int64_t{1}), PreconditionError);
  }
  // Key inside an array.
  {
    std::ostringstream os;
    JsonWriter w(os, false);
    w.begin_array();
    EXPECT_THROW(w.key("k"), PreconditionError);
  }
  // Mismatched close.
  {
    std::ostringstream os;
    JsonWriter w(os, false);
    w.begin_object();
    EXPECT_THROW(w.end_array(), PreconditionError);
  }
  // done() with an open container.
  {
    std::ostringstream os;
    JsonWriter w(os, false);
    w.begin_array();
    EXPECT_THROW(w.done(), PreconditionError);
    w.end_array();
    w.done();
  }
  // done() with a dangling key.
  {
    std::ostringstream os;
    JsonWriter w(os, false);
    w.begin_object();
    w.key("dangling");
    EXPECT_THROW(w.end_object(), PreconditionError);
  }
  // Two root values.
  {
    std::ostringstream os;
    JsonWriter w(os, false);
    w.value(std::int64_t{1});
    EXPECT_THROW(w.value(std::int64_t{2}), PreconditionError);
  }
}

TEST(JsonWriter, DeepNestingBalances) {
  constexpr int kDepth = 64;
  const std::string doc = compact([](JsonWriter& w) {
    for (int i = 0; i < kDepth; ++i) {
      w.begin_object();
      w.key("d");
    }
    w.value(std::int64_t{0});
    for (int i = 0; i < kDepth; ++i) w.end_object();
  });
  const JsonValue root = JsonParser::parse(doc);
  const JsonValue* cur = &root;
  for (int i = 0; i < kDepth; ++i) cur = &cur->at("d");
  EXPECT_EQ(cur->number, 0.0);
}

}  // namespace
}  // namespace ceta
