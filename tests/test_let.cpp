// Logical Execution Time (LET) communication: engine semantics, bound
// correctness, and LET's signature property — data timing independent of
// execution times and scheduling.

#include <gtest/gtest.h>

#include "chain/backward_bounds.hpp"
#include "common/error.hpp"
#include "disparity/analyzer.hpp"
#include "graph/serialize.hpp"
#include "helpers.hpp"
#include "sched/priority.hpp"
#include "sim/backward.hpp"
#include "sim/engine.hpp"

namespace ceta {
namespace {

/// S (T=10) -> A (LET, T=10, offset 2) -> B (LET, T=20, offset 0).
TaskGraph let_chain() {
  TaskGraph g;
  Task s;
  s.name = "S";
  s.period = Duration::ms(10);
  const TaskId sid = g.add_task(s);
  Task a;
  a.name = "A";
  a.wcet = Duration::ms(1);
  a.bcet = Duration::us(100);
  a.period = Duration::ms(10);
  a.offset = Duration::ms(2);
  a.ecu = 0;
  a.priority = 0;
  a.comm = CommSemantics::kLet;
  const TaskId aid = g.add_task(a);
  Task b;
  b.name = "B";
  b.wcet = Duration::ms(1);
  b.bcet = Duration::us(100);
  b.period = Duration::ms(20);
  b.ecu = 0;
  b.priority = 1;
  b.comm = CommSemantics::kLet;
  const TaskId bid = g.add_task(b);
  g.add_edge(sid, aid);
  g.add_edge(aid, bid);
  g.validate();
  return g;
}

SimOptions traced(Duration duration, std::uint64_t seed = 1) {
  SimOptions opt;
  opt.duration = duration;
  opt.seed = seed;
  opt.record_trace = true;
  return opt;
}

TEST(LetEngine, PublishAtDeadlineNotAtFinish) {
  // A@k releases at 10k+2, executes ~1ms, but its token must only become
  // visible at the deadline 10k+12: a B job released at 10k+10 < deadline
  // must read A's *previous* token.
  const TaskGraph g = let_chain();
  SimOptions opt = traced(Duration::ms(200));
  opt.exec_model = ExecTimeModel::kBestCase;  // finish long before deadline
  const SimResult res = Simulator(g, opt).run();
  for (const JobRecord& j : res.trace.tasks[2].jobs) {  // B
    if (j.release < Duration::ms(40)) continue;
    ASSERT_EQ(j.reads.size(), 1u);
    // B@20k reads the A job whose deadline <= 20k: released 20k−18.
    EXPECT_EQ(j.reads[0].producer_release, j.release - Duration::ms(18));
  }
}

TEST(LetEngine, ReadAtReleaseNotAtStart) {
  // A LET consumer blocked past its release must NOT see data arriving
  // between its release and its (delayed) start.
  TaskGraph g;
  Task s;
  s.name = "S";
  s.period = Duration::ms(4);
  const TaskId sid = g.add_task(s);
  Task lo;
  lo.name = "low";
  lo.wcet = lo.bcet = Duration::ms(5);
  lo.period = Duration::ms(1000);
  lo.ecu = 0;
  lo.priority = 1;
  const TaskId loid = g.add_task(lo);
  Task hi;
  hi.name = "high";
  hi.wcet = hi.bcet = Duration::ms(1);
  hi.period = Duration::ms(1000);
  hi.offset = Duration::ms(1);
  hi.ecu = 0;
  hi.priority = 0;
  hi.comm = CommSemantics::kLet;
  const TaskId hiid = g.add_task(hi);
  g.add_edge(sid, hiid);
  g.add_edge(sid, loid);
  g.validate();

  const SimResult res = Simulator(g, traced(Duration::ms(20))).run();
  const JobRecord& hij = res.trace.tasks[hiid].jobs.at(0);
  EXPECT_EQ(hij.start, Duration::ms(5));  // blocked by `low`
  ASSERT_EQ(hij.reads.size(), 1u);
  // Released at 1ms: reads the sample from t=0, not the one from t=4.
  EXPECT_EQ(hij.reads[0].producer_release, Duration::zero());
}

TEST(LetEngine, DeterministicDataFlowAcrossExecutionModels) {
  // LET's raison d'être: which data each job consumes is independent of
  // execution times.  Backward times must be bit-identical across
  // best-case, worst-case and randomized execution.
  const TaskGraph g = let_chain();
  std::vector<Duration> reference;
  for (int variant = 0; variant < 3; ++variant) {
    SimOptions opt = traced(Duration::ms(400), 17 + static_cast<std::uint64_t>(variant));
    opt.exec_model = variant == 0   ? ExecTimeModel::kBestCase
                     : variant == 1 ? ExecTimeModel::kWorstCase
                                    : ExecTimeModel::kUniform;
    const SimResult res = Simulator(g, opt).run();
    const BackwardMeasurement m =
        measured_backward_times(g, res.trace, {0, 1, 2}, Duration::ms(50));
    ASSERT_FALSE(m.lengths.empty());
    if (reference.empty()) {
      reference = m.lengths;
    } else {
      EXPECT_EQ(m.lengths, reference) << "variant " << variant;
    }
  }
}

TEST(LetEngine, ImplicitDataFlowIsNotDeterministic) {
  // Control experiment: under implicit communication the data flow *does*
  // depend on execution times.  B (on its own ECU) reads at 10k+2.5ms;
  // A finishes at 10k+2.1ms under BCET (B sees the fresh sample) but at
  // 10k+3ms under WCET (B sees the previous one).
  TaskGraph g = let_chain();
  g.set_comm_semantics(CommSemantics::kImplicit);
  g.task(2).period = Duration::ms(10);
  g.task(2).offset = Duration::us(2500);
  g.task(2).ecu = 1;
  g.validate();
  SimOptions opt = traced(Duration::ms(400), 17);
  opt.exec_model = ExecTimeModel::kBestCase;
  const auto fast =
      measured_backward_times(g, Simulator(g, opt).run().trace, {0, 1, 2}).lengths;
  opt.exec_model = ExecTimeModel::kWorstCase;
  const auto slow =
      measured_backward_times(g, Simulator(g, opt).run().trace, {0, 1, 2}).lengths;
  EXPECT_NE(fast, slow);
}

TEST(LetBounds, HandComputedChain) {
  // θ(S) = T = 10; θ(A, LET) = 2·10 = 20 → W = 30.
  // b(S) = 0; b(A, LET, LET consumer) = T(A) = 10 → B = 10.
  const TaskGraph g = let_chain();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  EXPECT_EQ(wcbt_bound(g, {0, 1, 2}, rtm), Duration::ms(30));
  EXPECT_EQ(bcbt_bound(g, {0, 1, 2}, rtm), Duration::ms(10));
}

TEST(LetBounds, MeasuredWithinBounds) {
  const TaskGraph g = let_chain();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const BackwardBounds b = backward_bounds(g, {0, 1, 2}, rtm);
  const SimResult res = Simulator(g, traced(Duration::s(1), 3)).run();
  const BackwardMeasurement m =
      measured_backward_times(g, res.trace, {0, 1, 2}, Duration::ms(100));
  ASSERT_FALSE(m.lengths.empty());
  for (Duration len : m.lengths) {
    EXPECT_LE(len, b.wcbt);
    EXPECT_GE(len, b.bcbt);
  }
}

TEST(LetBounds, MeasuredExactValueFromDerivation) {
  // Hand-derived steady state: B@20k reads A released 20k−18, which read
  // S@20k−20 → len = 20ms for every job.
  const TaskGraph g = let_chain();
  const SimResult res = Simulator(g, traced(Duration::s(1), 3)).run();
  const BackwardMeasurement m =
      measured_backward_times(g, res.trace, {0, 1, 2}, Duration::ms(100));
  for (Duration len : m.lengths) {
    EXPECT_EQ(len, Duration::ms(20));
  }
}

TEST(LetBounds, MixedChainSafe) {
  // A LET, B implicit (and vice versa): bounds must still contain all
  // measured backward times.
  for (int let_first : {0, 1}) {
    TaskGraph g = let_chain();
    g.task(1).comm =
        let_first ? CommSemantics::kLet : CommSemantics::kImplicit;
    g.task(2).comm =
        let_first ? CommSemantics::kImplicit : CommSemantics::kLet;
    g.validate();
    const ResponseTimeMap rtm = testing::response_times_of(g);
    const BackwardBounds b = backward_bounds(g, {0, 1, 2}, rtm);
    const SimResult res = Simulator(g, traced(Duration::s(1), 5)).run();
    const BackwardMeasurement m =
        measured_backward_times(g, res.trace, {0, 1, 2}, Duration::ms(100));
    ASSERT_FALSE(m.lengths.empty());
    for (Duration len : m.lengths) {
      EXPECT_LE(len, b.wcbt) << "let_first=" << let_first;
      EXPECT_GE(len, b.bcbt) << "let_first=" << let_first;
    }
  }
}

TEST(LetBounds, FifoBufferComposesWithLet) {
  // Lemma 6's sliding-window shift applies to published tokens too: a
  // FIFO of 3 on the S -> A channel adds exactly 2·T(S) of staleness to
  // the deterministic LET data flow.
  TaskGraph g = let_chain();
  g.set_buffer_size(0, 1, 3);
  const ResponseTimeMap rtm = testing::response_times_of(g);
  EXPECT_EQ(wcbt_bound(g, {0, 1, 2}, rtm), Duration::ms(30 + 20));
  EXPECT_EQ(bcbt_bound(g, {0, 1, 2}, rtm), Duration::ms(10 + 20));

  const SimResult res = Simulator(g, traced(Duration::s(1), 3)).run();
  const BackwardMeasurement m =
      measured_backward_times(g, res.trace, {0, 1, 2}, Duration::ms(200));
  ASSERT_FALSE(m.lengths.empty());
  for (Duration len : m.lengths) {
    // Deterministic: exactly the unbuffered value (20ms) plus 2·T(S).
    EXPECT_EQ(len, Duration::ms(40));
  }
}

class LetDisparitySafety : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LetDisparitySafety, RandomLetGraphsWithinBounds) {
  const std::uint64_t seed = GetParam();
  TaskGraph g = testing::random_dag_graph(12, 3, seed + 7000);
  g.set_comm_semantics(CommSemantics::kLet);
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const TaskId sink = g.sinks().front();
  const Duration sdiff = analyze_time_disparity(g, sink, rtm).worst_case;

  Rng rng(seed);
  randomize_offsets(g, rng);
  SimOptions opt;
  opt.duration = Duration::s(2);
  opt.seed = seed;
  const SimResult res = Simulator(g, opt).run();
  EXPECT_LE(res.max_disparity[sink], sdiff) << "seed " << seed;
}

TEST_P(LetDisparitySafety, MixedGraphsWithinBounds) {
  const std::uint64_t seed = GetParam();
  TaskGraph g = testing::random_dag_graph(12, 3, seed + 7500);
  // Every other non-source task uses LET.
  Rng comm_rng(seed);
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    if (!g.is_source(id) && comm_rng.flip(0.5)) {
      g.task(id).comm = CommSemantics::kLet;
    }
  }
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const TaskId sink = g.sinks().front();
  const Duration sdiff = analyze_time_disparity(g, sink, rtm).worst_case;

  Rng rng(seed + 1);
  randomize_offsets(g, rng);
  SimOptions opt;
  opt.duration = Duration::s(2);
  opt.seed = seed;
  const SimResult res = Simulator(g, opt).run();
  EXPECT_LE(res.max_disparity[sink], sdiff) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, LetDisparitySafety,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(LetSerialize, RoundTrip) {
  const TaskGraph g = let_chain();
  const std::string text = to_text(g);
  EXPECT_NE(text.find(" let"), std::string::npos);
  const TaskGraph parsed = graph_from_text(text);
  EXPECT_EQ(parsed.task(1).comm, CommSemantics::kLet);
  EXPECT_EQ(parsed.task(0).comm, CommSemantics::kImplicit);
  EXPECT_EQ(to_text(parsed), text);
}

TEST(LetSerialize, ExplicitImplicitKeywordAccepted) {
  const TaskGraph g = graph_from_text(
      "task S 0 0 10000000 0 0 -1 implicit\n"
      "task A 1000000 500000 10000000 0 0 0 let\n"
      "edge S A\n");
  EXPECT_EQ(g.task(0).comm, CommSemantics::kImplicit);
  EXPECT_EQ(g.task(1).comm, CommSemantics::kLet);
  EXPECT_THROW(graph_from_text("task A 0 0 1 0 0 -1 bogus\n"),
               PreconditionError);
}

}  // namespace
}  // namespace ceta
