#include "disparity/requirements.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "disparity/analyzer.hpp"
#include "helpers.hpp"
#include "sim/engine.hpp"

namespace ceta {
namespace {

/// Three-sensor fusion with very different chain latencies (same fixture
/// family as test_multi_buffer).
TaskGraph three_sensor_graph() {
  TaskGraph g;
  auto source = [&g](const char* name, Duration period) {
    Task t;
    t.name = name;
    t.period = period;
    return g.add_task(t);
  };
  auto stage = [&g](const char* name, Duration period, EcuId ecu) {
    Task t;
    t.name = name;
    t.wcet = t.bcet = Duration::ms(1);
    t.period = period;
    t.ecu = ecu;
    return g.add_task(t);
  };
  const TaskId cam = source("cam", Duration::ms(10));
  const TaskId radar = source("radar", Duration::ms(50));
  const TaskId lidar = source("lidar", Duration::ms(100));
  const TaskId pc = stage("proc_cam", Duration::ms(10), 0);
  const TaskId pr = stage("proc_radar", Duration::ms(50), 1);
  const TaskId pl = stage("proc_lidar", Duration::ms(100), 2);
  const TaskId fuse = stage("fuse", Duration::ms(50), 3);
  g.add_edge(cam, pc);
  g.add_edge(radar, pr);
  g.add_edge(lidar, pl);
  g.add_edge(pc, fuse);
  g.add_edge(pr, fuse);
  g.add_edge(pl, fuse);
  g.validate();
  return g;
}

TEST(Requirements, SatisfiedRequirementPassesThrough) {
  const TaskGraph g = three_sensor_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const Duration bound = analyze_time_disparity(g, 6, rtm).worst_case;

  const RequirementsReport rep = verify_disparity_requirements(
      g, {{6, bound + Duration::ms(1)}}, rtm);
  ASSERT_EQ(rep.outcomes.size(), 1u);
  EXPECT_EQ(rep.outcomes[0].status, RequirementStatus::kSatisfied);
  EXPECT_EQ(rep.outcomes[0].bound, bound);
  EXPECT_EQ(rep.outcomes[0].final_bound, bound);
  EXPECT_TRUE(rep.all_satisfied);
  // No buffers added.
  for (const Edge& e : rep.final_graph.edges()) {
    EXPECT_EQ(e.channel.buffer_size, 1);
  }
}

TEST(Requirements, ViolationFixedByBuffers) {
  const TaskGraph g = three_sensor_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const Duration bound = analyze_time_disparity(g, 6, rtm).worst_case;
  const MultiBufferDesign d = design_buffers_for_task(g, 6, rtm);
  ASSERT_LT(d.optimized_bound, bound);

  // Ask for something between the optimized and the unoptimized bound.
  const Duration threshold = (d.optimized_bound + bound) / 2;
  const RequirementsReport rep =
      verify_disparity_requirements(g, {{6, threshold}}, rtm);
  ASSERT_EQ(rep.outcomes.size(), 1u);
  EXPECT_EQ(rep.outcomes[0].status, RequirementStatus::kFixedByBuffers);
  EXPECT_FALSE(rep.outcomes[0].buffers.empty());
  EXPECT_LE(rep.outcomes[0].final_bound, threshold);
  EXPECT_TRUE(rep.all_satisfied);
  // The final graph actually carries the buffers.
  bool buffered = false;
  for (const Edge& e : rep.final_graph.edges()) {
    if (e.channel.buffer_size > 1) buffered = true;
  }
  EXPECT_TRUE(buffered);
}

TEST(Requirements, ImpossibleThresholdReported) {
  const TaskGraph g = three_sensor_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const RequirementsReport rep =
      verify_disparity_requirements(g, {{6, Duration::ms(1)}}, rtm);
  ASSERT_EQ(rep.outcomes.size(), 1u);
  EXPECT_EQ(rep.outcomes[0].status, RequirementStatus::kViolated);
  EXPECT_FALSE(rep.all_satisfied);
  // An unhelpful remedy is not applied.
  for (const Edge& e : rep.final_graph.edges()) {
    EXPECT_EQ(e.channel.buffer_size, 1);
  }
}

TEST(Requirements, RemedyVerifiedBySimulation) {
  const TaskGraph g = three_sensor_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const MultiBufferDesign d = design_buffers_for_task(g, 6, rtm);
  const RequirementsReport rep =
      verify_disparity_requirements(g, {{6, d.optimized_bound}}, rtm);
  ASSERT_TRUE(rep.all_satisfied);

  SimOptions opt;
  opt.warmup = Duration::s(3);
  opt.duration = Duration::s(6);
  const SimResult res = Simulator(rep.final_graph, opt).run();
  EXPECT_LE(res.max_disparity[6], rep.outcomes[0].final_bound);
}

TEST(Requirements, MultipleTasksReverifiedAfterRemedies) {
  // Downstream task inherits the fusion task's disparity; a remedy for
  // one requirement must not silently break the other's verdict.
  TaskGraph g = three_sensor_graph();
  Task act;
  act.name = "act";
  act.wcet = act.bcet = Duration::ms(1);
  act.period = Duration::ms(10);
  act.ecu = 3;
  act.priority = 1;
  const TaskId act_id = g.add_task(act);
  g.add_edge(6, act_id);
  g.validate();
  const ResponseTimeMap rtm = testing::response_times_of(g);

  const Duration fuse_bound = analyze_time_disparity(g, 6, rtm).worst_case;
  const MultiBufferDesign d = design_buffers_for_task(g, 6, rtm);
  const std::vector<DisparityRequirement> reqs = {
      {6, d.optimized_bound},            // needs the remedy
      {act_id, fuse_bound + Duration::ms(50)},  // loose
  };
  const RequirementsReport rep = verify_disparity_requirements(g, reqs, rtm);
  ASSERT_EQ(rep.outcomes.size(), 2u);
  EXPECT_EQ(rep.outcomes[0].status, RequirementStatus::kFixedByBuffers);
  // The second outcome was re-verified against the buffered graph.
  EXPECT_LE(rep.outcomes[1].final_bound,
            rep.outcomes[1].requirement.max_disparity);
  EXPECT_TRUE(rep.all_satisfied);
}

TEST(Requirements, Preconditions) {
  const TaskGraph g = three_sensor_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  EXPECT_THROW(verify_disparity_requirements(g, {{99, Duration::ms(1)}}, rtm),
               PreconditionError);
  EXPECT_THROW(
      verify_disparity_requirements(g, {{6, Duration::ms(-1)}}, rtm),
      PreconditionError);
}

}  // namespace
}  // namespace ceta
