#include "sched/npfp_rta.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "helpers.hpp"

namespace ceta {
namespace {

// Builders -----------------------------------------------------------------

TaskId add(TaskGraph& g, const char* name, Duration wcet, Duration period,
           EcuId ecu, int prio) {
  Task t;
  t.name = name;
  t.wcet = t.bcet = wcet;
  t.period = period;
  t.ecu = ecu;
  t.priority = prio;
  return g.add_task(t);
}

TaskId add_source(TaskGraph& g, Duration period) {
  Task t;
  t.name = "src";
  t.period = period;
  return g.add_task(t);
}

// Tests ---------------------------------------------------------------------

TEST(NpfpRta, FixtureChainHandComputed) {
  // S -> A -> B, one ECU.  R(A) = W_A + blocking(W_B) = 2ms,
  // R(B) = hp interference (1ms) + W_B = 2ms.
  const TaskGraph g = testing::simple_chain_graph();
  const RtaResult rta = analyze_response_times(g);
  EXPECT_TRUE(rta.all_schedulable);
  EXPECT_EQ(rta.response_time[0], Duration::zero());  // source
  EXPECT_EQ(rta.response_time[1], Duration::ms(2));
  EXPECT_EQ(rta.response_time[2], Duration::ms(2));
}

TEST(NpfpRta, DiamondFixtureHandComputed) {
  const TaskGraph g = testing::diamond_graph();
  const RtaResult rta = analyze_response_times(g);
  EXPECT_TRUE(rta.all_schedulable);
  for (TaskId id = 1; id < g.num_tasks(); ++id) {
    EXPECT_EQ(rta.response_time[id], Duration::ms(2)) << "task " << id;
  }
}

TEST(NpfpRta, ThreeTasksOneEcu) {
  // t1 (W=2,T=10,p0), t2 (W=3,T=20,p1), t3 (W=1,T=50,p2):
  // R(t1) = 3 + 2 = 5;  R(t2) = 1 + 2 + 3 = 6;  R(t3) = 2 + 3 + 1 = 6.
  TaskGraph g;
  const TaskId s = add_source(g, Duration::ms(10));
  const TaskId t1 = add(g, "t1", Duration::ms(2), Duration::ms(10), 0, 0);
  const TaskId t2 = add(g, "t2", Duration::ms(3), Duration::ms(20), 0, 1);
  const TaskId t3 = add(g, "t3", Duration::ms(1), Duration::ms(50), 0, 2);
  g.add_edge(s, t1);
  g.add_edge(t1, t2);
  g.add_edge(t2, t3);

  const RtaResult rta = analyze_response_times(g);
  EXPECT_TRUE(rta.all_schedulable);
  EXPECT_EQ(rta.response_time[t1], Duration::ms(5));
  EXPECT_EQ(rta.response_time[t2], Duration::ms(6));
  EXPECT_EQ(rta.response_time[t3], Duration::ms(6));
}

TEST(NpfpRta, BlockingByLongLowPriorityTask) {
  // Non-preemptive: a long lower-priority job inflates the WCRT of the
  // highest-priority task.  t1 (W=1,T=10,p0), t2 (W=8,T=100,p1):
  // R(t1) = 8 + 1 = 9, R(t2) = 1 + 8 = 9.
  TaskGraph g;
  const TaskId s = add_source(g, Duration::ms(10));
  const TaskId t1 = add(g, "t1", Duration::ms(1), Duration::ms(10), 0, 0);
  const TaskId t2 = add(g, "t2", Duration::ms(8), Duration::ms(100), 0, 1);
  g.add_edge(s, t1);
  g.add_edge(t1, t2);

  const RtaResult rta = analyze_response_times(g);
  EXPECT_TRUE(rta.all_schedulable);
  EXPECT_EQ(rta.response_time[t1], Duration::ms(9));
  EXPECT_EQ(rta.response_time[t2], Duration::ms(9));
}

TEST(NpfpRta, MultiInstanceBusyPeriod) {
  // t0 (W=2,T=10,p0), t1 (W=2,T=4,p1), t2 (W=3,T=20,p2) — priorities by
  // index, deliberately not rate-monotonic.  Busy period of t1 is 15ms and
  // spans 4 instances; hand-computed R(t1) = 7 > T(t1) = 4 (deadline
  // miss), R(t0) = 5, R(t2) = 9.
  TaskGraph g;
  const TaskId s = add_source(g, Duration::ms(10));
  const TaskId t0 = add(g, "t0", Duration::ms(2), Duration::ms(10), 0, 0);
  const TaskId t1 = add(g, "t1", Duration::ms(2), Duration::ms(4), 0, 1);
  const TaskId t2 = add(g, "t2", Duration::ms(3), Duration::ms(20), 0, 2);
  g.add_edge(s, t0);
  g.add_edge(t0, t1);
  g.add_edge(t1, t2);

  const RtaResult rta = analyze_response_times(g);
  EXPECT_EQ(rta.response_time[t0], Duration::ms(5));
  EXPECT_EQ(rta.response_time[t1], Duration::ms(7));
  EXPECT_EQ(rta.response_time[t2], Duration::ms(9));
  EXPECT_TRUE(rta.schedulable[t0]);
  EXPECT_FALSE(rta.schedulable[t1]);  // 7 > 4
  EXPECT_TRUE(rta.schedulable[t2]);
  EXPECT_FALSE(rta.all_schedulable);
}

TEST(NpfpRta, OverUtilizedResourceDetected) {
  TaskGraph g;
  const TaskId s = add_source(g, Duration::ms(10));
  const TaskId t1 = add(g, "t1", Duration::ms(6), Duration::ms(10), 0, 0);
  const TaskId t2 = add(g, "t2", Duration::ms(5), Duration::ms(10), 0, 1);
  g.add_edge(s, t1);
  g.add_edge(t1, t2);

  const RtaResult rta = analyze_response_times(g);
  EXPECT_FALSE(rta.all_schedulable);
  EXPECT_EQ(rta.response_time[t1], Duration::max());
  EXPECT_EQ(rta.response_time[t2], Duration::max());
}

TEST(NpfpRta, IndependentEcusDoNotInterfere) {
  TaskGraph g;
  const TaskId s = add_source(g, Duration::ms(10));
  const TaskId t1 = add(g, "t1", Duration::ms(4), Duration::ms(10), 0, 0);
  const TaskId t2 = add(g, "t2", Duration::ms(4), Duration::ms(10), 1, 0);
  g.add_edge(s, t1);
  g.add_edge(t1, t2);

  const RtaResult rta = analyze_response_times(g);
  EXPECT_TRUE(rta.all_schedulable);
  // Alone on their ECU: R = W.
  EXPECT_EQ(rta.response_time[t1], Duration::ms(4));
  EXPECT_EQ(rta.response_time[t2], Duration::ms(4));
}

TEST(NpfpRta, SourceTasksHaveZeroResponse) {
  const TaskGraph g = testing::diamond_graph();
  const RtaResult rta = analyze_response_times(g);
  EXPECT_EQ(rta.response_time[0], Duration::zero());
}

TEST(NpfpRta, DuplicatePrioritySameEcuRejected) {
  TaskGraph g;
  const TaskId s = add_source(g, Duration::ms(10));
  const TaskId t1 = add(g, "t1", Duration::ms(1), Duration::ms(10), 0, 3);
  const TaskId t2 = add(g, "t2", Duration::ms(1), Duration::ms(10), 0, 3);
  g.add_edge(s, t1);
  g.add_edge(s, t2);
  EXPECT_THROW(analyze_response_times(g), PreconditionError);
}

TEST(NpfpRta, ResponseAtLeastWcetPlusBlocking) {
  // Property over random instances: R >= W, R >= blocking for lowest prio.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const TaskGraph g = testing::random_dag_graph(12, 3, seed);
    const RtaResult rta = analyze_response_times(g);
    ASSERT_TRUE(rta.all_schedulable);
    for (TaskId id = 0; id < g.num_tasks(); ++id) {
      EXPECT_GE(rta.response_time[id], g.task(id).wcet);
    }
  }
}

TEST(ResourceUtilization, SumsPerEcu) {
  TaskGraph g;
  const TaskId s = add_source(g, Duration::ms(10));
  const TaskId t1 = add(g, "t1", Duration::ms(2), Duration::ms(10), 0, 0);
  const TaskId t2 = add(g, "t2", Duration::ms(5), Duration::ms(20), 0, 1);
  const TaskId t3 = add(g, "t3", Duration::ms(1), Duration::ms(10), 1, 0);
  g.add_edge(s, t1);
  g.add_edge(t1, t2);
  g.add_edge(t2, t3);
  EXPECT_DOUBLE_EQ(resource_utilization(g, 0), 0.45);
  EXPECT_DOUBLE_EQ(resource_utilization(g, 1), 0.1);
  EXPECT_DOUBLE_EQ(resource_utilization(g, 7), 0.0);
  EXPECT_EQ(resources_of(g), (std::vector<EcuId>{0, 1}));
}

}  // namespace
}  // namespace ceta
