// The mutation API and its fine-grained invalidation (DESIGN.md §9).
//
// Three layers of evidence, mirroring the §9 contract:
//  1. Per-mutation-kind tests assert each matrix row *cell-wise* through
//     the engine's cache counters: entries the row marks "kept" must be
//     served as hits after the commit (survived_hits), entries it marks
//     "invalidated" must show up as stale evictions.
//  2. A 100-seed random-edit sweep checks that a mutated engine stays
//     field-identical to a freshly constructed engine after every edit.
//  3. The engine overloads of the design-space loops (multi-buffer,
//     Pareto, sensitivity, offset synthesis) must be bit-identical to
//     their free-function forms and restore the engine's graph.

#include "engine/incremental.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "disparity/multi_buffer.hpp"
#include "disparity/offset_opt.hpp"
#include "disparity/pareto.hpp"
#include "disparity/sensitivity.hpp"
#include "engine/analysis_engine.hpp"
#include "graph/paths.hpp"
#include "helpers.hpp"
#include "verify/property_checker.hpp"

namespace ceta {
namespace {

using ceta::testing::diamond_graph;
using ceta::testing::random_dag_graph;
using ceta::testing::response_times_of;

/// Two disjoint-ECU chains merging at a third-ECU sink:
///   s1 -> a1 -> a2 -> f      (a* on ECU 0)
///   s2 -> b1 -> b2 -> f      (b* on ECU 1, f on ECU 2)
/// The ECU separation makes the §9 "cohort" scoping observable: an edit
/// on the a-side must leave every b-side artifact untouched.
TaskGraph two_ecu_chains() {
  TaskGraph g;
  auto src = [&](const char* name, int ms) {
    Task t;
    t.name = name;
    t.period = Duration::ms(ms);
    return g.add_task(t);
  };
  auto tsk = [&](const char* name, int ms, EcuId ecu, int prio) {
    Task t;
    t.name = name;
    t.wcet = Duration::ms(1);
    t.bcet = Duration::us(500);
    t.period = Duration::ms(ms);
    t.ecu = ecu;
    t.priority = prio;
    return g.add_task(t);
  };
  const TaskId s1 = src("s1", 10);
  const TaskId s2 = src("s2", 20);
  const TaskId a1 = tsk("a1", 10, 0, 0);
  const TaskId a2 = tsk("a2", 10, 0, 1);
  const TaskId b1 = tsk("b1", 20, 1, 0);
  const TaskId b2 = tsk("b2", 20, 1, 1);
  const TaskId f = tsk("f", 20, 2, 0);
  g.add_edge(s1, a1);
  g.add_edge(a1, a2);
  g.add_edge(a2, f);
  g.add_edge(s2, b1);
  g.add_edge(b1, b2);
  g.add_edge(b2, f);
  g.validate();
  return g;
}

void expect_reports_equal(const DisparityReport& a, const DisparityReport& b) {
  EXPECT_EQ(a.worst_case, b.worst_case);
  ASSERT_EQ(a.chains, b.chains);
  ASSERT_EQ(a.pairs.size(), b.pairs.size());
  for (std::size_t i = 0; i < a.pairs.size(); ++i) {
    EXPECT_EQ(a.pairs[i].chain_a, b.pairs[i].chain_a);
    EXPECT_EQ(a.pairs[i].chain_b, b.pairs[i].chain_b);
    EXPECT_EQ(a.pairs[i].bound, b.pairs[i].bound);
  }
}

void expect_graphs_equal(const TaskGraph& a, const TaskGraph& b) {
  ASSERT_EQ(a.num_tasks(), b.num_tasks());
  for (TaskId id = 0; id < a.num_tasks(); ++id) {
    EXPECT_EQ(a.task(id).period, b.task(id).period) << "task " << id;
    EXPECT_EQ(a.task(id).wcet, b.task(id).wcet) << "task " << id;
    EXPECT_EQ(a.task(id).bcet, b.task(id).bcet) << "task " << id;
    EXPECT_EQ(a.task(id).offset, b.task(id).offset) << "task " << id;
    EXPECT_EQ(a.task(id).priority, b.task(id).priority) << "task " << id;
  }
  ASSERT_EQ(a.edges().size(), b.edges().size());
  for (std::size_t i = 0; i < a.edges().size(); ++i) {
    EXPECT_EQ(a.edges()[i].from, b.edges()[i].from);
    EXPECT_EQ(a.edges()[i].to, b.edges()[i].to);
    EXPECT_EQ(a.edges()[i].channel.buffer_size,
              b.edges()[i].channel.buffer_size);
  }
}

/// Field-wise comparison of a (mutated) engine against a fresh engine on
/// the same graph — the incremental ≡ fresh contract.
void expect_matches_fresh(const AnalysisEngine& e, TaskId task) {
  const AnalysisEngine fresh(e.graph());
  EXPECT_EQ(e.response_times(), fresh.response_times());
  for (const Path& c : fresh.chains(task)) {
    const BackwardBounds be = e.chain_bounds(c);
    const BackwardBounds bf = fresh.chain_bounds(c);
    EXPECT_EQ(be.wcbt, bf.wcbt);
    EXPECT_EQ(be.bcbt, bf.bcbt);
  }
  EXPECT_EQ(e.chains(task), fresh.chains(task));
  for (const DisparityMethod m :
       {DisparityMethod::kIndependent, DisparityMethod::kForkJoin}) {
    DisparityOptions opt;
    opt.method = m;
    expect_reports_equal(e.disparity(task, opt), fresh.disparity(task, opt));
  }
}

/// Warm every cache layer for `task`.
void warm(const AnalysisEngine& e, TaskId task) {
  (void)e.rta();
  for (const Path& c : e.chains(task)) (void)e.chain_bounds(c);
  for (const Edge& edge : e.graph().edges()) (void)e.hop(edge.from, edge.to);
  (void)e.disparity(task);
}

const Path& chain_with_front(const std::vector<Path>& chains, TaskId front) {
  for (const Path& c : chains) {
    if (c.front() == front) return c;
  }
  ADD_FAILURE() << "no chain with front " << front;
  return chains.front();
}

// ---- per-mutation-kind invalidation (§9 matrix rows) -----------------------

TEST(EngineIncremental, BufferResizeInvalidatesOnlyTraversingChains) {
  const TaskGraph g = two_ecu_chains();
  AnalysisEngine e{TaskGraph{g}};
  const TaskId f = g.sinks().front();
  warm(e, f);
  const std::vector<Path> chains = e.chains(f);
  const Path chain_a = chain_with_front(chains, 0);  // s1 -> a1 -> a2 -> f
  const Path chain_b = chain_with_front(chains, 1);  // s2 -> b1 -> b2 -> f

  const EngineCacheStats before = e.cache_stats();
  e.set_buffer(chain_a[0], chain_a[1], 3);

  // §9 row "buffer", column RTA: kept — no refresh, no rerun.
  (void)e.response_times();
  EXPECT_EQ(e.cache_stats().rta_runs, 1u);
  EXPECT_EQ(e.cache_stats().rta_refreshed_tasks, 0u);

  // Column chain sets: kept (the enumeration ignores channel depths).
  (void)e.chains(f);
  EXPECT_EQ(e.cache_stats().chain_set_stale, before.chain_set_stale);
  EXPECT_EQ(e.cache_stats().chain_set_hits, before.chain_set_hits + 1);

  // Column WCBT/BCBT: invalidated for the traversing chain only.  The
  // b-chain entry predates the commit and must be served as a survivor.
  const BackwardBounds bb = e.chain_bounds(chain_b);
  EXPECT_EQ(e.cache_stats().chain_bound_stale, before.chain_bound_stale);
  EXPECT_EQ(e.cache_stats().chain_bound_hits, before.chain_bound_hits + 1);
  EXPECT_GT(e.cache_stats().survived_hits, before.survived_hits);
  (void)e.chain_bounds(chain_a);
  EXPECT_EQ(e.cache_stats().chain_bound_stale, before.chain_bound_stale + 1);

  // Column hop bounds: kept — θ does not read channel depths.
  for (const Edge& edge : e.graph().edges()) (void)e.hop(edge.from, edge.to);
  EXPECT_EQ(e.cache_stats().hop_stale, before.hop_stale);
  EXPECT_EQ(e.cache_stats().hop_misses, before.hop_misses);

  // Column disparity reports: invalidated downstream of the edge.
  (void)e.disparity(f);
  EXPECT_EQ(e.cache_stats().report_stale, before.report_stale + 1);

  // The recomputed values equal a fresh engine's, and the resize is the
  // Lemma 6 shift: the buffered chain's WCBT moved, the other did not.
  expect_matches_fresh(e, f);
  const ResponseTimeMap rtm = response_times_of(e.graph());
  EXPECT_EQ(bb.wcbt, backward_bounds(e.graph(), chain_b, rtm).wcbt);
}

TEST(EngineIncremental, WcetEditInvalidatesEcuCohortOnly) {
  const TaskGraph g = two_ecu_chains();
  AnalysisEngine e{TaskGraph{g}};
  const TaskId f = g.sinks().front();
  warm(e, f);
  const std::vector<Path> chains = e.chains(f);
  const Path chain_a = chain_with_front(chains, 0);
  const Path chain_b = chain_with_front(chains, 1);
  const TaskId a1 = chain_a[1];

  const EngineCacheStats before = e.cache_stats();
  e.set_wcet_range(a1, Duration::us(200), Duration::us(500));

  // §9 row "WCET", column RTA: scoped refresh of a1's ECU cohort {a1, a2}
  // only — not a full rerun, and the b-side/f entries are untouched.
  (void)e.response_times();
  EXPECT_EQ(e.cache_stats().rta_runs, 1u);
  EXPECT_EQ(e.cache_stats().rta_refreshed_tasks, 2u);

  // Column WCBT/BCBT: the cohort-free b-chain survives; the a-chain is
  // stale (its member epochs moved with the cohort).
  (void)e.chain_bounds(chain_b);
  EXPECT_EQ(e.cache_stats().chain_bound_stale, before.chain_bound_stale);
  EXPECT_EQ(e.cache_stats().chain_bound_hits, before.chain_bound_hits + 1);
  (void)e.chain_bounds(chain_a);
  EXPECT_EQ(e.cache_stats().chain_bound_stale, before.chain_bound_stale + 1);

  // Column chain sets: kept — WCET edits cannot change the topology.
  (void)e.chains(f);
  EXPECT_EQ(e.cache_stats().chain_set_stale, before.chain_set_stale);

  expect_matches_fresh(e, f);
}

TEST(EngineIncremental, PeriodEditAlsoInvalidatesChainSets) {
  const TaskGraph g = two_ecu_chains();
  AnalysisEngine e{TaskGraph{g}};
  const TaskId f = g.sinks().front();
  warm(e, f);
  const std::vector<Path> chains = e.chains(f);
  const Path chain_a = chain_with_front(chains, 0);
  const Path chain_b = chain_with_front(chains, 1);

  const EngineCacheStats before = e.cache_stats();
  e.set_period(chain_a.front(), Duration::ms(20));  // s1: 10ms -> 20ms

  // §9 row "period": chain sets downstream of the task are invalidated
  // (period changes can alter enumeration pruning in general), bounds of
  // chains through the task are stale, everything else survives.
  (void)e.chains(f);
  EXPECT_EQ(e.cache_stats().chain_set_stale, before.chain_set_stale + 1);
  (void)e.chain_bounds(chain_b);
  EXPECT_EQ(e.cache_stats().chain_bound_stale, before.chain_bound_stale);
  (void)e.chain_bounds(chain_a);
  EXPECT_EQ(e.cache_stats().chain_bound_stale, before.chain_bound_stale + 1);

  expect_matches_fresh(e, f);
}

TEST(EngineIncremental, PolicyEditInvalidatesEcuCohortOnly) {
  const TaskGraph g = two_ecu_chains();
  AnalysisEngine e{TaskGraph{g}};
  const TaskId f = g.sinks().front();
  warm(e, f);
  const std::vector<Path> chains = e.chains(f);
  const Path chain_a = chain_with_front(chains, 0);  // s1 -> a1 -> a2 -> f
  const Path chain_b = chain_with_front(chains, 1);  // s2 -> b1 -> b2 -> f

  const EngineCacheStats before = e.cache_stats();
  e.set_policy(0, SchedPolicy::kPreemptive);  // flips a1/a2's ECU only
  EXPECT_EQ(e.graph().policy(0), SchedPolicy::kPreemptive);
  EXPECT_EQ(e.graph().policy(1), SchedPolicy::kNonPreemptive);

  // §9 row "policy", column RTA: scoped refresh of the ECU's cohort
  // {a1, a2} only — not a full rerun; b-side and f entries untouched.
  (void)e.response_times();
  EXPECT_EQ(e.cache_stats().rta_runs, 1u);
  EXPECT_EQ(e.cache_stats().rta_refreshed_tasks, 2u);

  // Column WCBT/BCBT: the other ECU's chain survives as a pure hit; the
  // a-chain is stale (its members' epochs moved with the cohort).
  (void)e.chain_bounds(chain_b);
  EXPECT_EQ(e.cache_stats().chain_bound_stale, before.chain_bound_stale);
  EXPECT_EQ(e.cache_stats().chain_bound_hits, before.chain_bound_hits + 1);
  EXPECT_GT(e.cache_stats().survived_hits, before.survived_hits);

  // Column hop bounds: exactly the hops touching a cohort member re-derive
  // (the Lemma 4 refinements are routed by the policy); the three b-side
  // and f-side hops survive.  Checked before the a-chain bound recompute,
  // which consumes the stale entries itself.
  std::size_t hop_stale = 0;
  for (const Edge& edge : e.graph().edges()) {
    const std::size_t s0 = e.cache_stats().hop_stale;
    (void)e.hop(edge.from, edge.to);
    hop_stale += e.cache_stats().hop_stale - s0;
  }
  EXPECT_EQ(hop_stale, 3u);  // s1->a1, a1->a2, a2->f

  (void)e.chain_bounds(chain_a);
  EXPECT_EQ(e.cache_stats().chain_bound_stale, before.chain_bound_stale + 1);

  // Column chain sets: kept — dispatching cannot change the topology.
  (void)e.chains(f);
  EXPECT_EQ(e.cache_stats().chain_set_stale, before.chain_set_stale);

  // Column disparity reports: invalidated downstream of the cohort.
  (void)e.disparity(f);
  EXPECT_EQ(e.cache_stats().report_stale, before.report_stale + 1);

  expect_matches_fresh(e, f);
}

TEST(EngineIncremental, MixedPolicyEditsStayFreshEquivalent) {
  // Drive one ECU through all three disciplines (direct setter and
  // batched transaction) and check the engine stays field-identical to a
  // fresh engine at every step — the §9 contract under the policy row.
  const TaskGraph g = two_ecu_chains();
  AnalysisEngine e{TaskGraph{g}};
  const TaskId f = g.sinks().front();
  warm(e, f);

  e.set_policy(0, SchedPolicy::kEdf);
  expect_matches_fresh(e, f);

  AnalysisEngine::Transaction txn(e);
  txn.set_policy(0, SchedPolicy::kPreemptive)
      .set_policy(1, SchedPolicy::kEdf);
  txn.commit();
  EXPECT_EQ(e.graph().policy(0), SchedPolicy::kPreemptive);
  EXPECT_EQ(e.graph().policy(1), SchedPolicy::kEdf);
  expect_matches_fresh(e, f);

  // Restoring the default erases the override (canonical serialization).
  e.set_policy(0, SchedPolicy::kNonPreemptive);
  e.set_policy(1, SchedPolicy::kNonPreemptive);
  EXPECT_TRUE(e.graph().policies().empty());
  expect_matches_fresh(e, f);
}

TEST(EngineIncremental, OffsetEditInvalidatesNothing) {
  const TaskGraph g = two_ecu_chains();
  AnalysisEngine e{TaskGraph{g}};
  const TaskId f = g.sinks().front();
  warm(e, f);

  const EngineCacheStats before = e.cache_stats();
  e.set_offset(0, Duration::ms(5));

  // §9 row "offset": every column kept — offsets feed only the exact LET
  // oracle and the simulator, neither of which the engine caches.
  warm(e, f);
  const EngineCacheStats after = e.cache_stats();
  EXPECT_EQ(after.mutation_commits, before.mutation_commits + 1);
  EXPECT_EQ(after.hop_stale, before.hop_stale);
  EXPECT_EQ(after.chain_bound_stale, before.chain_bound_stale);
  EXPECT_EQ(after.chain_set_stale, before.chain_set_stale);
  EXPECT_EQ(after.report_stale, before.report_stale);
  EXPECT_EQ(after.rta_refreshed_tasks, before.rta_refreshed_tasks);
  EXPECT_EQ(e.graph().task(0).offset, Duration::ms(5));
  expect_matches_fresh(e, f);
}

TEST(EngineIncremental, EdgeEditsRebuildScopedRegion) {
  const TaskGraph g = two_ecu_chains();
  AnalysisEngine e{TaskGraph{g}};
  const TaskId f = g.sinks().front();
  warm(e, f);
  const std::vector<Path> chains = e.chains(f);
  const Path chain_b = chain_with_front(chains, 1);

  // §9 row "add edge": chain sets + reports downstream of `to` rebuild;
  // RTA and existing bounds survive (the new edge is in no cached chain).
  const EngineCacheStats before = e.cache_stats();
  e.add_edge(0, f);  // new chain s1 -> f
  EXPECT_EQ(e.chains(f), enumerate_source_chains(e.graph(), f));
  EXPECT_EQ(e.chains(f).size(), 3u);
  EXPECT_EQ(e.cache_stats().rta_refreshed_tasks, 0u);
  (void)e.chain_bounds(chain_b);
  EXPECT_EQ(e.cache_stats().chain_bound_stale, before.chain_bound_stale);
  expect_matches_fresh(e, f);

  // §9 row "remove edge": the closure is taken on the *pre-commit* graph
  // (removal destroys reachability), restoring the original chain set.
  e.remove_edge(0, f);
  EXPECT_EQ(e.chains(f), enumerate_source_chains(e.graph(), f));
  EXPECT_EQ(e.chains(f).size(), 2u);
  expect_matches_fresh(e, f);
}

// ---- incremental ≡ fresh under random edit sequences -----------------------

TEST(EngineIncremental, RandomEditSweepMatchesFreshOver100Seeds) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const TaskGraph g = random_dag_graph(10, 3, seed);
    const TaskId sink = g.sinks().front();
    AnalysisEngine e{TaskGraph{g}};
    warm(e, sink);
    Rng rng(seed * 7919);
    for (int edit = 0; edit < 5; ++edit) {
      switch (rng.uniform_int(0, 3)) {
        case 0: {  // FIFO resize on a random edge
          const auto& edges = e.graph().edges();
          const Edge& edge = edges[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(edges.size()) - 1))];
          e.set_buffer(edge.from, edge.to,
                       static_cast<int>(rng.uniform_int(1, 3)));
          break;
        }
        case 1: {  // WCET decrease on a random non-source task
          const TaskId t = static_cast<TaskId>(rng.uniform_int(
              0, static_cast<std::int64_t>(e.graph().num_tasks()) - 1));
          if (e.graph().is_source(t)) continue;
          const Task& task = e.graph().task(t);
          const Duration w = task.bcet + (task.wcet - task.bcet) / 2;
          e.set_wcet_range(t, task.bcet, w);
          break;
        }
        case 2: {  // period doubling on a random source
          const auto sources = e.graph().sources();
          const TaskId s = sources[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(sources.size()) - 1))];
          e.set_period(s, e.graph().task(s).period * 2);
          break;
        }
        default: {  // offset nudge on a random source
          const auto sources = e.graph().sources();
          const TaskId s = sources[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(sources.size()) - 1))];
          e.set_offset(s, e.graph().task(s).period / 2);
          break;
        }
      }
      expect_matches_fresh(e, sink);
      if (::testing::Test::HasFailure()) {
        FAIL() << "divergence at seed " << seed << ", edit " << edit;
      }
    }
  }
}

// ---- engine ports of the design-space loops --------------------------------

TEST(EngineIncremental, MultiBufferPortMatchesFreeFunction) {
  const TaskGraph g = diamond_graph();
  const ResponseTimeMap rtm = response_times_of(g);
  const TaskId sink = g.sinks().front();
  AnalysisEngine e{TaskGraph{g}};

  const MultiBufferDesign free = design_buffers_for_task(g, sink, rtm);
  const MultiBufferDesign port = design_buffers_for_task(e, sink);
  EXPECT_EQ(port.baseline_bound, free.baseline_bound);
  EXPECT_EQ(port.optimized_bound, free.optimized_bound);
  ASSERT_EQ(port.channels.size(), free.channels.size());
  for (std::size_t i = 0; i < port.channels.size(); ++i) {
    EXPECT_EQ(port.channels[i].from, free.channels[i].from);
    EXPECT_EQ(port.channels[i].to, free.channels[i].to);
    EXPECT_EQ(port.channels[i].buffer_size, free.channels[i].buffer_size);
    EXPECT_EQ(port.channels[i].shift, free.channels[i].shift);
  }
  expect_graphs_equal(e.graph(), g);  // restore-on-return contract
}

TEST(EngineIncremental, ParetoPortMatchesFreeFunction) {
  const TaskGraph g = diamond_graph();
  const ResponseTimeMap rtm = response_times_of(g);
  const TaskId sink = g.sinks().front();
  const std::vector<Path> chains = enumerate_source_chains(g, sink);
  ASSERT_GE(chains.size(), 2u);
  AnalysisEngine e{TaskGraph{g}};

  const std::vector<ParetoPoint> free =
      buffer_pareto(g, chains[0], chains[1], rtm);
  const std::vector<ParetoPoint> port = buffer_pareto(e, chains[0], chains[1]);
  ASSERT_EQ(port.size(), free.size());
  for (std::size_t i = 0; i < port.size(); ++i) {
    EXPECT_EQ(port[i].buffer_size, free[i].buffer_size);
    EXPECT_EQ(port[i].shift, free[i].shift);
    EXPECT_EQ(port[i].bound, free[i].bound);
  }
  expect_graphs_equal(e.graph(), g);
}

TEST(EngineIncremental, SensitivityPortMatchesFreeFunction) {
  const TaskGraph g = random_dag_graph(10, 3, /*seed=*/5);
  const TaskId sink = g.sinks().front();
  AnalysisEngine e{TaskGraph{g}};

  const std::vector<SensitivityEntry> free = disparity_sensitivity(g, sink);
  const std::vector<SensitivityEntry> port = disparity_sensitivity(e, sink);
  ASSERT_EQ(port.size(), free.size());
  for (std::size_t i = 0; i < port.size(); ++i) {
    EXPECT_EQ(port[i].task, free[i].task);
    EXPECT_EQ(port[i].param, free[i].param);
    EXPECT_EQ(port[i].baseline, free[i].baseline);
    EXPECT_EQ(port[i].perturbed, free[i].perturbed);
    EXPECT_EQ(port[i].schedulable, free[i].schedulable);
  }
  expect_graphs_equal(e.graph(), g);
}

TEST(EngineIncremental, OffsetPlanPortMatchesFreeFunction) {
  // The hand-computed LET fixture of test_offset_opt (misaligned sources).
  TaskGraph g;
  Task s1;
  s1.name = "S1";
  s1.period = Duration::ms(10);
  const TaskId s1id = g.add_task(s1);
  Task s2;
  s2.name = "S2";
  s2.period = Duration::ms(20);
  s2.offset = Duration::ms(5);
  const TaskId s2id = g.add_task(s2);
  auto mk = [](const char* name, Duration period, EcuId ecu, int prio) {
    Task t;
    t.name = name;
    t.wcet = t.bcet = Duration::ms(1);
    t.period = period;
    t.ecu = ecu;
    t.priority = prio;
    t.comm = CommSemantics::kLet;
    return t;
  };
  const TaskId a = g.add_task(mk("A", Duration::ms(10), 0, 0));
  const TaskId b = g.add_task(mk("B", Duration::ms(20), 0, 1));
  const TaskId f = g.add_task(mk("F", Duration::ms(20), 1, 0));
  g.add_edge(s1id, a);
  g.add_edge(s2id, b);
  g.add_edge(a, f);
  g.add_edge(b, f);
  g.validate();

  AnalysisEngine e{TaskGraph{g}};
  const OffsetPlan free = plan_source_offsets(g, f);
  const OffsetPlan port = plan_source_offsets(e, f);
  EXPECT_EQ(port.baseline, free.baseline);
  EXPECT_EQ(port.optimized, free.optimized);
  EXPECT_EQ(port.evaluations, free.evaluations);
  ASSERT_EQ(port.offsets.size(), free.offsets.size());
  for (std::size_t i = 0; i < port.offsets.size(); ++i) {
    EXPECT_EQ(port.offsets[i].task, free.offsets[i].task);
    EXPECT_EQ(port.offsets[i].offset, free.offsets[i].offset);
  }
  expect_graphs_equal(e.graph(), g);
}

// ---- counting contract, transactions, modes --------------------------------

TEST(EngineIncremental, LookupsAreCountedOnceAtTheEntryLayer) {
  // Regression pin for the double-count fix: a disparity() query counts
  // exactly one report lookup; its internal chain-set/bound/hop reads
  // (feeding the pair kernel's memoized truncated-pair table) stay
  // uncounted but still warm the caches.
  const TaskGraph g = two_ecu_chains();
  AnalysisEngine e{TaskGraph{g}};
  const TaskId f = g.sinks().front();
  (void)e.disparity(f);

  EngineCacheStats stats = e.cache_stats();
  EXPECT_EQ(stats.report_misses, 1u);
  EXPECT_EQ(stats.report_hits, 0u);
  EXPECT_EQ(stats.chain_bound_misses, 0u);
  EXPECT_EQ(stats.chain_bound_hits, 0u);
  EXPECT_EQ(stats.hop_misses, 0u);
  EXPECT_EQ(stats.hop_hits, 0u);
  EXPECT_EQ(stats.chain_set_misses, 0u);
  EXPECT_EQ(stats.chain_set_hits, 0u);

  // The caches WERE warmed by the uncounted traffic: direct queries at
  // each layer are hits on their first counted lookup.
  const std::vector<Path> chains = enumerate_source_chains(g, f);
  (void)e.hop(chains[0][0], chains[0][1]);
  (void)e.chain_bounds(chains[0]);
  (void)e.chains(f);
  stats = e.cache_stats();
  EXPECT_EQ(stats.hop_hits, 1u);
  EXPECT_EQ(stats.hop_misses, 0u);
  EXPECT_EQ(stats.chain_bound_hits, 1u);
  EXPECT_EQ(stats.chain_bound_misses, 0u);
  EXPECT_EQ(stats.chain_set_hits, 1u);
  EXPECT_EQ(stats.chain_set_misses, 0u);
}

TEST(EngineIncremental, TransactionBatchesOneCommit) {
  const TaskGraph g = two_ecu_chains();
  AnalysisEngine e{TaskGraph{g}};
  const TaskId f = g.sinks().front();
  warm(e, f);

  // A priority swap is only valid jointly — each half alone collides.
  const int pa = e.graph().task(2).priority;
  const int pb = e.graph().task(3).priority;
  AnalysisEngine::Transaction txn(e);
  txn.set_priority(2, pb).set_priority(3, pa);
  EXPECT_EQ(txn.size(), 2u);
  txn.commit();

  EXPECT_EQ(e.cache_stats().mutation_commits, 1u);
  EXPECT_EQ(e.cache_stats().mutation_edits, 2u);
  EXPECT_EQ(e.graph().task(2).priority, pb);
  EXPECT_EQ(e.graph().task(3).priority, pa);
  expect_matches_fresh(e, f);
}

TEST(EngineIncremental, RejectedCommitLeavesGraphAndCachesUntouched) {
  const TaskGraph g = two_ecu_chains();
  AnalysisEngine e{TaskGraph{g}};
  const TaskId f = g.sinks().front();
  const DisparityReport before = e.disparity(f);
  const EngineCacheStats stats_before = e.cache_stats();

  // Second edit invalidates the graph (zero period): the whole batch must
  // be rejected with the strong guarantee.
  AnalysisEngine::Transaction txn(e);
  txn.set_wcet_range(2, Duration::us(100), Duration::us(800))
      .set_period(0, Duration::zero());
  EXPECT_THROW(txn.commit(), PreconditionError);

  expect_graphs_equal(e.graph(), g);
  EXPECT_EQ(e.cache_stats().mutation_commits, stats_before.mutation_commits);
  // The cached report survived: re-query is a pure hit.
  expect_reports_equal(e.disparity(f), before);
  EXPECT_EQ(e.cache_stats().report_hits, stats_before.report_hits + 1);
  EXPECT_EQ(e.cache_stats().report_stale, stats_before.report_stale);
}

// Parameter-only batches are validated against the *final* batch state
// before anything is applied (the commit fast path skips the snapshot),
// so every rejection below must leave the graph byte-identical.
TEST(EngineIncremental, PrecheckedCommitRejectsInvalidFinalStates) {
  const TaskGraph g = two_ecu_chains();
  AnalysisEngine e{TaskGraph{g}};

  // Priority collision within the ECU cohort (a1 p0, a2 p1 on ECU 0).
  EXPECT_THROW(e.set_priority(2, g.task(3).priority), PreconditionError);
  // Joint per-task invariant: offset must stay inside the final period.
  EXPECT_THROW(e.set_offset(2, Duration::ms(15)), PreconditionError);
  {
    AnalysisEngine::Transaction txn(e);
    txn.set_offset(2, Duration::ms(8)).set_period(2, Duration::ms(5));
    EXPECT_THROW(txn.commit(), PreconditionError);
  }
  // Buffer edits need an existing edge and a positive depth.
  EXPECT_THROW(e.set_buffer(0, 5, 2), PreconditionError);
  EXPECT_THROW(e.set_buffer(0, 2, 0), PreconditionError);
  EXPECT_THROW(e.set_period(99, Duration::ms(10)), PreconditionError);

  expect_graphs_equal(e.graph(), g);
  EXPECT_EQ(e.cache_stats().mutation_commits, 0u);

  // A batched swap is judged on final priorities, so it still commits.
  AnalysisEngine::Transaction swap(e);
  swap.set_priority(2, g.task(3).priority).set_priority(3, g.task(2).priority);
  swap.commit();
  EXPECT_EQ(e.graph().task(2).priority, g.task(3).priority);
  EXPECT_EQ(e.graph().task(3).priority, g.task(2).priority);
}

TEST(EngineIncremental, ExternalRtmModeRejectsSchedulingEdits) {
  const TaskGraph g = two_ecu_chains();
  ResponseTimeMap rtm = response_times_of(g);
  AnalysisEngine e(TaskGraph{g}, std::move(rtm));

  // The adopted WCRT map cannot be refreshed: scheduling edits throw...
  EXPECT_THROW(e.set_period(0, Duration::ms(20)), PreconditionError);
  EXPECT_THROW(e.set_wcet_range(2, Duration::zero(), Duration::ms(1)),
               PreconditionError);
  EXPECT_THROW(e.set_priority(2, 7), PreconditionError);
  EXPECT_THROW(e.set_policy(0, SchedPolicy::kEdf), PreconditionError);

  // ...while buffer/offset/structural edits stay available and correct.
  const TaskId f = g.sinks().front();
  e.set_buffer(2, 3, 2);
  e.set_offset(0, Duration::ms(1));
  TaskGraph edited = g;
  edited.set_buffer_size(2, 3, 2);
  edited.task(0).offset = Duration::ms(1);
  const AnalysisEngine fresh(edited, response_times_of(edited));
  expect_reports_equal(e.disparity(f), fresh.disparity(f));
}

TEST(EngineIncremental, ChainSetReferenceSurvivesMutation) {
  const TaskGraph g = two_ecu_chains();
  AnalysisEngine e{TaskGraph{g}};
  const TaskId f = g.sinks().front();
  const std::vector<Path>& ref = e.chains(f);
  EXPECT_EQ(ref.size(), 2u);

  // A structural edit refreshes the set *in place*: the old reference
  // stays valid and observes the new contents.
  e.add_edge(0, f);
  const std::vector<Path>& again = e.chains(f);
  EXPECT_EQ(&ref, &again);
  EXPECT_EQ(again.size(), 3u);
  EXPECT_EQ(again, enumerate_source_chains(e.graph(), f));
}

// ---- the verify property and its fault injection ---------------------------

TEST(EngineIncremental, VerifyPropertyHoldsAndFaultIsCaught) {
  const TaskGraph g = two_ecu_chains();
  const TaskId f = g.sinks().front();
  verify::ProbeConfig cfg;
  EXPECT_FALSE(verify::check_property(
                   verify::Property::kIncrementalMatchesFresh, g, f, cfg)
                   .violated());

  // Skipping the buffer-edge epoch bump must be caught at the resize step
  // (the stale entry misses the Lemma 6 shift).
  cfg.fault = verify::FaultInjection::kSkipInvalidation;
  const verify::PropertyOutcome out = verify::check_property(
      verify::Property::kIncrementalMatchesFresh, g, f, cfg);
  EXPECT_TRUE(out.violated());
  EXPECT_NE(out.detail.find("buffer resize"), std::string::npos)
      << out.detail;
}

TEST(EngineIncremental, InjectedFaultViolationShrinks) {
  const TaskGraph g = random_dag_graph(12, 3, /*seed=*/7);
  const TaskId sink = g.sinks().front();
  ASSERT_GE(count_source_chains(g, sink), 2u);

  verify::PropertyChecker checker{verify::CheckerOptions{}};
  verify::CheckerReport report;
  verify::ProbeConfig cfg;
  cfg.fault = verify::FaultInjection::kSkipInvalidation;
  checker.check_instance(g, sink, cfg, report);

  ASSERT_FALSE(report.violations.empty());
  const verify::Violation& v = report.violations.front();
  EXPECT_EQ(v.property, verify::Property::kIncrementalMatchesFresh);
  EXPECT_EQ(v.original_tasks, g.num_tasks());
  EXPECT_LE(v.graph.num_tasks(), v.original_tasks);
  EXPECT_GT(v.shrink_rounds, 0u);
  // The shrunken graph still reproduces the violation.
  EXPECT_TRUE(verify::check_property(v.property, v.graph, v.task, cfg)
                  .violated());
}

// ---- rollback exception-safety ---------------------------------------------
//
// Every rollback path must (a) restore the pre-error state exactly and
// (b) rethrow the *original* exception — the diagnostic that names the
// actual problem — never a generic "mutation failed" that swallows it.

TEST(EngineIncremental, StructuralRollbackPreservesOriginalDiagnostic) {
  const TaskGraph g = two_ecu_chains();
  const TaskId f = g.sinks().front();
  const TaskId a1 = g.successors(g.sources().front()).front();
  AnalysisEngine e{TaskGraph{g}};
  const DisparityReport before = e.disparity(f);

  // add_edge(f, a1) closes the a-chain into a cycle: the batch applies
  // structurally, whole-graph validation rejects it, and the snapshot
  // rollback must rethrow the validator's own message.
  try {
    AnalysisEngine::Transaction txn(e);
    txn.set_period(a1, Duration::ms(7));  // valid edit, rolled back too
    txn.add_edge(f, a1);
    txn.commit();
    FAIL() << "expected the cycle to be rejected";
  } catch (const RollbackError& err) {
    FAIL() << "rollback itself failed: " << err.what();
  } catch (const Error& err) {
    EXPECT_NE(std::string(err.what()).find("cycle"), std::string::npos)
        << err.what();
  }

  // Strong guarantee: the valid edit of the batch is gone with the bad
  // one, and the engine still answers bit-identically to a fresh build.
  expect_graphs_equal(e.graph(), g);
  EXPECT_EQ(e.disparity(f).worst_case, before.worst_case);
  AnalysisEngine fresh{TaskGraph{g}};
  EXPECT_EQ(e.disparity(f).worst_case, fresh.disparity(f).worst_case);
}

TEST(EngineIncremental, OffsetSweepFaultRestoresOffsetsAndMessage) {
  // The misaligned LET fixture of test_offset_opt.cpp: sink 4, every
  // closure task offset-tunable, so the sweep is several evaluations deep
  // when the injected fault fires mid-pass.
  TaskGraph g;
  Task s1;
  s1.name = "S1";
  s1.period = Duration::ms(10);
  const TaskId s1id = g.add_task(s1);
  Task s2;
  s2.name = "S2";
  s2.period = Duration::ms(20);
  s2.offset = Duration::ms(5);
  const TaskId s2id = g.add_task(s2);
  auto mk = [](const char* name, Duration period, EcuId ecu, int prio) {
    Task t;
    t.name = name;
    t.wcet = t.bcet = Duration::ms(1);
    t.period = period;
    t.ecu = ecu;
    t.priority = prio;
    t.comm = CommSemantics::kLet;
    return t;
  };
  const TaskId a = g.add_task(mk("A", Duration::ms(10), 0, 0));
  const TaskId b = g.add_task(mk("B", Duration::ms(20), 0, 1));
  const TaskId f = g.add_task(mk("F", Duration::ms(20), 1, 0));
  g.add_edge(s1id, a);
  g.add_edge(s2id, b);
  g.add_edge(a, f);
  g.add_edge(b, f);
  g.validate();

  AnalysisEngine e{TaskGraph{g}};
  OffsetPlanOptions opt;
  opt.fault_fail_after_evaluations = 3;  // mid-sweep, offsets already moved
  try {
    plan_source_offsets(e, f, opt);
    FAIL() << "expected the injected fault";
  } catch (const RollbackError& err) {
    FAIL() << "offset restore failed: " << err.what();
  } catch (const Error& err) {
    EXPECT_NE(std::string(err.what()).find("injected offset-sweep fault"),
              std::string::npos)
        << err.what();
  }

  // The tentative sweep offsets were rolled back; the engine is as if the
  // plan was never attempted.
  expect_graphs_equal(e.graph(), g);
  const OffsetPlan clean = plan_source_offsets(e, f);
  EXPECT_EQ(clean.baseline, plan_source_offsets(g, f).baseline);
  expect_graphs_equal(e.graph(), g);
}

TEST(EngineIncremental, PropertyNameRoundTrips) {
  EXPECT_STREQ(
      verify::property_name(verify::Property::kIncrementalMatchesFresh),
      "incremental_matches_fresh");
  EXPECT_EQ(verify::property_from_name("incremental_matches_fresh"),
            verify::Property::kIncrementalMatchesFresh);
}

}  // namespace
}  // namespace ceta
