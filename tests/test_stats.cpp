#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace ceta {
namespace {

TEST(OnlineStats, EmptyThrowsOnQueries) {
  OnlineStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_THROW(s.mean(), PreconditionError);
  EXPECT_THROW(s.min(), PreconditionError);
  EXPECT_THROW(s.max(), PreconditionError);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, KnownSequence) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  // Sample variance of this classic sequence: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(OnlineStats, NegativeValues) {
  OnlineStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(MeanOf, Basic) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 2.0);
}

TEST(MeanOf, EmptyThrows) {
  EXPECT_THROW(mean_of({}), PreconditionError);
}

TEST(Percentile, NearestRank) {
  std::vector<double> xs = {15.0, 20.0, 35.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 15.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 30.0), 20.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 40.0), 20.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 35.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 50.0);
}

TEST(Percentile, UnsortedInput) {
  std::vector<double> xs = {50.0, 15.0, 40.0, 20.0, 35.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 15.0);
}

TEST(Percentile, Preconditions) {
  std::vector<double> xs = {1.0};
  EXPECT_THROW(percentile({}, 50.0), PreconditionError);
  EXPECT_THROW(percentile(xs, -1.0), PreconditionError);
  EXPECT_THROW(percentile(xs, 101.0), PreconditionError);
}

}  // namespace
}  // namespace ceta
