// The safety matrix: `Sim ≤ bound` must hold for every combination of
// dispatch policy, communication semantics and topology family.  One
// parameterized suite sweeps the full cross product — the broadest
// guardrail in the test suite.

#include <gtest/gtest.h>

#include <tuple>

#include "disparity/analyzer.hpp"
#include "graph/generator.hpp"
#include "graph/paths.hpp"
#include "helpers.hpp"
#include "sched/npfp_rta.hpp"
#include "sched/priority.hpp"
#include "sim/engine.hpp"
#include "waters/generator.hpp"

namespace ceta {
namespace {

enum class Topology { kGnm, kFunnel, kTwoChain };

using Combo = std::tuple<SchedPolicy, CommSemantics, Topology, std::uint64_t>;

std::string combo_name(const ::testing::TestParamInfo<Combo>& info) {
  const auto& [policy, comm, topo, seed] = info.param;
  std::string out;
  out += policy == SchedPolicy::kPreemptive ? "Preemptive" : "NonPreemptive";
  out += comm == CommSemantics::kLet ? "Let" : "Implicit";
  out += topo == Topology::kGnm      ? "Gnm"
         : topo == Topology::kFunnel ? "Funnel"
                                     : "TwoChain";
  out += "Seed" + std::to_string(seed);
  return out;
}

TaskGraph make_topology(Topology topo, Rng& rng) {
  switch (topo) {
    case Topology::kGnm: {
      GnmDagOptions opt;
      opt.num_tasks = 10;
      return gnm_random_dag(opt, rng);
    }
    case Topology::kFunnel: {
      FunnelDagOptions opt;
      opt.num_tasks = 10;
      return funnel_random_dag(opt, rng);
    }
    case Topology::kTwoChain:
      return merge_chains_at_sink(4, 4);
  }
  throw Error("unreachable");
}

class MatrixSafety : public ::testing::TestWithParam<Combo> {};

TEST_P(MatrixSafety, SimWithinBound) {
  const auto& [policy, comm, topo, seed] = GetParam();
  Rng rng(seed * 1009 + static_cast<std::uint64_t>(topo) * 31 + 7);

  TaskGraph g = [&] {
    for (int attempt = 0; attempt < 128; ++attempt) {
      TaskGraph candidate = make_topology(topo, rng);
      WatersAssignOptions wopt;
      wopt.num_ecus = 3;
      assign_waters_parameters(candidate, wopt, rng);
      candidate.set_comm_semantics(comm);
      const TaskId sink = candidate.sinks().front();
      if (count_source_chains(candidate, sink) < 2 ||
          count_source_chains(candidate, sink) > 500) {
        continue;
      }
      RtaOptions ropt;
      ropt.policy = policy;
      if (analyze_response_times(candidate, ropt).all_schedulable) {
        return candidate;
      }
    }
    throw Error("no admissible draw");
  }();

  RtaOptions ropt;
  ropt.policy = policy;
  const RtaResult rta = analyze_response_times(g, ropt);
  const TaskId sink = g.sinks().front();

  DisparityOptions dopt;
  // Lemma 4's refinements assume non-preemptive dispatch.
  if (policy == SchedPolicy::kPreemptive) {
    dopt.hop_method = HopBoundMethod::kSchedulingAgnostic;
  }
  const Duration bound =
      analyze_time_disparity(g, sink, rta.response_time, dopt).worst_case;

  randomize_offsets(g, rng);
  SimOptions sopt;
  sopt.policy = policy;
  sopt.duration = Duration::s(2);
  sopt.seed = seed;
  const SimResult res = Simulator(g, sopt).run();
  EXPECT_LE(res.max_disparity[sink], bound);
  EXPECT_GT(res.jobs_observed[sink], 0);
}

INSTANTIATE_TEST_SUITE_P(
    Combos, MatrixSafety,
    ::testing::Combine(
        ::testing::Values(SchedPolicy::kNonPreemptive,
                          SchedPolicy::kPreemptive),
        ::testing::Values(CommSemantics::kImplicit, CommSemantics::kLet),
        ::testing::Values(Topology::kGnm, Topology::kFunnel,
                          Topology::kTwoChain),
        ::testing::Range<std::uint64_t>(1, 4)),
    combo_name);

}  // namespace
}  // namespace ceta
