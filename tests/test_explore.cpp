// The design-space explorer (explore/): archive semantics, the
// counter-based draw streams, the determinism contract, and the
// engine-level Audsley seeding.
//
// The load-bearing assertions:
//  * ParetoArchive's entry set is order-insensitive and canonically
//    tie-broken on the entry key, so per-restart archives merge to the
//    same front no matter how restarts were sharded.
//  * explore() with the same seed yields a bit-identical ExploreResult on
//    1 and 4 threads (entries, keys, epochs, stats).
//  * Every archived delta replays onto a fresh engine to the exact
//    objective vector (the `explored_configs_revalidate` contract), and
//    the fault_skip_rollback hook provably breaks that.
//  * seed_priorities(engine) is pinned against the free-function Audsley.

#include "explore/explorer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "engine/analysis_engine.hpp"
#include "engine/incremental.hpp"
#include "explore/archive.hpp"
#include "explore/stream.hpp"
#include "helpers.hpp"
#include "obs/metrics.hpp"
#include "sched/audsley.hpp"
#include "sched/priority.hpp"

namespace ceta {
namespace {

using explore::ArchiveEntry;
using explore::ConfigDelta;
using explore::entry_key;
using explore::ExploreOptions;
using explore::ExploreResult;
using explore::ExploreStream;
using explore::Objectives;
using explore::ParetoArchive;

Objectives obj(std::int64_t disparity_us, std::int64_t age_us,
               std::int64_t memory) {
  Objectives o;
  o.disparity = Duration::us(disparity_us);
  o.data_age = Duration::us(age_us);
  o.memory = memory;
  return o;
}

ArchiveEntry entry(const Objectives& o, std::uint64_t key) {
  ArchiveEntry e;
  e.objectives = o;
  e.key = key;
  return e;
}

TEST(ParetoArchive, DominatedCandidatesRejectedDominatorsEvict) {
  ParetoArchive a;
  EXPECT_TRUE(a.insert(entry(obj(100, 50, 10), 1)));
  // Worse in one component, equal elsewhere: dominated, rejected.
  EXPECT_FALSE(a.would_accept(obj(100, 50, 11), 2));
  EXPECT_FALSE(a.insert(entry(obj(100, 50, 11), 2)));
  EXPECT_EQ(a.size(), 1u);
  // Incomparable: both survive.
  EXPECT_TRUE(a.insert(entry(obj(120, 50, 9), 3)));
  EXPECT_EQ(a.size(), 2u);
  // Dominates both: evicts both.
  EXPECT_TRUE(a.insert(entry(obj(90, 50, 9), 4)));
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(a.snapshot()->front().key, 4u);
  EXPECT_EQ(a.inserts(), 3u);
  EXPECT_EQ(a.rejects(), 1u);
  EXPECT_EQ(a.evictions(), 2u);
}

TEST(ParetoArchive, ObjectiveTiesBreakOnKeyEitherOrder) {
  const Objectives o = obj(100, 50, 10);
  ParetoArchive small_first;
  EXPECT_TRUE(small_first.insert(entry(o, 5)));
  EXPECT_FALSE(small_first.insert(entry(o, 9)));
  ParetoArchive big_first;
  EXPECT_TRUE(big_first.insert(entry(o, 9)));
  EXPECT_TRUE(big_first.insert(entry(o, 5)));  // out-ties: evicts key 9
  ASSERT_EQ(small_first.size(), 1u);
  ASSERT_EQ(big_first.size(), 1u);
  EXPECT_EQ(small_first.snapshot()->front().key, 5u);
  EXPECT_EQ(big_first.snapshot()->front().key, 5u);
}

TEST(ParetoArchive, EntrySetIndependentOfInsertionOrder) {
  // A mixed bag: mutually dominating, incomparable and tied entries.
  std::vector<ArchiveEntry> pool = {
      entry(obj(100, 50, 10), 1), entry(obj(90, 60, 10), 2),
      entry(obj(100, 50, 10), 3), entry(obj(80, 70, 12), 4),
      entry(obj(95, 55, 9), 5),   entry(obj(100, 40, 20), 6),
      entry(obj(90, 60, 11), 7),  entry(obj(85, 65, 12), 8),
  };
  auto front_of = [](const std::vector<ArchiveEntry>& entries) {
    ParetoArchive a;
    for (const ArchiveEntry& e : entries) a.insert(e);
    std::vector<std::pair<std::uint64_t, Objectives>> keys;
    for (const ArchiveEntry& e : *a.snapshot())
      keys.emplace_back(e.key, e.objectives);
    return keys;
  };
  const auto reference = front_of(pool);
  EXPECT_FALSE(reference.empty());
  std::vector<ArchiveEntry> shuffled = pool;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed);
    for (std::size_t i = shuffled.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(shuffled[i - 1], shuffled[j]);
    }
    EXPECT_EQ(front_of(shuffled), reference) << "permutation seed " << seed;
  }
}

TEST(ParetoArchive, ConcurrentInsertsAndSnapshotsAgreeWithSerial) {
  // Writers race inserts while readers spin on snapshot(); the final set
  // must equal the serial fold of the same multiset.  (TSan target.)
  std::vector<ArchiveEntry> pool;
  for (std::int64_t i = 0; i < 64; ++i) {
    pool.push_back(entry(obj(100 + (i * 7) % 40, 50 + (i * 13) % 30, i % 6),
                         static_cast<std::uint64_t>(i)));
  }
  ParetoArchive serial;
  for (const ArchiveEntry& e : pool) serial.insert(e);

  ParetoArchive racy;
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      for (std::size_t i = static_cast<std::size_t>(w); i < pool.size();
           i += 4) {
        racy.insert(pool[i]);
        (void)racy.snapshot()->size();
        (void)racy.would_accept(pool[i].objectives, pool[i].key);
      }
    });
  }
  for (std::thread& t : workers) t.join();

  auto strip = [](const ParetoArchive& a) {
    std::vector<std::pair<std::uint64_t, Objectives>> keys;
    for (const ArchiveEntry& e : *a.snapshot())
      keys.emplace_back(e.key, e.objectives);
    return keys;
  };
  EXPECT_EQ(strip(racy), strip(serial));
}

TEST(ExploreStream, PureAndPurposeSeparated) {
  const ExploreStream s(42, 3);
  const ExploreStream same(42, 3);
  EXPECT_EQ(s.bits(7, ExploreStream::kMoveKind),
            same.bits(7, ExploreStream::kMoveKind));
  // Distinct coordinates give distinct draws (not a proof, a tripwire).
  EXPECT_NE(s.bits(7, ExploreStream::kMoveKind),
            s.bits(8, ExploreStream::kMoveKind));
  EXPECT_NE(s.bits(7, ExploreStream::kMoveKind),
            s.bits(7, ExploreStream::kTarget));
  EXPECT_NE(s.bits(7, ExploreStream::kMoveKind),
            ExploreStream(42, 4).bits(7, ExploreStream::kMoveKind));
  EXPECT_NE(s.bits(7, ExploreStream::kMoveKind),
            ExploreStream(43, 3).bits(7, ExploreStream::kMoveKind));
  for (std::uint64_t step = 0; step < 200; ++step) {
    EXPECT_LT(s.below(step, ExploreStream::kParam, 7), 7u);
    const double u = s.unit(step, ExploreStream::kAccept);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(ExploreOptions, ValidateRejectsOutOfRange) {
  ExploreOptions opt;
  EXPECT_NO_THROW(opt.validate());
  opt.max_buffer = 0;
  EXPECT_THROW(opt.validate(), PreconditionError);
  opt = {};
  opt.offset_grid = 0;
  EXPECT_THROW(opt.validate(), PreconditionError);
  opt = {};
  opt.anneal_decay = 1.5;
  EXPECT_THROW(opt.validate(), PreconditionError);
}

TEST(SeedPriorities, PinnedAgainstFreeFunctionAudsley) {
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    const TaskGraph g = testing::random_two_chain_graph(5, 3, seed);
    AnalysisEngine engine(g);
    TaskGraph free_graph = g;
    const AudsleyResult expected =
        assign_priorities_audsley(free_graph, engine.options().rta);
    const AudsleyResult got = seed_priorities(engine);
    ASSERT_EQ(got.feasible, expected.feasible) << "seed " << seed;
    ASSERT_TRUE(got.feasible) << "seed " << seed;
    for (TaskId t = 0; t < g.num_tasks(); ++t) {
      EXPECT_EQ(engine.graph().task(t).priority, free_graph.task(t).priority)
          << "seed " << seed << " task " << t;
    }
    // And the engine is coherent after the batched commit.
    EXPECT_TRUE(engine.schedulable());
  }
}

/// A schedulable Audsley-seeded engine over a merged two-chain instance.
struct Campaign {
  TaskGraph base;
  TaskId sink = 0;
};

Campaign make_campaign(std::uint64_t seed, std::size_t length = 5) {
  Campaign c;
  c.base = testing::random_two_chain_graph(length, 3, seed);
  c.sink = c.base.sinks().front();
  AnalysisEngine engine(c.base);
  seed_priorities(engine);
  c.base = engine.graph();
  return c;
}

TEST(Explore, HillClimbNeverRegressesAndFrontRevalidates) {
  const Campaign c = make_campaign(301);
  AnalysisEngine base(c.base);
  ExploreOptions opt;
  opt.strategy = explore::Strategy::kHillClimb;
  opt.seed = 9;
  opt.moves_per_restart = 96;
  opt.restarts = 2;
  opt.num_threads = 1;
  const ExploreResult result = explore::explore(base, c.sink, opt);

  ASSERT_FALSE(result.archive.empty());
  // Front entry is the best-disparity configuration; hill-climb keeps the
  // start in the archive, so the best can never regress past it.
  EXPECT_LE(result.archive.front().objectives.disparity,
            result.start.disparity);
  EXPECT_GT(result.stats.proposed, 0u);
  EXPECT_GT(result.stats.evaluations, 0u);
  // Stats aggregate the per-restart archives; the final front is their
  // fold, so it can only be smaller than the summed inserts.
  EXPECT_GE(result.stats.archive_inserts, result.archive.size());

  // The revalidation contract, property-checked here directly: every
  // archived delta replays onto a fresh engine to the exact objectives.
  for (const ArchiveEntry& e : result.archive) {
    EXPECT_EQ(explore::replay_objectives(c.base, e, c.sink, opt),
              e.objectives)
        << "entry key " << e.key;
  }
  // And `base` itself was never mutated.
  EXPECT_EQ(explore::ConfigState::of(c.base),
            explore::ConfigState::of(base.graph()));
}

TEST(Explore, SameSeedSameFrontOnOneAndFourThreads) {
  const Campaign c = make_campaign(302);
  ExploreOptions opt;
  opt.seed = 5;
  opt.moves_per_restart = 64;
  opt.restarts = 4;

  opt.num_threads = 1;
  AnalysisEngine serial_base(c.base);
  const ExploreResult serial = explore::explore(serial_base, c.sink, opt);

  opt.num_threads = 4;
  AnalysisEngine pooled_base(c.base);
  const ExploreResult pooled = explore::explore(pooled_base, c.sink, opt);

  // Bit-identical: entries, deltas, keys, epochs, start and counters.
  EXPECT_EQ(serial.archive, pooled.archive);
  EXPECT_EQ(serial.start, pooled.start);
  EXPECT_EQ(serial.stats.proposed, pooled.stats.proposed);
  EXPECT_EQ(serial.stats.accepted, pooled.stats.accepted);
  EXPECT_EQ(serial.stats.evaluations, pooled.stats.evaluations);
  EXPECT_EQ(serial.stats.archive_inserts, pooled.stats.archive_inserts);
}

TEST(Explore, CountersPublishedToBaseRegistry) {
  const Campaign c = make_campaign(303);
  AnalysisEngine base(c.base);
  ExploreOptions opt;
  opt.seed = 2;
  opt.moves_per_restart = 48;
  opt.restarts = 2;
  opt.num_threads = 1;
  const ExploreResult result = explore::explore(base, c.sink, opt);

  const obs::MetricsSnapshot snap = base.metrics_registry().snapshot();
  EXPECT_EQ(snap.counter("explore.moves.proposed"), result.stats.proposed);
  EXPECT_EQ(snap.counter("explore.moves.accepted"), result.stats.accepted);
  EXPECT_EQ(snap.counter("explore.evaluations"), result.stats.evaluations);
  EXPECT_EQ(snap.counter("explore.archive.inserts"),
            result.stats.archive_inserts);
  bool found_gauge = false;
  for (const auto& [name, value] : snap.gauges) {
    if (name == "explore.front.size") {
      found_gauge = true;
      EXPECT_EQ(value, static_cast<std::int64_t>(result.archive.size()));
    }
  }
  EXPECT_TRUE(found_gauge);
}

TEST(Explore, FaultSkipRollbackBreaksRevalidation) {
  // The TEST ONLY hook skips the engine rollback of the first rejected
  // buffer move of restart 0, silently desynchronizing the engine from the
  // config mirror — later archived deltas then cannot reproduce their
  // objective vectors.  Whether a campaign trips the hook depends on the
  // move sequence, so scan a handful of seeds; the fault must surface.
  const Campaign c = make_campaign(304);
  bool mismatch = false;
  for (std::uint64_t seed = 1; seed <= 10 && !mismatch; ++seed) {
    AnalysisEngine base(c.base);
    ExploreOptions opt;
    opt.seed = seed;
    opt.moves_per_restart = 64;
    opt.restarts = 2;
    opt.num_threads = 1;
    opt.fault_skip_rollback = true;
    const ExploreResult result = explore::explore(base, c.sink, opt);
    for (const ArchiveEntry& e : result.archive) {
      if (explore::replay_objectives(c.base, e, c.sink, opt) !=
          e.objectives) {
        mismatch = true;
        break;
      }
    }
  }
  EXPECT_TRUE(mismatch)
      << "fault_skip_rollback never produced a non-replayable entry";
}

TEST(Explore, RejectsUnschedulableBaseAndBadSink) {
  const Campaign c = make_campaign(305);
  AnalysisEngine base(c.base);
  ExploreOptions opt;
  EXPECT_THROW((void)explore::explore(
                   base, static_cast<TaskId>(c.base.num_tasks()), opt),
               PreconditionError);

  TaskGraph overload = c.base;
  for (TaskId t = 0; t < overload.num_tasks(); ++t) {
    if (!overload.is_source(t)) overload.task(t).wcet = overload.task(t).period;
  }
  AnalysisEngine swamped(overload);
  if (!swamped.schedulable()) {
    EXPECT_THROW((void)explore::explore(swamped, c.sink, opt),
                 PreconditionError);
  }
}

TEST(Explore, ExactLetModeRevalidates) {
  // Under kExactLet the disparity component comes from the exact LET
  // oracle, so offsets genuinely move the objective; the revalidation
  // contract must hold there too.
  TaskGraph g = testing::random_two_chain_graph(4, 3, 21);
  g.set_comm_semantics(CommSemantics::kLet);
  Rng rng(77);
  randomize_offsets(g, rng);
  g.validate();
  const TaskId sink = g.sinks().front();

  AnalysisEngine base(g);
  ASSERT_TRUE(base.schedulable());
  ExploreOptions opt;
  opt.objective = explore::ObjectiveMode::kExactLet;
  opt.seed = 3;
  opt.moves_per_restart = 48;
  opt.restarts = 2;
  opt.num_threads = 1;
  opt.max_releases = 20'000;
  const ExploreResult result = explore::explore(base, sink, opt);
  ASSERT_FALSE(result.archive.empty());
  bool offset_delta_archived = false;
  for (const ArchiveEntry& e : result.archive) {
    EXPECT_EQ(explore::replay_objectives(g, e, sink, opt), e.objectives)
        << "entry key " << e.key;
    offset_delta_archived |= !e.delta.offsets.empty();
  }
  // At least one front entry should differ from the base in an offset —
  // the axis only this mode can exploit.  (Deterministic in the seed; if a
  // future change legitimately alters the walk, re-pick the seed.)
  EXPECT_TRUE(offset_delta_archived);
}

}  // namespace
}  // namespace ceta
