#include "disparity/buffer_opt.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/math.hpp"
#include "disparity/pairwise.hpp"
#include "graph/paths.hpp"
#include "helpers.hpp"

namespace ceta {
namespace {

/// The two-source fixture of test_pairwise with hand-computed Algorithm 1
/// results:
///   λ={S1,A,E}: window [−23, −1];  ν={S2,B,E}: window [−63, −2].
///   Midpoints −12 vs −32.5 → λ is right → buffer on S1→A.
///   k = floor((−24+65)/(2·10)) = 2 → size 3, L = 20ms.
///   Theorem 3: 62 − 20 = 42ms.
TaskGraph two_source_graph() {
  TaskGraph g;
  Task s1;
  s1.name = "S1";
  s1.period = Duration::ms(10);
  const TaskId s1id = g.add_task(s1);
  Task s2;
  s2.name = "S2";
  s2.period = Duration::ms(30);
  const TaskId s2id = g.add_task(s2);
  auto mk = [](const char* name, Duration e, Duration period, EcuId ecu,
               int prio) {
    Task t;
    t.name = name;
    t.wcet = t.bcet = e;
    t.period = period;
    t.ecu = ecu;
    t.priority = prio;
    return t;
  };
  const TaskId a = g.add_task(mk("A", Duration::ms(1), Duration::ms(10), 0, 0));
  const TaskId b = g.add_task(mk("B", Duration::ms(2), Duration::ms(30), 0, 1));
  const TaskId e = g.add_task(mk("E", Duration::ms(1), Duration::ms(30), 1, 0));
  g.add_edge(s1id, a);
  g.add_edge(s2id, b);
  g.add_edge(a, e);
  g.add_edge(b, e);
  g.validate();
  return g;
}

TEST(BufferDesign, HandComputed) {
  const TaskGraph g = two_source_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const Path lambda = {0, 2, 4};
  const Path nu = {1, 3, 4};
  const BufferDesign d = design_buffer(g, lambda, nu, rtm);
  EXPECT_TRUE(d.buffer_on_lambda);
  EXPECT_EQ(d.from, 0u);  // S1
  EXPECT_EQ(d.to, 2u);    // A
  EXPECT_EQ(d.buffer_size, 3);
  EXPECT_EQ(d.shift, Duration::ms(20));
  EXPECT_EQ(d.baseline_bound, Duration::ms(62));
  EXPECT_EQ(d.optimized_bound, Duration::ms(42));
  EXPECT_EQ(d.window_lambda, Interval(Duration::ms(-23), Duration::ms(-1)));
  EXPECT_EQ(d.window_nu, Interval(Duration::ms(-63), Duration::ms(-2)));
}

TEST(BufferDesign, SwappedArgumentsBufferSameChannel) {
  const TaskGraph g = two_source_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const BufferDesign d = design_buffer(g, {1, 3, 4}, {0, 2, 4}, rtm);
  EXPECT_FALSE(d.buffer_on_lambda);  // now ν is the right-window chain
  EXPECT_EQ(d.from, 0u);
  EXPECT_EQ(d.to, 2u);
  EXPECT_EQ(d.buffer_size, 3);
  EXPECT_EQ(d.optimized_bound, Duration::ms(42));
}

TEST(BufferDesign, Theorem3MatchesRerunWithBuffer) {
  // Applying the designed buffer and re-running Theorem 2 on the buffered
  // graph (Lemma 6-aware bounds) reproduces the Theorem 3 value when the
  // shifted window stays right of the other one.
  const TaskGraph g = two_source_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const Path lambda = {0, 2, 4};
  const Path nu = {1, 3, 4};
  const BufferDesign d = design_buffer(g, lambda, nu, rtm);

  TaskGraph buffered = g;
  apply_buffer_design(buffered, d);
  EXPECT_EQ(buffered.channel(0, 2).buffer_size, 3);
  const ForkJoinBound fj = sdiff_pair_bound(buffered, lambda, nu, rtm);
  EXPECT_EQ(fj.bound, d.optimized_bound);
}

TEST(BufferDesign, ShiftIsMultipleOfHeadPeriod) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const TaskGraph g = testing::random_two_chain_graph(6, 3, seed);
    const ResponseTimeMap rtm = testing::response_times_of(g);
    const auto chains = enumerate_source_chains(g, g.sinks().front());
    const BufferDesign d = design_buffer(g, chains[0], chains[1], rtm);
    const Duration t_head = g.task(d.from).period;
    EXPECT_EQ(d.shift, t_head * (d.buffer_size - 1));
    EXPECT_GE(d.buffer_size, 1);
    EXPECT_EQ(d.optimized_bound, d.baseline_bound - d.shift);
  }
}

TEST(BufferDesign, NeverWorseThanBaseline) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const TaskGraph g = testing::random_two_chain_graph(8, 3, seed + 50);
    const ResponseTimeMap rtm = testing::response_times_of(g);
    const auto chains = enumerate_source_chains(g, g.sinks().front());
    const BufferDesign d = design_buffer(g, chains[0], chains[1], rtm);
    EXPECT_LE(d.optimized_bound, d.baseline_bound) << "seed " << seed;
    EXPECT_GE(d.optimized_bound, Duration::zero()) << "seed " << seed;
  }
}

TEST(BufferDesign, MidpointGapShrinks) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const TaskGraph g = testing::random_two_chain_graph(7, 3, seed + 200);
    const ResponseTimeMap rtm = testing::response_times_of(g);
    const auto chains = enumerate_source_chains(g, g.sinks().front());
    const BufferDesign d = design_buffer(g, chains[0], chains[1], rtm);
    const Interval& right = d.buffer_on_lambda ? d.window_lambda : d.window_nu;
    const Interval& left = d.buffer_on_lambda ? d.window_nu : d.window_lambda;
    const std::int64_t gap_before =
        right.doubled_midpoint() - left.doubled_midpoint();
    const Interval shifted = right.shifted(-d.shift);
    const std::int64_t gap_after =
        std::abs(shifted.doubled_midpoint() - left.doubled_midpoint());
    EXPECT_LE(gap_after, gap_before);
    // Post-shift gap below one period of the buffered head (doubled).
    EXPECT_LT(gap_after, 2 * g.task(d.from).period.count());
  }
}

TEST(BufferDesign, AlignedWindowsNeedNoBuffer) {
  // Two identical chains merged at a sink: symmetric windows, size 1.
  const TaskGraph g = testing::diamond_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const BufferDesign d =
      design_buffer(g, {0, 1, 2, 4}, {0, 1, 3, 4}, rtm);
  EXPECT_EQ(d.buffer_size, 1);
  EXPECT_EQ(d.shift, Duration::zero());
  EXPECT_EQ(d.optimized_bound, d.baseline_bound);
}

TEST(BufferDesign, RejectsPreBufferedChannel) {
  TaskGraph g = two_source_graph();
  g.set_buffer_size(0, 2, 2);
  const ResponseTimeMap rtm = testing::response_times_of(g);
  EXPECT_THROW(design_buffer(g, {0, 2, 4}, {1, 3, 4}, rtm),
               PreconditionError);
}

TEST(ApplyBufferDesign, SizeOneIsNoOp) {
  TaskGraph g = two_source_graph();
  BufferDesign d;
  d.from = 0;
  d.to = 2;
  d.buffer_size = 1;
  apply_buffer_design(g, d);
  EXPECT_EQ(g.channel(0, 2).buffer_size, 1);
}

}  // namespace
}  // namespace ceta
