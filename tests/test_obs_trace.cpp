// Chrome-trace exporter schema golden test: the tracer's output for a
// representative instrumented workload must be valid JSON in the Chrome
// trace-event format — a "traceEvents" array of "M" thread-name metadata
// followed by complete ("X") events with monotone timestamps — and must
// contain spans from every instrumented layer (RTA, chain enumeration,
// hop bounds, disparity, engine cache, pool workers, simulator).
//
// Each TEST runs in its own process (gtest_discover_tests), so starting
// and stopping the process-wide tracer here cannot leak into other tests.

#include "obs/tracer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "engine/analysis_engine.hpp"
#include "engine/thread_pool.hpp"
#include "helpers.hpp"
#include "json_checker.hpp"
#include "sim/engine.hpp"

namespace ceta {
namespace {

using ceta::testing::JsonArray;
using ceta::testing::JsonParser;
using ceta::testing::JsonValue;
using ceta::testing::random_dag_graph;
using obs::Tracer;

/// The instrumented workload every schema assertion below runs against:
/// an engine session (RTA, enumeration, hop/chain bounds, disparity
/// batch over the pool), a direct pool round-trip, and a short
/// simulation.
void run_instrumented_workload() {
  obs::set_thread_name("main");
  const TaskGraph g = random_dag_graph(14, 3, /*seed=*/3);
  EngineOptions opt;
  opt.num_threads = 2;
  const AnalysisEngine engine(g, opt);
  const std::vector<TaskId> fusing = engine.fusing_tasks();
  (void)engine.disparity_all(fusing);
  (void)engine.disparity_all(fusing);  // warm pass: cache-hit spans

  // Guaranteed pool.job spans even if the graph has a single fusing task
  // (single-task batches run inline).
  {
    ThreadPool pool(2);
    for (int i = 0; i < 4; ++i) pool.submit([] {}).get();
  }

  SimOptions sopt;
  sopt.duration = Duration::ms(200);
  (void)Simulator(g, sopt).run();
}

JsonValue record_trace() {
  Tracer::global().start();  // no path: in-memory export
  run_instrumented_workload();
  const std::string json = Tracer::global().stop_to_string();
  EXPECT_FALSE(Tracer::enabled());
  return JsonParser::parse(json);
}

TEST(TraceSchema, GoldenShape) {
  const JsonValue doc = record_trace();

  // Top level: traceEvents + displayTimeUnit + ceta extension object.
  ASSERT_TRUE(doc.is_object());
  ASSERT_TRUE(doc.has("traceEvents"));
  EXPECT_EQ(doc.at("displayTimeUnit").string, "ms");
  EXPECT_EQ(doc.at("ceta").at("dropped_events").number, 0.0);

  const JsonArray& events = doc.at("traceEvents").items();
  ASSERT_FALSE(events.empty());

  double last_x_ts = -1.0;
  bool seen_x = false;
  std::set<std::string> names;
  std::set<std::string> cats;
  std::set<std::string> thread_names;
  for (const JsonValue& ev : events) {
    ASSERT_TRUE(ev.is_object());
    const std::string ph = ev.at("ph").string;
    ASSERT_TRUE(ph == "X" || ph == "M") << "unexpected ph '" << ph << "'";
    EXPECT_EQ(ev.at("pid").number, 1.0);
    EXPECT_GE(ev.at("tid").number, 0.0);
    if (ph == "M") {
      // Metadata must precede all X events and carry args.name.
      EXPECT_FALSE(seen_x) << "metadata event after an X event";
      EXPECT_EQ(ev.at("name").string, "thread_name");
      thread_names.insert(ev.at("args").at("name").string);
      continue;
    }
    seen_x = true;
    // Complete events: name, cat, ts >= 0, dur >= 0, sorted by ts.
    ASSERT_TRUE(ev.at("name").is_string());
    ASSERT_TRUE(ev.at("cat").is_string());
    EXPECT_FALSE(ev.at("name").string.empty());
    const double ts = ev.at("ts").number;
    EXPECT_GE(ts, 0.0);
    EXPECT_GE(ev.at("dur").number, 0.0);
    EXPECT_GE(ts, last_x_ts) << "timestamps not monotone";
    last_x_ts = ts;
    names.insert(ev.at("name").string);
    cats.insert(ev.at("cat").string);
  }
  ASSERT_TRUE(seen_x);

  // Every instrumented layer contributed at least one span.
  for (const char* name :
       {"analyze_response_times", "enumerate_source_chains", "hop_bound",
        "rta", "hop", "chain_bounds", "chains", "disparity", "disparity_all",
        "pool.job", "simulator.run"}) {
    EXPECT_TRUE(names.count(name)) << "missing span '" << name << "'";
  }
  for (const char* cat : {"sched", "graph", "chain", "disparity", "engine",
                          "sim"}) {
    EXPECT_TRUE(cats.count(cat)) << "missing category '" << cat << "'";
  }

  // Thread labels: the test thread named itself and the engine pool names
  // its workers.
  EXPECT_TRUE(thread_names.count("main"));
  EXPECT_TRUE(std::any_of(thread_names.begin(), thread_names.end(),
                          [](const std::string& n) {
                            return n.rfind("pool-worker-", 0) == 0;
                          }))
      << "no pool-worker-* thread label";
}

TEST(TraceSchema, SpanArgsAndCacheAnnotations) {
  const JsonValue doc = record_trace();

  bool saw_hit = false;
  bool saw_miss = false;
  bool saw_int_arg = false;
  for (const JsonValue& ev : doc.at("traceEvents").items()) {
    if (ev.at("ph").string != "X" || !ev.has("args")) continue;
    const JsonValue& args = ev.at("args");
    if (args.has("cache")) {
      const std::string& v = args.at("cache").string;
      ASSERT_TRUE(v == "hit" || v == "miss") << v;
      saw_hit = saw_hit || v == "hit";
      saw_miss = saw_miss || v == "miss";
    }
    if (args.has("tasks")) {
      EXPECT_TRUE(args.at("tasks").is_number());
      saw_int_arg = true;
    }
  }
  // The cold pass produces misses, the warm pass hits; the RTA span's
  // "tasks" annotation covers integer args.
  EXPECT_TRUE(saw_miss);
  EXPECT_TRUE(saw_hit);
  EXPECT_TRUE(saw_int_arg);
}

TEST(TraceSchema, DisabledTracerRecordsNothing) {
  ASSERT_FALSE(Tracer::enabled());
  {
    obs::Span span("test", "should_not_record");
    span.arg("k", std::int64_t{1});
  }
  EXPECT_EQ(Tracer::global().pending_events(), 0u);

  // A start/stop cycle with no spans exports an empty-but-valid document.
  Tracer::global().start();
  const JsonValue doc = JsonParser::parse(Tracer::global().stop_to_string());
  for (const JsonValue& ev : doc.at("traceEvents").items()) {
    EXPECT_EQ(ev.at("ph").string, "M");  // only prior thread registrations
  }
  EXPECT_EQ(doc.at("ceta").at("dropped_events").number, 0.0);
}

TEST(TraceSchema, RestartDropsPreviousEvents) {
  Tracer::global().start();
  { obs::Span span("test", "first_recording"); }
  ASSERT_GE(Tracer::global().pending_events(), 1u);

  // start() again: prior events are discarded, not duplicated.
  Tracer::global().start();
  { obs::Span span("test", "second_recording"); }
  const JsonValue doc = JsonParser::parse(Tracer::global().stop_to_string());
  std::size_t x_events = 0;
  for (const JsonValue& ev : doc.at("traceEvents").items()) {
    if (ev.at("ph").string != "X") continue;
    ++x_events;
    EXPECT_EQ(ev.at("name").string, "second_recording");
  }
  EXPECT_EQ(x_events, 1u);
  // stop_to_string() drains: nothing is left pending.
  EXPECT_EQ(Tracer::global().pending_events(), 0u);
}

}  // namespace
}  // namespace ceta
