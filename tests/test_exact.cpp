// Exact LET disparity: cross-validated against the simulator (they must
// agree to the nanosecond on deterministic systems) and against the
// offset-oblivious bounds.

#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"
#include "common/math.hpp"
#include "disparity/analyzer.hpp"
#include "disparity/exact.hpp"
#include "graph/generator.hpp"
#include "helpers.hpp"
#include "sched/npfp_rta.hpp"
#include "sched/priority.hpp"
#include "sim/engine.hpp"
#include "waters/generator.hpp"

namespace ceta {
namespace {

/// Random two-chain WATERS instance converted to LET with random offsets.
TaskGraph let_instance(std::uint64_t seed, std::size_t len = 4) {
  TaskGraph g = testing::random_two_chain_graph(len, 3, seed);
  g.set_comm_semantics(CommSemantics::kLet);
  Rng rng(seed * 13 + 5);
  randomize_offsets(g, rng);
  g.validate();
  return g;
}

class ExactLet : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactLet, AgreesWithSimulationExactly) {
  const std::uint64_t seed = GetParam();
  const TaskGraph g = let_instance(seed);
  const TaskId sink = g.sinks().front();
  const ExactLetResult exact = exact_let_disparity(g, sink);

  // Simulate long enough to cover warm-up plus a full hyperperiod; the
  // measured steady-state maximum must equal the exact value.
  SimOptions opt;
  opt.warmup = Duration::s(3);
  opt.duration = Duration::s(8);
  opt.seed = seed;
  opt.exec_model = ExecTimeModel::kUniform;  // execution times irrelevant
  const SimResult res = Simulator(g, opt).run();
  EXPECT_EQ(res.max_disparity[sink], exact.worst_disparity)
      << "seed " << seed;
}

TEST_P(ExactLet, WithinAnalyticalBound) {
  const std::uint64_t seed = GetParam();
  const TaskGraph g = let_instance(seed);
  const TaskId sink = g.sinks().front();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const Duration bound = analyze_time_disparity(g, sink, rtm).worst_case;
  const ExactLetResult exact = exact_let_disparity(g, sink);
  EXPECT_LE(exact.worst_disparity, bound) << "seed " << seed;
  EXPECT_GT(exact.worst_disparity, Duration::zero()) << "seed " << seed;
}

TEST_P(ExactLet, InvariantToGlobalOffsetShift) {
  // Shifting every offset by the same amount preserves all relative
  // phases; 1ms divides every WATERS period, so reducing each shifted
  // offset modulo its period lands on the same phase pattern.
  const std::uint64_t seed = GetParam();
  TaskGraph g = let_instance(seed);
  const TaskId sink = g.sinks().front();
  const Duration base = exact_let_disparity(g, sink).worst_disparity;

  // Shift all offsets by 1ms modulo each task's period (1ms divides every
  // WATERS period, so every relative phase difference is preserved).
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    Task& t = g.task(id);
    t.offset = Duration::ns(
        floor_mod((t.offset + Duration::ms(1)).count(), t.period.count()));
  }
  g.validate();
  EXPECT_EQ(exact_let_disparity(g, sink).worst_disparity, base)
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactLet,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(ExactLet, HandComputedTwoChains) {
  // S1(T=10) -> A(LET,T=10) -> F(LET,T=20), S2(T=20,offset 5) ->
  // B(LET,T=20) -> F; other offsets 0; t = a release of F (multiple of
  // 20ms).
  // λ: latest A publish <= t is the job released at t−10 (publishes at
  //    release+10); it read S1 at its own release -> λ timestamp = t−10.
  // ν: latest B publish <= t is the job released at t−20; the latest S2
  //    sample <= t−20 is 5 + 20·floor((t−25)/20) = t−35.
  // Disparity = (t−10) − (t−35) = 25ms at every release.
  TaskGraph g;
  Task s1;
  s1.name = "S1";
  s1.period = Duration::ms(10);
  const TaskId s1id = g.add_task(s1);
  Task s2;
  s2.name = "S2";
  s2.period = Duration::ms(20);
  s2.offset = Duration::ms(5);
  const TaskId s2id = g.add_task(s2);
  auto mk = [](const char* name, Duration period, EcuId ecu, int prio) {
    Task t;
    t.name = name;
    t.wcet = t.bcet = Duration::ms(1);
    t.period = period;
    t.ecu = ecu;
    t.priority = prio;
    t.comm = CommSemantics::kLet;
    return t;
  };
  const TaskId a = g.add_task(mk("A", Duration::ms(10), 0, 0));
  const TaskId b = g.add_task(mk("B", Duration::ms(20), 0, 1));
  const TaskId f = g.add_task(mk("F", Duration::ms(20), 1, 0));
  g.add_edge(s1id, a);
  g.add_edge(s2id, b);
  g.add_edge(a, f);
  g.add_edge(b, f);
  g.validate();

  const ExactLetResult exact = exact_let_disparity(g, f);
  EXPECT_EQ(exact.worst_disparity, Duration::ms(25));
  EXPECT_EQ(exact.releases_examined, 1u);  // hyperperiod 20ms / T(F) 20ms
}

TEST(ExactLet, BufferShiftsExactly) {
  // Adding a FIFO of 3 on S1 -> A delays λ's sample by exactly 2·T(S1).
  TaskGraph g;
  Task s1;
  s1.name = "S1";
  s1.period = Duration::ms(10);
  const TaskId s1id = g.add_task(s1);
  Task s2;
  s2.name = "S2";
  s2.period = Duration::ms(20);
  s2.offset = Duration::ms(5);
  const TaskId s2id = g.add_task(s2);
  auto mk = [](const char* name, Duration period, EcuId ecu, int prio) {
    Task t;
    t.name = name;
    t.wcet = t.bcet = Duration::ms(1);
    t.period = period;
    t.ecu = ecu;
    t.priority = prio;
    t.comm = CommSemantics::kLet;
    return t;
  };
  const TaskId a = g.add_task(mk("A", Duration::ms(10), 0, 0));
  const TaskId b = g.add_task(mk("B", Duration::ms(20), 0, 1));
  const TaskId f = g.add_task(mk("F", Duration::ms(20), 1, 0));
  g.add_edge(s1id, a, ChannelSpec{3});
  g.add_edge(s2id, b);
  g.add_edge(a, f);
  g.add_edge(b, f);
  g.validate();
  // λ timestamp drops from t−10 to t−30; ν stays t−35: disparity 5ms.
  EXPECT_EQ(exact_let_disparity(g, f).worst_disparity, Duration::ms(5));
}

TEST(ExactLet, WarmupHorizonHandComputed) {
  // Σ_hops (buffer+1)·T(producer), maxed over chains.  On the unbuffered
  // two-chain graph: λ = 2·10 + 2·10 = 40ms, ν = 2·20 + 2·20 = 80ms.
  TaskGraph g;
  Task s1;
  s1.name = "S1";
  s1.period = Duration::ms(10);
  const TaskId s1id = g.add_task(s1);
  Task s2;
  s2.name = "S2";
  s2.period = Duration::ms(20);
  const TaskId s2id = g.add_task(s2);
  auto mk = [](const char* name, Duration period, EcuId ecu, int prio) {
    Task t;
    t.name = name;
    t.wcet = t.bcet = Duration::ms(1);
    t.period = period;
    t.ecu = ecu;
    t.priority = prio;
    t.comm = CommSemantics::kLet;
    return t;
  };
  const TaskId a = g.add_task(mk("A", Duration::ms(10), 0, 0));
  const TaskId b = g.add_task(mk("B", Duration::ms(20), 0, 1));
  const TaskId f = g.add_task(mk("F", Duration::ms(20), 1, 0));
  g.add_edge(s1id, a);
  g.add_edge(s2id, b);
  g.add_edge(a, f);
  g.add_edge(b, f);
  g.validate();
  EXPECT_EQ(exact_warmup_horizon(g, f), Duration::ms(80));
  // A FIFO deepens the horizon of its chain: buffer 4 on S2 → B makes
  // ν = 5·20 + 2·20 = 140ms.
  TaskGraph g2 = g;
  g2.set_buffer_size(s2id, b, 4);
  g2.validate();
  EXPECT_EQ(exact_warmup_horizon(g2, f), Duration::ms(140));
}

TEST(ExactLet, DeepChainWithLargeBuffersDoesNotUnderProvisionWarmup) {
  // Regression for the old ×3-period warm-up heuristic: six hops with
  // buffer-4 FIFOs need Σ (4+1)·10ms = 300ms of history on the deep
  // chain, far beyond a few periods.  The derived horizon must make the
  // trace well-defined (no negative job index ⇒ no InvariantError) and
  // agree with the simulator's steady state.
  TaskGraph g;
  Task src;
  src.name = "src";
  src.period = Duration::ms(10);
  const TaskId srcid = g.add_task(src);
  auto mk = [](const char* name, Duration period, EcuId ecu, int prio) {
    Task t;
    t.name = name;
    t.wcet = t.bcet = Duration::ms(1);
    t.period = period;
    t.ecu = ecu;
    t.priority = prio;
    t.comm = CommSemantics::kLet;
    return t;
  };
  TaskId prev = srcid;
  for (int i = 0; i < 5; ++i) {
    const TaskId c = g.add_task(
        mk(("c" + std::to_string(i)).c_str(), Duration::ms(10), 0, i));
    g.add_edge(prev, c, ChannelSpec{4});
    prev = c;
  }
  const TaskId f = g.add_task(mk("F", Duration::ms(20), 1, 0));
  g.add_edge(prev, f, ChannelSpec{4});
  Task s2;
  s2.name = "S2";
  s2.period = Duration::ms(20);
  s2.offset = Duration::ms(5);
  const TaskId s2id = g.add_task(s2);
  const TaskId bid = g.add_task(mk("B", Duration::ms(20), 1, 1));
  g.add_edge(s2id, bid);
  g.add_edge(bid, f);
  g.validate();

  EXPECT_EQ(exact_warmup_horizon(g, f), Duration::ms(300));
  ExactLetResult exact;
  ASSERT_NO_THROW(exact = exact_let_disparity(g, f));
  EXPECT_GT(exact.worst_disparity, Duration::zero());

  SimOptions opt;
  opt.warmup = exact_warmup_horizon(g, f) + Duration::ms(100);
  opt.duration = opt.warmup + Duration::s(2);
  opt.seed = 99;
  opt.exec_model = ExecTimeModel::kUniform;
  const SimResult res = Simulator(g, opt).run();
  EXPECT_EQ(res.max_disparity[f], exact.worst_disparity);
}

TEST(ExactLet, SourceReadAtExactCoincidenceIsVisible) {
  // F (LET, T=10) reads both sources at its release t (multiple of 10ms).
  // S1 releases at exactly t: Definition 1's "no later than" makes that
  // sample visible, so λ = t.  S2 (offset 1ms) gives ν = t−9ms.
  // Inclusive semantics ⇒ disparity 9ms; exclusive would give 1ms.
  TaskGraph g;
  Task s1;
  s1.name = "S1";
  s1.period = Duration::ms(10);
  const TaskId s1id = g.add_task(s1);
  Task s2;
  s2.name = "S2";
  s2.period = Duration::ms(10);
  s2.offset = Duration::ms(1);
  const TaskId s2id = g.add_task(s2);
  Task f;
  f.name = "F";
  f.wcet = f.bcet = Duration::ms(1);
  f.period = Duration::ms(10);
  f.ecu = 0;
  f.priority = 0;
  f.comm = CommSemantics::kLet;
  const TaskId fid = g.add_task(f);
  g.add_edge(s1id, fid);
  g.add_edge(s2id, fid);
  g.validate();

  const ExactLetResult exact = exact_let_disparity(g, fid);
  EXPECT_EQ(exact.worst_disparity, Duration::ms(9));

  SimOptions opt;
  opt.warmup = Duration::ms(200);
  opt.duration = Duration::s(1);
  opt.seed = 5;
  opt.exec_model = ExecTimeModel::kUniform;
  EXPECT_EQ(Simulator(g, opt).run().max_disparity[fid], Duration::ms(9));
}

TEST(ExactLet, NonSourcePublishAtExactCoincidenceIsVisible) {
  // A (LET, T=10) publishes at release+10; the job released at t−10
  // publishes at exactly t, the instant F reads.  Inclusive semantics
  // make it visible: λ = t−10 (that job read S1 at its release), and with
  // ν = t−9 the disparity is 1ms at every release.  Exclusive semantics
  // would push λ back a full period to t−20 (disparity 11ms).
  TaskGraph g;
  Task s1;
  s1.name = "S1";
  s1.period = Duration::ms(10);
  const TaskId s1id = g.add_task(s1);
  Task s2;
  s2.name = "S2";
  s2.period = Duration::ms(10);
  s2.offset = Duration::ms(1);
  const TaskId s2id = g.add_task(s2);
  auto mk = [](const char* name, EcuId ecu, int prio) {
    Task t;
    t.name = name;
    t.wcet = t.bcet = Duration::ms(1);
    t.period = Duration::ms(10);
    t.ecu = ecu;
    t.priority = prio;
    t.comm = CommSemantics::kLet;
    return t;
  };
  const TaskId a = g.add_task(mk("A", 0, 0));
  const TaskId fid = g.add_task(mk("F", 1, 0));
  g.add_edge(s1id, a);
  g.add_edge(a, fid);
  g.add_edge(s2id, fid);
  g.validate();

  const ExactLetResult exact = exact_let_disparity(g, fid);
  EXPECT_EQ(exact.worst_disparity, Duration::ms(1));

  SimOptions opt;
  opt.warmup = Duration::ms(200);
  opt.duration = Duration::s(1);
  opt.seed = 5;
  opt.exec_model = ExecTimeModel::kUniform;
  EXPECT_EQ(Simulator(g, opt).run().max_disparity[fid], Duration::ms(1));
}

TEST(ExactLet, SingleChainIsZero) {
  TaskGraph g = testing::simple_chain_graph();
  g.set_comm_semantics(CommSemantics::kLet);
  EXPECT_EQ(exact_let_disparity(g, 2).worst_disparity, Duration::zero());
}

TEST(ExactLet, RejectsNonLetClosure) {
  const TaskGraph g = testing::diamond_graph();  // implicit tasks
  EXPECT_THROW(exact_let_disparity(g, 4), PreconditionError);
}

TEST(ExactLet, RejectsJitter) {
  TaskGraph g = testing::simple_chain_graph();
  g.set_comm_semantics(CommSemantics::kLet);
  g.task(0).jitter = Duration::ms(1);
  // Need a second chain for disparity to matter; but the precondition
  // fires regardless of chain count.
  EXPECT_THROW(exact_let_disparity(g, 2), PreconditionError);
}

}  // namespace
}  // namespace ceta
