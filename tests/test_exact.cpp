// Exact LET disparity: cross-validated against the simulator (they must
// agree to the nanosecond on deterministic systems) and against the
// offset-oblivious bounds.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/math.hpp"
#include "disparity/analyzer.hpp"
#include "disparity/exact.hpp"
#include "graph/generator.hpp"
#include "helpers.hpp"
#include "sched/npfp_rta.hpp"
#include "sched/priority.hpp"
#include "sim/engine.hpp"
#include "waters/generator.hpp"

namespace ceta {
namespace {

/// Random two-chain WATERS instance converted to LET with random offsets.
TaskGraph let_instance(std::uint64_t seed, std::size_t len = 4) {
  TaskGraph g = testing::random_two_chain_graph(len, 3, seed);
  g.set_comm_semantics(CommSemantics::kLet);
  Rng rng(seed * 13 + 5);
  randomize_offsets(g, rng);
  g.validate();
  return g;
}

class ExactLet : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactLet, AgreesWithSimulationExactly) {
  const std::uint64_t seed = GetParam();
  const TaskGraph g = let_instance(seed);
  const TaskId sink = g.sinks().front();
  const ExactLetResult exact = exact_let_disparity(g, sink);

  // Simulate long enough to cover warm-up plus a full hyperperiod; the
  // measured steady-state maximum must equal the exact value.
  SimOptions opt;
  opt.warmup = Duration::s(3);
  opt.duration = Duration::s(8);
  opt.seed = seed;
  opt.exec_model = ExecTimeModel::kUniform;  // execution times irrelevant
  const SimResult res = simulate(g, opt);
  EXPECT_EQ(res.max_disparity[sink], exact.worst_disparity)
      << "seed " << seed;
}

TEST_P(ExactLet, WithinAnalyticalBound) {
  const std::uint64_t seed = GetParam();
  const TaskGraph g = let_instance(seed);
  const TaskId sink = g.sinks().front();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const Duration bound = analyze_time_disparity(g, sink, rtm).worst_case;
  const ExactLetResult exact = exact_let_disparity(g, sink);
  EXPECT_LE(exact.worst_disparity, bound) << "seed " << seed;
  EXPECT_GT(exact.worst_disparity, Duration::zero()) << "seed " << seed;
}

TEST_P(ExactLet, InvariantToGlobalOffsetShift) {
  // Shifting every offset by the same amount preserves all relative
  // phases; 1ms divides every WATERS period, so reducing each shifted
  // offset modulo its period lands on the same phase pattern.
  const std::uint64_t seed = GetParam();
  TaskGraph g = let_instance(seed);
  const TaskId sink = g.sinks().front();
  const Duration base = exact_let_disparity(g, sink).worst_disparity;

  // Shift all offsets by 1ms modulo each task's period (1ms divides every
  // WATERS period, so every relative phase difference is preserved).
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    Task& t = g.task(id);
    t.offset = Duration::ns(
        floor_mod((t.offset + Duration::ms(1)).count(), t.period.count()));
  }
  g.validate();
  EXPECT_EQ(exact_let_disparity(g, sink).worst_disparity, base)
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactLet,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(ExactLet, HandComputedTwoChains) {
  // S1(T=10) -> A(LET,T=10) -> F(LET,T=20), S2(T=20,offset 5) ->
  // B(LET,T=20) -> F; other offsets 0; t = a release of F (multiple of
  // 20ms).
  // λ: latest A publish <= t is the job released at t−10 (publishes at
  //    release+10); it read S1 at its own release -> λ timestamp = t−10.
  // ν: latest B publish <= t is the job released at t−20; the latest S2
  //    sample <= t−20 is 5 + 20·floor((t−25)/20) = t−35.
  // Disparity = (t−10) − (t−35) = 25ms at every release.
  TaskGraph g;
  Task s1;
  s1.name = "S1";
  s1.period = Duration::ms(10);
  const TaskId s1id = g.add_task(s1);
  Task s2;
  s2.name = "S2";
  s2.period = Duration::ms(20);
  s2.offset = Duration::ms(5);
  const TaskId s2id = g.add_task(s2);
  auto mk = [](const char* name, Duration period, EcuId ecu, int prio) {
    Task t;
    t.name = name;
    t.wcet = t.bcet = Duration::ms(1);
    t.period = period;
    t.ecu = ecu;
    t.priority = prio;
    t.comm = CommSemantics::kLet;
    return t;
  };
  const TaskId a = g.add_task(mk("A", Duration::ms(10), 0, 0));
  const TaskId b = g.add_task(mk("B", Duration::ms(20), 0, 1));
  const TaskId f = g.add_task(mk("F", Duration::ms(20), 1, 0));
  g.add_edge(s1id, a);
  g.add_edge(s2id, b);
  g.add_edge(a, f);
  g.add_edge(b, f);
  g.validate();

  const ExactLetResult exact = exact_let_disparity(g, f);
  EXPECT_EQ(exact.worst_disparity, Duration::ms(25));
  EXPECT_EQ(exact.releases_examined, 1u);  // hyperperiod 20ms / T(F) 20ms
}

TEST(ExactLet, BufferShiftsExactly) {
  // Adding a FIFO of 3 on S1 -> A delays λ's sample by exactly 2·T(S1).
  TaskGraph g;
  Task s1;
  s1.name = "S1";
  s1.period = Duration::ms(10);
  const TaskId s1id = g.add_task(s1);
  Task s2;
  s2.name = "S2";
  s2.period = Duration::ms(20);
  s2.offset = Duration::ms(5);
  const TaskId s2id = g.add_task(s2);
  auto mk = [](const char* name, Duration period, EcuId ecu, int prio) {
    Task t;
    t.name = name;
    t.wcet = t.bcet = Duration::ms(1);
    t.period = period;
    t.ecu = ecu;
    t.priority = prio;
    t.comm = CommSemantics::kLet;
    return t;
  };
  const TaskId a = g.add_task(mk("A", Duration::ms(10), 0, 0));
  const TaskId b = g.add_task(mk("B", Duration::ms(20), 0, 1));
  const TaskId f = g.add_task(mk("F", Duration::ms(20), 1, 0));
  g.add_edge(s1id, a, ChannelSpec{3});
  g.add_edge(s2id, b);
  g.add_edge(a, f);
  g.add_edge(b, f);
  g.validate();
  // λ timestamp drops from t−10 to t−30; ν stays t−35: disparity 5ms.
  EXPECT_EQ(exact_let_disparity(g, f).worst_disparity, Duration::ms(5));
}

TEST(ExactLet, SingleChainIsZero) {
  TaskGraph g = testing::simple_chain_graph();
  g.set_comm_semantics(CommSemantics::kLet);
  EXPECT_EQ(exact_let_disparity(g, 2).worst_disparity, Duration::zero());
}

TEST(ExactLet, RejectsNonLetClosure) {
  const TaskGraph g = testing::diamond_graph();  // implicit tasks
  EXPECT_THROW(exact_let_disparity(g, 4), PreconditionError);
}

TEST(ExactLet, RejectsJitter) {
  TaskGraph g = testing::simple_chain_graph();
  g.set_comm_semantics(CommSemantics::kLet);
  g.task(0).jitter = Duration::ms(1);
  // Need a second chain for disparity to matter; but the precondition
  // fires regardless of chain count.
  EXPECT_THROW(exact_let_disparity(g, 2), PreconditionError);
}

}  // namespace
}  // namespace ceta
