#include "sched/audsley.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "graph/generator.hpp"
#include "helpers.hpp"
#include "sched/priority.hpp"
#include "waters/generator.hpp"

namespace ceta {
namespace {

TaskId add(TaskGraph& g, const char* name, Duration wcet, Duration period,
           EcuId ecu) {
  Task t;
  t.name = name;
  t.wcet = t.bcet = wcet;
  t.period = period;
  t.ecu = ecu;
  return g.add_task(t);
}

/// An instance where rate-monotonic order is infeasible under NP-FP but a
/// feasible assignment exists (found by exhaustive search):
///   t0: C=5.113ms T=11ms,  t1: C=284us T=18ms,  t2: C=5.866ms T=12ms.
/// RM (t0 > t2 > t1) misses deadlines; t0 > t1 > t2 is feasible.
TaskGraph rm_beaten_instance() {
  TaskGraph g;
  Task s;
  s.name = "src";
  s.period = Duration::ms(1000);
  const TaskId sid = g.add_task(s);
  const TaskId t0 = add(g, "t0", Duration::us(5113), Duration::ms(11), 0);
  const TaskId t1 = add(g, "t1", Duration::us(284), Duration::ms(18), 0);
  const TaskId t2 = add(g, "t2", Duration::us(5866), Duration::ms(12), 0);
  g.add_edge(sid, t0);
  g.add_edge(sid, t1);
  g.add_edge(sid, t2);
  return g;
}

TEST(Audsley, BeatsRateMonotonicOnKnownInstance) {
  TaskGraph g = rm_beaten_instance();
  assign_priorities_rate_monotonic(g);
  EXPECT_FALSE(analyze_response_times(g).all_schedulable);

  const AudsleyResult res = assign_priorities_audsley(g);
  EXPECT_TRUE(res.feasible);
  EXPECT_TRUE(res.infeasible_ecus.empty());
  EXPECT_TRUE(analyze_response_times(g).all_schedulable);
}

TEST(Audsley, AssignmentIsATotalOrderPerEcu) {
  TaskGraph g = rm_beaten_instance();
  ASSERT_TRUE(assign_priorities_audsley(g).feasible);
  std::set<int> prios;
  for (TaskId id = 1; id < g.num_tasks(); ++id) {
    prios.insert(g.task(id).priority);
  }
  EXPECT_EQ(prios.size(), 3u);
  EXPECT_NO_THROW(g.validate());
}

TEST(Audsley, FeasibleWheneverRateMonotonicIs) {
  // OPA is optimal: it must succeed on every RM-schedulable instance.
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    TaskGraph g = testing::random_dag_graph(12, 3, seed);
    ASSERT_TRUE(analyze_response_times(g).all_schedulable);
    TaskGraph opa = g;
    const AudsleyResult res = assign_priorities_audsley(opa);
    EXPECT_TRUE(res.feasible) << "seed " << seed;
    EXPECT_TRUE(analyze_response_times(opa).all_schedulable)
        << "seed " << seed;
  }
}

TEST(Audsley, InfeasibleOnOverload) {
  TaskGraph g;
  Task s;
  s.name = "src";
  s.period = Duration::ms(10);
  const TaskId sid = g.add_task(s);
  const TaskId a = add(g, "a", Duration::ms(6), Duration::ms(10), 0);
  const TaskId b = add(g, "b", Duration::ms(6), Duration::ms(10), 0);
  g.add_edge(sid, a);
  g.add_edge(sid, b);
  g.task(a).priority = 0;
  g.task(b).priority = 1;
  const int prio_a = g.task(a).priority;

  const AudsleyResult res = assign_priorities_audsley(g);
  EXPECT_FALSE(res.feasible);
  ASSERT_EQ(res.infeasible_ecus.size(), 1u);
  EXPECT_EQ(res.infeasible_ecus[0], 0);
  // Graph untouched on failure.
  EXPECT_EQ(g.task(a).priority, prio_a);
}

TEST(Audsley, InfeasibleByBlockingAlone) {
  // A 12ms job on the same ECU as a 10ms-period task: the short task is
  // doomed at *every* priority level (non-preemptive blocking), so no
  // assignment exists even at low utilization.
  TaskGraph g;
  Task s;
  s.name = "src";
  s.period = Duration::ms(100);
  const TaskId sid = g.add_task(s);
  const TaskId fast = add(g, "fast", Duration::ms(1), Duration::ms(10), 0);
  const TaskId huge = add(g, "huge", Duration::ms(12), Duration::ms(100), 0);
  g.add_edge(sid, fast);
  g.add_edge(sid, huge);
  g.task(fast).priority = 0;
  g.task(huge).priority = 1;
  EXPECT_FALSE(assign_priorities_audsley(g).feasible);
}

TEST(Audsley, IndependentPerEcu) {
  // One feasible ECU and one overloaded ECU: only the latter is reported.
  TaskGraph g;
  Task s;
  s.name = "src";
  s.period = Duration::ms(10);
  const TaskId sid = g.add_task(s);
  const TaskId ok = add(g, "ok", Duration::ms(1), Duration::ms(10), 0);
  const TaskId bad1 = add(g, "bad1", Duration::ms(6), Duration::ms(10), 1);
  const TaskId bad2 = add(g, "bad2", Duration::ms(6), Duration::ms(10), 1);
  g.add_edge(sid, ok);
  g.add_edge(sid, bad1);
  g.add_edge(sid, bad2);
  g.task(bad1).priority = 0;
  g.task(bad2).priority = 1;

  const AudsleyResult res = assign_priorities_audsley(g);
  EXPECT_FALSE(res.feasible);
  EXPECT_EQ(res.infeasible_ecus, std::vector<EcuId>{1});
}

TEST(Audsley, PrefersRateMonotonicLikeOrderWhenFree) {
  // With slack everywhere the heuristic keeps longer periods at lower
  // priority, matching RM.
  Rng rng(5);
  TaskGraph g = merge_chains_at_sink(5, 5);
  WatersAssignOptions wopt;
  wopt.num_ecus = 2;
  assign_waters_parameters(g, wopt, rng);
  TaskGraph rm = g;
  assign_priorities_rate_monotonic(rm);
  ASSERT_TRUE(assign_priorities_audsley(g).feasible);
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    EXPECT_EQ(g.task(id).priority, rm.task(id).priority) << "task " << id;
  }
}

}  // namespace
}  // namespace ceta
