// Standalone validator for BENCH_pairwise.json (the perf_smoke ctest
// pair): parses the file with the independent JSON parser the obs tests
// use, checks the schema the bench promises, and fails (exit 1) if the
// kernel-vs-reference cross-check recorded a divergence.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "json_checker.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: check_bench_json <BENCH_pairwise.json>\n";
    return 2;
  }
  const std::string path = argv[1];
  std::ifstream in(path);
  if (!in) {
    std::cerr << "FAIL: cannot open '" << path
              << "' (did the perf_smoke run produce it?)\n";
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();

  try {
    const ceta::testing::JsonValue doc =
        ceta::testing::JsonParser::parse(buf.str());
    for (const char* key :
         {"bench", "chains", "pairs", "reference_ns", "kernel_ns", "speedup",
          "kernel_parallel_ns", "threads", "parallel_speedup", "match"}) {
      if (!doc.has(key)) {
        std::cerr << "FAIL: " << path << " lacks member '" << key << "'\n";
        return 1;
      }
    }
    if (doc.at("bench").string != "pairwise_kernel_vs_reference") {
      std::cerr << "FAIL: unexpected bench id '" << doc.at("bench").string
                << "'\n";
      return 1;
    }
    if (doc.at("chains").number < 2 || doc.at("pairs").number < 1 ||
        doc.at("kernel_ns").number <= 0) {
      std::cerr << "FAIL: degenerate bench record in " << path << "\n";
      return 1;
    }
    if (!doc.at("match").boolean) {
      std::cerr << "FAIL: pairwise kernel diverged from the reference "
                   "analyzer (match: false in "
                << path << ")\n";
      return 1;
    }
    std::cout << "OK: " << path << " (" << doc.at("chains").number
              << " chains, speedup " << doc.at("speedup").number
              << "x, match: true)\n";
  } catch (const std::exception& e) {
    std::cerr << "FAIL: " << path << " is not valid JSON: " << e.what()
              << "\n";
    return 1;
  }
  return 0;
}
