// Standalone validator for the BENCH_*.json files the perf_smoke ctest
// produces: parses the file with the independent JSON parser the obs
// tests use, checks the schema the bench promises, and fails (exit 1) if
// the recorded cross-check ever reported a divergence.
//
//   check_bench_json <file> [pairwise|incremental|dagdp|sim|service|
//                            explore|tightness|policy]
//
// The optional second argument selects the schema; "pairwise" (the
// kernel-vs-reference comparison) is the default, "incremental" validates
// the mutation-API-vs-fresh-rebuild sweep, "dagdp" the DAG-DP backend's
// agreement-plus-throughput record, "sim" the simulator rewrite's
// 100-seed trace-equivalence sweep and replication throughput.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "json_checker.hpp"

namespace {

int fail(const std::string& why) {
  std::cerr << "FAIL: " << why << "\n";
  return 1;
}

int check_pairwise(const ceta::testing::JsonValue& doc,
                   const std::string& path) {
  for (const char* key :
       {"bench", "chains", "pairs", "reference_ns", "kernel_ns", "speedup",
        "kernel_parallel_ns", "threads", "parallel_speedup", "match"}) {
    if (!doc.has(key)) return fail(path + " lacks member '" + key + "'");
  }
  if (doc.at("bench").string != "pairwise_kernel_vs_reference") {
    return fail("unexpected bench id '" + doc.at("bench").string + "'");
  }
  if (doc.at("chains").number < 2 || doc.at("pairs").number < 1 ||
      doc.at("kernel_ns").number <= 0) {
    return fail("degenerate bench record in " + path);
  }
  if (!doc.at("match").boolean) {
    return fail(
        "pairwise kernel diverged from the reference analyzer (match: "
        "false in " +
        path + ")");
  }
  std::cout << "OK: " << path << " (" << doc.at("chains").number
            << " chains, speedup " << doc.at("speedup").number
            << "x, match: true)\n";
  return 0;
}

int check_incremental(const ceta::testing::JsonValue& doc,
                      const std::string& path) {
  for (const char* key :
       {"bench", "graph_tasks", "sweep_points", "fresh_ns", "incremental_ns",
        "speedup", "commits", "retention_ppm", "match"}) {
    if (!doc.has(key)) return fail(path + " lacks member '" + key + "'");
  }
  if (doc.at("bench").string != "incremental_vs_fresh") {
    return fail("unexpected bench id '" + doc.at("bench").string + "'");
  }
  if (doc.at("sweep_points").number < 2 ||
      doc.at("incremental_ns").number <= 0 ||
      doc.at("commits").number < doc.at("sweep_points").number) {
    return fail("degenerate bench record in " + path);
  }
  if (!doc.at("match").boolean) {
    return fail(
        "incremental engine diverged from fresh rebuilds (match: false "
        "in " +
        path + ")");
  }
  std::cout << "OK: " << path << " (" << doc.at("sweep_points").number
            << " sweep points, speedup " << doc.at("speedup").number
            << "x, match: true)\n";
  return 0;
}

int check_dagdp(const ceta::testing::JsonValue& doc, const std::string& path) {
  for (const char* key :
       {"bench", "agreement_chains", "match", "graph_tasks",
        "chain_count_saturated", "exact", "serial_ns", "tasks_per_sec",
        "batch_sinks", "batch_threads_1_ns", "threads_default",
        "batch_threads_default_ns", "parallel_speedup"}) {
    if (!doc.has(key)) return fail(path + " lacks member '" + key + "'");
  }
  if (doc.at("bench").string != "dagdp_vs_enumeration") {
    return fail("unexpected bench id '" + doc.at("bench").string + "'");
  }
  if (doc.at("agreement_chains").number < 2 ||
      doc.at("graph_tasks").number < 10'000 ||
      doc.at("serial_ns").number <= 0 || doc.at("tasks_per_sec").number <= 0) {
    return fail("degenerate bench record in " + path);
  }
  if (!doc.at("chain_count_saturated").boolean) {
    return fail("huge-graph fixture lost its beyond-size_t chain count in " +
                path);
  }
  if (!doc.at("match").boolean) {
    return fail(
        "DAG-DP backend diverged from the enumerating kernel (match: "
        "false in " +
        path + ")");
  }
  std::cout << "OK: " << path << " (" << doc.at("graph_tasks").number
            << " tasks, " << doc.at("tasks_per_sec").number
            << " tasks/sec, match: true)\n";
  return 0;
}

int check_sim(const ceta::testing::JsonValue& doc, const std::string& path) {
  for (const char* key :
       {"bench", "graph_tasks", "seeds_checked", "match", "reference_ns",
        "simulator_ns", "fleet_reference_s", "fleet_simulator_s", "speedup",
        "replications", "events", "sims_per_sec", "events_per_sec"}) {
    if (!doc.has(key)) return fail(path + " lacks member '" + key + "'");
  }
  if (doc.at("bench").string != "sim_montecarlo_vs_reference") {
    return fail("unexpected bench id '" + doc.at("bench").string + "'");
  }
  if (doc.at("seeds_checked").number < 100 ||
      doc.at("replications").number < 100 ||
      doc.at("simulator_ns").number <= 0 ||
      doc.at("fleet_simulator_s").number <= 0 ||
      doc.at("events").number <= 0) {
    return fail("degenerate bench record in " + path);
  }
  if (!doc.at("match").boolean) {
    return fail(
        "Simulator diverged from the reference engine (match: false in " +
        path + ")");
  }
  // The acceptance target on a quiet box is >= 5x on the replication
  // fleet; CI boxes are shared and noisy, so the hard gate only insists
  // the resettable core actually beats per-run construction.
  if (doc.at("speedup").number <= 1.0) {
    return fail("simulator rewrite is not faster than the reference engine "
                "on the replication fleet (speedup <= 1 in " +
                path + ")");
  }
  std::cout << "OK: " << path << " (" << doc.at("seeds_checked").number
            << " seeds, speedup " << doc.at("speedup").number << "x, "
            << doc.at("sims_per_sec").number << " sims/s, match: true)\n";
  return 0;
}

int check_service(const ceta::testing::JsonValue& doc,
                  const std::string& path) {
  for (const char* key :
       {"bench", "sessions", "threads", "ops", "ops_per_sec", "pushes",
        "push_checks", "match", "query_count", "query_p50_ns", "query_p95_ns",
        "query_p99_ns", "mutate_count", "mutate_p50_ns", "mutate_p95_ns",
        "mutate_p99_ns"}) {
    if (!doc.has(key)) return fail(path + " lacks member '" + key + "'");
  }
  if (doc.at("bench").string != "service_fleet") {
    return fail("unexpected bench id '" + doc.at("bench").string + "'");
  }
  if (doc.at("sessions").number < 1000) {
    return fail("fleet below the 1000-session floor in " + path);
  }
  if (doc.at("ops").number <= 0 || doc.at("ops_per_sec").number <= 0 ||
      doc.at("query_count").number <= 0 || doc.at("mutate_count").number <= 0) {
    return fail("degenerate bench record in " + path);
  }
  if (doc.at("pushes").number < 1) {
    return fail("no subscription pushes delivered in " + path);
  }
  // Percentiles must be defined and monotone — the histogram hardening
  // contract (empty/single-sample snapshots are exercised elsewhere; a
  // live fleet must produce ordered, positive quantiles).
  const double q50 = doc.at("query_p50_ns").number;
  const double q95 = doc.at("query_p95_ns").number;
  const double q99 = doc.at("query_p99_ns").number;
  if (!(q50 > 0) || q95 < q50 || q99 < q95) {
    return fail("query latency percentiles not positive/monotone in " + path);
  }
  const double m50 = doc.at("mutate_p50_ns").number;
  const double m95 = doc.at("mutate_p95_ns").number;
  const double m99 = doc.at("mutate_p99_ns").number;
  if (!(m50 > 0) || m95 < m50 || m99 < m95) {
    return fail("mutate latency percentiles not positive/monotone in " + path);
  }
  if (!doc.at("match").boolean) {
    return fail(
        "service replies/pushes diverged from fresh-engine recomputes "
        "(match: false in " +
        path + ")");
  }
  std::cout << "OK: " << path << " (" << doc.at("sessions").number
            << " sessions, " << doc.at("ops_per_sec").number
            << " ops/s, query p99 " << q99 << "ns, match: true)\n";
  return 0;
}

int check_explore(const ceta::testing::JsonValue& doc,
                  const std::string& path) {
  for (const char* key :
       {"bench", "tasks", "restarts", "budgets", "moves", "evaluations",
        "wall_seconds", "moves_per_sec_incremental", "evals_per_sec_incremental",
        "fresh_evals", "evals_per_sec_fresh", "speedup", "archive_size",
        "hypervolume_proxy", "revalidate_ok", "determinism_ok"}) {
    if (!doc.has(key)) return fail(path + " lacks member '" + key + "'");
  }
  if (doc.at("bench").string != "explore") {
    return fail("unexpected bench id '" + doc.at("bench").string + "'");
  }
  if (doc.at("tasks").number < 64 || doc.at("moves").number < 1 ||
      doc.at("archive_size").number < 1 ||
      doc.at("moves_per_sec_incremental").number <= 0 ||
      doc.at("evals_per_sec_fresh").number <= 0) {
    return fail("degenerate bench record in " + path);
  }
  if (!doc.at("revalidate_ok").boolean) {
    return fail(
        "an archived configuration failed to replay to its recorded "
        "objectives (revalidate_ok: false in " +
        path + ")");
  }
  if (!doc.at("determinism_ok").boolean) {
    return fail(
        "explorer Pareto front depends on the thread count "
        "(determinism_ok: false in " +
        path + ")");
  }
  if (doc.at("speedup").number < 5.0) {
    return fail(
        "incremental move evaluation below the 5x gate over "
        "fresh-engine-per-move (speedup < 5 in " +
        path + ")");
  }
  std::cout << "OK: " << path << " ("
            << doc.at("moves_per_sec_incremental").number << " moves/s, speedup "
            << doc.at("speedup").number << "x, archive "
            << doc.at("archive_size").number << ", deterministic)\n";
  return 0;
}

int check_tightness(const ceta::testing::JsonValue& doc,
                    const std::string& path) {
  for (const char* key : {"bench", "replications", "all_within_bounds",
                          "instances"}) {
    if (!doc.has(key)) return fail(path + " lacks member '" + key + "'");
  }
  if (doc.at("bench").string != "tightness") {
    return fail("unexpected bench id '" + doc.at("bench").string + "'");
  }
  if (doc.at("replications").number < 1000) {
    return fail("replication count below the 1000 floor in " + path);
  }
  const auto& instances = doc.at("instances").items();
  if (instances.size() < 3) {
    return fail("fewer than 3 instances recorded in " + path);
  }
  for (const auto& inst : instances) {
    for (const char* key :
         {"name", "tasks", "bound_ns", "worst_sample_ns", "tightness",
          "bound_violations", "samples", "sims_per_sec", "histogram"}) {
      if (!inst.has(key)) {
        return fail(path + " instance lacks member '" + std::string(key) + "'");
      }
    }
    if (inst.at("bound_violations").number != 0) {
      return fail("instance '" + inst.at("name").string +
                  "' measured a disparity above the analyzer bound in " +
                  path);
    }
    if (inst.at("samples").number < 1 || inst.at("sims_per_sec").number <= 0 ||
        inst.at("tightness").number < 0 || inst.at("tightness").number > 1) {
      return fail("degenerate instance record in " + path);
    }
    if (inst.at("histogram").items().empty()) {
      return fail("instance '" + inst.at("name").string +
                  "' recorded an empty measured-disparity histogram in " +
                  path);
    }
  }
  if (!doc.at("all_within_bounds").boolean) {
    return fail("a Monte-Carlo sample exceeded its analyzer bound "
                "(all_within_bounds: false in " +
                path + ")");
  }
  std::cout << "OK: " << path << " (" << doc.at("replications").number
            << " replications x " << instances.size()
            << " instances, all within bounds)\n";
  return 0;
}

int check_policy(const ceta::testing::JsonValue& doc,
                 const std::string& path) {
  for (const char* key :
       {"bench", "tasks", "rta_iterations", "rta_np_per_sec",
        "rta_preemptive_per_sec", "rta_edf_per_sec", "disparity_np_ns",
        "disparity_preemptive_ns", "disparity_edf_ns", "sweep_instances",
        "sweep_violations", "match"}) {
    if (!doc.has(key)) return fail(path + " lacks member '" + key + "'");
  }
  if (doc.at("bench").string != "policy") {
    return fail("unexpected bench id '" + doc.at("bench").string + "'");
  }
  if (doc.at("tasks").number < 64 || doc.at("rta_np_per_sec").number <= 0 ||
      doc.at("rta_preemptive_per_sec").number <= 0 ||
      doc.at("rta_edf_per_sec").number <= 0 ||
      doc.at("disparity_np_ns").number <= 0 ||
      doc.at("sweep_instances").number < 1) {
    return fail("degenerate bench record in " + path);
  }
  if (doc.at("sweep_violations").number != 0 || !doc.at("match").boolean) {
    return fail(
        "a mixed-policy simulation observed a response time above its "
        "policy-routed WCRT (match: false in " +
        path + ")");
  }
  std::cout << "OK: " << path << " (" << doc.at("sweep_instances").number
            << " mixed-policy instances, RTA np/p/edf "
            << doc.at("rta_np_per_sec").number << "/"
            << doc.at("rta_preemptive_per_sec").number << "/"
            << doc.at("rta_edf_per_sec").number << " runs/s, match: true)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || argc > 3) {
    std::cerr << "usage: check_bench_json <BENCH_*.json> "
                 "[pairwise|incremental|dagdp|sim|service|explore|tightness|"
                 "policy]\n";
    return 2;
  }
  const std::string path = argv[1];
  const std::string schema = argc == 3 ? argv[2] : "pairwise";
  if (schema != "pairwise" && schema != "incremental" && schema != "dagdp" &&
      schema != "sim" && schema != "service" && schema != "explore" &&
      schema != "tightness" && schema != "policy") {
    std::cerr << "unknown schema '" << schema << "'\n";
    return 2;
  }
  std::ifstream in(path);
  if (!in) {
    std::cerr << "FAIL: cannot open '" << path
              << "' (did the perf_smoke run produce it?)\n";
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();

  try {
    const ceta::testing::JsonValue doc =
        ceta::testing::JsonParser::parse(buf.str());
    if (schema == "pairwise") return check_pairwise(doc, path);
    if (schema == "incremental") return check_incremental(doc, path);
    if (schema == "dagdp") return check_dagdp(doc, path);
    if (schema == "sim") return check_sim(doc, path);
    if (schema == "explore") return check_explore(doc, path);
    if (schema == "tightness") return check_tightness(doc, path);
    if (schema == "policy") return check_policy(doc, path);
    return check_service(doc, path);
  } catch (const std::exception& e) {
    std::cerr << "FAIL: " << path << " is not valid JSON: " << e.what()
              << "\n";
    return 1;
  }
}
