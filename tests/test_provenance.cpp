#include "sim/provenance.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace ceta {
namespace {

TEST(Provenance, EmptyByDefault) {
  Provenance p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.num_sources(), 0u);
  EXPECT_EQ(p.disparity(), Duration::zero());
  EXPECT_THROW(p.min_timestamp(), PreconditionError);
  EXPECT_THROW(p.max_timestamp(), PreconditionError);
}

TEST(Provenance, OfSource) {
  const Provenance p = Provenance::of_source(3, Duration::ms(7));
  EXPECT_FALSE(p.empty());
  EXPECT_EQ(p.num_sources(), 1u);
  EXPECT_EQ(p.min_timestamp(), Duration::ms(7));
  EXPECT_EQ(p.max_timestamp(), Duration::ms(7));
  EXPECT_EQ(p.disparity(), Duration::zero());
}

TEST(Provenance, MergeDistinctSources) {
  Provenance p = Provenance::of_source(1, Duration::ms(10));
  p.merge(Provenance::of_source(2, Duration::ms(4)));
  EXPECT_EQ(p.num_sources(), 2u);
  EXPECT_EQ(p.min_timestamp(), Duration::ms(4));
  EXPECT_EQ(p.max_timestamp(), Duration::ms(10));
  EXPECT_EQ(p.disparity(), Duration::ms(6));
}

TEST(Provenance, MergeSameSourceKeepsMinMax) {
  Provenance p = Provenance::of_source(1, Duration::ms(10));
  p.merge(Provenance::of_source(1, Duration::ms(30)));
  p.merge(Provenance::of_source(1, Duration::ms(20)));
  EXPECT_EQ(p.num_sources(), 1u);
  ASSERT_EQ(p.stamps().size(), 1u);
  EXPECT_EQ(p.stamps()[0].min_ts, Duration::ms(10));
  EXPECT_EQ(p.stamps()[0].max_ts, Duration::ms(30));
  // Same-source samples taken at different times count toward disparity.
  EXPECT_EQ(p.disparity(), Duration::ms(20));
}

TEST(Provenance, MergeKeepsSortedOrder) {
  Provenance p = Provenance::of_source(5, Duration::ms(1));
  p.merge(Provenance::of_source(2, Duration::ms(2)));
  p.merge(Provenance::of_source(9, Duration::ms(3)));
  p.merge(Provenance::of_source(1, Duration::ms(4)));
  ASSERT_EQ(p.stamps().size(), 4u);
  for (std::size_t i = 1; i < p.stamps().size(); ++i) {
    EXPECT_LT(p.stamps()[i - 1].source, p.stamps()[i].source);
  }
}

TEST(Provenance, MergeWithEmptyIsIdentity) {
  Provenance p = Provenance::of_source(1, Duration::ms(10));
  p.merge(Provenance{});
  EXPECT_EQ(p.num_sources(), 1u);
  Provenance q;
  q.merge(p);
  EXPECT_EQ(q.num_sources(), 1u);
  EXPECT_EQ(q.min_timestamp(), Duration::ms(10));
}

TEST(Provenance, MergeCommutes) {
  Provenance a = Provenance::of_source(1, Duration::ms(5));
  a.merge(Provenance::of_source(3, Duration::ms(9)));
  Provenance b = Provenance::of_source(3, Duration::ms(2));
  b.merge(Provenance::of_source(2, Duration::ms(7)));

  Provenance ab = a;
  ab.merge(b);
  Provenance ba = b;
  ba.merge(a);
  ASSERT_EQ(ab.stamps().size(), ba.stamps().size());
  for (std::size_t i = 0; i < ab.stamps().size(); ++i) {
    EXPECT_EQ(ab.stamps()[i].source, ba.stamps()[i].source);
    EXPECT_EQ(ab.stamps()[i].min_ts, ba.stamps()[i].min_ts);
    EXPECT_EQ(ab.stamps()[i].max_ts, ba.stamps()[i].max_ts);
  }
}

TEST(Provenance, NegativeTimestamps) {
  Provenance p = Provenance::of_source(1, Duration::ms(-10));
  p.merge(Provenance::of_source(2, Duration::ms(5)));
  EXPECT_EQ(p.disparity(), Duration::ms(15));
}

TEST(Provenance, DisparityIsMaxPairwiseDifference) {
  Provenance p = Provenance::of_source(1, Duration::ms(3));
  p.merge(Provenance::of_source(2, Duration::ms(11)));
  p.merge(Provenance::of_source(3, Duration::ms(7)));
  p.merge(Provenance::of_source(1, Duration::ms(6)));
  EXPECT_EQ(p.disparity(), Duration::ms(8));  // 11 − 3
}

}  // namespace
}  // namespace ceta
