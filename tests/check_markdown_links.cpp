// Markdown cross-reference checker for the repo's documentation, run as a
// ctest (plain-text parsing, no regex — same style as check_bench_json):
//
//   check_markdown_links <repo_root> <file.md>...
//
// Checks, per file:
//  1. Every inline link `[text](target)` with a relative target resolves
//     to an existing file or directory (http(s)/mailto/anchor-only
//     targets are skipped; `#fragment` suffixes are stripped first).
//  2. Every arabic section reference `§N` (the DESIGN.md numbering;
//     Roman-numeral references like §IV cite the paper and are ignored)
//     names an actual `## N.` heading of DESIGN.md, so prose can never
//     cite a section that was renumbered away.
//
// Exit 0 when every reference resolves, 1 otherwise (each failure is
// reported), 2 on usage errors.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path.string());
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Section numbers of `## N.` headings in DESIGN.md.
std::set<int> design_sections(const std::string& text) {
  std::set<int> out;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("## ", 0) != 0) continue;
    std::size_t i = 3;
    std::size_t digits = 0;
    int n = 0;
    while (i < line.size() && line[i] >= '0' && line[i] <= '9') {
      n = n * 10 + (line[i] - '0');
      ++i;
      ++digits;
    }
    if (digits > 0 && i < line.size() && line[i] == '.') out.insert(n);
  }
  return out;
}

bool external_target(const std::string& t) {
  return t.rfind("http://", 0) == 0 || t.rfind("https://", 0) == 0 ||
         t.rfind("mailto:", 0) == 0 || (!t.empty() && t[0] == '#');
}

/// Collect `[text](target)` inline-link targets.  Deliberately simple:
/// a ']' directly followed by '(' closes a link; nested brackets and
/// reference-style links don't occur in this repo's docs.
std::vector<std::string> link_targets(const std::string& text) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i + 1 < text.size(); ++i) {
    if (text[i] != ']' || text[i + 1] != '(') continue;
    const std::size_t close = text.find(')', i + 2);
    if (close == std::string::npos) break;
    out.push_back(text.substr(i + 2, close - i - 2));
    i = close;
  }
  return out;
}

/// 1-based line number of byte offset `pos`.
std::size_t line_of(const std::string& text, std::size_t pos) {
  std::size_t line = 1;
  for (std::size_t i = 0; i < pos && i < text.size(); ++i) {
    if (text[i] == '\n') ++line;
  }
  return line;
}

int check_file(const fs::path& root, const fs::path& file,
               const std::set<int>& sections) {
  int failures = 0;
  const std::string text = read_file(file);

  for (const std::string& raw : link_targets(text)) {
    if (external_target(raw)) continue;
    std::string target = raw.substr(0, raw.find('#'));
    if (target.empty()) continue;
    const fs::path resolved = file.parent_path() / target;
    if (!fs::exists(resolved)) {
      std::cerr << "FAIL: " << fs::relative(file, root).string()
                << ": broken link target '" << raw << "' (resolved to "
                << resolved.string() << ")\n";
      ++failures;
    }
  }

  // UTF-8 '§' is the byte pair 0xC2 0xA7; only arabic-digit references
  // are DESIGN.md sections.
  for (std::size_t i = 0; i + 2 < text.size(); ++i) {
    if (static_cast<unsigned char>(text[i]) != 0xC2 ||
        static_cast<unsigned char>(text[i + 1]) != 0xA7) {
      continue;
    }
    std::size_t j = i + 2;
    int n = 0;
    std::size_t digits = 0;
    while (j < text.size() && text[j] >= '0' && text[j] <= '9') {
      n = n * 10 + (text[j] - '0');
      ++j;
      ++digits;
    }
    if (digits == 0) continue;
    if (sections.count(n) == 0) {
      std::cerr << "FAIL: " << fs::relative(file, root).string() << ":"
                << line_of(text, i) << ": reference to DESIGN.md §" << n
                << " but DESIGN.md has no '## " << n << ".' heading\n";
      ++failures;
    }
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "usage: check_markdown_links <repo_root> <file.md>...\n";
    return 2;
  }
  try {
    const fs::path root = argv[1];
    const std::set<int> sections =
        design_sections(read_file(root / "DESIGN.md"));
    if (sections.empty()) {
      std::cerr << "FAIL: no '## N.' headings found in DESIGN.md\n";
      return 1;
    }
    int failures = 0;
    std::size_t checked = 0;
    for (int i = 2; i < argc; ++i) {
      fs::path file = argv[i];
      if (file.is_relative()) file = root / file;
      failures += check_file(root, file, sections);
      ++checked;
    }
    if (failures > 0) {
      std::cerr << failures << " broken reference(s)\n";
      return 1;
    }
    std::cout << "OK: " << checked << " markdown files, all links and §"
              << " references resolve\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "FAIL: " << e.what() << "\n";
    return 1;
  }
}
