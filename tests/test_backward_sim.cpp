#include "sim/backward.hpp"

#include <gtest/gtest.h>

#include "chain/backward_bounds.hpp"
#include "common/error.hpp"
#include "disparity/forkjoin.hpp"
#include "helpers.hpp"
#include "sim/engine.hpp"

namespace ceta {
namespace {

SimOptions traced(Duration duration, std::uint64_t seed = 1) {
  SimOptions opt;
  opt.duration = duration;
  opt.seed = seed;
  opt.record_trace = true;
  return opt;
}

TEST(BackwardSim, DeterministicOffsetChain) {
  // S (T=10, offset 0) -> A (T=10, offset 2, W=B=1): every A job reads the
  // S sample from the same period, len = 2ms for all jobs.
  TaskGraph g;
  Task s;
  s.name = "S";
  s.period = Duration::ms(10);
  const TaskId sid = g.add_task(s);
  Task a;
  a.name = "A";
  a.wcet = a.bcet = Duration::ms(1);
  a.period = Duration::ms(10);
  a.offset = Duration::ms(2);
  a.ecu = 0;
  a.priority = 0;
  const TaskId aid = g.add_task(a);
  g.add_edge(sid, aid);
  g.validate();

  SimOptions opt = traced(Duration::ms(200));
  opt.exec_model = ExecTimeModel::kWorstCase;
  const SimResult res = Simulator(g, opt).run();
  const BackwardMeasurement m =
      measured_backward_times(g, res.trace, {sid, aid});
  EXPECT_EQ(m.incomplete, 0u);
  ASSERT_FALSE(m.lengths.empty());
  for (Duration len : m.lengths) {
    EXPECT_EQ(len, Duration::ms(2));
  }
}

TEST(BackwardSim, IncompleteChainsCountedAtStartup) {
  // Source offset 5ms, consumer offset 0: the first consumer job reads an
  // empty channel.
  TaskGraph g;
  Task s;
  s.name = "S";
  s.period = Duration::ms(10);
  s.offset = Duration::ms(5);
  const TaskId sid = g.add_task(s);
  Task a;
  a.name = "A";
  a.wcet = a.bcet = Duration::ms(1);
  a.period = Duration::ms(10);
  a.ecu = 0;
  a.priority = 0;
  const TaskId aid = g.add_task(a);
  g.add_edge(sid, aid);
  g.validate();

  const SimResult res = Simulator(g, traced(Duration::ms(100))).run();
  const BackwardMeasurement m =
      measured_backward_times(g, res.trace, {sid, aid});
  EXPECT_EQ(m.incomplete, 1u);
  EXPECT_EQ(m.lengths.size(), res.trace.tasks[aid].jobs.size() - 1);
}

TEST(BackwardSim, LengthsWithinLemma45Bounds) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const TaskGraph g = testing::random_dag_graph(10, 3, seed + 10);
    const ResponseTimeMap rtm = testing::response_times_of(g);
    const TaskId sink = g.sinks().front();
    const SimResult res = Simulator(g, traced(Duration::s(1), seed)).run();
    for (const Path& chain : enumerate_source_chains(g, sink)) {
      const BackwardBounds b = backward_bounds(g, chain, rtm);
      const BackwardMeasurement m =
          measured_backward_times(g, res.trace, chain);
      for (Duration len : m.lengths) {
        EXPECT_LE(len, b.wcbt) << "seed " << seed;
        EXPECT_GE(len, b.bcbt) << "seed " << seed;
      }
    }
  }
}

TEST(BackwardSim, SchedulingAgnosticBoundAlsoHolds) {
  const TaskGraph g = testing::random_dag_graph(10, 3, 33);
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const TaskId sink = g.sinks().front();
  const SimResult res = Simulator(g, traced(Duration::s(1), 3)).run();
  for (const Path& chain : enumerate_source_chains(g, sink)) {
    const Duration w =
        wcbt_bound(g, chain, rtm, HopBoundMethod::kSchedulingAgnostic);
    for (Duration len :
         measured_backward_times(g, res.trace, chain).lengths) {
      EXPECT_LE(len, w);
    }
  }
}

TEST(BackwardSim, BufferedChainRespectsLemma6) {
  // Put a FIFO on the head channel of one chain of the diamond and check
  // the shifted bounds hold after warm-up.
  TaskGraph g = testing::diamond_graph();
  g.set_buffer_size(0, 1, 3);
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const Path lambda = {0, 1, 2, 4};
  const BackwardBounds shifted = backward_bounds(g, lambda, rtm);

  const SimResult res = Simulator(g, traced(Duration::s(2), 7)).run();
  const Instant warmup = Duration::ms(200);
  const BackwardMeasurement m =
      measured_backward_times(g, res.trace, lambda, warmup);
  ASSERT_FALSE(m.lengths.empty());
  for (Duration len : m.lengths) {
    EXPECT_LE(len, shifted.wcbt);
    EXPECT_GE(len, shifted.bcbt);
  }
}

TEST(BackwardSim, PairDiffsWithinTheorem2Bound) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const TaskGraph g = testing::random_two_chain_graph(5, 2, seed + 70);
    const ResponseTimeMap rtm = testing::response_times_of(g);
    const TaskId sink = g.sinks().front();
    const auto chains = enumerate_source_chains(g, sink);
    ASSERT_EQ(chains.size(), 2u);
    const Duration bound =
        sdiff_pair_bound(g, chains[0], chains[1], rtm).bound;

    const SimResult res = Simulator(g, traced(Duration::s(1), seed)).run();
    const auto diffs = measured_pair_timestamp_diffs(
        g, res.trace, chains[0], chains[1], Duration::ms(500));
    for (Duration d : diffs) {
      EXPECT_LE(d, bound) << "seed " << seed;
    }
  }
}

TEST(BackwardSim, PairDiffsMatchProvenanceDisparity) {
  // On a two-chain merge the sink's provenance disparity at each job must
  // equal the pair timestamp difference reconstructed from the trace.
  const TaskGraph g = testing::random_two_chain_graph(4, 2, 123);
  const TaskId sink = g.sinks().front();
  const auto chains = enumerate_source_chains(g, sink);

  SimOptions opt = traced(Duration::s(1), 5);
  opt.warmup = Duration::ms(500);
  const SimResult res = Simulator(g, opt).run();
  const auto diffs = measured_pair_timestamp_diffs(
      g, res.trace, chains[0], chains[1], opt.warmup);
  ASSERT_FALSE(diffs.empty());
  Duration max_diff = Duration::zero();
  for (Duration d : diffs) max_diff = std::max(max_diff, d);
  EXPECT_EQ(max_diff, res.max_disparity[sink]);
}

TEST(BackwardSim, Preconditions) {
  const TaskGraph g = testing::simple_chain_graph();
  const SimResult res = Simulator(g, traced(Duration::ms(100))).run();
  EXPECT_THROW(measured_backward_times(g, res.trace, {0, 2}),
               PreconditionError);
  EXPECT_THROW(
      measured_pair_timestamp_diffs(g, res.trace, {0, 1, 2}, {1, 2}),
      PreconditionError);
}

}  // namespace
}  // namespace ceta
