// End-to-end safety of the analysis (the paper's headline claim):
// on randomly generated WATERS instances, the measured time disparity
// never exceeds the S-diff (Theorem 2) bound, which never exceeds the
// P-diff (Theorem 1) bound.

#include <gtest/gtest.h>

#include "disparity/analyzer.hpp"
#include "graph/generator.hpp"
#include "graph/paths.hpp"
#include "helpers.hpp"
#include "sched/priority.hpp"
#include "sim/engine.hpp"
#include "waters/generator.hpp"

namespace ceta {
namespace {

class DisparitySafety : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DisparitySafety, SimNeverExceedsBoundsAtSink) {
  const std::uint64_t seed = GetParam();
  TaskGraph g = testing::random_dag_graph(14, 3, seed);
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const TaskId sink = g.sinks().front();

  DisparityOptions opt;
  opt.method = DisparityMethod::kForkJoin;
  const Duration sdiff = analyze_time_disparity(g, sink, rtm, opt).worst_case;
  opt.method = DisparityMethod::kIndependent;
  const Duration pdiff = analyze_time_disparity(g, sink, rtm, opt).worst_case;
  ASSERT_LE(sdiff, pdiff);

  Rng rng(seed * 7919 + 1);
  for (int run = 0; run < 3; ++run) {
    randomize_offsets(g, rng);
    SimOptions sopt;
    sopt.duration = Duration::s(2);
    sopt.seed = seed + static_cast<std::uint64_t>(run);
    sopt.exec_model = ExecTimeModel::kUniform;
    const SimResult res = Simulator(g, sopt).run();
    EXPECT_LE(res.max_disparity[sink], sdiff)
        << "seed " << seed << " run " << run;
  }
}

TEST_P(DisparitySafety, HoldsForEveryIntermediateTask) {
  const std::uint64_t seed = GetParam();
  TaskGraph g = testing::random_dag_graph(12, 3, seed + 4000);
  const ResponseTimeMap rtm = testing::response_times_of(g);

  // Bound every task that fuses at least two source chains.
  std::vector<std::pair<TaskId, Duration>> bounds;
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    if (count_source_chains(g, id) < 2) continue;
    if (count_source_chains(g, id) > 500) continue;
    bounds.emplace_back(
        id, analyze_time_disparity(g, id, rtm).worst_case);
  }
  ASSERT_FALSE(bounds.empty());

  Rng rng(seed);
  randomize_offsets(g, rng);
  SimOptions sopt;
  sopt.duration = Duration::s(2);
  sopt.seed = seed;
  const SimResult res = Simulator(g, sopt).run();
  for (const auto& [task, bound] : bounds) {
    EXPECT_LE(res.max_disparity[task], bound)
        << "seed " << seed << " task " << g.task(task).name;
  }
}

TEST_P(DisparitySafety, ExtremeExecutionModelsAlsoSafe) {
  const std::uint64_t seed = GetParam();
  TaskGraph g = testing::random_dag_graph(10, 2, seed + 8000);
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const TaskId sink = g.sinks().front();
  const Duration sdiff = analyze_time_disparity(g, sink, rtm).worst_case;

  Rng rng(seed + 13);
  randomize_offsets(g, rng);
  for (ExecTimeModel model :
       {ExecTimeModel::kWorstCase, ExecTimeModel::kBestCase}) {
    SimOptions sopt;
    sopt.duration = Duration::s(2);
    sopt.seed = seed;
    sopt.exec_model = model;
    const SimResult res = Simulator(g, sopt).run();
    EXPECT_LE(res.max_disparity[sink], sdiff) << "seed " << seed;
  }
}

TEST_P(DisparitySafety, AdversarialAlternatingExecution) {
  // Alternating BCET/WCET across jobs tends to maximize pipeline jitter.
  const std::uint64_t seed = GetParam();
  TaskGraph g = testing::random_dag_graph(10, 2, seed + 12000);
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const TaskId sink = g.sinks().front();
  const Duration sdiff = analyze_time_disparity(g, sink, rtm).worst_case;

  Rng rng(seed + 29);
  randomize_offsets(g, rng);
  SimOptions sopt;
  sopt.duration = Duration::s(2);
  sopt.seed = seed;
  sopt.exec_model = ExecTimeModel::kCustom;
  sopt.exec_hook = [](const Task& t, std::int64_t job, Rng&) {
    return (job % 2 == 0) ? t.bcet : t.wcet;
  };
  const SimResult res = Simulator(g, sopt).run();
  EXPECT_LE(res.max_disparity[sink], sdiff) << "seed " << seed;
}

TEST_P(DisparitySafety, FunnelTopologySafeToo) {
  // The Fig. 1-shaped funnel is where S-diff visibly beats P-diff; both
  // must still dominate the simulation.
  const std::uint64_t seed = GetParam();
  Rng gen_rng(seed + 16000);
  TaskGraph g = [&] {
    for (int attempt = 0; attempt < 128; ++attempt) {
      FunnelDagOptions fopt;
      fopt.num_tasks = 14;
      TaskGraph candidate = funnel_random_dag(fopt, gen_rng);
      WatersAssignOptions wopt;
      wopt.num_ecus = 3;
      assign_waters_parameters(candidate, wopt, gen_rng);
      const TaskId sink = candidate.sinks().front();
      if (count_source_chains(candidate, sink) >= 2 &&
          count_source_chains(candidate, sink) <= 500 &&
          analyze_response_times(candidate).all_schedulable) {
        return candidate;
      }
    }
    throw Error("no admissible funnel draw");
  }();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const TaskId sink = g.sinks().front();
  DisparityOptions opt;
  opt.method = DisparityMethod::kForkJoin;
  const Duration sdiff = analyze_time_disparity(g, sink, rtm, opt).worst_case;
  opt.method = DisparityMethod::kIndependent;
  const Duration pdiff = analyze_time_disparity(g, sink, rtm, opt).worst_case;
  ASSERT_LE(sdiff, pdiff);

  Rng rng(seed * 31 + 7);
  for (int run = 0; run < 2; ++run) {
    randomize_offsets(g, rng);
    SimOptions sopt;
    sopt.duration = Duration::s(2);
    sopt.seed = seed + static_cast<std::uint64_t>(run);
    const SimResult res = Simulator(g, sopt).run();
    EXPECT_LE(res.max_disparity[sink], sdiff)
        << "seed " << seed << " run " << run;
  }
}

TEST_P(DisparitySafety, RandomFifoBuffersStaySafe) {
  // Generalized Lemma 6: FIFO buffers on arbitrary channels shift the
  // chain bounds; the buffered analysis must still dominate a simulation
  // once the FIFOs are warm.
  const std::uint64_t seed = GetParam();
  TaskGraph g = testing::random_dag_graph(10, 3, seed + 20000);
  Rng rng(seed);
  for (const Edge& e : std::vector<Edge>(g.edges().begin(), g.edges().end())) {
    if (rng.flip(0.4)) {
      g.set_buffer_size(e.from, e.to,
                        static_cast<int>(rng.uniform_int(2, 4)));
    }
  }
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const TaskId sink = g.sinks().front();
  const Duration sdiff = analyze_time_disparity(g, sink, rtm).worst_case;

  randomize_offsets(g, rng);
  SimOptions sopt;
  // Warm-up long enough for every FIFO (size <= 4, period <= 200ms).
  sopt.warmup = Duration::s(4);
  sopt.duration = Duration::s(8);
  sopt.seed = seed;
  const SimResult res = Simulator(g, sopt).run();
  EXPECT_LE(res.max_disparity[sink], sdiff) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DisparitySafety,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace ceta
