#include "disparity/sensitivity.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "helpers.hpp"

namespace ceta {
namespace {

/// The Fig. 4 topology: fast chain S1 -> P -> F, slow chain S2 -> Q -> F.
TaskGraph fig4_graph() {
  TaskGraph g;
  Task s1;
  s1.name = "S1";
  s1.period = Duration::ms(10);
  const TaskId s1id = g.add_task(s1);
  Task s2;
  s2.name = "S2";
  s2.period = Duration::ms(100);
  const TaskId s2id = g.add_task(s2);
  auto mk = [](const char* name, Duration period, EcuId ecu) {
    Task t;
    t.name = name;
    t.wcet = t.bcet = Duration::ms(1);
    t.period = period;
    t.ecu = ecu;
    t.priority = 0;
    return t;
  };
  const TaskId p = g.add_task(mk("P", Duration::ms(30), 0));
  const TaskId q = g.add_task(mk("Q", Duration::ms(100), 1));
  const TaskId f = g.add_task(mk("F", Duration::ms(30), 2));
  g.add_edge(s1id, p);
  g.add_edge(s2id, q);
  g.add_edge(p, f);
  g.add_edge(q, f);
  g.validate();
  return g;
}

const SensitivityEntry* find(const std::vector<SensitivityEntry>& entries,
                             TaskId task, PerturbedParam param) {
  for (const SensitivityEntry& e : entries) {
    if (e.task == task && e.param == param) return &e;
  }
  return nullptr;
}

TEST(Sensitivity, Fig4SlowChainPeriodDominates) {
  const TaskGraph g = fig4_graph();
  const auto entries = disparity_sensitivity(g, 4);
  // Doubling the *slow* chain's rates (S2, Q) must move the bound far
  // more than doubling the fast middle task P's rate — the paper's Fig. 4
  // observation, quantified.
  const SensitivityEntry* p = find(entries, 2, PerturbedParam::kPeriod);
  const SensitivityEntry* q = find(entries, 3, PerturbedParam::kPeriod);
  const SensitivityEntry* s2 = find(entries, 1, PerturbedParam::kPeriod);
  ASSERT_NE(p, nullptr);
  ASSERT_NE(q, nullptr);
  ASSERT_NE(s2, nullptr);
  const auto mag = [](const SensitivityEntry* e) {
    const Duration d = e->delta();
    return d < Duration::zero() ? -d : d;
  };
  EXPECT_GT(mag(q), mag(p) * 3);
  EXPECT_GT(mag(s2), mag(p) * 2);
  // The top-ranked entry is on the slow chain.
  EXPECT_TRUE(entries.front().task == 1 || entries.front().task == 3);
}

TEST(Sensitivity, WcetBarelyMattersUnderTinyUtilization) {
  // Periods dominate every bound; halving a WCET moves the bound by at
  // most O(R) (milliseconds here, vs a 100ms-scale bound).
  const TaskGraph g = fig4_graph();
  const auto entries = disparity_sensitivity(g, 4);
  for (const SensitivityEntry& e : entries) {
    if (e.param != PerturbedParam::kWcet) continue;
    const Duration d = e.delta() < Duration::zero() ? -e.delta() : e.delta();
    EXPECT_LE(d, Duration::ms(5)) << "task " << e.task;
  }
}

TEST(Sensitivity, EntriesCoverAncestorsOnly) {
  // Sensitivity of the branch task C in the diamond must not include D.
  const TaskGraph g = testing::diamond_graph();
  const auto entries = disparity_sensitivity(g, 2);  // C
  for (const SensitivityEntry& e : entries) {
    EXPECT_NE(e.task, 3u);  // D is not an ancestor of C
    EXPECT_NE(e.task, 4u);  // E neither
  }
  // S has no WCET entry (source), but has a period entry.
  EXPECT_NE(find(entries, 0, PerturbedParam::kPeriod), nullptr);
  EXPECT_EQ(find(entries, 0, PerturbedParam::kWcet), nullptr);
}

TEST(Sensitivity, PerturbationsKeepBaselineConsistent) {
  const TaskGraph g = testing::diamond_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const Duration expected = analyze_time_disparity(g, 4, rtm).worst_case;
  for (const SensitivityEntry& e : disparity_sensitivity(g, 4)) {
    EXPECT_EQ(e.baseline, expected);
  }
}

TEST(Sensitivity, SortedByMagnitude) {
  const TaskGraph g = fig4_graph();
  const auto entries = disparity_sensitivity(g, 4);
  for (std::size_t i = 1; i < entries.size(); ++i) {
    if (!entries[i].schedulable) continue;  // unschedulable sorted last
    const auto mag = [](const SensitivityEntry& e) {
      const Duration d = e.delta();
      return d < Duration::zero() ? -d : d;
    };
    EXPECT_GE(mag(entries[i - 1]), mag(entries[i]));
  }
}

TEST(Sensitivity, UnschedulablePerturbationFlagged) {
  // P shares ECU 0 with a heavy neighbor; halving P's period pushes the
  // ECU past 100% utilization.
  TaskGraph g = fig4_graph();
  g.task(2).wcet = g.task(2).bcet = Duration::ms(10);  // P: 10/30
  Task heavy;
  heavy.name = "heavy";
  heavy.wcet = heavy.bcet = Duration::ms(13);  // 13/30 on the same ECU
  heavy.period = Duration::ms(30);
  heavy.ecu = 0;
  heavy.priority = 1;
  const TaskId heavy_id = g.add_task(heavy);
  g.add_edge(0, heavy_id);  // fed by S1; not an ancestor of F
  g.validate();
  const auto entries = disparity_sensitivity(g, 4);
  const SensitivityEntry* p = find(entries, 2, PerturbedParam::kPeriod);
  ASSERT_NE(p, nullptr);
  EXPECT_FALSE(p->schedulable);
  EXPECT_FALSE(entries.empty());
  EXPECT_TRUE(entries.back().schedulable == false ||
              entries.back().delta() == Duration::zero());
}

TEST(Sensitivity, Preconditions) {
  const TaskGraph g = fig4_graph();
  EXPECT_THROW(disparity_sensitivity(g, 99), PreconditionError);
  SensitivityOptions opt;
  opt.period_factor = 0.0;
  EXPECT_THROW(disparity_sensitivity(g, 4, opt), PreconditionError);
}

}  // namespace
}  // namespace ceta
