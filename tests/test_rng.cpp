#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>

#include "common/error.hpp"

namespace ceta {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1'000'000), b.uniform_int(0, 1'000'000));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(0, 1'000'000) == b.uniform_int(0, 1'000'000)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // all three values hit
}

TEST(Rng, UniformIntSinglePoint) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(Rng, UniformIntEmptyRangeThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform_int(5, 4), PreconditionError);
}

TEST(Rng, UniformRealRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_real(0.25, 0.75);
    EXPECT_GE(v, 0.25);
    EXPECT_LT(v, 0.75);
  }
}

TEST(Rng, UniformDuration) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const Duration d = rng.uniform_duration(Duration::ms(1), Duration::ms(2));
    EXPECT_GE(d, Duration::ms(1));
    EXPECT_LE(d, Duration::ms(2));
  }
}

TEST(Rng, FlipProbabilityZeroAndOne) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.flip(0.0));
    EXPECT_TRUE(rng.flip(1.0));
  }
  EXPECT_THROW(rng.flip(1.5), PreconditionError);
}

TEST(Rng, WeightedIndexRespectsZeros) {
  Rng rng(7);
  const std::array<double, 3> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.weighted_index(weights), 1u);
  }
}

TEST(Rng, WeightedIndexDistribution) {
  Rng rng(7);
  const std::array<double, 2> weights = {1.0, 3.0};
  int count1 = 0;
  const int trials = 10'000;
  for (int i = 0; i < trials; ++i) {
    if (rng.weighted_index(weights) == 1) ++count1;
  }
  // Expected 75%; loose 5-sigma-ish window.
  EXPECT_GT(count1, trials * 70 / 100);
  EXPECT_LT(count1, trials * 80 / 100);
}

TEST(Rng, WeightedIndexRejectsBadInput) {
  Rng rng(7);
  EXPECT_THROW(rng.weighted_index({}), PreconditionError);
  const std::array<double, 2> negative = {1.0, -1.0};
  EXPECT_THROW(rng.weighted_index(negative), PreconditionError);
  const std::array<double, 2> zeros = {0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(zeros), PreconditionError);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = rng.sample_without_replacement(20, 10);
    EXPECT_EQ(sample.size(), 10u);
    std::set<std::size_t> uniq(sample.begin(), sample.end());
    EXPECT_EQ(uniq.size(), 10u);
    for (std::size_t v : sample) EXPECT_LT(v, 20u);
  }
}

TEST(Rng, SampleWithoutReplacementFullRange) {
  Rng rng(7);
  const auto sample = rng.sample_without_replacement(5, 5);
  std::set<std::size_t> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 5u);
}

TEST(Rng, SampleWithoutReplacementKZero) {
  Rng rng(7);
  EXPECT_TRUE(rng.sample_without_replacement(5, 0).empty());
}

TEST(Rng, SampleWithoutReplacementRejectsKAboveN) {
  Rng rng(7);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), PreconditionError);
}

TEST(Rng, SampleWithoutReplacementUniform) {
  // Every element of [0, 4) should be picked roughly equally often when
  // sampling 2 of 4.
  Rng rng(123);
  std::array<int, 4> hits = {0, 0, 0, 0};
  const int trials = 8'000;
  for (int i = 0; i < trials; ++i) {
    for (std::size_t v : rng.sample_without_replacement(4, 2)) {
      ++hits[v];
    }
  }
  for (int h : hits) {
    EXPECT_GT(h, trials * 2 / 4 * 85 / 100);
    EXPECT_LT(h, trials * 2 / 4 * 115 / 100);
  }
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent(42);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1.uniform_int(0, 1'000'000) == child2.uniform_int(0, 1'000'000)) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, SplitDeterministic) {
  Rng a(42), b(42);
  Rng ca = a.split();
  Rng cb = b.split();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(ca.uniform_int(0, 1'000'000), cb.uniform_int(0, 1'000'000));
  }
}

}  // namespace
}  // namespace ceta
