#include "waters/generator.hpp"

#include <gtest/gtest.h>

#include <map>

#include "common/error.hpp"
#include "graph/generator.hpp"
#include "sched/npfp_rta.hpp"
#include "waters/tables.hpp"

namespace ceta {
namespace {

TEST(WatersTables, EightPeriodsOrdered) {
  const auto profiles = waters_profiles();
  ASSERT_EQ(profiles.size(), 8u);
  for (std::size_t i = 1; i < profiles.size(); ++i) {
    EXPECT_LT(profiles[i - 1].period, profiles[i].period);
  }
  EXPECT_EQ(profiles.front().period, Duration::ms(1));
  EXPECT_EQ(profiles.back().period, Duration::ms(200));
}

TEST(WatersTables, SharesAndFactorsSane) {
  for (const WatersPeriodProfile& p : waters_profiles()) {
    EXPECT_GT(p.share_percent, 0.0);
    EXPECT_GT(p.mean_acet, Duration::zero());
    EXPECT_LT(p.mean_acet, p.period);  // tiny utilizations
    EXPECT_GT(p.bcet_factor_lo, 0.0);
    EXPECT_LE(p.bcet_factor_lo, p.bcet_factor_hi);
    EXPECT_LE(p.bcet_factor_hi, 1.0);
    EXPECT_GE(p.wcet_factor_lo, 1.0);
    EXPECT_LE(p.wcet_factor_lo, p.wcet_factor_hi);
  }
}

TEST(WatersTables, DominantPeriodsPerTableIII) {
  // 10ms and 20ms are the modal periods in the WATERS distribution.
  EXPECT_DOUBLE_EQ(waters_profile_for(Duration::ms(10)).share_percent, 25.0);
  EXPECT_DOUBLE_EQ(waters_profile_for(Duration::ms(20)).share_percent, 25.0);
  EXPECT_DOUBLE_EQ(waters_profile_for(Duration::ms(200)).share_percent, 1.0);
}

TEST(WatersTables, LookupUnknownPeriodThrows) {
  EXPECT_THROW(waters_profile_for(Duration::ms(30)), PreconditionError);
}

TEST(WatersSample, PeriodAlwaysFromSubset) {
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const WatersTaskParams p = sample_waters_task(rng);
    EXPECT_NO_THROW(waters_profile_for(p.period));
  }
}

TEST(WatersSample, ExecutionTimesWithinFactorRanges) {
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const WatersTaskParams p = sample_waters_task(rng);
    const WatersPeriodProfile& prof = waters_profile_for(p.period);
    const double acet = static_cast<double>(prof.mean_acet.count());
    EXPECT_GE(p.bcet.count(), static_cast<std::int64_t>(acet * prof.bcet_factor_lo) - 1);
    EXPECT_LE(p.bcet.count(), static_cast<std::int64_t>(acet * prof.bcet_factor_hi) + 1);
    EXPECT_GE(p.wcet.count(), static_cast<std::int64_t>(acet * prof.wcet_factor_lo) - 1);
    EXPECT_LE(p.wcet.count(), static_cast<std::int64_t>(acet * prof.wcet_factor_hi) + 1);
    EXPECT_LE(p.bcet, p.wcet);
  }
}

TEST(WatersSample, PeriodDistributionTracksShares) {
  Rng rng(3);
  std::map<std::int64_t, int> hits;
  const int trials = 20'000;
  for (int i = 0; i < trials; ++i) {
    ++hits[sample_waters_task(rng).period.count()];
  }
  double total_share = 0.0;
  for (const WatersPeriodProfile& p : waters_profiles()) {
    total_share += p.share_percent;
  }
  for (const WatersPeriodProfile& p : waters_profiles()) {
    const double expected = p.share_percent / total_share;
    const double got =
        static_cast<double>(hits[p.period.count()]) / trials;
    EXPECT_NEAR(got, expected, 0.02) << to_string(p.period);
  }
}

TEST(WatersAssign, GraphBecomesValidAndSchedulable) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    GnmDagOptions gopt;
    gopt.num_tasks = 20;
    TaskGraph g = gnm_random_dag(gopt, rng);
    WatersAssignOptions wopt;
    wopt.num_ecus = 4;
    assign_waters_parameters(g, wopt, rng);
    EXPECT_NO_THROW(g.validate());
    // WATERS utilizations are tiny; everything is schedulable.
    EXPECT_TRUE(analyze_response_times(g).all_schedulable) << "seed " << seed;
    for (TaskId id = 0; id < g.num_tasks(); ++id) {
      const Task& t = g.task(id);
      if (g.is_source(id)) {
        EXPECT_EQ(t.wcet, Duration::zero());
        EXPECT_EQ(t.ecu, kNoEcu);
      } else {
        EXPECT_GT(t.wcet, Duration::zero());
        EXPECT_GE(t.ecu, 0);
        EXPECT_LT(t.ecu, 4);
      }
      EXPECT_NO_THROW(waters_profile_for(t.period));
    }
  }
}

TEST(WatersAssign, RateMonotonicPrioritiesPerEcu) {
  Rng rng(9);
  TaskGraph g = merge_chains_at_sink(8, 8);
  WatersAssignOptions wopt;
  wopt.num_ecus = 2;
  assign_waters_parameters(g, wopt, rng);
  for (TaskId a = 0; a < g.num_tasks(); ++a) {
    for (TaskId b = 0; b < g.num_tasks(); ++b) {
      const Task& ta = g.task(a);
      const Task& tb = g.task(b);
      if (a == b || ta.ecu == kNoEcu || ta.ecu != tb.ecu) continue;
      if (ta.period < tb.period) {
        EXPECT_LT(ta.priority, tb.priority);
      }
    }
  }
}

TEST(WatersAssign, RejectsBadEcuCount) {
  Rng rng(1);
  TaskGraph g = merge_chains_at_sink(3, 3);
  WatersAssignOptions wopt;
  wopt.num_ecus = 0;
  EXPECT_THROW(assign_waters_parameters(g, wopt, rng), PreconditionError);
}

}  // namespace
}  // namespace ceta
