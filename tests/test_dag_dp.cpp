// DAG dynamic-programming disparity backend (disparity/dag_dp.hpp):
// exactness against the enumerating kernel, relaxation contract, backend
// routing (free function and engine), huge-graph fixtures beyond any
// enumeration cap, the budget-driven global-mode restart, source-pair
// reporting and the test-only fault hook.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "disparity/analyzer.hpp"
#include "disparity/dag_dp.hpp"
#include "disparity/pair_kernel.hpp"
#include "engine/analysis_engine.hpp"
#include "graph/paths.hpp"
#include "helpers.hpp"
#include "sched/npfp_rta.hpp"

namespace ceta {
namespace {

using testing::diamond_graph;
using testing::random_dag_graph;
using testing::random_two_chain_graph;
using testing::response_times_of;
using testing::simple_chain_graph;

std::vector<DisparityMethod> all_methods() {
  return {DisparityMethod::kIndependent, DisparityMethod::kForkJoin};
}
std::vector<JointTruncation> all_truncations() {
  return {JointTruncation::kAuto, JointTruncation::kAlways,
          JointTruncation::kNever};
}

DisparityOptions dp_options(DisparityMethod m, JointTruncation tr) {
  DisparityOptions opt;
  opt.method = m;
  opt.truncation = tr;
  opt.keep_pairs = KeepPairs::kWorstOnly;
  return opt;
}

std::string combo_str(DisparityMethod m, JointTruncation tr) {
  return std::string(m == DisparityMethod::kIndependent ? "P" : "S") +
         "-diff/trunc=" + std::to_string(static_cast<int>(tr));
}

// ---------------------------------------------------------------------------
// Hand-authored fixtures

/// Stack of `layers` diamonds in series:
///
///   S → (a₀ | b₀) → j₀ → (a₁ | b₁) → j₁ → … → j_{layers−1}
///
/// 1 + 3·layers tasks, 2^layers source chains of the last junction.  Every
/// task runs alone on its own ECU (WCRT = WCET trivially), so the fixture
/// scales to 10⁴ tasks without a schedulability search.
TaskGraph diamond_ladder(std::size_t layers) {
  TaskGraph g;
  Task s;
  s.name = "S";
  s.period = Duration::ms(10);
  TaskId prev = g.add_task(s);
  EcuId next_ecu = 0;
  auto mk = [&](const std::string& name) {
    Task t;
    t.name = name;
    t.wcet = t.bcet = Duration::ms(1);
    t.period = Duration::ms(10);
    t.ecu = next_ecu++;
    t.priority = 0;
    return t;
  };
  for (std::size_t i = 0; i < layers; ++i) {
    const TaskId a = g.add_task(mk("a" + std::to_string(i)));
    const TaskId b = g.add_task(mk("b" + std::to_string(i)));
    const TaskId j = g.add_task(mk("j" + std::to_string(i)));
    g.add_edge(prev, a);
    g.add_edge(prev, b);
    g.add_edge(a, j);
    g.add_edge(b, j);
    prev = j;
  }
  g.validate();
  return g;
}

/// Shared-source diamond with one LET branch and one buffered channel:
/// exercises the class-I → class-L currency switch and the FIFO shift
/// terms of the DP against the enumerating kernel.
TaskGraph let_diamond_graph() {
  TaskGraph g;
  Task s;
  s.name = "S";
  s.period = Duration::ms(10);
  const TaskId sid = g.add_task(s);
  auto mk = [](const char* name, EcuId ecu, int prio, CommSemantics comm) {
    Task t;
    t.name = name;
    t.wcet = Duration::ms(2);
    t.bcet = Duration::ms(1);
    t.period = Duration::ms(20);
    t.ecu = ecu;
    t.priority = prio;
    t.comm = comm;
    return t;
  };
  const TaskId a = g.add_task(mk("A", 0, 0, CommSemantics::kImplicit));
  const TaskId b = g.add_task(mk("B", 1, 0, CommSemantics::kLet));
  const TaskId c = g.add_task(mk("C", 2, 0, CommSemantics::kImplicit));
  g.add_edge(sid, a);
  g.add_edge(sid, b);
  g.add_edge(a, c, ChannelSpec{2});
  g.add_edge(b, c);
  g.validate();
  return g;
}

// ---------------------------------------------------------------------------
// Exactness against the enumerating kernel

TEST(DagDp, DiamondIndependentUntruncatedIsExact) {
  const TaskGraph g = diamond_graph();
  const TaskId sink = g.sinks().front();
  const ResponseTimeMap rtm = response_times_of(g);
  const DisparityOptions opt =
      dp_options(DisparityMethod::kIndependent, JointTruncation::kNever);
  const DisparityReport dp = analyze_time_disparity_dag_dp(g, sink, rtm, opt);
  const DisparityReport ker = analyze_time_disparity_kernel(g, sink, rtm, opt);

  EXPECT_TRUE(dp.exact);
  EXPECT_EQ(dp.worst_case, ker.worst_case);
  // λ/ν of helpers.hpp: W = 42ms, B = 1ms, separation 41ms floored to
  // T(S) = 10ms.
  EXPECT_EQ(dp.worst_case, Duration::ms(40));
  EXPECT_EQ(dp.backend, DisparityBackend::kDagDp);
  EXPECT_TRUE(dp.truncated);
  EXPECT_TRUE(dp.chains.empty());
  EXPECT_TRUE(dp.pairs.empty());
  EXPECT_EQ(dp.chain_count, 2u);
  EXPECT_FALSE(dp.chain_count_saturated);
  // One source, two chains: the single worst pair is same-source.
  ASSERT_EQ(dp.source_pairs.size(), 1u);
  EXPECT_EQ(dp.source_pairs[0].source_a, dp.source_pairs[0].source_b);
  EXPECT_EQ(dp.source_pairs[0].bound, dp.worst_case);
}

TEST(DagDp, LetAndBufferedChannelsMatchKernel) {
  const TaskGraph g = let_diamond_graph();
  const TaskId sink = g.sinks().front();
  const ResponseTimeMap rtm = response_times_of(g);
  const DisparityOptions opt =
      dp_options(DisparityMethod::kIndependent, JointTruncation::kNever);
  const DisparityReport dp = analyze_time_disparity_dag_dp(g, sink, rtm, opt);
  const DisparityReport ker = analyze_time_disparity_kernel(g, sink, rtm, opt);
  EXPECT_TRUE(dp.exact);
  EXPECT_EQ(dp.worst_case, ker.worst_case);
  EXPECT_EQ(dp.chain_count, 2u);
}

TEST(DagDp, JointFreeGraphIsExactAtEveryCombination) {
  // Two chains merging only at the sink: no task other than the sink lies
  // on two chains, so every method × truncation is served exactly.
  const TaskGraph g = random_two_chain_graph(4, 2, /*seed=*/7);
  const TaskId sink = g.sinks().front();
  const ResponseTimeMap rtm = response_times_of(g);
  for (const DisparityMethod m : all_methods()) {
    for (const JointTruncation tr : all_truncations()) {
      const DisparityOptions opt = dp_options(m, tr);
      const DisparityReport dp =
          analyze_time_disparity_dag_dp(g, sink, rtm, opt);
      const DisparityReport ker =
          analyze_time_disparity_kernel(g, sink, rtm, opt);
      EXPECT_TRUE(dp.exact) << combo_str(m, tr);
      EXPECT_EQ(dp.worst_case, ker.worst_case) << combo_str(m, tr);
    }
  }
}

TEST(DagDp, RandomGraphsMatchKernelOrRelaxationContract) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const TaskGraph g = random_dag_graph(9, 3, seed);
    const TaskId sink = g.sinks().front();
    const ResponseTimeMap rtm = response_times_of(g);
    const DisparityReport relax = analyze_time_disparity_kernel(
        g, sink, rtm,
        dp_options(DisparityMethod::kIndependent, JointTruncation::kNever));
    for (const DisparityMethod m : all_methods()) {
      for (const JointTruncation tr : all_truncations()) {
        const DisparityOptions opt = dp_options(m, tr);
        const DisparityReport dp =
            analyze_time_disparity_dag_dp(g, sink, rtm, opt);
        const std::string what =
            "seed " + std::to_string(seed) + " " + combo_str(m, tr);
        if (dp.exact) {
          const DisparityReport ker =
              analyze_time_disparity_kernel(g, sink, rtm, opt);
          EXPECT_EQ(dp.worst_case, ker.worst_case) << what;
        } else {
          // Relaxed queries answer the kIndependent + kNever semantics.
          EXPECT_EQ(dp.worst_case, relax.worst_case) << what;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Huge-graph fixtures: beyond any enumeration cap, no CapacityError

TEST(DagDp, TenThousandTaskLadderCompletesWithoutCapacityError) {
  // 1 + 3·3333 = 10000 tasks, 2^3333 source chains: enumeration is
  // impossible at any cap, and even the chain count saturates size_t.
  const TaskGraph g = diamond_ladder(3333);
  ASSERT_EQ(g.num_tasks(), 10000u);
  const TaskId sink = g.sinks().front();
  const ResponseTimeMap rtm = response_times_of(g);

  const ChainCount cc = count_source_chains_checked(g, sink);
  EXPECT_TRUE(cc.saturated);
  EXPECT_TRUE(cc.exceeds(kDefaultPathCap));

  const DisparityOptions opt =
      dp_options(DisparityMethod::kIndependent, JointTruncation::kNever);
  const DisparityReport dp = analyze_time_disparity_dag_dp(g, sink, rtm, opt);
  EXPECT_TRUE(dp.exact);
  EXPECT_TRUE(dp.truncated);
  EXPECT_TRUE(dp.chain_count_saturated);
  EXPECT_GT(dp.worst_case, Duration::zero());

  // kAuto degrades to the DP instead of throwing CapacityError.
  DisparityOptions auto_opt = opt;
  auto_opt.backend = DisparityBackend::kAuto;
  const DisparityReport routed =
      analyze_time_disparity_backend(g, sink, rtm, auto_opt);
  EXPECT_EQ(routed.backend, DisparityBackend::kDagDp);
  EXPECT_EQ(routed.worst_case, dp.worst_case);
}

TEST(DagDp, SaturatedChainCountOnModestLadder) {
  // 2^70 > SIZE_MAX on 64-bit: saturation must be reported explicitly,
  // not wrapped.
  const TaskGraph g = diamond_ladder(70);
  const TaskId sink = g.sinks().front();
  const ChainCount cc = count_source_chains_checked(g, sink);
  EXPECT_TRUE(cc.saturated);
  EXPECT_TRUE(cc.exceeds(std::numeric_limits<std::size_t>::max() - 1));
}

// ---------------------------------------------------------------------------
// Backend routing (free function)

TEST(DagDp, BackendEnumerateMatchesKernelExactly) {
  const TaskGraph g = diamond_graph();
  const TaskId sink = g.sinks().front();
  const ResponseTimeMap rtm = response_times_of(g);
  for (const DisparityMethod m : all_methods()) {
    for (const JointTruncation tr : all_truncations()) {
      DisparityOptions opt = dp_options(m, tr);
      opt.backend = DisparityBackend::kEnumerate;
      const DisparityReport r =
          analyze_time_disparity_backend(g, sink, rtm, opt);
      const DisparityReport ker =
          analyze_time_disparity_kernel(g, sink, rtm, opt);
      EXPECT_EQ(r.worst_case, ker.worst_case) << combo_str(m, tr);
      EXPECT_EQ(r.backend, DisparityBackend::kEnumerate) << combo_str(m, tr);
      EXPECT_FALSE(r.truncated) << combo_str(m, tr);
    }
  }
}

TEST(DagDp, BackendDagDpFallsBackToExactEnumerationWhenRelaxed) {
  // The diamond is not joint-free, so S-diff with truncation is not
  // exactly representable by the DP; the kDagDp front door must fall back
  // to the kernel on this enumerable instance and say so.
  const TaskGraph g = diamond_graph();
  const TaskId sink = g.sinks().front();
  const ResponseTimeMap rtm = response_times_of(g);
  DisparityOptions opt =
      dp_options(DisparityMethod::kForkJoin, JointTruncation::kAuto);
  opt.backend = DisparityBackend::kDagDp;
  const DisparityReport r = analyze_time_disparity_backend(g, sink, rtm, opt);
  const DisparityReport ker = analyze_time_disparity_kernel(g, sink, rtm, opt);
  EXPECT_EQ(r.backend, DisparityBackend::kEnumerate);
  EXPECT_TRUE(r.exact);
  EXPECT_FALSE(r.truncated);
  EXPECT_EQ(r.worst_case, ker.worst_case);
  // Hand-computed Theorem 2 value of the diamond (helpers.hpp): 40ms.
  EXPECT_EQ(r.worst_case, Duration::ms(40));
}

TEST(DagDp, BackendAutoPrefersKernelOnSmallInstances) {
  const TaskGraph g = diamond_graph();
  const TaskId sink = g.sinks().front();
  const ResponseTimeMap rtm = response_times_of(g);
  DisparityOptions opt =
      dp_options(DisparityMethod::kForkJoin, JointTruncation::kAuto);
  opt.backend = DisparityBackend::kAuto;
  const DisparityReport r = analyze_time_disparity_backend(g, sink, rtm, opt);
  EXPECT_EQ(r.backend, DisparityBackend::kEnumerate);
  EXPECT_FALSE(r.truncated);
}

// ---------------------------------------------------------------------------
// Budget-driven global-mode restart

TEST(DagDp, GlobalModeIsRelaxedButNeverBelowTheRelaxationTarget) {
  const TaskGraph g = random_dag_graph(9, 3, /*seed=*/3);
  const TaskId sink = g.sinks().front();
  const ResponseTimeMap rtm = response_times_of(g);
  const DisparityOptions opt =
      dp_options(DisparityMethod::kIndependent, JointTruncation::kNever);
  DagDpOptions dpo;
  dpo.state_budget = 1;  // force the restart
  const DisparityReport dp =
      analyze_time_disparity_dag_dp(g, sink, rtm, opt, dpo);
  const DisparityReport ker = analyze_time_disparity_kernel(g, sink, rtm, opt);
  // Per-source flooring is lost, so exactness must not be claimed, and the
  // bound can only move up.
  EXPECT_FALSE(dp.exact);
  EXPECT_GE(dp.worst_case, ker.worst_case);
  // Global mode reports the single worst witness pair, normalized.
  ASSERT_EQ(dp.source_pairs.size(), 1u);
  EXPECT_LE(dp.source_pairs[0].source_a, dp.source_pairs[0].source_b);
  EXPECT_EQ(dp.source_pairs[0].bound, dp.worst_case);
}

// ---------------------------------------------------------------------------
// Source-pair reporting

TEST(DagDp, SourcePairsFollowKeepPairsContract) {
  const TaskGraph g = random_dag_graph(10, 3, /*seed=*/11);
  const TaskId sink = g.sinks().front();
  const ResponseTimeMap rtm = response_times_of(g);

  DisparityOptions all_opt =
      dp_options(DisparityMethod::kIndependent, JointTruncation::kNever);
  all_opt.keep_pairs = KeepPairs::kAll;  // valid: backend stays kAuto
  const DisparityReport all =
      analyze_time_disparity_dag_dp(g, sink, rtm, all_opt);
  ASSERT_FALSE(all.source_pairs.empty());
  EXPECT_EQ(all.source_pairs.front().bound, all.worst_case);
  for (std::size_t i = 0; i + 1 < all.source_pairs.size(); ++i) {
    EXPECT_GE(all.source_pairs[i].bound, all.source_pairs[i + 1].bound)
        << "descending rank at " << i;
  }
  for (const SourcePairDisparity& p : all.source_pairs) {
    EXPECT_LE(p.source_a, p.source_b);
  }

  DisparityOptions top_opt = all_opt;
  top_opt.keep_pairs = KeepPairs::kTopK;
  top_opt.top_k = 2;
  const DisparityReport top =
      analyze_time_disparity_dag_dp(g, sink, rtm, top_opt);
  EXPECT_LE(top.source_pairs.size(), 2u);
  EXPECT_EQ(top.worst_case, all.worst_case);
  ASSERT_FALSE(top.source_pairs.empty());
  EXPECT_EQ(top.source_pairs.front().bound, top.worst_case);

  DisparityOptions worst_opt = all_opt;
  worst_opt.keep_pairs = KeepPairs::kWorstOnly;
  const DisparityReport worst =
      analyze_time_disparity_dag_dp(g, sink, rtm, worst_opt);
  ASSERT_EQ(worst.source_pairs.size(), 1u);
  EXPECT_EQ(worst.source_pairs[0].bound, worst.worst_case);

  // Beyond the scan cap only the single worst witness survives, with the
  // same bound.
  DagDpOptions dpo;
  dpo.source_pair_scan_cap = 0;
  const DisparityReport capped =
      analyze_time_disparity_dag_dp(g, sink, rtm, all_opt, dpo);
  ASSERT_EQ(capped.source_pairs.size(), 1u);
  EXPECT_EQ(capped.source_pairs[0].bound, capped.worst_case);
  EXPECT_EQ(capped.worst_case, all.worst_case);
}

TEST(DagDp, SingleChainSinkReportsZeroExactly) {
  const TaskGraph g = simple_chain_graph();
  const TaskId sink = g.sinks().front();
  const ResponseTimeMap rtm = response_times_of(g);
  const DisparityReport dp = analyze_time_disparity_dag_dp(g, sink, rtm);
  EXPECT_TRUE(dp.exact);
  EXPECT_EQ(dp.worst_case, Duration::zero());
  EXPECT_EQ(dp.chain_count, 1u);
  EXPECT_TRUE(dp.source_pairs.empty());
}

// ---------------------------------------------------------------------------
// Option validation

TEST(DagDp, ValidateRejectsUnservableOptionTuples) {
  const TaskGraph g = diamond_graph();
  const TaskId sink = g.sinks().front();
  const ResponseTimeMap rtm = response_times_of(g);

  DisparityOptions zero_k;
  zero_k.keep_pairs = KeepPairs::kTopK;
  zero_k.top_k = 0;
  EXPECT_THROW(analyze_time_disparity_dag_dp(g, sink, rtm, zero_k),
               InvalidOptionsError);
  EXPECT_THROW(analyze_time_disparity_backend(g, sink, rtm, zero_k),
               InvalidOptionsError);
  EXPECT_THROW(analyze_time_disparity_kernel(g, sink, rtm, zero_k),
               InvalidOptionsError);
  EXPECT_THROW(analyze_time_disparity(g, sink, rtm, zero_k),
               InvalidOptionsError);

  DisparityOptions dp_all;
  dp_all.backend = DisparityBackend::kDagDp;
  dp_all.keep_pairs = KeepPairs::kAll;
  EXPECT_THROW(analyze_time_disparity_backend(g, sink, rtm, dp_all),
               InvalidOptionsError);

  DisparityOptions no_cap;
  no_cap.path_cap = 0;
  EXPECT_THROW(analyze_time_disparity_backend(g, sink, rtm, no_cap),
               InvalidOptionsError);
}

// ---------------------------------------------------------------------------
// Fault hook

TEST(DagDp, FaultDropSourcePeriodDivergesFromKernel) {
  const TaskGraph g = diamond_graph();
  const TaskId sink = g.sinks().front();
  const ResponseTimeMap rtm = response_times_of(g);
  const DisparityOptions opt =
      dp_options(DisparityMethod::kIndependent, JointTruncation::kNever);
  DagDpOptions dpo;
  dpo.fault_drop_source_period = true;
  const DisparityReport bad =
      analyze_time_disparity_dag_dp(g, sink, rtm, opt, dpo);
  const DisparityReport ker = analyze_time_disparity_kernel(g, sink, rtm, opt);
  // One source period (10ms) dropped from the 40ms bound.
  EXPECT_EQ(bad.worst_case, Duration::ms(30));
  EXPECT_NE(bad.worst_case, ker.worst_case);
}

// ---------------------------------------------------------------------------
// Engine routing and cache keying

TEST(DagDp, EngineRoutesBackendsAndKeysCacheEntriesSeparately) {
  const TaskGraph g = diamond_graph();
  AnalysisEngine e(g);
  const TaskId sink = g.sinks().front();

  DisparityOptions enum_opt =
      dp_options(DisparityMethod::kIndependent, JointTruncation::kNever);
  enum_opt.backend = DisparityBackend::kEnumerate;
  const DisparityReport ker = e.disparity(sink, enum_opt);
  EXPECT_EQ(ker.backend, DisparityBackend::kEnumerate);
  EXPECT_FALSE(ker.truncated);

  DisparityOptions dp_opt = enum_opt;
  dp_opt.backend = DisparityBackend::kDagDp;
  const DisparityReport dp = e.disparity(sink, dp_opt);
  EXPECT_EQ(dp.backend, DisparityBackend::kDagDp);
  EXPECT_TRUE(dp.truncated);
  EXPECT_TRUE(dp.exact);
  EXPECT_EQ(dp.worst_case, ker.worst_case);

  // Distinct backend ⇒ distinct cache entry: the enumerated report (with
  // its chain set) must survive the DP query.
  const DisparityReport again = e.disparity(sink, enum_opt);
  EXPECT_EQ(again.backend, DisparityBackend::kEnumerate);
  EXPECT_FALSE(again.chains.empty());
}

TEST(DagDp, EngineAutoDegradesToDpInsteadOfCapacityError) {
  const TaskGraph g = diamond_graph();
  AnalysisEngine e(g);
  const TaskId sink = g.sinks().front();
  DisparityOptions opt =
      dp_options(DisparityMethod::kIndependent, JointTruncation::kNever);
  opt.path_cap = 1;  // the diamond's 2 chains exceed it
  const DisparityReport r = e.disparity(sink, opt);
  EXPECT_EQ(r.backend, DisparityBackend::kDagDp);
  EXPECT_TRUE(r.truncated);
  const ResponseTimeMap rtm = response_times_of(g);
  const DisparityReport free_dp =
      analyze_time_disparity_dag_dp(g, sink, rtm, opt);
  EXPECT_EQ(r.worst_case, free_dp.worst_case);
}

TEST(DagDp, EngineMatchesFreeBackendFunctionOnRandomGraphs) {
  for (std::uint64_t seed = 21; seed <= 24; ++seed) {
    const TaskGraph g = random_dag_graph(8, 3, seed);
    AnalysisEngine e(g);
    const TaskId sink = g.sinks().front();
    const ResponseTimeMap rtm = response_times_of(g);
    for (const DisparityBackend b :
         {DisparityBackend::kAuto, DisparityBackend::kEnumerate,
          DisparityBackend::kDagDp}) {
      DisparityOptions opt =
          dp_options(DisparityMethod::kForkJoin, JointTruncation::kAuto);
      opt.backend = b;
      const DisparityReport eng = e.disparity(sink, opt);
      const DisparityReport direct =
          analyze_time_disparity_backend(g, sink, rtm, opt);
      const std::string what = "seed " + std::to_string(seed) + " backend " +
                               std::to_string(static_cast<int>(b));
      EXPECT_EQ(eng.worst_case, direct.worst_case) << what;
      EXPECT_EQ(eng.backend, direct.backend) << what;
      EXPECT_EQ(eng.exact, direct.exact) << what;
      EXPECT_EQ(eng.truncated, direct.truncated) << what;
      EXPECT_EQ(eng.chain_count, direct.chain_count) << what;
    }
  }
}

}  // namespace
}  // namespace ceta
