#include "graph/algorithms.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "disparity/analyzer.hpp"
#include "graph/paths.hpp"
#include "helpers.hpp"

namespace ceta {
namespace {

TEST(Ancestors, DiamondClosure) {
  const TaskGraph g = testing::diamond_graph();
  // ids: S=0, A=1, C=2, D=3, E=4
  EXPECT_EQ(ancestors(g, 4), (std::vector<TaskId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(ancestors(g, 2), (std::vector<TaskId>{0, 1, 2}));
  EXPECT_EQ(ancestors(g, 0), (std::vector<TaskId>{0}));
}

TEST(Descendants, DiamondClosure) {
  const TaskGraph g = testing::diamond_graph();
  EXPECT_EQ(descendants(g, 0), (std::vector<TaskId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(descendants(g, 2), (std::vector<TaskId>{2, 4}));
  EXPECT_EQ(descendants(g, 4), (std::vector<TaskId>{4}));
}

TEST(Closure, BadIdRejected) {
  const TaskGraph g = testing::diamond_graph();
  EXPECT_THROW(ancestors(g, 99), PreconditionError);
}

TEST(AncestorSubgraph, DiamondAtBranch) {
  const TaskGraph g = testing::diamond_graph();
  const SubgraphExtract sub = ancestor_subgraph(g, 2);  // C
  EXPECT_EQ(sub.graph.num_tasks(), 3u);  // S, A, C
  EXPECT_EQ(sub.graph.num_edges(), 2u);  // S->A, A->C
  EXPECT_EQ(sub.to_original, (std::vector<TaskId>{0, 1, 2}));
  EXPECT_EQ(sub.from_original[3], kNoTask);  // D excluded
  EXPECT_EQ(sub.from_original[4], kNoTask);  // E excluded
  EXPECT_EQ(sub.graph.task(2).name, "C");
  EXPECT_NO_THROW(sub.graph.validate());
}

TEST(AncestorSubgraph, PreservesChannelSpecs) {
  TaskGraph g = testing::diamond_graph();
  g.set_buffer_size(0, 1, 5);
  const SubgraphExtract sub = ancestor_subgraph(g, 2);
  EXPECT_EQ(sub.graph.channel(0, 1).buffer_size, 5);
}

TEST(AncestorSubgraph, DisparityEquivalence) {
  // Scoping property: the disparity of a task computed on its ancestor
  // subgraph (with the *original* response times) equals the full-graph
  // result.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const TaskGraph g = testing::random_dag_graph(14, 3, seed + 2500);
    const ResponseTimeMap rtm = testing::response_times_of(g);
    const TaskId sink = g.sinks().front();

    const SubgraphExtract sub = ancestor_subgraph(g, sink);
    const std::vector<Duration> sub_rtm = map_response_times(sub, rtm);
    const TaskId sub_sink = sub.from_original[sink];
    ASSERT_NE(sub_sink, kNoTask);

    for (const DisparityMethod method :
         {DisparityMethod::kIndependent, DisparityMethod::kForkJoin}) {
      DisparityOptions opt;
      opt.method = method;
      const Duration full =
          analyze_time_disparity(g, sink, rtm, opt).worst_case;
      const Duration scoped =
          analyze_time_disparity(sub.graph, sub_sink, sub_rtm, opt)
              .worst_case;
      EXPECT_EQ(full, scoped) << "seed " << seed;
    }
  }
}

TEST(AncestorSubgraph, ChainCountPreserved) {
  const TaskGraph g = testing::random_dag_graph(14, 3, 4242);
  const TaskId sink = g.sinks().front();
  const SubgraphExtract sub = ancestor_subgraph(g, sink);
  EXPECT_EQ(count_source_chains(g, sink),
            count_source_chains(sub.graph, sub.from_original[sink]));
}

TEST(MapResponseTimes, SizeMismatchRejected) {
  const TaskGraph g = testing::diamond_graph();
  const SubgraphExtract sub = ancestor_subgraph(g, 2);
  std::vector<Duration> wrong(3);
  EXPECT_THROW(map_response_times(sub, wrong), PreconditionError);
}

}  // namespace
}  // namespace ceta
