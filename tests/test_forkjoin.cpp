#include "disparity/forkjoin.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "disparity/pairwise.hpp"
#include "graph/paths.hpp"
#include "helpers.hpp"

namespace ceta {
namespace {

/// Long shared prefix through a slow middle task M, then a fork to C/D and
/// a join at E — the configuration where Theorem 2 beats Theorem 1.
///
///   S(T=10) -> A(1ms,T=10,ecu0,p0) -> M(1ms,T=100,ecu0,p1)
///   M -> C(1ms,T=20,ecu1,p0) -> E(1ms,T=20,ecu3,p0)
///   M -> D(1ms,T=20,ecu2,p0) -> E
///
/// R(A)=2, R(M)=2, R(C)=R(D)=R(E)=1.
/// λ={S,A,M,C,E}: W=143, B=3.   ν={S,A,M,D,E}: W=143, B=3.
/// Theorem 1: floor(140/10)·10 = 140ms.
/// Theorem 2: joints {A,M,E}; x2=−1, y2=1; x1=−11, y1=11;
///            separation 121ms → bound 120ms.
TaskGraph shared_prefix_graph() {
  TaskGraph g;
  Task s;
  s.name = "S";
  s.period = Duration::ms(10);
  const TaskId sid = g.add_task(s);
  auto mk = [](const char* name, Duration period, EcuId ecu, int prio) {
    Task t;
    t.name = name;
    t.wcet = t.bcet = Duration::ms(1);
    t.period = period;
    t.ecu = ecu;
    t.priority = prio;
    return t;
  };
  const TaskId a = g.add_task(mk("A", Duration::ms(10), 0, 0));
  const TaskId m = g.add_task(mk("M", Duration::ms(100), 0, 1));
  const TaskId c = g.add_task(mk("C", Duration::ms(20), 1, 0));
  const TaskId d = g.add_task(mk("D", Duration::ms(20), 2, 0));
  const TaskId e = g.add_task(mk("E", Duration::ms(20), 3, 0));
  g.add_edge(sid, a);
  g.add_edge(a, m);
  g.add_edge(m, c);
  g.add_edge(m, d);
  g.add_edge(c, e);
  g.add_edge(d, e);
  g.validate();
  return g;
}

TEST(SdiffPair, DiamondHandComputed) {
  const TaskGraph g = testing::diamond_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const Path lambda = {0, 1, 2, 4};
  const Path nu = {0, 1, 3, 4};
  const ForkJoinBound fj = sdiff_pair_bound(g, lambda, nu, rtm);
  EXPECT_TRUE(fj.shared_head);
  EXPECT_EQ(fj.joints, (std::vector<TaskId>{1, 4}));
  ASSERT_EQ(fj.x.size(), 2u);
  EXPECT_EQ(fj.x[0], -3);
  EXPECT_EQ(fj.y[0], 3);
  EXPECT_EQ(fj.x[1], 0);
  EXPECT_EQ(fj.y[1], 0);
  EXPECT_EQ(fj.alpha1.wcbt, Duration::ms(10));
  EXPECT_EQ(fj.alpha1.bcbt, Duration::ms(-1));
  EXPECT_EQ(fj.separation, Duration::ms(41));
  EXPECT_EQ(fj.bound, Duration::ms(40));
}

TEST(SdiffPair, DiamondSamplingWindows) {
  const TaskGraph g = testing::diamond_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const ForkJoinBound fj =
      sdiff_pair_bound(g, {0, 1, 2, 4}, {0, 1, 3, 4}, rtm);
  // Anchored at λ's o_1 (= A) job release.
  EXPECT_EQ(fj.window_lambda, Interval(Duration::ms(-10), Duration::ms(1)));
  EXPECT_EQ(fj.window_nu, Interval(Duration::ms(-40), Duration::ms(31)));
  // Their max separation is the (pre-floor) separation.
  EXPECT_EQ(fj.window_lambda.max_separation(fj.window_nu), fj.separation);
}

TEST(SdiffPair, SharedPrefixTighterThanTheorem1) {
  const TaskGraph g = shared_prefix_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const Path lambda = {0, 1, 2, 3, 5};  // S A M C E
  const Path nu = {0, 1, 2, 4, 5};      // S A M D E
  ASSERT_TRUE(is_path(g, lambda));
  ASSERT_TRUE(is_path(g, nu));

  const Duration pdiff = pdiff_pair_bound(g, lambda, nu, rtm);
  EXPECT_EQ(pdiff, Duration::ms(140));

  const ForkJoinBound fj = sdiff_pair_bound(g, lambda, nu, rtm);
  EXPECT_EQ(fj.joints, (std::vector<TaskId>{1, 2, 5}));
  ASSERT_EQ(fj.x.size(), 3u);
  EXPECT_EQ(fj.x[1], -1);
  EXPECT_EQ(fj.y[1], 1);
  EXPECT_EQ(fj.x[0], -11);
  EXPECT_EQ(fj.y[0], 11);
  EXPECT_EQ(fj.separation, Duration::ms(121));
  EXPECT_EQ(fj.bound, Duration::ms(120));
  EXPECT_LT(fj.bound, pdiff);
}

TEST(SdiffPair, SingleJointEqualsTheorem1) {
  // With only the analyzed task in common (c = 1), x1 = y1 = 0 and the
  // Theorem 2 bound degenerates to Theorem 1.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const TaskGraph g = testing::random_two_chain_graph(5, 3, seed);
    const ResponseTimeMap rtm = testing::response_times_of(g);
    const auto chains = enumerate_source_chains(g, g.sinks().front());
    ASSERT_EQ(chains.size(), 2u);
    const ForkJoinBound fj = sdiff_pair_bound(g, chains[0], chains[1], rtm);
    EXPECT_EQ(fj.joints.size(), 1u);
    EXPECT_EQ(fj.bound, pdiff_pair_bound(g, chains[0], chains[1], rtm))
        << "seed " << seed;
  }
}

TEST(SdiffPair, AtMostResponseTimeSlackAboveTheorem1) {
  // Theorem 2 is not guaranteed to dominate Theorem 1 pointwise: its
  // sub-chain decomposition re-counts WCRT slack at each joint.  Verify
  // raw Theorem 2 never exceeds Theorem 1 by more than the summed WCRTs
  // of the joint tasks (the analyzer clamps to the minimum anyway; see
  // test_analyzer.cpp's SdiffNeverAbovePdiff).
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const TaskGraph g = testing::random_dag_graph(12, 3, seed);
    const ResponseTimeMap rtm = testing::response_times_of(g);
    const TaskId sink = g.sinks().front();
    const auto chains = enumerate_source_chains(g, sink);
    for (std::size_t i = 0; i < chains.size(); ++i) {
      for (std::size_t j = i + 1; j < chains.size(); ++j) {
        const ForkJoinBound fj = sdiff_pair_bound(g, chains[i], chains[j], rtm);
        const Duration p = pdiff_pair_bound(g, chains[i], chains[j], rtm);
        Duration slack = Duration::zero();
        for (TaskId joint : fj.joints) slack += rtm[joint] * 2;
        EXPECT_LE(fj.bound, p + slack)
            << "seed " << seed << " pair " << i << "," << j;
      }
    }
  }
}

TEST(SdiffPair, SymmetricInArgumentOrder) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const TaskGraph g = testing::random_dag_graph(12, 3, seed);
    const ResponseTimeMap rtm = testing::response_times_of(g);
    const TaskId sink = g.sinks().front();
    const auto chains = enumerate_source_chains(g, sink);
    for (std::size_t i = 0; i < chains.size(); ++i) {
      for (std::size_t j = i + 1; j < chains.size(); ++j) {
        EXPECT_EQ(sdiff_pair_bound(g, chains[i], chains[j], rtm).bound,
                  sdiff_pair_bound(g, chains[j], chains[i], rtm).bound)
            << "seed " << seed;
      }
    }
  }
}

TEST(SdiffPair, OffsetRangeNeverEmpty) {
  // x_j <= y_j is an invariant given sound backward-time bounds.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const TaskGraph g = testing::random_dag_graph(14, 3, seed + 100);
    const ResponseTimeMap rtm = testing::response_times_of(g);
    const TaskId sink = g.sinks().front();
    const auto chains = enumerate_source_chains(g, sink);
    for (std::size_t i = 0; i < chains.size(); ++i) {
      for (std::size_t j = i + 1; j < chains.size(); ++j) {
        const ForkJoinBound fj =
            sdiff_pair_bound(g, chains[i], chains[j], rtm);
        for (std::size_t k = 0; k < fj.x.size(); ++k) {
          EXPECT_LE(fj.x[k], fj.y[k]);
        }
      }
    }
  }
}

TEST(SdiffPair, Preconditions) {
  const TaskGraph g = testing::diamond_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const Path lambda = {0, 1, 2, 4};
  EXPECT_THROW(sdiff_pair_bound(g, lambda, lambda, rtm), PreconditionError);
  EXPECT_THROW(sdiff_pair_bound(g, lambda, {0, 1}, rtm), PreconditionError);
}

}  // namespace
}  // namespace ceta
