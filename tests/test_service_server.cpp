// End-to-end cetad socket tests: a real Server (poll loop + worker pool)
// and real Clients over loopback TCP and Unix-domain sockets.  Malformed
// and oversized frames must come back as structured error replies on a
// connection that stays up; subscription pushes must cross connections;
// concurrent clients must not trip each other (run this binary under
// -DCETA_SANITIZE=thread as well).

#include "service/server.hpp"

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "service/client.hpp"

namespace ceta::service {
namespace {

// Same two-sink fixture as test_service.cpp: mutating A dirties F1 (id 7)
// only, mutating D dirties F2 (id 8) only.
constexpr char kTwoSinkGraph[] =
    "task S0 0 0 10000000 0 0 -1\n"
    "task S1 0 0 12000000 0 0 -1\n"
    "task S2 0 0 15000000 0 0 -1\n"
    "task A 1000000 500000 10000000 0 0 0\n"
    "task B 1000000 500000 12000000 0 1 0\n"
    "task C 1000000 500000 12000000 0 0 1\n"
    "task D 1000000 500000 15000000 0 1 1\n"
    "task F1 2000000 1000000 30000000 0 0 2\n"
    "task F2 2000000 1000000 30000000 0 1 2\n"
    "edge S0 A\nedge S1 B\nedge S1 C\nedge S2 D\n"
    "edge A F1\nedge B F1\nedge C F2\nedge D F2\n";

Server make_tcp_server(ServiceConfig service = {}) {
  ServerConfig cfg;
  cfg.tcp_port = 0;  // ephemeral
  cfg.num_workers = 2;
  cfg.service = service;
  return Server(cfg);
}

void create_session(Client& c, const std::string& name) {
  const JsonValue r = c.call(
      RequestBuilder("create_session").str("name", name).str("graph",
                                                             kTwoSinkGraph));
  ASSERT_EQ(r.at("name").string, name);
}

// --- raw-socket helpers (for deliberately broken frames) ---------------------

int raw_connect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

void write_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    ASSERT_GT(n, 0);
    off += static_cast<std::size_t>(n);
  }
}

/// Read exactly one frame payload off a raw fd (test-side decoder).
std::string read_frame_raw(int fd) {
  FrameDecoder dec;
  char buf[4096];
  while (true) {
    if (const auto f = dec.next()) return f->payload;
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) {
      ADD_FAILURE() << "connection closed while awaiting a frame";
      return {};
    }
    dec.feed(buf, static_cast<std::size_t>(n));
  }
}

// --- transports --------------------------------------------------------------

TEST(ServerTransport, TcpRoundtrip) {
  Server server = make_tcp_server();
  server.start();
  ASSERT_GT(server.port(), 0);

  Client c = Client::connect_tcp(server.port());
  EXPECT_TRUE(c.call(RequestBuilder("ping")).at("pong").boolean);
  create_session(c, "g");
  EXPECT_EQ(server.core().session_count(), 1u);

  const JsonValue r =
      c.call(RequestBuilder("disparity").str("session", "g").str("sink", "F1"));
  EXPECT_GT(r.at("worst_case_ns").number, 0.0);
  EXPECT_EQ(r.at("sink").number, 7.0);

  // Error replies surface as ServiceError with the server's code.
  try {
    c.call(RequestBuilder("disparity").str("session", "nope").str("sink", "F1"));
    FAIL() << "expected ServiceError";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.code(), "no_such_session");
  }
  server.stop();
}

TEST(ServerTransport, UnixSocketRoundtrip) {
  const std::string path =
      "/tmp/cetad_test_" + std::to_string(::getpid()) + ".sock";
  ServerConfig cfg;
  cfg.unix_path = path;
  cfg.num_workers = 2;
  Server server(cfg);
  server.start();

  Client c = Client::connect_unix(path);
  EXPECT_TRUE(c.call(RequestBuilder("ping")).at("pong").boolean);
  create_session(c, "g");
  const JsonValue r =
      c.call(RequestBuilder("disparity").str("session", "g").str("sink", "F2"));
  EXPECT_GT(r.at("worst_case_ns").number, 0.0);
  server.stop();
  // The socket file is unlinked on stop.
  EXPECT_NE(::access(path.c_str(), F_OK), 0);
}

// --- hostile input -----------------------------------------------------------

TEST(ServerHardening, MalformedFrameGetsErrorReplyAndConnectionSurvives) {
  Server server = make_tcp_server();
  server.start();

  const int fd = raw_connect(server.port());
  write_all(fd, encode_frame("this is not json"));
  const JsonValue err = parse_json(read_frame_raw(fd));
  EXPECT_FALSE(err.at("ok").boolean);
  EXPECT_EQ(err.at("error").at("code").string, "bad_request");
  EXPECT_TRUE(err.at("id").is_null());

  // Same connection keeps working afterwards.
  write_all(fd, encode_frame("{\"id\":1,\"op\":\"ping\"}"));
  const JsonValue pong = parse_json(read_frame_raw(fd));
  EXPECT_TRUE(pong.at("ok").boolean);
  EXPECT_TRUE(pong.at("result").at("pong").boolean);

  ::close(fd);
  server.stop();
}

TEST(ServerHardening, OversizedFrameGetsStructuredReplyAndStreamResyncs) {
  ServiceConfig service;
  service.max_frame_bytes = 256;
  Server server = make_tcp_server(service);
  server.start();

  const int fd = raw_connect(server.port());
  // A frame declaring 1000 bytes: rejected on the header alone, then the
  // payload bytes are swallowed so the stream realigns.
  write_all(fd, encode_frame(std::string(1000, 'x')));
  const JsonValue err = parse_json(read_frame_raw(fd));
  EXPECT_FALSE(err.at("ok").boolean);
  EXPECT_EQ(err.at("error").at("code").string, "oversized_frame");

  write_all(fd, encode_frame("{\"id\":2,\"op\":\"ping\"}"));
  EXPECT_TRUE(parse_json(read_frame_raw(fd)).at("ok").boolean);

  ::close(fd);
  server.stop();
}

TEST(ServerHardening, TruncatedFrameThenDisconnectLeavesServerAlive) {
  Server server = make_tcp_server();
  server.start();

  // Write half a header and vanish.
  {
    const int fd = raw_connect(server.port());
    write_all(fd, std::string("\x00\x00", 2));
    ::close(fd);
  }
  // Write a header promising bytes that never arrive, then vanish.
  {
    const int fd = raw_connect(server.port());
    const std::string frame = encode_frame("{\"op\":\"ping\"}");
    write_all(fd, frame.substr(0, frame.size() - 3));
    ::close(fd);
  }

  Client c = Client::connect_tcp(server.port());
  EXPECT_TRUE(c.call(RequestBuilder("ping")).at("pong").boolean);
  server.stop();
}

// --- pushes across connections ----------------------------------------------

TEST(ServerPushes, SubscriberOnOneConnectionSeesMutationsFromAnother) {
  Server server = make_tcp_server();
  server.start();

  Client subscriber = Client::connect_tcp(server.port());
  Client mutator = Client::connect_tcp(server.port());
  create_session(mutator, "g");

  const JsonValue sub = subscriber.call(
      RequestBuilder("subscribe").str("session", "g").str("sink", "F1"));
  const double baseline = sub.at("worst_case_ns").number;

  const JsonValue mut = mutator.call(
      RequestBuilder("mutate")
          .str("session", "g")
          .raw("edits",
               "[{\"kind\":\"set_wcet_range\",\"task\":\"A\","
               "\"bcet_ns\":500000,\"wcet_ns\":4000000}]"));
  EXPECT_GE(mut.at("epoch").number, 1.0);

  const auto push = subscriber.wait_push(5000);
  ASSERT_TRUE(push.has_value()) << "no push within 5s";
  EXPECT_EQ(push->at("push").string, "disparity");
  EXPECT_EQ(push->at("session").string, "g");
  EXPECT_EQ(push->at("sink").number, 7.0);
  EXPECT_EQ(push->at("epoch").number, mut.at("epoch").number);

  // The pushed value is the post-commit worst case — it matches a fresh
  // query and (the WCET grew) moved off the baseline.
  const JsonValue requery = subscriber.call(
      RequestBuilder("disparity").str("session", "g").str("sink", "F1"));
  EXPECT_EQ(push->at("worst_case_ns").number,
            requery.at("worst_case_ns").number);
  EXPECT_NE(push->at("worst_case_ns").number, baseline);

  // The mutator was not subscribed: no push pending on its connection.
  EXPECT_FALSE(mutator.poll_push().has_value());

  // Mutating D dirties only F2 — the F1 subscriber hears nothing.
  mutator.call(RequestBuilder("mutate")
                   .str("session", "g")
                   .raw("edits",
                        "[{\"kind\":\"set_wcet_range\",\"task\":\"D\","
                        "\"bcet_ns\":500000,\"wcet_ns\":4000000}]"));
  EXPECT_FALSE(subscriber.wait_push(300).has_value());

  server.stop();
}

TEST(ServerPushes, DisconnectDropsSubscriptions) {
  Server server = make_tcp_server();
  server.start();

  Client mutator = Client::connect_tcp(server.port());
  create_session(mutator, "g");
  {
    Client ephemeral = Client::connect_tcp(server.port());
    ephemeral.call(
        RequestBuilder("subscribe").str("session", "g").str("sink", "F1"));
  }  // closes the connection, which must drop the subscription

  // Wait for the loop to reap the closed connection.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    const JsonValue listed = mutator.call(RequestBuilder("list_sessions"));
    if (listed.at("sessions").items()[0].at("subscriptions").number == 0.0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  const JsonValue listed = mutator.call(RequestBuilder("list_sessions"));
  EXPECT_EQ(listed.at("sessions").items()[0].at("subscriptions").number, 0.0);

  // Mutation after the disconnect must not try to deliver to the dead
  // client (and must still succeed).
  const JsonValue mut = mutator.call(
      RequestBuilder("mutate")
          .str("session", "g")
          .raw("edits",
               "[{\"kind\":\"set_wcet_range\",\"task\":\"A\","
               "\"bcet_ns\":500000,\"wcet_ns\":3000000}]"));
  EXPECT_GE(mut.at("epoch").number, 1.0);
  server.stop();
}

// --- concurrency -------------------------------------------------------------

TEST(ServerConcurrency, ParallelClientsMixReadsAndMutations) {
  Server server = make_tcp_server();
  server.start();

  {
    Client setup = Client::connect_tcp(server.port());
    for (int s = 0; s < 4; ++s) {
      create_session(setup, "s" + std::to_string(s));
    }
  }

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 60;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      try {
        Client c = Client::connect_tcp(server.port());
        for (int i = 0; i < kOpsPerThread; ++i) {
          const std::string session = "s" + std::to_string((t + i) % 4);
          if (i % 3 == 2) {
            c.call(RequestBuilder("mutate")
                       .str("session", session)
                       .raw("edits",
                            "[{\"kind\":\"set_wcet_range\",\"task\":\"A\","
                            "\"bcet_ns\":500000,\"wcet_ns\":" +
                                std::to_string(1'000'000 + (i % 7) * 100'000) +
                                "}]"));
          } else {
            const JsonValue r = c.call(RequestBuilder("disparity")
                                           .str("session", session)
                                           .str("sink", "F1"));
            if (!(r.at("worst_case_ns").number > 0)) failures.fetch_add(1);
          }
        }
      } catch (const std::exception& e) {
        ADD_FAILURE() << "client thread died: " << e.what();
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // The server survived all of it.
  Client c = Client::connect_tcp(server.port());
  EXPECT_TRUE(c.call(RequestBuilder("ping")).at("pong").boolean);
  EXPECT_EQ(server.core().session_count(), 4u);
  server.stop();
}

}  // namespace
}  // namespace ceta::service
