#include "sim/channel.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace ceta {
namespace {

Token make_token(std::int64_t job, Duration release) {
  Token t;
  t.producer_task = 0;
  t.producer_job = job;
  t.producer_release = release;
  t.write_time = release;
  t.provenance = Provenance::of_source(0, release);
  return t;
}

TEST(SimChannel, EmptyReadsNothing) {
  const SimChannel ch(1);
  EXPECT_EQ(ch.size(), 0u);
  EXPECT_FALSE(ch.read().has_value());
  EXPECT_FALSE(ch.newest().has_value());
}

TEST(SimChannel, RegisterOverwrites) {
  SimChannel ch(1);
  ch.write(make_token(0, Duration::ms(0)));
  ch.write(make_token(1, Duration::ms(10)));
  ch.write(make_token(2, Duration::ms(20)));
  EXPECT_EQ(ch.size(), 1u);
  ASSERT_TRUE(ch.read().has_value());
  // Register semantics: the reader sees the newest value.
  EXPECT_EQ(ch.read()->producer_job, 2);
}

TEST(SimChannel, ReadIsNonDestructive) {
  SimChannel ch(1);
  ch.write(make_token(0, Duration::ms(0)));
  (void)ch.read();
  (void)ch.read();
  EXPECT_EQ(ch.size(), 1u);
  EXPECT_TRUE(ch.read().has_value());
}

TEST(SimChannel, FifoReadsOldestOfLastN) {
  SimChannel ch(3);
  for (std::int64_t k = 0; k < 5; ++k) {
    ch.write(make_token(k, Duration::ms(10 * k)));
  }
  EXPECT_EQ(ch.size(), 3u);
  EXPECT_TRUE(ch.full());
  // Last 3 tokens are jobs 2, 3, 4; the read returns the oldest (2) and
  // the newest is 4 — the (n−1)·T sliding-window shift of Lemma 6.
  EXPECT_EQ(ch.read()->producer_job, 2);
  EXPECT_EQ(ch.newest()->producer_job, 4);
}

TEST(SimChannel, FifoPartialFill) {
  SimChannel ch(4);
  ch.write(make_token(0, Duration::ms(0)));
  ch.write(make_token(1, Duration::ms(10)));
  EXPECT_FALSE(ch.full());
  EXPECT_EQ(ch.read()->producer_job, 0);
}

TEST(SimChannel, CapacityOneNeverFullUntilWrite) {
  SimChannel ch(1);
  EXPECT_FALSE(ch.full());
  ch.write(make_token(0, Duration::ms(0)));
  EXPECT_TRUE(ch.full());
}

TEST(SimChannel, RejectsNonPositiveCapacity) {
  EXPECT_THROW(SimChannel(0), PreconditionError);
  EXPECT_THROW(SimChannel(-2), PreconditionError);
}

TEST(SimChannel, TokenCarriesProvenance) {
  SimChannel ch(1);
  Token t = make_token(0, Duration::ms(5));
  t.provenance.merge(Provenance::of_source(7, Duration::ms(1)));
  ch.write(t);
  EXPECT_EQ(ch.read()->provenance.num_sources(), 2u);
  EXPECT_EQ(ch.read()->provenance.disparity(), Duration::ms(4));
}

}  // namespace
}  // namespace ceta
