#include "graph/task_graph.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "helpers.hpp"

namespace ceta {
namespace {

Task simple_task(const char* name, EcuId ecu = 0, int prio = 0) {
  Task t;
  t.name = name;
  t.wcet = t.bcet = Duration::ms(1);
  t.period = Duration::ms(10);
  t.ecu = ecu;
  t.priority = prio;
  return t;
}

TEST(TaskGraph, AddTaskAssignsDenseIds) {
  TaskGraph g;
  EXPECT_EQ(g.add_task(simple_task("a")), 0u);
  EXPECT_EQ(g.add_task(simple_task("b")), 1u);
  EXPECT_EQ(g.num_tasks(), 2u);
}

TEST(TaskGraph, AutoNamesEmptyTasks) {
  TaskGraph g;
  Task t = simple_task("");
  t.name.clear();
  const TaskId id = g.add_task(t);
  EXPECT_EQ(g.task(id).name, "task0");
}

TEST(TaskGraph, AddEdgeAndAdjacency) {
  TaskGraph g;
  const TaskId a = g.add_task(simple_task("a"));
  const TaskId b = g.add_task(simple_task("b", 0, 1));
  g.add_edge(a, b);
  EXPECT_TRUE(g.has_edge(a, b));
  EXPECT_FALSE(g.has_edge(b, a));
  ASSERT_EQ(g.successors(a).size(), 1u);
  EXPECT_EQ(g.successors(a)[0], b);
  ASSERT_EQ(g.predecessors(b).size(), 1u);
  EXPECT_EQ(g.predecessors(b)[0], a);
}

TEST(TaskGraph, AddEdgeRejectsBadInput) {
  TaskGraph g;
  const TaskId a = g.add_task(simple_task("a"));
  const TaskId b = g.add_task(simple_task("b"));
  EXPECT_THROW(g.add_edge(a, a), PreconditionError);        // self loop
  EXPECT_THROW(g.add_edge(a, 99), PreconditionError);       // unknown id
  g.add_edge(a, b);
  EXPECT_THROW(g.add_edge(a, b), PreconditionError);        // duplicate
  EXPECT_THROW(g.add_edge(b, a, ChannelSpec{0}), PreconditionError);
}

TEST(TaskGraph, RemoveEdgeDeletesEdgeAndAdjacency) {
  TaskGraph g;
  const TaskId a = g.add_task(simple_task("a"));
  const TaskId b = g.add_task(simple_task("b", 0, 1));
  const TaskId c = g.add_task(simple_task("c", 0, 2));
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, c);

  g.remove_edge(a, c);
  EXPECT_FALSE(g.has_edge(a, c));
  EXPECT_EQ(g.num_edges(), 2u);
  // Remaining adjacency preserves insertion order.
  ASSERT_EQ(g.successors(a).size(), 1u);
  EXPECT_EQ(g.successors(a)[0], b);
  ASSERT_EQ(g.predecessors(c).size(), 1u);
  EXPECT_EQ(g.predecessors(c)[0], b);

  EXPECT_THROW(g.remove_edge(a, c), PreconditionError);   // already gone
  EXPECT_THROW(g.remove_edge(c, a), PreconditionError);   // never existed
  EXPECT_THROW(g.remove_edge(a, 99), PreconditionError);  // unknown id
}

TEST(TaskGraph, RemoveEdgeCanStrandTaskAsInvalidSource) {
  TaskGraph g;
  Task s;
  s.name = "s";
  s.period = Duration::ms(10);
  const TaskId sid = g.add_task(s);
  const TaskId a = g.add_task(simple_task("a", 0, 1));
  const TaskId b = g.add_task(simple_task("b", 0, 2));
  g.add_edge(sid, a);
  g.add_edge(a, b);
  EXPECT_NO_THROW(g.validate());

  // Removing a's only inbound edge reclassifies it as a source, but it
  // still carries WCET > 0 and an ECU — validate() must now reject.
  g.remove_edge(sid, a);
  EXPECT_TRUE(g.is_source(a));
  EXPECT_THROW(g.validate(), PreconditionError);
}

TEST(TaskGraph, ChannelSpecStoredAndMutable) {
  TaskGraph g;
  const TaskId a = g.add_task(simple_task("a"));
  const TaskId b = g.add_task(simple_task("b", 0, 1));
  g.add_edge(a, b, ChannelSpec{3});
  EXPECT_EQ(g.channel(a, b).buffer_size, 3);
  g.set_buffer_size(a, b, 5);
  EXPECT_EQ(g.channel(a, b).buffer_size, 5);
  EXPECT_THROW(g.set_buffer_size(a, b, 0), PreconditionError);
  EXPECT_THROW(g.set_buffer_size(b, a, 2), PreconditionError);
  EXPECT_THROW(g.channel(b, a), PreconditionError);
}

TEST(TaskGraph, SourcesAndSinks) {
  const TaskGraph g = testing::diamond_graph();
  const auto sources = g.sources();
  const auto sinks = g.sinks();
  ASSERT_EQ(sources.size(), 1u);
  EXPECT_EQ(g.task(sources[0]).name, "S");
  ASSERT_EQ(sinks.size(), 1u);
  EXPECT_EQ(g.task(sinks[0]).name, "E");
  EXPECT_TRUE(g.is_source(sources[0]));
  EXPECT_TRUE(g.is_sink(sinks[0]));
  EXPECT_FALSE(g.is_source(sinks[0]));
}

TEST(TaskGraph, TopologicalOrderRespectsEdges) {
  const TaskGraph g = testing::diamond_graph();
  const auto order = g.topological_order();
  ASSERT_EQ(order.size(), g.num_tasks());
  std::vector<std::size_t> pos(g.num_tasks());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (const Edge& e : g.edges()) {
    EXPECT_LT(pos[e.from], pos[e.to]);
  }
}

TEST(TaskGraph, CycleDetection) {
  TaskGraph g;
  const TaskId a = g.add_task(simple_task("a", 0, 0));
  const TaskId b = g.add_task(simple_task("b", 0, 1));
  const TaskId c = g.add_task(simple_task("c", 0, 2));
  g.add_edge(a, b);
  g.add_edge(b, c);
  EXPECT_TRUE(g.is_dag());
  g.add_edge(c, a);
  EXPECT_FALSE(g.is_dag());
  EXPECT_THROW(g.topological_order(), PreconditionError);
  EXPECT_THROW(g.validate(), PreconditionError);
}

TEST(TaskGraph, Reaches) {
  const TaskGraph g = testing::diamond_graph();
  // ids: S=0, A=1, C=2, D=3, E=4
  EXPECT_TRUE(g.reaches(0, 4));
  EXPECT_TRUE(g.reaches(1, 2));
  EXPECT_TRUE(g.reaches(2, 2));  // reflexive
  EXPECT_FALSE(g.reaches(2, 3)); // parallel branches
  EXPECT_FALSE(g.reaches(4, 0));
}

TEST(TaskGraph, ValidateAcceptsFixtures) {
  EXPECT_NO_THROW(testing::simple_chain_graph().validate());
  EXPECT_NO_THROW(testing::diamond_graph().validate());
}

TEST(TaskGraph, ValidateRejectsExecutingSource) {
  TaskGraph g;
  Task s = simple_task("s");
  s.ecu = kNoEcu;  // source, but nonzero wcet
  const TaskId sid = g.add_task(s);
  const TaskId a = g.add_task(simple_task("a"));
  g.add_edge(sid, a);
  EXPECT_THROW(g.validate(), PreconditionError);
}

TEST(TaskGraph, ValidateRejectsUnmappedNonSource) {
  TaskGraph g;
  Task s;
  s.name = "s";
  s.period = Duration::ms(10);
  const TaskId sid = g.add_task(s);
  Task a = simple_task("a");
  a.ecu = kNoEcu;
  const TaskId aid = g.add_task(a);
  g.add_edge(sid, aid);
  EXPECT_THROW(g.validate(), PreconditionError);
}

TEST(TaskGraph, ValidateRejectsDuplicatePriorities) {
  TaskGraph g;
  Task s;
  s.name = "s";
  s.period = Duration::ms(10);
  const TaskId sid = g.add_task(s);
  const TaskId a = g.add_task(simple_task("a", 0, 1));
  const TaskId b = g.add_task(simple_task("b", 0, 1));  // same prio, same ecu
  g.add_edge(sid, a);
  g.add_edge(sid, b);
  EXPECT_THROW(g.validate(), PreconditionError);
}

TEST(TaskGraph, SamePriorityOnDifferentEcusIsFine) {
  TaskGraph g;
  Task s;
  s.name = "s";
  s.period = Duration::ms(10);
  const TaskId sid = g.add_task(s);
  const TaskId a = g.add_task(simple_task("a", 0, 1));
  const TaskId b = g.add_task(simple_task("b", 1, 1));
  g.add_edge(sid, a);
  g.add_edge(sid, b);
  EXPECT_NO_THROW(g.validate());
}

TEST(TaskGraph, PolicyDefaultsToNonPreemptive) {
  TaskGraph g;
  g.add_task(simple_task("a"));
  EXPECT_EQ(g.policy(0), SchedPolicy::kNonPreemptive);
  EXPECT_EQ(g.policy(17), SchedPolicy::kNonPreemptive);  // never-set ECU
  EXPECT_TRUE(g.policies().empty());
}

TEST(TaskGraph, SetPolicyStoresSortedOverrides) {
  TaskGraph g;
  g.set_policy(3, SchedPolicy::kEdf);
  g.set_policy(1, SchedPolicy::kPreemptive);
  EXPECT_EQ(g.policy(1), SchedPolicy::kPreemptive);
  EXPECT_EQ(g.policy(3), SchedPolicy::kEdf);
  EXPECT_EQ(g.policy(2), SchedPolicy::kNonPreemptive);
  ASSERT_EQ(g.policies().size(), 2u);
  EXPECT_EQ(g.policies()[0].first, 1);  // canonical order: sorted by ECU
  EXPECT_EQ(g.policies()[1].first, 3);
  g.set_policy(3, SchedPolicy::kPreemptive);  // overwrite in place
  EXPECT_EQ(g.policy(3), SchedPolicy::kPreemptive);
  EXPECT_EQ(g.policies().size(), 2u);
}

TEST(TaskGraph, SetPolicyDefaultErasesOverride) {
  TaskGraph g;
  g.set_policy(0, SchedPolicy::kEdf);
  EXPECT_EQ(g.policies().size(), 1u);
  g.set_policy(0, SchedPolicy::kNonPreemptive);
  EXPECT_TRUE(g.policies().empty());
  // Erasing an override that was never set is a no-op, not an error.
  g.set_policy(5, SchedPolicy::kNonPreemptive);
  EXPECT_TRUE(g.policies().empty());
}

TEST(TaskGraph, SetPolicyRejectsNoEcu) {
  TaskGraph g;
  EXPECT_THROW(g.set_policy(kNoEcu, SchedPolicy::kEdf), PreconditionError);
}

TEST(TaskGraph, ValidateRejectsEmptyGraph) {
  TaskGraph g;
  EXPECT_THROW(g.validate(), PreconditionError);
}

TEST(ValidateTask, ParameterChecks) {
  Task t = simple_task("t");
  EXPECT_NO_THROW(validate_task(t));
  t.period = Duration::zero();
  EXPECT_THROW(validate_task(t), PreconditionError);
  t = simple_task("t");
  t.bcet = t.wcet + Duration::ns(1);
  EXPECT_THROW(validate_task(t), PreconditionError);
  t = simple_task("t");
  t.offset = t.period;  // must be < period
  EXPECT_THROW(validate_task(t), PreconditionError);
  t = simple_task("t");
  t.bcet = Duration::ns(-1);
  EXPECT_THROW(validate_task(t), PreconditionError);
}

}  // namespace
}  // namespace ceta
