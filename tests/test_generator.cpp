#include "graph/generator.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "graph/paths.hpp"
#include "graph/serialize.hpp"

namespace ceta {
namespace {

TEST(GnmRandomDag, ProducesSingleSinkDag) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    GnmDagOptions opt;
    opt.num_tasks = 15;
    const TaskGraph g = gnm_random_dag(opt, rng);
    EXPECT_EQ(g.num_tasks(), 15u);
    EXPECT_TRUE(g.is_dag());
    ASSERT_EQ(g.sinks().size(), 1u) << "seed " << seed;
    EXPECT_EQ(g.sinks().front(), 14u);
  }
}

TEST(GnmRandomDag, EveryTaskReachesTheSink) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    GnmDagOptions opt;
    opt.num_tasks = 12;
    const TaskGraph g = gnm_random_dag(opt, rng);
    const TaskId sink = g.sinks().front();
    for (TaskId id = 0; id < g.num_tasks(); ++id) {
      EXPECT_TRUE(g.reaches(id, sink)) << "seed " << seed << " task " << id;
    }
  }
}

TEST(GnmRandomDag, EdgesOrientedLowToHigh) {
  Rng rng(3);
  GnmDagOptions opt;
  opt.num_tasks = 20;
  const TaskGraph g = gnm_random_dag(opt, rng);
  for (const Edge& e : g.edges()) {
    EXPECT_LT(e.from, e.to);
  }
}

TEST(GnmRandomDag, RequestedEdgeCountIsLowerBound) {
  // Sink repair can only add edges, never remove.
  Rng rng(5);
  GnmDagOptions opt;
  opt.num_tasks = 10;
  opt.num_edges = 12;
  const TaskGraph g = gnm_random_dag(opt, rng);
  EXPECT_GE(g.num_edges(), 12u);
}

TEST(GnmRandomDag, DeterministicPerSeed) {
  GnmDagOptions opt;
  opt.num_tasks = 10;
  Rng rng1(77), rng2(77);
  const TaskGraph a = gnm_random_dag(opt, rng1);
  const TaskGraph b = gnm_random_dag(opt, rng2);
  EXPECT_EQ(to_text(a), to_text(b));
}

TEST(GnmRandomDag, DifferentSeedsGiveDifferentGraphs) {
  GnmDagOptions opt;
  opt.num_tasks = 10;
  Rng rng1(1), rng2(2);
  EXPECT_NE(to_text(gnm_random_dag(opt, rng1)),
            to_text(gnm_random_dag(opt, rng2)));
}

TEST(GnmRandomDag, CompleteGraphAllowed) {
  Rng rng(1);
  GnmDagOptions opt;
  opt.num_tasks = 6;
  opt.num_edges = 15;  // 6*5/2
  const TaskGraph g = gnm_random_dag(opt, rng);
  EXPECT_EQ(g.num_edges(), 15u);
  EXPECT_TRUE(g.is_dag());
}

TEST(GnmRandomDag, Preconditions) {
  Rng rng(1);
  GnmDagOptions opt;
  opt.num_tasks = 1;
  EXPECT_THROW(gnm_random_dag(opt, rng), PreconditionError);
  opt.num_tasks = 5;
  opt.num_edges = 11;  // > 10 possible
  EXPECT_THROW(gnm_random_dag(opt, rng), PreconditionError);
}

TEST(FunnelRandomDag, SingleSinkWithSharedTail) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    FunnelDagOptions opt;
    opt.num_tasks = 15;
    const TaskGraph g = funnel_random_dag(opt, rng);
    EXPECT_EQ(g.num_tasks(), 15u);
    EXPECT_TRUE(g.is_dag());
    ASSERT_EQ(g.sinks().size(), 1u);
    const TaskId sink = g.sinks().front();
    // Every chain to the sink traverses the whole tail pipeline: the
    // pipeline head (first task after the front part) is on all chains.
    const auto chains = enumerate_source_chains(g, sink);
    ASSERT_GE(chains.size(), 1u);
    const TaskId pipe_head = 9;  // 15 * 0.4 = 6 pipeline tasks, front = 9
    for (const Path& c : chains) {
      EXPECT_NE(std::find(c.begin(), c.end(), pipe_head), c.end())
          << "seed " << seed;
    }
  }
}

TEST(FunnelRandomDag, PipelineFractionRespected) {
  Rng rng(3);
  FunnelDagOptions opt;
  opt.num_tasks = 20;
  opt.pipeline_fraction = 0.5;
  const TaskGraph g = funnel_random_dag(opt, rng);
  // Tasks 10..19 are a chain.
  for (TaskId id = 10; id + 1 < 20; ++id) {
    EXPECT_TRUE(g.has_edge(id, id + 1));
  }
}

TEST(FunnelRandomDag, Preconditions) {
  Rng rng(1);
  FunnelDagOptions opt;
  opt.num_tasks = 3;
  EXPECT_THROW(funnel_random_dag(opt, rng), PreconditionError);
  opt.num_tasks = 10;
  opt.pipeline_fraction = 1.0;
  EXPECT_THROW(funnel_random_dag(opt, rng), PreconditionError);
}

TEST(MergeChains, Topology) {
  const TaskGraph g = merge_chains_at_sink(4, 3);
  // 3 + 2 chain tasks + shared sink.
  EXPECT_EQ(g.num_tasks(), 6u);
  EXPECT_EQ(g.sources().size(), 2u);
  ASSERT_EQ(g.sinks().size(), 1u);
  const TaskId sink = g.sinks().front();
  auto chains = enumerate_source_chains(g, sink);
  ASSERT_EQ(chains.size(), 2u);
  // One chain of 4 tasks, one of 3, disjoint except the sink.
  const std::size_t len0 = chains[0].size();
  const std::size_t len1 = chains[1].size();
  EXPECT_EQ(len0 + len1, 7u);
  EXPECT_EQ(std::max(len0, len1), 4u);
  EXPECT_EQ(common_tasks(chains[0], chains[1]), std::vector<TaskId>{sink});
}

TEST(MergeChains, MinimumLength) {
  const TaskGraph g = merge_chains_at_sink(2, 2);
  EXPECT_EQ(g.num_tasks(), 3u);
  EXPECT_THROW(merge_chains_at_sink(1, 2), PreconditionError);
  EXPECT_THROW(merge_chains_at_sink(2, 1), PreconditionError);
}

TEST(SensorFusionPipeline, Topology) {
  const TaskGraph g = sensor_fusion_pipeline(3, 2);
  // 3 sensors * (1 + 2 stages) + fusion = 10 tasks.
  EXPECT_EQ(g.num_tasks(), 10u);
  EXPECT_EQ(g.sources().size(), 3u);
  ASSERT_EQ(g.sinks().size(), 1u);
  EXPECT_EQ(count_source_chains(g, g.sinks().front()), 3u);
}

TEST(SensorFusionPipeline, ZeroStagesDirectFanIn) {
  const TaskGraph g = sensor_fusion_pipeline(2, 0);
  EXPECT_EQ(g.num_tasks(), 3u);
  EXPECT_EQ(count_source_chains(g, g.sinks().front()), 2u);
  EXPECT_THROW(sensor_fusion_pipeline(0, 1), PreconditionError);
}

}  // namespace
}  // namespace ceta
