// obs::MetricsRegistry: instrument semantics (counter/gauge/histogram),
// create-or-get identity, snapshot ordering and JSON shape, and the
// determinism property the engine relies on — identical operations on two
// engines produce identical counter snapshots.

#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/time.hpp"
#include "engine/analysis_engine.hpp"
#include "helpers.hpp"
#include "json_checker.hpp"
#include "obs/json_writer.hpp"

namespace ceta {
namespace {

using ceta::testing::JsonParser;
using ceta::testing::JsonValue;
using ceta::testing::random_dag_graph;
using obs::DurationHistogram;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;

TEST(Metrics, CounterAddAndValue) {
  MetricsRegistry reg;
  obs::Counter& c = reg.counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Create-or-get returns the same instrument.
  EXPECT_EQ(&reg.counter("test.counter"), &c);
  EXPECT_EQ(reg.snapshot().counter("test.counter"), 42u);
  EXPECT_EQ(reg.snapshot().counter("no.such.counter"), 0u);
}

TEST(Metrics, GaugeLastWriteWins) {
  MetricsRegistry reg;
  obs::Gauge& g = reg.gauge("test.gauge");
  EXPECT_EQ(g.value(), 0);
  g.set(7);
  g.set(-3);
  EXPECT_EQ(g.value(), -3);
  EXPECT_EQ(&reg.gauge("test.gauge"), &g);
}

TEST(Metrics, CounterIsThreadSafe) {
  MetricsRegistry reg;
  obs::Counter& c = reg.counter("test.concurrent");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  {
    std::vector<std::jthread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&] {
        for (int i = 0; i < kPerThread; ++i) c.add();
      });
    }
  }
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, HistogramStatsAndPercentiles) {
  MetricsRegistry reg;
  DurationHistogram& h = reg.histogram("test.hist");
  EXPECT_EQ(h.snapshot().count, 0u);

  // 100 samples of 1000ns: every percentile lands in the [512, 1024)ns
  // octave, count/sum/min/max are exact.
  for (int i = 0; i < 100; ++i) h.observe(Duration::ns(1000));
  const DurationHistogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.sum, Duration::ns(100000));
  EXPECT_EQ(s.min, Duration::ns(1000));
  EXPECT_EQ(s.max, Duration::ns(1000));
  for (const Duration p : {s.p50, s.p95, s.p99}) {
    EXPECT_GE(p, Duration::ns(512));
    EXPECT_LE(p, Duration::ns(1024));
  }
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
}

TEST(Metrics, HistogramSpreadKeepsPercentilesOrdered) {
  MetricsRegistry reg;
  DurationHistogram& h = reg.histogram("test.spread");
  // 90 fast samples (~1µs), 10 slow (~1ms): p50 must sit in the fast
  // octave, p99 in the slow one.
  for (int i = 0; i < 90; ++i) h.observe(Duration::us(1));
  for (int i = 0; i < 10; ++i) h.observe(Duration::ms(1));
  const DurationHistogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.min, Duration::us(1));
  EXPECT_EQ(s.max, Duration::ms(1));
  EXPECT_LT(s.p50, Duration::us(3));
  EXPECT_GT(s.p99, Duration::us(500));
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
}

TEST(Metrics, EmptyHistogramSnapshotIsAllZero) {
  // The defined empty value: every field zero.  In particular the min
  // must be 0, not the INT64_MAX sentinel the live instrument carries —
  // that sentinel leaking into a BENCH_*.json of an idle histogram is the
  // bug this pins.
  MetricsRegistry reg;
  const DurationHistogram::Snapshot s = reg.histogram("idle").snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, Duration::zero());
  EXPECT_EQ(s.min, Duration::zero());
  EXPECT_EQ(s.max, Duration::zero());
  EXPECT_EQ(s.p50, Duration::zero());
  EXPECT_EQ(s.p95, Duration::zero());
  EXPECT_EQ(s.p99, Duration::zero());

  // And the serialized form agrees, via the independent parser.
  const JsonValue doc = JsonParser::parse(reg.snapshot().to_json());
  const JsonValue& h = doc.at("histograms").at("idle");
  for (const char* key :
       {"count", "sum_ns", "min_ns", "max_ns", "p50_ns", "p95_ns", "p99_ns"}) {
    EXPECT_EQ(h.at(key).number, 0.0) << key;
  }
}

TEST(Metrics, SingleSampleHistogramReportsDegenerateQuantiles) {
  // One sample defines every statistic: p50 = p95 = p99 = min = max =
  // the sample, not an interpolated point somewhere in its octave.
  MetricsRegistry reg;
  DurationHistogram& h = reg.histogram("one");
  h.observe(Duration::ns(777));
  const DurationHistogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.sum, Duration::ns(777));
  EXPECT_EQ(s.min, Duration::ns(777));
  EXPECT_EQ(s.max, Duration::ns(777));
  EXPECT_EQ(s.p50, Duration::ns(777));
  EXPECT_EQ(s.p95, Duration::ns(777));
  EXPECT_EQ(s.p99, Duration::ns(777));

  const JsonValue doc = JsonParser::parse(reg.snapshot().to_json());
  const JsonValue& j = doc.at("histograms").at("one");
  EXPECT_EQ(j.at("count").number, 1.0);
  EXPECT_EQ(j.at("p50_ns").number, 777.0);
  EXPECT_EQ(j.at("p99_ns").number, 777.0);
}

TEST(Metrics, ZeroAndNegativeDurationsLandInTheZeroBucket) {
  MetricsRegistry reg;
  DurationHistogram& h = reg.histogram("clamped");
  h.observe(Duration::zero());
  h.observe(Duration::ns(-5));  // clamped, never a corrupt bucket index
  const DurationHistogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.sum, Duration::zero());
  EXPECT_EQ(s.min, Duration::zero());
  EXPECT_EQ(s.max, Duration::zero());
  EXPECT_EQ(s.p99, Duration::zero());
}

TEST(Metrics, SnapshotIsNameSorted) {
  MetricsRegistry reg;
  // Registered out of order; the snapshot must come back sorted so that
  // exports are deterministic regardless of registration order.
  reg.counter("zebra").add(1);
  reg.counter("alpha").add(2);
  reg.counter("mid.point").add(3);
  const MetricsSnapshot s = reg.snapshot();
  ASSERT_EQ(s.counters.size(), 3u);
  EXPECT_EQ(s.counters[0].first, "alpha");
  EXPECT_EQ(s.counters[1].first, "mid.point");
  EXPECT_EQ(s.counters[2].first, "zebra");
}

TEST(Metrics, SnapshotJsonShape) {
  MetricsRegistry reg;
  reg.counter("c.one").add(11);
  reg.gauge("g.one").set(-5);
  reg.histogram("h.one").observe(Duration::us(2));
  const JsonValue doc = JsonParser::parse(reg.snapshot().to_json());
  EXPECT_EQ(doc.at("counters").at("c.one").number, 11.0);
  EXPECT_EQ(doc.at("gauges").at("g.one").number, -5.0);
  const JsonValue& h = doc.at("histograms").at("h.one");
  EXPECT_EQ(h.at("count").number, 1.0);
  EXPECT_EQ(h.at("sum_ns").number, 2000.0);
  EXPECT_EQ(h.at("min_ns").number, 2000.0);
  EXPECT_EQ(h.at("max_ns").number, 2000.0);
  EXPECT_TRUE(h.has("p50_ns"));
  EXPECT_TRUE(h.has("p95_ns"));
  EXPECT_TRUE(h.has("p99_ns"));
  // An empty registry still emits all three sections.
  const JsonValue empty = JsonParser::parse(MetricsRegistry().snapshot()
                                            // (temporary registry)
                                                .to_json());
  EXPECT_TRUE(empty.at("counters").is_object());
  EXPECT_TRUE(empty.at("gauges").is_object());
  EXPECT_TRUE(empty.at("histograms").is_object());
  EXPECT_EQ(empty.at("counters").size(), 0u);
}

TEST(Metrics, WriteJsonComposesIntoLargerDocument) {
  MetricsRegistry reg;
  reg.counter("nested.counter").add(9);
  std::ostringstream os;
  obs::JsonWriter w(os, /*pretty=*/false);
  w.begin_object();
  w.member("kind", "wrapper");
  w.key("metrics");
  reg.snapshot().write_json(w);
  w.end_object();
  w.done();
  const JsonValue doc = JsonParser::parse(os.str());
  EXPECT_EQ(doc.at("kind").string, "wrapper");
  EXPECT_EQ(doc.at("metrics").at("counters").at("nested.counter").number, 9.0);
}

// The determinism property metrics exports rely on: two engines run
// through the same operations on the same graph report identical counters
// and identical histogram *counts*.  (Histogram durations are wall time
// and must never be compared.)
TEST(Metrics, EngineSnapshotsAreDeterministic) {
  const TaskGraph g = random_dag_graph(14, 3, /*seed=*/21);

  const auto session = [&g]() {
    AnalysisEngine engine(g);
    const std::vector<TaskId> fusing = engine.fusing_tasks();
    (void)engine.disparity_all(fusing);
    (void)engine.disparity_all(fusing);  // all hits
    for (const TaskId t : fusing) (void)engine.optimize_buffers(t);
    return engine.metrics();
  };

  const MetricsSnapshot a = session();
  const MetricsSnapshot b = session();

  ASSERT_EQ(a.counters.size(), b.counters.size());
  for (std::size_t i = 0; i < a.counters.size(); ++i) {
    EXPECT_EQ(a.counters[i].first, b.counters[i].first);
    EXPECT_EQ(a.counters[i].second, b.counters[i].second)
        << "counter " << a.counters[i].first;
  }
  ASSERT_EQ(a.histograms.size(), b.histograms.size());
  for (std::size_t i = 0; i < a.histograms.size(); ++i) {
    EXPECT_EQ(a.histograms[i].first, b.histograms[i].first);
    EXPECT_EQ(a.histograms[i].second.count, b.histograms[i].second.count)
        << "histogram " << a.histograms[i].first;
  }
  // The engine's private registry is per-session: a fresh engine that does
  // nothing reports zero everywhere.
  const AnalysisEngine idle(g);
  for (const auto& [name, value] : idle.metrics().counters) {
    EXPECT_EQ(value, 0u) << name;
  }
}

}  // namespace
}  // namespace ceta
