#include "disparity/pairwise.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "graph/paths.hpp"
#include "helpers.hpp"

namespace ceta {
namespace {

/// Two distinct sources, no intermediate common task:
///   S1(T=10) -> A(W=B=1,T=10,ecu0,p0) -> E
///   S2(T=30) -> B(W=B=2,T=30,ecu0,p1) -> E(W=B=1,T=30,ecu1,p0)
/// R(A)=3, R(B)=3, R(E)=1.
/// λ={S1,A,E}: W=23, B=1.   ν={S2,B,E}: W=63, B=2.
/// Theorem 1: O = max(|23−2|, |63−1|) = 62ms (distinct heads: no floor).
TaskGraph two_source_graph() {
  TaskGraph g;
  Task s1;
  s1.name = "S1";
  s1.period = Duration::ms(10);
  const TaskId s1id = g.add_task(s1);
  Task s2;
  s2.name = "S2";
  s2.period = Duration::ms(30);
  const TaskId s2id = g.add_task(s2);
  auto mk = [](const char* name, Duration e, Duration period, EcuId ecu,
               int prio) {
    Task t;
    t.name = name;
    t.wcet = t.bcet = e;
    t.period = period;
    t.ecu = ecu;
    t.priority = prio;
    return t;
  };
  const TaskId a = g.add_task(mk("A", Duration::ms(1), Duration::ms(10), 0, 0));
  const TaskId b = g.add_task(mk("B", Duration::ms(2), Duration::ms(30), 0, 1));
  const TaskId e = g.add_task(mk("E", Duration::ms(1), Duration::ms(30), 1, 0));
  g.add_edge(s1id, a);
  g.add_edge(s2id, b);
  g.add_edge(a, e);
  g.add_edge(b, e);
  g.validate();
  return g;
}

TEST(SamplingWindow, FromBounds) {
  const BackwardBounds b{Duration::ms(23), Duration::ms(1)};
  const Interval w = sampling_window(b);
  EXPECT_EQ(w.lo(), Duration::ms(-23));
  EXPECT_EQ(w.hi(), Duration::ms(-1));
}

TEST(SamplingWindow, RejectsInconsistentBounds) {
  const BackwardBounds bad{Duration::ms(1), Duration::ms(2)};
  EXPECT_THROW(sampling_window(bad), PreconditionError);
}

TEST(IndependentSeparation, HandComputed) {
  const BackwardBounds l{Duration::ms(23), Duration::ms(1)};
  const BackwardBounds n{Duration::ms(63), Duration::ms(2)};
  EXPECT_EQ(independent_window_separation(l, n), Duration::ms(62));
  EXPECT_EQ(independent_window_separation(n, l), Duration::ms(62));
}

TEST(IndependentSeparation, MatchesIntervalMaxSeparation) {
  const BackwardBounds l{Duration::ms(23), Duration::ms(1)};
  const BackwardBounds n{Duration::ms(63), Duration::ms(2)};
  EXPECT_EQ(independent_window_separation(l, n),
            sampling_window(l).max_separation(sampling_window(n)));
}

TEST(IndependentSeparation, NegativeBcbtHandled) {
  const BackwardBounds l{Duration::ms(5), Duration::ms(-3)};
  const BackwardBounds n{Duration::ms(4), Duration::ms(2)};
  // max(|5−2|, |4−(−3)|) = 7.
  EXPECT_EQ(independent_window_separation(l, n), Duration::ms(7));
}

TEST(PdiffPair, DistinctSourcesHandComputed) {
  const TaskGraph g = two_source_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  EXPECT_EQ(rtm[2], Duration::ms(3));  // A
  EXPECT_EQ(rtm[3], Duration::ms(3));  // B
  EXPECT_EQ(rtm[4], Duration::ms(1));  // E
  const Path lambda = {0, 2, 4};
  const Path nu = {1, 3, 4};
  EXPECT_EQ(pdiff_pair_bound(g, lambda, nu, rtm), Duration::ms(62));
  // Symmetric in the argument order.
  EXPECT_EQ(pdiff_pair_bound(g, nu, lambda, rtm), Duration::ms(62));
}

TEST(PdiffPair, SharedSourceFloorsToPeriod) {
  const TaskGraph g = testing::diamond_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  // W = 42, B = 1 on both chains; O = 41 floored to 40 (T(S) = 10ms).
  const Path lambda = {0, 1, 2, 4};
  const Path nu = {0, 1, 3, 4};
  EXPECT_EQ(pdiff_pair_bound(g, lambda, nu, rtm), Duration::ms(40));
}

TEST(PdiffPair, Preconditions) {
  const TaskGraph g = testing::diamond_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const Path lambda = {0, 1, 2, 4};
  EXPECT_THROW(pdiff_pair_bound(g, lambda, lambda, rtm), PreconditionError);
  EXPECT_THROW(pdiff_pair_bound(g, lambda, {0, 1, 2}, rtm),
               PreconditionError);
  EXPECT_THROW(pdiff_pair_bound(g, {}, lambda, rtm), PreconditionError);
}

TEST(PdiffPair, SchedulingAgnosticLooserOrEqual) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const TaskGraph g = testing::random_two_chain_graph(6, 3, seed);
    const ResponseTimeMap rtm = testing::response_times_of(g);
    const auto chains = enumerate_source_chains(g, g.sinks().front());
    ASSERT_EQ(chains.size(), 2u);
    const Duration np = pdiff_pair_bound(g, chains[0], chains[1], rtm,
                                         HopBoundMethod::kNonPreemptive);
    const Duration ag = pdiff_pair_bound(g, chains[0], chains[1], rtm,
                                         HopBoundMethod::kSchedulingAgnostic);
    EXPECT_GE(ag, np) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ceta
