// Exhaustive verification on small fixtures: enumerate *complete* release
// offset grids (at 1 ms granularity, which includes all the alignment
// corner cases) under deterministic worst-case execution, and check every
// single configuration against the analytical bounds.  This is the
// strongest soundness evidence in the suite: no sampling, no randomness.

#include <gtest/gtest.h>

#include "chain/backward_bounds.hpp"
#include "common/error.hpp"
#include "disparity/analyzer.hpp"
#include "disparity/buffer_opt.hpp"
#include "graph/paths.hpp"
#include "helpers.hpp"
#include "sim/backward.hpp"
#include "sim/engine.hpp"

namespace ceta {
namespace {

/// Diamond with small harmonic periods so the grid stays tractable:
///   S(T=4) -> A(W=B=1,T=4,ecu0) -> {C(T=8,ecu0), D(T=8,ecu1)} -> E(T=8,ecu1)
TaskGraph small_diamond() {
  TaskGraph g;
  Task s;
  s.name = "S";
  s.period = Duration::ms(4);
  const TaskId sid = g.add_task(s);
  auto mk = [](const char* name, Duration period, EcuId ecu, int prio) {
    Task t;
    t.name = name;
    t.wcet = t.bcet = Duration::ms(1);
    t.period = period;
    t.ecu = ecu;
    t.priority = prio;
    return t;
  };
  const TaskId a = g.add_task(mk("A", Duration::ms(4), 0, 0));
  const TaskId c = g.add_task(mk("C", Duration::ms(8), 0, 1));
  const TaskId d = g.add_task(mk("D", Duration::ms(8), 1, 0));
  const TaskId e = g.add_task(mk("E", Duration::ms(8), 1, 1));
  g.add_edge(sid, a);
  g.add_edge(a, c);
  g.add_edge(a, d);
  g.add_edge(c, e);
  g.add_edge(d, e);
  g.validate();
  return g;
}

/// Two-source fusion:  S1(T=3) -> A(T=3,ecu0) -> F(T=6,ecu2)
///                     S2(T=6) -> B(T=6,ecu1) -> F
TaskGraph small_fusion() {
  TaskGraph g;
  Task s1;
  s1.name = "S1";
  s1.period = Duration::ms(3);
  const TaskId s1id = g.add_task(s1);
  Task s2;
  s2.name = "S2";
  s2.period = Duration::ms(6);
  const TaskId s2id = g.add_task(s2);
  auto mk = [](const char* name, Duration period, EcuId ecu) {
    Task t;
    t.name = name;
    t.wcet = t.bcet = Duration::ms(1);
    t.period = period;
    t.ecu = ecu;
    t.priority = 0;
    return t;
  };
  const TaskId a = g.add_task(mk("A", Duration::ms(3), 0));
  const TaskId b = g.add_task(mk("B", Duration::ms(6), 1));
  const TaskId f = g.add_task(mk("F", Duration::ms(6), 2));
  g.add_edge(s1id, a);
  g.add_edge(s2id, b);
  g.add_edge(a, f);
  g.add_edge(b, f);
  g.validate();
  return g;
}

TEST(Exhaustive, DiamondDisparityOverFullOffsetGrid) {
  TaskGraph g = small_diamond();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const Duration bound = analyze_time_disparity(g, 4, rtm).worst_case;

  Duration observed_max = Duration::zero();
  std::size_t combos = 0;
  for (int so = 0; so < 4; ++so) {
    for (int ao = 0; ao < 4; ++ao) {
      for (int co = 0; co < 8; co += 2) {
        for (int do_ = 0; do_ < 8; do_ += 2) {
          for (int eo = 0; eo < 8; eo += 2) {
            g.task(0).offset = Duration::ms(so);
            g.task(1).offset = Duration::ms(ao);
            g.task(2).offset = Duration::ms(co);
            g.task(3).offset = Duration::ms(do_);
            g.task(4).offset = Duration::ms(eo);
            SimOptions opt;
            opt.duration = Duration::ms(200);
            opt.exec_model = ExecTimeModel::kWorstCase;
            const SimResult res = Simulator(g, opt).run();
            ASSERT_LE(res.max_disparity[4], bound)
                << "offsets " << so << ',' << ao << ',' << co << ',' << do_
                << ',' << eo;
            observed_max = std::max(observed_max, res.max_disparity[4]);
            ++combos;
          }
        }
      }
    }
  }
  EXPECT_EQ(combos, 4u * 4u * 4u * 4u * 4u);
  // The exhaustive max is a certified lower bound on the true worst case;
  // it must land within the analytical bound and reasonably close to it.
  EXPECT_GT(observed_max, bound / 3);
}

TEST(Exhaustive, FusionPairBoundOverFullOffsetGrid) {
  TaskGraph g = small_fusion();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const auto chains = enumerate_source_chains(g, 4);
  ASSERT_EQ(chains.size(), 2u);
  const Duration bound =
      analyze_time_disparity(g, 4, rtm).worst_case;

  Duration observed_max = Duration::zero();
  for (int o1 = 0; o1 < 3; ++o1) {
    for (int o2 = 0; o2 < 6; ++o2) {
      for (int oa = 0; oa < 3; ++oa) {
        for (int ob = 0; ob < 6; ob += 2) {
          for (int of = 0; of < 6; of += 2) {
            g.task(0).offset = Duration::ms(o1);
            g.task(1).offset = Duration::ms(o2);
            g.task(2).offset = Duration::ms(oa);
            g.task(3).offset = Duration::ms(ob);
            g.task(4).offset = Duration::ms(of);
            SimOptions opt;
            opt.duration = Duration::ms(150);
            opt.exec_model = ExecTimeModel::kWorstCase;
            const SimResult res = Simulator(g, opt).run();
            ASSERT_LE(res.max_disparity[4], bound)
                << "offsets " << o1 << ',' << o2 << ',' << oa << ',' << ob
                << ',' << of;
            observed_max = std::max(observed_max, res.max_disparity[4]);
          }
        }
      }
    }
  }
  EXPECT_GT(observed_max, Duration::zero());
}

TEST(Exhaustive, BackwardTimesOverOffsetGridBothExecExtremes) {
  TaskGraph g = small_diamond();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const auto chains = enumerate_source_chains(g, 4);
  std::vector<BackwardBounds> bounds;
  for (const Path& c : chains) bounds.push_back(backward_bounds(g, c, rtm));

  for (int so = 0; so < 4; so += 1) {
    for (int ao = 0; ao < 4; ao += 1) {
      for (int eo = 0; eo < 8; eo += 2) {
        for (const ExecTimeModel model :
             {ExecTimeModel::kWorstCase, ExecTimeModel::kBestCase}) {
          g.task(0).offset = Duration::ms(so);
          g.task(1).offset = Duration::ms(ao);
          g.task(4).offset = Duration::ms(eo);
          SimOptions opt;
          opt.duration = Duration::ms(100);
          opt.exec_model = model;
          opt.record_trace = true;
          const SimResult res = Simulator(g, opt).run();
          for (std::size_t ci = 0; ci < chains.size(); ++ci) {
            const BackwardMeasurement m =
                measured_backward_times(g, res.trace, chains[ci]);
            for (Duration len : m.lengths) {
              ASSERT_LE(len, bounds[ci].wcbt);
              ASSERT_GE(len, bounds[ci].bcbt);
            }
          }
        }
      }
    }
  }
}

TEST(Exhaustive, BufferedFusionOverOffsetGrid) {
  TaskGraph g = small_fusion();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const auto chains = enumerate_source_chains(g, 4);
  const BufferDesign d = design_buffer(g, chains[0], chains[1], rtm);
  TaskGraph buffered = g;
  apply_buffer_design(buffered, d);

  for (int o1 = 0; o1 < 3; ++o1) {
    for (int o2 = 0; o2 < 6; o2 += 2) {
      for (int of = 0; of < 6; of += 2) {
        buffered.task(0).offset = Duration::ms(o1);
        buffered.task(1).offset = Duration::ms(o2);
        buffered.task(4).offset = Duration::ms(of);
        SimOptions opt;
        opt.warmup = Duration::ms(100);
        opt.duration = Duration::ms(300);
        opt.exec_model = ExecTimeModel::kWorstCase;
        const SimResult res = Simulator(buffered, opt).run();
        ASSERT_LE(res.max_disparity[4], d.optimized_bound)
            << "offsets " << o1 << ',' << o2 << ',' << of;
      }
    }
  }
}

}  // namespace
}  // namespace ceta
