// Simulator API tests: the resettable front door must be a pure function
// of (graph, options, seed) — reusing one instance across seeds is
// bit-identical to constructing fresh simulators, a 100-seed sweep is
// trace-identical to the retained reference engine, and run_batch merges
// are exactly the fold of the individual runs.

#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "helpers.hpp"
#include "sim/engine.hpp"
#include "sim/reference_engine.hpp"

namespace ceta {
namespace {

using ceta::testing::random_dag_graph;

/// Field-by-field equality of two results, including the full trace
/// (every job's release/start/finish and every read link).
void expect_identical(const SimResult& a, const SimResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.max_disparity, b.max_disparity) << what;
  EXPECT_EQ(a.jobs_observed, b.jobs_observed) << what;
  EXPECT_EQ(a.jobs_finished, b.jobs_finished) << what;
  EXPECT_EQ(a.max_response_time, b.max_response_time) << what;
  EXPECT_EQ(a.preemptions, b.preemptions) << what;
  ASSERT_EQ(a.trace.tasks.size(), b.trace.tasks.size()) << what;
  for (std::size_t t = 0; t < a.trace.tasks.size(); ++t) {
    const std::vector<JobRecord>& ja = a.trace.tasks[t].jobs;
    const std::vector<JobRecord>& jb = b.trace.tasks[t].jobs;
    ASSERT_EQ(ja.size(), jb.size()) << what << " task " << t;
    for (std::size_t k = 0; k < ja.size(); ++k) {
      EXPECT_EQ(ja[k].index, jb[k].index) << what;
      EXPECT_EQ(ja[k].release, jb[k].release) << what;
      EXPECT_EQ(ja[k].start, jb[k].start) << what;
      EXPECT_EQ(ja[k].finish, jb[k].finish) << what;
      ASSERT_EQ(ja[k].reads.size(), jb[k].reads.size()) << what;
      for (std::size_t r = 0; r < ja[k].reads.size(); ++r) {
        EXPECT_EQ(ja[k].reads[r].from, jb[k].reads[r].from) << what;
        EXPECT_EQ(ja[k].reads[r].producer_job, jb[k].reads[r].producer_job)
            << what;
        EXPECT_EQ(ja[k].reads[r].producer_release,
                  jb[k].reads[r].producer_release)
            << what;
      }
    }
  }
}

SimOptions traced_options(Duration duration) {
  SimOptions opt;
  opt.duration = duration;
  opt.record_trace = true;
  return opt;
}

TEST(Simulator, ResetReuseMatchesFreshConstruction) {
  const TaskGraph g = random_dag_graph(12, 3, /*seed=*/5);
  const SimOptions opt = traced_options(Duration::ms(300));
  Simulator reused(g, opt);
  for (std::uint64_t seed : {7u, 3u, 7u, 100u, 1u}) {
    const SimResult warm = reused.run(seed);
    const SimResult fresh = Simulator(g, opt).run(seed);
    expect_identical(warm, fresh, "seed " + std::to_string(seed));
  }
}

TEST(Simulator, ResetIsIdempotentAndSurvivesAbandonedRuns) {
  const TaskGraph g = random_dag_graph(10, 2, /*seed=*/11);
  {
    SimOptions opt = traced_options(Duration::ms(300));
    opt.max_jobs = 5;  // guarantees a mid-run CapacityError
    Simulator sim(g, opt);
    EXPECT_THROW(sim.run(1), CapacityError);
    sim.reset();
    // The abandoned run left nothing behind: the replay fails the same
    // way instead of tripping over stale queue/arena state.
    EXPECT_THROW(sim.run(1), CapacityError);
  }
  const SimOptions opt = traced_options(Duration::ms(300));
  Simulator sim(g, opt);
  (void)sim.run(3);
  sim.reset();
  sim.reset();  // reset is idempotent
  expect_identical(sim.run(9), Simulator(g, opt).run(9),
                   "run after explicit resets");
}

TEST(Simulator, HundredSeedSweepMatchesReferenceEngine) {
  // The acceptance gate of the rewrite: across 100 seeds the new core and
  // the verbatim pre-rewrite engine produce field-identical results and
  // traces (same event order, same reads, same disparity stamps).
  const TaskGraph g = random_dag_graph(10, 3, /*seed=*/17);
  SimOptions opt = traced_options(Duration::ms(120));
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    opt.seed = seed;
    const SimResult oldr = sim::simulate_reference(g, opt);
    const SimResult newr = Simulator(g, opt).run();
    expect_identical(oldr, newr, "seed " + std::to_string(seed));
  }
}

TEST(Simulator, ReferenceEquivalencePreemptiveAndLet) {
  // The sweep above runs the default policy; cover the preemptive
  // dispatcher and LET channels (publish events) against the reference
  // too, seeds 1..25 each.
  TaskGraph g = random_dag_graph(10, 2, /*seed=*/23);
  for (TaskId id = 0; id < static_cast<TaskId>(g.num_tasks()); ++id) {
    if (id % 2 == 0) g.task(id).comm = CommSemantics::kLet;
  }
  SimOptions opt = traced_options(Duration::ms(120));
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    opt.seed = seed;
    opt.policy = SchedPolicy::kNonPreemptive;
    expect_identical(sim::simulate_reference(g, opt), Simulator(g, opt).run(),
                     "LET seed " + std::to_string(seed));
    opt.policy = SchedPolicy::kPreemptive;
    expect_identical(sim::simulate_reference(g, opt), Simulator(g, opt).run(),
                     "preemptive seed " + std::to_string(seed));
  }
}

TEST(Simulator, RunBatchEqualsFoldOfRuns) {
  const TaskGraph g = random_dag_graph(12, 3, /*seed=*/29);
  SimOptions opt;
  opt.duration = Duration::ms(250);
  Simulator sim(g, opt);
  const SimBatchResult batch = sim.run_batch(/*first_seed=*/10, 6);
  EXPECT_EQ(batch.replications, 6u);
  EXPECT_GT(batch.events, 0u);

  // Fold the six runs by hand.
  const std::size_t n = g.num_tasks();
  std::vector<Duration> disparity(n, Duration::zero());
  std::vector<Duration> response(n, Duration::zero());
  std::vector<std::int64_t> observed(n, 0), finished(n, 0), preempted(n, 0);
  Simulator probe(g, opt);
  for (std::uint64_t seed = 10; seed < 16; ++seed) {
    const SimResult r = probe.run(seed);
    for (std::size_t t = 0; t < n; ++t) {
      disparity[t] = std::max(disparity[t], r.max_disparity[t]);
      response[t] = std::max(response[t], r.max_response_time[t]);
      observed[t] += r.jobs_observed[t];
      finished[t] += r.jobs_finished[t];
      preempted[t] += r.preemptions[t];
    }
  }
  EXPECT_EQ(batch.max_disparity, disparity);
  EXPECT_EQ(batch.max_response_time, response);
  EXPECT_EQ(batch.jobs_observed, observed);
  EXPECT_EQ(batch.jobs_finished, finished);
  EXPECT_EQ(batch.preemptions, preempted);
}

TEST(Simulator, BatchMergeIsShardingInvariant) {
  const TaskGraph g = random_dag_graph(10, 2, /*seed=*/31);
  SimOptions opt;
  opt.duration = Duration::ms(200);
  Simulator sim(g, opt);
  const SimBatchResult whole = sim.run_batch(1, 8);
  SimBatchResult sharded = sim.run_batch(1, 3);
  sharded.merge(sim.run_batch(4, 5));
  EXPECT_EQ(whole.replications, sharded.replications);
  EXPECT_EQ(whole.events, sharded.events);
  EXPECT_EQ(whole.max_disparity, sharded.max_disparity);
  EXPECT_EQ(whole.jobs_observed, sharded.jobs_observed);
  EXPECT_EQ(whole.jobs_finished, sharded.jobs_finished);
  EXPECT_EQ(whole.max_response_time, sharded.max_response_time);
  EXPECT_EQ(whole.preemptions, sharded.preemptions);
}

TEST(Simulator, MergeRejectsMismatchedShapes) {
  const TaskGraph a = random_dag_graph(8, 2, /*seed=*/37);
  const TaskGraph b = random_dag_graph(12, 2, /*seed=*/37);
  SimOptions opt;
  opt.duration = Duration::ms(50);
  SimBatchResult ra = Simulator(a, opt).run_batch(1, 1);
  const SimBatchResult rb = Simulator(b, opt).run_batch(1, 1);
  EXPECT_THROW(ra.merge(rb), PreconditionError);
}

/// Observer recording every callback for the observer-contract test.
struct RecordingObserver final : JobObserver {
  struct Seen {
    TaskId task;
    std::int64_t job;
    Instant release;
    Duration disparity;
  };
  std::vector<std::uint64_t> seeds;
  std::vector<Seen> jobs;

  void on_run_begin(std::uint64_t seed) override { seeds.push_back(seed); }
  void on_observed_job(TaskId task, std::int64_t job, Instant release,
                       Instant /*start*/, Instant /*finish*/,
                       const Instant* min_ts, const Instant* max_ts,
                       std::size_t num_sources) override {
    Instant lo = Instant::ns(INT64_MAX);
    Instant hi = Instant::ns(INT64_MIN);
    for (std::size_t s = 0; s < num_sources; ++s) {
      if (min_ts[s] > max_ts[s]) continue;  // source absent from this job
      lo = std::min(lo, min_ts[s]);
      hi = std::max(hi, max_ts[s]);
    }
    jobs.push_back({task, job, release, hi - lo});
  }
};

TEST(Simulator, ObserverSeesEveryObservedJobWithMatchingDisparity) {
  const TaskGraph g = random_dag_graph(10, 3, /*seed=*/41);
  SimOptions opt;
  opt.duration = Duration::ms(300);
  opt.warmup = Duration::ms(50);
  Simulator sim(g, opt);
  RecordingObserver obs;
  sim.set_observer(&obs);
  const SimResult res = sim.run(77);
  ASSERT_EQ(obs.seeds, std::vector<std::uint64_t>{77u});

  // Callback count per task == jobs_observed; max per-callback disparity
  // == the result's max_disparity; no callback precedes warmup.
  std::vector<std::int64_t> count(g.num_tasks(), 0);
  std::vector<Duration> worst(g.num_tasks(), Duration::zero());
  for (const RecordingObserver::Seen& s : obs.jobs) {
    EXPECT_GE(s.release, Instant::ns(0) + opt.warmup);
    ++count[s.task];
    worst[s.task] = std::max(worst[s.task], s.disparity);
  }
  EXPECT_EQ(count, res.jobs_observed);
  EXPECT_EQ(worst, res.max_disparity);

  // Detaching stops the callbacks.
  sim.set_observer(nullptr);
  (void)sim.run(78);
  EXPECT_EQ(obs.seeds.size(), 1u);
}

}  // namespace
}  // namespace ceta
