#include "chain/critical.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "helpers.hpp"

namespace ceta {
namespace {

TEST(CriticalChain, MatchesEnumerationOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const TaskGraph g = testing::random_dag_graph(13, 3, seed + 1200);
    const ResponseTimeMap rtm = testing::response_times_of(g);
    const TaskId sink = g.sinks().front();

    Duration best = Duration::min();
    for (const Path& chain : enumerate_source_chains(g, sink)) {
      best = std::max(best, wcbt_bound(g, chain, rtm));
    }
    const CriticalChain crit = critical_chain(g, sink, rtm);
    EXPECT_EQ(crit.wcbt, best) << "seed " << seed;
    EXPECT_TRUE(is_path(g, crit.chain));
    EXPECT_TRUE(g.is_source(crit.chain.front()));
    EXPECT_EQ(crit.chain.back(), sink);
    EXPECT_EQ(wcbt_bound(g, crit.chain, rtm), crit.wcbt);
  }
}

TEST(CriticalChain, DiamondHandComputed) {
  const TaskGraph g = testing::diamond_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const CriticalChain crit = critical_chain(g, 4, rtm);
  // Both chains have W = 42ms; either is a valid critical chain.
  EXPECT_EQ(crit.wcbt, Duration::ms(42));
  EXPECT_EQ(crit.chain.size(), 4u);
}

TEST(CriticalChain, SourceTaskIsTrivial) {
  const TaskGraph g = testing::diamond_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const CriticalChain crit = critical_chain(g, 0, rtm);
  EXPECT_EQ(crit.chain, Path{0});
  EXPECT_EQ(crit.wcbt, Duration::zero());
}

TEST(CriticalChain, AccountsForFifoBuffers) {
  TaskGraph g = testing::diamond_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const Duration base = critical_chain(g, 4, rtm).wcbt;
  // Buffer the C branch: its chain gains 2·T(A)... the buffered channel
  // is A->C, producer period 10ms, size 3 → +20ms.
  g.set_buffer_size(1, 2, 3);
  const CriticalChain crit = critical_chain(g, 4, rtm);
  EXPECT_EQ(crit.wcbt, base + Duration::ms(20));
  // The critical chain now runs through C.
  EXPECT_NE(std::find(crit.chain.begin(), crit.chain.end(), 2u),
            crit.chain.end());
}

TEST(CriticalChain, SchedulingAgnosticAtLeastLemma4) {
  const TaskGraph g = testing::random_dag_graph(12, 3, 999);
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const TaskId sink = g.sinks().front();
  EXPECT_GE(critical_chain(g, sink, rtm,
                           HopBoundMethod::kSchedulingAgnostic)
                .wcbt,
            critical_chain(g, sink, rtm).wcbt);
}

TEST(CriticalChain, Preconditions) {
  const TaskGraph g = testing::diamond_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  EXPECT_THROW(critical_chain(g, 99, rtm), PreconditionError);
  ResponseTimeMap bad = rtm;
  bad.pop_back();
  EXPECT_THROW(critical_chain(g, 4, bad), PreconditionError);
}

}  // namespace
}  // namespace ceta
