#include "chain/subchain.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace ceta {
namespace {

TEST(ForkJoinJoints, SharedHeadExcluded) {
  // λ = S A C E, ν = S A D E: common {S, A, E}, head S excluded.
  const Path a = {0, 1, 2, 4};
  const Path b = {0, 1, 3, 4};
  EXPECT_EQ(fork_join_joints(a, b), (std::vector<TaskId>{1, 4}));
}

TEST(ForkJoinJoints, DistinctHeadsKeepAllCommon) {
  const Path a = {0, 2, 4};
  const Path b = {1, 2, 4};
  EXPECT_EQ(fork_join_joints(a, b), (std::vector<TaskId>{2, 4}));
}

TEST(ForkJoinJoints, OnlySinkCommon) {
  const Path a = {0, 2, 5};
  const Path b = {1, 3, 5};
  EXPECT_EQ(fork_join_joints(a, b), (std::vector<TaskId>{5}));
}

TEST(ForkJoinJoints, Preconditions) {
  EXPECT_THROW(fork_join_joints({}, {1}), PreconditionError);
  EXPECT_THROW(fork_join_joints({1, 2}, {1, 3}), PreconditionError);  // tails
}

TEST(SplitAtJoints, PaperExample) {
  // §III example: chains {τ1,τ3,τ4,τ6} and {τ2,τ3,τ5,τ6} with common
  // tasks τ3, τ6 split into {τ1,τ3},{τ3,τ4,τ6} and {τ2,τ3},{τ3,τ5,τ6}.
  const Path lambda = {1, 3, 4, 6};
  const Path nu = {2, 3, 5, 6};
  const auto joints = fork_join_joints(lambda, nu);
  EXPECT_EQ(joints, (std::vector<TaskId>{3, 6}));
  const auto alpha = split_at_joints(lambda, joints);
  ASSERT_EQ(alpha.size(), 2u);
  EXPECT_EQ(alpha[0], (Path{1, 3}));
  EXPECT_EQ(alpha[1], (Path{3, 4, 6}));
  const auto beta = split_at_joints(nu, joints);
  ASSERT_EQ(beta.size(), 2u);
  EXPECT_EQ(beta[0], (Path{2, 3}));
  EXPECT_EQ(beta[1], (Path{3, 5, 6}));
}

TEST(SplitAtJoints, SingleJointKeepsWholeChain) {
  const Path chain = {0, 2, 5};
  const auto subs = split_at_joints(chain, {5});
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs[0], chain);
}

TEST(SplitAtJoints, JointAtHeadGivesDegenerateSubchain) {
  // Heads differ but o_1 is λ's head: α_1 = {head}.
  const Path chain = {3, 4, 6};
  const auto subs = split_at_joints(chain, {3, 6});
  ASSERT_EQ(subs.size(), 2u);
  EXPECT_EQ(subs[0], (Path{3}));
  EXPECT_EQ(subs[1], (Path{3, 4, 6}));
}

TEST(SplitAtJoints, ConsecutiveJoints) {
  const Path chain = {0, 1, 2, 3};
  const auto subs = split_at_joints(chain, {1, 2, 3});
  ASSERT_EQ(subs.size(), 3u);
  EXPECT_EQ(subs[0], (Path{0, 1}));
  EXPECT_EQ(subs[1], (Path{1, 2}));
  EXPECT_EQ(subs[2], (Path{2, 3}));
}

TEST(SplitAtJoints, SubchainsCoverChain) {
  const Path chain = {0, 1, 2, 3, 4, 5};
  const std::vector<TaskId> joints = {2, 5};
  const auto subs = split_at_joints(chain, joints);
  // Reassemble: concatenation with joints shared once.
  Path rebuilt = subs[0];
  for (std::size_t i = 1; i < subs.size(); ++i) {
    EXPECT_EQ(rebuilt.back(), subs[i].front());
    rebuilt.insert(rebuilt.end(), subs[i].begin() + 1, subs[i].end());
  }
  EXPECT_EQ(rebuilt, chain);
}

TEST(SplitAtJoints, Preconditions) {
  EXPECT_THROW(split_at_joints({}, {1}), PreconditionError);
  EXPECT_THROW(split_at_joints({1, 2}, {}), PreconditionError);
  EXPECT_THROW(split_at_joints({1, 2, 3}, {2}), PreconditionError);  // last
  EXPECT_THROW(split_at_joints({1, 2, 3}, {3, 2, 3}), PreconditionError);
}

TEST(Decompose, DiamondPair) {
  const Path a = {0, 1, 2, 4};
  const Path b = {0, 1, 3, 4};
  const ForkJoinDecomposition d = decompose_fork_join(a, b);
  EXPECT_TRUE(d.shared_head);
  EXPECT_EQ(d.joints, (std::vector<TaskId>{1, 4}));
  ASSERT_EQ(d.alpha.size(), 2u);
  EXPECT_EQ(d.alpha[0], (Path{0, 1}));
  EXPECT_EQ(d.alpha[1], (Path{1, 2, 4}));
  EXPECT_EQ(d.beta[0], (Path{0, 1}));
  EXPECT_EQ(d.beta[1], (Path{1, 3, 4}));
}

TEST(Decompose, DistinctSources) {
  const Path a = {0, 2, 5};
  const Path b = {1, 3, 5};
  const ForkJoinDecomposition d = decompose_fork_join(a, b);
  EXPECT_FALSE(d.shared_head);
  EXPECT_EQ(d.joints, (std::vector<TaskId>{5}));
  EXPECT_EQ(d.alpha[0], a);
  EXPECT_EQ(d.beta[0], b);
}

}  // namespace
}  // namespace ceta
