// Preemptive fixed-priority support (extension; the paper's model is
// non-preemptive).  Covers the preemptive RTA, the engine's preemption
// semantics, and end-to-end disparity safety with the scheduling-agnostic
// hop bounds.

#include <gtest/gtest.h>

#include "chain/backward_bounds.hpp"
#include "common/error.hpp"
#include "disparity/analyzer.hpp"
#include "helpers.hpp"
#include "sched/edf_rta.hpp"
#include "sched/priority.hpp"
#include "sim/backward.hpp"
#include "sim/engine.hpp"

namespace ceta {
namespace {

TaskId add(TaskGraph& g, const char* name, Duration wcet, Duration period,
           EcuId ecu, int prio, Duration offset = Duration::zero()) {
  Task t;
  t.name = name;
  t.wcet = t.bcet = wcet;
  t.period = period;
  t.ecu = ecu;
  t.priority = prio;
  t.offset = offset;
  return g.add_task(t);
}

TEST(PreemptiveRta, ClassicThreeTaskSet) {
  // t1 (C=1,T=4), t2 (C=2,T=6), t3 (C=3,T=13), preemptive FP:
  // R1 = 1, R2 = 3, R3 = 10 (hand-computed fixpoints).
  const std::vector<CompetingTask> none;
  EXPECT_EQ(preemptive_response_time(Duration::ms(1), Duration::ms(4), none),
            Duration::ms(1));
  const std::vector<CompetingTask> hp1 = {{Duration::ms(1), Duration::ms(4)}};
  EXPECT_EQ(preemptive_response_time(Duration::ms(2), Duration::ms(6), hp1),
            Duration::ms(3));
  const std::vector<CompetingTask> hp2 = {{Duration::ms(1), Duration::ms(4)},
                                          {Duration::ms(2), Duration::ms(6)}};
  EXPECT_EQ(preemptive_response_time(Duration::ms(3), Duration::ms(13), hp2),
            Duration::ms(10));
}

TEST(PreemptiveRta, NoBlockingFromLowerPriority) {
  // Under NP the highest-priority task suffers blocking; preemptively it
  // does not.
  TaskGraph g;
  const TaskId s = g.add_task([] {
    Task t;
    t.name = "s";
    t.period = Duration::ms(100);
    return t;
  }());
  const TaskId hi = add(g, "hi", Duration::ms(1), Duration::ms(4), 0, 0);
  const TaskId lo = add(g, "lo", Duration::ms(3), Duration::ms(100), 0, 1);
  g.add_edge(s, hi);
  g.add_edge(s, lo);

  RtaOptions np;
  EXPECT_EQ(analyze_response_times(g, np).response_time[hi], Duration::ms(4));
  RtaOptions p;
  p.policy = SchedPolicy::kPreemptive;
  EXPECT_EQ(analyze_response_times(g, p).response_time[hi], Duration::ms(1));
  EXPECT_LE(analyze_response_times(g, p).response_time[lo],
            Duration::ms(100));
}

TEST(PreemptiveRta, JitterAware) {
  // hp (C=1, T=4, J=3): victim (C=2, T=10) sees ceil((w+3)/4) instances.
  // w = 2 + ceil(5/4)·1 = 4; ceil(7/4)=2 -> 4 ✓.  R = 4.
  std::vector<CompetingTask> hp = {
      {Duration::ms(1), Duration::ms(4), Duration::ms(3)}};
  EXPECT_EQ(preemptive_response_time(Duration::ms(2), Duration::ms(10), hp),
            Duration::ms(4));
}

TEST(PreemptiveRta, OverloadDiverges) {
  std::vector<CompetingTask> hp = {{Duration::ms(3), Duration::ms(4)}};
  EXPECT_EQ(preemptive_response_time(Duration::ms(2), Duration::ms(6), hp),
            Duration::max());
}

TEST(PreemptiveEngine, HigherPriorityPreemptsImmediately) {
  TaskGraph g;
  const TaskId s = g.add_task([] {
    Task t;
    t.name = "s";
    t.period = Duration::ms(100);
    return t;
  }());
  const TaskId lo =
      add(g, "lo", Duration::ms(5), Duration::ms(100), 0, 1);
  const TaskId hi =
      add(g, "hi", Duration::ms(1), Duration::ms(100), 0, 0, Duration::ms(1));
  g.add_edge(s, lo);
  g.add_edge(s, hi);
  g.validate();

  SimOptions opt;
  opt.policy = SchedPolicy::kPreemptive;
  opt.duration = Duration::ms(50);
  opt.record_trace = true;
  opt.exec_model = ExecTimeModel::kWorstCase;
  const SimResult res = Simulator(g, opt).run();

  const JobRecord& hij = res.trace.tasks[hi].jobs.at(0);
  const JobRecord& loj = res.trace.tasks[lo].jobs.at(0);
  EXPECT_EQ(hij.start, Duration::ms(1));   // preempts lo at its release
  EXPECT_EQ(hij.finish, Duration::ms(2));
  EXPECT_EQ(loj.start, Duration::zero());
  EXPECT_EQ(loj.finish, Duration::ms(6));  // 5ms of work + 1ms suspended

  // The same scenario non-preemptively: hi waits for lo.
  opt.policy = SchedPolicy::kNonPreemptive;
  const SimResult np = Simulator(g, opt).run();
  EXPECT_EQ(np.trace.tasks[hi].jobs.at(0).start, Duration::ms(5));
}

TEST(PreemptiveEngine, ReadsStayAtFirstStart) {
  // The preempted job must not re-read inputs when it resumes: data
  // arriving during its suspension is invisible to it.
  TaskGraph g;
  Task src;
  src.name = "S";
  src.period = Duration::ms(2);
  const TaskId s = g.add_task(src);
  const TaskId victim =
      add(g, "victim", Duration::ms(5), Duration::ms(100), 0, 1);
  const TaskId preemptor =
      add(g, "preemptor", Duration::ms(1), Duration::ms(100), 0, 0,
          Duration::ms(1));
  g.add_edge(s, victim);
  g.add_edge(s, preemptor);
  g.validate();

  SimOptions opt;
  opt.policy = SchedPolicy::kPreemptive;
  opt.duration = Duration::ms(20);
  opt.record_trace = true;
  opt.exec_model = ExecTimeModel::kWorstCase;
  const SimResult res = Simulator(g, opt).run();
  const JobRecord& vj = res.trace.tasks[victim].jobs.at(0);
  EXPECT_EQ(vj.start, Duration::zero());
  EXPECT_EQ(vj.finish, Duration::ms(6));  // suspended for 1ms
  ASSERT_EQ(vj.reads.size(), 1u);
  // Read the sample from t = 0, not the ones from t = 2 or 4.
  EXPECT_EQ(vj.reads[0].producer_release, Duration::zero());
}

TEST(PreemptiveEngine, ResponseTimesWithinPreemptiveRta) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const TaskGraph g = testing::random_dag_graph(12, 3, seed + 50000);
    RtaOptions ropt;
    ropt.policy = SchedPolicy::kPreemptive;
    const RtaResult rta = analyze_response_times(g, ropt);
    ASSERT_TRUE(rta.all_schedulable);

    SimOptions opt;
    opt.policy = SchedPolicy::kPreemptive;
    opt.duration = Duration::s(1);
    opt.seed = seed;
    const SimResult res = Simulator(g, opt).run();
    for (TaskId id = 0; id < g.num_tasks(); ++id) {
      EXPECT_LE(res.max_response_time[id], rta.response_time[id])
          << "seed " << seed << " task " << g.task(id).name;
    }
  }
}

class PreemptiveSafety : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PreemptiveSafety, DisparityWithinAgnosticBounds) {
  const std::uint64_t seed = GetParam();
  TaskGraph g = testing::random_dag_graph(12, 3, seed + 60000);
  RtaOptions ropt;
  ropt.policy = SchedPolicy::kPreemptive;
  const RtaResult rta = analyze_response_times(g, ropt);
  ASSERT_TRUE(rta.all_schedulable);
  const TaskId sink = g.sinks().front();

  // Lemma 4 assumes non-preemptive dispatch; preemptive systems use the
  // scheduling-agnostic hops with preemptive response times.
  DisparityOptions dopt;
  dopt.hop_method = HopBoundMethod::kSchedulingAgnostic;
  const Duration bound =
      analyze_time_disparity(g, sink, rta.response_time, dopt).worst_case;

  Rng rng(seed);
  randomize_offsets(g, rng);
  SimOptions opt;
  opt.policy = SchedPolicy::kPreemptive;
  opt.duration = Duration::s(2);
  opt.seed = seed;
  const SimResult res = Simulator(g, opt).run();
  EXPECT_LE(res.max_disparity[sink], bound) << "seed " << seed;
}

TEST_P(PreemptiveSafety, BackwardTimesWithinAgnosticBounds) {
  const std::uint64_t seed = GetParam();
  const TaskGraph g = testing::random_dag_graph(10, 2, seed + 70000);
  RtaOptions ropt;
  ropt.policy = SchedPolicy::kPreemptive;
  const RtaResult rta = analyze_response_times(g, ropt);
  ASSERT_TRUE(rta.all_schedulable);
  const TaskId sink = g.sinks().front();

  SimOptions opt;
  opt.policy = SchedPolicy::kPreemptive;
  opt.duration = Duration::s(1);
  opt.seed = seed;
  opt.record_trace = true;
  const SimResult res = Simulator(g, opt).run();
  for (const Path& chain : enumerate_source_chains(g, sink)) {
    const Duration w = wcbt_bound(g, chain, rta.response_time,
                                  HopBoundMethod::kSchedulingAgnostic);
    for (Duration len :
         measured_backward_times(g, res.trace, chain).lengths) {
      EXPECT_LE(len, w) << "seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PreemptiveSafety,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(EdfRta, HandComputedTwoTaskSet) {
  // A (C=1,T=10), B (C=2,T=12), implicit deadlines.  Hand-computed
  // processor-demand fixpoints: the cohort busy period is L = 3; A's only
  // candidate with B-interference is a = 2 (B's deadline coincidence),
  // where w = 3 and w − a = 1, so R_A = 1; B at a = 0 admits one A job by
  // deadline, w = 3, so R_B = 3.
  const std::vector<CompetingTask> none;
  EXPECT_EQ(edf_response_time(Duration::ms(1), Duration::ms(10), none),
            Duration::ms(1));
  const std::vector<CompetingTask> vs_b = {
      {Duration::ms(2), Duration::ms(12)}};
  EXPECT_EQ(edf_response_time(Duration::ms(1), Duration::ms(10), vs_b),
            Duration::ms(1));
  const std::vector<CompetingTask> vs_a = {
      {Duration::ms(1), Duration::ms(10)}};
  EXPECT_EQ(edf_response_time(Duration::ms(2), Duration::ms(12), vs_a),
            Duration::ms(3));
}

TEST(EdfRta, OwnJitterAddedToNominalResponse) {
  const std::vector<CompetingTask> none;
  EXPECT_EQ(edf_response_time(Duration::ms(1), Duration::ms(10), none,
                              Duration::ms(4)),
            Duration::ms(5));
}

TEST(EdfRta, OverUtilizationIsUnschedulable) {
  const std::vector<CompetingTask> other = {
      {Duration::ms(2), Duration::ms(6)}};
  EXPECT_EQ(edf_response_time(Duration::ms(3), Duration::ms(4), other),
            Duration::max());
}

TEST(EdfRta, IgnoresPrioritiesNoBlocking) {
  // Same set as PreemptiveRta.NoBlockingFromLowerPriority: under EDF the
  // 100ms-period task's deadline is always later than hi's, so hi runs
  // untouched (R = 1) despite NP-FP charging it 3ms of blocking (R = 4).
  TaskGraph g;
  const TaskId s = g.add_task([] {
    Task t;
    t.name = "s";
    t.period = Duration::ms(100);
    return t;
  }());
  const TaskId hi = add(g, "hi", Duration::ms(1), Duration::ms(4), 0, 0);
  const TaskId lo = add(g, "lo", Duration::ms(3), Duration::ms(100), 0, 1);
  g.add_edge(s, hi);
  g.add_edge(s, lo);

  RtaOptions forced;
  forced.policy = SchedPolicy::kEdf;
  const RtaResult e = analyze_response_times(g, forced);
  EXPECT_EQ(e.response_time[hi], Duration::ms(1));
  EXPECT_LE(e.response_time[lo], Duration::ms(100));

  // Per-ECU routing: the graph policy alone (RtaOptions::policy unset)
  // must select the same analysis.
  g.set_policy(0, SchedPolicy::kEdf);
  const RtaResult routed = analyze_response_times(g, RtaOptions{});
  EXPECT_EQ(routed.response_time[hi], e.response_time[hi]);
  EXPECT_EQ(routed.response_time[lo], e.response_time[lo]);
}

TEST(EdfEngine, EarliestDeadlinePreemptsRegardlessOfPriority) {
  // long (C=5, T=100, highest priority) starts at 0; short (C=1, T=50,
  // *lowest* priority) releases at 1 with absolute deadline 51 < 100.
  // EDF dispatches by deadline, so short preempts long — the exact
  // opposite of both fixed-priority disciplines.
  TaskGraph g;
  const TaskId s = g.add_task([] {
    Task t;
    t.name = "s";
    t.period = Duration::ms(100);
    return t;
  }());
  const TaskId lng = add(g, "long", Duration::ms(5), Duration::ms(100), 0, 0);
  const TaskId shrt = add(g, "short", Duration::ms(1), Duration::ms(50), 0, 1,
                          Duration::ms(1));
  g.add_edge(s, lng);
  g.add_edge(s, shrt);
  g.validate();
  g.set_policy(0, SchedPolicy::kEdf);

  SimOptions opt;  // policy unset: the simulator routes on the graph
  opt.duration = Duration::ms(40);
  opt.record_trace = true;
  opt.exec_model = ExecTimeModel::kWorstCase;
  const SimResult res = Simulator(g, opt).run();

  const JobRecord& sj = res.trace.tasks[shrt].jobs.at(0);
  const JobRecord& lj = res.trace.tasks[lng].jobs.at(0);
  EXPECT_EQ(sj.start, Duration::ms(1));
  EXPECT_EQ(sj.finish, Duration::ms(2));
  EXPECT_EQ(lj.start, Duration::zero());
  EXPECT_EQ(lj.finish, Duration::ms(6));  // 5ms of work + 1ms suspended

  // Under preemptive FP the same scenario never preempts: short has the
  // lower priority and waits for long to finish.
  SimOptions fp = opt;
  fp.policy = SchedPolicy::kPreemptive;
  const SimResult fpr = Simulator(g, fp).run();
  EXPECT_EQ(fpr.trace.tasks[shrt].jobs.at(0).start, Duration::ms(5));
}

TEST(EdfEngine, ResponseTimesWithinEdfRta) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const TaskGraph g = testing::random_dag_graph(12, 3, seed + 50000);
    RtaOptions ropt;
    ropt.policy = SchedPolicy::kEdf;
    const RtaResult rta = analyze_response_times(g, ropt);
    ASSERT_TRUE(rta.all_schedulable);

    SimOptions opt;
    opt.policy = SchedPolicy::kEdf;
    opt.duration = Duration::s(1);
    opt.seed = seed;
    const SimResult res = Simulator(g, opt).run();
    for (TaskId id = 0; id < g.num_tasks(); ++id) {
      EXPECT_LE(res.max_response_time[id], rta.response_time[id])
          << "seed " << seed << " task " << g.task(id).name;
    }
  }
}

TEST(EdfEngine, MixedPolicyGraphResponseTimesWithinRta) {
  // One discipline per ECU, both the RTA and the simulator routed purely
  // by the graph's policy map.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    TaskGraph g = testing::random_dag_graph(12, 3, seed + 90000);
    g.set_policy(0, SchedPolicy::kNonPreemptive);
    g.set_policy(1, SchedPolicy::kPreemptive);
    g.set_policy(2, SchedPolicy::kEdf);
    const RtaResult rta = analyze_response_times(g, RtaOptions{});
    ASSERT_TRUE(rta.all_schedulable);

    SimOptions opt;
    opt.duration = Duration::s(1);
    opt.seed = seed;
    const SimResult res = Simulator(g, opt).run();
    for (TaskId id = 0; id < g.num_tasks(); ++id) {
      EXPECT_LE(res.max_response_time[id], rta.response_time[id])
          << "seed " << seed << " task " << g.task(id).name;
    }
  }
}

TEST(PreemptiveEngine, LetUnaffectedByPolicy) {
  // LET data flow is deterministic regardless of the dispatch policy.
  TaskGraph g;
  Task src;
  src.name = "S";
  src.period = Duration::ms(10);
  const TaskId s = g.add_task(src);
  const TaskId a = add(g, "A", Duration::ms(1), Duration::ms(10), 0, 0,
                       Duration::ms(2));
  g.task(a).comm = CommSemantics::kLet;
  const TaskId b = add(g, "B", Duration::ms(1), Duration::ms(20), 0, 1);
  g.task(b).comm = CommSemantics::kLet;
  g.add_edge(s, a);
  g.add_edge(a, b);
  g.validate();

  std::vector<Duration> lengths[2];
  int i = 0;
  for (const SchedPolicy policy :
       {SchedPolicy::kNonPreemptive, SchedPolicy::kPreemptive}) {
    SimOptions opt;
    opt.policy = policy;
    opt.duration = Duration::ms(400);
    opt.record_trace = true;
    const SimResult res = Simulator(g, opt).run();
    lengths[i++] = measured_backward_times(g, res.trace, {s, a, b},
                                           Duration::ms(50))
                       .lengths;
  }
  EXPECT_EQ(lengths[0], lengths[1]);
}

}  // namespace
}  // namespace ceta
