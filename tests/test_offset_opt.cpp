#include "disparity/offset_opt.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "helpers.hpp"
#include "sched/priority.hpp"
#include "sim/engine.hpp"

namespace ceta {
namespace {

/// The hand-computed fixture of test_exact: misaligned sources give 25ms.
TaskGraph misaligned_let() {
  TaskGraph g;
  Task s1;
  s1.name = "S1";
  s1.period = Duration::ms(10);
  const TaskId s1id = g.add_task(s1);
  Task s2;
  s2.name = "S2";
  s2.period = Duration::ms(20);
  s2.offset = Duration::ms(5);
  const TaskId s2id = g.add_task(s2);
  auto mk = [](const char* name, Duration period, EcuId ecu, int prio) {
    Task t;
    t.name = name;
    t.wcet = t.bcet = Duration::ms(1);
    t.period = period;
    t.ecu = ecu;
    t.priority = prio;
    t.comm = CommSemantics::kLet;
    return t;
  };
  const TaskId a = g.add_task(mk("A", Duration::ms(10), 0, 0));
  const TaskId b = g.add_task(mk("B", Duration::ms(20), 0, 1));
  const TaskId f = g.add_task(mk("F", Duration::ms(20), 1, 0));
  g.add_edge(s1id, a);
  g.add_edge(s2id, b);
  g.add_edge(a, f);
  g.add_edge(b, f);
  g.validate();
  return g;
}

TEST(OffsetPlan, EliminatesDisparityOnHarmonicFixture) {
  const TaskGraph g = misaligned_let();
  const OffsetPlan plan = plan_source_offsets(g, 4);
  EXPECT_EQ(plan.baseline, Duration::ms(25));
  // Harmonic periods + full offset freedom: the phases can be aligned so
  // both traced samples coincide at some multiple of the 1ms grid.
  EXPECT_LT(plan.optimized, plan.baseline);
  EXPECT_LE(plan.optimized, Duration::ms(5));
  EXPECT_GT(plan.evaluations, 1u);
  ASSERT_EQ(plan.offsets.size(), 5u);  // all closure tasks tunable
}

TEST(OffsetPlan, AppliedPlanReproducesOptimizedValue) {
  const TaskGraph g = misaligned_let();
  const OffsetPlan plan = plan_source_offsets(g, 4);
  TaskGraph tuned = g;
  apply_offset_plan(tuned, plan);
  tuned.validate();
  EXPECT_EQ(exact_let_disparity(tuned, 4).worst_disparity, plan.optimized);
}

TEST(OffsetPlan, SimulationConfirmsOptimizedSystem) {
  const TaskGraph g = misaligned_let();
  const OffsetPlan plan = plan_source_offsets(g, 4);
  TaskGraph tuned = g;
  apply_offset_plan(tuned, plan);
  SimOptions opt;
  opt.warmup = Duration::s(1);
  opt.duration = Duration::s(3);
  const SimResult res = Simulator(tuned, opt).run();
  EXPECT_EQ(res.max_disparity[4], plan.optimized);
}

TEST(OffsetPlan, NeverWorseOnRandomLetInstances) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    TaskGraph g = testing::random_two_chain_graph(4, 3, seed);
    g.set_comm_semantics(CommSemantics::kLet);
    Rng rng(seed + 3);
    randomize_offsets(g, rng);
    g.validate();
    const TaskId sink = g.sinks().front();
    const OffsetPlan plan = plan_source_offsets(g, sink);
    EXPECT_LE(plan.optimized, plan.baseline) << "seed " << seed;
    // Re-evaluation of the applied plan matches.
    TaskGraph tuned = g;
    apply_offset_plan(tuned, plan);
    EXPECT_EQ(exact_let_disparity(tuned, sink).worst_disparity,
              plan.optimized)
        << "seed " << seed;
  }
}

TEST(OffsetPlan, SourcesOnlyModeTouchesOnlySources) {
  const TaskGraph g = misaligned_let();
  OffsetPlanOptions opt;
  opt.tunables = OffsetTunables::kSourcesOnly;
  const OffsetPlan plan = plan_source_offsets(g, 4, opt);
  for (const OffsetAssignment& a : plan.offsets) {
    EXPECT_TRUE(g.is_source(a.task));
    EXPECT_LT(a.offset, g.task(a.task).period);
    EXPECT_GE(a.offset, Duration::zero());
  }
  TaskGraph tuned = g;
  apply_offset_plan(tuned, plan);
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    if (!g.is_source(id)) {
      EXPECT_EQ(tuned.task(id).offset, g.task(id).offset);
    }
  }
}

TEST(OffsetPlan, AllTasksModeAtLeastAsGoodAsSourcesOnly) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    TaskGraph g = testing::random_two_chain_graph(4, 3, seed + 40);
    g.set_comm_semantics(CommSemantics::kLet);
    Rng rng(seed);
    randomize_offsets(g, rng);
    g.validate();
    const TaskId sink = g.sinks().front();
    OffsetPlanOptions sources_only;
    sources_only.tunables = OffsetTunables::kSourcesOnly;
    const OffsetPlan restricted =
        plan_source_offsets(g, sink, sources_only);
    const OffsetPlan full = plan_source_offsets(g, sink);
    EXPECT_LE(full.optimized, restricted.optimized) << "seed " << seed;
  }
}

TEST(OffsetPlan, Preconditions) {
  const TaskGraph g = misaligned_let();
  EXPECT_THROW(plan_source_offsets(g, 99), PreconditionError);
  OffsetPlanOptions opt;
  opt.granularity = Duration::zero();
  EXPECT_THROW(plan_source_offsets(g, 4, opt), PreconditionError);
  opt = OffsetPlanOptions{};
  opt.passes = 0;
  EXPECT_THROW(plan_source_offsets(g, 4, opt), PreconditionError);
}

TEST(OffsetPlan, InjectedSweepFaultSurfacesVerbatim) {
  // The fault hook aborts the sweep mid-pass; the caller must receive the
  // planted message itself, not a wrapper that swallows it.
  const TaskGraph g = misaligned_let();
  OffsetPlanOptions opt;
  opt.fault_fail_after_evaluations = 2;
  try {
    plan_source_offsets(g, 4, opt);
    FAIL() << "expected the injected fault";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("injected offset-sweep fault"),
              std::string::npos)
        << e.what();
  }
  // The fault counter is per-call state: a clean rerun is unaffected.
  const OffsetPlan plan = plan_source_offsets(g, 4);
  EXPECT_EQ(plan.baseline, Duration::ms(25));
}

}  // namespace
}  // namespace ceta
