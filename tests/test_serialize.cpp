#include "graph/serialize.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "graph/dot.hpp"
#include "graph/generator.hpp"
#include "helpers.hpp"

namespace ceta {
namespace {

bool graphs_equal(const TaskGraph& a, const TaskGraph& b) {
  return to_text(a) == to_text(b);
}

TEST(Serialize, RoundTripFixture) {
  const TaskGraph g = testing::diamond_graph();
  const TaskGraph parsed = graph_from_text(to_text(g));
  EXPECT_TRUE(graphs_equal(g, parsed));
  EXPECT_NO_THROW(parsed.validate());
}

TEST(Serialize, RoundTripRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const TaskGraph g = testing::random_dag_graph(12, 3, seed);
    EXPECT_TRUE(graphs_equal(g, graph_from_text(to_text(g))));
  }
}

TEST(Serialize, BufferSizesPreserved) {
  TaskGraph g = testing::simple_chain_graph();
  g.set_buffer_size(0, 1, 7);
  const TaskGraph parsed = graph_from_text(to_text(g));
  EXPECT_EQ(parsed.channel(0, 1).buffer_size, 7);
  EXPECT_EQ(parsed.channel(1, 2).buffer_size, 1);
}

TEST(Serialize, ParseHandComposedText) {
  const std::string text = R"(# comment line
task S 0 0 10000000 0 0 -1
task A 1000000 500000 10000000 0 0 0

edge S A 4
)";
  const TaskGraph g = graph_from_text(text);
  ASSERT_EQ(g.num_tasks(), 2u);
  EXPECT_EQ(g.task(0).name, "S");
  EXPECT_EQ(g.task(1).wcet, Duration::ms(1));
  EXPECT_EQ(g.task(1).bcet, Duration::us(500));
  EXPECT_EQ(g.channel(0, 1).buffer_size, 4);
}

TEST(Serialize, ParseErrorsCarryLineNumbers) {
  try {
    graph_from_text("task S 0 0 10000000 0 0 -1\nbogus line\n");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Serialize, ParseRejectsDuplicatesAndUnknowns) {
  EXPECT_THROW(
      graph_from_text("task A 0 0 1 0 0 -1\ntask A 0 0 1 0 0 -1\n"),
      PreconditionError);
  EXPECT_THROW(graph_from_text("task A 0 0 1 0 0 -1\nedge A B\n"),
               PreconditionError);
  EXPECT_THROW(graph_from_text("edge A B\n"), PreconditionError);
  EXPECT_THROW(
      graph_from_text(
          "task A 0 0 1 0 0 -1\ntask B 0 0 1 0 0 0\nedge A B 0\n"),
      PreconditionError);
  EXPECT_THROW(graph_from_text("task A\n"), PreconditionError);
}

TEST(Serialize, PolicyDirectiveRoundTrips) {
  TaskGraph g = testing::diamond_graph();
  g.set_policy(0, SchedPolicy::kPreemptive);
  g.set_policy(1, SchedPolicy::kEdf);
  const std::string text = to_text(g);
  EXPECT_NE(text.find("policy 0 preemptive"), std::string::npos);
  EXPECT_NE(text.find("policy 1 edf"), std::string::npos);
  const TaskGraph parsed = graph_from_text(text);
  EXPECT_TRUE(graphs_equal(g, parsed));
  EXPECT_EQ(parsed.policy(0), SchedPolicy::kPreemptive);
  EXPECT_EQ(parsed.policy(1), SchedPolicy::kEdf);
  EXPECT_EQ(parsed.policy(2), SchedPolicy::kNonPreemptive);
}

TEST(Serialize, DefaultPolicyIsNotEmitted) {
  // Pre-seam graphs must serialize byte-identically: resetting an
  // override to the default erases it from the text entirely.
  TaskGraph g = testing::diamond_graph();
  const std::string before = to_text(g);
  EXPECT_EQ(before.find("policy"), std::string::npos);
  g.set_policy(0, SchedPolicy::kEdf);
  g.set_policy(0, SchedPolicy::kNonPreemptive);
  EXPECT_EQ(to_text(g), before);
  // An explicit nonpreemptive directive parses but round-trips to
  // nothing, since it is the default.
  const TaskGraph parsed = graph_from_text(before + "policy 0 nonpreemptive\n");
  EXPECT_EQ(to_text(parsed), before);
}

TEST(Serialize, PolicyParseErrors) {
  const std::string base = "task A 0 0 10000000 0 0 -1\n";
  EXPECT_THROW(graph_from_text(base + "policy 0 bogus\n"), PreconditionError);
  EXPECT_THROW(graph_from_text(base + "policy -1 edf\n"), PreconditionError);
  EXPECT_THROW(graph_from_text(base + "policy zero edf\n"), PreconditionError);
  EXPECT_THROW(graph_from_text(base + "policy 0\n"), PreconditionError);
}

TEST(Dot, ContainsStructure) {
  TaskGraph g = testing::diamond_graph();
  g.set_buffer_size(0, 1, 3);
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph cause_effect"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("buf=3"), std::string::npos);
  EXPECT_NE(dot.find("\"S\\n"), std::string::npos);
  // Every edge appears.
  for (const Edge& e : g.edges()) {
    const std::string arrow =
        "n" + std::to_string(e.from) + " -> n" + std::to_string(e.to);
    EXPECT_NE(dot.find(arrow), std::string::npos) << arrow;
  }
}

}  // namespace
}  // namespace ceta
