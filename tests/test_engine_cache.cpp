// AnalysisEngine cache correctness: every engine method must return
// byte-identical results to the corresponding free function, warm-cache
// calls must equal fresh-engine calls, and the engine's owned graph copy
// must insulate results from caller-side mutation.

#include "engine/analysis_engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "chain/latency.hpp"
#include "common/error.hpp"
#include "disparity/buffer_opt.hpp"
#include "disparity/multi_buffer.hpp"
#include "helpers.hpp"

namespace ceta {
namespace {

using ceta::testing::diamond_graph;
using ceta::testing::random_dag_graph;
using ceta::testing::response_times_of;
using ceta::testing::simple_chain_graph;

void expect_reports_equal(const DisparityReport& a, const DisparityReport& b) {
  EXPECT_EQ(a.worst_case, b.worst_case);
  ASSERT_EQ(a.chains, b.chains);
  ASSERT_EQ(a.pairs.size(), b.pairs.size());
  for (std::size_t i = 0; i < a.pairs.size(); ++i) {
    EXPECT_EQ(a.pairs[i].chain_a, b.pairs[i].chain_a);
    EXPECT_EQ(a.pairs[i].chain_b, b.pairs[i].chain_b);
    EXPECT_EQ(a.pairs[i].bound, b.pairs[i].bound);
  }
}

std::vector<DisparityOptions> option_matrix() {
  std::vector<DisparityOptions> out;
  for (const DisparityMethod m :
       {DisparityMethod::kIndependent, DisparityMethod::kForkJoin}) {
    for (const HopBoundMethod h : {HopBoundMethod::kNonPreemptive,
                                   HopBoundMethod::kSchedulingAgnostic}) {
      DisparityOptions opt;
      opt.method = m;
      opt.hop_method = h;
      out.push_back(opt);
    }
  }
  return out;
}

TEST(EngineCache, RtaMatchesFreeFunction) {
  const TaskGraph g = diamond_graph();
  const AnalysisEngine engine(g);
  const RtaResult expected = analyze_response_times(g);
  EXPECT_EQ(engine.rta().response_time, expected.response_time);
  EXPECT_EQ(engine.rta().all_schedulable, expected.all_schedulable);
  EXPECT_EQ(engine.response_times(), expected.response_time);
  EXPECT_TRUE(engine.schedulable());
  // Arbitrarily many accesses run the fixpoint exactly once.
  (void)engine.rta();
  (void)engine.response_times();
  EXPECT_EQ(engine.cache_stats().rta_runs, 1u);
}

TEST(EngineCache, HopAndChainBoundsMatchFreeFunctions) {
  const TaskGraph g = random_dag_graph(12, 3, /*seed=*/7);
  const ResponseTimeMap rtm = response_times_of(g);
  const AnalysisEngine engine(g);
  for (const HopBoundMethod h : {HopBoundMethod::kNonPreemptive,
                                 HopBoundMethod::kSchedulingAgnostic}) {
    for (const Edge& e : g.edges()) {
      EXPECT_EQ(engine.hop(e.from, e.to, h),
                hop_bound(g, e.from, e.to, rtm, h));
    }
    for (TaskId sink : g.sinks()) {
      for (const Path& chain : enumerate_source_chains(g, sink)) {
        const BackwardBounds expected = backward_bounds(g, chain, rtm, h);
        const BackwardBounds got = engine.chain_bounds(chain, h);
        EXPECT_EQ(got.wcbt, expected.wcbt);
        EXPECT_EQ(got.bcbt, expected.bcbt);
        // Second call is a cache hit with the same value.
        const BackwardBounds warm = engine.chain_bounds(chain, h);
        EXPECT_EQ(warm.wcbt, expected.wcbt);
        EXPECT_EQ(warm.bcbt, expected.bcbt);
      }
    }
  }
  const EngineCacheStats stats = engine.cache_stats();
  EXPECT_GT(stats.chain_bound_hits, 0u);
  EXPECT_GT(stats.hop_hits + stats.hop_misses, 0u);
}

TEST(EngineCache, DisparityMatchesFreeFunctionAcrossOptionMatrix) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const TaskGraph g = random_dag_graph(14, 3, seed);
    const ResponseTimeMap rtm = response_times_of(g);
    const AnalysisEngine engine(g);
    for (const DisparityOptions& opt : option_matrix()) {
      for (const TaskId task : engine.fusing_tasks()) {
        const DisparityReport expected =
            analyze_time_disparity(g, task, rtm, opt);
        expect_reports_equal(engine.disparity(task, opt), expected);
        // Warm (memoized) call returns the identical report.
        expect_reports_equal(engine.disparity(task, opt), expected);
      }
    }
    EXPECT_GT(engine.cache_stats().report_hits, 0u);
  }
}

TEST(EngineCache, WarmCallEqualsFreshEngine) {
  const TaskGraph g = random_dag_graph(16, 4, /*seed=*/11);
  const AnalysisEngine warm(g);
  const std::vector<TaskId> tasks = warm.fusing_tasks();
  ASSERT_FALSE(tasks.empty());
  // Populate every cache layer.
  for (const TaskId t : tasks) (void)warm.disparity(t);
  for (const TaskId t : tasks) {
    const AnalysisEngine fresh(g);
    expect_reports_equal(warm.disparity(t), fresh.disparity(t));
  }
}

TEST(EngineCache, LatencyMatchesFreeFunctions) {
  const TaskGraph g = random_dag_graph(12, 3, /*seed=*/21);
  const ResponseTimeMap rtm = response_times_of(g);
  const AnalysisEngine engine(g);
  for (TaskId sink : g.sinks()) {
    for (const Path& chain : enumerate_source_chains(g, sink)) {
      for (const HopBoundMethod h : {HopBoundMethod::kNonPreemptive,
                                     HopBoundMethod::kSchedulingAgnostic}) {
        const LatencyReport r = engine.latency(chain, h);
        EXPECT_EQ(r.max_data_age, max_data_age_bound(g, chain, rtm, h));
        EXPECT_EQ(r.min_data_age, min_data_age_bound(g, chain, rtm));
        EXPECT_EQ(r.max_reaction_time,
                  max_reaction_time_bound(g, chain, rtm));
        const BackwardBounds b = backward_bounds(g, chain, rtm, h);
        EXPECT_EQ(r.backward.wcbt, b.wcbt);
        EXPECT_EQ(r.backward.bcbt, b.bcbt);
      }
    }
  }
}

TEST(EngineCache, BufferOptimizationMatchesFreeFunctions) {
  const TaskGraph g = diamond_graph();
  const ResponseTimeMap rtm = response_times_of(g);
  const AnalysisEngine engine(g);
  const TaskId sink = g.sinks().front();
  const std::vector<Path> chains = enumerate_source_chains(g, sink);
  ASSERT_GE(chains.size(), 2u);

  const BufferDesign expected_pair =
      design_buffer(g, chains[0], chains[1], rtm);
  const BufferDesign got_pair =
      engine.optimize_buffer_pair(chains[0], chains[1]);
  EXPECT_EQ(got_pair.buffer_on_lambda, expected_pair.buffer_on_lambda);
  EXPECT_EQ(got_pair.from, expected_pair.from);
  EXPECT_EQ(got_pair.to, expected_pair.to);
  EXPECT_EQ(got_pair.buffer_size, expected_pair.buffer_size);
  EXPECT_EQ(got_pair.shift, expected_pair.shift);
  EXPECT_EQ(got_pair.baseline_bound, expected_pair.baseline_bound);
  EXPECT_EQ(got_pair.optimized_bound, expected_pair.optimized_bound);

  const MultiBufferDesign expected_multi =
      design_buffers_for_task(g, sink, rtm);
  const MultiBufferDesign got_multi = engine.optimize_buffers(sink);
  EXPECT_EQ(got_multi.baseline_bound, expected_multi.baseline_bound);
  EXPECT_EQ(got_multi.optimized_bound, expected_multi.optimized_bound);
  ASSERT_EQ(got_multi.channels.size(), expected_multi.channels.size());
  for (std::size_t i = 0; i < got_multi.channels.size(); ++i) {
    EXPECT_EQ(got_multi.channels[i].from, expected_multi.channels[i].from);
    EXPECT_EQ(got_multi.channels[i].to, expected_multi.channels[i].to);
    EXPECT_EQ(got_multi.channels[i].buffer_size,
              expected_multi.channels[i].buffer_size);
  }
}

TEST(EngineCache, GraphIsImmutableOnceOwned) {
  TaskGraph g = diamond_graph();
  const AnalysisEngine engine(g);
  const TaskId sink = g.sinks().front();
  const DisparityReport before = engine.disparity(sink);

  // Mutating the caller's graph after construction must not affect the
  // engine: it owns a copy, not a reference.
  g.task(1).wcet = g.task(1).wcet + Duration::ms(5);
  g.task(1).period = g.task(1).period * 2;

  const DisparityReport after = engine.disparity(sink);
  expect_reports_equal(before, after);
  EXPECT_EQ(engine.graph().task(1).wcet, diamond_graph().task(1).wcet);
}

TEST(EngineCache, ValidatesGraphAtConstruction) {
  TaskGraph g = simple_chain_graph();
  g.task(1).period = Duration::zero();  // invalid: period must be positive
  EXPECT_THROW(AnalysisEngine{std::move(g)}, PreconditionError);
}

TEST(EngineCache, ExternalResponseTimeMode) {
  const TaskGraph g = diamond_graph();
  ResponseTimeMap rtm = response_times_of(g);
  const AnalysisEngine engine(g, rtm);

  EXPECT_EQ(engine.response_times(), rtm);
  EXPECT_TRUE(engine.schedulable());
  // No engine-owned RtaResult in this mode.
  EXPECT_THROW((void)engine.rta(), PreconditionError);
  EXPECT_EQ(engine.cache_stats().rta_runs, 0u);

  // Analyses agree with the free functions on the adopted map.
  const TaskId sink = g.sinks().front();
  expect_reports_equal(engine.disparity(sink),
                       analyze_time_disparity(g, sink, rtm));

  // An infinite WCRT in the adopted map flags unschedulability.
  rtm.back() = Duration::max();
  const AnalysisEngine unsched(g, std::move(rtm));
  EXPECT_FALSE(unsched.schedulable());

  // Size-mismatched maps are rejected.
  EXPECT_THROW(AnalysisEngine(g, ResponseTimeMap(g.num_tasks() - 1)),
               PreconditionError);
}

TEST(EngineCache, ChainSetReferenceIsStableAndCapIsHonored) {
  const TaskGraph g = random_dag_graph(14, 3, /*seed=*/31);
  const AnalysisEngine engine(g);
  const TaskId sink = g.sinks().front();
  const std::vector<Path>& first = engine.chains(sink);
  EXPECT_EQ(first, enumerate_source_chains(g, sink));
  // Populate unrelated cache entries, then re-request: same address.
  for (TaskId id = 0; id < g.num_tasks(); ++id) (void)engine.chains(id);
  const std::vector<Path>& again = engine.chains(sink);
  EXPECT_EQ(&first, &again);
  // A cap below |P| fails loudly, exactly like the free enumeration.
  if (first.size() > 1) {
    EXPECT_THROW((void)engine.chains(sink, first.size() - 1), CapacityError);
  }
  EXPECT_THROW((void)engine.chains(static_cast<TaskId>(g.num_tasks())),
               PreconditionError);
}

TEST(EngineCache, CacheStatsIsAShimOverMetrics) {
  // cache_stats() is a compatibility view of the engine's metrics registry:
  // every field must be byte-identical to the corresponding counter, at
  // every point in a session.
  const TaskGraph g = random_dag_graph(14, 3, /*seed=*/17);
  const AnalysisEngine engine(g);

  const auto expect_shim_matches = [&engine]() {
    const EngineCacheStats stats = engine.cache_stats();
    const obs::MetricsSnapshot m = engine.metrics();
    EXPECT_EQ(stats.rta_runs, m.counter("engine.rta.runs"));
    EXPECT_EQ(stats.hop_hits, m.counter("engine.hop.hits"));
    EXPECT_EQ(stats.hop_misses, m.counter("engine.hop.misses"));
    EXPECT_EQ(stats.chain_bound_hits, m.counter("engine.chain_bounds.hits"));
    EXPECT_EQ(stats.chain_bound_misses,
              m.counter("engine.chain_bounds.misses"));
    EXPECT_EQ(stats.chain_set_hits, m.counter("engine.chain_sets.hits"));
    EXPECT_EQ(stats.chain_set_misses, m.counter("engine.chain_sets.misses"));
    EXPECT_EQ(stats.report_hits, m.counter("engine.reports.hits"));
    EXPECT_EQ(stats.report_misses, m.counter("engine.reports.misses"));
  };

  expect_shim_matches();  // all zero before any analysis
  const std::vector<TaskId> fusing = engine.fusing_tasks();
  ASSERT_FALSE(fusing.empty());
  for (const TaskId t : fusing) (void)engine.disparity(t);
  expect_shim_matches();  // cold pass: misses
  for (const TaskId t : fusing) (void)engine.disparity(t);
  expect_shim_matches();  // warm pass: hits

  // Sanity on the values themselves: one RTA run, some activity on every
  // cache layer, and compute-time histograms populated by the misses.
  const EngineCacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.rta_runs, 1u);
  EXPECT_GT(stats.report_misses, 0u);
  EXPECT_GT(stats.report_hits, 0u);
  // disparity() counts one report lookup per call; its internal chain-bound
  // and hop reads are uncounted feeder traffic (DESIGN.md §9, "counting
  // contract"), so those counters stay zero under disparity-only load.
  EXPECT_EQ(stats.chain_bound_misses, 0u);
  EXPECT_EQ(stats.chain_bound_hits, 0u);
  EXPECT_EQ(stats.hop_misses, 0u);
  EXPECT_EQ(stats.hop_hits, 0u);
  const obs::MetricsSnapshot m = engine.metrics();
  for (const auto& [name, hist] : m.histograms) {
    if (name == "engine.rta.compute") {
      EXPECT_EQ(hist.count, 1u);
    }
    if (name == "engine.disparity.compute") {
      EXPECT_EQ(hist.count, stats.report_misses);
    }
  }
}

TEST(EngineCache, FusingTasksMatchesPathCounts) {
  const TaskGraph g = random_dag_graph(15, 3, /*seed=*/41);
  const AnalysisEngine engine(g);
  const std::vector<TaskId> fusing = engine.fusing_tasks();
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    const bool expected = count_source_chains(g, id) >= 2;
    const bool got =
        std::find(fusing.begin(), fusing.end(), id) != fusing.end();
    EXPECT_EQ(got, expected) << "task " << id;
  }
  // The paper's disparity is a property of fusion tasks; the sink of these
  // generated graphs always fuses at least two chains.
  EXPECT_FALSE(fusing.empty());
}

}  // namespace
}  // namespace ceta
