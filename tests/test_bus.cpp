#include "sched/bus.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "graph/paths.hpp"
#include "helpers.hpp"
#include "sched/npfp_rta.hpp"

namespace ceta {
namespace {

TEST(Bus, RewritesOnlyCrossingEdges) {
  const TaskGraph g = testing::diamond_graph();
  // Crossing edges: A(ecu0)->D(ecu1) and C(ecu0)->E(ecu1).
  BusConfig cfg;
  cfg.bus_resource = 100;
  const TaskGraph out = insert_can_messages(g, cfg);
  EXPECT_EQ(out.num_tasks(), g.num_tasks() + 2);
  EXPECT_EQ(out.num_edges(), g.num_edges() + 2);
  // Intact edges.
  EXPECT_TRUE(out.has_edge(0, 1));  // S->A (source edge)
  EXPECT_TRUE(out.has_edge(1, 2));  // A->C same ecu
  EXPECT_TRUE(out.has_edge(3, 4));  // D->E same ecu
  // Rewritten edges.
  EXPECT_FALSE(out.has_edge(1, 3));  // A->D now goes through a message
  EXPECT_FALSE(out.has_edge(2, 4));
}

TEST(Bus, MessageTaskParameters) {
  const TaskGraph g = testing::diamond_graph();
  BusConfig cfg;
  cfg.bus_resource = 100;
  cfg.msg_wcet = Duration::us(300);
  cfg.msg_bcet = Duration::us(150);
  const TaskGraph out = insert_can_messages(g, cfg);
  int bus_tasks = 0;
  for (TaskId id = 0; id < out.num_tasks(); ++id) {
    const Task& t = out.task(id);
    if (t.ecu != cfg.bus_resource) continue;
    ++bus_tasks;
    EXPECT_EQ(t.wcet, Duration::us(300));
    EXPECT_EQ(t.bcet, Duration::us(150));
    // Period inherited from the producer.
    ASSERT_EQ(out.predecessors(id).size(), 1u);
    EXPECT_EQ(t.period, out.task(out.predecessors(id)[0]).period);
  }
  EXPECT_EQ(bus_tasks, 2);
}

TEST(Bus, MessagePathPreserved) {
  const TaskGraph g = testing::diamond_graph();
  BusConfig cfg;
  const TaskGraph out = insert_can_messages(g, cfg);
  // Chains from S to E now have length 5 (one extra message hop each).
  const TaskId sink = 4;
  const auto chains = enumerate_source_chains(out, sink);
  ASSERT_EQ(chains.size(), 2u);
  // One chain crosses via A->D (message), the other via C->E (message).
  for (const Path& c : chains) {
    EXPECT_EQ(c.size(), 5u);
  }
}

TEST(Bus, ValidatesAndSchedulesWithBus) {
  const TaskGraph g = testing::diamond_graph();
  BusConfig cfg;
  const TaskGraph out = insert_can_messages(g, cfg);
  EXPECT_NO_THROW(out.validate());
  const RtaResult rta = analyze_response_times(out);
  EXPECT_TRUE(rta.all_schedulable);
}

TEST(Bus, ChannelSpecPreservedOnProducerSide) {
  TaskGraph g = testing::diamond_graph();
  g.set_buffer_size(1, 3, 4);  // A->D, a crossing edge
  BusConfig cfg;
  const TaskGraph out = insert_can_messages(g, cfg);
  // Find the message task between A and D.
  bool found = false;
  for (TaskId id = static_cast<TaskId>(g.num_tasks()); id < out.num_tasks();
       ++id) {
    if (out.has_edge(1, id) && out.has_edge(id, 3)) {
      EXPECT_EQ(out.channel(1, id).buffer_size, 4);
      EXPECT_EQ(out.channel(id, 3).buffer_size, 1);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Bus, RateMonotonicPrioritiesOnBus) {
  // Two crossing edges with different producer periods: the message of
  // the shorter-period producer gets the higher priority.
  const TaskGraph g = testing::diamond_graph();
  BusConfig cfg;
  const TaskGraph out = insert_can_messages(g, cfg);
  TaskId msg_fast = 0, msg_slow = 0;
  for (TaskId id = static_cast<TaskId>(g.num_tasks());
       id < out.num_tasks(); ++id) {
    if (out.task(id).period == Duration::ms(10)) msg_fast = id;  // from A
    if (out.task(id).period == Duration::ms(20)) msg_slow = id;  // from C
  }
  EXPECT_LT(out.task(msg_fast).priority, out.task(msg_slow).priority);
}

TEST(Bus, RejectsResourceCollision) {
  const TaskGraph g = testing::diamond_graph();
  BusConfig cfg;
  cfg.bus_resource = 0;  // collides with ECU 0
  EXPECT_THROW(insert_can_messages(g, cfg), PreconditionError);
}

TEST(Bus, RejectsBadTransmissionTimes) {
  const TaskGraph g = testing::diamond_graph();
  BusConfig cfg;
  cfg.msg_bcet = Duration::us(300);
  cfg.msg_wcet = Duration::us(200);
  EXPECT_THROW(insert_can_messages(g, cfg), PreconditionError);
}

TEST(Bus, NoCrossingEdgesIsIdentityShape) {
  TaskGraph g = testing::simple_chain_graph();  // all on ecu 0
  BusConfig cfg;
  const TaskGraph out = insert_can_messages(g, cfg);
  EXPECT_EQ(out.num_tasks(), g.num_tasks());
  EXPECT_EQ(out.num_edges(), g.num_edges());
}

}  // namespace
}  // namespace ceta
