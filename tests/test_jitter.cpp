// Release jitter: model validation, jitter-aware response times, bound
// degradation rules, and end-to-end safety against the simulator.

#include <gtest/gtest.h>

#include "chain/backward_bounds.hpp"
#include "common/error.hpp"
#include "disparity/analyzer.hpp"
#include "disparity/forkjoin.hpp"
#include "graph/serialize.hpp"
#include "helpers.hpp"
#include "sched/priority.hpp"
#include "sim/backward.hpp"
#include "sim/engine.hpp"

namespace ceta {
namespace {

TEST(JitterModel, ValidationRules) {
  Task t;
  t.name = "t";
  t.wcet = t.bcet = Duration::ms(1);
  t.period = Duration::ms(10);
  t.ecu = 0;
  t.jitter = Duration::ms(9);
  EXPECT_NO_THROW(validate_task(t));
  t.jitter = Duration::ms(10);  // must be < period
  EXPECT_THROW(validate_task(t), PreconditionError);
  t.jitter = Duration::ms(-1);
  EXPECT_THROW(validate_task(t), PreconditionError);
  t.jitter = Duration::ms(1);
  t.comm = CommSemantics::kLet;  // LET must be jitter-free
  EXPECT_THROW(validate_task(t), PreconditionError);
}

TEST(JitterRta, InterferenceGrowsWithJitter) {
  // hp task (W=2, T=10) with jitter J: the victim (W=3, T=20, lower prio)
  // sees (floor((w+J)/10)+1) hp instances.
  // J=0: w = 2, R = 5.  J=9ms: w=2 -> floor(11/10)+1 = 2 instances -> w=4:
  // floor(13/10)+1 = 2 -> 4. R = 7.
  std::vector<CompetingTask> hp = {{Duration::ms(2), Duration::ms(10)}};
  EXPECT_EQ(npfp_response_time(Duration::ms(3), Duration::ms(20),
                               Duration::zero(), hp),
            Duration::ms(5));
  hp[0].jitter = Duration::ms(9);
  EXPECT_EQ(npfp_response_time(Duration::ms(3), Duration::ms(20),
                               Duration::zero(), hp),
            Duration::ms(7));
}

TEST(JitterRta, OwnJitterAddsToResponse) {
  // Alone on the ECU: R = J + W.
  EXPECT_EQ(npfp_response_time(Duration::ms(2), Duration::ms(10),
                               Duration::zero(), {}, Duration::ms(4)),
            Duration::ms(6));
}

TEST(JitterRta, SourceResponseEqualsJitter) {
  TaskGraph g = testing::simple_chain_graph();
  g.task(0).jitter = Duration::ms(3);
  g.validate();
  const RtaResult rta = analyze_response_times(g);
  EXPECT_EQ(rta.response_time[0], Duration::ms(3));
}

TEST(JitterBounds, SourceHopWidensByJitter) {
  TaskGraph g = testing::simple_chain_graph();
  const ResponseTimeMap rtm0 = testing::response_times_of(g);
  const Duration base = wcbt_bound(g, {0, 1, 2}, rtm0);
  g.task(0).jitter = Duration::ms(4);
  const ResponseTimeMap rtm = testing::response_times_of(g);
  EXPECT_EQ(wcbt_bound(g, {0, 1, 2}, rtm), base + Duration::ms(4));
}

TEST(JitterBounds, SameEcuRefinementDisabledUnderJitter) {
  // The A->B hop uses the Lemma 4 hp refinement (θ = T) when jitter-free;
  // with jitter on A it must fall back to θ = T + R.
  TaskGraph g = testing::simple_chain_graph();
  const ResponseTimeMap rtm0 = testing::response_times_of(g);
  EXPECT_EQ(hop_bound(g, 1, 2, rtm0, HopBoundMethod::kNonPreemptive),
            Duration::ms(10));
  g.task(1).jitter = Duration::ms(2);
  const ResponseTimeMap rtm = testing::response_times_of(g);
  EXPECT_EQ(hop_bound(g, 1, 2, rtm, HopBoundMethod::kNonPreemptive),
            Duration::ms(10) + rtm[1]);
}

TEST(JitterBounds, SharedSourceFloorDisabled) {
  // Diamond with a jittered source: Theorem 1 must not floor to period
  // multiples any more (41ms + 2·J instead of 40ms).
  TaskGraph g = testing::diamond_graph();
  const ResponseTimeMap rtm0 = testing::response_times_of(g);
  const Duration floored = analyze_time_disparity(g, 4, rtm0).worst_case;
  EXPECT_EQ(floored, Duration::ms(40));

  g.task(0).jitter = Duration::ms(1);
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const Duration unfloored = analyze_time_disparity(g, 4, rtm).worst_case;
  // W grows by J on both chains (source hop) and the floor disappears:
  // O = 41 + 1 + 1 = ... W = 43, B = 1 -> O = 42.
  EXPECT_EQ(unfloored, Duration::ms(42));
}

TEST(JitterBounds, ForkJoinDegradesAtJitteredJoint) {
  // Jitter on the middle joint A forces the Theorem 2 fallback.
  TaskGraph g = testing::diamond_graph();
  g.task(1).jitter = Duration::ms(1);
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const ForkJoinBound fj =
      sdiff_pair_bound(g, {0, 1, 2, 4}, {0, 1, 3, 4}, rtm);
  EXPECT_TRUE(fj.degraded);
  // Degraded = independent windows, and the (jitter-free) shared source
  // flooring is also skipped inside the degraded path: bound = separation.
  EXPECT_EQ(fj.bound, fj.separation);
}

TEST(JitterBounds, NoDegradeWhenOnlyNonJointHasJitter) {
  // Jitter on branch task C (not a joint): recursion stays exact.
  TaskGraph g = testing::diamond_graph();
  g.task(2).jitter = Duration::ms(1);
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const ForkJoinBound fj =
      sdiff_pair_bound(g, {0, 1, 2, 4}, {0, 1, 3, 4}, rtm);
  EXPECT_FALSE(fj.degraded);
}

TEST(JitterEngine, ReleasesWithinJitterWindow) {
  TaskGraph g = testing::simple_chain_graph();
  g.task(1).jitter = Duration::ms(3);
  g.validate();
  SimOptions opt;
  opt.duration = Duration::ms(300);
  opt.record_trace = true;
  opt.seed = 5;
  const SimResult res = Simulator(g, opt).run();
  bool jittered = false;
  for (const JobRecord& j : res.trace.tasks[1].jobs) {
    const Duration nominal = Duration::ms(10) * j.index;
    EXPECT_GE(j.release, nominal);
    EXPECT_LE(j.release, nominal + Duration::ms(3));
    if (j.release != nominal) jittered = true;
  }
  EXPECT_TRUE(jittered);
  // Period of the *nominal* grid is preserved even under jitter.
  EXPECT_EQ(res.trace.tasks[1].jobs.size(), 30u);
}

TEST(JitterEngine, ZeroJitterStaysNominal) {
  const TaskGraph g = testing::simple_chain_graph();
  SimOptions opt;
  opt.duration = Duration::ms(100);
  opt.record_trace = true;
  const SimResult res = Simulator(g, opt).run();
  for (const JobRecord& j : res.trace.tasks[1].jobs) {
    EXPECT_EQ(j.release, Duration::ms(10) * j.index);
  }
}

class JitterSafety : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JitterSafety, BackwardTimesWithinBounds) {
  const std::uint64_t seed = GetParam();
  TaskGraph g = testing::random_dag_graph(10, 3, seed + 30000);
  // Random jitter on a subset of tasks (sources included).
  Rng rng(seed);
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    if (rng.flip(0.5)) {
      g.task(id).jitter = Duration::ns(
          rng.uniform_int(0, g.task(id).period.count() / 3));
    }
  }
  g.validate();
  const RtaResult rta = analyze_response_times(g);
  ASSERT_TRUE(rta.all_schedulable);
  const TaskId sink = g.sinks().front();

  SimOptions opt;
  opt.duration = Duration::s(2);
  opt.seed = seed;
  opt.record_trace = true;
  const SimResult res = Simulator(g, opt).run();
  for (const Path& chain : enumerate_source_chains(g, sink)) {
    const BackwardBounds b = backward_bounds(g, chain, rta.response_time);
    const BackwardMeasurement m =
        measured_backward_times(g, res.trace, chain, Duration::ms(200));
    for (Duration len : m.lengths) {
      EXPECT_LE(len, b.wcbt) << "seed " << seed;
      EXPECT_GE(len, b.bcbt) << "seed " << seed;
    }
  }
}

TEST_P(JitterSafety, DisparityWithinBounds) {
  const std::uint64_t seed = GetParam();
  TaskGraph g = testing::random_dag_graph(12, 3, seed + 31000);
  Rng rng(seed);
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    if (rng.flip(0.5)) {
      g.task(id).jitter = Duration::ns(
          rng.uniform_int(0, g.task(id).period.count() / 3));
    }
  }
  g.validate();
  const RtaResult rta = analyze_response_times(g);
  ASSERT_TRUE(rta.all_schedulable);
  const TaskId sink = g.sinks().front();
  const Duration sdiff =
      analyze_time_disparity(g, sink, rta.response_time).worst_case;

  randomize_offsets(g, rng);
  SimOptions opt;
  opt.duration = Duration::s(2);
  opt.seed = seed + 1;
  const SimResult res = Simulator(g, opt).run();
  EXPECT_LE(res.max_disparity[sink], sdiff) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, JitterSafety,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(JitterSerialize, RoundTrip) {
  TaskGraph g = testing::simple_chain_graph();
  g.task(1).jitter = Duration::us(1500);
  const std::string text = to_text(g);
  EXPECT_NE(text.find("J=1500000"), std::string::npos);
  const TaskGraph parsed = graph_from_text(text);
  EXPECT_EQ(parsed.task(1).jitter, Duration::us(1500));
  EXPECT_EQ(to_text(parsed), text);
}

TEST(JitterSerialize, MalformedAttributeRejected) {
  EXPECT_THROW(graph_from_text("task A 0 0 1 0 0 -1 J=xyz\n"),
               PreconditionError);
  EXPECT_THROW(graph_from_text("task A 0 0 1 0 0 -1 K=5\n"),
               PreconditionError);
}

}  // namespace
}  // namespace ceta
