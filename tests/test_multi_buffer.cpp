#include "disparity/multi_buffer.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/generator.hpp"
#include "helpers.hpp"
#include "sched/priority.hpp"
#include "sim/engine.hpp"
#include "waters/generator.hpp"

namespace ceta {
namespace {

/// Three sensor chains of very different latencies fused at one task:
/// a fast camera chain, a medium radar chain, a slow lidar chain.
TaskGraph three_sensor_graph() {
  TaskGraph g;
  auto source = [&g](const char* name, Duration period) {
    Task t;
    t.name = name;
    t.period = period;
    return g.add_task(t);
  };
  auto stage = [&g](const char* name, Duration period, EcuId ecu, int prio) {
    Task t;
    t.name = name;
    t.wcet = t.bcet = Duration::ms(1);
    t.period = period;
    t.ecu = ecu;
    t.priority = prio;
    return g.add_task(t);
  };
  const TaskId cam = source("cam", Duration::ms(10));
  const TaskId radar = source("radar", Duration::ms(50));
  const TaskId lidar = source("lidar", Duration::ms(100));
  const TaskId pc = stage("proc_cam", Duration::ms(10), 0, 0);
  const TaskId pr = stage("proc_radar", Duration::ms(50), 1, 0);
  const TaskId pl = stage("proc_lidar", Duration::ms(100), 2, 0);
  const TaskId fuse = stage("fuse", Duration::ms(50), 3, 0);
  g.add_edge(cam, pc);
  g.add_edge(radar, pr);
  g.add_edge(lidar, pl);
  g.add_edge(pc, fuse);
  g.add_edge(pr, fuse);
  g.add_edge(pl, fuse);
  g.validate();
  return g;
}

TEST(MultiBuffer, ReducesBoundOnThreeSensorFusion) {
  const TaskGraph g = three_sensor_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const TaskId fuse = 6;
  const MultiBufferDesign d = design_buffers_for_task(g, fuse, rtm);
  EXPECT_LT(d.optimized_bound, d.baseline_bound);
  // The fast camera chain gets the deepest buffer; the lidar chain none.
  ASSERT_FALSE(d.channels.empty());
  int cam_buffer = 1;
  for (const ChannelBuffer& cb : d.channels) {
    EXPECT_GT(cb.buffer_size, 1);
    EXPECT_EQ(cb.shift, g.task(cb.from).period * (cb.buffer_size - 1));
    if (cb.from == 0) cam_buffer = cb.buffer_size;  // cam -> proc_cam
  }
  EXPECT_GT(cam_buffer, 1);
}

TEST(MultiBuffer, OptimizedBoundIsSafe) {
  const TaskGraph g = three_sensor_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const TaskId fuse = 6;
  const MultiBufferDesign d = design_buffers_for_task(g, fuse, rtm);

  TaskGraph buffered = g;
  apply_multi_buffer_design(buffered, d);
  // Measure with several random offset assignments after a warm-up long
  // enough for every FIFO to fill.
  Duration warmup = Duration::s(2);
  Rng rng(42);
  Duration worst = Duration::zero();
  for (int run = 0; run < 3; ++run) {
    randomize_offsets(buffered, rng);
    SimOptions opt;
    opt.warmup = warmup;
    opt.duration = warmup + Duration::s(2);
    opt.seed = static_cast<std::uint64_t>(run) + 1;
    const SimResult res = Simulator(buffered, opt).run();
    worst = std::max(worst, res.max_disparity[fuse]);
  }
  EXPECT_LE(worst, d.optimized_bound);
  EXPECT_GT(worst, Duration::zero());
}

TEST(MultiBuffer, TrivialWhenFewerThanTwoChains) {
  const TaskGraph g = testing::simple_chain_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const MultiBufferDesign d = design_buffers_for_task(g, 2, rtm);
  EXPECT_TRUE(d.channels.empty());
  EXPECT_EQ(d.optimized_bound, d.baseline_bound);
}

TEST(MultiBuffer, TrivialWhenWindowsAlreadyAligned) {
  // Symmetric diamond: both chains share the head channel — one group,
  // nothing to shift.
  const TaskGraph g = testing::diamond_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const MultiBufferDesign d = design_buffers_for_task(g, 4, rtm);
  EXPECT_TRUE(d.channels.empty());
  EXPECT_EQ(d.optimized_bound, d.baseline_bound);
}

TEST(MultiBuffer, NeverWorseOnRandomFusionGraphs) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    TaskGraph g = sensor_fusion_pipeline(3, 2);
    WatersAssignOptions wopt;
    wopt.num_ecus = 3;
    assign_waters_parameters(g, wopt, rng);
    if (!analyze_response_times(g).all_schedulable) continue;
    const ResponseTimeMap rtm = testing::response_times_of(g);
    const TaskId fuse = g.sinks().front();
    const MultiBufferDesign d = design_buffers_for_task(g, fuse, rtm);
    EXPECT_LE(d.optimized_bound, d.baseline_bound) << "seed " << seed;
    // Designs with channels must strictly improve (by construction).
    if (!d.channels.empty()) {
      EXPECT_LT(d.optimized_bound, d.baseline_bound) << "seed " << seed;
    }
  }
}

TEST(MultiBuffer, RejectsPreBufferedHeadChannel) {
  TaskGraph g = three_sensor_graph();
  g.set_buffer_size(0, 3, 2);  // cam -> proc_cam
  const ResponseTimeMap rtm = testing::response_times_of(g);
  EXPECT_THROW(design_buffers_for_task(g, 6, rtm), PreconditionError);
}

TEST(MultiBuffer, PairwiseCaseAgreesWithAlgorithm1Direction) {
  // On a two-chain merge the multi-chain design buffers the same head
  // channel as Algorithm 1.
  const TaskGraph g = testing::random_two_chain_graph(5, 2, 77);
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const TaskId sink = g.sinks().front();
  const MultiBufferDesign d = design_buffers_for_task(g, sink, rtm);
  if (d.channels.empty()) return;  // aligned already
  ASSERT_EQ(d.channels.size(), 1u);
  EXPECT_TRUE(g.is_source(d.channels[0].from));
}

}  // namespace
}  // namespace ceta
