#include "common/time.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ceta {
namespace {

TEST(Duration, DefaultIsZero) {
  Duration d;
  EXPECT_EQ(d.count(), 0);
  EXPECT_EQ(d, Duration::zero());
}

TEST(Duration, NamedConstructorsScale) {
  EXPECT_EQ(Duration::ns(7).count(), 7);
  EXPECT_EQ(Duration::us(7).count(), 7'000);
  EXPECT_EQ(Duration::ms(7).count(), 7'000'000);
  EXPECT_EQ(Duration::s(7).count(), 7'000'000'000);
}

TEST(Duration, Literals) {
  using namespace literals;
  EXPECT_EQ(5_ms, Duration::ms(5));
  EXPECT_EQ(5_us, Duration::us(5));
  EXPECT_EQ(5_ns, Duration::ns(5));
  EXPECT_EQ(5_s, Duration::s(5));
}

TEST(Duration, Arithmetic) {
  const Duration a = Duration::ms(3);
  const Duration b = Duration::ms(5);
  EXPECT_EQ(a + b, Duration::ms(8));
  EXPECT_EQ(a - b, Duration::ms(-2));
  EXPECT_EQ(-a, Duration::ms(-3));
  EXPECT_EQ(a * 4, Duration::ms(12));
  EXPECT_EQ(4 * a, Duration::ms(12));
  EXPECT_EQ(Duration::ms(12) / 4, Duration::ms(3));
}

TEST(Duration, CompoundAssignment) {
  Duration a = Duration::ms(3);
  a += Duration::ms(2);
  EXPECT_EQ(a, Duration::ms(5));
  a -= Duration::ms(10);
  EXPECT_EQ(a, Duration::ms(-5));
}

TEST(Duration, Comparisons) {
  EXPECT_LT(Duration::ms(1), Duration::ms(2));
  EXPECT_LE(Duration::ms(2), Duration::ms(2));
  EXPECT_GT(Duration::ms(3), Duration::ms(2));
  EXPECT_LT(Duration::ms(-1), Duration::zero());
}

TEST(Duration, NegativeValuesAreFirstClass) {
  const Duration d = Duration::ms(-42);
  EXPECT_EQ(d.count(), -42'000'000);
  EXPECT_EQ(-d, Duration::ms(42));
}

TEST(Duration, UnitConversionsAsDouble) {
  EXPECT_DOUBLE_EQ(Duration::us(1500).as_ms(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::ms(2500).as_s(), 2.5);
  EXPECT_DOUBLE_EQ(Duration::ns(2500).as_us(), 2.5);
}

TEST(Duration, Ratio) {
  EXPECT_DOUBLE_EQ(Duration::ms(5).ratio(Duration::ms(20)), 0.25);
}

TEST(Duration, ToStringPicksUnits) {
  EXPECT_EQ(to_string(Duration::ns(5)), "5ns");
  EXPECT_EQ(to_string(Duration::us(5)), "5us");
  EXPECT_EQ(to_string(Duration::ms(5)), "5ms");
  EXPECT_EQ(to_string(Duration::s(5)), "5s");
  EXPECT_EQ(to_string(Duration::us(1500)), "1.5ms");
}

TEST(Duration, ToStringNegative) {
  EXPECT_EQ(to_string(Duration::ms(-5)), "-5ms");
}

TEST(Duration, StreamOutput) {
  std::ostringstream os;
  os << Duration::ms(12);
  EXPECT_EQ(os.str(), "12ms");
}

TEST(Duration, MinMaxSentinels) {
  EXPECT_LT(Duration::min(), Duration::ms(-1));
  EXPECT_GT(Duration::max(), Duration::s(1'000'000));
}

}  // namespace
}  // namespace ceta
