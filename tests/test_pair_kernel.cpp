// Pairwise kernel (disparity/pair_kernel.hpp): bit-identical equivalence
// with the reference analyzer, suffix-table exactness, truncation dedup,
// KeepPairs semantics and the intra-sink parallel reduction.

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chain/backward_bounds.hpp"
#include "disparity/analyzer.hpp"
#include "disparity/pair_kernel.hpp"
#include "engine/analysis_engine.hpp"
#include "engine/thread_pool.hpp"
#include "graph/paths.hpp"
#include "helpers.hpp"
#include "sched/npfp_rta.hpp"
#include "verify/fixture.hpp"
#include "verify/property_checker.hpp"

namespace ceta {
namespace {

using testing::diamond_graph;
using testing::random_dag_graph;
using testing::random_two_chain_graph;
using testing::response_times_of;

// ---------------------------------------------------------------------------
// Shared helpers

std::vector<DisparityMethod> all_methods() {
  return {DisparityMethod::kIndependent, DisparityMethod::kForkJoin};
}
std::vector<JointTruncation> all_truncations() {
  return {JointTruncation::kAuto, JointTruncation::kAlways,
          JointTruncation::kNever};
}
std::vector<KeepPairs> all_keep_modes() {
  return {KeepPairs::kAll, KeepPairs::kWorstOnly, KeepPairs::kTopK};
}

void expect_reports_identical(const DisparityReport& ref,
                              const DisparityReport& ker,
                              const std::string& what) {
  EXPECT_EQ(ref.worst_case, ker.worst_case) << what;
  EXPECT_EQ(ref.chains, ker.chains) << what;
  ASSERT_EQ(ref.pairs.size(), ker.pairs.size()) << what;
  for (std::size_t i = 0; i < ref.pairs.size(); ++i) {
    EXPECT_EQ(ref.pairs[i].chain_a, ker.pairs[i].chain_a)
        << what << " pair " << i;
    EXPECT_EQ(ref.pairs[i].chain_b, ker.pairs[i].chain_b)
        << what << " pair " << i;
    EXPECT_EQ(ref.pairs[i].bound, ker.pairs[i].bound) << what << " pair " << i;
  }
}

/// Compare kernel vs reference at every method × truncation × keep mode.
void expect_kernel_matches_reference(const TaskGraph& g, TaskId task,
                                     const ResponseTimeMap& rtm,
                                     const std::string& what,
                                     ThreadPool* pool = nullptr) {
  for (const DisparityMethod m : all_methods()) {
    for (const JointTruncation tr : all_truncations()) {
      for (const KeepPairs kp : all_keep_modes()) {
        DisparityOptions opt;
        opt.method = m;
        opt.truncation = tr;
        opt.keep_pairs = kp;
        opt.top_k = 3;
        const DisparityReport ref = analyze_time_disparity(g, task, rtm, opt);
        const DisparityReport ker =
            analyze_time_disparity_kernel(g, task, rtm, opt, pool);
        std::ostringstream os;
        os << what << " method=" << static_cast<int>(m)
           << " trunc=" << static_cast<int>(tr)
           << " keep=" << static_cast<int>(kp);
        expect_reports_identical(ref, ker, os.str());
      }
    }
  }
}

/// A chain of `stages` diamonds hanging off one source: 2^stages source
/// chains through the sink, every pair sharing the source and the merge
/// tasks (dense joints, heavy truncation dedup).
TaskGraph diamond_stack_graph(std::size_t stages) {
  TaskGraph g;
  Task s;
  s.name = "S";
  s.period = Duration::ms(20);
  TaskId prev = g.add_task(s);

  int prio[2] = {0, 0};
  auto mk = [&](const std::string& name, EcuId ecu) {
    Task t;
    t.name = name;
    t.wcet = Duration::us(200);
    t.bcet = Duration::us(100);
    t.period = Duration::ms(20);
    t.ecu = ecu;
    t.priority = prio[ecu]++;
    return g.add_task(t);
  };
  const TaskId f = mk("F", 0);
  g.add_edge(prev, f);
  prev = f;
  for (std::size_t i = 0; i < stages; ++i) {
    const std::string n = std::to_string(i);
    const TaskId a = mk("A" + n, 0);
    const TaskId b = mk("B" + n, 1);
    const TaskId m = mk("M" + n, 1);
    g.add_edge(prev, a);
    g.add_edge(prev, b);
    g.add_edge(a, m);
    g.add_edge(b, m);
    prev = m;
  }
  g.validate();
  return g;
}

// ---------------------------------------------------------------------------
// SuffixBoundTable

TEST(SuffixBoundTable, MatchesBackwardBoundsOnEveryInfix) {
  for (std::uint64_t seed : {11u, 12u, 13u, 14u}) {
    const TaskGraph g = random_dag_graph(10, 3, seed);
    const ResponseTimeMap rtm = response_times_of(g);
    const TaskId sink = g.sinks().front();
    const std::vector<Path> chains = enumerate_source_chains(g, sink);
    for (const Path& chain : chains) {
      const ChainView view{chain.data(), chain.size()};
      const SuffixBoundTable table(g, view, rtm,
                                   HopBoundMethod::kNonPreemptive);
      for (std::size_t first = 0; first < chain.size(); ++first) {
        for (std::size_t last = first; last < chain.size(); ++last) {
          const Path sub(chain.begin() + static_cast<std::ptrdiff_t>(first),
                         chain.begin() + static_cast<std::ptrdiff_t>(last) + 1);
          const BackwardBounds want = backward_bounds(g, sub, rtm);
          const BackwardBounds got = table.bounds(first, last);
          EXPECT_EQ(want.wcbt, got.wcbt)
              << "seed " << seed << " [" << first << ", " << last << "]";
          EXPECT_EQ(want.bcbt, got.bcbt)
              << "seed " << seed << " [" << first << ", " << last << "]";
        }
      }
    }
  }
}

TEST(SuffixBoundTable, SingleTaskSubChainIsZero) {
  const TaskGraph g = diamond_graph();
  const ResponseTimeMap rtm = response_times_of(g);
  const Path chain = enumerate_source_chains(g, 4).front();
  const SuffixBoundTable table(g, ChainView{chain.data(), chain.size()}, rtm,
                               HopBoundMethod::kNonPreemptive);
  for (std::size_t i = 0; i < chain.size(); ++i) {
    EXPECT_EQ(table.bounds(i, i).wcbt, Duration::zero());
    EXPECT_EQ(table.bounds(i, i).bcbt, Duration::zero());
  }
}

// ---------------------------------------------------------------------------
// ChainArena

TEST(ChainArena, DedupsIdenticalContent) {
  ChainArena arena;
  const std::vector<TaskId> a = {1, 2, 3, 4};
  const std::vector<TaskId> b = {1, 2, 3, 4};  // equal content, distinct buffer
  const std::vector<TaskId> c = {1, 2, 3};
  const auto ia = arena.intern(a.data(), a.size());
  const auto ib = arena.intern(b.data(), b.size());
  const auto ic = arena.intern(c.data(), c.size());
  EXPECT_EQ(ia, ib);
  EXPECT_NE(ia, ic);
  EXPECT_EQ(arena.num_chains(), 2u);
  EXPECT_EQ(arena.num_ids(), 7u);  // 4 + 3, the duplicate stored once
  EXPECT_EQ(arena.view(ia), (ChainView{a.data(), a.size()}));
}

TEST(ChainArena, ViewsStayValidAcrossBlockGrowth) {
  ChainArena arena;
  // Force several storage blocks (16K ids per block) and re-check every
  // view afterwards: block allocation must never move earlier chains.
  std::vector<ChainArena::ChainId> ids;
  std::vector<TaskId> buf(8);
  for (TaskId n = 0; n < 6000; ++n) {
    for (std::size_t k = 0; k < buf.size(); ++k) {
      buf[k] = n * 8 + static_cast<TaskId>(k);
    }
    ids.push_back(arena.intern(buf.data(), buf.size()));
  }
  EXPECT_EQ(arena.num_chains(), 6000u);
  EXPECT_EQ(arena.num_ids(), 48000u);
  for (TaskId n = 0; n < 6000; ++n) {
    const ChainView v = arena.view(ids[n]);
    ASSERT_EQ(v.size, 8u);
    EXPECT_EQ(v.front(), n * 8);
    EXPECT_EQ(v.back(), n * 8 + 7);
  }
}

// ---------------------------------------------------------------------------
// Kernel ≡ reference

TEST(PairKernel, MatchesReferenceOnHandGraphs) {
  {
    const TaskGraph g = diamond_graph();
    expect_kernel_matches_reference(g, 4, response_times_of(g), "diamond");
  }
  {
    const TaskGraph g = diamond_stack_graph(3);
    expect_kernel_matches_reference(g, g.sinks().front(), response_times_of(g),
                                    "diamond stack");
  }
}

TEST(PairKernel, MatchesReferenceOnCommittedFixtures) {
  // Every pair_kernel fixture in tests/fixtures/ replays through the same
  // pure check_property() entry point a shrunken counterexample would use.
  const std::filesystem::path dir = CETA_TEST_FIXTURE_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  std::size_t checked = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".txt") continue;
    std::ifstream in(entry.path());
    ASSERT_TRUE(in) << entry.path();
    std::stringstream text;
    text << in.rdbuf();
    const verify::Fixture f = verify::fixture_from_text(text.str());
    verify::ProbeConfig cfg;
    cfg.sim_seed = f.sim_seed;
    const verify::PropertyOutcome out =
        verify::check_property(f.property, f.graph, verify::fixture_task(f),
                               cfg);
    EXPECT_EQ(out.status, verify::PropertyOutcome::Status::kHolds)
        << entry.path() << ": " << out.detail;
    ++checked;
  }
  EXPECT_GE(checked, 3u);
}

TEST(PairKernel, MatchesReferenceAcross100WatersGraphs) {
  // 100 seeded WATERS draws, each compared field-wise at every
  // DisparityMethod × JointTruncation × KeepPairs combination.
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const TaskGraph g = seed % 2 == 0
                            ? random_dag_graph(6 + seed % 7, 3, seed)
                            : random_two_chain_graph(3 + seed % 4, 2, seed);
    const TaskId sink = g.sinks().front();
    expect_kernel_matches_reference(g, sink, response_times_of(g),
                                    "seed " + std::to_string(seed));
  }
}

TEST(PairKernel, ZeroAndOneChainSinks) {
  // A source task has no source chains; a mid-chain task has exactly one.
  // Both degenerate reports must still match the reference.
  const TaskGraph g = testing::simple_chain_graph();
  const ResponseTimeMap rtm = response_times_of(g);
  for (TaskId t : {TaskId{0}, TaskId{1}, TaskId{2}}) {
    const DisparityReport ref = analyze_time_disparity(g, t, rtm);
    const DisparityReport ker = analyze_time_disparity_kernel(g, t, rtm);
    expect_reports_identical(ref, ker, "task " + std::to_string(t));
    EXPECT_EQ(ker.worst_case, Duration::zero());
    EXPECT_TRUE(ker.pairs.empty());
  }
}

// ---------------------------------------------------------------------------
// KeepPairs semantics

TEST(PairKernel, KeepPairsModesAgreeWithFilteredAll) {
  const TaskGraph g = diamond_stack_graph(3);  // 8 chains, 28 pairs
  const ResponseTimeMap rtm = response_times_of(g);
  const TaskId sink = g.sinks().front();

  DisparityOptions all;
  const DisparityReport full = analyze_time_disparity_kernel(g, sink, rtm, all);
  ASSERT_EQ(full.pairs.size(), 28u);

  for (const std::size_t k : {std::size_t{1}, std::size_t{5}, std::size_t{28},
                              std::size_t{100}}) {
    DisparityOptions opt;
    opt.keep_pairs = KeepPairs::kTopK;
    opt.top_k = k;
    const DisparityReport top =
        analyze_time_disparity_kernel(g, sink, rtm, opt);
    std::vector<PairDisparity> want = full.pairs;
    apply_keep_pairs(want, opt);
    ASSERT_EQ(top.pairs.size(), std::min(k, full.pairs.size()));
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(top.pairs[i].chain_a, want[i].chain_a) << "k=" << k;
      EXPECT_EQ(top.pairs[i].chain_b, want[i].chain_b) << "k=" << k;
      EXPECT_EQ(top.pairs[i].bound, want[i].bound) << "k=" << k;
    }
    EXPECT_EQ(top.worst_case, full.worst_case);
  }

  DisparityOptions worst;
  worst.keep_pairs = KeepPairs::kWorstOnly;
  const DisparityReport w = analyze_time_disparity_kernel(g, sink, rtm, worst);
  ASSERT_EQ(w.pairs.size(), 1u);
  EXPECT_EQ(w.pairs.front().bound, full.worst_case);
  EXPECT_EQ(w.worst_case, full.worst_case);
}

// ---------------------------------------------------------------------------
// Parallel reduction

TEST(PairKernel, ParallelMatchesSerialBitForBit) {
  const TaskGraph g = diamond_stack_graph(6);  // 64 chains, 2016 pairs
  const ResponseTimeMap rtm = response_times_of(g);
  const TaskId sink = g.sinks().front();
  ThreadPool pool(4);
  for (const KeepPairs kp : all_keep_modes()) {
    DisparityOptions opt;
    opt.keep_pairs = kp;
    opt.top_k = 7;
    const DisparityReport serial =
        analyze_time_disparity_kernel(g, sink, rtm, opt, nullptr);
    const DisparityReport parallel =
        analyze_time_disparity_kernel(g, sink, rtm, opt, &pool);
    expect_reports_identical(serial, parallel,
                             "keep=" + std::to_string(static_cast<int>(kp)));
    const DisparityReport ref = analyze_time_disparity(g, sink, rtm, opt);
    expect_reports_identical(ref, parallel,
                             "ref keep=" +
                                 std::to_string(static_cast<int>(kp)));
  }
}

// ---------------------------------------------------------------------------
// Engine integration

TEST(PairKernel, EngineDisparityMatchesFreeFunctionAtEveryKeepMode) {
  const TaskGraph g = diamond_stack_graph(4);
  const ResponseTimeMap rtm = response_times_of(g);
  const TaskId sink = g.sinks().front();
  const AnalysisEngine engine(g);
  for (const DisparityMethod m : all_methods()) {
    for (const KeepPairs kp : all_keep_modes()) {
      DisparityOptions opt;
      opt.method = m;
      opt.keep_pairs = kp;
      opt.top_k = 4;
      const DisparityReport free_fn = analyze_time_disparity(g, sink, rtm, opt);
      const DisparityReport cached = engine.disparity(sink, opt);
      expect_reports_identical(free_fn, cached,
                               "engine keep=" +
                                   std::to_string(static_cast<int>(kp)));
      // Second call must hit the report cache and still be identical.
      expect_reports_identical(free_fn, engine.disparity(sink, opt), "cached");
    }
  }
  // Distinct keep modes must not alias one cache entry.
  const auto stats = engine.cache_stats();
  EXPECT_GE(stats.report_misses, 6u);
  EXPECT_GE(stats.report_hits, 6u);
}

}  // namespace
}  // namespace ceta
