// ServiceCore — the transport-independent cetad protocol engine.
//
// Everything here drives the service through the real wire payloads
// (JSON text in, JSON text out) with no sockets: session lifecycle and
// admission control, the error-code contract (every client-provocable
// failure is a structured reply), subscription exactness (pushes fire for
// exactly the dirtied sinks of a commit, with values matching a fresh
// engine), rollback message preservation, idle eviction, and a
// multi-threaded stress run for the TSan lane.

#include "service/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "engine/analysis_engine.hpp"
#include "graph/serialize.hpp"
#include "obs/json_writer.hpp"

namespace ceta::service {
namespace {

// Two independent fusion sinks sharing a source: mutating A (or B) can
// only dirty F1; mutating D only F2; mutating anything reachable from S1
// via C dirties F2.  Task ids follow declaration order:
//   S0=0 S1=1 S2=2 A=3 B=4 C=5 D=6 F1=7 F2=8
constexpr char kTwoSinkGraph[] =
    "task S0 0 0 10000000 0 0 -1\n"
    "task S1 0 0 12000000 0 0 -1\n"
    "task S2 0 0 15000000 0 0 -1\n"
    "task A 1000000 500000 10000000 0 0 0\n"
    "task B 1000000 500000 12000000 0 1 0\n"
    "task C 1000000 500000 12000000 0 0 1\n"
    "task D 1000000 500000 15000000 0 1 1\n"
    "task F1 2000000 1000000 30000000 0 0 2\n"
    "task F2 2000000 1000000 30000000 0 1 2\n"
    "edge S0 A\nedge S1 B\nedge S1 C\nedge S2 D\n"
    "edge A F1\nedge B F1\nedge C F2\nedge D F2\n";

constexpr TaskId kSinkF1 = 7;
constexpr TaskId kSinkF2 = 8;

// Three chains fuse at F: 3 chain pairs, so a max_reply_pairs=1 core must
// truncate the serialized pair list.
constexpr char kThreeSourceGraph[] =
    "task S0 0 0 10000000 0 0 -1\n"
    "task S1 0 0 12000000 0 0 -1\n"
    "task S2 0 0 15000000 0 0 -1\n"
    "task A 1000000 500000 10000000 0 0 0\n"
    "task B 1000000 500000 12000000 0 1 0\n"
    "task C 1000000 500000 15000000 0 2 0\n"
    "task F 2000000 1000000 30000000 0 0 1\n"
    "edge S0 A\nedge S1 B\nedge S2 C\n"
    "edge A F\nedge B F\nedge C F\n";

std::string quoted_graph(const char* text) {
  return "\"" + obs::JsonWriter::escape(text) + "\"";
}

std::string request(std::int64_t id, const std::string& op,
                    const std::string& body = "") {
  std::string r = "{\"id\":" + std::to_string(id) + ",\"op\":\"" + op + "\"";
  if (!body.empty()) r += "," + body;
  return r + "}";
}

JsonValue reply_of(const Outcome& out) { return parse_json(out.reply); }

/// Assert an ok reply and return its result.
JsonValue expect_ok(const Outcome& out) {
  const JsonValue doc = reply_of(out);
  EXPECT_TRUE(doc.at("ok").boolean) << out.reply;
  return doc.at("result");
}

/// Assert an error reply with `code` and return its message.
std::string expect_error(const Outcome& out, const std::string& code) {
  const JsonValue doc = reply_of(out);
  EXPECT_FALSE(doc.at("ok").boolean) << out.reply;
  EXPECT_EQ(doc.at("error").at("code").string, code) << out.reply;
  return doc.at("error").at("message").string;
}

void create(ServiceCore& core, const std::string& name, const char* graph,
            ClientId client = 1) {
  expect_ok(core.handle(
      client, request(1, "create_session",
                      "\"name\":\"" + name +
                          "\",\"graph\":" + quoted_graph(graph))));
}

// --- lifecycle & admission --------------------------------------------------

TEST(ServiceLifecycle, PingAndUnknownOp) {
  ServiceCore core;
  const JsonValue r = expect_ok(core.handle(1, request(1, "ping")));
  EXPECT_TRUE(r.at("pong").boolean);
  expect_error(core.handle(1, request(2, "frobnicate")), "bad_request");
}

TEST(ServiceLifecycle, CreateQueryDropSession) {
  ServiceCore core;
  const JsonValue created = expect_ok(core.handle(
      1, request(1, "create_session",
                 "\"name\":\"g\",\"graph\":" + quoted_graph(kTwoSinkGraph))));
  EXPECT_EQ(created.at("name").string, "g");
  EXPECT_EQ(created.at("tasks").number, 9.0);
  EXPECT_EQ(created.at("edges").number, 8.0);
  EXPECT_EQ(core.session_count(), 1u);

  // Duplicate names are a structured failure, not an exception.
  expect_error(core.handle(1, request(2, "create_session",
                                      "\"name\":\"g\",\"graph\":" +
                                          quoted_graph(kTwoSinkGraph))),
               "session_exists");

  const JsonValue listed = expect_ok(core.handle(1, request(3, "list_sessions")));
  EXPECT_EQ(listed.at("count").number, 1.0);
  EXPECT_EQ(listed.at("sessions").items()[0].at("name").string, "g");

  // The graph dump round-trips through the text serializer.
  const JsonValue dump = expect_ok(
      core.handle(1, request(4, "graph", "\"session\":\"g\"")));
  EXPECT_EQ(graph_from_text(dump.at("text").string).num_tasks(), 9u);

  expect_ok(core.handle(1, request(5, "drop_session", "\"name\":\"g\"")));
  EXPECT_EQ(core.session_count(), 0u);
  expect_error(core.handle(1, request(6, "drop_session", "\"name\":\"g\"")),
               "no_such_session");
  expect_error(core.handle(1, request(7, "disparity",
                                      "\"session\":\"g\",\"sink\":\"F1\"")),
               "no_such_session");
}

TEST(ServiceLifecycle, SessionCapGivesTooManySessions) {
  ServiceConfig cfg;
  cfg.max_sessions = 2;
  ServiceCore core(cfg);
  create(core, "a", kTwoSinkGraph);
  create(core, "b", kTwoSinkGraph);
  expect_error(core.handle(1, request(9, "create_session",
                                      "\"name\":\"c\",\"graph\":" +
                                          quoted_graph(kTwoSinkGraph))),
               "too_many_sessions");
  EXPECT_EQ(core.session_count(), 2u);
}

TEST(ServiceLifecycle, ZeroQuotaRejectsEverySessionOpAsBusy) {
  ServiceConfig cfg;
  cfg.max_inflight_per_session = 0;
  ServiceCore core(cfg);
  create(core, "g", kTwoSinkGraph);
  expect_error(core.handle(1, request(2, "disparity",
                                      "\"session\":\"g\",\"sink\":\"F1\"")),
               "busy");
  expect_error(core.handle(1, request(3, "graph", "\"session\":\"g\"")),
               "busy");
}

TEST(ServiceLifecycle, IdleEvictionSparesActiveAndSubscribedSessions) {
  ServiceCore core;
  create(core, "touched", kTwoSinkGraph);
  create(core, "subscribed", kTwoSinkGraph);
  create(core, "idle", kTwoSinkGraph);

  // "touched" is used at tick 100; "subscribed" holds a subscription from
  // tick 1; "idle" is never addressed after creation.
  expect_ok(core.handle(1, request(2, "graph", "\"session\":\"touched\""),
                        /*tick=*/100));
  expect_ok(core.handle(
      2, request(3, "subscribe", "\"session\":\"subscribed\",\"sink\":\"F1\""),
      /*tick=*/1));

  const std::vector<std::string> evicted = core.evict_idle(/*older_than=*/50);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], "idle");
  EXPECT_EQ(core.session_count(), 2u);
}

// --- error contract ---------------------------------------------------------

TEST(ServiceErrors, MalformedPayloadsGetStructuredRepliesWithNullId) {
  ServiceCore core;
  for (const char* payload :
       {"", "not json", "{\"op\":", "[1,2,3]", "42", "{\"no_op\": true}"}) {
    const Outcome out = core.handle(1, payload);
    const JsonValue doc = reply_of(out);
    EXPECT_FALSE(doc.at("ok").boolean) << payload;
    EXPECT_EQ(doc.at("error").at("code").string, "bad_request") << payload;
    EXPECT_TRUE(doc.at("id").is_null()) << payload;
    EXPECT_TRUE(out.pushes.empty());
  }
  // An id that did parse is echoed back even when the body is bad.
  const JsonValue doc =
      reply_of(core.handle(1, "{\"id\": 77, \"op\": \"disparity\"}"));
  EXPECT_EQ(doc.at("id").number, 77.0);
  EXPECT_FALSE(doc.at("ok").boolean);
}

TEST(ServiceErrors, UnknownTasksAndBadOptionsAndBadGraphs) {
  ServiceCore core;
  create(core, "g", kTwoSinkGraph);

  const std::string msg = expect_error(
      core.handle(1, request(2, "disparity",
                             "\"session\":\"g\",\"sink\":\"NOPE\"")),
      "invalid_argument");
  EXPECT_NE(msg.find("NOPE"), std::string::npos);

  expect_error(core.handle(1, request(3, "disparity",
                                      "\"session\":\"g\",\"sink\":\"F1\","
                                      "\"options\":{\"method\":\"sideways\"}")),
               "bad_request");
  expect_error(core.handle(1, request(4, "disparity",
                                      "\"session\":\"g\",\"sink\":99")),
               "invalid_argument");
  // A chain that is not a path of the graph.
  expect_error(
      core.handle(1, request(5, "latency",
                             "\"session\":\"g\",\"chain\":[\"A\",\"D\"]")),
      "invalid_argument");
  // Graph text that fails to parse surfaces the serializer's diagnostic.
  expect_error(core.handle(1, request(6, "create_session",
                                      "\"name\":\"bad\",\"graph\":\"task\"")),
               "invalid_argument");
  EXPECT_EQ(core.session_count(), 1u);
}

TEST(ServiceErrors, OversizedReplyNamesTheCap) {
  ServiceConfig cfg;
  cfg.max_frame_bytes = 4096;
  ServiceCore core(cfg);
  const JsonValue doc = parse_json(core.oversized_reply(999'999));
  EXPECT_FALSE(doc.at("ok").boolean);
  EXPECT_EQ(doc.at("error").at("code").string, "oversized_frame");
  EXPECT_NE(doc.at("error").at("message").string.find("999999"),
            std::string::npos);
  EXPECT_NE(doc.at("error").at("message").string.find("4096"),
            std::string::npos);
}

// --- rollback / exception-safety --------------------------------------------

TEST(ServiceRollback, RejectedMutationPreservesMessageAndState) {
  ServiceCore core;
  create(core, "g", kTwoSinkGraph);

  const JsonValue before = expect_ok(core.handle(
      1, request(2, "disparity", "\"session\":\"g\",\"sink\":\"F1\"")));
  const JsonValue dump_before =
      expect_ok(core.handle(1, request(3, "graph", "\"session\":\"g\"")));

  // bcet > wcet fails parameter validation: the engine rejects the batch
  // with the strong guarantee and the original diagnostic must reach the
  // client verbatim (not a generic "mutation failed").
  const std::string msg = expect_error(
      core.handle(1, request(4, "mutate",
                             "\"session\":\"g\",\"edits\":[{\"kind\":"
                             "\"set_wcet_range\",\"task\":\"A\","
                             "\"bcet_ns\":5000000,\"wcet_ns\":1000000}]")),
      "invalid_argument");
  EXPECT_FALSE(msg.empty());

  // A structural batch (add_edge creating a cycle) exercises the
  // snapshot-and-rollback path; the validator's message survives it.
  const std::string cyc = expect_error(
      core.handle(1, request(5, "mutate",
                             "\"session\":\"g\",\"edits\":[{\"kind\":"
                             "\"add_edge\",\"from\":\"F1\",\"to\":\"A\"}]")),
      "invalid_argument");
  EXPECT_FALSE(cyc.empty());

  // State is exactly as before either failure.
  const JsonValue after = expect_ok(core.handle(
      1, request(6, "disparity", "\"session\":\"g\",\"sink\":\"F1\"")));
  EXPECT_EQ(after.at("worst_case_ns").number, before.at("worst_case_ns").number);
  const JsonValue dump_after =
      expect_ok(core.handle(1, request(7, "graph", "\"session\":\"g\"")));
  EXPECT_EQ(dump_after.at("text").string, dump_before.at("text").string);
}

TEST(ServiceMutate, SetPolicyRoundTripsThroughGraphDump) {
  ServiceCore core;
  create(core, "g", kTwoSinkGraph);

  // ECU 0 hosts A and B (both feeding F1 only): flipping its policy must
  // commit, dirty F1 alone, and round-trip through the graph dump.
  const JsonValue r = expect_ok(core.handle(
      1, request(2, "mutate",
                 "\"session\":\"g\",\"edits\":[{\"kind\":\"set_policy\","
                 "\"ecu\":0,\"policy\":\"edf\"}]")));
  EXPECT_EQ(r.at("edits").number, 1.0);
  std::set<double> dirty;
  for (const JsonValue& d : r.at("dirty_sinks").items()) dirty.insert(d.number);
  EXPECT_TRUE(dirty.count(kSinkF1));
  EXPECT_FALSE(dirty.count(kSinkF2));

  const JsonValue dump =
      expect_ok(core.handle(1, request(3, "graph", "\"session\":\"g\"")));
  EXPECT_NE(dump.at("text").string.find("policy 0 edf"), std::string::npos);
  EXPECT_EQ(graph_from_text(dump.at("text").string).policy(0),
            SchedPolicy::kEdf);

  // Setting the default back erases the directive from the dump.
  expect_ok(core.handle(
      1, request(4, "mutate",
                 "\"session\":\"g\",\"edits\":[{\"kind\":\"set_policy\","
                 "\"ecu\":0,\"policy\":\"nonpreemptive\"}]")));
  const JsonValue dump2 =
      expect_ok(core.handle(1, request(5, "graph", "\"session\":\"g\"")));
  EXPECT_EQ(dump2.at("text").string.find("policy"), std::string::npos);
}

TEST(ServiceMutate, SetPolicyRejectsBadArguments) {
  ServiceCore core;
  create(core, "g", kTwoSinkGraph);
  const JsonValue dump_before =
      expect_ok(core.handle(1, request(2, "graph", "\"session\":\"g\"")));

  // Unknown policy name: schema-level rejection, nothing committed.
  expect_error(core.handle(
                   1, request(3, "mutate",
                              "\"session\":\"g\",\"edits\":[{\"kind\":"
                              "\"set_policy\",\"ecu\":0,\"policy\":\"rr\"}]")),
               "bad_request");
  // kNoEcu: the engine's precondition surfaces as invalid_argument.
  expect_error(core.handle(
                   1, request(4, "mutate",
                              "\"session\":\"g\",\"edits\":[{\"kind\":"
                              "\"set_policy\",\"ecu\":-1,\"policy\":\"edf\"}]")),
               "invalid_argument");

  const JsonValue dump_after =
      expect_ok(core.handle(1, request(5, "graph", "\"session\":\"g\"")));
  EXPECT_EQ(dump_after.at("text").string, dump_before.at("text").string);
}

// --- subscriptions ----------------------------------------------------------

/// One full subscribe → mutate → push cycle on the two-sink graph.
class ServiceSubscription : public ::testing::Test {
 protected:
  void SetUp() override {
    create(core, "g", kTwoSinkGraph);
    // Client 1 watches both sinks.
    const JsonValue s1 = expect_ok(core.handle(
        1, request(2, "subscribe", "\"session\":\"g\",\"sink\":\"F1\"")));
    EXPECT_EQ(s1.at("sink").number, static_cast<double>(kSinkF1));
    baseline_f1 = s1.at("worst_case_ns").number;
    const JsonValue s2 = expect_ok(core.handle(
        1, request(3, "subscribe", "\"session\":\"g\",\"sink\":\"F2\"")));
    baseline_f2 = s2.at("worst_case_ns").number;
  }

  /// Mutate one task's WCET range (from client 2) and return the outcome.
  Outcome bump_wcet(const std::string& task, long wcet_ns) {
    return core.handle(
        2, request(10, "mutate",
                   "\"session\":\"g\",\"edits\":[{\"kind\":\"set_wcet_range\","
                   "\"task\":\"" +
                       task + "\",\"bcet_ns\":500000,\"wcet_ns\":" +
                       std::to_string(wcet_ns) + "}]"));
  }

  /// The service's current answer for a sink.
  double query(const std::string& sink) {
    return expect_ok(core.handle(3, request(11, "disparity",
                                            "\"session\":\"g\",\"sink\":\"" +
                                                sink + "\"")))
        .at("worst_case_ns")
        .number;
  }

  ServiceCore core;
  double baseline_f1 = 0;
  double baseline_f2 = 0;
};

TEST_F(ServiceSubscription, PushesFireForExactlyTheDirtiedSink) {
  // Mutating A dirties F1 only.
  const Outcome out = bump_wcet("A", 3'000'000);
  const JsonValue result = expect_ok(out);

  const auto& dirty = result.at("dirty_sinks").items();
  std::set<double> dirty_set;
  for (const JsonValue& d : dirty) dirty_set.insert(d.number);
  EXPECT_TRUE(dirty_set.count(kSinkF1)) << out.reply;
  EXPECT_FALSE(dirty_set.count(kSinkF2)) << out.reply;

  ASSERT_EQ(out.pushes.size(), 1u);
  EXPECT_EQ(out.pushes[0].client, 1u);
  const JsonValue push = parse_json(out.pushes[0].payload);
  EXPECT_EQ(push.at("push").string, "disparity");
  EXPECT_EQ(push.at("session").string, "g");
  EXPECT_EQ(push.at("sink").number, static_cast<double>(kSinkF1));
  EXPECT_EQ(push.at("epoch").number, result.at("epoch").number);
  EXPECT_GE(push.at("serial").number, 1.0);

  // The pushed value is the committed state's value: it matches both a
  // re-query through the service and a fresh engine on the dumped graph.
  EXPECT_EQ(push.at("worst_case_ns").number, query("F1"));
  const JsonValue dump =
      expect_ok(core.handle(3, request(12, "graph", "\"session\":\"g\"")));
  AnalysisEngine fresh(graph_from_text(dump.at("text").string));
  EXPECT_EQ(push.at("worst_case_ns").number,
            static_cast<double>(fresh.disparity(kSinkF1).worst_case.count()));

  // Mutating D dirties F2 only.
  const Outcome out2 = bump_wcet("D", 3'000'000);
  const JsonValue result2 = expect_ok(out2);
  std::set<double> dirty2;
  for (const JsonValue& d : result2.at("dirty_sinks").items()) {
    dirty2.insert(d.number);
  }
  EXPECT_TRUE(dirty2.count(kSinkF2));
  EXPECT_FALSE(dirty2.count(kSinkF1));
  ASSERT_EQ(out2.pushes.size(), 1u);
  const JsonValue push2 = parse_json(out2.pushes[0].payload);
  EXPECT_EQ(push2.at("sink").number, static_cast<double>(kSinkF2));
  EXPECT_EQ(push2.at("worst_case_ns").number, query("F2"));
}

TEST_F(ServiceSubscription, OffsetMutationsDirtyNothingAndPushNothing) {
  // Offsets enter no cached artifact (DESIGN.md §9): committing one must
  // produce an epoch but neither dirty sinks nor pushes.
  const Outcome out = core.handle(
      2, request(10, "mutate",
                 "\"session\":\"g\",\"edits\":[{\"kind\":\"set_offset\","
                 "\"task\":\"A\",\"offset_ns\":1000000}]"));
  const JsonValue result = expect_ok(out);
  EXPECT_TRUE(result.at("dirty_sinks").items().empty());
  EXPECT_TRUE(out.pushes.empty());
}

TEST_F(ServiceSubscription, UnsubscribeAndDisconnectStopPushes) {
  const JsonValue r = expect_ok(core.handle(
      1, request(4, "unsubscribe", "\"session\":\"g\",\"sink\":\"F1\"")));
  EXPECT_TRUE(r.at("removed").boolean);
  EXPECT_EQ(bump_wcet("A", 2'500'000).pushes.size(), 0u);

  // F2 is still watched...
  EXPECT_EQ(bump_wcet("D", 2'500'000).pushes.size(), 1u);
  // ...until the client disconnects, which drops every subscription.
  core.disconnect(1);
  EXPECT_EQ(bump_wcet("D", 2'600'000).pushes.size(), 0u);

  // Unsubscribing a never-subscribed sink reports removed: false.
  const JsonValue r2 = expect_ok(core.handle(
      9, request(5, "unsubscribe", "\"session\":\"g\",\"sink\":\"F1\"")));
  EXPECT_FALSE(r2.at("removed").boolean);
}

TEST_F(ServiceSubscription, TwoSubscribersBothReceiveTheSamePayload) {
  expect_ok(core.handle(
      7, request(6, "subscribe", "\"session\":\"g\",\"sink\":\"F1\"")));
  const Outcome out = bump_wcet("A", 4'000'000);
  ASSERT_EQ(out.pushes.size(), 2u);
  std::set<ClientId> clients{out.pushes[0].client, out.pushes[1].client};
  EXPECT_EQ(clients, (std::set<ClientId>{1u, 7u}));
  EXPECT_EQ(out.pushes[0].payload, out.pushes[1].payload);
}

// --- reply truncation -------------------------------------------------------

TEST(ServiceReplies, PairListsAreCappedAndFlagged) {
  ServiceConfig cfg;
  cfg.max_reply_pairs = 1;
  ServiceCore core(cfg);
  create(core, "g", kThreeSourceGraph);
  const JsonValue r = expect_ok(core.handle(
      1, request(2, "disparity", "\"session\":\"g\",\"sink\":\"F\"")));
  EXPECT_LE(r.at("pairs").items().size(), 1u);
  EXPECT_TRUE(r.at("pairs_truncated").boolean);
  // The analysis itself ran in full: the worst case equals an uncapped
  // core's answer.
  ServiceCore uncapped;
  create(uncapped, "g", kThreeSourceGraph);
  const JsonValue full = expect_ok(uncapped.handle(
      1, request(2, "disparity", "\"session\":\"g\",\"sink\":\"F\"")));
  EXPECT_EQ(r.at("worst_case_ns").number, full.at("worst_case_ns").number);
  EXPECT_GT(full.at("pairs").items().size(), 1u);
  EXPECT_FALSE(full.at("pairs_truncated").boolean);
}

// --- metrics ----------------------------------------------------------------

TEST(ServiceMetrics, GlobalAndPerSessionSnapshots) {
  ServiceCore core;
  create(core, "g", kTwoSinkGraph);
  expect_ok(core.handle(1, request(2, "disparity",
                                   "\"session\":\"g\",\"sink\":\"F1\"")));

  const JsonValue global =
      expect_ok(core.handle(1, request(3, "metrics"))).at("metrics");
  EXPECT_GE(global.at("counters").at("service.requests").number, 3.0);
  EXPECT_GE(global.at("counters").at("service.op.disparity").number, 1.0);
  EXPECT_GE(global.at("histograms").at("service.request_ns").at("count").number,
            1.0);

  const JsonValue per_session =
      expect_ok(core.handle(1, request(4, "metrics", "\"session\":\"g\"")))
          .at("metrics");
  EXPECT_GE(per_session.at("counters").at("engine.reports.misses").number, 1.0);

  expect_error(core.handle(1, request(5, "metrics", "\"session\":\"zz\"")),
               "no_such_session");
}

// --- concurrency (run under -DCETA_SANITIZE=thread as well) ------------------

TEST(ServiceConcurrency, MixedTrafficAcrossThreadsStaysConsistent) {
  ServiceCore core;
  constexpr int kSessions = 4;
  for (int s = 0; s < kSessions; ++s) {
    create(core, "s" + std::to_string(s), kTwoSinkGraph);
  }

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 150;
  std::atomic<int> errors{0};
  std::atomic<std::uint64_t> pushes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const ClientId me = static_cast<ClientId>(t + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string session = "s" + std::to_string((t + i) % kSessions);
        Outcome out;
        switch (i % 5) {
          case 0:
            out = core.handle(me, request(i, "disparity",
                                          "\"session\":\"" + session +
                                              "\",\"sink\":\"F1\""));
            break;
          case 1:
            out = core.handle(
                me, request(i, "latency",
                            "\"session\":\"" + session +
                                "\",\"chain\":[\"S0\",\"A\",\"F1\"]"));
            break;
          case 2:
            out = core.handle(
                me, request(i, "mutate",
                            "\"session\":\"" + session +
                                "\",\"edits\":[{\"kind\":\"set_wcet_range\","
                                "\"task\":\"A\",\"bcet_ns\":500000,"
                                "\"wcet_ns\":" +
                                std::to_string(1'000'000 + (i % 9) * 100'000) +
                                "}]"));
            break;
          case 3:
            out = core.handle(me, request(i, "subscribe",
                                          "\"session\":\"" + session +
                                              "\",\"sink\":\"F1\""));
            break;
          default:
            out = core.handle(me, request(i, "unsubscribe",
                                          "\"session\":\"" + session +
                                              "\",\"sink\":\"F1\""));
            break;
        }
        const JsonValue doc = parse_json(out.reply);
        if (!doc.at("ok").boolean) errors.fetch_add(1);
        pushes.fetch_add(out.pushes.size());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);

  // Every session's final state matches a fresh engine on its own dump.
  for (int s = 0; s < kSessions; ++s) {
    const std::string session = "s" + std::to_string(s);
    const JsonValue dump = expect_ok(
        core.handle(99, request(1, "graph", "\"session\":\"" + session + "\"")));
    AnalysisEngine fresh(graph_from_text(dump.at("text").string));
    const JsonValue served = expect_ok(
        core.handle(99, request(2, "disparity",
                                "\"session\":\"" + session +
                                    "\",\"sink\":\"F1\"")));
    EXPECT_EQ(served.at("worst_case_ns").number,
              static_cast<double>(fresh.disparity(kSinkF1).worst_case.count()))
        << session;
  }
}

}  // namespace
}  // namespace ceta::service
