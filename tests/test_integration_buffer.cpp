// End-to-end validation of the §IV optimization: Algorithm 1's buffer
// design lowers both the analytical bound (Theorem 3) and the measured
// disparity, and the optimized bound remains safe.

#include <gtest/gtest.h>

#include "chain/backward_bounds.hpp"
#include "disparity/buffer_opt.hpp"
#include "disparity/forkjoin.hpp"
#include "graph/paths.hpp"
#include "helpers.hpp"
#include "sched/priority.hpp"
#include "sim/engine.hpp"

namespace ceta {
namespace {

struct Instance {
  TaskGraph graph;
  ResponseTimeMap rtm;
  TaskId sink;
  Path lambda;
  Path nu;
};

Instance make_instance(std::uint64_t seed, std::size_t len) {
  Instance in{testing::random_two_chain_graph(len, 3, seed), {}, 0, {}, {}};
  in.rtm = testing::response_times_of(in.graph);
  in.sink = in.graph.sinks().front();
  auto chains = enumerate_source_chains(in.graph, in.sink);
  in.lambda = chains[0];
  in.nu = chains[1];
  return in;
}

Duration simulate_max_disparity(TaskGraph g, TaskId sink, Duration warmup,
                                std::uint64_t seed, int runs) {
  Rng rng(seed);
  Duration best = Duration::zero();
  for (int r = 0; r < runs; ++r) {
    randomize_offsets(g, rng);
    SimOptions opt;
    opt.warmup = warmup;
    opt.duration = warmup + Duration::s(1);
    opt.seed = seed + static_cast<std::uint64_t>(r);
    const SimResult res = Simulator(g, opt).run();
    best = std::max(best, res.max_disparity[sink]);
  }
  return best;
}

class BufferSafety : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BufferSafety, OptimizedBoundStillSafe) {
  const std::uint64_t seed = GetParam();
  Instance in = make_instance(seed, 5);
  const BufferDesign d =
      design_buffer(in.graph, in.lambda, in.nu, in.rtm);

  TaskGraph buffered = in.graph;
  apply_buffer_design(buffered, d);
  // Warm-up: FIFO fill plus the longest backward horizon.
  const Duration horizon =
      std::max(wcbt_bound(buffered, in.lambda, in.rtm),
               wcbt_bound(buffered, in.nu, in.rtm)) +
      Duration::ms(200);
  const Duration sim_b =
      simulate_max_disparity(buffered, in.sink, horizon, seed, 3);
  EXPECT_LE(sim_b, d.optimized_bound) << "seed " << seed;
}

TEST_P(BufferSafety, BufferReducesBoundAndTendsToReduceSim) {
  const std::uint64_t seed = GetParam();
  Instance in = make_instance(seed + 600, 6);
  const BufferDesign d =
      design_buffer(in.graph, in.lambda, in.nu, in.rtm);
  EXPECT_LE(d.optimized_bound, d.baseline_bound);
  if (d.buffer_size == 1) return;  // windows already aligned

  const Duration warm =
      std::max(wcbt_bound(in.graph, in.lambda, in.rtm),
               wcbt_bound(in.graph, in.nu, in.rtm)) +
      in.graph.task(d.from).period * d.buffer_size + Duration::ms(200);
  const Duration sim =
      simulate_max_disparity(in.graph, in.sink, warm, seed, 3);
  TaskGraph buffered = in.graph;
  apply_buffer_design(buffered, d);
  const Duration sim_b =
      simulate_max_disparity(buffered, in.sink, warm, seed, 3);
  // The measured disparity must stay within each configuration's bound;
  // and the buffered measurement cannot exceed the unbuffered *bound*.
  EXPECT_LE(sim, d.baseline_bound);
  EXPECT_LE(sim_b, d.optimized_bound);
}

TEST_P(BufferSafety, BufferedGraphTheorem2AlsoSafe) {
  // Running Theorem 2 directly on the buffered graph (via the Lemma 6
  // aware chain bounds) must also produce a safe bound.
  const std::uint64_t seed = GetParam();
  Instance in = make_instance(seed + 1200, 5);
  const BufferDesign d =
      design_buffer(in.graph, in.lambda, in.nu, in.rtm);
  TaskGraph buffered = in.graph;
  apply_buffer_design(buffered, d);
  const Duration rerun_bound =
      sdiff_pair_bound(buffered, in.lambda, in.nu, in.rtm).bound;

  const Duration horizon =
      std::max(wcbt_bound(buffered, in.lambda, in.rtm),
               wcbt_bound(buffered, in.nu, in.rtm)) +
      Duration::ms(200);
  const Duration sim_b =
      simulate_max_disparity(buffered, in.sink, horizon, seed, 2);
  EXPECT_LE(sim_b, rerun_bound) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BufferSafety,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(Fig4Scenario, RaisingFrequencyDoesNotCutDisparityButBufferDoes) {
  // §IV motivating example: chain A: S1 -> P (period 30 or 10ms) -> F,
  // chain B: S2 -> Q -> F.  Raising P's frequency leaves the worst-case
  // disparity bound (essentially) unchanged; Algorithm 1's buffer cuts it.
  auto build = [](Duration p_period) {
    TaskGraph g;
    Task s1;
    s1.name = "S1";
    s1.period = Duration::ms(10);
    const TaskId s1id = g.add_task(s1);
    Task s2;
    s2.name = "S2";
    s2.period = Duration::ms(100);
    const TaskId s2id = g.add_task(s2);
    auto mk = [](const char* name, Duration period, EcuId ecu, int prio) {
      Task t;
      t.name = name;
      t.wcet = t.bcet = Duration::ms(1);
      t.period = period;
      t.ecu = ecu;
      t.priority = prio;
      return t;
    };
    const TaskId p = g.add_task(mk("P", p_period, 0, 0));
    const TaskId q = g.add_task(mk("Q", Duration::ms(100), 1, 0));
    const TaskId f = g.add_task(mk("F", Duration::ms(30), 2, 0));
    g.add_edge(s1id, p);
    g.add_edge(s2id, q);
    g.add_edge(p, f);
    g.add_edge(q, f);
    g.validate();
    return g;
  };

  const TaskGraph slow = build(Duration::ms(30));
  const TaskGraph fast = build(Duration::ms(10));
  const ResponseTimeMap rtm_slow = testing::response_times_of(slow);
  const ResponseTimeMap rtm_fast = testing::response_times_of(fast);

  const auto chains_slow = enumerate_source_chains(slow, 4);
  const auto chains_fast = enumerate_source_chains(fast, 4);
  const Duration bound_slow =
      sdiff_pair_bound(slow, chains_slow[0], chains_slow[1], rtm_slow).bound;
  const Duration bound_fast =
      sdiff_pair_bound(fast, chains_fast[0], chains_fast[1], rtm_fast).bound;

  // Raising the sampling frequency does not reduce the worst case (the
  // dominating term is the other chain's slow period).
  EXPECT_GE(bound_fast + Duration::ms(25), bound_slow);

  // The buffer design does reduce it, on both variants.
  const BufferDesign d_slow =
      design_buffer(slow, chains_slow[0], chains_slow[1], rtm_slow);
  EXPECT_LT(d_slow.optimized_bound, bound_slow);
  const BufferDesign d_fast =
      design_buffer(fast, chains_fast[0], chains_fast[1], rtm_fast);
  EXPECT_LT(d_fast.optimized_bound, bound_fast);
}

}  // namespace
}  // namespace ceta
