#include "disparity/pareto.hpp"

#include <gtest/gtest.h>

#include "graph/paths.hpp"
#include "helpers.hpp"
#include "sched/priority.hpp"
#include "sim/engine.hpp"

namespace ceta {
namespace {

struct Instance {
  TaskGraph graph;
  ResponseTimeMap rtm;
  Path lambda;
  Path nu;
  TaskId sink;
};

Instance make(std::uint64_t seed, std::size_t len = 6) {
  Instance in{testing::random_two_chain_graph(len, 3, seed), {}, {}, {}, 0};
  in.rtm = testing::response_times_of(in.graph);
  in.sink = in.graph.sinks().front();
  auto chains = enumerate_source_chains(in.graph, in.sink);
  in.lambda = chains[0];
  in.nu = chains[1];
  return in;
}

TEST(Pareto, EndpointsMatchDesign) {
  const Instance in = make(3);
  const BufferDesign d = design_buffer(in.graph, in.lambda, in.nu, in.rtm);
  const auto points = buffer_pareto(in.graph, in.lambda, in.nu, in.rtm);
  ASSERT_EQ(points.size(), static_cast<std::size_t>(d.buffer_size));
  EXPECT_EQ(points.front().buffer_size, 1);
  EXPECT_EQ(points.front().bound, d.baseline_bound);
  EXPECT_EQ(points.back().buffer_size, d.buffer_size);
  EXPECT_LE(points.back().bound, d.optimized_bound);
}

TEST(Pareto, BoundsNonIncreasing) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Instance in = make(seed + 10);
    const auto points = buffer_pareto(in.graph, in.lambda, in.nu, in.rtm);
    for (std::size_t i = 1; i < points.size(); ++i) {
      EXPECT_LE(points[i].bound, points[i - 1].bound) << "seed " << seed;
      EXPECT_EQ(points[i].buffer_size, points[i - 1].buffer_size + 1);
    }
  }
}

TEST(Pareto, ShiftsAreHeadPeriodMultiples) {
  const Instance in = make(7);
  const BufferDesign d = design_buffer(in.graph, in.lambda, in.nu, in.rtm);
  const Duration t_head = in.graph.task(d.from).period;
  for (const ParetoPoint& p : buffer_pareto(in.graph, in.lambda, in.nu,
                                            in.rtm)) {
    EXPECT_EQ(p.shift, t_head * (p.buffer_size - 1));
  }
}

TEST(Pareto, IntermediatePointIsSafe) {
  // Pick a mid-curve size, apply it, and verify by simulation.
  Instance in = make(27);
  const auto points = buffer_pareto(in.graph, in.lambda, in.nu, in.rtm);
  if (points.size() < 3) GTEST_SKIP() << "windows already aligned";
  const ParetoPoint& mid = points[points.size() / 2];

  const BufferDesign d = design_buffer(in.graph, in.lambda, in.nu, in.rtm);
  TaskGraph buffered = in.graph;
  buffered.set_buffer_size(d.from, d.to, mid.buffer_size);

  Rng rng(99);
  Duration worst = Duration::zero();
  for (int run = 0; run < 3; ++run) {
    randomize_offsets(buffered, rng);
    SimOptions opt;
    opt.warmup = Duration::s(3);
    opt.duration = Duration::s(5);
    opt.seed = static_cast<std::uint64_t>(run) + 1;
    worst = std::max(worst,
                     Simulator(buffered, opt).run().max_disparity[in.sink]);
  }
  EXPECT_LE(worst, mid.bound);
}

TEST(Pareto, AlignedPairIsSinglePoint) {
  const TaskGraph g = testing::diamond_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const auto points =
      buffer_pareto(g, {0, 1, 2, 4}, {0, 1, 3, 4}, rtm);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].buffer_size, 1);
  EXPECT_EQ(points[0].shift, Duration::zero());
}

}  // namespace
}  // namespace ceta
