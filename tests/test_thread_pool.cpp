// ThreadPool::default_concurrency(): the CETA_THREADS override must accept
// exactly the sane values (plain integers in [1, kMaxEnvThreads]) and fall
// back to the hardware clamp — with a warning, but without throwing — on
// everything else.  The overflow case is the regression that motivated the
// test: strtol saturates to LONG_MAX with errno == ERANGE while still
// consuming every digit, so an end-pointer check alone accepts it.

#include "engine/thread_pool.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>

namespace ceta {
namespace {

/// Expected fallback: hardware_concurrency clamped to [1, 8].
std::size_t hardware_default() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : (hw > 8 ? std::size_t{8} : static_cast<std::size_t>(hw));
}

/// Sets CETA_THREADS for one test and restores the previous value on exit.
class ScopedEnv {
 public:
  explicit ScopedEnv(const char* value) {
    const char* old = std::getenv("CETA_THREADS");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value) {
      ::setenv("CETA_THREADS", value, /*overwrite=*/1);
    } else {
      ::unsetenv("CETA_THREADS");
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv("CETA_THREADS", old_.c_str(), 1);
    } else {
      ::unsetenv("CETA_THREADS");
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  bool had_old_ = false;
  std::string old_;
};

TEST(DefaultConcurrency, UnsetUsesHardwareClamp) {
  const ScopedEnv env(nullptr);
  EXPECT_EQ(ThreadPool::default_concurrency(), hardware_default());
}

TEST(DefaultConcurrency, EmptyStringUsesHardwareClamp) {
  const ScopedEnv env("");
  EXPECT_EQ(ThreadPool::default_concurrency(), hardware_default());
}

TEST(DefaultConcurrency, ValidOverrideWins) {
  const ScopedEnv env("3");
  EXPECT_EQ(ThreadPool::default_concurrency(), 3u);
}

TEST(DefaultConcurrency, MaxAllowedOverrideWins) {
  const ScopedEnv env("1024");
  EXPECT_EQ(ThreadPool::default_concurrency(),
            static_cast<std::size_t>(ThreadPool::kMaxEnvThreads));
}

TEST(DefaultConcurrency, ZeroFallsBack) {
  const ScopedEnv env("0");
  EXPECT_EQ(ThreadPool::default_concurrency(), hardware_default());
}

TEST(DefaultConcurrency, NegativeFallsBack) {
  const ScopedEnv env("-4");
  EXPECT_EQ(ThreadPool::default_concurrency(), hardware_default());
}

TEST(DefaultConcurrency, NonNumericFallsBack) {
  const ScopedEnv env("lots");
  EXPECT_EQ(ThreadPool::default_concurrency(), hardware_default());
}

TEST(DefaultConcurrency, TrailingGarbageFallsBack) {
  const ScopedEnv env("4x");
  EXPECT_EQ(ThreadPool::default_concurrency(), hardware_default());
}

TEST(DefaultConcurrency, OverflowFallsBack) {
  // strtol saturates to LONG_MAX (errno == ERANGE) but consumes every
  // digit; this value used to be accepted and passed to the constructor.
  const ScopedEnv env("99999999999999999999");
  EXPECT_EQ(ThreadPool::default_concurrency(), hardware_default());
}

TEST(DefaultConcurrency, AboveCapFallsBack) {
  const ScopedEnv env("4096");
  EXPECT_EQ(ThreadPool::default_concurrency(), hardware_default());
}

TEST(ThreadPool, SubmitReturnsResultsAndPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.size(), 2u);
  auto ok = pool.submit([] { return 6 * 7; });
  auto bad = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_EQ(ok.get(), 42);
  EXPECT_THROW(bad.get(), std::runtime_error);
}

}  // namespace
}  // namespace ceta
