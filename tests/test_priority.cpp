#include "sched/priority.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/generator.hpp"
#include "helpers.hpp"

namespace ceta {
namespace {

TaskGraph three_task_ecu0() {
  TaskGraph g;
  Task s;
  s.name = "S";
  s.period = Duration::ms(10);
  const TaskId sid = g.add_task(s);
  auto mk = [](const char* name, Duration period) {
    Task t;
    t.name = name;
    t.wcet = t.bcet = Duration::us(10);
    t.period = period;
    t.ecu = 0;
    return t;
  };
  const TaskId slow = g.add_task(mk("slow", Duration::ms(100)));
  const TaskId fast = g.add_task(mk("fast", Duration::ms(1)));
  const TaskId mid = g.add_task(mk("mid", Duration::ms(10)));
  g.add_edge(sid, slow);
  g.add_edge(slow, fast);
  g.add_edge(fast, mid);
  return g;
}

TEST(Priority, RateMonotonicOrder) {
  TaskGraph g = three_task_ecu0();
  assign_priorities_rate_monotonic(g);
  // fast (1ms) highest, then mid (10ms), then slow (100ms).
  EXPECT_LT(g.task(2).priority, g.task(3).priority);
  EXPECT_LT(g.task(3).priority, g.task(1).priority);
  EXPECT_NO_THROW(g.validate());
}

TEST(Priority, RateMonotonicTiesBrokenById) {
  TaskGraph g;
  Task s;
  s.name = "S";
  s.period = Duration::ms(10);
  const TaskId sid = g.add_task(s);
  auto mk = [](const char* name) {
    Task t;
    t.name = name;
    t.wcet = t.bcet = Duration::us(10);
    t.period = Duration::ms(10);
    t.ecu = 0;
    return t;
  };
  const TaskId a = g.add_task(mk("a"));
  const TaskId b = g.add_task(mk("b"));
  g.add_edge(sid, a);
  g.add_edge(sid, b);
  assign_priorities_rate_monotonic(g);
  EXPECT_LT(g.task(a).priority, g.task(b).priority);
}

TEST(Priority, PerEcuIndependentRanges) {
  TaskGraph g;
  Task s;
  s.name = "S";
  s.period = Duration::ms(10);
  const TaskId sid = g.add_task(s);
  auto mk = [](const char* name, Duration period, EcuId ecu) {
    Task t;
    t.name = name;
    t.wcet = t.bcet = Duration::us(10);
    t.period = period;
    t.ecu = ecu;
    return t;
  };
  const TaskId a0 = g.add_task(mk("a0", Duration::ms(5), 0));
  const TaskId a1 = g.add_task(mk("a1", Duration::ms(10), 0));
  const TaskId b0 = g.add_task(mk("b0", Duration::ms(20), 1));
  const TaskId b1 = g.add_task(mk("b1", Duration::ms(2), 1));
  g.add_edge(sid, a0);
  g.add_edge(a0, a1);
  g.add_edge(a1, b0);
  g.add_edge(b0, b1);
  assign_priorities_rate_monotonic(g);
  // Each ECU gets priorities 0..k-1.
  EXPECT_EQ(g.task(a0).priority, 0);
  EXPECT_EQ(g.task(a1).priority, 1);
  EXPECT_EQ(g.task(b1).priority, 0);
  EXPECT_EQ(g.task(b0).priority, 1);
  EXPECT_NO_THROW(g.validate());
}

TEST(Priority, ByIndexOrder) {
  TaskGraph g = three_task_ecu0();
  assign_priorities_by_index(g);
  EXPECT_EQ(g.task(1).priority, 0);
  EXPECT_EQ(g.task(2).priority, 1);
  EXPECT_EQ(g.task(3).priority, 2);
}

TEST(Priority, SourceTasksUntouched) {
  TaskGraph g = three_task_ecu0();
  g.task(0).priority = 42;
  assign_priorities_rate_monotonic(g);
  EXPECT_EQ(g.task(0).priority, 42);
}

TEST(Ecus, RandomAssignmentRange) {
  Rng rng(9);
  TaskGraph g = merge_chains_at_sink(6, 6);
  assign_ecus_random(g, 3, rng);
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    if (g.is_source(id)) {
      EXPECT_EQ(g.task(id).ecu, kNoEcu);
    } else {
      EXPECT_GE(g.task(id).ecu, 0);
      EXPECT_LT(g.task(id).ecu, 3);
    }
  }
  EXPECT_THROW(assign_ecus_random(g, 0, rng), PreconditionError);
}

TEST(Ecus, SingleAssignment) {
  TaskGraph g = merge_chains_at_sink(4, 4);
  assign_ecus_single(g);
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    EXPECT_EQ(g.task(id).ecu, g.is_source(id) ? kNoEcu : 0);
  }
}

TEST(Offsets, RandomizedWithinPeriod) {
  Rng rng(11);
  TaskGraph g = testing::diamond_graph();
  for (int trial = 0; trial < 20; ++trial) {
    randomize_offsets(g, rng);
    for (TaskId id = 0; id < g.num_tasks(); ++id) {
      EXPECT_GE(g.task(id).offset, Duration::zero());
      EXPECT_LT(g.task(id).offset, g.task(id).period);
    }
    EXPECT_NO_THROW(g.validate());
  }
}

TEST(Offsets, RandomizationActuallyVaries) {
  Rng rng(11);
  TaskGraph g = testing::diamond_graph();
  std::set<std::int64_t> seen;
  for (int trial = 0; trial < 10; ++trial) {
    randomize_offsets(g, rng);
    seen.insert(g.task(1).offset.count());
  }
  EXPECT_GT(seen.size(), 3u);
}

}  // namespace
}  // namespace ceta
