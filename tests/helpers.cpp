#include "helpers.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/generator.hpp"
#include "graph/paths.hpp"
#include "waters/generator.hpp"

namespace ceta::testing {

TaskGraph simple_chain_graph() {
  TaskGraph g;
  Task s;
  s.name = "S";
  s.period = Duration::ms(10);
  const TaskId sid = g.add_task(s);

  Task a;
  a.name = "A";
  a.wcet = a.bcet = Duration::ms(1);
  a.period = Duration::ms(10);
  a.ecu = 0;
  a.priority = 0;
  const TaskId aid = g.add_task(a);

  Task b;
  b.name = "B";
  b.wcet = b.bcet = Duration::ms(1);
  b.period = Duration::ms(20);
  b.ecu = 0;
  b.priority = 1;
  const TaskId bid = g.add_task(b);

  g.add_edge(sid, aid);
  g.add_edge(aid, bid);
  g.validate();
  return g;
}

TaskGraph diamond_graph() {
  TaskGraph g;
  Task s;
  s.name = "S";
  s.period = Duration::ms(10);
  const TaskId sid = g.add_task(s);

  auto mk = [](const char* name, Duration period, EcuId ecu, int prio) {
    Task t;
    t.name = name;
    t.wcet = t.bcet = Duration::ms(1);
    t.period = period;
    t.ecu = ecu;
    t.priority = prio;
    return t;
  };
  const TaskId aid = g.add_task(mk("A", Duration::ms(10), 0, 0));
  const TaskId cid = g.add_task(mk("C", Duration::ms(20), 0, 1));
  const TaskId did = g.add_task(mk("D", Duration::ms(20), 1, 0));
  const TaskId eid = g.add_task(mk("E", Duration::ms(20), 1, 1));

  g.add_edge(sid, aid);
  g.add_edge(aid, cid);
  g.add_edge(aid, did);
  g.add_edge(cid, eid);
  g.add_edge(did, eid);
  g.validate();
  return g;
}

TaskGraph random_two_chain_graph(std::size_t length, int num_ecus,
                                 std::uint64_t seed) {
  Rng rng(seed);
  for (int attempt = 0; attempt < 128; ++attempt) {
    TaskGraph g = merge_chains_at_sink(length, length);
    WatersAssignOptions opt;
    opt.num_ecus = num_ecus;
    assign_waters_parameters(g, opt, rng);
    if (analyze_response_times(g).all_schedulable) return g;
  }
  throw Error("random_two_chain_graph: no schedulable draw");
}

TaskGraph random_dag_graph(std::size_t num_tasks, int num_ecus,
                           std::uint64_t seed) {
  Rng rng(seed);
  for (int attempt = 0; attempt < 128; ++attempt) {
    GnmDagOptions gopt;
    gopt.num_tasks = num_tasks;
    TaskGraph g = gnm_random_dag(gopt, rng);
    WatersAssignOptions opt;
    opt.num_ecus = num_ecus;
    assign_waters_parameters(g, opt, rng);
    const TaskId sink = g.sinks().front();
    if (count_source_chains(g, sink) < 2) continue;
    if (count_source_chains(g, sink) > 2000) continue;
    if (analyze_response_times(g).all_schedulable) return g;
  }
  throw Error("random_dag_graph: no admissible draw");
}

ResponseTimeMap response_times_of(const TaskGraph& g) {
  const RtaResult rta = analyze_response_times(g);
  CETA_EXPECTS(rta.all_schedulable,
               "response_times_of: fixture must be schedulable");
  return rta.response_time;
}

}  // namespace ceta::testing
