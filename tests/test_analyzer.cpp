#include "disparity/analyzer.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "helpers.hpp"

namespace ceta {
namespace {

/// Two chains that merge at C and continue through a shared suffix C -> T:
///   S1(T=10) -> A(1ms,T=10,ecu0,p0) -> C(1ms,T=20,ecu0,p2) -> T
///   S2(T=20) -> B(1ms,T=20,ecu0,p1) -> C
///   T(1ms,T=20,ecu1,p0)
TaskGraph shared_suffix_graph() {
  TaskGraph g;
  Task s1;
  s1.name = "S1";
  s1.period = Duration::ms(10);
  const TaskId s1id = g.add_task(s1);
  Task s2;
  s2.name = "S2";
  s2.period = Duration::ms(20);
  const TaskId s2id = g.add_task(s2);
  auto mk = [](const char* name, Duration period, EcuId ecu, int prio) {
    Task t;
    t.name = name;
    t.wcet = t.bcet = Duration::ms(1);
    t.period = period;
    t.ecu = ecu;
    t.priority = prio;
    return t;
  };
  const TaskId a = g.add_task(mk("A", Duration::ms(10), 0, 0));
  const TaskId b = g.add_task(mk("B", Duration::ms(20), 0, 1));
  const TaskId c = g.add_task(mk("C", Duration::ms(20), 0, 2));
  const TaskId t = g.add_task(mk("T", Duration::ms(20), 1, 0));
  g.add_edge(s1id, a);
  g.add_edge(s2id, b);
  g.add_edge(a, c);
  g.add_edge(b, c);
  g.add_edge(c, t);
  g.validate();
  return g;
}

TEST(TruncateAtLastJoint, NoCommonSuffixBeyondTail) {
  const Path a = {0, 1, 2, 4};
  const Path b = {0, 1, 3, 4};
  const auto [ta, tb] = truncate_at_last_joint(a, b);
  EXPECT_EQ(ta, a);
  EXPECT_EQ(tb, b);
}

TEST(TruncateAtLastJoint, SharedSuffixRemoved) {
  const Path a = {0, 2, 4, 5, 6};
  const Path b = {1, 3, 4, 5, 6};
  const auto [ta, tb] = truncate_at_last_joint(a, b);
  EXPECT_EQ(ta, (Path{0, 2, 4}));
  EXPECT_EQ(tb, (Path{1, 3, 4}));
}

TEST(TruncateAtLastJoint, OneChainIsSuffixOfOther) {
  const Path a = {9, 4, 5};
  const Path b = {4, 5};
  const auto [ta, tb] = truncate_at_last_joint(a, b);
  EXPECT_EQ(ta, (Path{9, 4}));
  EXPECT_EQ(tb, (Path{4}));
}

TEST(TruncateAtLastJoint, Preconditions) {
  EXPECT_THROW(truncate_at_last_joint({}, {1}), PreconditionError);
  EXPECT_THROW(truncate_at_last_joint({1, 2}, {1, 3}), PreconditionError);
}

TEST(Analyzer, DiamondWorstCase) {
  const TaskGraph g = testing::diamond_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  DisparityOptions opt;
  opt.method = DisparityMethod::kForkJoin;
  const DisparityReport rep = analyze_time_disparity(g, 4, rtm, opt);
  EXPECT_EQ(rep.chains.size(), 2u);
  ASSERT_EQ(rep.pairs.size(), 1u);
  EXPECT_EQ(rep.worst_case, Duration::ms(40));
  opt.method = DisparityMethod::kIndependent;
  EXPECT_EQ(analyze_time_disparity(g, 4, rtm, opt).worst_case,
            Duration::ms(40));
}

TEST(Analyzer, SingleChainTaskHasZeroDisparity) {
  const TaskGraph g = testing::simple_chain_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const DisparityReport rep = analyze_time_disparity(g, 2, rtm);
  EXPECT_EQ(rep.chains.size(), 1u);
  EXPECT_TRUE(rep.pairs.empty());
  EXPECT_EQ(rep.worst_case, Duration::zero());
}

TEST(Analyzer, SourceTaskHasZeroDisparity) {
  const TaskGraph g = testing::diamond_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  EXPECT_EQ(analyze_time_disparity(g, 0, rtm).worst_case, Duration::zero());
}

TEST(Analyzer, TruncationEqualsAnalysisAtJoinTask) {
  // With a shared suffix C -> T, the disparity bound at T equals the
  // pairwise bound of the truncated chains ending at C.
  const TaskGraph g = shared_suffix_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const TaskId join = 4;  // C
  const TaskId sink = 5;  // T

  const DisparityReport at_sink = analyze_time_disparity(g, sink, rtm);
  const DisparityReport at_join = analyze_time_disparity(g, join, rtm);
  EXPECT_EQ(at_sink.worst_case, at_join.worst_case);
}

TEST(Analyzer, TruncationNeverLoosensTheBound) {
  DisparityOptions with, without;
  with.truncation = JointTruncation::kAlways;
  without.truncation = JointTruncation::kNever;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const TaskGraph g = testing::random_dag_graph(12, 3, seed + 500);
    const ResponseTimeMap rtm = testing::response_times_of(g);
    const TaskId sink = g.sinks().front();
    const Duration a =
        analyze_time_disparity(g, sink, rtm, with).worst_case;
    const Duration b =
        analyze_time_disparity(g, sink, rtm, without).worst_case;
    EXPECT_LE(a, b) << "seed " << seed;
  }
}

TEST(Analyzer, SdiffNeverAbovePdiff) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const TaskGraph g = testing::random_dag_graph(15, 3, seed + 900);
    const ResponseTimeMap rtm = testing::response_times_of(g);
    const TaskId sink = g.sinks().front();
    DisparityOptions opt;
    opt.method = DisparityMethod::kForkJoin;
    const Duration s = analyze_time_disparity(g, sink, rtm, opt).worst_case;
    opt.method = DisparityMethod::kIndependent;
    const Duration p = analyze_time_disparity(g, sink, rtm, opt).worst_case;
    EXPECT_LE(s, p) << "seed " << seed;
  }
}

TEST(Analyzer, PairListCoversAllPairs) {
  const TaskGraph g = testing::random_dag_graph(12, 3, 31);
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const TaskId sink = g.sinks().front();
  const DisparityReport rep = analyze_time_disparity(g, sink, rtm);
  const std::size_t n = rep.chains.size();
  EXPECT_EQ(rep.pairs.size(), n * (n - 1) / 2);
  Duration max = Duration::zero();
  for (const PairDisparity& p : rep.pairs) {
    EXPECT_LT(p.chain_a, p.chain_b);
    EXPECT_LT(p.chain_b, n);
    max = std::max(max, p.bound);
  }
  EXPECT_EQ(max, rep.worst_case);
}

TEST(Analyzer, PathCapRespected) {
  const TaskGraph g = testing::random_dag_graph(15, 3, 77);
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const TaskId sink = g.sinks().front();
  DisparityOptions opt;
  opt.path_cap = 1;
  EXPECT_THROW(analyze_time_disparity(g, sink, rtm, opt), CapacityError);
}

TEST(Analyzer, BadTaskIdRejected) {
  const TaskGraph g = testing::diamond_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  EXPECT_THROW(analyze_time_disparity(g, 99, rtm), PreconditionError);
}

}  // namespace
}  // namespace ceta
