// Monte-Carlo driver tests: the replication fleet must produce
// bit-identical aggregates for every thread count (the whole point of the
// counter-based streams + commutative merges), its histograms must agree
// with a hand-rolled single-threaded fold over run(), the analyzer
// cross-check must hold on schedulable graphs, and the fault-injection
// knob must demonstrably break it.

#include "sim/montecarlo.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "disparity/forkjoin.hpp"
#include "engine/analysis_engine.hpp"
#include "helpers.hpp"
#include "sim/simulator.hpp"

namespace ceta {
namespace {

using ceta::testing::random_dag_graph;
using sim::EmpiricalHistogram;
using sim::MonteCarloOptions;
using sim::MonteCarloResult;
using sim::TaskMonteCarlo;
using sim::run_monte_carlo;

MonteCarloOptions small_fleet() {
  MonteCarloOptions opt;
  opt.sim.duration = Duration::ms(150);
  opt.sim.warmup = Duration::ms(20);
  opt.first_seed = 3;
  opt.replications = 12;
  opt.num_threads = 1;
  return opt;
}

void expect_same_histogram(const EmpiricalHistogram& a,
                           const EmpiricalHistogram& b, const char* what) {
  EXPECT_EQ(a.buckets, b.buckets) << what;
  EXPECT_EQ(a.count, b.count) << what;
  EXPECT_EQ(a.min_value, b.min_value) << what;
  EXPECT_EQ(a.max_value, b.max_value) << what;
  EXPECT_EQ(a.sum_ns, b.sum_ns) << what;
}

void expect_same_result(const MonteCarloResult& a, const MonteCarloResult& b) {
  EXPECT_EQ(a.replications, b.replications);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.jobs_finished, b.jobs_finished);
  EXPECT_EQ(a.all_within_bounds, b.all_within_bounds);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].task, b.tasks[i].task);
    expect_same_histogram(a.tasks[i].disparity, b.tasks[i].disparity,
                          "disparity");
    expect_same_histogram(a.tasks[i].data_age, b.tasks[i].data_age,
                          "data_age");
    expect_same_histogram(a.tasks[i].reaction, b.tasks[i].reaction,
                          "reaction");
    EXPECT_EQ(a.tasks[i].bound_violations, b.tasks[i].bound_violations);
    EXPECT_EQ(a.tasks[i].worst_sample, b.tasks[i].worst_sample);
  }
}

TEST(MonteCarlo, ThreadCountDoesNotChangeAnyAggregate) {
  const TaskGraph g = random_dag_graph(10, 3, /*seed=*/5);
  MonteCarloOptions opt = small_fleet();
  opt.replications = 16;
  const MonteCarloResult serial = run_monte_carlo(g, opt);
  for (std::size_t threads : {2u, 4u, 7u}) {
    opt.num_threads = threads;
    const MonteCarloResult parallel = run_monte_carlo(g, opt);
    expect_same_result(serial, parallel);
  }
}

TEST(MonteCarlo, HistogramsMatchHandRolledFoldOverRuns) {
  const TaskGraph g = random_dag_graph(10, 3, /*seed=*/9);
  MonteCarloOptions opt = small_fleet();
  const TaskId sink = g.sinks().front();
  opt.observed = {sink};
  const MonteCarloResult mc = run_monte_carlo(g, opt);
  ASSERT_EQ(mc.tasks.size(), 1u);
  EXPECT_EQ(mc.tasks[0].task, sink);
  EXPECT_EQ(mc.replications, opt.replications);
  EXPECT_FALSE(mc.tasks[0].bound_checked);

  // Replay the same seeds through plain Simulator runs; the per-job
  // disparity count and the max must line up with the histogram.
  Simulator sim(g, opt.sim);
  std::uint64_t jobs_observed = 0;
  Duration worst = Duration::zero();
  for (std::uint64_t s = 0; s < opt.replications; ++s) {
    const SimResult r = sim.run(opt.first_seed + s);
    jobs_observed += static_cast<std::uint64_t>(r.jobs_observed[sink]);
    worst = std::max(worst, r.max_disparity[sink]);
  }
  EXPECT_EQ(mc.tasks[0].disparity.count, jobs_observed);
  EXPECT_EQ(mc.tasks[0].disparity.max_value, worst);
  EXPECT_EQ(mc.tasks[0].worst_sample, worst);
  // Data age is sampled once per observed job; every data-age sample is
  // at least the job's disparity (finish - oldest >= newest - oldest).
  EXPECT_EQ(mc.tasks[0].data_age.count, jobs_observed);
  EXPECT_GE(mc.tasks[0].data_age.max_value, mc.tasks[0].disparity.max_value);
  EXPECT_GE(mc.tasks[0].data_age.mean(), mc.tasks[0].disparity.mean());
}

TEST(MonteCarlo, MeasuredDisparityStaysWithinAnalyzerBound) {
  // The paper's Sim <= S-diff experiment as a test: on a schedulable
  // instance every empirical sample must respect the fork-join bound.
  const TaskGraph g = random_dag_graph(10, 3, /*seed=*/17);
  const AnalysisEngine engine(g);
  ASSERT_TRUE(engine.schedulable());
  const TaskId sink = g.sinks().front();
  const Duration bound = engine.disparity(sink).worst_case;

  MonteCarloOptions opt = small_fleet();
  opt.observed = {sink};
  opt.bounds = {bound};
  const MonteCarloResult mc = run_monte_carlo(g, opt);
  ASSERT_EQ(mc.tasks.size(), 1u);
  EXPECT_TRUE(mc.tasks[0].bound_checked);
  EXPECT_EQ(mc.tasks[0].bound, bound);
  EXPECT_TRUE(mc.all_within_bounds);
  EXPECT_EQ(mc.tasks[0].bound_violations, 0u);
  if (mc.tasks[0].disparity.count > 0 && bound > Duration::zero()) {
    EXPECT_GE(mc.tasks[0].tightness, 0.0);
    EXPECT_LE(mc.tasks[0].tightness, 1.0);
  }
}

TEST(MonteCarlo, FaultInjectionIsCaughtByTheBoundCheck) {
  // Same setup as above but with every sample inflated 1000x: unless the
  // measured disparity is exactly zero the cross-check must trip.  This
  // pins the knob the montecarlo_within_bounds verify property uses.
  const TaskGraph g = random_dag_graph(10, 3, /*seed=*/17);
  const AnalysisEngine engine(g);
  const TaskId sink = g.sinks().front();
  const Duration bound = engine.disparity(sink).worst_case;

  MonteCarloOptions opt = small_fleet();
  opt.observed = {sink};
  opt.bounds = {bound};
  opt.fault_scale_samples = 1000;
  const MonteCarloResult mc = run_monte_carlo(g, opt);
  ASSERT_EQ(mc.tasks.size(), 1u);
  if (mc.tasks[0].disparity.max_value > Duration::zero()) {
    EXPECT_FALSE(mc.all_within_bounds);
    EXPECT_GT(mc.tasks[0].bound_violations, 0u);
  }
}

TEST(MonteCarlo, DefaultsObserveEverySink) {
  const TaskGraph g = random_dag_graph(12, 3, /*seed=*/21);
  MonteCarloOptions opt = small_fleet();
  opt.replications = 4;
  const MonteCarloResult mc = run_monte_carlo(g, opt);
  const std::vector<TaskId> sinks = g.sinks();
  ASSERT_EQ(mc.tasks.size(), sinks.size());
  for (std::size_t i = 0; i < sinks.size(); ++i) {
    EXPECT_EQ(mc.tasks[i].task, sinks[i]);
  }
  EXPECT_GT(mc.events, 0u);
  EXPECT_GT(mc.jobs_finished, 0u);
  EXPECT_GE(mc.wall_seconds, 0.0);
}

TEST(MonteCarlo, OptionValidation) {
  const TaskGraph g = random_dag_graph(8, 2, /*seed=*/25);
  {
    MonteCarloOptions opt = small_fleet();
    opt.replications = 0;
    EXPECT_THROW(run_monte_carlo(g, opt), InvalidOptionsError);
  }
  {
    MonteCarloOptions opt = small_fleet();
    opt.sim.record_trace = true;  // would allocate per-replication traces
    EXPECT_THROW(run_monte_carlo(g, opt), InvalidOptionsError);
  }
  {
    MonteCarloOptions opt = small_fleet();
    opt.observed = {static_cast<TaskId>(g.num_tasks())};  // out of range
    EXPECT_THROW(run_monte_carlo(g, opt), InvalidOptionsError);
  }
  {
    MonteCarloOptions opt = small_fleet();
    opt.bounds = {Duration::ms(1)};  // bounds without explicit observed
    EXPECT_THROW(run_monte_carlo(g, opt), InvalidOptionsError);
  }
  {
    MonteCarloOptions opt = small_fleet();
    opt.observed = {g.sinks().front()};
    opt.bounds = {Duration::ms(1), Duration::ms(2)};  // not parallel
    EXPECT_THROW(run_monte_carlo(g, opt), InvalidOptionsError);
  }
  {
    MonteCarloOptions opt = small_fleet();
    opt.fault_scale_samples = 0;
    EXPECT_THROW(run_monte_carlo(g, opt), InvalidOptionsError);
  }
  {
    MonteCarloOptions opt = small_fleet();
    opt.sim.duration = Duration::zero();  // sim options validate too
    EXPECT_THROW(run_monte_carlo(g, opt), InvalidOptionsError);
  }
}

// The TSan target: enough replications across enough threads that a
// data race in the fan-out/merge path would be seen by the sanitizer,
// while staying cheap enough for the default test pass.
TEST(MonteCarlo, StressFleetAcrossThreads) {
  const TaskGraph g = random_dag_graph(12, 3, /*seed=*/33);
  MonteCarloOptions opt;
  opt.sim.duration = Duration::ms(60);
  opt.sim.warmup = Duration::ms(10);
  opt.first_seed = 1;
  opt.replications = 64;
  opt.num_threads = 4;
  const MonteCarloResult mc = run_monte_carlo(g, opt);
  EXPECT_EQ(mc.replications, 64u);
  EXPECT_GT(mc.events, 0u);
  // And the stress result is still the deterministic one.
  opt.num_threads = 3;
  expect_same_result(mc, run_monte_carlo(g, opt));
}

}  // namespace
}  // namespace ceta
