// service framing + wire JSON: the two hardened layers every byte from a
// client passes through.  Covers incremental decode across arbitrary
// split points, zero-length and oversized frames (skip-state recovery on
// a live stream), and the parser's rejection paths — truncated input,
// bad escapes, depth bombs, trailing garbage — each of which must throw
// ProtocolError, never crash or return a partial tree.

#include "service/framing.hpp"
#include "service/json.hpp"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

namespace ceta::service {
namespace {

// --- framing ----------------------------------------------------------------

TEST(Framing, EncodeRoundtrip) {
  const std::string payload = "{\"op\":\"ping\"}";
  const std::string frame = encode_frame(payload);
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + payload.size());
  FrameDecoder dec;
  dec.feed(frame);
  const auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_FALSE(f->oversized);
  EXPECT_EQ(f->payload, payload);
  EXPECT_EQ(f->declared_size, payload.size());
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(Framing, ZeroLengthFrame) {
  FrameDecoder dec;
  dec.feed(encode_frame(""));
  const auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->payload, "");
  EXPECT_FALSE(f->oversized);
}

TEST(Framing, ByteByByteFeed) {
  const std::string frame = encode_frame("hello") + encode_frame("world");
  FrameDecoder dec;
  std::vector<std::string> got;
  for (const char c : frame) {
    dec.feed(&c, 1);
    while (const auto f = dec.next()) got.push_back(f->payload);
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], "hello");
  EXPECT_EQ(got[1], "world");
}

TEST(Framing, RandomSplitPoints) {
  std::string stream;
  std::vector<std::string> payloads;
  for (int i = 0; i < 20; ++i) {
    payloads.push_back(std::string(static_cast<std::size_t>(i * 7), 'x') +
                       std::to_string(i));
    stream += encode_frame(payloads.back());
  }
  std::mt19937 rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    FrameDecoder dec;
    std::vector<std::string> got;
    std::size_t pos = 0;
    while (pos < stream.size()) {
      const std::size_t n =
          std::min<std::size_t>(1 + rng() % 13, stream.size() - pos);
      dec.feed(stream.data() + pos, n);
      pos += n;
      while (const auto f = dec.next()) got.push_back(f->payload);
    }
    ASSERT_EQ(got, payloads);
  }
}

TEST(Framing, OversizedFrameIsReportedOnceAndSkipped) {
  FrameDecoder dec(/*max_frame_bytes=*/16);
  const std::string big(100, 'j');
  dec.feed(encode_frame(big));

  const auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_TRUE(f->oversized);
  EXPECT_EQ(f->declared_size, 100u);
  EXPECT_TRUE(f->payload.empty());

  // The payload is swallowed, not delivered, and the stream recovers:
  dec.feed(encode_frame("after"));
  const auto g = dec.next();
  ASSERT_TRUE(g.has_value());
  EXPECT_FALSE(g->oversized);
  EXPECT_EQ(g->payload, "after");
}

TEST(Framing, OversizedPayloadArrivingInPiecesIsNeverBuffered) {
  FrameDecoder dec(/*max_frame_bytes=*/8);
  const std::string big(1 << 16, 'z');
  const std::string frame = encode_frame(big);
  // Header first: the oversized event fires before any payload arrives.
  dec.feed(frame.data(), kFrameHeaderBytes);
  const auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_TRUE(f->oversized);
  // Dribble the payload in; the decoder must not accumulate it.
  std::size_t pos = kFrameHeaderBytes;
  while (pos < frame.size()) {
    const std::size_t n = std::min<std::size_t>(4096, frame.size() - pos);
    dec.feed(frame.data() + pos, n);
    pos += n;
    EXPECT_FALSE(dec.next().has_value());
    EXPECT_LE(dec.buffered(), 0u) << "oversized payload bytes were buffered";
  }
  dec.feed(encode_frame("ok"));
  const auto g = dec.next();
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->payload, "ok");
}

TEST(Framing, InterleavedOversizedBetweenGoodFrames) {
  FrameDecoder dec(/*max_frame_bytes=*/16);
  std::string stream = encode_frame("first") + encode_frame(std::string(64, 'q')) +
                       encode_frame("last");
  dec.feed(stream);
  auto a = dec.next();
  ASSERT_TRUE(a && !a->oversized && a->payload == "first");
  auto b = dec.next();
  ASSERT_TRUE(b && b->oversized);
  auto c = dec.next();
  ASSERT_TRUE(c && !c->oversized && c->payload == "last");
  EXPECT_FALSE(dec.next().has_value());
}

TEST(Framing, HeaderSplitAcrossFeeds) {
  const std::string frame = encode_frame("abc");
  FrameDecoder dec;
  dec.feed(frame.data(), 2);
  EXPECT_FALSE(dec.next().has_value());
  dec.feed(frame.data() + 2, frame.size() - 2);
  const auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->payload, "abc");
}

// --- wire JSON --------------------------------------------------------------

TEST(WireJson, ParsesScalarsAndContainers) {
  const JsonValue v = parse_json(
      R"({"a": 1, "b": -2.5, "c": "s", "d": true, "e": null,
          "f": [1, 2, 3], "g": {"h": false}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("a").number, 1.0);
  EXPECT_EQ(v.at("b").number, -2.5);
  EXPECT_EQ(v.at("c").string, "s");
  EXPECT_TRUE(v.at("d").boolean);
  EXPECT_TRUE(v.at("e").is_null());
  ASSERT_EQ(v.at("f").items().size(), 3u);
  EXPECT_EQ(v.at("f").items()[2].number, 3.0);
  EXPECT_FALSE(v.at("g").at("h").boolean);
  EXPECT_TRUE(v.has("a"));
  EXPECT_FALSE(v.has("zz"));
  EXPECT_EQ(v.find("zz"), nullptr);
  EXPECT_THROW(v.at("zz"), ProtocolError);
}

TEST(WireJson, EscapesDecodeAndExponents) {
  const JsonValue v =
      parse_json(R"({"s": "a\"b\\c\nd\u0041", "x": 1.5e3, "y": 2E-2})");
  EXPECT_EQ(v.at("s").string, "a\"b\\c\ndA");
  EXPECT_EQ(v.at("x").number, 1500.0);
  EXPECT_EQ(v.at("y").number, 0.02);
}

TEST(WireJson, RejectsMalformedInput) {
  const char* cases[] = {
      "",
      "{",
      "}",
      "[1,]",
      "{\"a\":}",
      "{\"a\" 1}",
      "{'a': 1}",
      "\"unterminated",
      "1 2",
      "tru",
      "nul",
      "+1",
      "1.",
      "1e",
      "{\"a\": 1} trailing",
      "\"bad \\x escape\"",
      "\"trunc \\u00",
      "\"ctrl \x01 char\"",
  };
  for (const char* c : cases) {
    EXPECT_THROW(parse_json(c), ProtocolError) << "accepted: " << c;
  }
}

TEST(WireJson, ErrorsCarryByteOffsets) {
  try {
    parse_json("{\"a\": tru}");
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

TEST(WireJson, DepthCapStopsNestingBombs) {
  // Depth exactly at the cap parses; one deeper is rejected.
  std::string ok, bomb;
  for (std::size_t i = 0; i < kMaxJsonDepth; ++i) ok += "[";
  for (std::size_t i = 0; i < kMaxJsonDepth; ++i) ok += "]";
  bomb = "[" + ok + "]";
  EXPECT_NO_THROW(parse_json(ok));
  EXPECT_THROW(parse_json(bomb), ProtocolError);
}

TEST(WireJson, DuplicateKeysLastWins) {
  const JsonValue v = parse_json(R"({"k": 1, "k": 2})");
  EXPECT_EQ(v.at("k").number, 2.0);
}

}  // namespace
}  // namespace ceta::service
