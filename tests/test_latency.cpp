#include "chain/latency.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "helpers.hpp"
#include "sim/engine.hpp"
#include "sim/latency.hpp"

namespace ceta {
namespace {

SimOptions traced(Duration duration, std::uint64_t seed = 1) {
  SimOptions opt;
  opt.duration = duration;
  opt.seed = seed;
  opt.record_trace = true;
  return opt;
}

TEST(LatencyBounds, SimpleChainHandComputed) {
  // Chain {S, A, B}: W = 20ms, B = 0ms; R(B) = 2ms, B(B) = 1ms.
  const TaskGraph g = testing::simple_chain_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  EXPECT_EQ(max_data_age_bound(g, {0, 1, 2}, rtm), Duration::ms(22));
  EXPECT_EQ(min_data_age_bound(g, {0, 1, 2}, rtm), Duration::ms(1));
  // Reaction: T(S) + (T(A)+R(A)) + (T(B)+R(B)) = 10 + 12 + 22 = 44ms.
  EXPECT_EQ(max_reaction_time_bound(g, {0, 1, 2}, rtm), Duration::ms(44));
}

TEST(LatencyBounds, AgeAtLeastBackwardTimePlusBcet) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const TaskGraph g = testing::random_dag_graph(12, 3, seed + 300);
    const ResponseTimeMap rtm = testing::response_times_of(g);
    const TaskId sink = g.sinks().front();
    for (const Path& chain : enumerate_source_chains(g, sink)) {
      EXPECT_GE(max_data_age_bound(g, chain, rtm),
                wcbt_bound(g, chain, rtm));
      EXPECT_LE(min_data_age_bound(g, chain, rtm),
                max_data_age_bound(g, chain, rtm));
    }
  }
}

TEST(LatencyBounds, Preconditions) {
  const TaskGraph g = testing::simple_chain_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  EXPECT_THROW(max_reaction_time_bound(g, {}, rtm), PreconditionError);
  EXPECT_THROW(max_reaction_time_bound(g, {0, 2}, rtm), PreconditionError);
  ResponseTimeMap bad = rtm;
  bad[2] = Duration::max();
  EXPECT_THROW(max_reaction_time_bound(g, {0, 1, 2}, bad),
               PreconditionError);
}

TEST(MeasuredDataAge, DeterministicChain) {
  // S (T=10, offset 0) -> A (T=10, offset 2, W=B=1): every A job reads
  // the same-period S sample; age = (release + 1ms exec) − sample = 3ms.
  TaskGraph g;
  Task s;
  s.name = "S";
  s.period = Duration::ms(10);
  const TaskId sid = g.add_task(s);
  Task a;
  a.name = "A";
  a.wcet = a.bcet = Duration::ms(1);
  a.period = Duration::ms(10);
  a.offset = Duration::ms(2);
  a.ecu = 0;
  a.priority = 0;
  const TaskId aid = g.add_task(a);
  g.add_edge(sid, aid);
  g.validate();

  SimOptions opt = traced(Duration::ms(200));
  opt.exec_model = ExecTimeModel::kWorstCase;
  const SimResult res = Simulator(g, opt).run();
  const DataAgeMeasurement m = measured_data_ages(g, res.trace, {sid, aid});
  ASSERT_FALSE(m.ages.empty());
  for (Duration age : m.ages) {
    EXPECT_EQ(age, Duration::ms(3));
  }
}

TEST(MeasuredDataAge, WithinAnalyticalBounds) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const TaskGraph g = testing::random_dag_graph(10, 3, seed + 60);
    const ResponseTimeMap rtm = testing::response_times_of(g);
    const TaskId sink = g.sinks().front();
    const SimResult res = Simulator(g, traced(Duration::s(1), seed)).run();
    for (const Path& chain : enumerate_source_chains(g, sink)) {
      const Duration hi = max_data_age_bound(g, chain, rtm);
      const Duration lo = min_data_age_bound(g, chain, rtm);
      for (Duration age :
           measured_data_ages(g, res.trace, chain).ages) {
        EXPECT_LE(age, hi) << "seed " << seed;
        EXPECT_GE(age, lo) << "seed " << seed;
      }
    }
  }
}

TEST(MeasuredReaction, DeterministicChain) {
  // Same fixture as MeasuredDataAge: a sample taken at 10k is reflected
  // by the A job finishing at 10k + 3ms.
  TaskGraph g;
  Task s;
  s.name = "S";
  s.period = Duration::ms(10);
  const TaskId sid = g.add_task(s);
  Task a;
  a.name = "A";
  a.wcet = a.bcet = Duration::ms(1);
  a.period = Duration::ms(10);
  a.offset = Duration::ms(2);
  a.ecu = 0;
  a.priority = 0;
  const TaskId aid = g.add_task(a);
  g.add_edge(sid, aid);
  g.validate();

  SimOptions opt = traced(Duration::ms(200));
  opt.exec_model = ExecTimeModel::kWorstCase;
  const SimResult res = Simulator(g, opt).run();
  const ReactionMeasurement m = measured_reaction_times(
      g, res.trace, {sid, aid}, Duration::zero(), Duration::ms(150));
  ASSERT_FALSE(m.reactions.empty());
  EXPECT_EQ(m.unanswered, 0u);
  for (Duration r : m.reactions) {
    EXPECT_EQ(r, Duration::ms(3));
  }
}

TEST(MeasuredReaction, WithinAnalyticalBound) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const TaskGraph g = testing::random_dag_graph(10, 3, seed + 90);
    const ResponseTimeMap rtm = testing::response_times_of(g);
    const TaskId sink = g.sinks().front();
    const SimResult res = Simulator(g, traced(Duration::s(2), seed)).run();
    for (const Path& chain : enumerate_source_chains(g, sink)) {
      const Duration bound = max_reaction_time_bound(g, chain, rtm);
      // Only query stimuli early enough that an in-trace answer must
      // exist if the bound holds.
      const ReactionMeasurement m = measured_reaction_times(
          g, res.trace, chain, Duration::ms(100), Duration::s(2) - bound);
      for (Duration r : m.reactions) {
        EXPECT_LE(r, bound) << "seed " << seed;
      }
      EXPECT_EQ(m.unanswered, 0u) << "seed " << seed;
    }
  }
}

TEST(MeasuredReaction, UnansweredAtTraceEnd) {
  TaskGraph g = testing::simple_chain_graph();
  const SimResult res = Simulator(g, traced(Duration::ms(100))).run();
  // Querying stimuli right up to the end leaves the last ones unanswered.
  const ReactionMeasurement m = measured_reaction_times(
      g, res.trace, {0, 1, 2}, Duration::zero(), Instant::max());
  EXPECT_GT(m.unanswered, 0u);
}

TEST(MeasuredReaction, Preconditions) {
  const TaskGraph g = testing::simple_chain_graph();
  const SimResult res = Simulator(g, traced(Duration::ms(50))).run();
  EXPECT_THROW(measured_reaction_times(g, res.trace, {1, 2}, Instant::zero(),
                                       Instant::max()),
               PreconditionError);
}

}  // namespace
}  // namespace ceta
