// Differential-verification harness: the clean campaign finds nothing on
// the real analyses, the injected-fault campaign *must* find something
// (and shrink it small), fixtures round-trip, and capacity limits are
// skipped-and-counted rather than fatal.

#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"
#include "graph/task_graph.hpp"
#include "helpers.hpp"
#include "verify/fixture.hpp"
#include "verify/property_checker.hpp"
#include "verify/shrink.hpp"

namespace ceta {
namespace {

using verify::CheckerOptions;
using verify::CheckerReport;
using verify::FaultInjection;
using verify::Fixture;
using verify::ProbeConfig;
using verify::Property;
using verify::PropertyChecker;
using verify::PropertyOutcome;

TEST(PropertyNames, RoundTrip) {
  for (std::size_t i = 0; i < verify::kNumProperties; ++i) {
    const auto p = static_cast<Property>(i);
    const char* name = verify::property_name(p);
    ASSERT_NE(name, nullptr);
    const auto back = verify::property_from_name(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, p);
  }
  EXPECT_FALSE(verify::property_from_name("no_such_property").has_value());
}

TEST(PropertyChecker, CleanCampaignFindsNoViolations) {
  CheckerOptions opt;
  opt.seed = 7;
  opt.trials = 30;
  opt.max_tasks = 10;
  PropertyChecker checker(opt);
  const CheckerReport report = checker.run();
  EXPECT_TRUE(report.ok()) << (report.violations.empty()
                                   ? std::string("?")
                                   : violation_report(report.violations[0]));
  EXPECT_EQ(report.stats.trials, opt.trials);
  EXPECT_GT(report.stats.graphs_checked, 0u);
  EXPECT_GT(report.stats.properties_checked, 0u);
}

TEST(PropertyChecker, HandGraphNeverViolates) {
  // Every property either holds or legitimately skips on the hand-built
  // diamond; none may flag a violation.
  const TaskGraph g = testing::diamond_graph();
  const TaskId sink = 4;
  const ProbeConfig cfg;
  for (std::size_t i = 0; i < verify::kNumProperties; ++i) {
    const auto p = static_cast<Property>(i);
    const PropertyOutcome out = verify::check_property(p, g, sink, cfg);
    EXPECT_FALSE(out.violated())
        << verify::property_name(p) << ": " << out.detail;
  }
}

TEST(PropertyChecker, InjectedFaultIsCaughtAndShrunk) {
  // The kDropHeadPeriod mutation weakens the analytical bounds by one head
  // period; the oracles must notice within a modest fixed-seed campaign,
  // and the shrinker must get the counterexample down to a handful of
  // tasks.
  CheckerOptions opt;
  opt.seed = 42;
  opt.trials = 60;
  opt.probe.fault = FaultInjection::kDropHeadPeriod;
  opt.max_violations = 1;
  PropertyChecker checker(opt);
  const CheckerReport report = checker.run();
  ASSERT_FALSE(report.ok())
      << "injected off-by-one survived " << report.stats.trials << " trials";
  const verify::Violation& v = report.violations.front();
  EXPECT_LE(v.graph.num_tasks(), 5u);
  EXPECT_GE(v.original_tasks, v.graph.num_tasks());
  EXPECT_LT(v.task, v.graph.num_tasks());
  EXPECT_NO_THROW(v.graph.validate());
  EXPECT_FALSE(v.detail.empty());
  // The shrunken instance still fails the same property when re-checked
  // through the pure entry point (this is what a committed fixture does).
  ProbeConfig cfg = opt.probe;
  cfg.sim_seed = v.sim_seed;
  EXPECT_TRUE(verify::check_property(v.property, v.graph, v.task, cfg)
                  .violated());
}

TEST(PropertyChecker, InjectedExploreFaultIsCaughtAndShrunk) {
  // kSkipExploreRollback desynchronizes the explorer's engine from its
  // config mirror; the explored_configs_revalidate property must catch the
  // resulting non-replayable archive entries within a fixed-seed campaign,
  // and the shrunk fixture must still fail through the pure entry point.
  CheckerOptions opt;
  opt.seed = 42;
  opt.trials = 40;
  opt.probe.fault = FaultInjection::kSkipExploreRollback;
  opt.max_violations = 1;
  PropertyChecker checker(opt);
  const CheckerReport report = checker.run();
  ASSERT_FALSE(report.ok())
      << "skipped rollback survived " << report.stats.trials << " trials";
  const verify::Violation& v = report.violations.front();
  EXPECT_EQ(v.property, Property::kExploredConfigsRevalidate);
  EXPECT_GE(v.original_tasks, v.graph.num_tasks());
  EXPECT_NO_THROW(v.graph.validate());
  ProbeConfig cfg = opt.probe;
  cfg.sim_seed = v.sim_seed;
  EXPECT_TRUE(verify::check_property(v.property, v.graph, v.task, cfg)
                  .violated());
}

TEST(PropertyChecker, InjectedPreemptiveFaultIsCaughtAndShrunk) {
  // kDropPreemptiveInterference removes the largest higher-priority
  // interferer from every preemptive busy-window fixpoint; on the checker's
  // mixed-policy twins the simulator must observe a response time above the
  // weakened WCRT within a fixed-seed campaign, and the shrunk fixture must
  // still fail through the pure entry point.
  CheckerOptions opt;
  opt.seed = 42;
  opt.trials = 80;
  opt.max_tasks = 10;
  opt.probe.fault = FaultInjection::kDropPreemptiveInterference;
  opt.max_violations = 1;
  PropertyChecker checker(opt);
  const CheckerReport report = checker.run();
  ASSERT_FALSE(report.ok()) << "dropped preemptive interference survived "
                            << report.stats.trials << " trials";
  const verify::Violation& v = report.violations.front();
  EXPECT_EQ(v.property, Property::kRtaPolicyMatchesSim);
  EXPECT_GE(v.original_tasks, v.graph.num_tasks());
  EXPECT_NO_THROW(v.graph.validate());
  ProbeConfig cfg = opt.probe;
  cfg.sim_seed = v.sim_seed;
  EXPECT_TRUE(verify::check_property(v.property, v.graph, v.task, cfg)
                  .violated());
}

TEST(PropertyChecker, InjectedEdfFaultIsCaughtAndShrunk) {
  // kEdfUndercount shaves one job off every EDF deadline-capped
  // interference term; rta_policy_matches_sim must catch the underestimate
  // on the EDF ECUs of its mixed-policy twins.
  CheckerOptions opt;
  opt.seed = 42;
  opt.trials = 80;
  opt.max_tasks = 10;
  opt.probe.fault = FaultInjection::kEdfUndercount;
  opt.max_violations = 1;
  PropertyChecker checker(opt);
  const CheckerReport report = checker.run();
  ASSERT_FALSE(report.ok()) << "EDF interference undercount survived "
                            << report.stats.trials << " trials";
  const verify::Violation& v = report.violations.front();
  EXPECT_EQ(v.property, Property::kRtaPolicyMatchesSim);
  EXPECT_GE(v.original_tasks, v.graph.num_tasks());
  EXPECT_NO_THROW(v.graph.validate());
  ProbeConfig cfg = opt.probe;
  cfg.sim_seed = v.sim_seed;
  EXPECT_TRUE(verify::check_property(v.property, v.graph, v.task, cfg)
                  .violated());
}

TEST(PropertyChecker, InjectedMcFaultIsCaughtByMonteCarloProperty) {
  // kCorruptMcSamples inflates every Monte-Carlo disparity sample 1000x;
  // on a graph with any measured disparity at all, the empirical samples
  // must then blow through the S-diff bound.  Checked on the diamond
  // directly — no campaign needed.
  const TaskGraph g = testing::diamond_graph();
  const TaskId sink = 4;
  ProbeConfig cfg;
  cfg.fault = FaultInjection::kCorruptMcSamples;
  const PropertyOutcome out = verify::check_property(
      Property::kMonteCarloWithinBounds, g, sink, cfg);
  ASSERT_TRUE(out.violated()) << out.detail;
  EXPECT_NE(out.detail.find("monte-carlo"), std::string::npos) << out.detail;
}

TEST(Fixture, RoundTripsThroughText) {
  Fixture f;
  f.property = Property::kSimWithinBound;
  f.task = "E";
  f.sim_seed = 12345;
  f.detail = "sim 12.4ms > S-diff 11.1ms";
  f.graph = testing::diamond_graph();
  const std::string text = verify::to_text(f);
  const Fixture back = verify::fixture_from_text(text);
  EXPECT_EQ(back.property, Property::kSimWithinBound);
  EXPECT_EQ(back.task, "E");
  EXPECT_EQ(back.sim_seed, 12345u);
  EXPECT_EQ(back.detail, f.detail);
  EXPECT_EQ(back.graph.num_tasks(), f.graph.num_tasks());
  EXPECT_EQ(back.graph.task(verify::fixture_task(back)).name, "E");
}

TEST(Fixture, RejectsMissingDirectives) {
  EXPECT_THROW(verify::fixture_from_text("task a 0 0 1000000 0 0 -1\n"),
               PreconditionError);
}

TEST(Shrink, ReducesToPredicateMinimum) {
  // A synthetic predicate that only counts tasks: the shrinker must drive
  // the 9-task two-chain instance down to exactly the predicate's floor.
  const TaskGraph g = testing::random_two_chain_graph(4, 2, /*seed=*/3);
  const TaskId sink = g.sinks().front();
  ASSERT_GE(g.num_tasks(), 4u);
  const auto still_fails = [](const TaskGraph& cand, TaskId) {
    return cand.num_tasks() >= 4;
  };
  const verify::ShrinkResult res =
      verify::shrink_counterexample(g, sink, still_fails);
  EXPECT_EQ(res.graph.num_tasks(), 4u);
  EXPECT_NO_THROW(res.graph.validate());
  EXPECT_LT(res.task, res.graph.num_tasks());
  EXPECT_GT(res.attempts, 0u);
}

/// Two sources with huge coprime prime periods: the exact oracle's
/// hyperperiod overflows / exceeds the release cap, which must surface as
/// a counted capacity skip, never an error.
TaskGraph coprime_period_graph() {
  TaskGraph g;
  Task s1;
  s1.name = "S1";
  s1.period = Duration::ns(999'999'937);
  g.add_task(s1);
  Task s2;
  s2.name = "S2";
  s2.period = Duration::ns(1'000'000'007);
  g.add_task(s2);
  Task f;
  f.name = "F";
  f.wcet = f.bcet = Duration::us(100);
  f.period = Duration::ms(1);
  f.ecu = 0;
  f.priority = 0;
  f.comm = CommSemantics::kLet;
  const TaskId fid = g.add_task(f);
  g.add_edge(0, fid);
  g.add_edge(1, fid);
  g.validate();
  return g;
}

TEST(PropertyChecker, CoprimePeriodsAreCapacitySkippedNotFatal) {
  const TaskGraph g = coprime_period_graph();
  const TaskId sink = g.sinks().front();
  const ProbeConfig cfg;
  const PropertyOutcome out =
      verify::check_property(Property::kExactMatchesSim, g, sink, cfg);
  EXPECT_EQ(out.status, PropertyOutcome::Status::kSkipped) << out.detail;
  EXPECT_TRUE(out.capacity_skip) << out.detail;

  // Through the campaign accumulator the same skip is counted, not fatal.
  PropertyChecker checker;
  CheckerReport report;
  checker.check_instance(g, sink, cfg, report);
  EXPECT_TRUE(report.ok());
  EXPECT_GT(report.stats.skipped_capacity, 0u);
}

}  // namespace
}  // namespace ceta
