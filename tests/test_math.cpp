#include "common/math.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace ceta {
namespace {

TEST(FloorDiv, PositiveOperands) {
  EXPECT_EQ(floor_div(7, 2), 3);
  EXPECT_EQ(floor_div(8, 2), 4);
  EXPECT_EQ(floor_div(0, 5), 0);
}

TEST(FloorDiv, NegativeNumeratorRoundsDown) {
  // C++ '/' truncates toward zero; the analysis needs mathematical floor.
  EXPECT_EQ(floor_div(-7, 2), -4);
  EXPECT_EQ(floor_div(-8, 2), -4);
  EXPECT_EQ(floor_div(-1, 10), -1);
}

TEST(CeilDiv, PositiveOperands) {
  EXPECT_EQ(ceil_div(7, 2), 4);
  EXPECT_EQ(ceil_div(8, 2), 4);
  EXPECT_EQ(ceil_div(0, 5), 0);
}

TEST(CeilDiv, NegativeNumeratorRoundsUp) {
  EXPECT_EQ(ceil_div(-7, 2), -3);
  EXPECT_EQ(ceil_div(-8, 2), -4);
  EXPECT_EQ(ceil_div(-1, 10), 0);
}

TEST(FloorCeilDiv, RejectNonPositiveDivisor) {
  EXPECT_THROW(floor_div(1, 0), PreconditionError);
  EXPECT_THROW(floor_div(1, -2), PreconditionError);
  EXPECT_THROW(ceil_div(1, 0), PreconditionError);
  EXPECT_THROW(ceil_div(1, -2), PreconditionError);
}

TEST(FloorCeilDiv, DurationOverloads) {
  EXPECT_EQ(floor_div(Duration::ms(25), Duration::ms(10)), 2);
  EXPECT_EQ(ceil_div(Duration::ms(25), Duration::ms(10)), 3);
  EXPECT_EQ(floor_div(Duration::ms(-25), Duration::ms(10)), -3);
}

TEST(FloorCeilDiv, FloorLeCeil) {
  for (std::int64_t a = -30; a <= 30; ++a) {
    for (std::int64_t b = 1; b <= 7; ++b) {
      EXPECT_LE(floor_div(a, b), ceil_div(a, b));
      EXPECT_LE(ceil_div(a, b) - floor_div(a, b), 1);
      // Defining inequalities of floor/ceil.
      EXPECT_LE(floor_div(a, b) * b, a);
      EXPECT_GT((floor_div(a, b) + 1) * b, a);
      EXPECT_GE(ceil_div(a, b) * b, a);
      EXPECT_LT((ceil_div(a, b) - 1) * b, a);
    }
  }
}

TEST(FloorToMultiple, MatchesPaperPattern) {
  // floor(X / T) * T, the repeated pattern in Theorems 1-3.
  EXPECT_EQ(floor_to_multiple(Duration::ms(41), Duration::ms(10)),
            Duration::ms(40));
  EXPECT_EQ(floor_to_multiple(Duration::ms(40), Duration::ms(10)),
            Duration::ms(40));
  EXPECT_EQ(floor_to_multiple(Duration::ms(-1), Duration::ms(10)),
            Duration::ms(-10));
}

TEST(FloorMod, AlwaysInRange) {
  for (std::int64_t a = -30; a <= 30; ++a) {
    const std::int64_t m = floor_mod(a, 7);
    EXPECT_GE(m, 0);
    EXPECT_LT(m, 7);
    EXPECT_EQ(floor_div(a, 7) * 7 + m, a);
  }
}

TEST(Gcd64, Basic) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(7, 13), 1);
  EXPECT_THROW(gcd64(0, 5), PreconditionError);
}

TEST(Lcm64Checked, Basic) {
  EXPECT_EQ(lcm64_checked(4, 6), 12);
  EXPECT_EQ(lcm64_checked(10, 10), 10);
}

TEST(Lcm64Checked, OverflowThrows) {
  EXPECT_THROW(lcm64_checked(INT64_MAX - 1, INT64_MAX - 2), CapacityError);
}

TEST(Hyperperiod, WatersPeriods) {
  const std::vector<std::int64_t> periods = {
      1'000'000, 2'000'000, 5'000'000, 10'000'000,
      20'000'000, 50'000'000, 100'000'000, 200'000'000};
  EXPECT_EQ(hyperperiod(periods.data(), periods.size()),
            Duration::ms(200));
}

TEST(Hyperperiod, RejectsEmptyAndNonPositive) {
  EXPECT_THROW(hyperperiod(nullptr, 0), PreconditionError);
  const std::int64_t bad = -1;
  EXPECT_THROW(hyperperiod(&bad, 1), PreconditionError);
}

}  // namespace
}  // namespace ceta
