// Minimal recursive-descent JSON parser for the observability tests: the
// trace and metrics exporters promise *valid* JSON, so the tests parse
// their output with an independent implementation (not obs::JsonWriter)
// and assert on the resulting tree.
//
// Supports the full JSON grammar (RFC 8259) minus \uXXXX surrogate-pair
// decoding (escapes are validated and kept verbatim).  Numbers are parsed
// as double; integral values round-trip exactly up to 2^53, far beyond
// any counter the tests inspect.  Throws std::runtime_error with an
// offset-annotated message on malformed input.

#pragma once

#include <cctype>
#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ceta::testing {

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::shared_ptr<JsonArray> array;
  std::shared_ptr<JsonObject> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  /// Object member access; throws if not an object or the key is absent.
  const JsonValue& at(const std::string& k) const {
    if (!is_object()) throw std::runtime_error("not an object");
    const auto it = object->find(k);
    if (it == object->end()) throw std::runtime_error("missing key '" + k + "'");
    return it->second;
  }
  bool has(const std::string& k) const {
    return is_object() && object->count(k) > 0;
  }
  const JsonArray& items() const {
    if (!is_array()) throw std::runtime_error("not an array");
    return *array;
  }
  std::size_t size() const {
    if (is_array()) return array->size();
    if (is_object()) return object->size();
    throw std::runtime_error("not a container");
  }
};

class JsonParser {
 public:
  /// Parse `text` as exactly one JSON document (trailing whitespace only).
  static JsonValue parse(std::string_view text) {
    JsonParser p(text);
    const JsonValue v = p.parse_value();
    p.skip_ws();
    if (p.pos_ != text.size()) p.fail("trailing content after document");
    return v;
  }

 private:
  explicit JsonParser(std::string_view text) : text_(text) {}

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON error at offset " + std::to_string(pos_) +
                             ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f':
        return parse_bool();
      case 'n':
        parse_literal("null");
        return JsonValue{};
      default:
        return parse_number();
    }
  }

  void parse_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      fail("bad literal, expected '" + std::string(lit) + "'");
    }
    pos_ += lit.size();
  }

  JsonValue parse_bool() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (peek() == 't') {
      parse_literal("true");
      v.boolean = true;
    } else {
      parse_literal("false");
      v.boolean = false;
    }
    return v;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("bad number");
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("digit required after decimal point");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("digit required in exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + static_cast<std::size_t>(i)];
            if (!std::isxdigit(static_cast<unsigned char>(h))) {
              fail("bad hex digit in \\u escape");
            }
            code = code * 16 +
                   static_cast<unsigned>(
                       h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10);
          }
          // ASCII code points are decoded (all the writer emits for
          // control characters); anything else — including surrogate
          // pairs — is validated but kept verbatim, since no test
          // asserts on non-ASCII content.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else {
            out += "\\u";
            out += text_.substr(pos_, 4);
          }
          pos_ += 4;
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    v.array = std::make_shared<JsonArray>();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array->push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    v.object = std::make_shared<JsonObject>();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      (*v.object)[std::move(key)] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace ceta::testing
