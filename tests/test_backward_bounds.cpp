#include "chain/backward_bounds.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "helpers.hpp"

namespace ceta {
namespace {

/// S -> A -> B where B has the *higher* priority (exercises the
/// non-preemptive low-to-high hop case of Lemma 4).
///   A: W=2, B=1, T=10ms, prio 1;  Bt: W=3, B=2, T=20ms, prio 0.
/// Hand-computed: R(Bt) = 2+3 = 5, R(A) = 3+2 = 5.
/// θ_S = 10, θ_A = T+R−(W_A+B_B) = 10+5−(2+2) = 11 → W(π)=21.
/// B(π) = 0+1+2−5 = −2.
TaskGraph low_to_high_chain() {
  TaskGraph g;
  Task s;
  s.name = "S";
  s.period = Duration::ms(10);
  const TaskId sid = g.add_task(s);
  Task a;
  a.name = "A";
  a.wcet = Duration::ms(2);
  a.bcet = Duration::ms(1);
  a.period = Duration::ms(10);
  a.ecu = 0;
  a.priority = 1;
  const TaskId aid = g.add_task(a);
  Task b;
  b.name = "B";
  b.wcet = Duration::ms(3);
  b.bcet = Duration::ms(2);
  b.period = Duration::ms(20);
  b.ecu = 0;
  b.priority = 0;
  const TaskId bid = g.add_task(b);
  g.add_edge(sid, aid);
  g.add_edge(aid, bid);
  g.validate();
  return g;
}

TEST(HopBound, SourceHopIsOnePeriod) {
  const TaskGraph g = testing::simple_chain_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  EXPECT_EQ(hop_bound(g, 0, 1, rtm, HopBoundMethod::kNonPreemptive),
            Duration::ms(10));
}

TEST(HopBound, HigherPriorityPredecessorSameEcu) {
  const TaskGraph g = testing::simple_chain_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  // A in hp(B), same ECU: θ = T(A).
  EXPECT_EQ(hop_bound(g, 1, 2, rtm, HopBoundMethod::kNonPreemptive),
            Duration::ms(10));
}

TEST(HopBound, LowerPriorityPredecessorSameEcu) {
  const TaskGraph g = low_to_high_chain();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  EXPECT_EQ(rtm[1], Duration::ms(5));
  EXPECT_EQ(rtm[2], Duration::ms(5));
  // θ = T + R − (W(A) + B(B)) = 10 + 5 − 4 = 11.
  EXPECT_EQ(hop_bound(g, 1, 2, rtm, HopBoundMethod::kNonPreemptive),
            Duration::ms(11));
}

TEST(HopBound, CrossEcuHop) {
  const TaskGraph g = testing::diamond_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  // C(ecu0) -> E(ecu1): θ = T(C) + R(C) = 22ms.
  EXPECT_EQ(hop_bound(g, 2, 4, rtm, HopBoundMethod::kNonPreemptive),
            Duration::ms(22));
}

TEST(HopBound, SchedulingAgnosticAlwaysTPlusR) {
  const TaskGraph g = testing::simple_chain_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  EXPECT_EQ(hop_bound(g, 1, 2, rtm, HopBoundMethod::kSchedulingAgnostic),
            Duration::ms(12));
  EXPECT_EQ(hop_bound(g, 0, 1, rtm, HopBoundMethod::kSchedulingAgnostic),
            Duration::ms(10));
}

TEST(HopBound, RequiresExistingEdge) {
  const TaskGraph g = testing::simple_chain_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  EXPECT_THROW(hop_bound(g, 2, 0, rtm, HopBoundMethod::kNonPreemptive),
               PreconditionError);
}

TEST(Wcbt, SimpleChainHandComputed) {
  const TaskGraph g = testing::simple_chain_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  EXPECT_EQ(wcbt_bound(g, {0, 1, 2}, rtm), Duration::ms(20));
}

TEST(Wcbt, DiamondChainsHandComputed) {
  const TaskGraph g = testing::diamond_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  EXPECT_EQ(wcbt_bound(g, {0, 1, 2, 4}, rtm), Duration::ms(42));
  EXPECT_EQ(wcbt_bound(g, {0, 1, 3, 4}, rtm), Duration::ms(42));
}

TEST(Bcbt, HandComputed) {
  const TaskGraph g = testing::simple_chain_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  EXPECT_EQ(bcbt_bound(g, {0, 1, 2}, rtm), Duration::ms(0));

  const TaskGraph d = testing::diamond_graph();
  const ResponseTimeMap rtd = testing::response_times_of(d);
  EXPECT_EQ(bcbt_bound(d, {0, 1, 2, 4}, rtd), Duration::ms(1));
}

TEST(Bcbt, CanBeNegative) {
  const TaskGraph g = low_to_high_chain();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  EXPECT_EQ(bcbt_bound(g, {0, 1, 2}, rtm), Duration::ms(-2));
}

TEST(Wcbt, LowToHighChainHandComputed) {
  const TaskGraph g = low_to_high_chain();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  EXPECT_EQ(wcbt_bound(g, {0, 1, 2}, rtm), Duration::ms(21));
}

TEST(BackwardBounds, SingleTaskChainIsZero) {
  const TaskGraph g = testing::simple_chain_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const BackwardBounds b = backward_bounds(g, {0}, rtm);
  EXPECT_EQ(b.wcbt, Duration::zero());
  EXPECT_EQ(b.bcbt, Duration::zero());
  const BackwardBounds b2 = backward_bounds(g, {2}, rtm);
  EXPECT_EQ(b2.wcbt, Duration::zero());
  EXPECT_EQ(b2.bcbt, Duration::zero());
}

TEST(BackwardBounds, AgnosticAtLeastAsLooseAsLemma4) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const TaskGraph g = testing::random_dag_graph(14, 3, seed);
    const ResponseTimeMap rtm = testing::response_times_of(g);
    const TaskId sink = g.sinks().front();
    for (const Path& chain : enumerate_source_chains(g, sink)) {
      EXPECT_GE(wcbt_bound(g, chain, rtm, HopBoundMethod::kSchedulingAgnostic),
                wcbt_bound(g, chain, rtm, HopBoundMethod::kNonPreemptive))
          << "seed " << seed;
    }
  }
}

TEST(BackwardBounds, BcbtNeverAboveWcbt) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const TaskGraph g = testing::random_dag_graph(14, 3, seed);
    const ResponseTimeMap rtm = testing::response_times_of(g);
    const TaskId sink = g.sinks().front();
    for (const Path& chain : enumerate_source_chains(g, sink)) {
      const BackwardBounds b = backward_bounds(g, chain, rtm);
      EXPECT_LE(b.bcbt, b.wcbt) << "seed " << seed;
    }
  }
}

TEST(BufferedBounds, Lemma6ShiftsBothBounds) {
  const TaskGraph g = testing::simple_chain_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const BackwardBounds base = backward_bounds(g, {0, 1, 2}, rtm);
  const BackwardBounds buf3 = buffered_backward_bounds(g, {0, 1, 2}, rtm, 3);
  // (n−1)·T(S) = 2·10ms.
  EXPECT_EQ(buf3.wcbt, base.wcbt + Duration::ms(20));
  EXPECT_EQ(buf3.bcbt, base.bcbt + Duration::ms(20));
  const BackwardBounds buf1 = buffered_backward_bounds(g, {0, 1, 2}, rtm, 1);
  EXPECT_EQ(buf1.wcbt, base.wcbt);
  EXPECT_EQ(buf1.bcbt, base.bcbt);
}

TEST(BufferedBounds, GraphConfiguredBufferHonored) {
  TaskGraph g = testing::simple_chain_graph();
  g.set_buffer_size(0, 1, 4);
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const BackwardBounds b = backward_bounds(g, {0, 1, 2}, rtm);
  EXPECT_EQ(b.wcbt, Duration::ms(20 + 30));
  EXPECT_EQ(b.bcbt, Duration::ms(0 + 30));
  // Explicit override replaces the configured head-channel size.
  const BackwardBounds b1 = buffered_backward_bounds(g, {0, 1, 2}, rtm, 1);
  EXPECT_EQ(b1.wcbt, Duration::ms(20));
}

TEST(BufferedBounds, MidChainBufferShiftsByProducerPeriod) {
  TaskGraph g = testing::simple_chain_graph();
  g.set_buffer_size(1, 2, 2);  // buffer on A -> B
  const ResponseTimeMap rtm = testing::response_times_of(g);
  const BackwardBounds b = backward_bounds(g, {0, 1, 2}, rtm);
  EXPECT_EQ(b.wcbt, Duration::ms(20 + 10));  // +(2−1)·T(A)
}

TEST(BackwardBounds, Preconditions) {
  const TaskGraph g = testing::simple_chain_graph();
  const ResponseTimeMap rtm = testing::response_times_of(g);
  EXPECT_THROW(wcbt_bound(g, {}, rtm), PreconditionError);
  EXPECT_THROW(wcbt_bound(g, {0, 2}, rtm), PreconditionError);  // not a path
  ResponseTimeMap bad = rtm;
  bad.pop_back();
  EXPECT_THROW(wcbt_bound(g, {0, 1, 2}, bad), PreconditionError);
  ResponseTimeMap unsched = rtm;
  unsched[1] = Duration::max();
  EXPECT_THROW(wcbt_bound(g, {0, 1, 2}, unsched), PreconditionError);
  EXPECT_THROW(buffered_backward_bounds(g, {0}, rtm, 2), PreconditionError);
}

}  // namespace
}  // namespace ceta
