# Empty dependencies file for ablation_frequency.
# This may be replaced when dependencies are built.
