file(REMOVE_RECURSE
  "../bench/ablation_frequency"
  "../bench/ablation_frequency.pdb"
  "CMakeFiles/ablation_frequency.dir/ablation_frequency.cpp.o"
  "CMakeFiles/ablation_frequency.dir/ablation_frequency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
