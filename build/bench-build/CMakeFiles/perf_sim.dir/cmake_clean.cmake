file(REMOVE_RECURSE
  "../bench/perf_sim"
  "../bench/perf_sim.pdb"
  "CMakeFiles/perf_sim.dir/perf_sim.cpp.o"
  "CMakeFiles/perf_sim.dir/perf_sim.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
