# Empty compiler generated dependencies file for perf_sim.
# This may be replaced when dependencies are built.
