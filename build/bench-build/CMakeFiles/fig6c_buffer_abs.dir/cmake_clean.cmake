file(REMOVE_RECURSE
  "../bench/fig6c_buffer_abs"
  "../bench/fig6c_buffer_abs.pdb"
  "CMakeFiles/fig6c_buffer_abs.dir/fig6c_buffer_abs.cpp.o"
  "CMakeFiles/fig6c_buffer_abs.dir/fig6c_buffer_abs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6c_buffer_abs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
