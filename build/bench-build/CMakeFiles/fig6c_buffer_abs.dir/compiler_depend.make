# Empty compiler generated dependencies file for fig6c_buffer_abs.
# This may be replaced when dependencies are built.
