file(REMOVE_RECURSE
  "../bench/ablation_preemptive"
  "../bench/ablation_preemptive.pdb"
  "CMakeFiles/ablation_preemptive.dir/ablation_preemptive.cpp.o"
  "CMakeFiles/ablation_preemptive.dir/ablation_preemptive.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_preemptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
