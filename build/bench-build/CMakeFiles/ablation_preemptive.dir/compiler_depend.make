# Empty compiler generated dependencies file for ablation_preemptive.
# This may be replaced when dependencies are built.
