# Empty dependencies file for ablation_offset_sync.
# This may be replaced when dependencies are built.
