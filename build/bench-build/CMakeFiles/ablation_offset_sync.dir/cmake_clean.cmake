file(REMOVE_RECURSE
  "../bench/ablation_offset_sync"
  "../bench/ablation_offset_sync.pdb"
  "CMakeFiles/ablation_offset_sync.dir/ablation_offset_sync.cpp.o"
  "CMakeFiles/ablation_offset_sync.dir/ablation_offset_sync.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_offset_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
