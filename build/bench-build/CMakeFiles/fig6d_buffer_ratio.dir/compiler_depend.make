# Empty compiler generated dependencies file for fig6d_buffer_ratio.
# This may be replaced when dependencies are built.
