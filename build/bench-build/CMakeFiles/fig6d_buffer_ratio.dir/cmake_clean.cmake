file(REMOVE_RECURSE
  "../bench/fig6d_buffer_ratio"
  "../bench/fig6d_buffer_ratio.pdb"
  "CMakeFiles/fig6d_buffer_ratio.dir/fig6d_buffer_ratio.cpp.o"
  "CMakeFiles/fig6d_buffer_ratio.dir/fig6d_buffer_ratio.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6d_buffer_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
