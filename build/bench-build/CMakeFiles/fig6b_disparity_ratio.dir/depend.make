# Empty dependencies file for fig6b_disparity_ratio.
# This may be replaced when dependencies are built.
