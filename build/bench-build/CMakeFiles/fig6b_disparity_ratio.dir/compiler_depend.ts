# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig6b_disparity_ratio.
