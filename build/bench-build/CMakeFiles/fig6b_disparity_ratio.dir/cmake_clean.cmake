file(REMOVE_RECURSE
  "../bench/fig6b_disparity_ratio"
  "../bench/fig6b_disparity_ratio.pdb"
  "CMakeFiles/fig6b_disparity_ratio.dir/fig6b_disparity_ratio.cpp.o"
  "CMakeFiles/fig6b_disparity_ratio.dir/fig6b_disparity_ratio.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_disparity_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
