file(REMOVE_RECURSE
  "../bench/ablation_hop_bounds"
  "../bench/ablation_hop_bounds.pdb"
  "CMakeFiles/ablation_hop_bounds.dir/ablation_hop_bounds.cpp.o"
  "CMakeFiles/ablation_hop_bounds.dir/ablation_hop_bounds.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hop_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
