# Empty compiler generated dependencies file for ablation_hop_bounds.
# This may be replaced when dependencies are built.
