file(REMOVE_RECURSE
  "../bench/ablation_let"
  "../bench/ablation_let.pdb"
  "CMakeFiles/ablation_let.dir/ablation_let.cpp.o"
  "CMakeFiles/ablation_let.dir/ablation_let.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_let.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
