# Empty compiler generated dependencies file for ablation_let.
# This may be replaced when dependencies are built.
