file(REMOVE_RECURSE
  "../bench/fig6a_disparity_abs"
  "../bench/fig6a_disparity_abs.pdb"
  "CMakeFiles/fig6a_disparity_abs.dir/fig6a_disparity_abs.cpp.o"
  "CMakeFiles/fig6a_disparity_abs.dir/fig6a_disparity_abs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_disparity_abs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
