# Empty dependencies file for fig6a_disparity_abs.
# This may be replaced when dependencies are built.
