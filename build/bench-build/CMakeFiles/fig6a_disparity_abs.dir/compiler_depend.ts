# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig6a_disparity_abs.
