file(REMOVE_RECURSE
  "../bench/perf_analysis"
  "../bench/perf_analysis.pdb"
  "CMakeFiles/perf_analysis.dir/perf_analysis.cpp.o"
  "CMakeFiles/perf_analysis.dir/perf_analysis.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
