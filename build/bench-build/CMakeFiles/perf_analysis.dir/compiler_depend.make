# Empty compiler generated dependencies file for perf_analysis.
# This may be replaced when dependencies are built.
