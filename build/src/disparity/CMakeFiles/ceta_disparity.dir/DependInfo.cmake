
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/disparity/analyzer.cpp" "src/disparity/CMakeFiles/ceta_disparity.dir/analyzer.cpp.o" "gcc" "src/disparity/CMakeFiles/ceta_disparity.dir/analyzer.cpp.o.d"
  "/root/repo/src/disparity/buffer_opt.cpp" "src/disparity/CMakeFiles/ceta_disparity.dir/buffer_opt.cpp.o" "gcc" "src/disparity/CMakeFiles/ceta_disparity.dir/buffer_opt.cpp.o.d"
  "/root/repo/src/disparity/exact.cpp" "src/disparity/CMakeFiles/ceta_disparity.dir/exact.cpp.o" "gcc" "src/disparity/CMakeFiles/ceta_disparity.dir/exact.cpp.o.d"
  "/root/repo/src/disparity/forkjoin.cpp" "src/disparity/CMakeFiles/ceta_disparity.dir/forkjoin.cpp.o" "gcc" "src/disparity/CMakeFiles/ceta_disparity.dir/forkjoin.cpp.o.d"
  "/root/repo/src/disparity/multi_buffer.cpp" "src/disparity/CMakeFiles/ceta_disparity.dir/multi_buffer.cpp.o" "gcc" "src/disparity/CMakeFiles/ceta_disparity.dir/multi_buffer.cpp.o.d"
  "/root/repo/src/disparity/offset_opt.cpp" "src/disparity/CMakeFiles/ceta_disparity.dir/offset_opt.cpp.o" "gcc" "src/disparity/CMakeFiles/ceta_disparity.dir/offset_opt.cpp.o.d"
  "/root/repo/src/disparity/pairwise.cpp" "src/disparity/CMakeFiles/ceta_disparity.dir/pairwise.cpp.o" "gcc" "src/disparity/CMakeFiles/ceta_disparity.dir/pairwise.cpp.o.d"
  "/root/repo/src/disparity/pareto.cpp" "src/disparity/CMakeFiles/ceta_disparity.dir/pareto.cpp.o" "gcc" "src/disparity/CMakeFiles/ceta_disparity.dir/pareto.cpp.o.d"
  "/root/repo/src/disparity/requirements.cpp" "src/disparity/CMakeFiles/ceta_disparity.dir/requirements.cpp.o" "gcc" "src/disparity/CMakeFiles/ceta_disparity.dir/requirements.cpp.o.d"
  "/root/repo/src/disparity/sensitivity.cpp" "src/disparity/CMakeFiles/ceta_disparity.dir/sensitivity.cpp.o" "gcc" "src/disparity/CMakeFiles/ceta_disparity.dir/sensitivity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ceta_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ceta_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/ceta_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/ceta_chain.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
