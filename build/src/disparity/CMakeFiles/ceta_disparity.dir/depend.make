# Empty dependencies file for ceta_disparity.
# This may be replaced when dependencies are built.
