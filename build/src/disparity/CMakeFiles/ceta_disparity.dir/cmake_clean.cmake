file(REMOVE_RECURSE
  "CMakeFiles/ceta_disparity.dir/analyzer.cpp.o"
  "CMakeFiles/ceta_disparity.dir/analyzer.cpp.o.d"
  "CMakeFiles/ceta_disparity.dir/buffer_opt.cpp.o"
  "CMakeFiles/ceta_disparity.dir/buffer_opt.cpp.o.d"
  "CMakeFiles/ceta_disparity.dir/exact.cpp.o"
  "CMakeFiles/ceta_disparity.dir/exact.cpp.o.d"
  "CMakeFiles/ceta_disparity.dir/forkjoin.cpp.o"
  "CMakeFiles/ceta_disparity.dir/forkjoin.cpp.o.d"
  "CMakeFiles/ceta_disparity.dir/multi_buffer.cpp.o"
  "CMakeFiles/ceta_disparity.dir/multi_buffer.cpp.o.d"
  "CMakeFiles/ceta_disparity.dir/offset_opt.cpp.o"
  "CMakeFiles/ceta_disparity.dir/offset_opt.cpp.o.d"
  "CMakeFiles/ceta_disparity.dir/pairwise.cpp.o"
  "CMakeFiles/ceta_disparity.dir/pairwise.cpp.o.d"
  "CMakeFiles/ceta_disparity.dir/pareto.cpp.o"
  "CMakeFiles/ceta_disparity.dir/pareto.cpp.o.d"
  "CMakeFiles/ceta_disparity.dir/requirements.cpp.o"
  "CMakeFiles/ceta_disparity.dir/requirements.cpp.o.d"
  "CMakeFiles/ceta_disparity.dir/sensitivity.cpp.o"
  "CMakeFiles/ceta_disparity.dir/sensitivity.cpp.o.d"
  "libceta_disparity.a"
  "libceta_disparity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceta_disparity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
