file(REMOVE_RECURSE
  "libceta_disparity.a"
)
