# Empty compiler generated dependencies file for ceta_experiments.
# This may be replaced when dependencies are built.
