file(REMOVE_RECURSE
  "libceta_experiments.a"
)
