file(REMOVE_RECURSE
  "CMakeFiles/ceta_experiments.dir/fig6ab.cpp.o"
  "CMakeFiles/ceta_experiments.dir/fig6ab.cpp.o.d"
  "CMakeFiles/ceta_experiments.dir/fig6cd.cpp.o"
  "CMakeFiles/ceta_experiments.dir/fig6cd.cpp.o.d"
  "CMakeFiles/ceta_experiments.dir/table.cpp.o"
  "CMakeFiles/ceta_experiments.dir/table.cpp.o.d"
  "libceta_experiments.a"
  "libceta_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceta_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
