# Empty compiler generated dependencies file for ceta_sched.
# This may be replaced when dependencies are built.
