file(REMOVE_RECURSE
  "CMakeFiles/ceta_sched.dir/audsley.cpp.o"
  "CMakeFiles/ceta_sched.dir/audsley.cpp.o.d"
  "CMakeFiles/ceta_sched.dir/bus.cpp.o"
  "CMakeFiles/ceta_sched.dir/bus.cpp.o.d"
  "CMakeFiles/ceta_sched.dir/npfp_rta.cpp.o"
  "CMakeFiles/ceta_sched.dir/npfp_rta.cpp.o.d"
  "CMakeFiles/ceta_sched.dir/priority.cpp.o"
  "CMakeFiles/ceta_sched.dir/priority.cpp.o.d"
  "libceta_sched.a"
  "libceta_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceta_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
