file(REMOVE_RECURSE
  "libceta_sched.a"
)
