
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/audsley.cpp" "src/sched/CMakeFiles/ceta_sched.dir/audsley.cpp.o" "gcc" "src/sched/CMakeFiles/ceta_sched.dir/audsley.cpp.o.d"
  "/root/repo/src/sched/bus.cpp" "src/sched/CMakeFiles/ceta_sched.dir/bus.cpp.o" "gcc" "src/sched/CMakeFiles/ceta_sched.dir/bus.cpp.o.d"
  "/root/repo/src/sched/npfp_rta.cpp" "src/sched/CMakeFiles/ceta_sched.dir/npfp_rta.cpp.o" "gcc" "src/sched/CMakeFiles/ceta_sched.dir/npfp_rta.cpp.o.d"
  "/root/repo/src/sched/priority.cpp" "src/sched/CMakeFiles/ceta_sched.dir/priority.cpp.o" "gcc" "src/sched/CMakeFiles/ceta_sched.dir/priority.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ceta_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ceta_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
