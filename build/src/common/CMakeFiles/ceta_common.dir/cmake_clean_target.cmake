file(REMOVE_RECURSE
  "libceta_common.a"
)
