# Empty dependencies file for ceta_common.
# This may be replaced when dependencies are built.
