file(REMOVE_RECURSE
  "CMakeFiles/ceta_common.dir/error.cpp.o"
  "CMakeFiles/ceta_common.dir/error.cpp.o.d"
  "CMakeFiles/ceta_common.dir/interval.cpp.o"
  "CMakeFiles/ceta_common.dir/interval.cpp.o.d"
  "CMakeFiles/ceta_common.dir/math.cpp.o"
  "CMakeFiles/ceta_common.dir/math.cpp.o.d"
  "CMakeFiles/ceta_common.dir/rng.cpp.o"
  "CMakeFiles/ceta_common.dir/rng.cpp.o.d"
  "CMakeFiles/ceta_common.dir/stats.cpp.o"
  "CMakeFiles/ceta_common.dir/stats.cpp.o.d"
  "CMakeFiles/ceta_common.dir/time.cpp.o"
  "CMakeFiles/ceta_common.dir/time.cpp.o.d"
  "libceta_common.a"
  "libceta_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceta_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
