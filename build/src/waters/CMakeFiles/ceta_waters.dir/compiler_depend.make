# Empty compiler generated dependencies file for ceta_waters.
# This may be replaced when dependencies are built.
