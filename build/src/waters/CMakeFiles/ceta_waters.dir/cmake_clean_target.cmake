file(REMOVE_RECURSE
  "libceta_waters.a"
)
