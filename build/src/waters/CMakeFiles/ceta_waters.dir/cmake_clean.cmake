file(REMOVE_RECURSE
  "CMakeFiles/ceta_waters.dir/generator.cpp.o"
  "CMakeFiles/ceta_waters.dir/generator.cpp.o.d"
  "CMakeFiles/ceta_waters.dir/tables.cpp.o"
  "CMakeFiles/ceta_waters.dir/tables.cpp.o.d"
  "libceta_waters.a"
  "libceta_waters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceta_waters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
