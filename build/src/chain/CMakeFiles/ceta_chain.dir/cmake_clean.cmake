file(REMOVE_RECURSE
  "CMakeFiles/ceta_chain.dir/backward_bounds.cpp.o"
  "CMakeFiles/ceta_chain.dir/backward_bounds.cpp.o.d"
  "CMakeFiles/ceta_chain.dir/critical.cpp.o"
  "CMakeFiles/ceta_chain.dir/critical.cpp.o.d"
  "CMakeFiles/ceta_chain.dir/latency.cpp.o"
  "CMakeFiles/ceta_chain.dir/latency.cpp.o.d"
  "CMakeFiles/ceta_chain.dir/subchain.cpp.o"
  "CMakeFiles/ceta_chain.dir/subchain.cpp.o.d"
  "libceta_chain.a"
  "libceta_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceta_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
