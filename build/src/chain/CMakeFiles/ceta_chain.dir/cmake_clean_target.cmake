file(REMOVE_RECURSE
  "libceta_chain.a"
)
