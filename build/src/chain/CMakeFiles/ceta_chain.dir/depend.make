# Empty dependencies file for ceta_chain.
# This may be replaced when dependencies are built.
