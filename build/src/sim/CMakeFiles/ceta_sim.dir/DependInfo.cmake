
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/backward.cpp" "src/sim/CMakeFiles/ceta_sim.dir/backward.cpp.o" "gcc" "src/sim/CMakeFiles/ceta_sim.dir/backward.cpp.o.d"
  "/root/repo/src/sim/channel.cpp" "src/sim/CMakeFiles/ceta_sim.dir/channel.cpp.o" "gcc" "src/sim/CMakeFiles/ceta_sim.dir/channel.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/ceta_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/ceta_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/exec_model.cpp" "src/sim/CMakeFiles/ceta_sim.dir/exec_model.cpp.o" "gcc" "src/sim/CMakeFiles/ceta_sim.dir/exec_model.cpp.o.d"
  "/root/repo/src/sim/gantt.cpp" "src/sim/CMakeFiles/ceta_sim.dir/gantt.cpp.o" "gcc" "src/sim/CMakeFiles/ceta_sim.dir/gantt.cpp.o.d"
  "/root/repo/src/sim/latency.cpp" "src/sim/CMakeFiles/ceta_sim.dir/latency.cpp.o" "gcc" "src/sim/CMakeFiles/ceta_sim.dir/latency.cpp.o.d"
  "/root/repo/src/sim/provenance.cpp" "src/sim/CMakeFiles/ceta_sim.dir/provenance.cpp.o" "gcc" "src/sim/CMakeFiles/ceta_sim.dir/provenance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ceta_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ceta_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/ceta_sched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
