file(REMOVE_RECURSE
  "libceta_sim.a"
)
