file(REMOVE_RECURSE
  "CMakeFiles/ceta_sim.dir/backward.cpp.o"
  "CMakeFiles/ceta_sim.dir/backward.cpp.o.d"
  "CMakeFiles/ceta_sim.dir/channel.cpp.o"
  "CMakeFiles/ceta_sim.dir/channel.cpp.o.d"
  "CMakeFiles/ceta_sim.dir/engine.cpp.o"
  "CMakeFiles/ceta_sim.dir/engine.cpp.o.d"
  "CMakeFiles/ceta_sim.dir/exec_model.cpp.o"
  "CMakeFiles/ceta_sim.dir/exec_model.cpp.o.d"
  "CMakeFiles/ceta_sim.dir/gantt.cpp.o"
  "CMakeFiles/ceta_sim.dir/gantt.cpp.o.d"
  "CMakeFiles/ceta_sim.dir/latency.cpp.o"
  "CMakeFiles/ceta_sim.dir/latency.cpp.o.d"
  "CMakeFiles/ceta_sim.dir/provenance.cpp.o"
  "CMakeFiles/ceta_sim.dir/provenance.cpp.o.d"
  "libceta_sim.a"
  "libceta_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceta_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
