# Empty compiler generated dependencies file for ceta_sim.
# This may be replaced when dependencies are built.
