# Empty compiler generated dependencies file for ceta_graph.
# This may be replaced when dependencies are built.
