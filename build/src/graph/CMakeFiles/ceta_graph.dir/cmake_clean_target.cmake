file(REMOVE_RECURSE
  "libceta_graph.a"
)
