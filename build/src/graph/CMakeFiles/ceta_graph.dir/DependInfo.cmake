
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/algorithms.cpp" "src/graph/CMakeFiles/ceta_graph.dir/algorithms.cpp.o" "gcc" "src/graph/CMakeFiles/ceta_graph.dir/algorithms.cpp.o.d"
  "/root/repo/src/graph/dot.cpp" "src/graph/CMakeFiles/ceta_graph.dir/dot.cpp.o" "gcc" "src/graph/CMakeFiles/ceta_graph.dir/dot.cpp.o.d"
  "/root/repo/src/graph/generator.cpp" "src/graph/CMakeFiles/ceta_graph.dir/generator.cpp.o" "gcc" "src/graph/CMakeFiles/ceta_graph.dir/generator.cpp.o.d"
  "/root/repo/src/graph/paths.cpp" "src/graph/CMakeFiles/ceta_graph.dir/paths.cpp.o" "gcc" "src/graph/CMakeFiles/ceta_graph.dir/paths.cpp.o.d"
  "/root/repo/src/graph/serialize.cpp" "src/graph/CMakeFiles/ceta_graph.dir/serialize.cpp.o" "gcc" "src/graph/CMakeFiles/ceta_graph.dir/serialize.cpp.o.d"
  "/root/repo/src/graph/task.cpp" "src/graph/CMakeFiles/ceta_graph.dir/task.cpp.o" "gcc" "src/graph/CMakeFiles/ceta_graph.dir/task.cpp.o.d"
  "/root/repo/src/graph/task_graph.cpp" "src/graph/CMakeFiles/ceta_graph.dir/task_graph.cpp.o" "gcc" "src/graph/CMakeFiles/ceta_graph.dir/task_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ceta_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
