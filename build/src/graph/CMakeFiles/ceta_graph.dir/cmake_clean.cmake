file(REMOVE_RECURSE
  "CMakeFiles/ceta_graph.dir/algorithms.cpp.o"
  "CMakeFiles/ceta_graph.dir/algorithms.cpp.o.d"
  "CMakeFiles/ceta_graph.dir/dot.cpp.o"
  "CMakeFiles/ceta_graph.dir/dot.cpp.o.d"
  "CMakeFiles/ceta_graph.dir/generator.cpp.o"
  "CMakeFiles/ceta_graph.dir/generator.cpp.o.d"
  "CMakeFiles/ceta_graph.dir/paths.cpp.o"
  "CMakeFiles/ceta_graph.dir/paths.cpp.o.d"
  "CMakeFiles/ceta_graph.dir/serialize.cpp.o"
  "CMakeFiles/ceta_graph.dir/serialize.cpp.o.d"
  "CMakeFiles/ceta_graph.dir/task.cpp.o"
  "CMakeFiles/ceta_graph.dir/task.cpp.o.d"
  "CMakeFiles/ceta_graph.dir/task_graph.cpp.o"
  "CMakeFiles/ceta_graph.dir/task_graph.cpp.o.d"
  "libceta_graph.a"
  "libceta_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceta_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
