# Empty dependencies file for test_math.
# This may be replaced when dependencies are built.
