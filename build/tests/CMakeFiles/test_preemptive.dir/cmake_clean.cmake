file(REMOVE_RECURSE
  "CMakeFiles/test_preemptive.dir/test_preemptive.cpp.o"
  "CMakeFiles/test_preemptive.dir/test_preemptive.cpp.o.d"
  "test_preemptive"
  "test_preemptive.pdb"
  "test_preemptive[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_preemptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
