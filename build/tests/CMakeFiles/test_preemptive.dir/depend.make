# Empty dependencies file for test_preemptive.
# This may be replaced when dependencies are built.
