# Empty compiler generated dependencies file for test_exhaustive.
# This may be replaced when dependencies are built.
