file(REMOVE_RECURSE
  "CMakeFiles/test_task_graph.dir/test_task_graph.cpp.o"
  "CMakeFiles/test_task_graph.dir/test_task_graph.cpp.o.d"
  "test_task_graph"
  "test_task_graph.pdb"
  "test_task_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_task_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
