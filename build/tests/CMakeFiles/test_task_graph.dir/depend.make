# Empty dependencies file for test_task_graph.
# This may be replaced when dependencies are built.
