# Empty dependencies file for test_time.
# This may be replaced when dependencies are built.
