# Empty compiler generated dependencies file for test_jitter.
# This may be replaced when dependencies are built.
