file(REMOVE_RECURSE
  "CMakeFiles/test_jitter.dir/test_jitter.cpp.o"
  "CMakeFiles/test_jitter.dir/test_jitter.cpp.o.d"
  "test_jitter"
  "test_jitter.pdb"
  "test_jitter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
