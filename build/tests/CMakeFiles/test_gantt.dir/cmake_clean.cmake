file(REMOVE_RECURSE
  "CMakeFiles/test_gantt.dir/test_gantt.cpp.o"
  "CMakeFiles/test_gantt.dir/test_gantt.cpp.o.d"
  "test_gantt"
  "test_gantt.pdb"
  "test_gantt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gantt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
