file(REMOVE_RECURSE
  "CMakeFiles/test_npfp_rta.dir/test_npfp_rta.cpp.o"
  "CMakeFiles/test_npfp_rta.dir/test_npfp_rta.cpp.o.d"
  "test_npfp_rta"
  "test_npfp_rta.pdb"
  "test_npfp_rta[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_npfp_rta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
