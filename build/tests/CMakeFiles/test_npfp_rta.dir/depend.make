# Empty dependencies file for test_npfp_rta.
# This may be replaced when dependencies are built.
