# Empty compiler generated dependencies file for test_critical.
# This may be replaced when dependencies are built.
