file(REMOVE_RECURSE
  "CMakeFiles/test_critical.dir/test_critical.cpp.o"
  "CMakeFiles/test_critical.dir/test_critical.cpp.o.d"
  "test_critical"
  "test_critical.pdb"
  "test_critical[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_critical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
