# Empty compiler generated dependencies file for test_latency.
# This may be replaced when dependencies are built.
