file(REMOVE_RECURSE
  "CMakeFiles/test_latency.dir/test_latency.cpp.o"
  "CMakeFiles/test_latency.dir/test_latency.cpp.o.d"
  "test_latency"
  "test_latency.pdb"
  "test_latency[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
