# Empty compiler generated dependencies file for test_waters.
# This may be replaced when dependencies are built.
