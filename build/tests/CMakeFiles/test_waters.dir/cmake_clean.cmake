file(REMOVE_RECURSE
  "CMakeFiles/test_waters.dir/test_waters.cpp.o"
  "CMakeFiles/test_waters.dir/test_waters.cpp.o.d"
  "test_waters"
  "test_waters.pdb"
  "test_waters[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_waters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
