# Empty dependencies file for test_priority.
# This may be replaced when dependencies are built.
