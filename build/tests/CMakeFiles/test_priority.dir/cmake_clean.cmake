file(REMOVE_RECURSE
  "CMakeFiles/test_priority.dir/test_priority.cpp.o"
  "CMakeFiles/test_priority.dir/test_priority.cpp.o.d"
  "test_priority"
  "test_priority.pdb"
  "test_priority[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
