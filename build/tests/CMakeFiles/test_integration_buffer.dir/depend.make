# Empty dependencies file for test_integration_buffer.
# This may be replaced when dependencies are built.
