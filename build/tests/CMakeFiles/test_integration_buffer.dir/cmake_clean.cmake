file(REMOVE_RECURSE
  "CMakeFiles/test_integration_buffer.dir/test_integration_buffer.cpp.o"
  "CMakeFiles/test_integration_buffer.dir/test_integration_buffer.cpp.o.d"
  "test_integration_buffer"
  "test_integration_buffer.pdb"
  "test_integration_buffer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
