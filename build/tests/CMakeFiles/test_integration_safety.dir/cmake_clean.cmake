file(REMOVE_RECURSE
  "CMakeFiles/test_integration_safety.dir/test_integration_safety.cpp.o"
  "CMakeFiles/test_integration_safety.dir/test_integration_safety.cpp.o.d"
  "test_integration_safety"
  "test_integration_safety.pdb"
  "test_integration_safety[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
