# Empty compiler generated dependencies file for test_integration_safety.
# This may be replaced when dependencies are built.
