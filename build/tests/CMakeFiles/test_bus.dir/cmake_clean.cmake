file(REMOVE_RECURSE
  "CMakeFiles/test_bus.dir/test_bus.cpp.o"
  "CMakeFiles/test_bus.dir/test_bus.cpp.o.d"
  "test_bus"
  "test_bus.pdb"
  "test_bus[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
