file(REMOVE_RECURSE
  "CMakeFiles/test_pairwise.dir/test_pairwise.cpp.o"
  "CMakeFiles/test_pairwise.dir/test_pairwise.cpp.o.d"
  "test_pairwise"
  "test_pairwise.pdb"
  "test_pairwise[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pairwise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
