# Empty dependencies file for test_multi_buffer.
# This may be replaced when dependencies are built.
