file(REMOVE_RECURSE
  "CMakeFiles/test_multi_buffer.dir/test_multi_buffer.cpp.o"
  "CMakeFiles/test_multi_buffer.dir/test_multi_buffer.cpp.o.d"
  "test_multi_buffer"
  "test_multi_buffer.pdb"
  "test_multi_buffer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
