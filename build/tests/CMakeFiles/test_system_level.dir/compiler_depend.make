# Empty compiler generated dependencies file for test_system_level.
# This may be replaced when dependencies are built.
