file(REMOVE_RECURSE
  "CMakeFiles/test_system_level.dir/test_system_level.cpp.o"
  "CMakeFiles/test_system_level.dir/test_system_level.cpp.o.d"
  "test_system_level"
  "test_system_level.pdb"
  "test_system_level[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_system_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
