# Empty compiler generated dependencies file for test_requirements.
# This may be replaced when dependencies are built.
