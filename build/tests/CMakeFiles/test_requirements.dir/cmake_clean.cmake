file(REMOVE_RECURSE
  "CMakeFiles/test_requirements.dir/test_requirements.cpp.o"
  "CMakeFiles/test_requirements.dir/test_requirements.cpp.o.d"
  "test_requirements"
  "test_requirements.pdb"
  "test_requirements[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_requirements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
