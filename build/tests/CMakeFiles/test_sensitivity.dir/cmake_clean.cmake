file(REMOVE_RECURSE
  "CMakeFiles/test_sensitivity.dir/test_sensitivity.cpp.o"
  "CMakeFiles/test_sensitivity.dir/test_sensitivity.cpp.o.d"
  "test_sensitivity"
  "test_sensitivity.pdb"
  "test_sensitivity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
