# Empty dependencies file for test_matrix_safety.
# This may be replaced when dependencies are built.
