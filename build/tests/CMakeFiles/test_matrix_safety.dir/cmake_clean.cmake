file(REMOVE_RECURSE
  "CMakeFiles/test_matrix_safety.dir/test_matrix_safety.cpp.o"
  "CMakeFiles/test_matrix_safety.dir/test_matrix_safety.cpp.o.d"
  "test_matrix_safety"
  "test_matrix_safety.pdb"
  "test_matrix_safety[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_matrix_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
