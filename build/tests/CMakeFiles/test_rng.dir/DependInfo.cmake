
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/test_rng.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/test_rng.dir/test_rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tests/CMakeFiles/ceta_test_support.dir/DependInfo.cmake"
  "/root/repo/build/src/experiments/CMakeFiles/ceta_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/disparity/CMakeFiles/ceta_disparity.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/ceta_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ceta_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/waters/CMakeFiles/ceta_waters.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/ceta_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ceta_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ceta_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
