file(REMOVE_RECURSE
  "CMakeFiles/test_offset_opt.dir/test_offset_opt.cpp.o"
  "CMakeFiles/test_offset_opt.dir/test_offset_opt.cpp.o.d"
  "test_offset_opt"
  "test_offset_opt.pdb"
  "test_offset_opt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_offset_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
