# Empty dependencies file for test_offset_opt.
# This may be replaced when dependencies are built.
