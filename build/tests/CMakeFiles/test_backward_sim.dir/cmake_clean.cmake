file(REMOVE_RECURSE
  "CMakeFiles/test_backward_sim.dir/test_backward_sim.cpp.o"
  "CMakeFiles/test_backward_sim.dir/test_backward_sim.cpp.o.d"
  "test_backward_sim"
  "test_backward_sim.pdb"
  "test_backward_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_backward_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
