# Empty dependencies file for test_backward_sim.
# This may be replaced when dependencies are built.
