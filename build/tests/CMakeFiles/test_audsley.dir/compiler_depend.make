# Empty compiler generated dependencies file for test_audsley.
# This may be replaced when dependencies are built.
