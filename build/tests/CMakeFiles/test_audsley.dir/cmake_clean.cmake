file(REMOVE_RECURSE
  "CMakeFiles/test_audsley.dir/test_audsley.cpp.o"
  "CMakeFiles/test_audsley.dir/test_audsley.cpp.o.d"
  "test_audsley"
  "test_audsley.pdb"
  "test_audsley[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_audsley.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
