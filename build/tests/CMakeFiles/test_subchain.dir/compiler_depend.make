# Empty compiler generated dependencies file for test_subchain.
# This may be replaced when dependencies are built.
