file(REMOVE_RECURSE
  "CMakeFiles/test_subchain.dir/test_subchain.cpp.o"
  "CMakeFiles/test_subchain.dir/test_subchain.cpp.o.d"
  "test_subchain"
  "test_subchain.pdb"
  "test_subchain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_subchain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
