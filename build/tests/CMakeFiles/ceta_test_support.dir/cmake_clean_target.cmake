file(REMOVE_RECURSE
  "libceta_test_support.a"
)
