# Empty compiler generated dependencies file for ceta_test_support.
# This may be replaced when dependencies are built.
