file(REMOVE_RECURSE
  "CMakeFiles/ceta_test_support.dir/helpers.cpp.o"
  "CMakeFiles/ceta_test_support.dir/helpers.cpp.o.d"
  "libceta_test_support.a"
  "libceta_test_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceta_test_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
