file(REMOVE_RECURSE
  "CMakeFiles/test_backward_bounds.dir/test_backward_bounds.cpp.o"
  "CMakeFiles/test_backward_bounds.dir/test_backward_bounds.cpp.o.d"
  "test_backward_bounds"
  "test_backward_bounds.pdb"
  "test_backward_bounds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_backward_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
