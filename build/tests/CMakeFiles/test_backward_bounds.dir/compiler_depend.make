# Empty compiler generated dependencies file for test_backward_bounds.
# This may be replaced when dependencies are built.
