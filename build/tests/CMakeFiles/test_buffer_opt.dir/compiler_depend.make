# Empty compiler generated dependencies file for test_buffer_opt.
# This may be replaced when dependencies are built.
