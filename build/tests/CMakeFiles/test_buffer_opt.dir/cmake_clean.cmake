file(REMOVE_RECURSE
  "CMakeFiles/test_buffer_opt.dir/test_buffer_opt.cpp.o"
  "CMakeFiles/test_buffer_opt.dir/test_buffer_opt.cpp.o.d"
  "test_buffer_opt"
  "test_buffer_opt.pdb"
  "test_buffer_opt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_buffer_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
