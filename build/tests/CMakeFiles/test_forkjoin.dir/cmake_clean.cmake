file(REMOVE_RECURSE
  "CMakeFiles/test_forkjoin.dir/test_forkjoin.cpp.o"
  "CMakeFiles/test_forkjoin.dir/test_forkjoin.cpp.o.d"
  "test_forkjoin"
  "test_forkjoin.pdb"
  "test_forkjoin[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_forkjoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
