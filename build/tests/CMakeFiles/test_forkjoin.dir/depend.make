# Empty dependencies file for test_forkjoin.
# This may be replaced when dependencies are built.
