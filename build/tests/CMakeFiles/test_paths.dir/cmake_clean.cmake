file(REMOVE_RECURSE
  "CMakeFiles/test_paths.dir/test_paths.cpp.o"
  "CMakeFiles/test_paths.dir/test_paths.cpp.o.d"
  "test_paths"
  "test_paths.pdb"
  "test_paths[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
