# Empty compiler generated dependencies file for test_let.
# This may be replaced when dependencies are built.
