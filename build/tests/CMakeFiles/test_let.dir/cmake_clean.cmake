file(REMOVE_RECURSE
  "CMakeFiles/test_let.dir/test_let.cpp.o"
  "CMakeFiles/test_let.dir/test_let.cpp.o.d"
  "test_let"
  "test_let.pdb"
  "test_let[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_let.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
