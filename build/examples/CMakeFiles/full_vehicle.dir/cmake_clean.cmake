file(REMOVE_RECURSE
  "CMakeFiles/full_vehicle.dir/full_vehicle.cpp.o"
  "CMakeFiles/full_vehicle.dir/full_vehicle.cpp.o.d"
  "full_vehicle"
  "full_vehicle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_vehicle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
