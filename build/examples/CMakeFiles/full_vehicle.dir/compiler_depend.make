# Empty compiler generated dependencies file for full_vehicle.
# This may be replaced when dependencies are built.
