file(REMOVE_RECURSE
  "CMakeFiles/analyze_graph.dir/analyze_graph.cpp.o"
  "CMakeFiles/analyze_graph.dir/analyze_graph.cpp.o.d"
  "analyze_graph"
  "analyze_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyze_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
