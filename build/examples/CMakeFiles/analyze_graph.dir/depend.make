# Empty dependencies file for analyze_graph.
# This may be replaced when dependencies are built.
