file(REMOVE_RECURSE
  "CMakeFiles/automotive_pipeline.dir/automotive_pipeline.cpp.o"
  "CMakeFiles/automotive_pipeline.dir/automotive_pipeline.cpp.o.d"
  "automotive_pipeline"
  "automotive_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automotive_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
