# Empty dependencies file for automotive_pipeline.
# This may be replaced when dependencies are built.
