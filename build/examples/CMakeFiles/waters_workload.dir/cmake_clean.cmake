file(REMOVE_RECURSE
  "CMakeFiles/waters_workload.dir/waters_workload.cpp.o"
  "CMakeFiles/waters_workload.dir/waters_workload.cpp.o.d"
  "waters_workload"
  "waters_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waters_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
