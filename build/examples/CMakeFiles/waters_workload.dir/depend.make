# Empty dependencies file for waters_workload.
# This may be replaced when dependencies are built.
