file(REMOVE_RECURSE
  "CMakeFiles/buffer_design.dir/buffer_design.cpp.o"
  "CMakeFiles/buffer_design.dir/buffer_design.cpp.o.d"
  "buffer_design"
  "buffer_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffer_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
