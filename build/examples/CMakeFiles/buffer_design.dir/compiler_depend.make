# Empty compiler generated dependencies file for buffer_design.
# This may be replaced when dependencies are built.
