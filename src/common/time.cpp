#include "common/time.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace ceta {

std::string to_string(Duration d) {
  const std::int64_t ns = d.count();
  const std::int64_t mag = std::llabs(ns);
  char buf[64];
  if (mag >= 1'000'000'000 && mag % 1'000'000 == 0) {
    std::snprintf(buf, sizeof buf, "%.3gs", static_cast<double>(ns) / 1e9);
  } else if (mag >= 1'000'000) {
    std::snprintf(buf, sizeof buf, "%.6gms", static_cast<double>(ns) / 1e6);
  } else if (mag >= 1'000) {
    std::snprintf(buf, sizeof buf, "%.6gus", static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(ns));
  }
  return buf;
}

std::ostream& operator<<(std::ostream& os, Duration d) {
  return os << to_string(d);
}

}  // namespace ceta
