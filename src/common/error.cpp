#include "common/error.hpp"

#include <sstream>

namespace ceta {

std::string exception_message(std::exception_ptr e) noexcept {
  if (e == nullptr) return "unknown error (no exception in flight)";
  try {
    std::rethrow_exception(e);
  } catch (const std::exception& ex) {
    try {
      return ex.what();
    } catch (...) {
      return "unknown error (what() failed)";
    }
  } catch (...) {
    return "unknown error (non-standard exception)";
  }
}

}  // namespace ceta

namespace ceta::detail {

namespace {
std::string format(const char* kind, const char* expr, const char* file,
                   int line, const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  return os.str();
}
}  // namespace

void throw_precondition(const char* expr, const char* file, int line,
                        const std::string& msg) {
  throw PreconditionError(format("precondition", expr, file, line, msg));
}

void throw_invariant(const char* expr, const char* file, int line,
                     const std::string& msg) {
  throw InvariantError(format("invariant", expr, file, line, msg));
}

}  // namespace ceta::detail
