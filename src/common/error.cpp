#include "common/error.hpp"

#include <sstream>

namespace ceta::detail {

namespace {
std::string format(const char* kind, const char* expr, const char* file,
                   int line, const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  return os.str();
}
}  // namespace

void throw_precondition(const char* expr, const char* file, int line,
                        const std::string& msg) {
  throw PreconditionError(format("precondition", expr, file, line, msg));
}

void throw_invariant(const char* expr, const char* file, int line,
                     const std::string& msg) {
  throw InvariantError(format("invariant", expr, file, line, msg));
}

}  // namespace ceta::detail
