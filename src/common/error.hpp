// Error types and always-on assertion macro for the ceta library.
//
// Following the C++ Core Guidelines (E.2, E.3) we throw exceptions to signal
// errors that the immediate caller cannot reasonably be expected to prevent
// (I/O, capacity overflow) and use assertions for violated preconditions and
// internal invariants.  Assertions are kept enabled in release builds: all
// analyses here are offline design-time tools where a wrong answer is far
// more costly than the check.

#pragma once

#include <exception>
#include <stdexcept>
#include <string>

namespace ceta {

/// Base class for all errors raised by the ceta library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition of a public API.
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// An internal invariant of the library failed; indicates a bug in ceta.
class InvariantError : public Error {
 public:
  explicit InvariantError(const std::string& what) : Error(what) {}
};

/// A configurable resource limit (path-enumeration cap, event cap, ...)
/// was exceeded.
class CapacityError : public Error {
 public:
  explicit CapacityError(const std::string& what) : Error(what) {}
};

/// An options struct passed to a public analysis entry point fails its
/// validate() contract (e.g. KeepPairs::kTopK with top_k == 0, or a
/// backend/method combination the analysis cannot serve).  Distinct from
/// PreconditionError so callers can map it to a usage diagnostic rather
/// than a caller bug.
class InvalidOptionsError : public Error {
 public:
  explicit InvalidOptionsError(const std::string& what) : Error(what) {}
};

/// A state rollback performed while another exception was in flight has
/// itself failed: the object could not be restored to its pre-call state.
/// what() carries both messages (the rollback failure and the original
/// error) so neither is lost.
class RollbackError : public Error {
 public:
  explicit RollbackError(const std::string& what) : Error(what) {}
};

/// Best-effort human-readable message of a captured exception: what() for
/// std::exception descendants, a fixed placeholder otherwise.  Never
/// throws; safe inside catch blocks and rollback paths.
std::string exception_message(std::exception_ptr e) noexcept;

namespace detail {
[[noreturn]] void throw_precondition(const char* expr, const char* file,
                                     int line, const std::string& msg);
[[noreturn]] void throw_invariant(const char* expr, const char* file, int line,
                                  const std::string& msg);
}  // namespace detail

}  // namespace ceta

/// Check a documented precondition of a public entry point.
#define CETA_EXPECTS(cond, msg)                                           \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::ceta::detail::throw_precondition(#cond, __FILE__, __LINE__, msg); \
    }                                                                     \
  } while (false)

/// Check an internal invariant; failure indicates a bug in ceta itself.
#define CETA_ASSERT(cond, msg)                                         \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::ceta::detail::throw_invariant(#cond, __FILE__, __LINE__, msg); \
    }                                                                  \
  } while (false)
