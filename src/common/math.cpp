#include "common/math.hpp"

#include <numeric>

namespace ceta {

std::int64_t gcd64(std::int64_t a, std::int64_t b) {
  CETA_EXPECTS(a > 0 && b > 0, "gcd64 requires positive operands");
  return std::gcd(a, b);
}

std::int64_t lcm64_checked(std::int64_t a, std::int64_t b) {
  CETA_EXPECTS(a > 0 && b > 0, "lcm64_checked requires positive operands");
  const std::int64_t g = std::gcd(a, b);
  const std::int64_t a_red = a / g;
  if (a_red > INT64_MAX / b) {
    throw CapacityError("lcm64_checked: hyperperiod overflows int64");
  }
  return a_red * b;
}

Duration hyperperiod(const std::int64_t* periods_ns, std::size_t n) {
  CETA_EXPECTS(n > 0, "hyperperiod of an empty set");
  std::int64_t l = 1;
  for (std::size_t i = 0; i < n; ++i) {
    CETA_EXPECTS(periods_ns[i] > 0, "hyperperiod requires positive periods");
    l = lcm64_checked(l, periods_ns[i]);
  }
  return Duration::ns(l);
}

}  // namespace ceta
