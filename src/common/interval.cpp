#include "common/interval.hpp"

#include <ostream>
#include <sstream>

namespace ceta {

std::string to_string(const Interval& iv) {
  std::ostringstream os;
  os << '[' << to_string(iv.lo()) << ", " << to_string(iv.hi()) << ']';
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Interval& iv) {
  return os << to_string(iv);
}

}  // namespace ceta
