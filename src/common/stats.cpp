#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ceta {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::mean() const {
  CETA_EXPECTS(n_ > 0, "OnlineStats::mean on empty accumulator");
  return mean_;
}

double OnlineStats::min() const {
  CETA_EXPECTS(n_ > 0, "OnlineStats::min on empty accumulator");
  return min_;
}

double OnlineStats::max() const {
  CETA_EXPECTS(n_ > 0, "OnlineStats::max on empty accumulator");
  return max_;
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double mean_of(std::span<const double> xs) {
  CETA_EXPECTS(!xs.empty(), "mean_of on empty span");
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double percentile(std::vector<double> xs, double p) {
  CETA_EXPECTS(!xs.empty(), "percentile on empty vector");
  CETA_EXPECTS(p >= 0.0 && p <= 100.0, "percentile: p out of [0,100]");
  std::sort(xs.begin(), xs.end());
  if (p == 0.0) return xs.front();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(xs.size())));
  return xs[std::min(rank, xs.size()) - 1];
}

}  // namespace ceta
