// Time representation used throughout ceta.
//
// All times — periods, execution times, release offsets, timestamps,
// backward times and disparities — are signed 64-bit nanosecond counts
// wrapped in the strong type `Duration`.  The paper's quantities freely mix
// instants and spans (e.g. a backward time is a difference of release times
// and may be negative, Lemma 5), so we deliberately use one signed type for
// both; `Instant` is provided as an alias for readability at call sites.
//
// The WATERS 2015 execution times are fractional microseconds (e.g.
// 5.00 us) and periods are milliseconds; both are exactly representable in
// integer nanoseconds.  int64 nanoseconds cover ±292 years, far beyond any
// hyperperiod or simulation horizon used here.

#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace ceta {

/// A signed span of time (or an instant on the global timeline), in
/// integer nanoseconds.
class Duration {
 public:
  constexpr Duration() = default;

  /// Named constructors.
  static constexpr Duration ns(std::int64_t v) { return Duration(v); }
  static constexpr Duration us(std::int64_t v) { return Duration(v * 1000); }
  static constexpr Duration ms(std::int64_t v) {
    return Duration(v * 1'000'000);
  }
  static constexpr Duration s(std::int64_t v) {
    return Duration(v * 1'000'000'000);
  }
  static constexpr Duration zero() { return Duration(0); }
  static constexpr Duration max() {
    return Duration(INT64_MAX);
  }
  static constexpr Duration min() {
    return Duration(INT64_MIN);
  }

  /// Raw nanosecond count.
  constexpr std::int64_t count() const { return ns_; }

  /// Value in the given unit, as a double (for reporting only).
  constexpr double as_us() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double as_ms() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double as_s() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const {
    return Duration(ns_ + o.ns_);
  }
  constexpr Duration operator-(Duration o) const {
    return Duration(ns_ - o.ns_);
  }
  constexpr Duration operator-() const { return Duration(-ns_); }
  constexpr Duration operator*(std::int64_t k) const {
    return Duration(ns_ * k);
  }
  /// Truncating division by a scalar (used only where exact by construction).
  constexpr Duration operator/(std::int64_t k) const {
    return Duration(ns_ / k);
  }
  constexpr Duration& operator+=(Duration o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr Duration& operator-=(Duration o) {
    ns_ -= o.ns_;
    return *this;
  }

  /// Ratio of two durations as a double (for reporting only).
  constexpr double ratio(Duration denom) const {
    return static_cast<double>(ns_) / static_cast<double>(denom.ns_);
  }

 private:
  explicit constexpr Duration(std::int64_t v) : ns_(v) {}
  std::int64_t ns_ = 0;
};

constexpr Duration operator*(std::int64_t k, Duration d) { return d * k; }

/// An instant on the global timeline.  Alias of Duration by design; the
/// paper anchors analyses at r(J) = 0 and instants are routinely negative.
using Instant = Duration;

inline namespace literals {
constexpr Duration operator""_ns(unsigned long long v) {
  return Duration::ns(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_us(unsigned long long v) {
  return Duration::us(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_ms(unsigned long long v) {
  return Duration::ms(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_s(unsigned long long v) {
  return Duration::s(static_cast<std::int64_t>(v));
}
}  // namespace literals

/// Human-readable rendering with an auto-selected unit, e.g. "12.5ms".
std::string to_string(Duration d);

std::ostream& operator<<(std::ostream& os, Duration d);

}  // namespace ceta
