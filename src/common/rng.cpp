#include "common/rng.hpp"

#include <numeric>

namespace ceta {

std::size_t Rng::weighted_index(std::span<const double> weights) {
  CETA_EXPECTS(!weights.empty(), "weighted_index: no weights");
  double total = 0.0;
  for (double w : weights) {
    CETA_EXPECTS(w >= 0.0, "weighted_index: negative weight");
    total += w;
  }
  CETA_EXPECTS(total > 0.0, "weighted_index: all weights zero");
  double r = uniform_real(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point edge: return last nonzero
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  CETA_EXPECTS(k <= n, "sample_without_replacement: k exceeds n");
  // Floyd's algorithm: O(k) expected insertions.
  std::vector<std::size_t> result;
  result.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    const auto t = static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(j)));
    bool seen = false;
    for (std::size_t v : result) {
      if (v == t) {
        seen = true;
        break;
      }
    }
    result.push_back(seen ? j : t);
  }
  return result;
}

}  // namespace ceta
