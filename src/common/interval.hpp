// Closed time intervals [lo, hi].
//
// The analysis reasons about "sampling windows": a window [a, b] such that
// the timestamp of a traced source token is guaranteed to lie within it
// (Lemma 1, Lemma 2).  Algorithm 1 aligns two windows by comparing their
// midpoints; since midpoints of integer-nanosecond windows can be
// half-integers, `doubled_midpoint` exposes 2*mid exactly.

#pragma once

#include <algorithm>
#include <iosfwd>
#include <string>

#include "common/error.hpp"
#include "common/time.hpp"

namespace ceta {

/// A closed interval [lo, hi] on the timeline; lo <= hi is an invariant.
class Interval {
 public:
  constexpr Interval() = default;
  constexpr Interval(Instant lo, Instant hi) : lo_(lo), hi_(hi) {
    if (lo > hi) {
      throw PreconditionError("Interval: lo must not exceed hi");
    }
  }

  constexpr Instant lo() const { return lo_; }
  constexpr Instant hi() const { return hi_; }
  constexpr Duration width() const { return hi_ - lo_; }

  /// 2*midpoint, exact in integer nanoseconds.
  constexpr std::int64_t doubled_midpoint() const {
    return lo_.count() + hi_.count();
  }

  constexpr bool contains(Instant t) const { return lo_ <= t && t <= hi_; }
  constexpr bool contains(const Interval& o) const {
    return lo_ <= o.lo_ && o.hi_ <= hi_;
  }
  constexpr bool overlaps(const Interval& o) const {
    return lo_ <= o.hi_ && o.lo_ <= hi_;
  }

  /// Shift the whole interval by d (negative d shifts left).
  constexpr Interval shifted(Duration d) const {
    return Interval(lo_ + d, hi_ + d);
  }

  /// Smallest interval containing both.
  constexpr Interval hull(const Interval& o) const {
    return Interval(std::min(lo_, o.lo_), std::max(hi_, o.hi_));
  }

  /// Largest |x - y| over x in *this, y in o — the worst-case separation of
  /// two points drawn from the two windows.
  constexpr Duration max_separation(const Interval& o) const {
    const Duration a = hi_ - o.lo_;       // this right, o left
    const Duration b = o.hi_ - lo_;       // o right, this left
    return std::max(a, b);
  }

  constexpr bool operator==(const Interval&) const = default;

 private:
  Instant lo_{};
  Instant hi_{};
};

std::string to_string(const Interval& iv);
std::ostream& operator<<(std::ostream& os, const Interval& iv);

}  // namespace ceta
