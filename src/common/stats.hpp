// Small statistics helpers used by the experiment harness and tests.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ceta {

/// Streaming accumulator (Welford) for count/mean/min/max/stddev.
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const;
  double min() const;
  double max() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean; throws PreconditionError on an empty span.
double mean_of(std::span<const double> xs);

/// Inclusive percentile (nearest-rank); p in [0, 100].
double percentile(std::vector<double> xs, double p);

}  // namespace ceta
