// Integer math helpers.
//
// The paper's formulas apply floor/ceil to ratios of (possibly negative)
// time quantities, e.g. Theorem 2's x_j uses ceil((B(α)−W(β)+xT)/T(o)).
// C++ integer division truncates toward zero, which is wrong for negative
// numerators, so all analysis code must go through floor_div / ceil_div.

#pragma once

#include <cstdint>

#include "common/error.hpp"
#include "common/time.hpp"

namespace ceta {

/// Floor division: largest q with q*b <= a.  Requires b > 0.
constexpr std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  if (b <= 0) throw PreconditionError("floor_div: divisor must be positive");
  std::int64_t q = a / b;
  if (a % b != 0 && a < 0) --q;
  return q;
}

/// Ceiling division: smallest q with q*b >= a.  Requires b > 0.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  if (b <= 0) throw PreconditionError("ceil_div: divisor must be positive");
  std::int64_t q = a / b;
  if (a % b != 0 && a > 0) ++q;
  return q;
}

/// floor(a / b) for durations; b must be a positive duration.
constexpr std::int64_t floor_div(Duration a, Duration b) {
  return floor_div(a.count(), b.count());
}

/// ceil(a / b) for durations; b must be a positive duration.
constexpr std::int64_t ceil_div(Duration a, Duration b) {
  return ceil_div(a.count(), b.count());
}

/// Round a down to the nearest multiple of m (m > 0).  Matches the paper's
/// repeated pattern floor(X / T) * T.
constexpr Duration floor_to_multiple(Duration a, Duration m) {
  return Duration::ns(floor_div(a, m) * m.count());
}

/// Euclidean remainder in [0, b): a - floor_div(a,b)*b.
constexpr std::int64_t floor_mod(std::int64_t a, std::int64_t b) {
  return a - floor_div(a, b) * b;
}

/// gcd of two positive int64 values.
std::int64_t gcd64(std::int64_t a, std::int64_t b);

/// lcm with overflow detection; throws CapacityError on overflow.
std::int64_t lcm64_checked(std::int64_t a, std::int64_t b);

/// Hyperperiod (lcm) of a set of periods; throws CapacityError on overflow
/// and PreconditionError if any period is non-positive or the set is empty.
Duration hyperperiod(const std::int64_t* periods_ns, std::size_t n);

}  // namespace ceta
