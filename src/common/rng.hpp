// Deterministic random number generation for workload synthesis and
// simulation.
//
// Everything in ceta that is randomized takes an explicit `Rng&` (or a
// seed), so every experiment is reproducible from its seed.  `split`
// derives independent child streams, letting e.g. the per-graph generator
// and the per-run offset sampler evolve independently of each other.

#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/time.hpp"

namespace ceta {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  std::uint64_t seed() const { return seed_; }

  /// Uniform integer in [lo, hi], inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    CETA_EXPECTS(lo <= hi, "uniform_int: empty range");
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi) {
    CETA_EXPECTS(lo <= hi, "uniform_real: empty range");
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform duration in [lo, hi], inclusive, at nanosecond granularity.
  Duration uniform_duration(Duration lo, Duration hi) {
    return Duration::ns(uniform_int(lo.count(), hi.count()));
  }

  /// Bernoulli trial.
  bool flip(double p) {
    CETA_EXPECTS(p >= 0.0 && p <= 1.0, "flip: probability out of range");
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Index drawn from a discrete distribution given non-negative weights
  /// (not necessarily normalized).
  std::size_t weighted_index(std::span<const double> weights);

  /// Sample k distinct values from [0, n) uniformly (order unspecified).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Derive an independent child stream; deterministic in (seed, calls).
  Rng split() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ull); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace ceta
