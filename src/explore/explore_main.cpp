// explore — the design-space exploration CLI.
//
//   explore [--len-a N] [--len-b N] [--ecus N] [--waters-seed S]
//           [--seed S] [--moves N] [--restarts N] [--threads N]
//           [--strategy hill|anneal|portfolio] [--objective analyzer|exact]
//           [--max-buffer N] [--offset-grid N] [--no-audsley]
//           [--json PATH] [--quiet]
//
// Builds the merged two-chain WATERS instance (merge_chains_at_sink with
// WATERS-profile parameters; --waters-seed is scanned forward until the
// instance is schedulable), seeds priorities with the engine-level Audsley
// helper, runs one explore() campaign against the sink, and prints the
// resulting Pareto front (disparity / data age / memory, each entry's
// delta size) plus the campaign counters.  --json additionally dumps the
// full front — including the replayable deltas — as one JSON document.
// Exit status: 0 on success, 2 on usage errors.

#include <cstdint>
#include <exception>
#include <fstream>
#include <iostream>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "engine/analysis_engine.hpp"
#include "engine/incremental.hpp"
#include "explore/explorer.hpp"
#include "graph/generator.hpp"
#include "obs/json_writer.hpp"
#include "waters/generator.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--len-a N] [--len-b N] [--ecus N] [--waters-seed S]\n"
         "       [--seed S] [--moves N] [--restarts N] [--threads N]\n"
         "       [--strategy hill|anneal|portfolio]"
         " [--objective analyzer|exact]\n"
         "       [--max-buffer N] [--offset-grid N] [--no-audsley]\n"
         "       [--json PATH] [--quiet]\n";
  return 2;
}

void write_json(const std::string& path, const ceta::TaskGraph& g,
                ceta::TaskId sink, std::uint64_t waters_seed,
                const ceta::explore::ExploreOptions& opt,
                const ceta::explore::ExploreResult& result) {
  std::ofstream out(path);
  if (!out) throw ceta::Error("cannot open json file '" + path + "'");
  ceta::obs::JsonWriter w(out);
  w.begin_object();
  w.member("tasks", static_cast<std::uint64_t>(g.num_tasks()));
  w.member("sink", static_cast<std::uint64_t>(sink));
  w.member("waters_seed", waters_seed);
  w.member("seed", opt.seed);
  w.member("moves_per_restart", static_cast<std::uint64_t>(opt.moves_per_restart));
  w.member("restarts", static_cast<std::uint64_t>(opt.restarts));
  w.key("start");
  w.begin_object();
  w.member("disparity_ns", result.start.disparity.count());
  w.member("data_age_ns", result.start.data_age.count());
  w.member("memory", result.start.memory);
  w.end_object();
  w.key("front");
  w.begin_array();
  for (const ceta::explore::ArchiveEntry& e : result.archive) {
    w.begin_object();
    w.member("disparity_ns", e.objectives.disparity.count());
    w.member("data_age_ns", e.objectives.data_age.count());
    w.member("memory", e.objectives.memory);
    w.member("key", e.key);
    w.member("epoch", e.epoch);
    w.key("priorities");
    w.begin_array();
    for (const auto& [task, prio] : e.delta.priorities) {
      w.begin_object();
      w.member("task", static_cast<std::uint64_t>(task));
      w.member("priority", prio);
      w.end_object();
    }
    w.end_array();
    w.key("offsets");
    w.begin_array();
    for (const auto& [task, off] : e.delta.offsets) {
      w.begin_object();
      w.member("task", static_cast<std::uint64_t>(task));
      w.member("offset_ns", off.count());
      w.end_object();
    }
    w.end_array();
    w.key("buffers");
    w.begin_array();
    for (const auto& b : e.delta.buffers) {
      w.begin_object();
      w.member("from", static_cast<std::uint64_t>(b.from));
      w.member("to", static_cast<std::uint64_t>(b.to));
      w.member("buffer_size", b.buffer_size);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("stats");
  w.begin_object();
  w.member("proposed", result.stats.proposed);
  w.member("invalid", result.stats.invalid);
  w.member("accepted", result.stats.accepted);
  w.member("rolled_back", result.stats.rolled_back);
  w.member("unschedulable", result.stats.unschedulable);
  w.member("evaluations", result.stats.evaluations);
  w.member("archive_inserts", result.stats.archive_inserts);
  w.member("archive_evictions", result.stats.archive_evictions);
  w.member("archive_rejects", result.stats.archive_rejects);
  w.end_object();
  w.end_object();
  w.done();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ceta;
  using namespace ceta::explore;

  std::size_t len_a = 17, len_b = 16;
  int ecus = 4;
  std::uint64_t waters_seed = 1;
  bool audsley = true;
  bool quiet = false;
  std::string json_path;
  ExploreOptions opt;
  opt.moves_per_restart = 256;
  opt.restarts = 4;

  const auto next_arg = [&](int& i) -> const char* {
    if (i + 1 >= argc) return nullptr;
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      const char* v = nullptr;
      if (arg == "--len-a" && (v = next_arg(i))) {
        len_a = std::stoul(v);
      } else if (arg == "--len-b" && (v = next_arg(i))) {
        len_b = std::stoul(v);
      } else if (arg == "--ecus" && (v = next_arg(i))) {
        ecus = std::stoi(v);
      } else if (arg == "--waters-seed" && (v = next_arg(i))) {
        waters_seed = std::stoull(v);
      } else if (arg == "--seed" && (v = next_arg(i))) {
        opt.seed = std::stoull(v);
      } else if (arg == "--moves" && (v = next_arg(i))) {
        opt.moves_per_restart = std::stoul(v);
      } else if (arg == "--restarts" && (v = next_arg(i))) {
        opt.restarts = std::stoul(v);
      } else if (arg == "--threads" && (v = next_arg(i))) {
        opt.num_threads = std::stoul(v);
      } else if (arg == "--max-buffer" && (v = next_arg(i))) {
        opt.max_buffer = std::stoi(v);
      } else if (arg == "--offset-grid" && (v = next_arg(i))) {
        opt.offset_grid = std::stoul(v);
      } else if (arg == "--strategy" && (v = next_arg(i))) {
        const std::string s = v;
        if (s == "hill") {
          opt.strategy = Strategy::kHillClimb;
        } else if (s == "anneal") {
          opt.strategy = Strategy::kAnneal;
        } else if (s == "portfolio") {
          opt.strategy = Strategy::kPortfolio;
        } else {
          return usage(argv[0]);
        }
      } else if (arg == "--objective" && (v = next_arg(i))) {
        const std::string s = v;
        if (s == "analyzer") {
          opt.objective = ObjectiveMode::kAnalyzer;
        } else if (s == "exact") {
          opt.objective = ObjectiveMode::kExactLet;
        } else {
          return usage(argv[0]);
        }
      } else if (arg == "--no-audsley") {
        audsley = false;
      } else if (arg == "--json" && (v = next_arg(i))) {
        json_path = v;
      } else if (arg == "--quiet") {
        quiet = true;
      } else {
        return usage(argv[0]);
      }
    } catch (const std::exception&) {
      return usage(argv[0]);
    }
  }

  try {
    // Scan waters_seed forward to the first schedulable parameterization.
    TaskGraph g;
    for (;; ++waters_seed) {
      g = merge_chains_at_sink(len_a, len_b);
      Rng rng(waters_seed);
      WatersAssignOptions wopt;
      wopt.num_ecus = ecus;
      assign_waters_parameters(g, wopt, rng);
      if (AnalysisEngine probe(g); probe.schedulable()) break;
    }
    const TaskId sink = g.sinks().front();

    AnalysisEngine engine(std::move(g));
    if (audsley) seed_priorities(engine);

    const ExploreResult result = ceta::explore::explore(engine, sink, opt);

    if (!quiet) {
      std::cout << "explore: " << engine.graph().num_tasks() << " tasks, sink "
                << sink << ", waters seed " << waters_seed << "\n"
                << "start: disparity " << result.start.disparity.count()
                << " ns, data age " << result.start.data_age.count()
                << " ns, memory " << result.start.memory << "\n"
                << "front (" << result.archive.size() << " entries):\n";
      for (const ArchiveEntry& e : result.archive) {
        std::cout << "  disparity " << e.objectives.disparity.count()
                  << " ns, data age " << e.objectives.data_age.count()
                  << " ns, memory " << e.objectives.memory << ", delta "
                  << e.delta.size() << " edits (key " << e.key << ")\n";
      }
      std::cout << "moves: " << result.stats.proposed << " proposed, "
                << result.stats.accepted << " accepted, "
                << result.stats.rolled_back << " rolled back, "
                << result.stats.invalid << " invalid, "
                << result.stats.unschedulable << " unschedulable\n"
                << "archive: " << result.stats.archive_inserts << " inserts, "
                << result.stats.archive_evictions << " evictions, "
                << result.stats.archive_rejects << " rejects\n";
    }
    if (!json_path.empty()) {
      write_json(json_path, engine.graph(), sink, waters_seed, opt, result);
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "explore: " << e.what() << "\n";
    return 1;
  }
}
