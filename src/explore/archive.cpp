#include "explore/archive.hpp"

#include <algorithm>
#include <utility>

#include "engine/analysis_engine.hpp"

namespace ceta::explore {

namespace {

/// Canonical archive order: lexicographic on the objective vector, then
/// the entry key.  Total (keys are unique within a campaign), so sorted
/// fronts compare bit-for-bit across thread counts.
bool entry_less(const ArchiveEntry& a, const ArchiveEntry& b) {
  if (a.objectives.disparity != b.objectives.disparity) {
    return a.objectives.disparity < b.objectives.disparity;
  }
  if (a.objectives.data_age != b.objectives.data_age) {
    return a.objectives.data_age < b.objectives.data_age;
  }
  if (a.objectives.memory != b.objectives.memory) {
    return a.objectives.memory < b.objectives.memory;
  }
  return a.key < b.key;
}

/// True iff archived `e` blocks candidate objectives `o` with key `key`:
/// it dominates them, or wins the objective tie canonically.
bool blocks(const ArchiveEntry& e, const Objectives& o, std::uint64_t key) {
  return dominates(e.objectives, o) || (e.objectives == o && e.key <= key);
}

}  // namespace

bool dominates(const Objectives& a, const Objectives& b) {
  return a.disparity <= b.disparity && a.data_age <= b.data_age &&
         a.memory <= b.memory && !(a == b);
}

ConfigState ConfigState::of(const TaskGraph& g) {
  ConfigState s;
  s.priorities.reserve(g.num_tasks());
  s.offsets.reserve(g.num_tasks());
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    s.priorities.push_back(g.task(t).priority);
    s.offsets.push_back(g.task(t).offset);
  }
  s.buffers.reserve(g.num_edges());
  for (const Edge& e : g.edges()) s.buffers.push_back(e.channel.buffer_size);
  return s;
}

ConfigDelta delta_between(const TaskGraph& base, const ConfigState& current) {
  ConfigDelta d;
  for (TaskId t = 0; t < base.num_tasks(); ++t) {
    if (base.task(t).priority != current.priorities[t]) {
      d.priorities.emplace_back(t, current.priorities[t]);
    }
    if (base.task(t).offset != current.offsets[t]) {
      d.offsets.emplace_back(t, current.offsets[t]);
    }
  }
  const std::vector<Edge>& edges = base.edges();
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (edges[i].channel.buffer_size != current.buffers[i]) {
      d.buffers.push_back({edges[i].from, edges[i].to, current.buffers[i]});
    }
  }
  return d;
}

void apply_delta(AnalysisEngine& engine, const ConfigDelta& delta) {
  if (delta.empty()) return;
  AnalysisEngine::Transaction txn(engine);
  for (const auto& [task, priority] : delta.priorities) {
    txn.set_priority(task, priority);
  }
  for (const auto& [task, offset] : delta.offsets) txn.set_offset(task, offset);
  for (const ConfigDelta::BufferChange& b : delta.buffers) {
    txn.set_buffer(b.from, b.to, b.buffer_size);
  }
  txn.commit();
}

ParetoArchive::ParetoArchive() {
  snap_.store(std::make_shared<const std::vector<ArchiveEntry>>(),
              std::memory_order_release);
}

bool ParetoArchive::would_accept(const Objectives& o,
                                 std::uint64_t key) const {
  const auto snap = snap_.load(std::memory_order_acquire);
  for (const ArchiveEntry& e : *snap) {
    if (blocks(e, o, key)) return false;
  }
  return true;
}

bool ParetoArchive::insert(ArchiveEntry e) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto cur = snap_.load(std::memory_order_acquire);
  for (const ArchiveEntry& x : *cur) {
    if (blocks(x, e.objectives, e.key)) {
      rejects_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  auto next = std::make_shared<std::vector<ArchiveEntry>>();
  next->reserve(cur->size() + 1);
  for (const ArchiveEntry& x : *cur) {
    if (dominates(e.objectives, x.objectives) ||
        (x.objectives == e.objectives && e.key < x.key)) {
      evictions_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    next->push_back(x);
  }
  e.epoch = epoch_++;
  next->insert(std::lower_bound(next->begin(), next->end(), e, entry_less),
               std::move(e));
  snap_.store(std::move(next), std::memory_order_release);
  inserts_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ParetoArchive::merge(const ParetoArchive& other) {
  const auto snap = other.snapshot();
  for (const ArchiveEntry& e : *snap) insert(e);
}

std::shared_ptr<const std::vector<ArchiveEntry>> ParetoArchive::snapshot()
    const {
  return snap_.load(std::memory_order_acquire);
}

std::size_t ParetoArchive::size() const {
  return snap_.load(std::memory_order_acquire)->size();
}

}  // namespace ceta::explore
