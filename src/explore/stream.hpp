// Counter-based deterministic draw streams for the design-space explorer.
//
// The explorer's determinism contract mirrors the simulator's
// (sim/exec_model.hpp): every random decision of a search trajectory is a
// *pure function* of (seed, restart, step, purpose) — no generator state
// is carried between draws, so a restart's trajectory is identical no
// matter which pool thread runs it, in what order restarts are scheduled,
// or how many workers share the campaign.  Same seed ⇒ same Pareto front
// on 1 and N threads (asserted by tests/test_explore.cpp and gated by
// bench/perf_explore.cpp).
//
// The mix chain is SplitMix64, the same construction SimStream uses; the
// restart coordinate is folded into the per-stream seed so two restarts of
// one campaign never share bits.

#pragma once

#include <cstdint>

#include "common/time.hpp"

namespace ceta::explore {

/// One restart's draw stream: stateless, pure in (seed, restart, step,
/// purpose).
class ExploreStream {
 public:
  /// Purpose coordinate of a draw; extend rather than reuse so distinct
  /// decisions never share bits.
  enum Draw : std::uint32_t {
    kMoveKind = 0,      ///< which move family to propose
    kTarget = 1,        ///< edge / cohort / source the move targets
    kParam = 2,         ///< primary move parameter (delta, member, slot)
    kParam2 = 3,        ///< secondary move parameter (swap partner)
    kAccept = 4,        ///< simulated-annealing acceptance draw
    kWeightAge = 5,     ///< per-restart data-age scalarization weight
    kWeightMemory = 6,  ///< per-restart memory scalarization weight
  };

  ExploreStream(std::uint64_t seed, std::uint64_t restart)
      : seed_(mix(seed + kGamma * (restart + 1))) {}

  /// Raw 64-bit draw for (step, purpose); pure in all four coordinates.
  std::uint64_t bits(std::uint64_t step, Draw purpose) const {
    std::uint64_t h = seed_;
    h = mix(h + kGamma * (step + 1));
    h = mix(h + kGamma * (static_cast<std::uint64_t>(purpose) + 1));
    return h;
  }

  /// Uniform draw in [0, n); n must be nonzero.  Fixed-point multiply of
  /// the mix output (no modulo bias worth caring about at these ranges).
  std::uint64_t below(std::uint64_t step, Draw purpose,
                      std::uint64_t n) const {
    __extension__ using Wide = unsigned __int128;
    return static_cast<std::uint64_t>(
        (static_cast<Wide>(bits(step, purpose)) * n) >> 64);
  }

  /// Uniform draw in [0, 1) with 53-bit resolution.
  double unit(std::uint64_t step, Draw purpose) const {
    return static_cast<double>(bits(step, purpose) >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ull;

  static std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
  }

  std::uint64_t seed_;
};

}  // namespace ceta::explore
