// Parallel design-space explorer on the incremental AnalysisEngine.
//
// ROADMAP item 5: co-optimize per-task priorities (Audsley-seedable via
// seed_priorities), source release offsets and per-channel FIFO depths
// against the three-objective target (worst-case disparity, worst-case
// data age, memory = Σ buffers).  The hot loop is the mutation API: a
// candidate move is one batched Transaction on a per-thread engine clone,
// scored with the memoized disparity/latency queries, and — when the
// strategy rejects it — rolled back by committing the inverse batch, so a
// move costs O(invalidated cache entries), never a fresh analysis
// (bench/perf_explore.cpp gates the resulting ≥5× over a
// fresh-engine-per-move baseline).
//
// Search is restart-based local search: each restart owns an engine clone
// (AnalysisEngine::clone — deep copy with warm caches) and walks
// `moves_per_restart` proposals drawn from a counter-based ExploreStream;
// restarts shard over a ThreadPool.  Determinism contract: every decision
// of restart r is a pure function of (seed, r, step), restarts never
// communicate during the walk, and the final front is the order-insensitive
// fold of the per-restart archives — so the same seed yields the same
// ExploreResult (entries, keys, epochs) on 1 and N threads.  Strategies:
// greedy hill-climb, simulated annealing (deterministic counter-based
// temperature/acceptance streams), or the portfolio that alternates both
// across restarts.  DESIGN.md §13 documents the move set, the archive
// semantics and this contract in full.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "explore/archive.hpp"
#include "graph/paths.hpp"
#include "graph/task_graph.hpp"

namespace ceta {
class AnalysisEngine;
}  // namespace ceta

namespace ceta::explore {

/// Search strategy of one campaign.
enum class Strategy {
  kHillClimb,  ///< greedy: accept strict scalarized improvements only
  kAnneal,     ///< simulated annealing with deterministic streams
  kPortfolio,  ///< alternate hill-climb / annealing across restarts
};

/// How candidate configurations are scored.
enum class ObjectiveMode {
  /// Analyzer bounds: Theorem 1/2 disparity and the Lemma 4/5 data-age
  /// bound.  Offset moves are *inert* here — release offsets enter no
  /// analyzer bound (DESIGN.md §9 row "offset") — so they only diversify
  /// annealing walks.
  kAnalyzer,
  /// Exact LET oracle (disparity/exact.hpp) for the disparity component;
  /// offsets then genuinely move the objective.  Requires the sink's
  /// ancestor closure to be LET + jitter-free, as exact_let_disparity.
  kExactLet,
};

struct ExploreOptions {
  Strategy strategy = Strategy::kPortfolio;
  ObjectiveMode objective = ObjectiveMode::kAnalyzer;
  /// Campaign seed; the only source of randomness (see determinism
  /// contract above).
  std::uint64_t seed = 1;
  /// Local-search moves proposed per restart (must be < 2^39 so step
  /// coordinates stay disjoint from the perturbation stream).
  std::size_t moves_per_restart = 512;
  /// Independent restarts; restart 0 starts at the base configuration,
  /// restart r > 0 first applies `perturb_moves` forced random moves.
  std::size_t restarts = 8;
  /// Worker threads restarts are sharded over; 0 = default_concurrency(),
  /// 1 = serial.  Never changes the result, only the wall clock.
  std::size_t num_threads = 0;
  /// Largest FIFO depth a buffer move may propose.
  int max_buffer = 8;
  /// Offset moves snap to multiples of period / offset_grid.
  std::size_t offset_grid = 16;
  /// Forced moves perturbing the starting point of restarts > 0.
  std::size_t perturb_moves = 4;
  /// Chain-enumeration capacity for the objective queries.
  std::size_t path_cap = kDefaultPathCap;
  /// Release cap of the exact LET oracle (kExactLet only).
  std::size_t max_releases = 50'000;
  /// Annealing: initial temperature as a fraction of the restart's
  /// starting scalarized cost, and the per-move multiplicative cooling.
  double anneal_t0 = 0.05;
  double anneal_decay = 0.99;
  /// TEST ONLY — skip the engine rollback of the first strategy-rejected
  /// buffer move of restart 0, leaving the engine's graph silently ahead
  /// of the explorer's config mirror.  Every later archive entry then
  /// carries a delta that cannot reproduce its objective vector, which the
  /// `explored_configs_revalidate` verify property must catch
  /// (`verify_bounds --inject-explore-fault`).  Never set in production.
  bool fault_skip_rollback = false;

  /// @throws PreconditionError on out-of-range parameters.
  void validate() const;
};

/// Per-campaign counters (all deterministic in the seed).
struct ExploreStats {
  std::uint64_t proposed = 0;     ///< moves drawn from the stream
  std::uint64_t invalid = 0;      ///< proposals discarded before commit
  std::uint64_t accepted = 0;     ///< moves the strategy kept
  std::uint64_t rolled_back = 0;  ///< rejected moves undone via inverse txn
  std::uint64_t unschedulable = 0;  ///< committed then rolled back: RTA lost
  std::uint64_t evaluations = 0;  ///< objective-vector evaluations
  std::uint64_t archive_inserts = 0;
  std::uint64_t archive_evictions = 0;
  std::uint64_t archive_rejects = 0;
};

/// Outcome of one campaign.
struct ExploreResult {
  /// The Pareto front: canonically sorted (objectives, then key), each
  /// entry carrying the replayable ConfigDelta against the base graph.
  /// Front entry = best-disparity configuration (sort is disparity-major).
  std::vector<ArchiveEntry> archive;
  /// Objective vector of the base (starting) configuration.
  Objectives start;
  ExploreStats stats;
};

/// Evaluate the explorer's objective vector of `engine`'s *current*
/// configuration: disparity of `sink` per `opt.objective`, worst
/// max-data-age bound over the sink's source chains, Σ buffer depths.
/// Pure memoized query — safe on any engine, used by the explorer's hot
/// loop and by replay_objectives.
Objectives evaluate_objectives(const AnalysisEngine& engine, TaskId sink,
                               const ExploreOptions& opt);

/// Replay `entry.delta` onto a fresh AnalysisEngine over `base` and
/// re-evaluate.  The `explored_configs_revalidate` contract: for every
/// entry of an un-faulted campaign this returns exactly entry.objectives.
Objectives replay_objectives(const TaskGraph& base, const ArchiveEntry& entry,
                             TaskId sink, const ExploreOptions& opt);

/// Run a campaign against `base`'s current configuration, exploring the
/// design space of `sink`'s disparity.  `base` itself is never mutated
/// (each restart works on a clone); it must own its RTA (not external-rtm
/// mode) and its graph must be schedulable.  Counters are also published
/// to base.metrics_registry() ("explore.moves.proposed", ...).
/// @throws PreconditionError on invalid options or an unschedulable /
///   external-rtm base.
ExploreResult explore(const AnalysisEngine& base, TaskId sink,
                      const ExploreOptions& opt = {});

}  // namespace ceta::explore
