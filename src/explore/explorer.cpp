#include "explore/explorer.hpp"

#include <algorithm>
#include <cmath>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "common/error.hpp"
#include "disparity/exact.hpp"
#include "engine/analysis_engine.hpp"
#include "engine/thread_pool.hpp"
#include "explore/stream.hpp"
#include "graph/algorithms.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace ceta::explore {

namespace {

/// Perturbation draws use step coordinates above this base so they never
/// collide with search steps (moves_per_restart < 2^39, validated).
constexpr std::uint64_t kPerturbStepBase = 1ull << 39;

/// Immutable per-campaign move targets, built once from the base graph
/// (moves are non-structural, so edge order and cohorts never change).
struct MoveContext {
  /// Indices into base.edges() of channels in the sink's ancestor cone —
  /// the only edges whose depth can move the sink's bounds.
  std::vector<std::size_t> cone_edges;
  /// Same-ECU groups of non-source tasks with >= 2 members (the swappable
  /// cohorts).
  std::vector<std::vector<TaskId>> cohorts;
  std::vector<TaskId> sources;
};

MoveContext build_context(const TaskGraph& g, TaskId sink) {
  MoveContext ctx;
  std::vector<char> in_cone(g.num_tasks(), 0);
  for (const TaskId t : ancestors(g, sink)) in_cone[t] = 1;
  in_cone[sink] = 1;
  const std::vector<Edge>& edges = g.edges();
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (in_cone[edges[i].to]) ctx.cone_edges.push_back(i);
  }
  std::map<EcuId, std::vector<TaskId>> by_ecu;
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    if (!g.is_source(t)) by_ecu[g.task(t).ecu].push_back(t);
  }
  for (auto& [ecu, members] : by_ecu) {
    if (members.size() >= 2) ctx.cohorts.push_back(std::move(members));
  }
  ctx.sources = g.sources();
  return ctx;
}

/// One candidate move with everything needed to apply, mirror and invert
/// it.
struct Move {
  enum class Kind { kBuffer, kSwap, kOffset };
  Kind kind = Kind::kBuffer;
  // kBuffer
  std::size_t edge_index = 0;
  TaskId from = 0, to = 0;
  int new_buf = 1, old_buf = 1;
  // kSwap: a takes pb, b takes pa
  TaskId a = 0, b = 0;
  int pa = 0, pb = 0;
  // kOffset
  TaskId task = 0;
  Duration new_off = Duration::zero(), old_off = Duration::zero();
};

/// Draw the move of (restart-stream, step) against the mirror `cur`.
/// Returns nullopt for proposals that are no-ops or out of range (counted
/// as invalid, the engine is never touched).
std::optional<Move> propose(const ExploreStream& st, std::uint64_t step,
                            const TaskGraph& g, const MoveContext& ctx,
                            const ConfigState& cur,
                            const ExploreOptions& opt) {
  switch (st.below(step, ExploreStream::kMoveKind, 3)) {
    case 0: {  // FIFO resize inside the sink's cone
      if (ctx.cone_edges.empty()) return std::nullopt;
      const std::size_t ei = ctx.cone_edges[st.below(
          step, ExploreStream::kTarget, ctx.cone_edges.size())];
      const int delta = (st.bits(step, ExploreStream::kParam) & 1) ? 1 : -1;
      const int nb = cur.buffers[ei] + delta;
      if (nb < 1 || nb > opt.max_buffer) return std::nullopt;
      Move m;
      m.kind = Move::Kind::kBuffer;
      m.edge_index = ei;
      m.from = g.edges()[ei].from;
      m.to = g.edges()[ei].to;
      m.new_buf = nb;
      m.old_buf = cur.buffers[ei];
      return m;
    }
    case 1: {  // same-ECU priority swap
      if (ctx.cohorts.empty()) return std::nullopt;
      const std::vector<TaskId>& coh = ctx.cohorts[st.below(
          step, ExploreStream::kTarget, ctx.cohorts.size())];
      const std::size_t n = coh.size();
      const std::size_t i = st.below(step, ExploreStream::kParam, n);
      std::size_t j = st.below(step, ExploreStream::kParam2, n - 1);
      if (j >= i) ++j;
      Move m;
      m.kind = Move::Kind::kSwap;
      m.a = coh[i];
      m.b = coh[j];
      m.pa = cur.priorities[m.a];
      m.pb = cur.priorities[m.b];
      return m;
    }
    default: {  // source offset shift on the period / offset_grid lattice
      if (ctx.sources.empty()) return std::nullopt;
      const TaskId s = ctx.sources[st.below(step, ExploreStream::kTarget,
                                            ctx.sources.size())];
      const Duration period = g.task(s).period;
      const std::int64_t grid = static_cast<std::int64_t>(opt.offset_grid);
      const std::int64_t slot = static_cast<std::int64_t>(
          st.below(step, ExploreStream::kParam, opt.offset_grid));
      const Duration off = Duration::ns(period.count() / grid * slot);
      if (off == cur.offsets[s]) return std::nullopt;
      Move m;
      m.kind = Move::Kind::kOffset;
      m.task = s;
      m.new_off = off;
      m.old_off = cur.offsets[s];
      return m;
    }
  }
}

/// Commit `m` (forward) or its inverse (!forward) as one Transaction —
/// the O(invalidated) move evaluation / strong-guarantee rollback path.
void apply_move(AnalysisEngine& e, const Move& m, bool forward) {
  AnalysisEngine::Transaction txn(e);
  switch (m.kind) {
    case Move::Kind::kBuffer:
      txn.set_buffer(m.from, m.to, forward ? m.new_buf : m.old_buf);
      break;
    case Move::Kind::kSwap:
      txn.set_priority(m.a, forward ? m.pb : m.pa)
          .set_priority(m.b, forward ? m.pa : m.pb);
      break;
    case Move::Kind::kOffset:
      txn.set_offset(m.task, forward ? m.new_off : m.old_off);
      break;
  }
  txn.commit();
}

/// Track `m` in the explorer's cheap configuration mirror.
void mirror_move(ConfigState& cur, const Move& m, bool forward) {
  switch (m.kind) {
    case Move::Kind::kBuffer:
      cur.buffers[m.edge_index] = forward ? m.new_buf : m.old_buf;
      break;
    case Move::Kind::kSwap:
      cur.priorities[m.a] = forward ? m.pb : m.pa;
      cur.priorities[m.b] = forward ? m.pa : m.pb;
      break;
    case Move::Kind::kOffset:
      cur.offsets[m.task] = forward ? m.new_off : m.old_off;
      break;
  }
}

double scalar_cost(const Objectives& o, double w_age, double w_mem,
                   double mem_unit) {
  return static_cast<double>(o.disparity.count()) +
         w_age * static_cast<double>(o.data_age.count()) +
         w_mem * mem_unit * static_cast<double>(o.memory);
}

struct RestartOutcome {
  std::vector<ArchiveEntry> entries;
  ExploreStats stats;
};

RestartOutcome run_restart(const AnalysisEngine& base, const TaskGraph& bg,
                           const MoveContext& ctx, TaskId sink,
                           const ExploreOptions& opt, std::uint64_t r) {
  obs::Span span("explore", "restart");
  span.arg("restart", static_cast<std::int64_t>(r));
  RestartOutcome out;
  const std::unique_ptr<AnalysisEngine> eng = base.clone();
  AnalysisEngine& e = *eng;
  const ExploreStream st(opt.seed, r);
  ConfigState cur = ConfigState::of(bg);
  ParetoArchive local;

  const bool greedy =
      opt.strategy == Strategy::kHillClimb ||
      (opt.strategy == Strategy::kPortfolio && (r % 2 == 0));

  // Random-restart kick: restarts > 0 start from a perturbed copy of the
  // base configuration (forced-accept moves on the perturbation stream).
  if (r > 0) {
    for (std::size_t p = 0; p < opt.perturb_moves; ++p) {
      const std::optional<Move> mv =
          propose(st, kPerturbStepBase + p, bg, ctx, cur, opt);
      if (!mv) continue;
      apply_move(e, *mv, true);
      if (mv->kind == Move::Kind::kSwap && !e.schedulable()) {
        apply_move(e, *mv, false);
        continue;
      }
      mirror_move(cur, *mv, true);
    }
  }

  Objectives current = evaluate_objectives(e, sink, opt);
  ++out.stats.evaluations;
  local.insert({current, delta_between(bg, cur), entry_key(r, 0), 0});

  // Per-restart scalarization weights: restarts chase different corners
  // of the front, the archive keeps everything non-dominated.
  const double w_age = st.unit(0, ExploreStream::kWeightAge);
  const double w_mem = st.unit(0, ExploreStream::kWeightMemory);
  const double mem_unit = std::max(
      1.0, static_cast<double>(current.disparity.count()) /
               static_cast<double>(std::max<std::int64_t>(1, current.memory)));
  double cost = scalar_cost(current, w_age, w_mem, mem_unit);
  double temperature = opt.anneal_t0 * std::max(1.0, std::abs(cost));
  bool fault_armed = opt.fault_skip_rollback && r == 0;

  for (std::uint64_t step = 1; step <= opt.moves_per_restart; ++step) {
    ++out.stats.proposed;
    temperature *= opt.anneal_decay;
    const std::optional<Move> mv = propose(st, step, bg, ctx, cur, opt);
    if (!mv) {
      ++out.stats.invalid;
      continue;
    }
    apply_move(e, *mv, true);
    if (mv->kind == Move::Kind::kSwap && !e.schedulable()) {
      // The swap lost the RTA — no objective vector exists; undo and
      // continue (the scoped refresh makes this a cohort-sized detour).
      apply_move(e, *mv, false);
      ++out.stats.unschedulable;
      ++out.stats.rolled_back;
      continue;
    }
    mirror_move(cur, *mv, true);
    const Objectives cand = evaluate_objectives(e, sink, opt);
    ++out.stats.evaluations;
    const std::uint64_t key = entry_key(r, step);
    if (local.would_accept(cand, key)) {
      local.insert({cand, delta_between(bg, cur), key, 0});
    }
    const double cand_cost = scalar_cost(cand, w_age, w_mem, mem_unit);
    bool accept = cand_cost < cost;
    if (!accept && !greedy && temperature > 0.0) {
      accept = st.unit(step, ExploreStream::kAccept) <
               std::exp(-(cand_cost - cost) / temperature);
    }
    if (accept) {
      cost = cand_cost;
      current = cand;
      ++out.stats.accepted;
    } else {
      mirror_move(cur, *mv, false);
      if (fault_armed && mv->kind == Move::Kind::kBuffer) {
        // TEST ONLY (fault_skip_rollback): leak the rejected move into the
        // engine while the mirror forgets it — every later delta lies.
        fault_armed = false;
      } else {
        apply_move(e, *mv, false);
        ++out.stats.rolled_back;
      }
    }
  }

  const auto snap = local.snapshot();
  out.entries.assign(snap->begin(), snap->end());
  out.stats.archive_inserts = local.inserts();
  out.stats.archive_evictions = local.evictions();
  out.stats.archive_rejects = local.rejects();
  return out;
}

}  // namespace

void ExploreOptions::validate() const {
  CETA_EXPECTS(moves_per_restart >= 1 && moves_per_restart < (1ull << 39),
               "ExploreOptions: moves_per_restart out of range");
  CETA_EXPECTS(restarts >= 1 && restarts <= (1ull << 24),
               "ExploreOptions: restarts out of range");
  CETA_EXPECTS(max_buffer >= 1, "ExploreOptions: max_buffer must be >= 1");
  CETA_EXPECTS(offset_grid >= 1, "ExploreOptions: offset_grid must be >= 1");
  CETA_EXPECTS(perturb_moves < (1ull << 38),
               "ExploreOptions: perturb_moves out of range");
  CETA_EXPECTS(anneal_t0 > 0.0 && anneal_decay > 0.0 && anneal_decay <= 1.0,
               "ExploreOptions: annealing schedule out of range");
  CETA_EXPECTS(path_cap >= 1, "ExploreOptions: path_cap must be >= 1");
}

Objectives evaluate_objectives(const AnalysisEngine& engine, TaskId sink,
                               const ExploreOptions& opt) {
  Objectives o;
  if (opt.objective == ObjectiveMode::kAnalyzer) {
    DisparityOptions dopt;
    dopt.method = DisparityMethod::kForkJoin;
    dopt.path_cap = opt.path_cap;
    dopt.keep_pairs = KeepPairs::kWorstOnly;
    o.disparity = engine.disparity(sink, dopt).worst_case;
  } else {
    o.disparity =
        exact_let_disparity(engine.graph(), sink, opt.path_cap,
                            opt.max_releases)
            .worst_disparity;
  }
  Duration age = Duration::zero();
  for (const Path& c : engine.chains(sink, opt.path_cap)) {
    age = std::max(age, engine.latency(c).max_data_age);
  }
  o.data_age = age;
  std::int64_t memory = 0;
  for (const Edge& e : engine.graph().edges()) memory += e.channel.buffer_size;
  o.memory = memory;
  return o;
}

Objectives replay_objectives(const TaskGraph& base, const ArchiveEntry& entry,
                             TaskId sink, const ExploreOptions& opt) {
  AnalysisEngine fresh(base);
  apply_delta(fresh, entry.delta);
  return evaluate_objectives(fresh, sink, opt);
}

ExploreResult explore(const AnalysisEngine& base, TaskId sink,
                      const ExploreOptions& opt) {
  obs::Span span("explore", "run");
  span.arg("sink", static_cast<std::int64_t>(sink));
  span.arg("restarts", static_cast<std::int64_t>(opt.restarts));
  opt.validate();
  CETA_EXPECTS(sink < base.graph().num_tasks(), "explore: sink out of range");
  (void)base.rta();  // rejects external-rtm engines (cannot swap priorities)
  CETA_EXPECTS(base.schedulable(),
               "explore: base configuration is unschedulable");

  const TaskGraph bg = base.graph();
  const MoveContext ctx = build_context(bg, sink);

  std::vector<RestartOutcome> outcomes(opt.restarts);
  const std::size_t want =
      opt.num_threads ? opt.num_threads : ThreadPool::default_concurrency();
  const std::size_t threads = std::min(want, opt.restarts);
  if (threads <= 1 || ThreadPool::current_thread_in_pool()) {
    for (std::uint64_t r = 0; r < opt.restarts; ++r) {
      outcomes[r] = run_restart(base, bg, ctx, sink, opt, r);
    }
  } else {
    ThreadPool pool(threads);
    std::vector<std::future<RestartOutcome>> futs;
    futs.reserve(opt.restarts);
    for (std::uint64_t r = 0; r < opt.restarts; ++r) {
      futs.push_back(
          pool.submit([&, r] { return run_restart(base, bg, ctx, sink, opt, r); }));
    }
    for (std::size_t r = 0; r < opt.restarts; ++r) outcomes[r] = futs[r].get();
  }

  // Deterministic fold: merging in restart order (with the archive's
  // order-insensitive tie-breaks) makes the final front — entries, keys
  // and epochs — independent of how restarts were sharded over threads.
  ExploreResult result;
  ParetoArchive front;
  for (const RestartOutcome& o : outcomes) {
    for (const ArchiveEntry& e : o.entries) front.insert(e);
    result.stats.proposed += o.stats.proposed;
    result.stats.invalid += o.stats.invalid;
    result.stats.accepted += o.stats.accepted;
    result.stats.rolled_back += o.stats.rolled_back;
    result.stats.unschedulable += o.stats.unschedulable;
    result.stats.evaluations += o.stats.evaluations;
    result.stats.archive_inserts += o.stats.archive_inserts;
    result.stats.archive_evictions += o.stats.archive_evictions;
    result.stats.archive_rejects += o.stats.archive_rejects;
  }
  const auto snap = front.snapshot();
  result.archive.assign(snap->begin(), snap->end());
  result.start = evaluate_objectives(base, sink, opt);

  obs::MetricsRegistry& reg = base.metrics_registry();
  reg.counter("explore.moves.proposed").add(result.stats.proposed);
  reg.counter("explore.moves.invalid").add(result.stats.invalid);
  reg.counter("explore.moves.accepted").add(result.stats.accepted);
  reg.counter("explore.moves.rolled_back").add(result.stats.rolled_back);
  reg.counter("explore.moves.unschedulable").add(result.stats.unschedulable);
  reg.counter("explore.evaluations").add(result.stats.evaluations);
  reg.counter("explore.archive.inserts").add(result.stats.archive_inserts);
  reg.counter("explore.archive.evictions").add(result.stats.archive_evictions);
  reg.counter("explore.archive.rejects").add(result.stats.archive_rejects);
  reg.gauge("explore.front.size")
      .set(static_cast<std::int64_t>(result.archive.size()));
  return result;
}

}  // namespace ceta::explore
