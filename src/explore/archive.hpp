// Pareto archive of explored configurations.
//
// The explorer scores every candidate configuration on three minimized
// objectives — worst-case time disparity, worst-case data age, and memory
// (Σ FIFO buffer depths) — and archives every candidate not dominated by
// an already-archived one.  Each entry carries the full configuration
// delta against the base graph (priorities, offsets, buffer depths that
// differ), which is everything needed to replay the configuration onto a
// fresh AnalysisEngine; the `explored_configs_revalidate` verify property
// does exactly that and demands bit-identical objective vectors.
//
// Determinism contract: the archived *set* is a pure function of the
// multiset of inserted entries, independent of insertion order.  Ties on
// the objective vector are broken canonically by the entry key (the
// (restart, step) coordinate that produced the candidate — total over a
// campaign), so merging per-restart archives yields the same front no
// matter how restarts were sharded over threads.  snapshot() readers are
// lock-free: writers publish an immutable entry vector through an atomic
// shared_ptr, so a reader never blocks behind an insert (and vice versa).

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/time.hpp"
#include "graph/task_graph.hpp"

namespace ceta {
class AnalysisEngine;
}  // namespace ceta

namespace ceta::explore {

/// Objective vector of one configuration; every component is minimized.
struct Objectives {
  /// Analyzer worst-case disparity of the explored sink (or the exact LET
  /// disparity under ObjectiveMode::kExactLet).
  Duration disparity = Duration::zero();
  /// Worst max-data-age bound over the sink's source chains.
  Duration data_age = Duration::zero();
  /// Σ buffer depths over all channels (the paper's memory cost).
  std::int64_t memory = 0;

  bool operator==(const Objectives&) const = default;
};

/// True iff `a` Pareto-dominates `b`: no worse in every component and
/// strictly better in at least one.
bool dominates(const Objectives& a, const Objectives& b);

/// Diff of a candidate configuration against the base graph: only the
/// parameters that differ, each list sorted by task / edge id.  Replayable
/// onto any engine owning the base graph (apply_delta) — the full
/// configuration record of an archive entry.
struct ConfigDelta {
  /// (task, priority) pairs differing from the base assignment.
  std::vector<std::pair<TaskId, int>> priorities;
  /// (task, offset) pairs differing from the base offsets.
  std::vector<std::pair<TaskId, Duration>> offsets;
  /// One FIFO depth change of channel (from, to).
  struct BufferChange {
    TaskId from = 0;
    TaskId to = 0;
    int buffer_size = 1;
    bool operator==(const BufferChange&) const = default;
  };
  /// Channel depth changes differing from the base graph.
  std::vector<BufferChange> buffers;

  /// Total number of changed parameters.
  std::size_t size() const {
    return priorities.size() + offsets.size() + buffers.size();
  }
  bool empty() const { return size() == 0; }
  bool operator==(const ConfigDelta&) const = default;
};

/// Flat snapshot of the explored parameters of a graph: per-task
/// priorities and offsets, per-edge buffer depths in graph edge order.
/// The explorer's cheap mirror of its engine's configuration (updated per
/// accepted move instead of re-reading the graph).
struct ConfigState {
  std::vector<int> priorities;
  std::vector<Duration> offsets;
  std::vector<int> buffers;

  /// Snapshot `g`'s current configuration.
  static ConfigState of(const TaskGraph& g);
  bool operator==(const ConfigState&) const = default;
};

/// Delta of `current` (a configuration of `base`'s graph shape) against
/// `base`'s own parameters.  O(V + E).
ConfigDelta delta_between(const TaskGraph& base, const ConfigState& current);

/// Apply `delta` to `engine` (which must own a graph with the base
/// configuration's shape) as one batched Transaction; no-op for an empty
/// delta.  Throws as Transaction::commit on invalid targets.
void apply_delta(AnalysisEngine& engine, const ConfigDelta& delta);

/// One archived configuration.
struct ArchiveEntry {
  Objectives objectives;
  /// Replay record against the campaign's base graph.
  ConfigDelta delta;
  /// Canonical identity of the candidate: (restart << 40) | step.  Total
  /// over a campaign; the tie-break for equal objective vectors.
  std::uint64_t key = 0;
  /// Archive insertion epoch (monotone per archive, assigned by insert).
  std::uint64_t epoch = 0;

  bool operator==(const ArchiveEntry&) const = default;
};

/// Pack the canonical entry key.
inline std::uint64_t entry_key(std::uint64_t restart, std::uint64_t step) {
  return (restart << 40) | step;
}

/// The archive.  insert()/merge() serialize on an internal mutex;
/// snapshot() is lock-free (atomic load of the published entry vector).
class ParetoArchive {
 public:
  ParetoArchive();

  /// True iff `o` would enter the archive right now: no current entry
  /// dominates it and no equal-objective entry with a smaller-or-equal key
  /// exists.  Lock-free (reads the published snapshot); the explorer uses
  /// this to skip building deltas for dominated candidates.  A subsequent
  /// insert() revalidates under the writer lock, so a stale answer here
  /// costs only a wasted delta, never a wrong archive.
  bool would_accept(const Objectives& o, std::uint64_t key) const;

  /// Insert `e` (epoch assigned here) unless an existing entry dominates
  /// it or wins its objective tie; evicts every entry it dominates or
  /// out-ties.  Returns true iff inserted.  The resulting entry *set* is
  /// independent of insertion order (canonical tie-break on `key`).
  bool insert(ArchiveEntry e);

  /// Merge every entry of `other`'s current snapshot (original keys and
  /// deltas preserved, epochs re-assigned by this archive's insert).
  void merge(const ParetoArchive& other);

  /// The published front: immutable, canonically sorted by (objectives,
  /// key).  Lock-free; the pointer stays valid after later mutations.
  std::shared_ptr<const std::vector<ArchiveEntry>> snapshot() const;

  /// Current number of archived entries (lock-free).
  std::size_t size() const;

  /// Lifetime counters (successful inserts / evicted entries / rejected
  /// candidates), for the explorer's metrics.
  std::uint64_t inserts() const { return inserts_.load(std::memory_order_relaxed); }
  std::uint64_t evictions() const { return evictions_.load(std::memory_order_relaxed); }
  std::uint64_t rejects() const { return rejects_.load(std::memory_order_relaxed); }

 private:
  mutable std::mutex mutex_;  ///< serializes writers
  /// Published front; replaced wholesale on every successful insert.
  std::atomic<std::shared_ptr<const std::vector<ArchiveEntry>>> snap_;
  std::uint64_t epoch_ = 0;
  std::atomic<std::uint64_t> inserts_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> rejects_{0};
};

}  // namespace ceta::explore
