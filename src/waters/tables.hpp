// WATERS 2015 automotive benchmark profile (Kramer, Dörr, Hamann — "Real
// World Automotive Benchmarks For Free").
//
// The paper's evaluation (§V) synthesizes tasks following that profile:
//  * periods drawn from {1, 2, 5, 10, 20, 50, 100, 200} ms with the share
//    distribution of WATERS Table III (restricted to this subset and
//    renormalized — the full table also contains 1000 ms and angle-
//    synchronous activations);
//  * per-period average ACET from WATERS Table IV;
//  * BCET = ACET · f, f uniform in the per-period best-case factor range,
//    and WCET = ACET · f, f uniform in the worst-case factor range
//    (WATERS Table V).
//
// The numeric constants below are transcribed from the WATERS'15 paper.
// Time disparity is dominated by periods (T terms in Lemmas 4–6), so
// marginal transcription differences in execution-time constants do not
// affect the shape of any reproduced result.

#pragma once

#include <span>

#include "common/time.hpp"

namespace ceta {

struct WatersPeriodProfile {
  Duration period;
  /// Share of runnables with this period, percent (Table III).
  double share_percent;
  /// Average-case execution time (Table IV).
  Duration mean_acet;
  /// Best-case factor range (Table V): BCET = ACET · U[lo, hi].
  double bcet_factor_lo;
  double bcet_factor_hi;
  /// Worst-case factor range (Table V): WCET = ACET · U[lo, hi].
  double wcet_factor_lo;
  double wcet_factor_hi;
};

/// The eight-period subset used by the paper, ordered by period.
std::span<const WatersPeriodProfile> waters_profiles();

/// Profile for an exact period; throws PreconditionError if the period is
/// not in the WATERS subset.
const WatersPeriodProfile& waters_profile_for(Duration period);

}  // namespace ceta
