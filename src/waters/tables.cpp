#include "waters/tables.hpp"

#include <array>

#include "common/error.hpp"

namespace ceta {

namespace {

// Columns: period, share% (Table III), mean ACET (Table IV),
// BCET factor range, WCET factor range (Table V).
constexpr std::array<WatersPeriodProfile, 8> kProfiles = {{
    {Duration::ms(1), 3.0, Duration::ns(5'000), 0.19, 0.92, 1.30, 29.11},
    {Duration::ms(2), 2.0, Duration::ns(4'200), 0.12, 0.89, 1.54, 19.04},
    {Duration::ms(5), 2.0, Duration::ns(11'040), 0.17, 0.94, 1.13, 18.44},
    {Duration::ms(10), 25.0, Duration::ns(10'090), 0.05, 0.99, 1.06, 30.03},
    {Duration::ms(20), 25.0, Duration::ns(8'740), 0.11, 0.98, 1.06, 15.61},
    {Duration::ms(50), 3.0, Duration::ns(17'560), 0.32, 0.95, 1.13, 7.76},
    {Duration::ms(100), 20.0, Duration::ns(10'530), 0.09, 0.99, 1.02, 8.88},
    {Duration::ms(200), 1.0, Duration::ns(2'560), 0.45, 0.98, 1.03, 4.90},
}};

}  // namespace

std::span<const WatersPeriodProfile> waters_profiles() {
  return {kProfiles.data(), kProfiles.size()};
}

const WatersPeriodProfile& waters_profile_for(Duration period) {
  for (const WatersPeriodProfile& p : kProfiles) {
    if (p.period == period) return p;
  }
  throw PreconditionError("waters_profile_for: period " + to_string(period) +
                          " is not in the WATERS subset");
}

}  // namespace ceta
