// Workload synthesis following the paper's evaluation setup (§V).
//
// Given a topology (e.g. from gnm_random_dag or merge_chains_at_sink),
// `assign_waters_parameters` draws WATERS-profile periods for every task
// and execution times for every non-source task, maps non-source tasks to
// ECUs, assigns rate-monotonic priorities, and zeroes offsets (offsets are
// randomized per simulation run with randomize_offsets).

#pragma once

#include "common/rng.hpp"
#include "graph/task_graph.hpp"
#include "waters/tables.hpp"

namespace ceta {

/// Parameters of one WATERS-sampled task.
struct WatersTaskParams {
  Duration period;
  Duration bcet;
  Duration wcet;
};

/// Draw one task: period by Table III shares, BCET/WCET by Tables IV–V.
WatersTaskParams sample_waters_task(Rng& rng);

struct WatersAssignOptions {
  /// Number of ECUs non-source tasks are spread over, uniformly at random.
  int num_ecus = 4;
};

/// Parameterize an existing topology in place.  Source tasks get WATERS
/// periods but zero execution time (external stimuli, §II-A).  After this
/// call the graph passes TaskGraph::validate().
void assign_waters_parameters(TaskGraph& g, const WatersAssignOptions& opt,
                              Rng& rng);

}  // namespace ceta
