#include "waters/generator.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "sched/priority.hpp"

namespace ceta {

WatersTaskParams sample_waters_task(Rng& rng) {
  const auto profiles = waters_profiles();
  std::vector<double> weights;
  weights.reserve(profiles.size());
  for (const WatersPeriodProfile& p : profiles) {
    weights.push_back(p.share_percent);
  }
  const WatersPeriodProfile& p = profiles[rng.weighted_index(weights)];

  const double acet_ns = static_cast<double>(p.mean_acet.count());
  const double f_bc = rng.uniform_real(p.bcet_factor_lo, p.bcet_factor_hi);
  const double f_wc = rng.uniform_real(p.wcet_factor_lo, p.wcet_factor_hi);
  WatersTaskParams out;
  out.period = p.period;
  out.bcet = Duration::ns(static_cast<std::int64_t>(std::llround(acet_ns * f_bc)));
  out.wcet = Duration::ns(static_cast<std::int64_t>(std::llround(acet_ns * f_wc)));
  CETA_ASSERT(out.bcet <= out.wcet,
              "sample_waters_task: factor ranges must keep BCET <= WCET");
  return out;
}

void assign_waters_parameters(TaskGraph& g, const WatersAssignOptions& opt,
                              Rng& rng) {
  CETA_EXPECTS(opt.num_ecus >= 1,
               "assign_waters_parameters: need at least one ECU");
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    Task& t = g.task(id);
    const WatersTaskParams params = sample_waters_task(rng);
    t.period = params.period;
    t.offset = Duration::zero();
    if (g.is_source(id)) {
      t.bcet = Duration::zero();
      t.wcet = Duration::zero();
      t.ecu = kNoEcu;
    } else {
      t.bcet = params.bcet;
      t.wcet = params.wcet;
      t.ecu = static_cast<EcuId>(rng.uniform_int(0, opt.num_ecus - 1));
    }
  }
  assign_priorities_rate_monotonic(g);
  g.validate();
}

}  // namespace ceta
