#include "experiments/fig6cd.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/stats.hpp"
#include "disparity/buffer_opt.hpp"
#include "disparity/forkjoin.hpp"
#include "engine/analysis_engine.hpp"
#include "experiments/table.hpp"
#include "graph/generator.hpp"
#include "graph/paths.hpp"
#include "sched/priority.hpp"
#include "sim/engine.hpp"
#include "waters/generator.hpp"

namespace ceta {

namespace {

struct InstanceRun {
  double sdiff_ms = 0.0;
  double sdiff_b_ms = 0.0;
  double sim_ms = 0.0;
  double sim_b_ms = 0.0;
  int buffer_size = 1;
};

/// Adversarial offsets for one chain pair: the `stale` chain gets all-zero
/// offsets (every consumer is released together with its producer and
/// reads the *previous* token — "just-miss", ~one period of staleness per
/// hop), while the `fresh` chain staggers each task right after its
/// predecessor's worst-case finish ("just-catch", minimal staleness).
/// This approximates the scenario Theorems 1-3 bound (WCBT on one chain
/// vs BCBT on the other); any offset assignment is a valid lower-bound
/// probe.
void set_stress_offsets(TaskGraph& g, const Path& stale, const Path& fresh,
                        const ResponseTimeMap& rtm) {
  for (TaskId id : stale) g.task(id).offset = Duration::zero();
  // Delay the stale source a hair past its consumer's release so the
  // first hop also just-misses (one extra source period of staleness).
  g.task(stale.front()).offset = Duration::us(1);
  Duration cursor = Duration::zero();
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    const TaskId id = fresh[i];
    Task& t = g.task(id);
    t.offset = Duration::ns(
        floor_mod(cursor.count(), t.period.count()));
    cursor += rtm[id] + Duration::us(1);
  }
}

Duration max_disparity_over_offsets(TaskGraph& g, TaskId sink, Duration warmup,
                                    Duration window, std::size_t runs,
                                    Rng& rng, const Path& lambda,
                                    const Path& nu,
                                    const ResponseTimeMap& rtm) {
  Duration best = Duration::zero();
  auto run_once = [&](std::uint64_t seed) {
    SimOptions sopt;
    sopt.warmup = warmup;
    sopt.duration = warmup + window;
    sopt.seed = seed;
    sopt.exec_model = ExecTimeModel::kUniform;
    const SimResult res = Simulator(g, sopt).run();
    best = std::max(best, res.max_disparity[sink]);
  };
  // Random offset draws (the paper's procedure) ...
  for (std::size_t r = 0; r < runs; ++r) {
    Rng offset_rng = rng.split();
    randomize_offsets(g, offset_rng);
    run_once(offset_rng.seed());
  }
  // ... plus the two engineered worst-case-seeking patterns.
  set_stress_offsets(g, lambda, nu, rtm);
  run_once(rng.split().seed());
  set_stress_offsets(g, nu, lambda, rtm);
  run_once(rng.split().seed());
  return best;
}

InstanceRun run_one_instance(std::size_t len, const Fig6cdConfig& cfg,
                             Rng& rng, std::size_t& capacity_skips) {
  for (int attempt = 0; attempt < cfg.max_retries; ++attempt) {
    try {
    TaskGraph g = merge_chains_at_sink(len, len);
    WatersAssignOptions wopt;
    wopt.num_ecus = cfg.num_ecus;
    assign_waters_parameters(g, wopt, rng);

    // The engine shares one RTA + chain-bound cache across the S-diff
    // bound, the buffer design and the warm-up estimate below.
    const AnalysisEngine engine(g);
    if (!engine.schedulable()) continue;
    const ResponseTimeMap& rtm = engine.response_times();

    const TaskId sink = g.sinks().front();
    const std::vector<Path>& chains = engine.chains(sink);
    CETA_ASSERT(chains.size() == 2,
                "run_fig6cd: merged graph must have exactly two chains");
    const Path& lambda = chains[0];
    const Path& nu = chains[1];

    const ForkJoinBound fj = sdiff_pair_bound(g, lambda, nu, rtm);
    const BufferDesign design = engine.optimize_buffer_pair(lambda, nu);

    // Warm-up long enough that every backward chain (and the FIFO fill of
    // the buffered variant) has stabilized before measurement starts.
    const Duration wl = engine.chain_bounds(lambda).wcbt;
    const Duration wn = engine.chain_bounds(nu).wcbt;
    const Duration base_warmup =
        std::max(wl, wn) + Duration::ms(100);

    Duration sim;
    {
      TaskGraph base = g;
      sim = max_disparity_over_offsets(base, sink, base_warmup,
                                       cfg.sim_measure_window,
                                       cfg.offsets_per_instance, rng, lambda,
                                       nu, rtm);
    }
    Duration sim_b;
    {
      TaskGraph buffered = g;
      apply_buffer_design(buffered, design);
      const Duration fill =
          g.task(design.from).period * design.buffer_size;
      sim_b = max_disparity_over_offsets(
          buffered, sink, base_warmup + fill, cfg.sim_measure_window,
          cfg.offsets_per_instance, rng, lambda, nu, rtm);
    }

    InstanceRun out;
    out.sdiff_ms = fj.bound.as_ms();
    out.sdiff_b_ms = design.optimized_bound.as_ms();
    out.sim_ms = sim.as_ms();
    out.sim_b_ms = sim_b.as_ms();
    out.buffer_size = design.buffer_size;
    return out;
    } catch (const CapacityError&) {
      // Pathological draw (period lcm overflow, path-cap, simulator job
      // cap): skip-and-count, then retry with fresh randomness.
      ++capacity_skips;
    }
  }
  throw Error("run_fig6cd: no admissible instance after retries (len=" +
              std::to_string(len) + ")");
}

}  // namespace

std::vector<Fig6cdPoint> run_fig6cd(const Fig6cdConfig& cfg,
                                    const ProgressFn2& progress) {
  CETA_EXPECTS(!cfg.chain_lengths.empty(), "run_fig6cd: no chain lengths");
  CETA_EXPECTS(cfg.instances_per_point >= 1 && cfg.offsets_per_instance >= 1,
               "run_fig6cd: need at least one instance and one offset run");
  Rng rng(cfg.seed);
  std::vector<Fig6cdPoint> points;
  for (std::size_t len : cfg.chain_lengths) {
    OnlineStats sdiff, sdiff_b, sim, sim_b, ratio, ratio_b, bufsz;
    std::size_t capacity_skips = 0;
    for (std::size_t i = 0; i < cfg.instances_per_point; ++i) {
      const InstanceRun r = run_one_instance(len, cfg, rng, capacity_skips);
      sdiff.add(r.sdiff_ms);
      sdiff_b.add(r.sdiff_b_ms);
      sim.add(r.sim_ms);
      sim_b.add(r.sim_b_ms);
      bufsz.add(static_cast<double>(r.buffer_size));
      if (r.sim_ms > 0.0) ratio.add((r.sdiff_ms - r.sim_ms) / r.sim_ms);
      if (r.sim_b_ms > 0.0) {
        ratio_b.add((r.sdiff_b_ms - r.sim_b_ms) / r.sim_b_ms);
      }
    }
    Fig6cdPoint p;
    p.chain_length = len;
    p.instances = cfg.instances_per_point;
    p.sdiff_ms = sdiff.mean();
    p.sdiff_b_ms = sdiff_b.mean();
    p.sim_ms = sim.mean();
    p.sim_b_ms = sim_b.mean();
    p.sdiff_ratio = ratio.empty() ? 0.0 : ratio.mean();
    p.sdiff_b_ratio = ratio_b.empty() ? 0.0 : ratio_b.mean();
    p.buffer_size = bufsz.mean();
    p.capacity_skips = capacity_skips;
    points.push_back(p);
    if (progress) {
      progress("len=" + std::to_string(len) + " done: S-diff=" +
               fmt_double(p.sdiff_ms) + "ms S-diff-B=" +
               fmt_double(p.sdiff_b_ms) + "ms Sim=" + fmt_double(p.sim_ms) +
               "ms Sim-B=" + fmt_double(p.sim_b_ms) + "ms");
    }
  }
  return points;
}

}  // namespace ceta
