// Fig. 6(c)/(d) extension: multi-axis design-space fronts.
//
// Fig. 6(c)/(d) (fig6cd.hpp) evaluates the paper's single-axis design —
// Algorithm 1 buffer sizing on the worst chain pair — on merged two-chain
// WATERS instances.  This experiment puts the parallel explorer
// (explore/explorer.hpp) next to that baseline on the same instances: per
// chain-length point it computes
//
//   * the single-axis memory/disparity curve (disparity/pareto.hpp:
//     buffer_pareto on the worst pair, priorities and offsets fixed), and
//   * the explorer's three-objective Pareto front co-optimizing
//     priorities, offsets and *all* channel depths,
//
// and reports the baseline's best bound against the explorer's best
// disparity both unconstrained and at the baseline's own memory budget —
// whether search over the joint space beats the closed-form single-channel
// design at equal memory.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace ceta {

struct ExploreFrontConfig {
  std::vector<std::size_t> chain_lengths = {5, 10, 15};
  int num_ecus = 4;
  /// WATERS parameterization seed base (scanned forward per point until
  /// the instance is schedulable).
  std::uint64_t seed = 20230402;
  /// Campaign seed / shape handed to explore().
  std::uint64_t explore_seed = 1;
  std::size_t moves_per_restart = 256;
  std::size_t restarts = 4;
  std::size_t num_threads = 0;
  int max_retries = 64;
};

struct ExploreFrontPoint {
  std::size_t chain_length = 0;
  std::uint64_t waters_seed = 0;
  /// Audsley-seeded starting configuration's objectives.
  Duration start_disparity;
  std::int64_t start_memory = 0;
  /// Single-axis baseline: best (last) bound of the Algorithm 1 sweep and
  /// the total memory at that design point.
  Duration baseline_best;
  std::int64_t baseline_memory = 0;
  std::size_t baseline_points = 0;
  /// Explorer front: best disparity overall, and best among entries whose
  /// memory stays within the baseline design's budget.
  Duration explore_best;
  std::int64_t explore_best_memory = 0;
  Duration explore_best_at_budget;
  std::size_t front_size = 0;
};

using ExploreFrontProgress = std::function<void(const std::string&)>;

/// Run the sweep.  Deterministic in (seed, explore_seed); num_threads
/// never changes the result (the explorer's determinism contract).
std::vector<ExploreFrontPoint> run_explore_front(
    const ExploreFrontConfig& cfg, const ExploreFrontProgress& progress = {});

}  // namespace ceta
