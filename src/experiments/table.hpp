// Console-table and CSV emission for the benchmark harnesses.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ceta {

/// Right-aligned fixed-width console table.
class ConsoleTable {
 public:
  explicit ConsoleTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Render with a header separator; columns sized to content.
  void print(std::ostream& os) const;

  /// Comma-separated rendering (headers first).
  std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision float formatting helpers.
std::string fmt_double(double v, int precision = 2);
std::string fmt_percent(double ratio, int precision = 1);

/// Write `csv` to `path`; throws ceta::Error on I/O failure.
void write_file(const std::string& path, const std::string& contents);

}  // namespace ceta
