// Reproduction harness for Fig. 6(a)/(b): P-diff vs S-diff vs Sim on
// random single-sink cause-effect graphs with WATERS workloads.
//
// Per x-axis point (number of tasks): generate `graphs_per_point` random
// graphs; for each, bound the sink's worst-case time disparity with
// Theorem 1 (P-diff) and Theorem 2 (S-diff) and measure the maximum
// disparity over `offsets_per_graph` simulations with fresh random release
// offsets (Sim — an unsafe lower bound).  Reported values are means over
// graphs, as in the paper; ratios are per-graph (bound − sim)/sim averaged
// over graphs with sim > 0.

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/time.hpp"

namespace ceta {

/// The paper does not specify the density or exact single-sink procedure
/// of its random graphs; the size of the P-diff/S-diff gap depends on how
/// much fork-join structure the dominating chain pairs share.  kGnm is the
/// literal reading (dense_gnm_random_graph + single-sink repair); kFunnel
/// is the Fig. 1-shaped topology (parallel front funnelling into a shared
/// tail pipeline) where every pair shares a suffix — the configuration the
/// paper's S-diff improvement targets.
enum class Fig6Topology { kGnm, kFunnel };

struct Fig6abConfig {
  Fig6Topology topology = Fig6Topology::kGnm;
  std::vector<std::size_t> task_counts = {5, 10, 15, 20, 25, 30, 35};
  std::size_t graphs_per_point = 10;
  std::size_t offsets_per_graph = 10;
  /// Simulated horizon per offset assignment (the paper used 10 minutes;
  /// Sim is a lower bound either way — see EXPERIMENTS.md).
  Duration sim_duration = Duration::s(2);
  int num_ecus = 4;
  std::uint64_t seed = 20230401;
  std::size_t path_cap = 20'000;
  /// Give up after this many regeneration attempts per graph (path-cap
  /// overflows, unschedulable draws, single-source sinks).
  int max_retries = 64;
};

struct Fig6abPoint {
  std::size_t num_tasks = 0;
  std::size_t graphs = 0;
  /// Mean over graphs, milliseconds.
  double pdiff_ms = 0.0;
  double sdiff_ms = 0.0;
  double sim_ms = 0.0;
  /// Mean over graphs of (bound − sim) / sim, for graphs with sim > 0.
  double pdiff_ratio = 0.0;
  double sdiff_ratio = 0.0;
  /// Draws discarded because an analysis hit a capacity limit (period lcm
  /// overflow, path-cap, simulator job cap); skipped-and-counted, never
  /// fatal.
  std::size_t capacity_skips = 0;
};

using ProgressFn = std::function<void(const std::string&)>;

std::vector<Fig6abPoint> run_fig6ab(const Fig6abConfig& cfg,
                                    const ProgressFn& progress = {});

}  // namespace ceta
