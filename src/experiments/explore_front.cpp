#include "experiments/explore_front.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "disparity/analyzer.hpp"
#include "disparity/pareto.hpp"
#include "engine/analysis_engine.hpp"
#include "engine/incremental.hpp"
#include "explore/explorer.hpp"
#include "graph/generator.hpp"
#include "waters/generator.hpp"

namespace ceta {

namespace {

void report(const ExploreFrontProgress& progress, const std::string& msg) {
  if (progress) progress(msg);
}

}  // namespace

std::vector<ExploreFrontPoint> run_explore_front(
    const ExploreFrontConfig& cfg, const ExploreFrontProgress& progress) {
  std::vector<ExploreFrontPoint> points;
  for (const std::size_t len : cfg.chain_lengths) {
    // First schedulable merged two-chain WATERS instance at this length.
    TaskGraph g;
    std::uint64_t waters_seed = cfg.seed;
    bool found = false;
    for (int retry = 0; retry < cfg.max_retries; ++retry, ++waters_seed) {
      g = merge_chains_at_sink(len, len);
      Rng rng(waters_seed);
      WatersAssignOptions wopt;
      wopt.num_ecus = cfg.num_ecus;
      assign_waters_parameters(g, wopt, rng);
      if (AnalysisEngine probe(g); probe.schedulable()) {
        found = true;
        break;
      }
    }
    if (!found) {
      report(progress, "explore_front: no schedulable instance at length " +
                           std::to_string(len) + ", skipping");
      continue;
    }
    const TaskId sink = g.sinks().front();

    AnalysisEngine engine(std::move(g));
    seed_priorities(engine);

    ExploreFrontPoint p;
    p.chain_length = len;
    p.waters_seed = waters_seed;

    // Single-axis baseline: Algorithm 1 sweep on the worst chain pair of
    // the Audsley-seeded configuration.
    DisparityOptions dopt;
    dopt.keep_pairs = KeepPairs::kWorstOnly;
    const DisparityReport rep = engine.disparity(sink, dopt);
    p.start_disparity = rep.worst_case;
    p.start_memory = static_cast<std::int64_t>(engine.graph().num_edges());
    p.baseline_best = rep.worst_case;
    p.baseline_memory = p.start_memory;
    if (!rep.pairs.empty()) {
      const Path& lambda = rep.chains[rep.pairs.front().chain_a];
      const Path& nu = rep.chains[rep.pairs.front().chain_b];
      const std::vector<ParetoPoint> curve = buffer_pareto(
          engine.graph(), lambda, nu, engine.response_times());
      p.baseline_points = curve.size();
      for (const ParetoPoint& c : curve) {
        if (c.bound < p.baseline_best) {
          p.baseline_best = c.bound;
          p.baseline_memory = p.start_memory + (c.buffer_size - 1);
        }
      }
    }

    // Explorer front over the joint space.
    explore::ExploreOptions eopt;
    eopt.seed = cfg.explore_seed;
    eopt.moves_per_restart = cfg.moves_per_restart;
    eopt.restarts = cfg.restarts;
    eopt.num_threads = cfg.num_threads;
    const explore::ExploreResult result = explore::explore(engine, sink, eopt);

    p.front_size = result.archive.size();
    p.explore_best = result.start.disparity;
    p.explore_best_memory = result.start.memory;
    p.explore_best_at_budget = result.start.disparity;
    for (const explore::ArchiveEntry& e : result.archive) {
      if (e.objectives.disparity < p.explore_best) {
        p.explore_best = e.objectives.disparity;
        p.explore_best_memory = e.objectives.memory;
      }
      if (e.objectives.memory <= p.baseline_memory &&
          e.objectives.disparity < p.explore_best_at_budget) {
        p.explore_best_at_budget = e.objectives.disparity;
      }
    }

    report(progress,
           "explore_front: length " + std::to_string(len) + " baseline " +
               std::to_string(p.baseline_best.count()) + "ns@" +
               std::to_string(p.baseline_memory) + " explorer " +
               std::to_string(p.explore_best_at_budget.count()) + "ns@<=" +
               std::to_string(p.baseline_memory) + " (front " +
               std::to_string(p.front_size) + ")");
    points.push_back(p);
  }
  return points;
}

}  // namespace ceta
