#include "experiments/table.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace ceta {

ConsoleTable::ConsoleTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  CETA_EXPECTS(!headers_.empty(), "ConsoleTable: need at least one column");
}

void ConsoleTable::add_row(std::vector<std::string> cells) {
  CETA_EXPECTS(cells.size() == headers_.size(),
               "ConsoleTable: row width mismatch");
  rows_.push_back(std::move(cells));
}

void ConsoleTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << std::setw(static_cast<int>(width[c])) << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string ConsoleTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string fmt_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_percent(double ratio, int precision) {
  return fmt_double(ratio * 100.0, precision) + "%";
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  if (!out) throw Error("write_file: cannot open '" + path + "'");
  out << contents;
  if (!out) throw Error("write_file: write to '" + path + "' failed");
}

}  // namespace ceta
