#include "experiments/fig6ab.hpp"

#include <string>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "engine/analysis_engine.hpp"
#include "experiments/table.hpp"
#include "graph/generator.hpp"
#include "sched/priority.hpp"
#include "sim/engine.hpp"
#include "waters/generator.hpp"

namespace ceta {

namespace {

struct GraphRun {
  double pdiff_ms = 0.0;
  double sdiff_ms = 0.0;
  double sim_ms = 0.0;
};

/// Build one admissible instance: random single-sink DAG + WATERS
/// parameters, schedulable, with >= 2 source chains to the sink and a
/// path count under the cap.  Retries with fresh randomness.
GraphRun run_one_graph(std::size_t n, const Fig6abConfig& cfg, Rng& rng,
                       std::size_t& capacity_skips) {
  for (int attempt = 0; attempt < cfg.max_retries; ++attempt) {
    try {
      TaskGraph g = [&] {
        if (cfg.topology == Fig6Topology::kFunnel) {
          FunnelDagOptions fopt;
          fopt.num_tasks = n;
          return funnel_random_dag(fopt, rng);
        }
        GnmDagOptions gopt;
        gopt.num_tasks = n;
        return gnm_random_dag(gopt, rng);
      }();
      WatersAssignOptions wopt;
      wopt.num_ecus = cfg.num_ecus;
      assign_waters_parameters(g, wopt, rng);

      const TaskId sink = g.sinks().front();
      if (count_source_chains(g, sink) < 2 ||
          count_source_chains(g, sink) > cfg.path_cap) {
        continue;
      }
      // One engine per instance: P-diff and S-diff share the RTA fixpoint,
      // the enumerated chain set and every memoized chain bound.
      const AnalysisEngine engine(g);
      if (!engine.schedulable()) continue;

      DisparityOptions dopt;
      dopt.path_cap = cfg.path_cap;
      dopt.method = DisparityMethod::kIndependent;
      const Duration pdiff = engine.disparity(sink, dopt).worst_case;
      dopt.method = DisparityMethod::kForkJoin;
      const Duration sdiff = engine.disparity(sink, dopt).worst_case;

      Duration sim = Duration::zero();
      for (std::size_t run = 0; run < cfg.offsets_per_graph; ++run) {
        Rng offset_rng = rng.split();
        randomize_offsets(g, offset_rng);
        SimOptions sopt;
        sopt.duration = cfg.sim_duration;
        sopt.seed = offset_rng.seed();
        sopt.exec_model = ExecTimeModel::kUniform;
        const SimResult res = Simulator(g, sopt).run();
        sim = std::max(sim, res.max_disparity[sink]);
      }

      GraphRun out;
      out.pdiff_ms = pdiff.as_ms();
      out.sdiff_ms = sdiff.as_ms();
      out.sim_ms = sim.as_ms();
      return out;
    } catch (const CapacityError&) {
      // Pathological draw (period lcm overflow, path-cap, simulator job
      // cap): skip-and-count, then retry with fresh randomness.
      ++capacity_skips;
    }
  }
  throw Error("run_fig6ab: no admissible graph after retries (n=" +
              std::to_string(n) + ")");
}

}  // namespace

std::vector<Fig6abPoint> run_fig6ab(const Fig6abConfig& cfg,
                                    const ProgressFn& progress) {
  CETA_EXPECTS(!cfg.task_counts.empty(), "run_fig6ab: no task counts");
  CETA_EXPECTS(cfg.graphs_per_point >= 1 && cfg.offsets_per_graph >= 1,
               "run_fig6ab: need at least one graph and one offset run");
  Rng rng(cfg.seed);
  std::vector<Fig6abPoint> points;
  for (std::size_t n : cfg.task_counts) {
    OnlineStats pdiff, sdiff, sim, pratio, sratio;
    std::size_t capacity_skips = 0;
    for (std::size_t gidx = 0; gidx < cfg.graphs_per_point; ++gidx) {
      const GraphRun r = run_one_graph(n, cfg, rng, capacity_skips);
      pdiff.add(r.pdiff_ms);
      sdiff.add(r.sdiff_ms);
      sim.add(r.sim_ms);
      if (r.sim_ms > 0.0) {
        pratio.add((r.pdiff_ms - r.sim_ms) / r.sim_ms);
        sratio.add((r.sdiff_ms - r.sim_ms) / r.sim_ms);
      }
    }
    Fig6abPoint p;
    p.num_tasks = n;
    p.graphs = cfg.graphs_per_point;
    p.pdiff_ms = pdiff.mean();
    p.sdiff_ms = sdiff.mean();
    p.sim_ms = sim.mean();
    p.pdiff_ratio = pratio.empty() ? 0.0 : pratio.mean();
    p.sdiff_ratio = sratio.empty() ? 0.0 : sratio.mean();
    p.capacity_skips = capacity_skips;
    points.push_back(p);
    if (progress) {
      progress("n=" + std::to_string(n) + " done: P-diff=" +
               fmt_double(p.pdiff_ms) + "ms S-diff=" +
               fmt_double(p.sdiff_ms) + "ms Sim=" + fmt_double(p.sim_ms) +
               "ms");
    }
  }
  return points;
}

}  // namespace ceta
