// Reproduction harness for Fig. 6(c)/(d): effect of the buffer-size design
// (Algorithm 1 / Theorem 3) on two chains merged at a common sink.
//
// Per x-axis point (tasks per chain): build `instances_per_point` merged
// two-chain graphs with WATERS workloads; compute
//   S-diff    — Theorem 2 bound on the base graph,
//   S-diff-B  — Theorem 3 bound with the Algorithm 1 buffer,
//   Sim       — measured max disparity on the base graph,
//   Sim-B     — measured max disparity with the buffer applied
// (simulation maxed over `offsets_per_instance` random-offset runs; the
// buffered runs discard a warm-up prefix long enough for the FIFO to fill,
// since Lemma 6 holds "in the long term").

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace ceta {

struct Fig6cdConfig {
  std::vector<std::size_t> chain_lengths = {5, 10, 15, 20, 25, 30};
  std::size_t instances_per_point = 10;
  std::size_t offsets_per_instance = 10;
  /// Simulated horizon of the measured (post-warmup) window.
  Duration sim_measure_window = Duration::s(2);
  int num_ecus = 4;
  std::uint64_t seed = 20230402;
  int max_retries = 64;
};

struct Fig6cdPoint {
  std::size_t chain_length = 0;
  std::size_t instances = 0;
  /// Means over instances, milliseconds.
  double sdiff_ms = 0.0;
  double sdiff_b_ms = 0.0;
  double sim_ms = 0.0;
  double sim_b_ms = 0.0;
  /// Mean of (S-diff-B − Sim-B)/Sim-B over instances with Sim-B > 0.
  double sdiff_b_ratio = 0.0;
  /// Mean of (S-diff − Sim)/Sim over instances with Sim > 0.
  double sdiff_ratio = 0.0;
  /// Mean designed buffer size (diagnostic).
  double buffer_size = 0.0;
  /// Draws discarded because an analysis hit a capacity limit; counted,
  /// never fatal.
  std::size_t capacity_skips = 0;
};

using ProgressFn2 = std::function<void(const std::string&)>;

std::vector<Fig6cdPoint> run_fig6cd(const Fig6cdConfig& cfg,
                                    const ProgressFn2& progress = {});

}  // namespace ceta
