#include "service/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ceta::service {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

}  // namespace

Client Client::connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_UNIX)");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    throw Error("unix socket path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw_errno("connect(" + path + ")");
  }
  return Client(fd);
}

Client Client::connect_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw_errno("connect(127.0.0.1:" + std::to_string(port) + ")");
  }
  return Client(fd);
}

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      decoder_(std::move(other.decoder_)),
      next_id_(other.next_id_),
      pushes_(std::move(other.pushes_)) {
  other.fd_ = -1;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::send_payload(std::string_view payload) {
  CETA_EXPECTS(fd_ >= 0, "Client: connection closed");
  const std::string frame = encode_frame(payload);
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::write(fd_, frame.data() + off, frame.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    throw_errno("Client: write failed");
  }
}

std::optional<std::string> Client::read_frame(int timeout_ms) {
  CETA_EXPECTS(fd_ >= 0, "Client: connection closed");
  for (;;) {
    if (auto frame = decoder_.next()) {
      if (frame->oversized) {
        throw Error("Client: server sent an oversized frame (" +
                    std::to_string(frame->declared_size) + " bytes)");
      }
      return std::move(frame->payload);
    }
    if (timeout_ms >= 0) {
      pollfd pfd{fd_, POLLIN, 0};
      const int rc = ::poll(&pfd, 1, timeout_ms);
      if (rc == 0) return std::nullopt;
      if (rc < 0) {
        if (errno == EINTR) continue;
        throw_errno("Client: poll failed");
      }
    }
    char buf[65536];
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      decoder_.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) throw Error("Client: connection closed by server");
    if (errno == EINTR) continue;
    throw_errno("Client: read failed");
  }
}

std::uint64_t Client::send(RequestBuilder& req) {
  const std::uint64_t id = next_id_++;
  send_payload(req.build(id));
  return id;
}

JsonValue Client::call(RequestBuilder& req) { return wait_reply(send(req)); }

JsonValue Client::wait_reply(std::uint64_t id) {
  for (;;) {
    const std::optional<std::string> payload = read_frame(-1);
    CETA_ASSERT(payload.has_value(), "blocking read_frame returned nullopt");
    JsonValue doc = parse_json(*payload);
    if (doc.has("push")) {
      pushes_.push_back(std::move(doc));
      continue;
    }
    const JsonValue* rid = doc.find("id");
    if (rid == nullptr || !rid->is_number() ||
        static_cast<std::uint64_t>(rid->number) != id) {
      // A reply to an earlier fire-and-forget send; drop it.
      continue;
    }
    const JsonValue& ok = doc.at("ok");
    if (ok.is_bool() && ok.boolean) return doc.at("result");
    const JsonValue& err = doc.at("error");
    throw ServiceError(err.at("code").string, err.at("message").string);
  }
}

std::optional<JsonValue> Client::poll_push() {
  // Slurp anything already buffered on the socket without blocking.
  while (auto payload = read_frame(0)) {
    JsonValue doc = parse_json(*payload);
    if (doc.has("push")) pushes_.push_back(std::move(doc));
    // Non-push frames here are replies to abandoned ids; drop them.
  }
  if (pushes_.empty()) return std::nullopt;
  JsonValue p = std::move(pushes_.front());
  pushes_.pop_front();
  return p;
}

std::optional<JsonValue> Client::wait_push(int timeout_ms) {
  if (auto p = poll_push()) return p;
  for (;;) {
    const std::optional<std::string> payload = read_frame(timeout_ms);
    if (!payload.has_value()) return std::nullopt;  // timed out
    JsonValue doc = parse_json(*payload);
    if (doc.has("push")) return doc;
  }
}

}  // namespace ceta::service
