// ceta_client — a small blocking client for the cetad wire protocol.
//
// One Client is one connection.  It frames and sends requests, correlates
// replies by id, and queues pushes (subscription updates) arriving in
// between for the caller to drain:
//
//   Client c = Client::connect_tcp(port);
//   JsonValue r = c.call(RequestBuilder("create_session")
//                            .str("name", "s0").str("graph", text));
//   ...
//   c.call(RequestBuilder("subscribe").str("session", "s0").num("sink", 3));
//   ...                                  // someone mutates the session
//   std::optional<JsonValue> push = c.wait_push(1000);
//
// call() throws ServiceError (carrying the server's code + message) on an
// error reply, and Error on transport failure.  Not thread-safe: one
// Client per thread, like a database cursor.

#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

#include "common/error.hpp"
#include "obs/json_writer.hpp"
#include "service/framing.hpp"
#include "service/json.hpp"

namespace ceta::service {

/// An error reply from the server, surfaced as an exception.
class ServiceError : public Error {
 public:
  ServiceError(std::string code, const std::string& message)
      : Error("[" + code + "] " + message), code_(std::move(code)) {}
  const std::string& code() const { return code_; }

 private:
  std::string code_;
};

/// Fluent request body builder (the client stamps the id on send).
class RequestBuilder {
 public:
  explicit RequestBuilder(std::string_view op) { w_.begin_object(); w_.member("op", op); }

  RequestBuilder& str(std::string_view key, std::string_view v) {
    w_.member(key, v);
    return *this;
  }
  RequestBuilder& num(std::string_view key, std::int64_t v) {
    w_.member(key, v);
    return *this;
  }
  RequestBuilder& boolean(std::string_view key, bool v) {
    w_.member(key, v);
    return *this;
  }
  /// Splice a raw JSON value (e.g. a prebuilt options object or edits
  /// array) as member `key`.
  RequestBuilder& raw(std::string_view key, std::string_view json) {
    w_.key(key);
    w_.raw(json);
    return *this;
  }

 private:
  friend class Client;
  /// Finish with the given id; the builder is spent afterwards.
  std::string build(std::uint64_t id) {
    w_.member("id", static_cast<std::int64_t>(id));
    w_.end_object();
    w_.done();
    return os_.str();
  }

  std::ostringstream os_;
  obs::JsonWriter w_{os_};
};

class Client {
 public:
  /// Connect to a Unix-domain socket.
  static Client connect_unix(const std::string& path);
  /// Connect to 127.0.0.1:port.
  static Client connect_tcp(int port);

  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&&) = delete;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send the request and block for its reply.  Returns the "result"
  /// object of an ok reply; throws ServiceError on an error reply.
  /// Pushes arriving before the reply are queued for poll_push().
  /// (A chained `RequestBuilder("op").str(...)` expression is an lvalue —
  /// the fluent members return RequestBuilder& — so the lvalue overload
  /// is the one fluent call sites actually hit.)
  JsonValue call(RequestBuilder& req);
  JsonValue call(RequestBuilder&& req) { return call(req); }

  /// Fire-and-forget send (the reply will be consumed by a later wait);
  /// returns the request id.
  std::uint64_t send(RequestBuilder& req);
  std::uint64_t send(RequestBuilder&& req) { return send(req); }
  /// Block for the reply to a specific previously send()-sent id.
  JsonValue wait_reply(std::uint64_t id);

  /// Pop a queued push, if any (non-blocking).
  std::optional<JsonValue> poll_push();
  /// Block up to timeout_ms for a push (<0 = forever).
  std::optional<JsonValue> wait_push(int timeout_ms);

  /// Close the connection early (dtor does this too).
  void close();

 private:
  explicit Client(int fd) : fd_(fd) {}

  void send_payload(std::string_view payload);
  /// Read one frame (blocking, up to timeout; -1 = forever).  nullopt on
  /// timeout; throws Error on EOF/transport failure.
  std::optional<std::string> read_frame(int timeout_ms);

  int fd_ = -1;
  FrameDecoder decoder_;
  std::uint64_t next_id_ = 1;
  std::deque<JsonValue> pushes_;
};

}  // namespace ceta::service
