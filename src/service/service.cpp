#include "service/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "graph/serialize.hpp"
#include "obs/json_writer.hpp"

namespace ceta::service {

namespace {

// --- reply builders ---------------------------------------------------------

/// Requests without a parseable id echo null so the client can still
/// correlate the failure with "the one request that had no id".
struct RequestId {
  bool present = false;
  std::int64_t value = 0;
};

void write_id(obs::JsonWriter& w, const RequestId& id) {
  w.key("id");
  if (id.present) {
    w.value(id.value);
  } else {
    w.null();
  }
}

std::string error_reply(const RequestId& id, std::string_view code,
                        std::string_view message) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  write_id(w, id);
  w.member("ok", false);
  w.key("error").begin_object();
  w.member("code", code);
  w.member("message", message);
  w.end_object();
  w.end_object();
  w.done();
  return os.str();
}

/// Build `{"id":..,"ok":true,"result":{ <body> }}`.
template <typename Body>
std::string ok_reply(const RequestId& id, Body&& body) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  write_id(w, id);
  w.member("ok", true);
  w.key("result").begin_object();
  body(w);
  w.end_object();
  w.end_object();
  w.done();
  return os.str();
}

// --- request decoding -------------------------------------------------------

std::int64_t to_int64(const JsonValue& v, const char* what) {
  if (!v.is_number()) {
    throw ProtocolError(std::string(what) + " must be a number");
  }
  const double d = v.number;
  if (!std::isfinite(d) || d != std::floor(d) ||
      d < -9.2233720368547758e18 || d > 9.2233720368547758e18) {
    throw ProtocolError(std::string(what) + " out of integer range");
  }
  return static_cast<std::int64_t>(d);
}

std::size_t to_size(const JsonValue& v, const char* what) {
  const std::int64_t x = to_int64(v, what);
  if (x < 0) throw ProtocolError(std::string(what) + " must be >= 0");
  return static_cast<std::size_t>(x);
}

Duration to_duration(const JsonValue& v, const char* what) {
  return Duration::ns(to_int64(v, what));
}

const std::string& to_string_member(const JsonValue& v, const char* what) {
  if (!v.is_string()) {
    throw ProtocolError(std::string(what) + " must be a string");
  }
  return v.string;
}

/// Resolve a task reference — numeric id or task name — against a graph.
TaskId resolve_task(const TaskGraph& g, const JsonValue& v, const char* what) {
  if (v.is_number()) {
    const std::int64_t id = to_int64(v, what);
    if (id < 0 || static_cast<std::size_t>(id) >= g.num_tasks()) {
      throw PreconditionError(std::string(what) + ": no task with id " +
                              std::to_string(id));
    }
    return static_cast<TaskId>(id);
  }
  if (v.is_string()) {
    for (TaskId t = 0; t < g.num_tasks(); ++t) {
      if (g.task(t).name == v.string) return t;
    }
    throw PreconditionError(std::string(what) + ": no task named '" +
                            v.string + "'");
  }
  throw ProtocolError(std::string(what) +
                      " must be a task id (number) or name (string)");
}

// --- enum (de)serialization -------------------------------------------------

DisparityMethod parse_method(const std::string& s) {
  if (s == "independent") return DisparityMethod::kIndependent;
  if (s == "fork_join") return DisparityMethod::kForkJoin;
  throw ProtocolError("unknown method '" + s +
                      "' (want independent | fork_join)");
}

HopBoundMethod parse_hop_method(const std::string& s) {
  if (s == "nonpreemptive") return HopBoundMethod::kNonPreemptive;
  if (s == "scheduling_agnostic") return HopBoundMethod::kSchedulingAgnostic;
  throw ProtocolError("unknown hop_method '" + s +
                      "' (want nonpreemptive | scheduling_agnostic)");
}

SchedPolicy parse_policy(const std::string& s) {
  if (s == "nonpreemptive") return SchedPolicy::kNonPreemptive;
  if (s == "preemptive") return SchedPolicy::kPreemptive;
  if (s == "edf") return SchedPolicy::kEdf;
  throw ProtocolError("unknown policy '" + s +
                      "' (want nonpreemptive | preemptive | edf)");
}

JointTruncation parse_truncation(const std::string& s) {
  if (s == "auto") return JointTruncation::kAuto;
  if (s == "always") return JointTruncation::kAlways;
  if (s == "never") return JointTruncation::kNever;
  throw ProtocolError("unknown truncation '" + s +
                      "' (want auto | always | never)");
}

KeepPairs parse_keep_pairs(const std::string& s) {
  if (s == "all") return KeepPairs::kAll;
  if (s == "worst_only") return KeepPairs::kWorstOnly;
  if (s == "top_k") return KeepPairs::kTopK;
  throw ProtocolError("unknown keep_pairs '" + s +
                      "' (want all | worst_only | top_k)");
}

DisparityBackend parse_backend(const std::string& s) {
  if (s == "auto") return DisparityBackend::kAuto;
  if (s == "enumerate") return DisparityBackend::kEnumerate;
  if (s == "dag_dp") return DisparityBackend::kDagDp;
  throw ProtocolError("unknown backend '" + s +
                      "' (want auto | enumerate | dag_dp)");
}

std::string_view backend_name(DisparityBackend b) {
  switch (b) {
    case DisparityBackend::kEnumerate:
      return "enumerate";
    case DisparityBackend::kDagDp:
      return "dag_dp";
    case DisparityBackend::kAuto:
      break;
  }
  return "auto";  // unreachable for served reports
}

DisparityOptions parse_disparity_options(const JsonValue* opts) {
  DisparityOptions o;
  if (opts == nullptr) return o;
  if (!opts->is_object()) throw ProtocolError("options must be an object");
  if (const JsonValue* v = opts->find("method")) {
    o.method = parse_method(to_string_member(*v, "options.method"));
  }
  if (const JsonValue* v = opts->find("hop_method")) {
    o.hop_method = parse_hop_method(to_string_member(*v, "options.hop_method"));
  }
  if (const JsonValue* v = opts->find("path_cap")) {
    o.path_cap = to_size(*v, "options.path_cap");
  }
  if (const JsonValue* v = opts->find("truncation")) {
    o.truncation = parse_truncation(to_string_member(*v, "options.truncation"));
  }
  if (const JsonValue* v = opts->find("keep_pairs")) {
    o.keep_pairs = parse_keep_pairs(to_string_member(*v, "options.keep_pairs"));
  }
  if (const JsonValue* v = opts->find("top_k")) {
    o.top_k = to_size(*v, "options.top_k");
  }
  if (const JsonValue* v = opts->find("backend")) {
    o.backend = parse_backend(to_string_member(*v, "options.backend"));
  }
  return o;
}

/// One push payload for a dirtied, subscribed sink.
std::string push_payload(const std::string& session, TaskId sink,
                         std::uint64_t serial, std::uint64_t epoch,
                         const DisparityReport& report) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.member("push", "disparity");
  w.member("session", session);
  w.member("sink", static_cast<std::uint64_t>(sink));
  w.member("serial", serial);
  w.member("epoch", epoch);
  w.member("worst_case_ns", report.worst_case.count());
  w.member("exact", report.exact);
  w.end_object();
  w.done();
  return os.str();
}

}  // namespace

// Decoded request header + body.  The body keeps the whole parsed tree;
// op handlers pull their own members.
struct ServiceCore::Request {
  RequestId id;
  std::string op;
  JsonValue body;

  const JsonValue* find(std::string_view key) const { return body.find(key); }
  const JsonValue& at(std::string_view key) const { return body.at(key); }
};

ServiceCore::ServiceCore(ServiceConfig cfg)
    : cfg_(cfg), sessions_(cfg.max_sessions) {}

std::string ServiceCore::oversized_reply(std::size_t declared_size) const {
  metrics_.counter("service.errors.oversized_frame").add();
  return error_reply(RequestId{}, "oversized_frame",
                     "frame of " + std::to_string(declared_size) +
                         " bytes exceeds the " +
                         std::to_string(cfg_.max_frame_bytes) + "-byte cap");
}

void ServiceCore::disconnect(ClientId client) {
  sessions_.remove_client(client);
}

std::vector<std::string> ServiceCore::evict_idle(std::uint64_t older_than) {
  std::vector<std::string> evicted = sessions_.evict_idle(older_than);
  if (!evicted.empty()) {
    metrics_.counter("service.sessions.evicted").add(evicted.size());
  }
  return evicted;
}

Outcome ServiceCore::handle(ClientId client, std::string_view payload,
                            std::uint64_t tick) {
  const auto start = std::chrono::steady_clock::now();
  metrics_.counter("service.requests").add();

  Request req;
  Outcome out;
  try {
    req.body = parse_json(payload);
    if (!req.body.is_object()) {
      throw ProtocolError("request must be a JSON object");
    }
    if (const JsonValue* id = req.body.find("id")) {
      req.id = RequestId{true, to_int64(*id, "id")};
    }
    req.op = to_string_member(req.body.at("op"), "op");
    out = dispatch(client, req, tick);
  } catch (const ProtocolError& e) {
    metrics_.counter("service.errors.bad_request").add();
    out = Outcome{error_reply(req.id, "bad_request", e.what()), {}};
  } catch (const RollbackError& e) {
    metrics_.counter("service.errors.rollback_failed").add();
    out = Outcome{error_reply(req.id, "rollback_failed", e.what()), {}};
  } catch (const InvalidOptionsError& e) {
    metrics_.counter("service.errors.invalid_argument").add();
    out = Outcome{error_reply(req.id, "invalid_argument", e.what()), {}};
  } catch (const CapacityError& e) {
    metrics_.counter("service.errors.capacity").add();
    out = Outcome{error_reply(req.id, "capacity", e.what()), {}};
  } catch (const PreconditionError& e) {
    metrics_.counter("service.errors.invalid_argument").add();
    out = Outcome{error_reply(req.id, "invalid_argument", e.what()), {}};
  } catch (const std::exception& e) {
    // The message still travels to the client — this is where a
    // rolled-back transaction's original error text surfaces.
    metrics_.counter("service.errors.internal").add();
    out = Outcome{error_reply(req.id, "internal", e.what()), {}};
  }

  const auto elapsed = std::chrono::steady_clock::now() - start;
  metrics_.histogram("service.request_ns")
      .observe(Duration::ns(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()));
  return out;
}

Outcome ServiceCore::dispatch(ClientId client, const Request& req,
                              std::uint64_t tick) {
  metrics_.counter("service.op." + req.op).add();

  if (req.op == "ping") return op_ping(req);
  if (req.op == "create_session") return op_create_session(req);
  if (req.op == "drop_session") return op_drop_session(req);
  if (req.op == "list_sessions") return op_list_sessions(req);
  if (req.op == "metrics" && req.find("session") == nullptr) {
    return op_metrics(req);
  }

  // Every remaining op addresses one session.
  static constexpr std::string_view kSessionOps[] = {
      "graph", "disparity", "latency", "mutate",
      "subscribe", "unsubscribe", "metrics"};
  bool known = false;
  for (const std::string_view op : kSessionOps) known |= (req.op == op);
  if (!known) throw ProtocolError("unknown op '" + req.op + "'");

  const std::string& name =
      to_string_member(req.at("session"), "session");
  const std::shared_ptr<Session> session = sessions_.find(name);
  if (session == nullptr) {
    metrics_.counter("service.errors.no_such_session").add();
    return Outcome{error_reply(req.id, "no_such_session",
                               "no session named '" + name + "'"),
                   {}};
  }
  if (tick != 0) session->touch(tick);

  const InflightGuard guard(*session, cfg_.max_inflight_per_session);
  if (!guard.admitted()) {
    metrics_.counter("service.errors.busy").add();
    return Outcome{
        error_reply(req.id, "busy",
                    "session '" + name + "' has " +
                        std::to_string(session->inflight()) +
                        " requests in flight (quota " +
                        std::to_string(cfg_.max_inflight_per_session) + ")"),
        {}};
  }

  if (req.op == "graph") return op_graph(req, *session);
  if (req.op == "disparity") return op_disparity(req, *session);
  if (req.op == "latency") return op_latency(req, *session);
  if (req.op == "mutate") return op_mutate(client, req, *session);
  if (req.op == "subscribe") return op_subscribe(client, req, *session);
  if (req.op == "unsubscribe") return op_unsubscribe(client, req, *session);
  return op_metrics(req);  // per-session metrics
}

Outcome ServiceCore::op_ping(const Request& req) {
  return Outcome{ok_reply(req.id, [](obs::JsonWriter& w) {
                   w.member("pong", true);
                 }),
                 {}};
}

Outcome ServiceCore::op_create_session(const Request& req) {
  const std::string& name = to_string_member(req.at("name"), "name");
  const std::string& text = to_string_member(req.at("graph"), "graph");
  TaskGraph graph = graph_from_text(text);

  EngineOptions opt;
  opt.num_threads = cfg_.engine_threads;
  std::shared_ptr<Session> session;
  try {
    session = sessions_.create(name, std::move(graph), opt);
  } catch (const CapacityError& e) {
    metrics_.counter("service.errors.too_many_sessions").add();
    return Outcome{error_reply(req.id, "too_many_sessions", e.what()), {}};
  } catch (const PreconditionError& e) {
    metrics_.counter("service.errors.session_exists").add();
    return Outcome{error_reply(req.id, "session_exists", e.what()), {}};
  }
  metrics_.counter("service.sessions.created").add();
  const TaskGraph& g = session->engine().graph();
  return Outcome{ok_reply(req.id,
                          [&](obs::JsonWriter& w) {
                            w.member("name", name);
                            w.member("tasks",
                                     static_cast<std::uint64_t>(g.num_tasks()));
                            w.member("edges",
                                     static_cast<std::uint64_t>(g.num_edges()));
                          }),
                 {}};
}

Outcome ServiceCore::op_drop_session(const Request& req) {
  const std::string& name = to_string_member(req.at("name"), "name");
  const bool dropped = sessions_.drop(name);
  if (!dropped) {
    metrics_.counter("service.errors.no_such_session").add();
    return Outcome{error_reply(req.id, "no_such_session",
                               "no session named '" + name + "'"),
                   {}};
  }
  metrics_.counter("service.sessions.dropped").add();
  return Outcome{ok_reply(req.id, [&](obs::JsonWriter& w) {
                   w.member("dropped", name);
                 }),
                 {}};
}

Outcome ServiceCore::op_list_sessions(const Request& req) {
  const auto all = sessions_.list();
  return Outcome{
      ok_reply(req.id,
               [&](obs::JsonWriter& w) {
                 w.key("sessions").begin_array();
                 for (const auto& s : all) {
                   const TaskGraph& g = s->engine().graph();
                   w.begin_object();
                   w.member("name", s->name());
                   w.member("tasks", static_cast<std::uint64_t>(g.num_tasks()));
                   w.member("edges", static_cast<std::uint64_t>(g.num_edges()));
                   w.member("subscriptions", static_cast<std::uint64_t>(
                                                 s->subscription_count()));
                   w.member("inflight",
                            static_cast<std::uint64_t>(s->inflight()));
                   w.end_object();
                 }
                 w.end_array();
                 w.member("count", static_cast<std::uint64_t>(all.size()));
               }),
      {}};
}

Outcome ServiceCore::op_graph(const Request& req, Session& s) {
  const auto lock = s.query_lock();
  return Outcome{ok_reply(req.id,
                          [&](obs::JsonWriter& w) {
                            w.member("text", to_text(s.engine().graph()));
                          }),
                 {}};
}

Outcome ServiceCore::op_disparity(const Request& req, Session& s) {
  const DisparityOptions opt = parse_disparity_options(req.find("options"));
  const bool include_chains = [&] {
    const JsonValue* v = req.find("include_chains");
    if (v == nullptr) return false;
    if (!v->is_bool()) throw ProtocolError("include_chains must be a bool");
    return v->boolean;
  }();

  const auto lock = s.query_lock();
  const TaskGraph& g = s.engine().graph();
  const TaskId sink = resolve_task(g, req.at("sink"), "sink");
  const DisparityReport report = s.engine().disparity(sink, opt);

  const std::size_t cap = cfg_.max_reply_pairs;
  return Outcome{
      ok_reply(req.id,
               [&](obs::JsonWriter& w) {
                 w.member("sink", static_cast<std::uint64_t>(sink));
                 w.member("worst_case_ns", report.worst_case.count());
                 w.member("exact", report.exact);
                 w.member("backend", backend_name(report.backend));
                 w.member("chain_count",
                          static_cast<std::uint64_t>(report.chain_count));
                 w.member("chain_count_saturated", report.chain_count_saturated);
                 w.member("truncated", report.truncated);
                 const std::size_t npairs = std::min(cap, report.pairs.size());
                 w.key("pairs").begin_array();
                 for (std::size_t i = 0; i < npairs; ++i) {
                   const PairDisparity& p = report.pairs[i];
                   w.begin_object();
                   w.member("chain_a", static_cast<std::uint64_t>(p.chain_a));
                   w.member("chain_b", static_cast<std::uint64_t>(p.chain_b));
                   w.member("bound_ns", p.bound.count());
                   w.end_object();
                 }
                 w.end_array();
                 const std::size_t nsrc =
                     std::min(cap, report.source_pairs.size());
                 w.key("source_pairs").begin_array();
                 for (std::size_t i = 0; i < nsrc; ++i) {
                   const SourcePairDisparity& p = report.source_pairs[i];
                   w.begin_object();
                   w.member("source_a", static_cast<std::uint64_t>(p.source_a));
                   w.member("source_b", static_cast<std::uint64_t>(p.source_b));
                   w.member("bound_ns", p.bound.count());
                   w.end_object();
                 }
                 w.end_array();
                 w.member("pairs_truncated", report.pairs.size() > npairs ||
                                                 report.source_pairs.size() >
                                                     nsrc);
                 if (include_chains) {
                   const std::size_t nchains =
                       std::min(cap, report.chains.size());
                   w.key("chains").begin_array();
                   for (std::size_t i = 0; i < nchains; ++i) {
                     w.begin_array();
                     for (const TaskId t : report.chains[i]) {
                       w.value(static_cast<std::uint64_t>(t));
                     }
                     w.end_array();
                   }
                   w.end_array();
                 }
               }),
      {}};
}

Outcome ServiceCore::op_latency(const Request& req, Session& s) {
  HopBoundMethod method = HopBoundMethod::kNonPreemptive;
  if (const JsonValue* v = req.find("hop_method")) {
    method = parse_hop_method(to_string_member(*v, "hop_method"));
  }

  const auto lock = s.query_lock();
  const TaskGraph& g = s.engine().graph();
  const JsonValue& chain_json = req.at("chain");
  Path chain;
  chain.reserve(chain_json.items().size());
  for (const JsonValue& v : chain_json.items()) {
    chain.push_back(resolve_task(g, v, "chain element"));
  }
  const LatencyReport report = s.engine().latency(chain, method);
  return Outcome{
      ok_reply(req.id,
               [&](obs::JsonWriter& w) {
                 w.member("wcbt_ns", report.backward.wcbt.count());
                 w.member("bcbt_ns", report.backward.bcbt.count());
                 w.member("max_data_age_ns", report.max_data_age.count());
                 w.member("min_data_age_ns", report.min_data_age.count());
                 w.member("max_reaction_time_ns",
                          report.max_reaction_time.count());
               }),
      {}};
}

Outcome ServiceCore::op_mutate(ClientId /*client*/, const Request& req,
                               Session& s) {
  const JsonValue& edits = req.at("edits");
  if (!edits.is_array()) throw ProtocolError("edits must be an array");

  // Exclusive access for the whole commit *and* the post-commit push
  // computation: the pushed worst cases must reflect exactly this commit,
  // not a later one that slips in between.
  const auto lock = s.mutate_lock();
  AnalysisEngine& engine = s.engine();
  const TaskGraph& g = engine.graph();

  AnalysisEngine::Transaction txn(engine);
  for (const JsonValue& e : edits.items()) {
    if (!e.is_object()) throw ProtocolError("each edit must be an object");
    const std::string& kind = to_string_member(e.at("kind"), "edit.kind");
    if (kind == "set_period") {
      txn.set_period(resolve_task(g, e.at("task"), "edit.task"),
                     to_duration(e.at("period_ns"), "edit.period_ns"));
    } else if (kind == "set_wcet_range") {
      txn.set_wcet_range(resolve_task(g, e.at("task"), "edit.task"),
                         to_duration(e.at("bcet_ns"), "edit.bcet_ns"),
                         to_duration(e.at("wcet_ns"), "edit.wcet_ns"));
    } else if (kind == "set_priority") {
      txn.set_priority(
          resolve_task(g, e.at("task"), "edit.task"),
          static_cast<int>(to_int64(e.at("priority"), "edit.priority")));
    } else if (kind == "set_policy") {
      txn.set_policy(
          static_cast<EcuId>(to_int64(e.at("ecu"), "edit.ecu")),
          parse_policy(to_string_member(e.at("policy"), "edit.policy")));
    } else if (kind == "set_buffer") {
      txn.set_buffer(
          resolve_task(g, e.at("from"), "edit.from"),
          resolve_task(g, e.at("to"), "edit.to"),
          static_cast<int>(to_int64(e.at("buffer_size"), "edit.buffer_size")));
    } else if (kind == "set_offset") {
      txn.set_offset(resolve_task(g, e.at("task"), "edit.task"),
                     to_duration(e.at("offset_ns"), "edit.offset_ns"));
    } else if (kind == "add_edge") {
      ChannelSpec spec;
      if (const JsonValue* v = e.find("buffer_size")) {
        spec.buffer_size =
            static_cast<int>(to_int64(*v, "edit.buffer_size"));
      }
      txn.add_edge(resolve_task(g, e.at("from"), "edit.from"),
                   resolve_task(g, e.at("to"), "edit.to"), spec);
    } else if (kind == "remove_edge") {
      txn.remove_edge(resolve_task(g, e.at("from"), "edit.from"),
                      resolve_task(g, e.at("to"), "edit.to"));
    } else {
      throw ProtocolError("unknown edit kind '" + kind + "'");
    }
  }

  txn.commit();  // strong guarantee; errors propagate to the error mapper
  metrics_.counter("service.mutations.committed").add();

  const std::uint64_t epoch = s.last_commit_epoch();
  const std::vector<TaskId>& dirty = s.last_dirty_sinks();

  // Push to subscribers of exactly the dirtied sinks, with the worst case
  // recomputed under this commit.
  Outcome out;
  for (const TaskId sink : dirty) {
    const std::vector<ClientId> subs = s.subscribers(sink);
    if (subs.empty()) continue;
    const DisparityReport report = engine.disparity(sink);
    const std::uint64_t serial = s.next_push_serial();
    const std::string payload =
        push_payload(s.name(), sink, serial, epoch, report);
    for (const ClientId c : subs) {
      out.pushes.push_back(Push{c, payload});
    }
    metrics_.counter("service.pushes").add(subs.size());
  }

  out.reply = ok_reply(req.id, [&](obs::JsonWriter& w) {
    w.member("epoch", epoch);
    w.member("edits", static_cast<std::uint64_t>(edits.items().size()));
    w.key("dirty_sinks").begin_array();
    for (const TaskId t : dirty) w.value(static_cast<std::uint64_t>(t));
    w.end_array();
  });
  return out;
}

Outcome ServiceCore::op_subscribe(ClientId client, const Request& req,
                                  Session& s) {
  const auto lock = s.query_lock();
  const TaskGraph& g = s.engine().graph();
  const TaskId sink = resolve_task(g, req.at("sink"), "sink");
  // Compute the current value *before* registering: the reply carries the
  // baseline, and every push the client ever sees corresponds to a commit
  // after this point.
  const DisparityReport report = s.engine().disparity(sink);
  s.subscribe(sink, client);
  metrics_.counter("service.subscriptions").add();
  return Outcome{
      ok_reply(req.id,
               [&](obs::JsonWriter& w) {
                 w.member("sink", static_cast<std::uint64_t>(sink));
                 w.member("worst_case_ns", report.worst_case.count());
                 w.member("exact", report.exact);
               }),
      {}};
}

Outcome ServiceCore::op_unsubscribe(ClientId client, const Request& req,
                                    Session& s) {
  const auto lock = s.query_lock();
  const TaskId sink =
      resolve_task(s.engine().graph(), req.at("sink"), "sink");
  const bool removed = s.unsubscribe(sink, client);
  return Outcome{ok_reply(req.id,
                          [&](obs::JsonWriter& w) {
                            w.member("sink", static_cast<std::uint64_t>(sink));
                            w.member("removed", removed);
                          }),
                 {}};
}

Outcome ServiceCore::op_metrics(const Request& req) {
  obs::MetricsSnapshot snap;
  if (const JsonValue* name = req.find("session")) {
    const std::shared_ptr<Session> session =
        sessions_.find(to_string_member(*name, "session"));
    if (session == nullptr) {
      metrics_.counter("service.errors.no_such_session").add();
      return Outcome{error_reply(req.id, "no_such_session",
                                 "no session named '" + name->string + "'"),
                     {}};
    }
    snap = session->engine().metrics();
  } else {
    snap = metrics_.snapshot();
  }
  return Outcome{ok_reply(req.id,
                          [&](obs::JsonWriter& w) {
                            w.key("metrics");
                            snap.write_json(w);
                          }),
                 {}};
}

}  // namespace ceta::service
