// ServiceCore — the transport-independent heart of cetad.
//
// One ServiceCore holds the session registry and maps each decoded frame
// payload to a reply (and possibly pushes), with no knowledge of sockets:
//
//   Outcome out = core.handle(client, payload, tick);
//   // out.reply  -> frame back to `client`
//   // out.pushes -> frames to subscribed clients (possibly others)
//
// The server (service/server.hpp) feeds it from pool workers; the tests
// and the fleet bench feed it directly, which is what makes the whole
// protocol — admission control, error mapping, subscription exactness —
// unit-testable without a single socket.
//
// Wire protocol (all frames are length-prefixed JSON, service/framing.hpp):
//
//   request  {"id": 7, "op": "disparity", "session": "s", "sink": "fuse",
//             "options": {"method": "fork_join", "keep_pairs": "top_k",
//                         "top_k": 4}}
//   reply    {"id": 7, "ok": true, "result": {...}}
//   error    {"id": 7, "ok": false,
//             "error": {"code": "no_such_session", "message": "..."}}
//   push     {"push": "disparity", "session": "s", "sink": 3, "serial": 12,
//             "epoch": 4, "worst_case_ns": 1800000, "exact": true}
//
// Ops: ping, create_session, drop_session, list_sessions, graph,
// disparity, latency (data age + reaction time), mutate, subscribe,
// unsubscribe, metrics.  Tasks are referenced by name or numeric id.
//
// Error contract: every failure a client can provoke — bad JSON, unknown
// op, missing member, unknown session/task, engine precondition or
// capacity errors, quota exhaustion, oversized frames — maps to a
// structured error reply on a live connection.  The error codes:
//
//   bad_request       malformed JSON / schema violation / unknown op
//   oversized_frame   declared frame length beyond the cap
//   no_such_session   session name not registered
//   session_exists    create_session on a taken name
//   too_many_sessions session cap reached
//   busy              per-session in-flight quota exhausted
//   invalid_argument  engine rejected the request (PreconditionError,
//                     InvalidOptionsError, unknown task, bad chain)
//   capacity          engine CapacityError (path_cap exceeded, ...)
//   rollback_failed   RollbackError — state restore failed after an error
//   internal          anything else (still carries the original message)
//
// Mutations reply with the commit epoch and the exact dirty-sink set of
// the committed transaction; subscribed dirtied sinks additionally get a
// push with the freshly recomputed worst case.  The push set is exactly
// InvalidationPlan::report_tasks ∩ subscribed sinks — no spurious pushes
// for untouched sinks, no missed pushes for dirtied ones (asserted
// against fresh-engine recomputes in tests/test_service.cpp).

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "service/framing.hpp"
#include "service/json.hpp"
#include "service/session.hpp"

namespace ceta::service {

struct ServiceConfig {
  /// Session cap (create_session beyond it → "too_many_sessions").
  std::size_t max_sessions = 4096;
  /// Per-session concurrent request quota (beyond it → "busy").
  std::size_t max_inflight_per_session = 64;
  /// Frame payload cap, applied by servers to their decoders and echoed
  /// in oversized_frame diagnostics.
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Cap on pairs / source_pairs / chains serialized into one disparity
  /// reply (the report itself is computed in full; the reply notes
  /// `pairs_truncated` when the cap bit).
  std::size_t max_reply_pairs = 256;
  /// Engine thread-pool width for session engines (0 = default).  Fleet
  /// deployments set 1: parallelism comes from concurrent requests, not
  /// from fan-out inside each.
  std::size_t engine_threads = 1;
};

/// A push frame to deliver to a (possibly different) client.
struct Push {
  ClientId client = 0;
  std::string payload;
};

/// The result of handling one request frame.
struct Outcome {
  std::string reply;        ///< send back to the requesting client
  std::vector<Push> pushes; ///< deliver to subscribers
};

class ServiceCore {
 public:
  explicit ServiceCore(ServiceConfig cfg = {});

  /// Handle one decoded frame payload from `client`.  `tick` is the
  /// caller's monotone coarse clock, stamped on the touched session for
  /// idle eviction (0 = no eviction tracking).  Never throws on client
  /// input; any error becomes a structured reply.
  Outcome handle(ClientId client, std::string_view payload,
                 std::uint64_t tick = 0);

  /// The structured reply for an oversized frame (the decoder already
  /// swallowed the payload; the connection stays up).
  std::string oversized_reply(std::size_t declared_size) const;

  /// Client disconnected: drop its subscriptions everywhere.
  void disconnect(ClientId client);

  /// Evict idle sessions (see SessionRegistry::evict_idle).
  std::vector<std::string> evict_idle(std::uint64_t older_than_tick);

  const ServiceConfig& config() const { return cfg_; }
  std::size_t session_count() const { return sessions_.size(); }

  /// Service-level instruments: request counters per op, error counters,
  /// and the request-latency histogram the fleet bench snapshots.
  obs::MetricsRegistry& metrics_registry() { return metrics_; }

 private:
  struct Request;  // decoded header + body

  Outcome dispatch(ClientId client, const Request& req, std::uint64_t tick);

  Outcome op_ping(const Request& req);
  Outcome op_create_session(const Request& req);
  Outcome op_drop_session(const Request& req);
  Outcome op_list_sessions(const Request& req);
  Outcome op_graph(const Request& req, Session& s);
  Outcome op_disparity(const Request& req, Session& s);
  Outcome op_latency(const Request& req, Session& s);
  Outcome op_mutate(ClientId client, const Request& req, Session& s);
  Outcome op_subscribe(ClientId client, const Request& req, Session& s);
  Outcome op_unsubscribe(ClientId client, const Request& req, Session& s);
  Outcome op_metrics(const Request& req);

  ServiceConfig cfg_;
  SessionRegistry sessions_;
  /// mutable: const entry points (oversized_reply) still count errors.
  mutable obs::MetricsRegistry metrics_;
};

}  // namespace ceta::service
