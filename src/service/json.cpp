#include "service/json.hpp"

#include <cctype>
#include <cstdlib>

namespace ceta::service {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const auto it = object->find(std::string(key));
  return it == object->end() ? nullptr : &it->second;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) {
    throw ProtocolError("missing member '" + std::string(key) + "'");
  }
  return *v;
}

const JsonArray& JsonValue::items() const {
  if (!is_array()) throw ProtocolError("value is not an array");
  return *array;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue run() {
    const JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ProtocolError("JSON error at offset " + std::to_string(pos_) +
                        ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f':
        return parse_bool();
      case 'n':
        parse_literal("null");
        return JsonValue{};
      default:
        return parse_number();
    }
  }

  void parse_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      fail("bad literal, expected '" + std::string(lit) + "'");
    }
    pos_ += lit.size();
  }

  JsonValue parse_bool() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (peek() == 't') {
      parse_literal("true");
      v.boolean = true;
    } else {
      parse_literal("false");
      v.boolean = false;
    }
    return v;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("bad number");
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("digit required after decimal point");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("digit required in exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    // The grammar above admits exactly strtod's JSON subset; huge
    // magnitudes saturate to ±inf, which request decoding rejects with a
    // range diagnostic rather than the parser.
    v.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                           nullptr);
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + static_cast<std::size_t>(i)];
            if (!std::isxdigit(static_cast<unsigned char>(h))) {
              fail("bad hex digit in \\u escape");
            }
            code = code * 16 +
                   static_cast<unsigned>(
                       h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10);
          }
          // Protocol strings are task/session names and op words — ASCII
          // in practice.  Decode ASCII escapes; keep anything else (incl.
          // surrogate pairs) verbatim, exactly like the test-suite
          // checker, so no content is ever silently dropped.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else {
            out += "\\u";
            out += text_.substr(pos_, 4);
          }
          pos_ += 4;
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  JsonValue parse_array() {
    enter();
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    v.array = std::make_shared<JsonArray>();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      leave();
      return v;
    }
    while (true) {
      v.array->push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      leave();
      return v;
    }
  }

  JsonValue parse_object() {
    enter();
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    v.object = std::make_shared<JsonObject>();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      leave();
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      (*v.object)[std::move(key)] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      leave();
      return v;
    }
  }

  void enter() {
    if (++depth_ > kMaxJsonDepth) fail("nesting too deep");
  }
  void leave() { --depth_; }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) { return Parser(text).run(); }

}  // namespace ceta::service
