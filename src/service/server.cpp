#include "service/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "engine/thread_pool.hpp"

namespace ceta::service {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  CETA_ASSERT(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
              "fcntl(O_NONBLOCK) failed");
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

}  // namespace

struct Server::Impl {
  explicit Impl(ServerConfig cfg_in)
      : cfg(std::move(cfg_in)), core(cfg.service) {}

  struct Connection {
    explicit Connection(int fd_, ClientId id_, std::size_t max_frame)
        : fd(fd_), id(id_), decoder(max_frame) {}

    const int fd;
    const ClientId id;
    FrameDecoder decoder;

    // Decoded frames awaiting a worker; `worker_active` latches FIFO
    // handling per connection.  Guarded by `mutex`.
    std::deque<FrameDecoder::Frame> inbox;
    bool worker_active = false;

    // Outbound bytes; drained by the event loop under POLLOUT.  Guarded
    // by `mutex`.
    std::string out;
    std::size_t out_pos = 0;
    bool closed = false;  ///< loop closed the fd; drop further writes

    std::mutex mutex;
  };

  ServerConfig cfg;
  ServiceCore core;

  int listen_fd = -1;
  int wake_rd = -1;
  int wake_wr = -1;
  int bound_port = 0;

  std::thread loop_thread;
  std::atomic<bool> running{false};
  std::atomic<bool> stopping{false};

  std::unique_ptr<ThreadPool> pool;

  mutable std::mutex conn_mutex;
  std::unordered_map<ClientId, std::shared_ptr<Connection>> conns;
  ClientId next_client = 1;

  std::chrono::steady_clock::time_point epoch;

  // ---------------------------------------------------------------------

  std::uint64_t now_tick() const {
    return static_cast<std::uint64_t>(
               std::chrono::duration_cast<std::chrono::seconds>(
                   std::chrono::steady_clock::now() - epoch)
                   .count()) +
           1;  // +1 keeps tick 0 meaning "untracked"
  }

  void wake() {
    const char b = 1;
    // Best-effort: a full pipe already guarantees a pending wakeup.
    [[maybe_unused]] const ssize_t n = ::write(wake_wr, &b, 1);
  }

  void bind_and_listen() {
    if (!cfg.unix_path.empty()) {
      listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (listen_fd < 0) throw_errno("socket(AF_UNIX)");
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      if (cfg.unix_path.size() >= sizeof(addr.sun_path)) {
        throw Error("unix socket path too long: " + cfg.unix_path);
      }
      std::strncpy(addr.sun_path, cfg.unix_path.c_str(),
                   sizeof(addr.sun_path) - 1);
      ::unlink(cfg.unix_path.c_str());
      if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                 sizeof(addr)) != 0) {
        throw_errno("bind(" + cfg.unix_path + ")");
      }
    } else {
      listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (listen_fd < 0) throw_errno("socket(AF_INET)");
      const int one = 1;
      ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(static_cast<std::uint16_t>(cfg.tcp_port));
      if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                 sizeof(addr)) != 0) {
        throw_errno("bind(127.0.0.1:" + std::to_string(cfg.tcp_port) + ")");
      }
      sockaddr_in bound{};
      socklen_t len = sizeof(bound);
      ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &len);
      bound_port = ntohs(bound.sin_port);
    }
    if (::listen(listen_fd, 512) != 0) throw_errno("listen");
    set_nonblocking(listen_fd);

    int pipefd[2];
    if (::pipe(pipefd) != 0) throw_errno("pipe");
    wake_rd = pipefd[0];
    wake_wr = pipefd[1];
    set_nonblocking(wake_rd);
    set_nonblocking(wake_wr);
  }

  // --- worker side ------------------------------------------------------

  /// Append an encoded frame to `conn`'s output and wake the loop.
  void send_to(const std::shared_ptr<Connection>& conn,
               std::string_view payload) {
    {
      const std::lock_guard<std::mutex> lock(conn->mutex);
      if (conn->closed) return;
      conn->out += encode_frame(payload);
    }
    wake();
  }

  std::shared_ptr<Connection> find_conn(ClientId id) {
    const std::lock_guard<std::mutex> lock(conn_mutex);
    const auto it = conns.find(id);
    return it == conns.end() ? nullptr : it->second;
  }

  /// Drain one connection's inbox in FIFO order (at most one worker per
  /// connection at a time).
  void drain_inbox(const std::shared_ptr<Connection>& conn) {
    for (;;) {
      FrameDecoder::Frame frame;
      {
        const std::lock_guard<std::mutex> lock(conn->mutex);
        if (conn->inbox.empty() || conn->closed) {
          conn->worker_active = false;
          return;
        }
        frame = std::move(conn->inbox.front());
        conn->inbox.pop_front();
      }
      if (frame.oversized) {
        send_to(conn, core.oversized_reply(frame.declared_size));
        continue;
      }
      const Outcome out = core.handle(conn->id, frame.payload, now_tick());
      send_to(conn, out.reply);
      for (const Push& push : out.pushes) {
        if (const auto target = find_conn(push.client)) {
          send_to(target, push.payload);
        }
      }
    }
  }

  /// Called by the loop after feeding the decoder: schedule a worker if
  /// none is active for this connection.
  void kick_worker(const std::shared_ptr<Connection>& conn) {
    {
      const std::lock_guard<std::mutex> lock(conn->mutex);
      if (conn->worker_active || conn->inbox.empty()) return;
      conn->worker_active = true;
    }
    pool->post([this, conn] { drain_inbox(conn); });
  }

  // --- event loop -------------------------------------------------------

  void close_conn(const std::shared_ptr<Connection>& conn) {
    {
      const std::lock_guard<std::mutex> lock(conn->mutex);
      if (conn->closed) return;
      conn->closed = true;
    }
    ::close(conn->fd);
    core.disconnect(conn->id);
    const std::lock_guard<std::mutex> lock(conn_mutex);
    conns.erase(conn->id);
  }

  void accept_new() {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) return;  // EAGAIN or transient error; poll again
      set_nonblocking(fd);
      if (cfg.unix_path.empty()) {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      }
      auto conn = std::make_shared<Connection>(fd, next_client++,
                                               cfg.service.max_frame_bytes);
      const std::lock_guard<std::mutex> lock(conn_mutex);
      conns.emplace(conn->id, std::move(conn));
    }
  }

  /// Read everything available; returns false when the connection died.
  bool read_from(const std::shared_ptr<Connection>& conn) {
    char buf[65536];
    for (;;) {
      const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
      if (n > 0) {
        conn->decoder.feed(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) return false;  // EOF
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    bool got = false;
    while (auto frame = conn->decoder.next()) {
      const std::lock_guard<std::mutex> lock(conn->mutex);
      conn->inbox.push_back(std::move(*frame));
      got = true;
    }
    if (got) kick_worker(conn);
    return true;
  }

  /// Flush pending output; returns false when the connection died.
  bool write_to(const std::shared_ptr<Connection>& conn) {
    const std::lock_guard<std::mutex> lock(conn->mutex);
    while (conn->out_pos < conn->out.size()) {
      const ssize_t n =
          ::write(conn->fd, conn->out.data() + conn->out_pos,
                  conn->out.size() - conn->out_pos);
      if (n > 0) {
        conn->out_pos += static_cast<std::size_t>(n);
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    if (conn->out_pos == conn->out.size()) {
      conn->out.clear();
      conn->out_pos = 0;
    } else if (conn->out_pos >= 65536) {
      conn->out.erase(0, conn->out_pos);
      conn->out_pos = 0;
    }
    return true;
  }

  void run_loop() {
    std::uint64_t last_evict_tick = 0;
    while (!stopping.load(std::memory_order_relaxed)) {
      // Snapshot connections for this poll round.
      std::vector<std::shared_ptr<Connection>> snapshot;
      {
        const std::lock_guard<std::mutex> lock(conn_mutex);
        snapshot.reserve(conns.size());
        for (const auto& [id, c] : conns) snapshot.push_back(c);
      }
      std::vector<pollfd> fds;
      fds.reserve(snapshot.size() + 2);
      fds.push_back(pollfd{listen_fd, POLLIN, 0});
      fds.push_back(pollfd{wake_rd, POLLIN, 0});
      for (const auto& c : snapshot) {
        short events = POLLIN;
        {
          const std::lock_guard<std::mutex> lock(c->mutex);
          if (c->out_pos < c->out.size()) events |= POLLOUT;
        }
        fds.push_back(pollfd{c->fd, events, 0});
      }

      const int rc = ::poll(fds.data(), fds.size(), 200);
      if (rc < 0 && errno != EINTR) break;

      if (fds[1].revents & POLLIN) {
        char sink[256];
        while (::read(wake_rd, sink, sizeof(sink)) > 0) {
        }
      }
      if (fds[0].revents & POLLIN) accept_new();

      for (std::size_t i = 0; i < snapshot.size(); ++i) {
        const auto& conn = snapshot[i];
        const short rev = fds[i + 2].revents;
        bool alive = true;
        if (rev & (POLLERR | POLLHUP | POLLNVAL)) {
          // Drain remaining input first: a client may write its requests
          // and half-close before we ever read them.
          alive = read_from(conn) && alive;
          if (rev & (POLLERR | POLLNVAL)) alive = false;
        } else {
          if (rev & POLLIN) alive = read_from(conn);
          if (alive && (rev & POLLOUT)) alive = write_to(conn);
        }
        if (!alive) close_conn(conn);
      }

      // Even with nothing polled in, workers may have queued output —
      // POLLOUT interest is recomputed next round; the wake pipe got us
      // here.  Idle eviction runs at most once per tick.
      if (cfg.idle_timeout_s > 0) {
        const std::uint64_t tick = now_tick();
        if (tick != last_evict_tick && tick > cfg.idle_timeout_s) {
          last_evict_tick = tick;
          core.evict_idle(tick - cfg.idle_timeout_s);
        }
      }
    }
  }

  void start() {
    CETA_EXPECTS(!running.load(), "Server already started");
    epoch = std::chrono::steady_clock::now();
    bind_and_listen();
    const std::size_t workers = cfg.num_workers != 0
                                    ? cfg.num_workers
                                    : ThreadPool::default_concurrency();
    pool = std::make_unique<ThreadPool>(workers);
    running.store(true);
    loop_thread = std::thread([this] { run_loop(); });
  }

  void stop() {
    if (!running.exchange(false)) return;
    stopping.store(true);
    wake();
    if (loop_thread.joinable()) loop_thread.join();
    // Drain workers before closing fds: drain_inbox still writes replies.
    pool.reset();
    std::vector<std::shared_ptr<Connection>> remaining;
    {
      const std::lock_guard<std::mutex> lock(conn_mutex);
      for (const auto& [id, c] : conns) remaining.push_back(c);
    }
    for (const auto& c : remaining) {
      // Best-effort final flush of anything workers queued post-loop.
      write_to(c);
      close_conn(c);
    }
    if (listen_fd >= 0) ::close(listen_fd);
    if (wake_rd >= 0) ::close(wake_rd);
    if (wake_wr >= 0) ::close(wake_wr);
    listen_fd = wake_rd = wake_wr = -1;
    if (!cfg.unix_path.empty()) ::unlink(cfg.unix_path.c_str());
  }
};

Server::Server(ServerConfig cfg) : impl_(std::make_unique<Impl>(std::move(cfg))) {}

Server::~Server() {
  if (impl_) impl_->stop();
}

void Server::start() { impl_->start(); }
void Server::stop() { impl_->stop(); }
int Server::port() const { return impl_->bound_port; }
ServiceCore& Server::core() { return impl_->core; }

std::size_t Server::connection_count() const {
  const std::lock_guard<std::mutex> lock(impl_->conn_mutex);
  return impl_->conns.size();
}

}  // namespace ceta::service
