#include "service/framing.hpp"

#include <limits>

#include "common/error.hpp"

namespace ceta::service {

std::string encode_frame(std::string_view payload) {
  CETA_EXPECTS(payload.size() <= std::numeric_limits<std::uint32_t>::max(),
               "encode_frame: payload exceeds the 32-bit header range");
  const auto n = static_cast<std::uint32_t>(payload.size());
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.push_back(static_cast<char>((n >> 24) & 0xff));
  out.push_back(static_cast<char>((n >> 16) & 0xff));
  out.push_back(static_cast<char>((n >> 8) & 0xff));
  out.push_back(static_cast<char>(n & 0xff));
  out.append(payload);
  return out;
}

FrameDecoder::FrameDecoder(std::size_t max_frame_bytes)
    : max_(max_frame_bytes) {
  CETA_EXPECTS(max_ >= 1, "FrameDecoder: frame cap must be positive");
}

void FrameDecoder::feed(const char* data, std::size_t n) {
  if (n == 0) return;
  CETA_EXPECTS(data != nullptr, "FrameDecoder::feed: null data");
  // Skip-eligible bytes never enter the buffer: consume them right here
  // so an oversized frame costs no memory at all.
  if (skip_ > 0 && buf_.size() == pos_) {
    const std::size_t take = n < skip_ ? n : skip_;
    skip_ -= take;
    data += take;
    n -= take;
    if (n == 0) return;
  }
  buf_.append(data, n);
}

std::optional<FrameDecoder::Frame> FrameDecoder::next() {
  for (;;) {
    if (skip_ > 0) {
      const std::size_t avail = buf_.size() - pos_;
      const std::size_t take = avail < skip_ ? avail : skip_;
      pos_ += take;
      skip_ -= take;
      compact();
      if (skip_ > 0) return std::nullopt;  // wait for more bytes
      continue;
    }
    if (buf_.size() - pos_ < kFrameHeaderBytes) {
      compact();
      return std::nullopt;
    }
    const auto b = [&](std::size_t i) {
      return static_cast<std::uint32_t>(
          static_cast<unsigned char>(buf_[pos_ + i]));
    };
    const std::uint32_t len = (b(0) << 24) | (b(1) << 16) | (b(2) << 8) | b(3);
    if (len > max_) {
      // Report once, then swallow the payload without buffering it.
      pos_ += kFrameHeaderBytes;
      skip_ = len;
      Frame f;
      f.oversized = true;
      f.declared_size = len;
      // Any bytes already buffered count against the skip immediately.
      const std::size_t avail = buf_.size() - pos_;
      const std::size_t take = avail < skip_ ? avail : skip_;
      pos_ += take;
      skip_ -= take;
      compact();
      return f;
    }
    if (buf_.size() - pos_ < kFrameHeaderBytes + len) {
      compact();
      return std::nullopt;
    }
    Frame f;
    f.declared_size = len;
    f.payload = buf_.substr(pos_ + kFrameHeaderBytes, len);
    pos_ += kFrameHeaderBytes + len;
    compact();
    return f;
  }
}

void FrameDecoder::compact() {
  if (pos_ == 0) return;
  // Reclaim consumed prefix bytes once they dominate the buffer, keeping
  // feed() amortized O(1) per byte.
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ >= 4096 && pos_ * 2 >= buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
}

}  // namespace ceta::service
