// JSON values and a hardened parser for the cetad wire protocol.
//
// The service speaks length-prefixed JSON frames (service/framing.hpp);
// frame payloads arrive from untrusted clients, so parsing must be strict
// and bounded: the full RFC 8259 grammar, a hard nesting-depth cap (stack
// exhaustion through deep arrays is a classic remote crash), and
// offset-annotated ProtocolError on the first violation — never UB, never
// a partial tree.  Payload *size* is bounded upstream by the framing
// layer's frame cap, so the parser itself needs no byte budget.
//
// Serialization stays on obs::JsonWriter — this header is the read side
// only, mirroring the tree shape of the test-suite's independent checker
// (tests/json_checker.hpp) so service tests can cross-validate both.

#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace ceta::service {

/// A malformed frame or request from a client: bad JSON, a violated
/// protocol schema, an unknown op.  Mapped to a structured "bad_request"
/// error reply — never a disconnect and never a daemon death.
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what) : Error(what) {}
};

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

/// One parsed JSON value (tree node).  Containers sit behind shared_ptr so
/// the struct stays copyable while self-referential.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::shared_ptr<JsonArray> array;
  std::shared_ptr<JsonObject> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Member lookup; nullptr when not an object or the key is absent.
  const JsonValue* find(std::string_view key) const;
  /// Member access; throws ProtocolError when absent or not an object.
  const JsonValue& at(std::string_view key) const;
  bool has(std::string_view key) const { return find(key) != nullptr; }

  /// Array elements; throws ProtocolError when not an array.
  const JsonArray& items() const;
};

/// Maximum container nesting depth accepted from the wire.
inline constexpr std::size_t kMaxJsonDepth = 64;

/// Parse `text` as exactly one JSON document (trailing whitespace only).
/// Throws ProtocolError with a byte offset on malformed input or nesting
/// beyond kMaxJsonDepth.
JsonValue parse_json(std::string_view text);

}  // namespace ceta::service
