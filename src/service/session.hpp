// Multi-tenant session registry for the cetad analysis service.
//
// A Session is one named, long-lived AnalysisEngine plus the service state
// that makes it shareable between clients:
//
//  * a readers/writer lock — engine queries are const and thread-safe, so
//    they run under a shared lock from any number of pool workers, while
//    mutations (which the engine requires exclusive access for) take the
//    lock uniquely;
//  * the subscription table sink → {clients}, fed by the engine's commit
//    observer: a committed transaction reports the exact set of sinks
//    whose disparity report may have changed (InvalidationPlan::
//    report_tasks), and only those sinks re-notify;
//  * admission counters — a per-session in-flight quota (excess requests
//    get a structured "busy" reply instead of queueing unboundedly) and a
//    last-used tick for idle eviction.
//
// The SessionRegistry owns the sessions by shared_ptr: request handlers
// pin the session they operate on, so dropping or evicting a session
// concurrently with in-flight requests is safe — the engine is destroyed
// when the last handler lets go.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "engine/analysis_engine.hpp"
#include "graph/task_graph.hpp"

namespace ceta::service {

/// Identifies one connected client (connection) within the daemon.
using ClientId = std::uint64_t;

class Session {
 public:
  /// Construct over a validated graph.  Throws whatever AnalysisEngine
  /// construction throws (graph validation errors) — the registry turns
  /// that into a structured error reply.
  Session(std::string name, TaskGraph graph, EngineOptions opt = {});

  const std::string& name() const { return name_; }

  /// The engine.  Callers MUST hold query_lock() for const access and
  /// mutate_lock() for mutations — the lock is not taken here.
  AnalysisEngine& engine() { return engine_; }
  const AnalysisEngine& engine() const { return engine_; }

  /// Shared lock for queries, unique lock for mutations.
  std::shared_lock<std::shared_mutex> query_lock() const {
    return std::shared_lock<std::shared_mutex>(rw_);
  }
  std::unique_lock<std::shared_mutex> mutate_lock() const {
    return std::unique_lock<std::shared_mutex>(rw_);
  }

  // --- commit observation ---------------------------------------------------

  /// Epoch and dirty-sink set of the most recent commit, as reported by
  /// the engine's commit observer.  Read them while still holding the
  /// mutate_lock() that covered the commit — they belong to that commit
  /// only (the next one overwrites them).
  std::uint64_t last_commit_epoch() const { return last_commit_epoch_; }
  const std::vector<TaskId>& last_dirty_sinks() const { return last_dirty_; }

  // --- subscriptions --------------------------------------------------------

  /// Register `client` for pushes on `sink`'s disparity.  Idempotent.
  void subscribe(TaskId sink, ClientId client);
  /// Remove one subscription; returns false when it did not exist.
  bool unsubscribe(TaskId sink, ClientId client);
  /// Remove every subscription held by `client` (disconnect path).
  void unsubscribe_all(ClientId client);
  /// Clients currently subscribed to `sink` (snapshot).
  std::vector<ClientId> subscribers(TaskId sink) const;
  /// Total subscriptions across all sinks (diagnostics).
  std::size_t subscription_count() const;

  /// Monotonic per-session push serial: every push carries one, so a
  /// client can detect drops/reordering.
  std::uint64_t next_push_serial() { return ++push_serial_; }

  // --- admission ------------------------------------------------------------

  /// Try to enter the session's in-flight window; false when the quota is
  /// exhausted (caller replies "busy").  Pair with end_request().
  bool begin_request(std::size_t max_inflight);
  void end_request();
  std::size_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }

  /// Idle-eviction bookkeeping: the registry stamps a monotone tick on
  /// every touch and evicts sessions whose stamp is too old.
  void touch(std::uint64_t tick) {
    last_used_.store(tick, std::memory_order_relaxed);
  }
  std::uint64_t last_used() const {
    return last_used_.load(std::memory_order_relaxed);
  }

 private:
  const std::string name_;
  AnalysisEngine engine_;
  mutable std::shared_mutex rw_;

  // Written by the commit observer on the committing thread (which holds
  // the unique lock), read by the same thread right after commit.
  std::uint64_t last_commit_epoch_ = 0;
  std::vector<TaskId> last_dirty_;

  mutable std::mutex sub_mutex_;
  std::map<TaskId, std::set<ClientId>> subs_;
  std::atomic<std::uint64_t> push_serial_{0};

  std::atomic<std::size_t> inflight_{0};
  std::atomic<std::uint64_t> last_used_{0};
};

/// RAII guard for Session::begin_request/end_request.
class InflightGuard {
 public:
  InflightGuard(Session& s, std::size_t max_inflight)
      : session_(&s), admitted_(s.begin_request(max_inflight)) {}
  ~InflightGuard() {
    if (admitted_) session_->end_request();
  }
  InflightGuard(const InflightGuard&) = delete;
  InflightGuard& operator=(const InflightGuard&) = delete;
  bool admitted() const { return admitted_; }

 private:
  Session* session_;
  bool admitted_;
};

class SessionRegistry {
 public:
  explicit SessionRegistry(std::size_t max_sessions)
      : max_sessions_(max_sessions) {}

  /// Create a session; throws CapacityError at the session cap and
  /// PreconditionError on a duplicate name (and propagates graph
  /// validation errors from engine construction).
  std::shared_ptr<Session> create(const std::string& name, TaskGraph graph,
                                  EngineOptions opt = {});

  /// Look up (nullptr when absent).  The returned shared_ptr pins the
  /// session against concurrent drop/eviction.
  std::shared_ptr<Session> find(const std::string& name) const;

  /// Drop by name; returns false when absent.  In-flight requests holding
  /// the shared_ptr finish normally.
  bool drop(const std::string& name);

  /// All sessions, name-ordered (snapshot).
  std::vector<std::shared_ptr<Session>> list() const;

  /// Evict sessions whose last_used tick is older than `older_than` and
  /// that have no request in flight; returns the evicted names.  Sessions
  /// with active subscriptions are kept — a subscriber is a user even
  /// when silent.
  std::vector<std::string> evict_idle(std::uint64_t older_than);

  /// Disconnect path: remove `client`'s subscriptions everywhere.
  void remove_client(ClientId client);

  std::size_t size() const;
  std::size_t max_sessions() const { return max_sessions_; }

 private:
  const std::size_t max_sessions_;
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;
};

}  // namespace ceta::service
