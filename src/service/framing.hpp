// Length-prefixed framing for the cetad wire protocol.
//
// Every message — request, reply, push — travels as one frame:
//
//   +----------------------------+------------------------+
//   | 4-byte big-endian length N |  N bytes JSON payload  |
//   +----------------------------+------------------------+
//
// The decoder is transport-agnostic (feed() raw bytes from any socket or
// buffer, next() pops completed frames), incremental (partial frames
// accumulate across feeds), and survives hostile input by construction:
//
//  * Oversized frames — a declared length beyond the configured cap — are
//    reported once as a structured Frame{oversized} event and then their
//    payload bytes are *skipped without buffering*, so a client declaring
//    a 4 GiB frame costs the daemon nothing and keeps its connection (it
//    receives an error reply, not a disconnect).
//  * Truncated frames simply wait for more bytes; a connection closing
//    mid-frame leaves no state to clean up beyond the decoder itself.
//  * Corrupt payloads (bad JSON) are not the decoder's business: framing
//    is recovered after exactly N bytes either way, and the JSON layer
//    turns the garbage into a "bad_request" reply.
//
// A zero-length frame is delivered as an empty payload (the JSON layer
// rejects it); it cannot desynchronize the stream.

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace ceta::service {

/// Bytes of the frame header (big-endian payload length).
inline constexpr std::size_t kFrameHeaderBytes = 4;

/// Default cap on one frame's payload (requests *and* replies): 8 MiB,
/// comfortably above any graph upload or report and far below anything
/// that could exhaust the daemon.
inline constexpr std::size_t kDefaultMaxFrameBytes = 8u << 20;

/// Prepend the length header to `payload`.  Throws PreconditionError when
/// the payload exceeds the uint32 header range.
std::string encode_frame(std::string_view payload);

/// Incremental frame decoder; see the file comment for the contract.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

  /// One decoded event: either a complete payload, or the notification
  /// that an oversized frame was (is being) skipped.
  struct Frame {
    std::string payload;            ///< empty when oversized
    bool oversized = false;         ///< declared length beyond the cap
    std::size_t declared_size = 0;  ///< the header's length field
  };

  /// Append raw bytes from the transport.  Buffered memory is bounded by
  /// max_frame_bytes + the feed chunk size (oversized payloads are never
  /// buffered).
  void feed(const char* data, std::size_t n);
  void feed(std::string_view data) { feed(data.data(), data.size()); }

  /// Pop the next completed frame event, if any.
  std::optional<Frame> next();

  /// Bytes currently buffered (diagnostics/tests).
  std::size_t buffered() const { return buf_.size() - pos_; }

  /// The configured payload cap.
  std::size_t max_frame_bytes() const { return max_; }

 private:
  void compact();

  std::size_t max_;
  std::string buf_;
  std::size_t pos_ = 0;   ///< consumed prefix of buf_
  std::size_t skip_ = 0;  ///< remaining payload bytes of an oversized frame
};

}  // namespace ceta::service
