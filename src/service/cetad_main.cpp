// cetad — the cause-effect time-analysis daemon.
//
// Hosts many named analysis sessions behind the length-prefixed JSON
// protocol (service/service.hpp) on a Unix-domain or loopback TCP socket:
//
//   cetad --unix /tmp/cetad.sock
//   cetad --port 7341 --workers 8 --max-sessions 1024 --quota 32
//         --idle-timeout 600
//
// Prints one "listening ..." line once ready (scripts wait for it), then
// serves until SIGINT/SIGTERM.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "service/server.hpp"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --unix PATH        listen on a unix-domain socket\n"
      << "  --port N           listen on 127.0.0.1:N (0 = ephemeral;\n"
      << "                     default when --unix is absent)\n"
      << "  --workers N        request worker threads (default: cores)\n"
      << "  --max-sessions N   session cap (default 4096)\n"
      << "  --quota N          per-session in-flight quota (default 64)\n"
      << "  --max-frame BYTES  frame payload cap (default 8 MiB)\n"
      << "  --idle-timeout S   evict sessions idle for S seconds (0 = never)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ceta::service::ServerConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--unix") {
      cfg.unix_path = next();
    } else if (arg == "--port") {
      cfg.tcp_port = std::atoi(next());
    } else if (arg == "--workers") {
      cfg.num_workers = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--max-sessions") {
      cfg.service.max_sessions = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--quota") {
      cfg.service.max_inflight_per_session =
          static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--max-frame") {
      cfg.service.max_frame_bytes = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--idle-timeout") {
      cfg.idle_timeout_s = static_cast<std::uint64_t>(std::atol(next()));
    } else {
      return usage(argv[0]);
    }
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  try {
    ceta::service::Server server(cfg);
    server.start();
    if (!cfg.unix_path.empty()) {
      std::cout << "listening unix:" << cfg.unix_path << std::endl;
    } else {
      std::cout << "listening tcp:127.0.0.1:" << server.port() << std::endl;
    }
    while (!g_stop.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    server.stop();
  } catch (const std::exception& e) {
    std::cerr << "cetad: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
