// The cetad socket server: one poll()-based event loop + a worker pool.
//
// Layering (all hand-rolled on POSIX sockets — no dependencies):
//
//   accept/read/write   event-loop thread (poll over listen fd, a wakeup
//                       pipe, and every connection)
//   frame decode        event-loop thread (FrameDecoder per connection)
//   request handling    ThreadPool workers calling ServiceCore::handle
//   reply/push writes   workers append to per-connection output buffers
//                       and wake the loop, which drains them via POLLOUT
//
// Per-connection request order is preserved: decoded frames land in the
// connection's queue and at most one worker drains it at a time (the
// `worker_active` latch), so two requests from one client never race each
// other — while different connections are handled fully in parallel.
//
// Listens on a Unix-domain socket (config.unix_path) or a loopback TCP
// port (config.tcp_port; 0 picks an ephemeral port, readable from port()
// after start()).  Malformed frames, oversized frames and handler errors
// all produce structured error replies on a live connection; only EOF or
// a transport error closes it, and closing drops the client's
// subscriptions.

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "service/service.hpp"

namespace ceta::service {

struct ServerConfig {
  /// Non-empty: bind a Unix-domain socket at this path (unlinked on
  /// stop).  Empty: bind TCP on 127.0.0.1:tcp_port.
  std::string unix_path;
  int tcp_port = 0;  ///< 0 = ephemeral (query via port())
  /// Worker threads handling requests; 0 = ThreadPool::default_concurrency.
  std::size_t num_workers = 0;
  /// Evict sessions idle for more than this many seconds (0 = never).
  std::uint64_t idle_timeout_s = 0;
  ServiceConfig service;
};

class Server {
 public:
  explicit Server(ServerConfig cfg);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen and spawn the event loop.  Throws Error on bind/listen
  /// failure.
  void start();

  /// Graceful shutdown: stop accepting, drain workers, close every
  /// connection.  Idempotent; also run by the destructor.
  void stop();

  /// Bound TCP port (valid after start(); 0 in Unix-socket mode).
  int port() const;

  /// The service core (e.g. for metrics snapshots).
  ServiceCore& core();

  /// Connections currently open (diagnostics).
  std::size_t connection_count() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ceta::service
