#include "service/session.hpp"

#include <utility>

#include "common/error.hpp"

namespace ceta::service {

Session::Session(std::string name, TaskGraph graph, EngineOptions opt)
    : name_(std::move(name)), engine_(std::move(graph), opt) {
  engine_.set_commit_observer([this](const AnalysisEngine::CommitInfo& info) {
    // Runs on the committing thread, which holds the unique lock — plain
    // members are safe and are read back under the same lock.
    last_commit_epoch_ = info.epoch;
    last_dirty_ = info.plan.report_tasks;
  });
}

void Session::subscribe(TaskId sink, ClientId client) {
  const std::lock_guard<std::mutex> lock(sub_mutex_);
  subs_[sink].insert(client);
}

bool Session::unsubscribe(TaskId sink, ClientId client) {
  const std::lock_guard<std::mutex> lock(sub_mutex_);
  const auto it = subs_.find(sink);
  if (it == subs_.end()) return false;
  const bool erased = it->second.erase(client) > 0;
  if (it->second.empty()) subs_.erase(it);
  return erased;
}

void Session::unsubscribe_all(ClientId client) {
  const std::lock_guard<std::mutex> lock(sub_mutex_);
  for (auto it = subs_.begin(); it != subs_.end();) {
    it->second.erase(client);
    it = it->second.empty() ? subs_.erase(it) : std::next(it);
  }
}

std::vector<ClientId> Session::subscribers(TaskId sink) const {
  const std::lock_guard<std::mutex> lock(sub_mutex_);
  const auto it = subs_.find(sink);
  if (it == subs_.end()) return {};
  return std::vector<ClientId>(it->second.begin(), it->second.end());
}

std::size_t Session::subscription_count() const {
  const std::lock_guard<std::mutex> lock(sub_mutex_);
  std::size_t n = 0;
  for (const auto& [sink, clients] : subs_) n += clients.size();
  return n;
}

bool Session::begin_request(std::size_t max_inflight) {
  // Optimistic increment; back out when over quota.  The quota is a
  // backpressure valve, not an exact admission ticket, so the transient
  // overshoot between fetch_add and the check is harmless.
  const std::size_t prev = inflight_.fetch_add(1, std::memory_order_relaxed);
  if (prev >= max_inflight) {
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void Session::end_request() {
  inflight_.fetch_sub(1, std::memory_order_relaxed);
}

std::shared_ptr<Session> SessionRegistry::create(const std::string& name,
                                                 TaskGraph graph,
                                                 EngineOptions opt) {
  CETA_EXPECTS(!name.empty(), "session name must be non-empty");
  // Engine construction (graph validation, RTA setup) happens outside the
  // registry lock so a slow create never stalls unrelated lookups; the
  // duplicate check is re-run at insert.
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (sessions_.size() >= max_sessions_) {
      throw CapacityError("session limit reached (" +
                          std::to_string(max_sessions_) + ")");
    }
    if (sessions_.count(name) > 0) {
      throw PreconditionError("session '" + name + "' already exists");
    }
  }
  auto session = std::make_shared<Session>(name, std::move(graph), opt);
  const std::lock_guard<std::mutex> lock(mutex_);
  if (sessions_.size() >= max_sessions_) {
    throw CapacityError("session limit reached (" +
                        std::to_string(max_sessions_) + ")");
  }
  const auto [it, inserted] = sessions_.emplace(name, std::move(session));
  if (!inserted) {
    throw PreconditionError("session '" + name + "' already exists");
  }
  return it->second;
}

std::shared_ptr<Session> SessionRegistry::find(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(name);
  return it == sessions_.end() ? nullptr : it->second;
}

bool SessionRegistry::drop(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.erase(name) > 0;
}

std::vector<std::shared_ptr<Session>> SessionRegistry::list() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<Session>> out;
  out.reserve(sessions_.size());
  for (const auto& [name, s] : sessions_) out.push_back(s);
  return out;
}

std::vector<std::string> SessionRegistry::evict_idle(std::uint64_t older_than) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> evicted;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    Session& s = *it->second;
    if (s.last_used() < older_than && s.inflight() == 0 &&
        s.subscription_count() == 0) {
      evicted.push_back(it->first);
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
  return evicted;
}

void SessionRegistry::remove_client(ClientId client) {
  // Snapshot under the registry lock, then clean per-session tables
  // outside it (each has its own mutex).
  std::vector<std::shared_ptr<Session>> all = list();
  for (const auto& s : all) s->unsubscribe_all(client);
}

std::size_t SessionRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

}  // namespace ceta::service
