// Randomized differential verification of the analysis stack.
//
// The paper's results are inequalities tying together quantities this
// library computes in several independent ways: Lemmas 4/5 bound the
// backward times that sim/backward.hpp measures from traces, Theorems 1/2
// bound the disparity the simulator observes and the exact LET oracle
// (disparity/exact.hpp) evaluates in closed form, Lemma 6/Theorem 3
// relate buffered and unbuffered bounds by an exact arithmetic shift, and
// the AnalysisEngine promises byte-identical results to the free
// functions.  A PropertyChecker draws seeded random task graphs (the
// evaluation's generators + WATERS workloads), randomizes release
// offsets, and checks every such cross-implementation invariant on every
// draw.  Violations are shrunk (verify/shrink.hpp) to a minimal failing
// graph and reported as reloadable fixtures (verify/fixture.hpp).
//
// Each property is checked by a single pure function, check_property(),
// that recomputes everything it needs from the graph alone — so the
// shrinker can re-evaluate exactly the failing property on candidate
// graphs, and a committed fixture replays with nothing but the graph
// text, the property name and the simulation seed.

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "graph/task_graph.hpp"

namespace ceta::verify {

/// One cross-checked invariant (see DESIGN.md §7 for the full statements).
enum class Property {
  kEngineMatchesFree,       ///< AnalysisEngine ≡ free functions, field-wise
  kBoundsOrdered,           ///< B(π) ≤ W(π) per chain (Lemmas 4/5)
  kSdiffLeqPdiff,           ///< Theorem 2 (clamped) ≤ Theorem 1
  kSimWithinBound,          ///< simulated disparity ≤ S-diff (Theorem 2)
  kBackwardInBounds,        ///< measured backward times ∈ [B(π), W(π)]
  kExactWithinBound,        ///< exact LET disparity ≤ analyzer bound
  kExactMatchesSim,         ///< exact LET oracle ≡ steady-state simulation
  kBufferedShift,           ///< Lemma 6: bounds shift by exactly (n−1)·T(π¹)
  kBufferDesignConsistent,  ///< Algorithm 1/Theorem 3 arithmetic invariants
  kMultiBufferSafe,         ///< multi-chain design ≤ baseline, = re-analysis
  /// Pairwise kernel ≡ reference analyzer, field-wise, at every
  /// DisparityMethod × JointTruncation × KeepPairs combination.
  kPairKernelMatchesReference,
  /// A warmed AnalysisEngine driven through a scripted mutation sequence
  /// (buffer resize, WCET/period edits, priority swap, offset nudge, edge
  /// add/remove) stays field-identical to a freshly constructed engine
  /// after every commit and every revert (DESIGN.md §9).
  kIncrementalMatchesFresh,
  /// DAG-DP backend ≡ enumerating kernel on every enumerable instance, at
  /// every DisparityMethod × JointTruncation combination: bit-identical
  /// worst_case whenever the DP claims exactness, and equal to the
  /// kIndependent + kNever enumeration otherwise (the DP's relaxation
  /// contract, DESIGN.md §10); the routed backend front door must always
  /// land on the exact result.
  kDagDpMatchesEnumeration,
  /// Monte-Carlo fleet (sim/montecarlo.hpp): every empirical disparity
  /// sample over a multi-seed replication batch stays within the
  /// analyzer's task-level bound, and the driver's aggregate is
  /// bit-identical between single-threaded and pooled execution.
  kMonteCarloWithinBounds,
  /// Every entry of an explore() campaign's Pareto archive
  /// (explore/explorer.hpp) revalidates: replaying its ConfigDelta onto a
  /// fresh AnalysisEngine reproduces the archived objective vector
  /// bit-for-bit.  Catches any drift between the explorer's rollback
  /// bookkeeping and the engine's actual configuration (the
  /// kSkipExploreRollback fault is the canonical example).
  kExploredConfigsRevalidate,
  /// Policy-aware RTA ≡ preemptive/EDF simulation: on a twin of the graph
  /// whose ECUs are assigned a seed-derived mix of dispatching disciplines
  /// (non-preemptive / preemptive FP / EDF), every task's simulated
  /// worst-observed response time stays ≤ the per-ECU policy-routed RTA.
  /// Exercises the preemptive busy-window and EDF processor-demand
  /// analyses differentially against sim/simulator.hpp's preemptive
  /// execution modes.
  kRtaPolicyMatchesSim,
  /// Theorem 2 under mixed policies: the simulated time disparity of the
  /// same mixed-policy twin stays ≤ the S-diff bound assembled from
  /// policy-routed hop bounds (Lemma 4's same-ECU refinements degrade
  /// soundly under preemptive FP and EDF dispatching).
  kMixedPolicyDisparityWithinBounds,
};

inline constexpr std::size_t kNumProperties = 17;

/// Stable lowercase identifier ("sim_within_bound", ...), used in fixture
/// files and reports.
const char* property_name(Property p);
std::optional<Property> property_from_name(std::string_view name);

/// Test-only mutation: weaken the analytical upper bounds by one head
/// period before comparing, so the oracles must flag them.  Used to prove
/// the harness can actually catch an unsound bound (and that the shrinker
/// converges); never enabled in production runs.
enum class FaultInjection {
  kNone,
  /// Subtract T(head) from W(π) and from the task-level disparity bound —
  /// the classic off-by-one of dropping one period term from a hop bound.
  kDropHeadPeriod,
  /// Build the probed AnalysisEngine with
  /// EngineOptions::fault_skip_edge_invalidation, so buffer-resize commits
  /// skip their edge-epoch bump and chain-bound entries over the resized
  /// channel go stale — the incremental_matches_fresh property must catch
  /// the divergence.  Affects only that property.
  kSkipInvalidation,
  /// Run the DAG DP with DagDpOptions::fault_drop_source_period, so its
  /// combination step under-reports the final worst case by one source
  /// period — the dag_dp_matches_enumeration property must flag the
  /// divergence from the enumerating kernel.  Affects only that property.
  kCorruptDpSummary,
  /// Run the Monte-Carlo driver with
  /// MonteCarloOptions::fault_scale_samples = 1000, inflating every
  /// empirical disparity sample (the signature of a unit slip, e.g. us
  /// recorded as ns) — the montecarlo_within_bounds property must reject
  /// the batch.  Affects only that property.
  kCorruptMcSamples,
  /// Run the explorer with ExploreOptions::fault_skip_rollback, so the
  /// engine silently keeps one strategy-rejected buffer move the
  /// explorer's config mirror forgot — every later archive entry then
  /// carries a delta that cannot reproduce its objectives, which the
  /// explored_configs_revalidate property must catch.  Affects only that
  /// property.
  kSkipExploreRollback,
  /// Run the preemptive-FP busy-window analysis with
  /// RtaOptions::fault_drop_largest_hp, silently dropping the largest
  /// higher-priority interferer from every preemptive fixpoint — the
  /// rta_policy_matches_sim property must observe a simulated response
  /// time above the weakened WCRT.  Affects only that property.
  kDropPreemptiveInterference,
  /// Run the EDF processor-demand analysis with
  /// RtaOptions::fault_edf_undercount, shaving one job off every
  /// deadline-capped interference term — the rta_policy_matches_sim
  /// property must catch the underestimate on EDF ECUs.  Affects only
  /// that property.
  kEdfUndercount,
};

/// Everything a single property evaluation depends on besides the graph:
/// deterministic inputs only, so (graph, task, config) replays exactly.
struct ProbeConfig {
  std::uint64_t sim_seed = 1;
  /// Measured simulation window appended after the derived warm-up.
  Duration sim_window = Duration::ms(400);
  std::size_t path_cap = 4'000;
  /// Cap on exact-oracle releases per hyperperiod (CapacityError beyond —
  /// counted as a capacity skip, not a failure).
  std::size_t max_releases = 50'000;
  /// Skip simulation-backed properties when the derived warm-up + window
  /// horizon exceeds this (keeps pathological periods from stalling runs).
  Duration max_sim_horizon = Duration::s(30);
  /// Cap on the *estimated* job count of one simulation probe (Σ over
  /// tasks of horizon/period).  Shrinking halves periods aggressively, so
  /// a fixed measurement window can imply 10⁸+ jobs on a candidate; the
  /// estimate turns those into instant capacity skips and also backstops
  /// SimOptions::max_jobs.
  std::size_t max_sim_jobs = 250'000;
  FaultInjection fault = FaultInjection::kNone;
};

struct PropertyOutcome {
  enum class Status { kHolds, kViolated, kSkipped };
  Status status = Status::kHolds;
  /// Violation message or skip reason.
  std::string detail;
  /// True when the skip was a CapacityError (hyperperiod/path-cap/...).
  bool capacity_skip = false;

  bool violated() const { return status == Status::kViolated; }
};

/// Evaluate one property of `task` on `g`.  Never throws on analysis
/// capacity limits (returns a capacity skip); an unexpected ceta::Error
/// from inside the analysis stack is itself reported as a violation (an
/// invariant assertion firing on a valid graph *is* a bug).
PropertyOutcome check_property(Property p, const TaskGraph& g, TaskId task,
                               const ProbeConfig& cfg);

/// A shrunken counterexample, ready for fixture serialization.
struct Violation {
  Property property = Property::kBoundsOrdered;
  TaskGraph graph;  ///< minimal failing graph (offsets baked in)
  TaskId task = 0;
  std::uint64_t sim_seed = 1;
  std::string detail;        ///< from the original (pre-shrink) failure
  std::size_t shrink_rounds = 0;
  std::size_t original_tasks = 0;  ///< graph size before shrinking
};

struct CheckerOptions {
  std::uint64_t seed = 42;
  std::size_t trials = 200;
  /// Drawn graph sizes (task counts) for the G(n,m)/funnel topologies.
  std::size_t min_tasks = 5;
  std::size_t max_tasks = 12;
  int num_ecus = 3;
  /// Offset assignments (and thus property evaluations) per drawn graph.
  std::size_t offset_probes = 1;
  ProbeConfig probe;
  bool shrink = true;
  /// Stop the campaign early after this many violations.
  std::size_t max_violations = 8;
};

struct CheckerStats {
  std::size_t trials = 0;
  std::size_t graphs_checked = 0;       ///< admissible + schedulable draws
  std::size_t properties_checked = 0;   ///< individual property evaluations
  std::size_t skipped_unschedulable = 0;
  std::size_t skipped_degenerate = 0;   ///< < 2 source chains to the sink
  std::size_t skipped_capacity = 0;     ///< CapacityError skips (counted, never fatal)
  std::size_t skipped_other = 0;        ///< non-capacity property skips
};

struct CheckerReport {
  CheckerStats stats;
  std::vector<Violation> violations;
  bool ok() const { return violations.empty(); }
};

/// The campaign driver.  Deterministic in CheckerOptions::seed.
class PropertyChecker {
 public:
  explicit PropertyChecker(CheckerOptions opt = {});

  /// Draw `trials` random WATERS instances and check every property of
  /// each (the fixed-seed ctest smoke run calls exactly this).
  CheckerReport run();

  /// Check all properties of one concrete instance (offsets taken as-is),
  /// accumulating into `report`.  Public so tests and fixture replays can
  /// drive specific graphs through the identical code path.
  void check_instance(const TaskGraph& g, TaskId task, const ProbeConfig& cfg,
                      CheckerReport& report);

  const CheckerOptions& options() const { return opt_; }

 private:
  CheckerOptions opt_;
};

}  // namespace ceta::verify
