// Counterexample shrinking for the differential-verification harness.
//
// Given a graph on which some predicate fails (a property violation), the
// shrinker greedily searches for a smaller graph that still fails it:
//   1. restrict to the ancestor closure of the analyzed task,
//   2. drop whole tasks (rewiring nothing — consumers of a dropped
//      producer simply become sources),
//   3. drop single edges,
//   4. shrink parameters (halve periods and WCETs, zero offsets and
//      jitter) and reduce FIFO buffer sizes toward 1,
// repeating all passes to a fixpoint (first-improvement, deterministic).
// Candidates must pass TaskGraph::validate(); tasks that lose their last
// predecessor are repaired into proper sources (zero execution time, no
// ECU).  A candidate on which the predicate *throws* is treated as
// not-failing and discarded, so shrinking can never escalate one bug into
// a different one.

#pragma once

#include <cstddef>
#include <functional>

#include "graph/task_graph.hpp"

namespace ceta::verify {

/// Does this (graph, task) still exhibit the failure being shrunk?
/// Must be deterministic; called many times.
using FailingPredicate = std::function<bool(const TaskGraph&, TaskId)>;

struct ShrinkResult {
  TaskGraph graph;  ///< smallest failing graph found
  TaskId task = 0;  ///< the analyzed task's id in `graph`
  std::size_t rounds = 0;    ///< fixpoint iterations
  std::size_t attempts = 0;  ///< candidate evaluations
};

/// Shrink (g, task), which must satisfy `still_fails`, to a locally
/// minimal failing instance.  `max_attempts` caps predicate evaluations
/// (the current best is returned when exhausted).
ShrinkResult shrink_counterexample(TaskGraph g, TaskId task,
                                   const FailingPredicate& still_fails,
                                   std::size_t max_attempts = 4'000);

}  // namespace ceta::verify
