#include "verify/property_checker.hpp"

#include <algorithm>
#include <exception>
#include <string>
#include <utility>
#include <vector>

#include "chain/backward_bounds.hpp"
#include "common/error.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"
#include "disparity/analyzer.hpp"
#include "disparity/buffer_opt.hpp"
#include "disparity/dag_dp.hpp"
#include "disparity/exact.hpp"
#include "disparity/forkjoin.hpp"
#include "disparity/multi_buffer.hpp"
#include "disparity/pair_kernel.hpp"
#include "disparity/pairwise.hpp"
#include "engine/analysis_engine.hpp"
#include "explore/explorer.hpp"
#include "graph/algorithms.hpp"
#include "graph/generator.hpp"
#include "graph/paths.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sched/npfp_rta.hpp"
#include "sched/priority.hpp"
#include "sim/backward.hpp"
#include "sim/engine.hpp"
#include "sim/montecarlo.hpp"
#include "verify/shrink.hpp"
#include "waters/generator.hpp"

namespace ceta::verify {

namespace {

constexpr const char* kPropertyNames[kNumProperties] = {
    "engine_matches_free", "bounds_ordered",
    "sdiff_leq_pdiff",     "sim_within_bound",
    "backward_in_bounds",  "exact_within_bound",
    "exact_matches_sim",   "buffered_shift",
    "buffer_design_consistent", "multi_buffer_safe",
    "pair_kernel_matches_reference", "incremental_matches_fresh",
    "dag_dp_matches_enumeration", "montecarlo_within_bounds",
    "explored_configs_revalidate", "rta_policy_matches_sim",
    "mixed_policy_disparity_within_bounds"};

constexpr Property kAllProperties[kNumProperties] = {
    Property::kEngineMatchesFree,
    Property::kBoundsOrdered,
    Property::kSdiffLeqPdiff,
    Property::kSimWithinBound,
    Property::kBackwardInBounds,
    Property::kExactWithinBound,
    Property::kExactMatchesSim,
    Property::kBufferedShift,
    Property::kBufferDesignConsistent,
    Property::kMultiBufferSafe,
    Property::kPairKernelMatchesReference,
    Property::kIncrementalMatchesFresh,
    Property::kDagDpMatchesEnumeration,
    Property::kMonteCarloWithinBounds,
    Property::kExploredConfigsRevalidate,
    Property::kRtaPolicyMatchesSim,
    Property::kMixedPolicyDisparityWithinBounds};

std::string dur(Duration d) { return std::to_string(d.count()) + "ns"; }

std::string chain_str(const TaskGraph& g, const Path& c) {
  std::string s;
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (i) s += "->";
    s += g.task(c[i]).name;
  }
  return s;
}

PropertyOutcome holds() { return {}; }

PropertyOutcome violated(std::string detail) {
  PropertyOutcome out;
  out.status = PropertyOutcome::Status::kViolated;
  out.detail = std::move(detail);
  return out;
}

PropertyOutcome skipped(std::string why, bool capacity = false) {
  PropertyOutcome out;
  out.status = PropertyOutcome::Status::kSkipped;
  out.detail = std::move(why);
  out.capacity_skip = capacity;
  return out;
}

/// Shared deterministic inputs of one property evaluation.
struct Inputs {
  const TaskGraph& g;
  TaskId task;
  const ResponseTimeMap& rtm;
  const std::vector<Path>& chains;
  const ProbeConfig& cfg;
};

/// The injected off-by-one: one head period of the analyzed chain set,
/// the largest term a hop-bound derivation could plausibly drop.
Duration fault_delta(const Inputs& in) {
  if (in.cfg.fault != FaultInjection::kDropHeadPeriod) return Duration::zero();
  Duration d = Duration::zero();
  for (const Path& c : in.chains) {
    d = std::max(d, in.g.task(c.front()).period);
  }
  return d;
}

bool head_channel_unbuffered(const TaskGraph& g, const Path& c) {
  return c.size() < 2 || g.channel(c[0], c[1]).buffer_size == 1;
}

bool chain_unbuffered(const TaskGraph& g, const Path& c) {
  for (std::size_t i = 0; i + 1 < c.size(); ++i) {
    if (g.channel(c[i], c[i + 1]).buffer_size != 1) return false;
  }
  return true;
}

DisparityOptions disparity_options(const Inputs& in, DisparityMethod m) {
  DisparityOptions opt;
  opt.method = m;
  opt.path_cap = in.cfg.path_cap;
  return opt;
}

/// Simulation warm-up after which every backward chain and FIFO window of
/// `task` is in steady state: the deepest analytic backward span plus the
/// buffer-fill horizon (exact_warmup_horizon covers (buffer+1)·T per hop).
Duration sim_warmup(const Inputs& in) {
  Duration w = Duration::zero();
  for (const Path& c : in.chains) {
    w = std::max(w, backward_bounds(in.g, c, in.rtm).wcbt);
  }
  return w + exact_warmup_horizon(in.g, in.task, in.cfg.path_cap);
}

/// Estimate the job count before simulating: shrink candidates can carry
/// microsecond periods under the same fixed measurement window, which
/// would mean 1e8+ jobs (minutes of CPU, gigabytes of trace) for a
/// candidate that is about to be discarded anyway.  Past the cap this is
/// a capacity skip, and max_jobs backstops the estimate.
void guard_sim_jobs(const TaskGraph& g, const ProbeConfig& cfg,
                    Duration duration, std::uint64_t replications) {
  std::uint64_t estimated_jobs = 0;
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    const std::int64_t period = std::max<std::int64_t>(
        std::int64_t{1}, g.task(id).period.count());
    estimated_jobs +=
        (static_cast<std::uint64_t>(duration.count() / period) + 1) *
        replications;
    if (estimated_jobs > cfg.max_sim_jobs) {
      throw CapacityError(
          "verify: estimated simulation job count exceeds max_sim_jobs");
    }
  }
}

SimResult run_sim(const TaskGraph& g, const ProbeConfig& cfg, Duration warmup,
                  Duration duration, bool record_trace) {
  guard_sim_jobs(g, cfg, duration, 1);
  SimOptions sopt;
  sopt.duration = duration;
  sopt.warmup = warmup;
  sopt.seed = cfg.sim_seed;
  sopt.exec_model = ExecTimeModel::kUniform;
  sopt.record_trace = record_trace;
  sopt.max_jobs = cfg.max_sim_jobs;
  sim::Simulator simulator(g, sopt);
  return simulator.run();
}

// ---------------------------------------------------------------------------
// Property implementations.  Each recomputes what it needs from the graph
// alone so the shrinker (and fixture replays) evaluate the identical check.

PropertyOutcome check_engine_matches_free(const Inputs& in) {
  const AnalysisEngine engine{in.g};
  if (engine.response_times() != in.rtm) {
    return violated("engine response_times() != analyze_response_times()");
  }
  for (const Path& c : in.chains) {
    const BackwardBounds e = engine.chain_bounds(c);
    const BackwardBounds f = backward_bounds(in.g, c, in.rtm);
    if (e.wcbt != f.wcbt || e.bcbt != f.bcbt) {
      return violated("engine chain_bounds differ on " + chain_str(in.g, c) +
                      ": engine [" + dur(e.bcbt) + ", " + dur(e.wcbt) +
                      "] vs free [" + dur(f.bcbt) + ", " + dur(f.wcbt) + "]");
    }
    const Duration he = engine.hop(c[0], c[1]);
    const Duration hf =
        hop_bound(in.g, c[0], c[1], in.rtm, HopBoundMethod::kNonPreemptive);
    if (he != hf) {
      return violated("engine hop(" + in.g.task(c[0]).name + ", " +
                      in.g.task(c[1]).name + ") = " + dur(he) +
                      " != free " + dur(hf));
    }
  }
  for (const DisparityMethod m :
       {DisparityMethod::kIndependent, DisparityMethod::kForkJoin}) {
    const DisparityOptions dopt = disparity_options(in, m);
    const DisparityReport re = engine.disparity(in.task, dopt);
    const DisparityReport rf =
        analyze_time_disparity(in.g, in.task, in.rtm, dopt);
    if (re.worst_case != rf.worst_case || re.pairs.size() != rf.pairs.size()) {
      return violated(std::string("engine disparity differs (") +
                      (m == DisparityMethod::kIndependent ? "P" : "S") +
                      "-diff): engine " + dur(re.worst_case) + " vs free " +
                      dur(rf.worst_case));
    }
    for (std::size_t i = 0; i < re.pairs.size(); ++i) {
      if (re.pairs[i].bound != rf.pairs[i].bound) {
        return violated("engine pair bound " + std::to_string(i) +
                        " differs: " + dur(re.pairs[i].bound) + " vs " +
                        dur(rf.pairs[i].bound));
      }
    }
  }
  const Path& l = in.chains[0];
  const Path& n = in.chains[1];
  if (head_channel_unbuffered(in.g, l) && head_channel_unbuffered(in.g, n)) {
    const BufferDesign de = engine.optimize_buffer_pair(l, n);
    const BufferDesign df = design_buffer(in.g, l, n, in.rtm);
    if (de.buffer_on_lambda != df.buffer_on_lambda ||
        de.buffer_size != df.buffer_size || de.shift != df.shift ||
        de.baseline_bound != df.baseline_bound ||
        de.optimized_bound != df.optimized_bound) {
      return violated("engine optimize_buffer_pair != design_buffer");
    }
  }
  bool all_heads_plain = true;
  for (const Path& c : in.chains) {
    all_heads_plain = all_heads_plain && head_channel_unbuffered(in.g, c);
  }
  if (all_heads_plain) {
    const DisparityOptions dopt =
        disparity_options(in, DisparityMethod::kForkJoin);
    const MultiBufferDesign me = engine.optimize_buffers(in.task, dopt);
    const MultiBufferDesign mf =
        design_buffers_for_task(in.g, in.task, in.rtm, dopt);
    if (me.baseline_bound != mf.baseline_bound ||
        me.optimized_bound != mf.optimized_bound ||
        me.channels.size() != mf.channels.size()) {
      return violated("engine optimize_buffers != design_buffers_for_task");
    }
  }
  return holds();
}

PropertyOutcome check_bounds_ordered(const Inputs& in) {
  const Duration delta = fault_delta(in);
  for (const Path& c : in.chains) {
    const BackwardBounds bb = backward_bounds(in.g, c, in.rtm);
    const Duration w = bb.wcbt - delta;
    if (bb.bcbt > w) {
      return violated("B(π) = " + dur(bb.bcbt) + " > W(π) = " + dur(w) +
                      " on chain " + chain_str(in.g, c));
    }
  }
  return holds();
}

PropertyOutcome check_sdiff_leq_pdiff(const Inputs& in) {
  const Duration pdiff =
      analyze_time_disparity(in.g, in.task, in.rtm,
                             disparity_options(in, DisparityMethod::kIndependent))
          .worst_case;
  const Duration sdiff =
      analyze_time_disparity(in.g, in.task, in.rtm,
                             disparity_options(in, DisparityMethod::kForkJoin))
          .worst_case;
  if (sdiff > pdiff) {
    return violated("S-diff " + dur(sdiff) + " > P-diff " + dur(pdiff));
  }
  return holds();
}

PropertyOutcome check_sim_within_bound(const Inputs& in) {
  const Duration warmup = sim_warmup(in);
  const Duration horizon = warmup + in.cfg.sim_window;
  if (horizon > in.cfg.max_sim_horizon) {
    return skipped("simulation horizon exceeds max_sim_horizon");
  }
  const Duration bound =
      analyze_time_disparity(in.g, in.task, in.rtm,
                             disparity_options(in, DisparityMethod::kForkJoin))
          .worst_case -
      fault_delta(in);
  const SimResult res = run_sim(in.g, in.cfg, warmup, horizon, false);
  if (res.max_disparity[in.task] > bound) {
    return violated("simulated disparity " + dur(res.max_disparity[in.task]) +
                    " > S-diff bound " + dur(bound) + " (seed " +
                    std::to_string(in.cfg.sim_seed) + ")");
  }
  return holds();
}

PropertyOutcome check_montecarlo_within_bounds(const Inputs& in) {
  const Duration warmup = sim_warmup(in);
  // Several short seeded replications instead of one long run: the fleet
  // explores distinct jitter/execution interleavings per probe while the
  // total simulated time stays comparable to the single-run properties.
  constexpr std::uint64_t kReplications = 4;
  const Duration window = std::max(Duration::ms(50), in.cfg.sim_window / 8);
  const Duration horizon = warmup + window;
  if (horizon > in.cfg.max_sim_horizon) {
    return skipped("simulation horizon exceeds max_sim_horizon");
  }
  guard_sim_jobs(in.g, in.cfg, horizon, kReplications);
  const Duration bound =
      analyze_time_disparity(in.g, in.task, in.rtm,
                             disparity_options(in, DisparityMethod::kForkJoin))
          .worst_case -
      fault_delta(in);

  sim::MonteCarloOptions mopt;
  mopt.sim.duration = horizon;
  mopt.sim.warmup = warmup;
  mopt.sim.exec_model = ExecTimeModel::kUniform;
  mopt.sim.max_jobs = in.cfg.max_sim_jobs;
  mopt.first_seed = in.cfg.sim_seed;
  mopt.replications = kReplications;
  // Single-threaded in the probe (thread-count invariance of the driver
  // is pinned separately in tests); keeps the smoke run's CPU budget flat.
  mopt.num_threads = 1;
  mopt.observed = {in.task};
  mopt.bounds = {bound};
  if (in.cfg.fault == FaultInjection::kCorruptMcSamples) {
    mopt.fault_scale_samples = 1000;
  }
  const sim::MonteCarloResult mc = run_monte_carlo(in.g, mopt);
  if (!mc.all_within_bounds) {
    const sim::TaskMonteCarlo& t = mc.tasks.front();
    return violated(
        "monte-carlo disparity sample " + dur(t.worst_sample) +
        " > S-diff bound " + dur(t.bound) + " (" +
        std::to_string(t.bound_violations) + " violating samples over " +
        std::to_string(mc.replications) + " replications, first_seed " +
        std::to_string(in.cfg.sim_seed) + ")");
  }
  return holds();
}

PropertyOutcome check_backward_in_bounds(const Inputs& in) {
  const Duration warmup = sim_warmup(in);
  const Duration horizon = warmup + in.cfg.sim_window;
  if (horizon > in.cfg.max_sim_horizon) {
    return skipped("simulation horizon exceeds max_sim_horizon");
  }
  const Duration delta = fault_delta(in);
  const SimResult res = run_sim(in.g, in.cfg, warmup, horizon, true);
  for (const Path& c : in.chains) {
    // Lemmas 4/5 bound plain (register-channel) chains; FIFO windows are
    // the buffered_shift property's business.
    if (!chain_unbuffered(in.g, c)) continue;
    const BackwardBounds bb = backward_bounds(in.g, c, in.rtm);
    const Duration w = bb.wcbt - delta;
    const BackwardMeasurement m =
        measured_backward_times(in.g, res.trace, c, warmup);
    for (const Duration len : m.lengths) {
      if (len < bb.bcbt || len > w) {
        return violated("measured backward time " + dur(len) +
                        " outside [B, W] = [" + dur(bb.bcbt) + ", " + dur(w) +
                        "] on chain " + chain_str(in.g, c));
      }
    }
  }
  return holds();
}

/// LET twin of the instance: identical graph with every task flipped to
/// LET communication, making the exact oracle applicable.
TaskGraph let_twin(const TaskGraph& g) {
  TaskGraph t = g;
  t.set_comm_semantics(CommSemantics::kLet);
  return t;
}

bool closure_has_jitter(const TaskGraph& g, TaskId task) {
  for (const TaskId id : ancestors(g, task)) {
    if (g.task(id).jitter != Duration::zero()) return true;
  }
  return false;
}

PropertyOutcome check_exact_within_bound(const Inputs& in) {
  if (closure_has_jitter(in.g, in.task)) {
    return skipped("exact oracle needs a jitter-free closure");
  }
  const TaskGraph let = let_twin(in.g);
  const RtaResult rta = analyze_response_times(let);
  if (!rta.all_schedulable) return skipped("LET twin unschedulable");
  const Duration bound =
      analyze_time_disparity(let, in.task, rta.response_time,
                             disparity_options(in, DisparityMethod::kForkJoin))
          .worst_case -
      fault_delta(in);
  const ExactLetResult exact =
      exact_let_disparity(let, in.task, in.cfg.path_cap, in.cfg.max_releases);
  if (exact.worst_disparity > bound) {
    return violated("exact LET disparity " + dur(exact.worst_disparity) +
                    " > S-diff bound " + dur(bound) + " (worst release " +
                    dur(exact.worst_release) + ")");
  }
  return holds();
}

PropertyOutcome check_exact_matches_sim(const Inputs& in) {
  if (closure_has_jitter(in.g, in.task)) {
    return skipped("exact oracle needs a jitter-free closure");
  }
  const TaskGraph let = let_twin(in.g);
  const RtaResult rta = analyze_response_times(let);
  // LET publishes fire at the deadline only if every closure job finishes
  // by it; otherwise the run-time behavior legitimately diverges from the
  // oracle's arithmetic.
  if (!rta.all_schedulable) return skipped("LET twin unschedulable");

  std::vector<std::int64_t> periods;
  for (const TaskId id : ancestors(let, in.task)) {
    periods.push_back(let.task(id).period.count());
  }
  const Duration hyper = hyperperiod(periods.data(), periods.size());
  const Task& analyzed = let.task(in.task);
  if (static_cast<std::size_t>(floor_div(hyper, analyzed.period)) >
      in.cfg.max_releases) {
    return skipped("hyperperiod spans too many releases", /*capacity=*/true);
  }
  const Duration warmup =
      exact_warmup_horizon(let, in.task, in.cfg.path_cap) + hyper;
  // One extra hyperperiod of measurement covers every steady-state phase
  // the oracle scans, plus one analyzed period of slack for the release
  // at the window edge.
  const Duration horizon = warmup + hyper + analyzed.period;
  if (horizon > in.cfg.max_sim_horizon) {
    return skipped("simulation horizon exceeds max_sim_horizon");
  }

  const ExactLetResult exact =
      exact_let_disparity(let, in.task, in.cfg.path_cap, in.cfg.max_releases);
  const SimResult res = run_sim(let, in.cfg, warmup, horizon, false);
  if (res.max_disparity[in.task] != exact.worst_disparity) {
    return violated("LET simulation max disparity " +
                    dur(res.max_disparity[in.task]) + " != exact oracle " +
                    dur(exact.worst_disparity));
  }
  return holds();
}

PropertyOutcome check_buffered_shift(const Inputs& in) {
  for (const Path& c : in.chains) {
    if (!head_channel_unbuffered(in.g, c)) continue;
    const BackwardBounds base = backward_bounds(in.g, c, in.rtm);
    const Duration t_head = in.g.task(c.front()).period;
    for (const int n : {2, 3}) {
      const BackwardBounds b = buffered_backward_bounds(in.g, c, in.rtm, n);
      const Duration shift = t_head * (n - 1);
      if (b.wcbt != base.wcbt + shift || b.bcbt != base.bcbt + shift) {
        return violated("Lemma 6 shift mismatch on " + chain_str(in.g, c) +
                        " (n=" + std::to_string(n) + "): buffered [" +
                        dur(b.bcbt) + ", " + dur(b.wcbt) + "] vs base+" +
                        dur(shift));
      }
    }
  }
  return holds();
}

PropertyOutcome check_buffer_design_consistent(const Inputs& in) {
  const Path& l = in.chains[0];
  const Path& n = in.chains[1];
  if (!head_channel_unbuffered(in.g, l) || !head_channel_unbuffered(in.g, n)) {
    return skipped("head channel already buffered");
  }
  const BufferDesign d = design_buffer(in.g, l, n, in.rtm);
  if (d.buffer_size < 1) {
    return violated("designed buffer size " + std::to_string(d.buffer_size) +
                    " < 1");
  }
  if (d.shift < Duration::zero() || d.optimized_bound > d.baseline_bound) {
    return violated("design raises the bound: optimized " +
                    dur(d.optimized_bound) + " vs baseline " +
                    dur(d.baseline_bound));
  }
  if (d.optimized_bound != d.baseline_bound - d.shift) {
    return violated("Theorem 3 arithmetic broken: optimized " +
                    dur(d.optimized_bound) + " != baseline " +
                    dur(d.baseline_bound) + " - shift " + dur(d.shift));
  }
  if (d.buffer_size == 1) {
    if (d.shift != Duration::zero()) {
      return violated("trivial design (size 1) with nonzero shift " +
                      dur(d.shift));
    }
  } else {
    const Path& chosen = d.buffer_on_lambda ? l : n;
    if (chosen.size() < 2 || d.from != chosen[0] || d.to != chosen[1]) {
      return violated("buffered channel is not the chosen chain's head hop");
    }
    if (d.shift != in.g.task(d.from).period * (d.buffer_size - 1)) {
      return violated("shift " + dur(d.shift) + " != (n-1)·T(head) for n=" +
                      std::to_string(d.buffer_size));
    }
  }
  return holds();
}

PropertyOutcome check_multi_buffer_safe(const Inputs& in) {
  for (const Path& c : in.chains) {
    if (!head_channel_unbuffered(in.g, c)) {
      return skipped("head channel already buffered");
    }
  }
  const DisparityOptions dopt =
      disparity_options(in, DisparityMethod::kForkJoin);
  const MultiBufferDesign md =
      design_buffers_for_task(in.g, in.task, in.rtm, dopt);
  if (md.optimized_bound > md.baseline_bound) {
    return violated("multi-buffer design raises the bound: " +
                    dur(md.optimized_bound) + " > " + dur(md.baseline_bound));
  }
  const Duration base =
      analyze_time_disparity(in.g, in.task, in.rtm, dopt).worst_case;
  if (md.baseline_bound != base) {
    return violated("multi-buffer baseline " + dur(md.baseline_bound) +
                    " != analyzer bound " + dur(base));
  }
  if (md.channels.empty()) return holds();

  TaskGraph buffered = in.g;
  apply_multi_buffer_design(buffered, md);
  // FIFO sizing does not change release times or execution demand, so the
  // RTA map carries over to the buffered twin unchanged.
  const Duration re =
      analyze_time_disparity(buffered, in.task, in.rtm, dopt).worst_case;
  if (re != md.optimized_bound) {
    return violated("re-analysis of buffered graph " + dur(re) +
                    " != designed optimized bound " + dur(md.optimized_bound));
  }
  const std::vector<Path> bchains =
      enumerate_source_chains(buffered, in.task, in.cfg.path_cap);
  const Inputs bin{buffered, in.task, in.rtm, bchains, in.cfg};
  const Duration warmup = sim_warmup(bin);
  const Duration horizon = warmup + in.cfg.sim_window;
  if (horizon > in.cfg.max_sim_horizon) {
    return skipped("simulation horizon exceeds max_sim_horizon");
  }
  const SimResult res = run_sim(buffered, in.cfg, warmup, horizon, false);
  if (res.max_disparity[in.task] > md.optimized_bound) {
    return violated("buffered simulation disparity " +
                    dur(res.max_disparity[in.task]) +
                    " > optimized bound " + dur(md.optimized_bound));
  }
  return holds();
}

PropertyOutcome check_pair_kernel_matches_reference(const Inputs& in) {
  // The kernel promises *bit-identical* reports, so every field of every
  // pair is compared, at every method × truncation × keep_pairs
  // combination (18 report pairs per draw).
  for (const DisparityMethod m :
       {DisparityMethod::kIndependent, DisparityMethod::kForkJoin}) {
    for (const JointTruncation tr : {JointTruncation::kAuto,
                                     JointTruncation::kAlways,
                                     JointTruncation::kNever}) {
      for (const KeepPairs kp :
           {KeepPairs::kAll, KeepPairs::kWorstOnly, KeepPairs::kTopK}) {
        DisparityOptions opt = disparity_options(in, m);
        opt.truncation = tr;
        opt.keep_pairs = kp;
        opt.top_k = 3;
        const DisparityReport ref =
            analyze_time_disparity(in.g, in.task, in.rtm, opt);
        const DisparityReport ker =
            analyze_time_disparity_kernel(in.g, in.task, in.rtm, opt);
        const std::string combo =
            std::string(m == DisparityMethod::kIndependent ? "P" : "S") +
            "-diff/trunc=" + std::to_string(static_cast<int>(tr)) +
            "/keep=" + std::to_string(static_cast<int>(kp));
        if (ker.worst_case != ref.worst_case) {
          return violated("pair kernel worst_case " + dur(ker.worst_case) +
                          " != reference " + dur(ref.worst_case) + " at " +
                          combo);
        }
        if (ker.chains != ref.chains) {
          return violated("pair kernel chain set differs at " + combo);
        }
        if (ker.pairs.size() != ref.pairs.size()) {
          return violated("pair kernel keeps " +
                          std::to_string(ker.pairs.size()) + " pairs vs " +
                          std::to_string(ref.pairs.size()) + " at " + combo);
        }
        for (std::size_t i = 0; i < ker.pairs.size(); ++i) {
          if (ker.pairs[i].chain_a != ref.pairs[i].chain_a ||
              ker.pairs[i].chain_b != ref.pairs[i].chain_b ||
              ker.pairs[i].bound != ref.pairs[i].bound) {
            return violated(
                "pair kernel pair " + std::to_string(i) + " (" +
                std::to_string(ker.pairs[i].chain_a) + "," +
                std::to_string(ker.pairs[i].chain_b) + ") " +
                dur(ker.pairs[i].bound) + " != reference (" +
                std::to_string(ref.pairs[i].chain_a) + "," +
                std::to_string(ref.pairs[i].chain_b) + ") " +
                dur(ref.pairs[i].bound) + " at " + combo);
          }
        }
      }
    }
  }
  return holds();
}

// --- incremental_matches_fresh ---------------------------------------------

/// Field-wise comparison of a (possibly mutated) engine against the free
/// functions on its *current* graph — exactly what a freshly constructed
/// engine would compute.  `when` labels the mutation-script step.
std::optional<std::string> engine_fresh_divergence(const AnalysisEngine& e,
                                                   TaskId task,
                                                   const ProbeConfig& cfg,
                                                   const std::string& when) {
  const TaskGraph& g = e.graph();
  const RtaResult fresh = analyze_response_times(g, e.options().rta);
  if (e.response_times() != fresh.response_time) {
    return "response_times diverge from fresh RTA " + when;
  }
  // An edit may leave the graph unschedulable (e.g. a priority swap); the
  // WCRT-map parity above is then the whole contract — backward/disparity
  // bounds are undefined without finite WCRTs.
  if (!fresh.all_schedulable) return std::nullopt;
  for (const Edge& edge : g.edges()) {
    const Duration he = e.hop(edge.from, edge.to);
    const Duration hf = hop_bound(g, edge.from, edge.to, fresh.response_time,
                                  HopBoundMethod::kNonPreemptive);
    if (he != hf) {
      return "hop(" + g.task(edge.from).name + ", " + g.task(edge.to).name +
             ") = " + dur(he) + " != fresh " + dur(hf) + " " + when;
    }
  }
  const std::vector<Path> chains =
      enumerate_source_chains(g, task, cfg.path_cap);
  for (const Path& c : chains) {
    const BackwardBounds be = e.chain_bounds(c);
    const BackwardBounds bf = backward_bounds(g, c, fresh.response_time);
    if (be.wcbt != bf.wcbt || be.bcbt != bf.bcbt) {
      return "chain_bounds diverge on " + chain_str(g, c) + " " + when +
             ": engine [" + dur(be.bcbt) + ", " + dur(be.wcbt) +
             "] vs fresh [" + dur(bf.bcbt) + ", " + dur(bf.wcbt) + "]";
    }
  }
  if (chains.size() >= 2) {
    for (const DisparityMethod m :
         {DisparityMethod::kIndependent, DisparityMethod::kForkJoin}) {
      DisparityOptions dopt;
      dopt.method = m;
      dopt.path_cap = cfg.path_cap;
      const DisparityReport re = e.disparity(task, dopt);
      const DisparityReport rf =
          analyze_time_disparity(g, task, fresh.response_time, dopt);
      if (re.worst_case != rf.worst_case || re.chains != rf.chains ||
          re.pairs.size() != rf.pairs.size()) {
        return std::string("disparity (") +
               (m == DisparityMethod::kIndependent ? "P" : "S") +
               "-diff) diverges " + when + ": engine " + dur(re.worst_case) +
               " vs fresh " + dur(rf.worst_case);
      }
      for (std::size_t i = 0; i < re.pairs.size(); ++i) {
        if (re.pairs[i].chain_a != rf.pairs[i].chain_a ||
            re.pairs[i].chain_b != rf.pairs[i].chain_b ||
            re.pairs[i].bound != rf.pairs[i].bound) {
          return "disparity pair " + std::to_string(i) + " diverges " + when;
        }
      }
    }
  }
  return std::nullopt;
}

PropertyOutcome check_incremental_matches_fresh(const Inputs& in) {
  EngineOptions eopt;
  eopt.rta = RtaOptions{};
  eopt.num_threads = 1;
  eopt.fault_skip_edge_invalidation =
      in.cfg.fault == FaultInjection::kSkipInvalidation;
  AnalysisEngine e(in.g, eopt);

  // Warm every cache layer so the script exercises invalidation of live
  // entries, not cold recomputation.
  (void)e.rta();
  (void)e.chains(in.task, in.cfg.path_cap);
  for (const Path& c : in.chains) (void)e.chain_bounds(c);
  for (const DisparityMethod m :
       {DisparityMethod::kIndependent, DisparityMethod::kForkJoin}) {
    (void)e.disparity(in.task, disparity_options(in, m));
  }

  std::optional<std::string> diverged;
  const auto compare = [&](const char* when) {
    if (!diverged) diverged = engine_fresh_divergence(e, in.task, in.cfg, when);
    return diverged.has_value();
  };

  // Step 1: FIFO resize of λ₀'s head channel (§9 row "buffer"); under
  // kSkipInvalidation this is the step that must trip — the stale
  // chain-bound entry misses the Lemma 6 shift (n−1)·T(head) > 0.
  {
    const Path& c = in.chains[0];
    const int old_size = in.g.channel(c[0], c[1]).buffer_size;
    e.set_buffer(c[0], c[1], old_size + 1);
    if (compare("after buffer resize")) return violated(*diverged);
    e.set_buffer(c[0], c[1], old_size);
    if (compare("after buffer revert")) return violated(*diverged);
  }

  // Step 2: WCET decrease on the analyzed task (§9 row "WCET").
  {
    const Task& t = e.graph().task(in.task);
    const Duration bcet = t.bcet;
    const Duration wcet = t.wcet;
    const Duration new_wcet = bcet + (wcet - bcet) / 2;
    if (new_wcet != wcet) {
      e.set_wcet_range(in.task, bcet, new_wcet);
      if (compare("after wcet decrease")) return violated(*diverged);
      e.set_wcet_range(in.task, bcet, wcet);
      if (compare("after wcet revert")) return violated(*diverged);
    }
  }

  // Step 3: period doubling on ν₀'s source (§9 row "period"; lengthening
  // keeps offset/jitter admissible and can only lower utilization).
  {
    const TaskId head = in.chains[1].front();
    const Duration period = e.graph().task(head).period;
    e.set_period(head, period * 2);
    if (compare("after period doubling")) return violated(*diverged);
    e.set_period(head, period);
    if (compare("after period revert")) return violated(*diverged);
  }

  // Step 4: priority swap of two same-ECU tasks, batched as one
  // Transaction (only jointly valid — each half alone collides).
  {
    TaskId a = 0, b = 0;
    bool found = false;
    const TaskGraph& g = e.graph();
    for (TaskId i = 0; i < g.num_tasks() && !found; ++i) {
      if (g.is_source(i)) continue;
      for (TaskId j = i + 1; j < g.num_tasks() && !found; ++j) {
        if (g.is_source(j) || g.task(j).ecu != g.task(i).ecu) continue;
        a = i;
        b = j;
        found = true;
      }
    }
    if (found) {
      const int pa = g.task(a).priority;
      const int pb = g.task(b).priority;
      AnalysisEngine::Transaction txn(e);
      txn.set_priority(a, pb).set_priority(b, pa);
      txn.commit();
      if (compare("after priority swap")) return violated(*diverged);
      AnalysisEngine::Transaction back(e);
      back.set_priority(a, pa).set_priority(b, pb);
      back.commit();
      if (compare("after priority swap revert")) return violated(*diverged);
    }
  }

  // Step 5: offset nudge on λ₀'s source (§9 row "offset": invalidates
  // nothing; the commit must still leave every cache coherent).
  {
    const TaskId head = in.chains[0].front();
    const Duration old_offset = e.graph().task(head).offset;
    e.set_offset(head, e.graph().task(head).period / 2);
    if (compare("after offset nudge")) return violated(*diverged);
    e.set_offset(head, old_offset);
    if (compare("after offset revert")) return violated(*diverged);
  }

  // Step 6: structural edit — add a fresh source→task edge, then remove
  // it (§9 rows "add edge" / "remove edge"; removal exercises the
  // pre-commit descendant closure).
  {
    const TaskGraph& g = e.graph();
    TaskId u = static_cast<TaskId>(g.num_tasks());
    for (const TaskId s : g.sources()) {
      const auto& succ = g.successors(s);
      if (std::find(succ.begin(), succ.end(), in.task) == succ.end()) {
        u = s;
        break;
      }
    }
    if (u != static_cast<TaskId>(g.num_tasks())) {
      e.add_edge(u, in.task);
      if (compare("after add_edge")) return violated(*diverged);
      e.remove_edge(u, in.task);
      if (compare("after remove_edge")) return violated(*diverged);
    }
  }

  return holds();
}

// --- dag_dp_matches_enumeration --------------------------------------------

PropertyOutcome check_dag_dp_matches_enumeration(const Inputs& in) {
  DagDpOptions dpo;
  dpo.fault_drop_source_period =
      in.cfg.fault == FaultInjection::kCorruptDpSummary;

  // The DP's relaxation target is fixed: kIndependent on the full chains
  // (DESIGN.md §10), independent of the requested method × truncation.
  DisparityOptions relax_opt = disparity_options(in, DisparityMethod::kIndependent);
  relax_opt.truncation = JointTruncation::kNever;
  relax_opt.keep_pairs = KeepPairs::kWorstOnly;
  const DisparityReport relax =
      analyze_time_disparity_kernel(in.g, in.task, in.rtm, relax_opt);

  for (const DisparityMethod m :
       {DisparityMethod::kIndependent, DisparityMethod::kForkJoin}) {
    for (const JointTruncation tr : {JointTruncation::kAuto,
                                     JointTruncation::kAlways,
                                     JointTruncation::kNever}) {
      DisparityOptions opt = disparity_options(in, m);
      opt.truncation = tr;
      opt.keep_pairs = KeepPairs::kWorstOnly;
      const std::string combo =
          std::string(m == DisparityMethod::kIndependent ? "P" : "S") +
          "-diff/trunc=" + std::to_string(static_cast<int>(tr));

      const DisparityReport ref =
          analyze_time_disparity_kernel(in.g, in.task, in.rtm, opt);
      const DisparityReport dp =
          analyze_time_disparity_dag_dp(in.g, in.task, in.rtm, opt, dpo);

      if (dp.chain_count_saturated || dp.chain_count != in.chains.size()) {
        return violated("DP chain_count " + std::to_string(dp.chain_count) +
                        (dp.chain_count_saturated ? " (saturated)" : "") +
                        " != enumerated |P| " +
                        std::to_string(in.chains.size()) + " at " + combo);
      }
      if (dp.exact) {
        // Exactness claim: bit-identical to the enumerating kernel at the
        // *requested* combination.
        if (dp.worst_case != ref.worst_case) {
          return violated("exact DP worst_case " + dur(dp.worst_case) +
                          " != kernel " + dur(ref.worst_case) + " at " +
                          combo);
        }
      } else {
        // Relaxation contract: equal by construction to the kIndependent +
        // kNever enumeration, hence never below a kNever reference
        // (Theorem 2 is clamped by Theorem 1 on the full chains).
        if (dp.worst_case != relax.worst_case) {
          return violated("relaxed DP worst_case " + dur(dp.worst_case) +
                          " != P-diff/kNever kernel " +
                          dur(relax.worst_case) + " at " + combo);
        }
        if (tr == JointTruncation::kNever && dp.worst_case < ref.worst_case) {
          return violated("relaxed DP worst_case " + dur(dp.worst_case) +
                          " below kernel " + dur(ref.worst_case) + " at " +
                          combo);
        }
      }

      // The routed front door must always land on the exact result for
      // enumerable instances: DP when its claim holds, kernel fallback
      // otherwise.
      DisparityOptions bopt = opt;
      bopt.backend = DisparityBackend::kDagDp;
      const DisparityReport routed = analyze_time_disparity_backend(
          in.g, in.task, in.rtm, bopt, nullptr, dpo);
      const DisparityBackend want =
          dp.exact ? DisparityBackend::kDagDp : DisparityBackend::kEnumerate;
      if (routed.backend != want) {
        return violated(std::string("routed backend ") +
                        (routed.backend == DisparityBackend::kDagDp
                             ? "dag_dp"
                             : "enumerate") +
                        " != expected " +
                        (want == DisparityBackend::kDagDp ? "dag_dp"
                                                          : "enumerate") +
                        " at " + combo);
      }
      if (routed.worst_case != ref.worst_case) {
        return violated("routed worst_case " + dur(routed.worst_case) +
                        " != kernel " + dur(ref.worst_case) + " at " + combo);
      }
    }
  }
  return holds();
}

// --- explored_configs_revalidate -------------------------------------------

PropertyOutcome check_explored_configs_revalidate(const Inputs& in) {
  explore::ExploreOptions eopt;
  eopt.strategy = explore::Strategy::kPortfolio;
  eopt.seed = in.cfg.sim_seed;
  eopt.moves_per_restart = 48;
  eopt.restarts = 2;
  eopt.num_threads = 1;
  eopt.path_cap = in.cfg.path_cap;
  eopt.fault_skip_rollback =
      in.cfg.fault == FaultInjection::kSkipExploreRollback;

  AnalysisEngine engine(in.g);
  if (!engine.schedulable()) {
    return skipped("unschedulable under the engine's own RTA");
  }
  const explore::ExploreResult result =
      explore::explore(engine, in.task, eopt);
  for (const explore::ArchiveEntry& e : result.archive) {
    const explore::Objectives replayed =
        explore::replay_objectives(in.g, e, in.task, eopt);
    if (!(replayed == e.objectives)) {
      return violated(
          "archive entry (key " + std::to_string(e.key) + ", " +
          std::to_string(e.delta.size()) + " edits) archived disparity " +
          dur(e.objectives.disparity) + "/age " + dur(e.objectives.data_age) +
          "/memory " + std::to_string(e.objectives.memory) +
          " but replays to disparity " + dur(replayed.disparity) + "/age " +
          dur(replayed.data_age) + "/memory " +
          std::to_string(replayed.memory));
    }
  }
  return holds();
}

// --- mixed-policy properties -----------------------------------------------

/// Deterministic discipline draw for one ECU: a splitmix64 finalizer over
/// (seed, ecu).  A pure function of the probe config and the ECU id, so a
/// shrink candidate (same cfg, subset of tasks) re-derives the identical
/// per-ECU mix and fixture replays stay exact.
SchedPolicy seeded_policy(std::uint64_t seed, EcuId ecu) {
  std::uint64_t x =
      seed ^ (0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(ecu) + 1));
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  switch (x % 3) {
    case 0: return SchedPolicy::kNonPreemptive;
    case 1: return SchedPolicy::kPreemptive;
    default: return SchedPolicy::kEdf;
  }
}

/// The graph with every occupied ECU flipped to its seed-derived
/// discipline — the differential subject of the mixed-policy properties.
TaskGraph policy_twin(const TaskGraph& g, std::uint64_t seed) {
  TaskGraph twin = g;
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    const EcuId ecu = g.task(id).ecu;
    if (ecu == kNoEcu) continue;
    twin.set_policy(ecu, seeded_policy(seed, ecu));
  }
  return twin;
}

/// sim_warmup for the policy twin: same derivation, but from the twin's
/// own (policy-routed) backward bounds and response times.
Duration twin_warmup(const Inputs& in, const TaskGraph& twin,
                     const ResponseTimeMap& rtm) {
  Duration w = Duration::zero();
  for (const Path& c : in.chains) {
    w = std::max(w, backward_bounds(twin, c, rtm).wcbt);
  }
  return w + exact_warmup_horizon(twin, in.task, in.cfg.path_cap);
}

PropertyOutcome check_rta_policy_matches_sim(const Inputs& in) {
  const TaskGraph twin = policy_twin(in.g, in.cfg.sim_seed);
  RtaOptions ropt;
  ropt.fault_drop_largest_hp =
      in.cfg.fault == FaultInjection::kDropPreemptiveInterference;
  ropt.fault_edf_undercount = in.cfg.fault == FaultInjection::kEdfUndercount;
  const RtaResult rta = analyze_response_times(twin, ropt);
  if (!rta.all_schedulable) {
    return skipped("policy twin unschedulable under mixed-policy RTA");
  }
  const Duration warmup = twin_warmup(in, twin, rta.response_time);
  const Duration horizon = warmup + in.cfg.sim_window;
  if (horizon > in.cfg.max_sim_horizon) {
    return skipped("simulation horizon exceeds max_sim_horizon");
  }
  const SimResult res = run_sim(twin, in.cfg, warmup, horizon, false);
  for (TaskId id = 0; id < twin.num_tasks(); ++id) {
    if (res.max_response_time[id] > rta.response_time[id]) {
      const char* policy =
          twin.task(id).ecu == kNoEcu
              ? "source"
              : (twin.policy(twin.task(id).ecu) == SchedPolicy::kEdf
                     ? "edf"
                     : (twin.policy(twin.task(id).ecu) ==
                                SchedPolicy::kPreemptive
                            ? "preemptive"
                            : "nonpreemptive"));
      return violated("simulated response time " +
                      dur(res.max_response_time[id]) + " of task '" +
                      twin.task(id).name + "' (" + policy + ") > WCRT " +
                      dur(rta.response_time[id]) + " (seed " +
                      std::to_string(in.cfg.sim_seed) + ")");
    }
  }
  return holds();
}

PropertyOutcome check_mixed_policy_disparity_within_bounds(const Inputs& in) {
  const TaskGraph twin = policy_twin(in.g, in.cfg.sim_seed);
  const RtaResult rta = analyze_response_times(twin);
  if (!rta.all_schedulable) {
    return skipped("policy twin unschedulable under mixed-policy RTA");
  }
  const Duration warmup = twin_warmup(in, twin, rta.response_time);
  const Duration horizon = warmup + in.cfg.sim_window;
  if (horizon > in.cfg.max_sim_horizon) {
    return skipped("simulation horizon exceeds max_sim_horizon");
  }
  const Duration bound =
      analyze_time_disparity(twin, in.task, rta.response_time,
                             disparity_options(in, DisparityMethod::kForkJoin))
          .worst_case;
  const SimResult res = run_sim(twin, in.cfg, warmup, horizon, false);
  if (res.max_disparity[in.task] > bound) {
    return violated("mixed-policy simulated disparity " +
                    dur(res.max_disparity[in.task]) + " > S-diff bound " +
                    dur(bound) + " (seed " +
                    std::to_string(in.cfg.sim_seed) + ")");
  }
  return holds();
}

PropertyOutcome dispatch(Property p, const Inputs& in) {
  switch (p) {
    case Property::kEngineMatchesFree: return check_engine_matches_free(in);
    case Property::kBoundsOrdered: return check_bounds_ordered(in);
    case Property::kSdiffLeqPdiff: return check_sdiff_leq_pdiff(in);
    case Property::kSimWithinBound: return check_sim_within_bound(in);
    case Property::kBackwardInBounds: return check_backward_in_bounds(in);
    case Property::kExactWithinBound: return check_exact_within_bound(in);
    case Property::kExactMatchesSim: return check_exact_matches_sim(in);
    case Property::kBufferedShift: return check_buffered_shift(in);
    case Property::kBufferDesignConsistent:
      return check_buffer_design_consistent(in);
    case Property::kMultiBufferSafe: return check_multi_buffer_safe(in);
    case Property::kPairKernelMatchesReference:
      return check_pair_kernel_matches_reference(in);
    case Property::kIncrementalMatchesFresh:
      return check_incremental_matches_fresh(in);
    case Property::kDagDpMatchesEnumeration:
      return check_dag_dp_matches_enumeration(in);
    case Property::kMonteCarloWithinBounds:
      return check_montecarlo_within_bounds(in);
    case Property::kExploredConfigsRevalidate:
      return check_explored_configs_revalidate(in);
    case Property::kRtaPolicyMatchesSim:
      return check_rta_policy_matches_sim(in);
    case Property::kMixedPolicyDisparityWithinBounds:
      return check_mixed_policy_disparity_within_bounds(in);
  }
  throw Error("check_property: unknown property");
}

}  // namespace

const char* property_name(Property p) {
  return kPropertyNames[static_cast<std::size_t>(p)];
}

std::optional<Property> property_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kNumProperties; ++i) {
    if (name == kPropertyNames[i]) return kAllProperties[i];
  }
  return std::nullopt;
}

PropertyOutcome check_property(Property p, const TaskGraph& g, TaskId task,
                               const ProbeConfig& cfg) {
  obs::Span span("verify", property_name(p));
  try {
    if (task >= g.num_tasks()) return skipped("analyzed task id out of range");
    g.validate();
    const RtaResult rta = analyze_response_times(g);
    if (!rta.all_schedulable) return skipped("unschedulable");
    const std::vector<Path> chains =
        enumerate_source_chains(g, task, cfg.path_cap);
    if (chains.size() < 2) return skipped("fewer than two source chains");
    const Inputs in{g, task, rta.response_time, chains, cfg};
    return dispatch(p, in);
  } catch (const CapacityError& e) {
    return skipped(e.what(), /*capacity=*/true);
  } catch (const PreconditionError& e) {
    // The harness stepped outside some function's contract (e.g. a shrink
    // candidate with a shape an analysis rejects) — not a library bug.
    return skipped(std::string("precondition: ") + e.what());
  } catch (const std::exception& e) {
    // An InvariantError (or any other unexpected throw) on a valid graph
    // IS a finding: some internal assertion fired where math says it
    // cannot.
    return violated(std::string("analysis threw: ") + e.what());
  }
}

PropertyChecker::PropertyChecker(CheckerOptions opt) : opt_(std::move(opt)) {
  CETA_EXPECTS(opt_.min_tasks >= 3 && opt_.min_tasks <= opt_.max_tasks,
               "PropertyChecker: need 3 <= min_tasks <= max_tasks");
  CETA_EXPECTS(opt_.offset_probes >= 1, "PropertyChecker: need >= 1 probe");
}

namespace {

/// Cycle the three evaluation topologies so every campaign exercises
/// G(n,m) DAGs, Fig.-1 funnels and merged chain pairs.
TaskGraph draw_topology(std::size_t trial, std::size_t min_tasks,
                        std::size_t max_tasks, Rng& rng) {
  const std::size_t n = static_cast<std::size_t>(rng.uniform_int(
      static_cast<std::int64_t>(min_tasks),
      static_cast<std::int64_t>(max_tasks)));
  switch (trial % 3) {
    case 0: {
      GnmDagOptions opt;
      opt.num_tasks = n;
      return gnm_random_dag(opt, rng);
    }
    case 1: {
      FunnelDagOptions opt;
      opt.num_tasks = std::max<std::size_t>(4, n);
      return funnel_random_dag(opt, rng);
    }
    default: {
      const std::size_t len_a =
          static_cast<std::size_t>(rng.uniform_int(2, 5));
      const std::size_t len_b =
          static_cast<std::size_t>(rng.uniform_int(2, 5));
      return merge_chains_at_sink(len_a, len_b);
    }
  }
}

}  // namespace

void PropertyChecker::check_instance(const TaskGraph& g, TaskId task,
                                     const ProbeConfig& cfg,
                                     CheckerReport& report) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  for (const Property p : kAllProperties) {
    const PropertyOutcome out = check_property(p, g, task, cfg);
    ++report.stats.properties_checked;
    reg.counter("verify.properties").add();
    if (out.status == PropertyOutcome::Status::kSkipped) {
      if (out.capacity_skip) {
        ++report.stats.skipped_capacity;
        reg.counter("verify.skips.capacity").add();
      } else {
        ++report.stats.skipped_other;
      }
      continue;
    }
    if (out.status != PropertyOutcome::Status::kViolated) continue;
    reg.counter("verify.violations").add();
    Violation v;
    v.property = p;
    v.task = task;
    v.sim_seed = cfg.sim_seed;
    v.detail = out.detail;
    v.original_tasks = g.num_tasks();
    if (opt_.shrink) {
      const ShrinkResult s = shrink_counterexample(
          g, task, [&](const TaskGraph& cand, TaskId cand_task) {
            return check_property(p, cand, cand_task, cfg).violated();
          });
      v.graph = s.graph;
      v.task = s.task;
      v.shrink_rounds = s.rounds;
    } else {
      v.graph = g;
    }
    report.violations.push_back(std::move(v));
    if (report.violations.size() >= opt_.max_violations) return;
  }
}

CheckerReport PropertyChecker::run() {
  obs::Span span("verify", "checker.run");
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  Rng rng(opt_.seed);
  CheckerReport report;
  for (std::size_t trial = 0; trial < opt_.trials; ++trial) {
    ++report.stats.trials;
    reg.counter("verify.trials").add();
    TaskGraph g = draw_topology(trial, opt_.min_tasks, opt_.max_tasks, rng);
    WatersAssignOptions wopt;
    wopt.num_ecus = opt_.num_ecus;
    assign_waters_parameters(g, wopt, rng);

    const TaskId sink = g.sinks().front();
    const std::size_t n_chains = count_source_chains(g, sink);
    if (n_chains < 2) {
      ++report.stats.skipped_degenerate;
      continue;
    }
    if (n_chains > opt_.probe.path_cap) {
      ++report.stats.skipped_capacity;
      reg.counter("verify.skips.capacity").add();
      continue;
    }
    if (!analyze_response_times(g).all_schedulable) {
      ++report.stats.skipped_unschedulable;
      continue;
    }
    ++report.stats.graphs_checked;
    reg.counter("verify.graphs").add();

    for (std::size_t probe = 0; probe < opt_.offset_probes; ++probe) {
      Rng offset_rng = rng.split();
      randomize_offsets(g, offset_rng);
      ProbeConfig cfg = opt_.probe;
      cfg.sim_seed = offset_rng.seed();
      check_instance(g, sink, cfg, report);
      if (report.violations.size() >= opt_.max_violations) return report;
    }
  }
  return report;
}

}  // namespace ceta::verify
