// Reloadable counterexample fixtures.
//
// A fixture is the plain-text graph format (graph/serialize.hpp) preceded
// by `# key: value` directives that make the violation replayable:
//
//   # ceta-fixture v1
//   # property: sim_within_bound
//   # task: sink
//   # sim-seed: 12345
//   # detail: sim 12.4ms > S-diff 11.1ms
//   task s0 0 0 20000000 0 0 -1
//   ...
//   edge s0 sink
//
// The directive lines are ordinary comments to graph_from_text, so any
// tool that understands the graph format can load a fixture as-is; the
// loader here additionally parses the directives so tests can re-run the
// exact failing check (tests/test_verify.cpp, fixtures/ regression files).

#pragma once

#include <string>

#include "graph/task_graph.hpp"
#include "verify/property_checker.hpp"

namespace ceta::verify {

struct Fixture {
  Property property = Property::kBoundsOrdered;
  std::string task;  ///< analyzed task, by name
  std::uint64_t sim_seed = 1;
  std::string detail;
  TaskGraph graph;
};

std::string to_text(const Fixture& f);
/// Parse a fixture; throws PreconditionError on a missing/unknown
/// directive or malformed graph text.
Fixture fixture_from_text(const std::string& text);

/// Resolve the fixture's task name in its graph; throws if absent.
TaskId fixture_task(const Fixture& f);

Fixture fixture_of(const Violation& v);

/// Human-readable multi-line account of one violation (property, detail,
/// shrink statistics, the full shrunken graph).
std::string violation_report(const Violation& v);

/// Write `v` as `<dir>/ceta_violation_<index>_<property>.txt`, creating
/// `dir` if needed; returns the path.
std::string write_fixture_file(const std::string& dir, const Violation& v,
                               std::size_t index);

}  // namespace ceta::verify
