#include "verify/fixture.hpp"

#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "graph/serialize.hpp"

namespace ceta::verify {

namespace {

/// Directive lines must stay single-line comments for graph_from_text;
/// squash any newline a detail string might carry.
std::string one_line(std::string s) {
  for (char& c : s) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

}  // namespace

std::string to_text(const Fixture& f) {
  std::ostringstream os;
  os << "# ceta-fixture v1\n";
  os << "# property: " << property_name(f.property) << '\n';
  os << "# task: " << f.task << '\n';
  os << "# sim-seed: " << f.sim_seed << '\n';
  if (!f.detail.empty()) os << "# detail: " << one_line(f.detail) << '\n';
  os << ceta::to_text(f.graph);
  return os.str();
}

Fixture fixture_from_text(const std::string& text) {
  Fixture f;
  bool saw_header = false, saw_property = false, saw_task = false;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("# ceta-fixture", 0) == 0) {
      saw_header = true;
      continue;
    }
    const auto directive = [&](const char* key) -> std::optional<std::string> {
      const std::string prefix = std::string("# ") + key + ": ";
      if (line.rfind(prefix, 0) != 0) return std::nullopt;
      return line.substr(prefix.size());
    };
    if (const auto prop = directive("property")) {
      const std::optional<Property> p = property_from_name(*prop);
      if (!p) {
        throw PreconditionError("fixture_from_text: unknown property '" +
                                *prop + "'");
      }
      f.property = *p;
      saw_property = true;
    } else if (const auto task = directive("task")) {
      f.task = *task;
      saw_task = true;
    } else if (const auto seed = directive("sim-seed")) {
      try {
        f.sim_seed = std::stoull(*seed);
      } catch (const std::exception&) {
        throw PreconditionError("fixture_from_text: malformed sim-seed '" +
                                *seed + "'");
      }
    } else if (const auto detail = directive("detail")) {
      f.detail = *detail;
    }
  }
  if (!saw_header) {
    throw PreconditionError("fixture_from_text: missing '# ceta-fixture' header");
  }
  if (!saw_property || !saw_task) {
    throw PreconditionError(
        "fixture_from_text: missing 'property' or 'task' directive");
  }
  f.graph = graph_from_text(text);  // directives are plain comments to it
  return f;
}

TaskId fixture_task(const Fixture& f) {
  for (TaskId id = 0; id < f.graph.num_tasks(); ++id) {
    if (f.graph.task(id).name == f.task) return id;
  }
  throw PreconditionError("fixture_task: no task named '" + f.task +
                          "' in the fixture graph");
}

Fixture fixture_of(const Violation& v) {
  Fixture f;
  f.property = v.property;
  f.task = v.graph.task(v.task).name;
  f.sim_seed = v.sim_seed;
  f.detail = v.detail;
  f.graph = v.graph;
  return f;
}

std::string violation_report(const Violation& v) {
  std::ostringstream os;
  os << "INVARIANT VIOLATION: " << property_name(v.property) << '\n';
  os << "  detail:    " << v.detail << '\n';
  os << "  task:      " << v.graph.task(v.task).name << '\n';
  os << "  sim seed:  " << v.sim_seed << '\n';
  os << "  shrunk:    " << v.original_tasks << " -> " << v.graph.num_tasks()
     << " tasks (" << v.shrink_rounds << " rounds)\n";
  os << "  graph:\n";
  std::istringstream gtext(ceta::to_text(v.graph));
  std::string line;
  while (std::getline(gtext, line)) os << "    " << line << '\n';
  return os.str();
}

std::string write_fixture_file(const std::string& dir, const Violation& v,
                               std::size_t index) {
  std::filesystem::create_directories(dir);
  const std::string path = (std::filesystem::path(dir) /
                            ("ceta_violation_" + std::to_string(index) + "_" +
                             property_name(v.property) + ".txt"))
                               .string();
  std::ofstream out(path);
  if (!out) throw Error("write_fixture_file: cannot open '" + path + "'");
  out << to_text(fixture_of(v));
  if (!out) throw Error("write_fixture_file: write failed for '" + path + "'");
  return path;
}

}  // namespace ceta::verify
