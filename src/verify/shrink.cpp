#include "verify/shrink.hpp"

#include <optional>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/math.hpp"
#include "graph/algorithms.hpp"

namespace ceta::verify {

namespace {

struct Candidate {
  TaskGraph graph;
  TaskId task = 0;
};

/// Tasks that lost their last predecessor in a rebuild become sources and
/// must satisfy the source contract (zero execution time, no ECU).
void repair_new_sources(TaskGraph& g, const std::vector<bool>& was_source) {
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    if (g.is_source(id) && !was_source[id]) {
      Task& t = g.task(id);
      t.wcet = Duration::zero();
      t.bcet = Duration::zero();
      t.jitter = Duration::zero();
      t.ecu = kNoEcu;
    }
  }
}

/// Copy of `g` without the flagged tasks/edges (drop_edge indexed like
/// g.edges(); may be empty for "keep all").  nullopt if the analyzed task
/// itself was dropped.
std::optional<Candidate> rebuild(const TaskGraph& g, TaskId target,
                                 const std::vector<bool>& drop_task,
                                 const std::vector<bool>& drop_edge) {
  if (drop_task[target]) return std::nullopt;
  std::vector<TaskId> map(g.num_tasks(), kNoTask);
  TaskGraph out;
  std::vector<bool> was_source;
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    if (drop_task[id]) continue;
    map[id] = out.add_task(g.task(id));
    was_source.push_back(g.is_source(id));
  }
  const std::vector<Edge>& edges = g.edges();
  for (std::size_t ei = 0; ei < edges.size(); ++ei) {
    if (ei < drop_edge.size() && drop_edge[ei]) continue;
    const Edge& e = edges[ei];
    if (map[e.from] == kNoTask || map[e.to] == kNoTask) continue;
    out.add_edge(map[e.from], map[e.to], e.channel);
  }
  repair_new_sources(out, was_source);
  return Candidate{std::move(out), map[target]};
}

/// Wraps the caller's predicate with the attempt budget and the validity
/// screen: an invalid candidate, or one on which the predicate throws,
/// does not count as still-failing.
class Shrinker {
 public:
  Shrinker(const FailingPredicate& pred, std::size_t max_attempts)
      : pred_(pred), max_attempts_(max_attempts) {}

  bool fails(const Candidate& c) {
    if (exhausted()) return false;
    ++attempts_;
    try {
      c.graph.validate();
      return pred_(c.graph, c.task);
    } catch (...) {
      return false;
    }
  }

  bool exhausted() const { return attempts_ >= max_attempts_; }
  std::size_t attempts() const { return attempts_; }

 private:
  const FailingPredicate& pred_;
  std::size_t max_attempts_;
  std::size_t attempts_ = 0;
};

/// One shot: cut everything outside the analyzed task's ancestor closure
/// (the analysis depends on nothing else, so this almost always sticks).
bool pass_restrict_to_ancestors(TaskGraph& g, TaskId& task, Shrinker& sh) {
  std::vector<bool> drop(g.num_tasks(), true);
  for (const TaskId id : ancestors(g, task)) drop[id] = false;
  bool any = false;
  for (TaskId id = 0; id < g.num_tasks(); ++id) any = any || drop[id];
  if (!any) return false;
  std::optional<Candidate> cand = rebuild(g, task, drop, {});
  if (cand && sh.fails(*cand)) {
    g = std::move(cand->graph);
    task = cand->task;
    return true;
  }
  return false;
}

bool pass_drop_tasks(TaskGraph& g, TaskId& task, Shrinker& sh) {
  bool improved = false;
  bool retry = true;
  while (retry && !sh.exhausted()) {
    retry = false;
    for (TaskId victim = 0; victim < g.num_tasks(); ++victim) {
      if (victim == task) continue;
      std::vector<bool> drop(g.num_tasks(), false);
      drop[victim] = true;
      std::optional<Candidate> cand = rebuild(g, task, drop, {});
      if (cand && sh.fails(*cand)) {
        g = std::move(cand->graph);
        task = cand->task;
        improved = true;
        retry = true;  // ids shifted; rescan from the top
        break;
      }
    }
  }
  return improved;
}

bool pass_drop_edges(TaskGraph& g, TaskId& task, Shrinker& sh) {
  bool improved = false;
  bool retry = true;
  while (retry && !sh.exhausted()) {
    retry = false;
    std::vector<bool> drop_task(g.num_tasks(), false);
    for (std::size_t ei = 0; ei < g.num_edges(); ++ei) {
      std::vector<bool> drop_edge(g.num_edges(), false);
      drop_edge[ei] = true;
      std::optional<Candidate> cand = rebuild(g, task, drop_task, drop_edge);
      if (cand && sh.fails(*cand)) {
        g = std::move(cand->graph);
        task = cand->task;
        improved = true;
        retry = true;  // edge indices shifted; rescan
        break;
      }
    }
  }
  return improved;
}

bool pass_shrink_params(TaskGraph& g, TaskId task, Shrinker& sh) {
  bool improved = false;
  const auto attempt = [&](auto&& mutate) {
    if (sh.exhausted()) return;
    TaskGraph copy = g;
    mutate(copy);
    Candidate cand{std::move(copy), task};
    if (sh.fails(cand)) {
      g = std::move(cand.graph);
      improved = true;
    }
  };
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    if (g.task(id).period.count() >= 2) {
      attempt([id](TaskGraph& c) {
        Task& t = c.task(id);
        t.period = Duration::ns(t.period.count() / 2);
        t.offset = Duration::ns(floor_mod(t.offset.count(), t.period.count()));
      });
    }
    if (g.task(id).wcet > Duration::zero() && !g.is_source(id)) {
      attempt([id](TaskGraph& c) {
        Task& t = c.task(id);
        t.wcet = Duration::ns(t.wcet.count() / 2);
        t.bcet = std::min(t.bcet, t.wcet);
      });
    }
    if (g.task(id).offset != Duration::zero()) {
      attempt([id](TaskGraph& c) { c.task(id).offset = Duration::zero(); });
    }
    if (g.task(id).jitter != Duration::zero()) {
      attempt([id](TaskGraph& c) { c.task(id).jitter = Duration::zero(); });
    }
  }
  for (const Edge& e : std::vector<Edge>(g.edges())) {
    if (e.channel.buffer_size > 1) {
      attempt([&e](TaskGraph& c) { c.set_buffer_size(e.from, e.to, 1); });
      if (g.channel(e.from, e.to).buffer_size > 2) {
        attempt([&e, &g](TaskGraph& c) {
          c.set_buffer_size(e.from, e.to,
                            g.channel(e.from, e.to).buffer_size / 2);
        });
      }
    }
  }
  return improved;
}

}  // namespace

ShrinkResult shrink_counterexample(TaskGraph g, TaskId task,
                                   const FailingPredicate& still_fails,
                                   std::size_t max_attempts) {
  CETA_EXPECTS(task < g.num_tasks(), "shrink_counterexample: bad task id");
  Shrinker sh(still_fails, max_attempts);
  ShrinkResult out;
  pass_restrict_to_ancestors(g, task, sh);
  bool progress = true;
  while (progress && !sh.exhausted() && out.rounds < 40) {
    ++out.rounds;
    progress = false;
    progress = pass_drop_tasks(g, task, sh) || progress;
    progress = pass_drop_edges(g, task, sh) || progress;
    progress = pass_shrink_params(g, task, sh) || progress;
  }
  out.graph = std::move(g);
  out.task = task;
  out.attempts = sh.attempts();
  return out;
}

}  // namespace ceta::verify
