// verify_bounds — the differential-verification CLI.
//
//   verify_bounds [--trials N] [--seed N] [--probes N]
//                 [--min-tasks N] [--max-tasks N] [--ecus N]
//                 [--shrink | --no-shrink] [--fixture-dir PATH]
//                 [--inject-fault] [--inject-dp-fault] [--inject-mc-fault]
//                 [--inject-explore-fault] [--inject-pfp-fault]
//                 [--inject-edf-fault]
//                 [--trace PATH] [--metrics PATH] [--quiet]
//
// Draws N seeded random WATERS instances, checks every cross-implementation
// invariant (see DESIGN.md §7) on each, shrinks any violation to a minimal
// graph and writes it as a reloadable fixture.  Exit status: 0 when every
// drawn graph satisfied every invariant, 1 on violations, 2 on usage
// errors.  The fixed-seed ctest smoke run is exactly
// `verify_bounds --trials 200 --seed 42`.
//
// --inject-fault enables the test-only off-by-one mutation (one head
// period subtracted from every analytical upper bound) to demonstrate the
// harness catching and shrinking an unsound bound; it makes a nonzero
// exit the expected outcome.  --inject-stale-cache instead breaks the
// engine's buffer-edge invalidation (EngineOptions::
// fault_skip_edge_invalidation), which the incremental_matches_fresh
// property must catch; nonzero exit expected likewise.  --inject-dp-fault
// corrupts the DAG-DP combination step (DagDpOptions::
// fault_drop_source_period), which dag_dp_matches_enumeration must catch.
// --inject-mc-fault inflates every Monte-Carlo disparity sample 1000x
// (MonteCarloOptions::fault_scale_samples), which
// montecarlo_within_bounds must catch.  --inject-explore-fault makes the
// design-space explorer skip one engine rollback
// (ExploreOptions::fault_skip_rollback), which
// explored_configs_revalidate must catch.  --inject-pfp-fault drops the
// largest higher-priority interferer from every preemptive busy-window
// fixpoint (RtaOptions::fault_drop_largest_hp) and --inject-edf-fault
// shaves one job off every EDF deadline-capped interference term
// (RtaOptions::fault_edf_undercount); rta_policy_matches_sim must catch
// both on its mixed-policy twins.

#include <cstdint>
#include <exception>
#include <fstream>
#include <iostream>
#include <string>

#include "common/error.hpp"
#include "obs/json_writer.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "verify/fixture.hpp"
#include "verify/property_checker.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--trials N] [--seed N] [--probes N] [--min-tasks N]"
         " [--max-tasks N]\n"
         "       [--ecus N] [--shrink | --no-shrink] [--fixture-dir PATH]\n"
         "       [--inject-fault] [--inject-stale-cache] [--inject-dp-fault]\n"
         "       [--inject-mc-fault] [--inject-explore-fault]\n"
         "       [--inject-pfp-fault] [--inject-edf-fault]\n"
         "       [--trace PATH] [--metrics PATH] [--quiet]\n";
  return 2;
}

void write_metrics_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw ceta::Error("cannot open metrics file '" + path + "'");
  ceta::obs::JsonWriter w(out);
  w.begin_object();
  w.key("global");
  ceta::obs::MetricsRegistry::global().snapshot().write_json(w);
  w.end_object();
  w.done();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ceta::verify;
  CheckerOptions opt;
  std::string fixture_dir;
  std::string trace_path;
  std::string metrics_path;
  bool quiet = false;

  const auto next_arg = [&](int& i) -> const char* {
    if (i + 1 >= argc) return nullptr;
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg == "--trials") {
        const char* v = next_arg(i);
        if (!v) return usage(argv[0]);
        opt.trials = std::stoul(v);
      } else if (arg == "--seed") {
        const char* v = next_arg(i);
        if (!v) return usage(argv[0]);
        opt.seed = std::stoull(v);
      } else if (arg == "--probes") {
        const char* v = next_arg(i);
        if (!v) return usage(argv[0]);
        opt.offset_probes = std::stoul(v);
      } else if (arg == "--min-tasks") {
        const char* v = next_arg(i);
        if (!v) return usage(argv[0]);
        opt.min_tasks = std::stoul(v);
      } else if (arg == "--max-tasks") {
        const char* v = next_arg(i);
        if (!v) return usage(argv[0]);
        opt.max_tasks = std::stoul(v);
      } else if (arg == "--ecus") {
        const char* v = next_arg(i);
        if (!v) return usage(argv[0]);
        opt.num_ecus = std::stoi(v);
      } else if (arg == "--shrink") {
        opt.shrink = true;
      } else if (arg == "--no-shrink") {
        opt.shrink = false;
      } else if (arg == "--fixture-dir") {
        const char* v = next_arg(i);
        if (!v) return usage(argv[0]);
        fixture_dir = v;
      } else if (arg == "--inject-fault") {
        opt.probe.fault = FaultInjection::kDropHeadPeriod;
      } else if (arg == "--inject-stale-cache") {
        opt.probe.fault = FaultInjection::kSkipInvalidation;
      } else if (arg == "--inject-dp-fault") {
        opt.probe.fault = FaultInjection::kCorruptDpSummary;
      } else if (arg == "--inject-mc-fault") {
        opt.probe.fault = FaultInjection::kCorruptMcSamples;
      } else if (arg == "--inject-explore-fault") {
        opt.probe.fault = FaultInjection::kSkipExploreRollback;
      } else if (arg == "--inject-pfp-fault") {
        opt.probe.fault = FaultInjection::kDropPreemptiveInterference;
      } else if (arg == "--inject-edf-fault") {
        opt.probe.fault = FaultInjection::kEdfUndercount;
      } else if (arg == "--trace") {
        const char* v = next_arg(i);
        if (!v) return usage(argv[0]);
        trace_path = v;
      } else if (arg == "--metrics") {
        const char* v = next_arg(i);
        if (!v) return usage(argv[0]);
        metrics_path = v;
      } else if (arg == "--quiet") {
        quiet = true;
      } else {
        std::cerr << "unknown argument '" << arg << "'\n";
        return usage(argv[0]);
      }
    } catch (const std::exception&) {
      std::cerr << "malformed value for '" << arg << "'\n";
      return usage(argv[0]);
    }
  }

  try {
    if (!trace_path.empty()) ceta::obs::Tracer::global().start(trace_path);

    PropertyChecker checker(opt);
    const CheckerReport report = checker.run();

    if (!trace_path.empty()) ceta::obs::Tracer::global().stop();
    if (!metrics_path.empty()) write_metrics_file(metrics_path);

    const CheckerStats& s = report.stats;
    if (!quiet) {
      std::cout << "verify_bounds: " << s.trials << " trials (seed "
                << opt.seed << "), " << s.graphs_checked
                << " admissible graphs, " << s.properties_checked
                << " property evaluations\n"
                << "  skipped: " << s.skipped_unschedulable
                << " unschedulable, " << s.skipped_degenerate
                << " degenerate, " << s.skipped_capacity << " capacity, "
                << s.skipped_other << " other\n";
    }
    for (std::size_t i = 0; i < report.violations.size(); ++i) {
      const Violation& v = report.violations[i];
      std::cout << violation_report(v);
      if (!fixture_dir.empty()) {
        const std::string path = write_fixture_file(fixture_dir, v, i);
        std::cout << "  fixture:   " << path << '\n';
      }
    }
    if (report.ok()) {
      if (!quiet) std::cout << "all invariants hold\n";
      return 0;
    }
    std::cout << report.violations.size() << " invariant violation(s)\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "verify_bounds: fatal: " << e.what() << '\n';
    return 2;
  }
}
