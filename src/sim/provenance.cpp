#include "sim/provenance.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ceta {

Provenance Provenance::of_source(TaskId source, Instant timestamp) {
  Provenance p;
  p.stamps_.push_back(SourceStamp{source, timestamp, timestamp});
  return p;
}

void Provenance::merge(const Provenance& other) {
  if (other.stamps_.empty()) return;
  if (stamps_.empty()) {
    stamps_ = other.stamps_;
    return;
  }
  // Merge two source-sorted stamp lists.
  std::vector<SourceStamp> merged;
  merged.reserve(stamps_.size() + other.stamps_.size());
  std::size_t i = 0, j = 0;
  while (i < stamps_.size() && j < other.stamps_.size()) {
    const SourceStamp& a = stamps_[i];
    const SourceStamp& b = other.stamps_[j];
    if (a.source == b.source) {
      merged.push_back(SourceStamp{a.source, std::min(a.min_ts, b.min_ts),
                                   std::max(a.max_ts, b.max_ts)});
      ++i;
      ++j;
    } else if (a.source < b.source) {
      merged.push_back(a);
      ++i;
    } else {
      merged.push_back(b);
      ++j;
    }
  }
  for (; i < stamps_.size(); ++i) merged.push_back(stamps_[i]);
  for (; j < other.stamps_.size(); ++j) merged.push_back(other.stamps_[j]);
  stamps_ = std::move(merged);
}

Duration Provenance::disparity() const {
  if (stamps_.empty()) return Duration::zero();
  return max_timestamp() - min_timestamp();
}

Instant Provenance::min_timestamp() const {
  CETA_EXPECTS(!stamps_.empty(), "Provenance::min_timestamp on empty");
  Instant m = stamps_.front().min_ts;
  for (const SourceStamp& s : stamps_) m = std::min(m, s.min_ts);
  return m;
}

Instant Provenance::max_timestamp() const {
  CETA_EXPECTS(!stamps_.empty(), "Provenance::max_timestamp on empty");
  Instant m = stamps_.front().max_ts;
  for (const SourceStamp& s : stamps_) m = std::max(m, s.max_ts);
  return m;
}

}  // namespace ceta
