// Resettable Monte-Carlo-scale discrete-event simulator (§II-B semantics).
//
// The front door of src/sim/: a Simulator is constructed once per graph,
// builds every static table up front (dense ECU array, CSR edge lists,
// token/provenance arenas sized from channel capacities) and then runs
// any number of seeded replications without allocating — reset() only
// rewinds cursors and refills sentinel values.  Simulated semantics are
// bit-identical to the pre-rewrite engine (kept as
// reference_engine.hpp for differential testing): periodic jittered
// releases, zero-time sources, per-ECU fixed-priority dispatch
// (non-preemptive or preemptive), implicit/LET communication over FIFO
// sliding-window channels, and the (time, kind, seq) total event order.
//
// Scale-up machinery relative to the old engine:
//  * calendar queue (calendar_queue.hpp) instead of a binary heap;
//  * tokens live in per-channel ring buffers of POD slots; provenance is
//    a dense [min per source | max per source] block per slot instead of
//    a sorted heap vector, merged with branch-free elementwise min/max;
//  * job and LET-publish records come from freelist arenas.
//
// Determinism: all randomness flows through the counter-based SimStream
// (exec_model.hpp), so run(seed) is a pure function of
// (graph, options, seed) — see the determinism contract in exec_model.hpp.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/task_graph.hpp"
#include "sim/calendar_queue.hpp"
#include "sim/options.hpp"

namespace ceta::sim {

/// Streaming consumer of observed jobs (release >= warmup carrying >= 1
/// source stamp), invoked in finish order during a run.  The Monte-Carlo
/// driver aggregates its histograms through this interface without the
/// simulator ever materializing per-job storage.
class JobObserver {
 public:
  virtual ~JobObserver() = default;

  /// A new replication starts; `seed` is its SimStream seed (usable to
  /// recompute jittered releases, see exec_model.hpp).
  virtual void on_run_begin(std::uint64_t seed) { (void)seed; }

  /// One observed job finished.  min_ts/max_ts index the simulator's
  /// dense source order (Simulator::source_task); a source with
  /// min_ts > max_ts contributed no sample to this job.
  virtual void on_observed_job(TaskId task, std::int64_t job, Instant release,
                               Instant start, Instant finish,
                               const Instant* min_ts, const Instant* max_ts,
                               std::size_t num_sources) = 0;
};

/// Merge-commutative summary of a run_batch: per-task maxima/sums over
/// all replications.  merge() is associative and commutative, so any
/// sharding of a seed range produces the identical batch result.
struct SimBatchResult {
  std::uint64_t replications = 0;
  std::uint64_t events = 0;
  std::vector<Duration> max_disparity;
  std::vector<std::int64_t> jobs_observed;
  std::vector<std::int64_t> jobs_finished;
  std::vector<Duration> max_response_time;
  std::vector<std::int64_t> preemptions;

  void merge(const SimBatchResult& other);
};

class Simulator {
 public:
  /// Validates opt (InvalidOptionsError) and the graph
  /// (TaskGraph::validate), then builds all static tables.  The graph is
  /// copied: a Simulator is self-contained and safe to move to a worker
  /// thread.
  Simulator(const TaskGraph& g, SimOptions opt);

  const TaskGraph& graph() const { return g_; }
  const SimOptions& options() const { return opt_; }

  /// Dense source indexing used by JobObserver callbacks.
  std::size_t num_sources() const { return sources_.size(); }
  TaskId source_task(std::size_t idx) const { return sources_[idx]; }

  /// Attach (or detach with nullptr) the streaming observer; applies to
  /// every subsequent run.  Not owned.
  void set_observer(JobObserver* observer) { observer_ = observer; }

  /// Rewind all per-run state without releasing arena capacity.  run()
  /// resets implicitly, so an explicit call is only needed to drop state
  /// early (e.g. after a CapacityError abandoned a run midway).
  void reset();

  /// One replication under options().seed / the given seed.  Equivalent
  /// to (but much cheaper than) constructing a fresh Simulator.
  SimResult run() { return run(opt_.seed); }
  SimResult run(std::uint64_t seed);

  /// `replications` runs under seeds first_seed, first_seed+1, ...,
  /// merged into a batch summary.  Traces are not recorded in batch mode
  /// (record_trace is honored per run() only).
  SimBatchResult run_batch(std::uint64_t first_seed,
                           std::uint64_t replications);

  /// Lifetime count of processed events (all runs), for throughput
  /// reporting.
  std::uint64_t events_processed() const { return events_total_; }

 private:
  struct JobSlot {
    TaskId task = 0;
    std::int64_t job = -1;
    Instant release;
    Instant deadline;  ///< release + period; orders dispatch under EDF
    Instant start;
    Duration remaining;
    bool has_snapshot = false;
    bool started = false;
    std::vector<ReadLink> reads;  // only filled when tracing
  };

  struct EcuRun {
    bool busy = false;
    std::uint32_t running = 0;  ///< job-slot index
    Instant resumed_at;
    std::uint64_t expected_finish_gen = 0;  ///< 0 = none outstanding
    std::vector<std::uint32_t> ready;       ///< job-slot indices
  };

  struct TokenSlot {
    TaskId task = 0;
    std::int64_t job = -1;
    Instant release;
    Instant write;
  };

  /// Per-task constants flattened out of the TaskGraph so the event
  /// handlers never pay the bounds-checked TaskGraph::task() call.
  struct TaskRow {
    Instant offset;
    Duration period;
    Duration jitter;
    Duration bcet;
    Duration wcet;
    std::int32_t priority = 0;
    std::uint32_t ecu_idx = 0;
    bool is_let = false;
    bool is_source = false;
  };

  void run_core(std::uint64_t seed);
  void push_release(TaskId task, std::int64_t job, Instant nominal);
  void schedule_next_release(TaskId task, std::int64_t job);
  void on_source_release(const SimEvent& ev);
  void on_release(const SimEvent& ev);
  void on_finish(const SimEvent& ev);
  void on_publish(const SimEvent& ev);
  void maybe_preempt(std::uint32_t ecu_idx, Instant now);
  void dispatch(std::uint32_t ecu_idx, Instant now);
  void read_inputs(TaskId task, Instant* prov, std::vector<ReadLink>* reads);
  void write_outputs(TaskId task, const TokenSlot& tok, const Instant* prov);
  Duration exec_time(TaskId task, std::int64_t job) const;

  std::uint32_t alloc_job();
  void free_job(std::uint32_t slot);
  std::uint32_t alloc_publish();
  void free_publish(std::uint32_t slot);

  // Dense provenance blocks: 2 * num_sources() + 2 Instants per block,
  // laid out [min_0 .. min_{S-1} | max_0 .. max_{S-1} | lo | hi] with
  // +inf/-inf sentinels for absent sources.  lo/hi are the running
  // aggregates (min over mins, max over maxes), kept up to date by every
  // merge so emptiness and disparity checks are O(1) per finished job.
  std::size_t prov_stride() const { return 2 * sources_.size() + 2; }
  void prov_clear(Instant* p) const;
  void prov_merge(Instant* dst, const Instant* src) const;
  bool prov_empty(const Instant* p) const;
  Duration prov_disparity(const Instant* p) const;

  // --- static tables (built once in the constructor) ---
  TaskGraph g_;
  SimOptions opt_;
  std::uint32_t num_ecus_ = 0;
  /// Resolved discipline per dense ECU index: the options override if
  /// set, else the graph's per-ECU policy.
  std::vector<SchedPolicy> ecu_policy_;
  std::vector<TaskRow> rows_;               ///< flattened per-task constants
  std::vector<std::uint32_t> ecu_of_task_;  ///< dense ECU index or kNoEcuIdx
  std::vector<TaskId> sources_;             ///< dense source order
  std::vector<std::int32_t> source_index_;  ///< task -> dense index or -1
  // CSR input/output edge lists (inputs sorted to predecessors order so
  // trace ReadLinks line up).
  std::vector<std::uint32_t> in_off_, in_edges_;
  std::vector<std::uint32_t> out_off_, out_edges_;
  // Channel rings: edge e owns token slots [chan_off_[e], chan_off_[e+1]).
  std::vector<std::uint32_t> chan_off_;
  std::vector<std::uint32_t> chan_cap_;

  // --- per-run state (rewound by reset()) ---
  CalendarQueue queue_;
  std::vector<EcuRun> ecus_;
  std::vector<std::uint32_t> chan_head_, chan_count_;
  std::vector<TokenSlot> token_slots_;
  std::vector<Instant> token_prov_;
  std::vector<JobSlot> jobs_;
  std::vector<Instant> job_prov_;
  std::vector<std::uint32_t> free_jobs_;
  std::vector<TokenSlot> publish_slots_;  ///< pending LET tokens
  std::vector<Instant> publish_prov_;
  std::vector<std::uint32_t> free_publish_;
  std::vector<std::uint32_t> pending_dispatch_;
  std::vector<Instant> scratch_prov_;  ///< one block, for source tokens
  SimStream stream_{1};
  std::uint64_t seq_ = 0;
  std::uint64_t finish_gen_ = 0;
  std::uint64_t jobs_created_ = 0;
  std::uint64_t events_run_ = 0;    ///< events of the current run
  std::uint64_t events_total_ = 0;  ///< lifetime, across runs
  SimResult result_;
  JobObserver* observer_ = nullptr;
};

}  // namespace ceta::sim

namespace ceta {
// The new front door is spelled ceta::sim::*, hoisted into ceta for
// convenience alongside the SimOptions/SimResult contract it shares with
// the legacy shim.
using sim::JobObserver;
using sim::SimBatchResult;
using sim::Simulator;
}  // namespace ceta
