// Calendar queue for the Monte-Carlo-scale simulator core.
//
// A discrete-event simulation of a periodic task set schedules almost all
// of its events within a few periods of "now" — the classic calendar
// queue regime.  Events are POD records hashed by time into a cyclic
// power-of-two array of buckets (one "year" of width·buckets
// nanoseconds); events beyond the current year wait in an overflow store
// and are redistributed when the year they belong to opens.  Buckets sort
// their unconsumed tail lazily on first access, so pushes are O(1) and
// pops amortize the usual O(log bucket-occupancy).
//
// Ordering is the engine's total event order: (time, kind, seq) — kinds
// make same-instant writes visible before reads (engine.hpp), seq makes
// same-(time, kind) events FIFO in push order.  Pop order is exactly the
// order a binary heap with the same comparator would produce.  Pushes
// need not be time-ordered: an event before the consumption cursor
// rewinds it (the swept buckets behind it are empty), and one before the
// open year respills the calendar — both are O(1)-amortized rarities in
// the discrete-event regime (the simulator's initial release seeding is
// the main source), while the steady state pays the O(1) bucket hash.
//
// clear() empties the queue but keeps every bucket's capacity, so a
// Simulator reset between seeded replications allocates nothing.

#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/time.hpp"
#include "graph/task.hpp"

namespace ceta::sim {

/// Event kinds in processing order at equal instants: finish events
/// (writes) become visible first, then LET publishes, then source tokens,
/// then release events — matching Definition 1's "finishes no later than
/// the start" (inclusive).
enum class EventKind : std::uint32_t {
  kFinish = 0,
  kPublish = 1,
  kSourceRelease = 2,
  kRelease = 3,
};

/// POD simulation event.  Field use by kind:
///  * kRelease/kSourceRelease: task + job index;
///  * kFinish: ecu (dense index) + job = finish generation;
///  * kPublish: task + job = pending-publish slot.
struct SimEvent {
  Instant time;
  EventKind kind = EventKind::kRelease;
  std::uint32_t ecu = 0;
  std::uint64_t seq = 0;
  TaskId task = 0;
  std::int64_t job = 0;
};

inline bool event_before(const SimEvent& a, const SimEvent& b) {
  if (a.time != b.time) return a.time < b.time;
  if (a.kind != b.kind) return a.kind < b.kind;
  return a.seq < b.seq;
}

class CalendarQueue {
 public:
  /// Default geometry (~131us buckets); configure() before serious use.
  CalendarQueue() { configure(Duration::ns(1 << 17), 256); }

  /// Set the bucket width and bucket count — both powers of two, so the
  /// time-to-bucket hash is a shift and the year floor a mask (no integer
  /// division anywhere on the push path).  Drops any queued events.  A
  /// good width makes one bucket hold a handful of events — the Simulator
  /// derives it from the release lattice (shortest task period).
  void configure(Duration bucket_width, std::size_t num_buckets) {
    CETA_EXPECTS(bucket_width > Duration::zero() &&
                     (bucket_width.count() & (bucket_width.count() - 1)) == 0,
                 "CalendarQueue: bucket width must be a positive power of two");
    CETA_EXPECTS(num_buckets >= 2 && (num_buckets & (num_buckets - 1)) == 0,
                 "CalendarQueue: bucket count must be a power of two >= 2");
    width_ = bucket_width.count();
    width_shift_ = 0;
    while ((std::int64_t{1} << width_shift_) < width_) ++width_shift_;
    buckets_.assign(num_buckets, Bucket{});
    mask_ = num_buckets - 1;
    overflow_.clear();
    touched_.clear();
    size_ = 0;
    cursor_ = 0;
    year_base_ = 0;
    front_ = nullptr;
  }

  /// Empty the queue, keeping all bucket/overflow capacity.  Only buckets
  /// that received an event since the last clear are visited (the
  /// `touched_` list), so a reset between short replications costs O(events),
  /// not O(buckets).
  void clear() {
    for (const std::size_t k : touched_) {
      Bucket& b = buckets_[k];
      b.items.clear();
      b.head = 0;
      b.dirty = false;
    }
    touched_.clear();
    overflow_.clear();
    size_ = 0;
    cursor_ = 0;
    year_base_ = 0;
    front_ = nullptr;
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push(const SimEvent& e) {
    front_ = nullptr;  // may precede the cached front, or reallocate it away
    const std::int64_t t = e.time.count();
    if (size_ == 0) {
      // Rebase the calendar on the first event of a (possibly fresh) run.
      year_base_ = year_floor(t);
      cursor_ = offset_in_year(t);
    } else if (t < year_base_) {
      // Earlier year than the open one: spill every calendared event to
      // the overflow store and reopen the year of `t`.  advance_year()
      // brings them back as their years come up.
      for (Bucket& b : buckets_) {
        overflow_.insert(overflow_.end(),
                         b.items.begin() + static_cast<std::ptrdiff_t>(b.head),
                         b.items.end());
        b.items.clear();
        b.head = 0;
        b.dirty = false;
      }
      year_base_ = year_floor(t);
      cursor_ = offset_in_year(t);
    }
    if (t < year_base_ + year_length()) {
      const std::size_t k = offset_in_year(t);
      // Behind the consumption cursor is fine: every swept bucket is
      // empty, so rewinding over them restores the scan invariant.
      cursor_ = std::min(cursor_, k);
      place(k, e);
    } else {
      overflow_.push_back(e);
    }
    ++size_;
  }

  /// Smallest event by (time, kind, seq); precondition: !empty().  The
  /// located front is cached, so the peek/peek/pop pattern of the run
  /// loop pays one bucket scan per event, not three.
  const SimEvent& peek() {
    if (front_ == nullptr) front_ = locate();
    return *front_;
  }

  SimEvent pop() {
    if (front_ == nullptr) front_ = locate();
    const SimEvent out = *front_;
    front_ = nullptr;
    ++buckets_[cursor_].head;
    --size_;
    return out;
  }

 private:
  struct Bucket {
    std::vector<SimEvent> items;
    std::size_t head = 0;  ///< consumed prefix
    bool dirty = false;    ///< unsorted tail present
  };

  std::int64_t year_length() const {
    return width_ * static_cast<std::int64_t>(mask_ + 1);
  }

  /// Largest multiple of the (power-of-two) year length <= t; a mask, and
  /// correct for negative t in two's complement.
  std::int64_t year_floor(std::int64_t t) const {
    return t & ~(year_length() - 1);
  }

  /// Bucket index of instant `t`; valid only for t within the current
  /// year (t >= year_base_), so the index is the non-negative
  /// (t - year_base) >> log2(width) and is monotone in t.
  std::size_t offset_in_year(std::int64_t t) const {
    return static_cast<std::size_t>(
        static_cast<std::uint64_t>(t - year_base_) >> width_shift_);
  }

  SimEvent* locate() {
    CETA_EXPECTS(size_ > 0, "CalendarQueue: peek/pop on an empty queue");
    for (;;) {
      while (cursor_ <= mask_) {
        Bucket& b = buckets_[cursor_];
        if (b.head < b.items.size()) {
          if (b.dirty) {
            std::sort(b.items.begin() + static_cast<std::ptrdiff_t>(b.head),
                      b.items.end(), event_before);
            b.dirty = false;
          }
          return &b.items[b.head];
        }
        b.items.clear();
        b.head = 0;
        b.dirty = false;
        ++cursor_;
      }
      advance_year();
    }
  }

  /// The current year is exhausted: open the year of the earliest
  /// overflow event and pull every event of that year into the calendar.
  void advance_year() {
    CETA_ASSERT(!overflow_.empty(),
                "CalendarQueue: events counted but none stored");
    std::int64_t earliest = overflow_.front().time.count();
    for (const SimEvent& e : overflow_) {
      earliest = std::min(earliest, e.time.count());
    }
    year_base_ = year_floor(earliest);
    cursor_ = offset_in_year(earliest);
    spill_.clear();
    for (const SimEvent& e : overflow_) {
      const std::int64_t t = e.time.count();
      if (t < year_base_ + year_length()) {
        place(offset_in_year(t), e);
      } else {
        spill_.push_back(e);
      }
    }
    overflow_.swap(spill_);
  }

  /// Append an event to bucket `k`, recording first use for clear().
  void place(std::size_t k, const SimEvent& e) {
    Bucket& b = buckets_[k];
    if (b.items.empty() && b.head == 0) touched_.push_back(k);
    b.items.push_back(e);
    b.dirty = true;
  }

  std::int64_t width_ = 1;
  int width_shift_ = 0;  ///< log2(width_)
  std::size_t mask_ = 0;
  std::vector<Bucket> buckets_;
  std::vector<SimEvent> overflow_;   ///< events beyond the current year
  std::vector<SimEvent> spill_;      ///< reusable scratch for advance_year
  std::vector<std::size_t> touched_; ///< buckets used since last clear()
  std::size_t size_ = 0;
  std::size_t cursor_ = 0;     ///< first possibly-nonempty bucket index
  std::int64_t year_base_ = 0;
  const SimEvent* front_ = nullptr;  ///< cached locate(); invalid on push/pop
};

}  // namespace ceta::sim
