#include "sim/gantt.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace ceta {

std::string render_gantt(const TaskGraph& g, const Trace& trace,
                         const GanttOptions& opt) {
  CETA_EXPECTS(opt.width >= 2, "render_gantt: width must be >= 2");
  CETA_EXPECTS(trace.tasks.size() == g.num_tasks(),
               "render_gantt: trace does not match the graph");

  Instant lo = opt.from;
  Instant hi = opt.to;
  if (hi <= lo) {
    bool any = false;
    for (const TaskTrace& tt : trace.tasks) {
      for (const JobRecord& j : tt.jobs) {
        if (!any) {
          lo = j.release;
          hi = j.finish;
          any = true;
        } else {
          lo = std::min(lo, j.release);
          hi = std::max(hi, j.finish);
        }
      }
    }
    if (!any) return {};
    if (hi == lo) hi = lo + Duration::ns(1);
  }

  const double span = static_cast<double>((hi - lo).count());
  const auto cell_of = [&](Instant t) {
    const double frac = static_cast<double>((t - lo).count()) / span;
    const int c = static_cast<int>(frac * opt.width);
    return std::clamp(c, 0, opt.width - 1);
  };

  std::size_t name_width = 0;
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    name_width = std::max(name_width, g.task(id).name.size());
  }

  std::ostringstream os;
  os << std::string(name_width, ' ') << "  " << to_string(lo) << " .. "
     << to_string(hi) << " (" << to_string(hi - lo) << " / " << opt.width
     << " cells)\n";
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    std::string row(static_cast<std::size_t>(opt.width), '.');
    for (const JobRecord& j : trace.tasks[id].jobs) {
      if (j.finish < lo || j.release > hi) continue;
      if (j.finish > j.start) {
        const int a = cell_of(std::max(j.start, lo));
        const int b = cell_of(std::min(j.finish, hi));
        for (int c = a; c <= b; ++c) {
          row[static_cast<std::size_t>(c)] = '#';
        }
      }
      if (j.release >= lo && j.release <= hi) {
        auto& cell = row[static_cast<std::size_t>(cell_of(j.release))];
        if (cell == '.') cell = '^';
      }
    }
    os << g.task(id).name
       << std::string(name_width - g.task(id).name.size(), ' ') << "  " << row
       << '\n';
  }
  return os.str();
}

}  // namespace ceta
