#include "sim/engine.hpp"

#include "obs/tracer.hpp"

namespace ceta {

SimResult simulate(const TaskGraph& g, const SimOptions& opt) {
  obs::Span span("sim", "simulate");
  span.arg("tasks", static_cast<std::int64_t>(g.num_tasks()));
  span.arg("duration_ns", opt.duration.count());
  sim::Simulator simulator(g, opt);
  return simulator.run();
}

}  // namespace ceta
