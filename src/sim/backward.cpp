#include "sim/backward.hpp"

#include <algorithm>
#include <optional>

#include "common/error.hpp"

namespace ceta {

const JobRecord* trace_head_job(const TaskGraph& g, const Trace& trace,
                                const Path& chain,
                                const JobRecord& tail_job) {
  const JobRecord* cur = &tail_job;
  for (std::size_t i = chain.size(); i-- > 1;) {
    const TaskId task = chain[i];
    const TaskId pred = chain[i - 1];
    // Locate the read link for the chain's predecessor channel.
    const auto& preds = g.predecessors(task);
    const auto it = std::find(preds.begin(), preds.end(), pred);
    CETA_EXPECTS(it != preds.end(), "trace_head_job: chain is not a path");
    const std::size_t slot = static_cast<std::size_t>(it - preds.begin());
    CETA_ASSERT(slot < cur->reads.size(),
                "trace_head_job: trace read links misaligned");
    const ReadLink& link = cur->reads[slot];
    if (link.producer_job < 0) return nullptr;  // channel was empty
    const JobRecord* producer = trace.find(pred, link.producer_job);
    if (producer == nullptr) return nullptr;
    cur = producer;
  }
  return cur;
}

BackwardMeasurement measured_backward_times(const TaskGraph& g,
                                            const Trace& trace,
                                            const Path& chain,
                                            Instant warmup) {
  CETA_EXPECTS(is_path(g, chain), "measured_backward_times: not a path");
  CETA_EXPECTS(chain.back() < trace.tasks.size(),
               "measured_backward_times: trace lacks the tail task");
  BackwardMeasurement out;
  for (const JobRecord& tail : trace.tasks[chain.back()].jobs) {
    if (tail.release < warmup) continue;
    const JobRecord* head = trace_head_job(g, trace, chain, tail);
    if (head == nullptr) {
      ++out.incomplete;
      continue;
    }
    out.lengths.push_back(tail.release - head->release);
  }
  return out;
}

std::vector<Duration> measured_pair_timestamp_diffs(
    const TaskGraph& g, const Trace& trace, const Path& lambda,
    const Path& nu, Instant warmup) {
  CETA_EXPECTS(is_path(g, lambda) && is_path(g, nu),
               "measured_pair_timestamp_diffs: not paths");
  CETA_EXPECTS(lambda.back() == nu.back(),
               "measured_pair_timestamp_diffs: different tails");
  CETA_EXPECTS(g.is_source(lambda.front()) && g.is_source(nu.front()),
               "measured_pair_timestamp_diffs: heads must be sources");
  std::vector<Duration> diffs;
  for (const JobRecord& tail : trace.tasks[lambda.back()].jobs) {
    if (tail.release < warmup) continue;
    const JobRecord* ha = trace_head_job(g, trace, lambda, tail);
    const JobRecord* hb = trace_head_job(g, trace, nu, tail);
    if (ha == nullptr || hb == nullptr) continue;
    // Source timestamps equal source job releases (§II-B).
    const Duration d = ha->release - hb->release;
    diffs.push_back(d < Duration::zero() ? -d : d);
  }
  return diffs;
}

}  // namespace ceta
