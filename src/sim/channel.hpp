// Run-time communication channels (§II-B and §IV).
//
// Base model: a size-1 register — a new token overwrites the old one and
// readers always see the latest value (implicit communication).  The §IV
// optimization generalizes a channel to a FIFO holding the last n tokens:
// writes enqueue and evict the oldest when full; reads are non-destructive
// and return the *oldest* buffered token, which in steady state is
// (n−1)·T(producer) older than the newest — the window shift of Lemma 6.

#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "common/error.hpp"
#include "common/time.hpp"
#include "graph/task.hpp"
#include "sim/provenance.hpp"

namespace ceta {

/// A data token travelling through a channel.
struct Token {
  /// Producing task and its job index (for backward-chain reconstruction).
  TaskId producer_task = 0;
  std::int64_t producer_job = -1;
  /// Release time of the producing job.
  Instant producer_release;
  /// Instant the token was written (producer's finish time).
  Instant write_time;
  /// Source-sample summary.
  Provenance provenance;
};

/// Runtime state of one edge's channel.
class SimChannel {
 public:
  explicit SimChannel(int capacity) : capacity_(capacity) {
    CETA_EXPECTS(capacity >= 1, "SimChannel: capacity must be >= 1");
  }

  int capacity() const { return capacity_; }
  std::size_t size() const { return buffer_.size(); }
  bool full() const { return buffer_.size() == static_cast<std::size_t>(capacity_); }

  /// Enqueue a token; evicts the oldest when the buffer is full.
  void write(Token token);

  /// The token a starting job reads: the oldest buffered one (equals the
  /// newest for capacity 1).  nullopt while the channel is empty.
  std::optional<Token> read() const;

  /// The most recently written token (diagnostics).
  std::optional<Token> newest() const;

 private:
  int capacity_;
  std::deque<Token> buffer_;
};

}  // namespace ceta
