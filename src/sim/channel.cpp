#include "sim/channel.hpp"

namespace ceta {

void SimChannel::write(Token token) {
  if (full()) buffer_.pop_front();
  buffer_.push_back(std::move(token));
}

std::optional<Token> SimChannel::read() const {
  if (buffer_.empty()) return std::nullopt;
  return buffer_.front();
}

std::optional<Token> SimChannel::newest() const {
  if (buffer_.empty()) return std::nullopt;
  return buffer_.back();
}

}  // namespace ceta
