// Measured end-to-end latencies from a recorded trace: data ages of tail
// outputs and reaction times of source stimuli — ground truth for the
// bounds in chain/latency.hpp.

#pragma once

#include <vector>

#include "graph/paths.hpp"
#include "graph/task_graph.hpp"
#include "sim/trace.hpp"

namespace ceta {

struct DataAgeMeasurement {
  /// f(tail job) − r(traced head job) for each tail job with a complete
  /// backward chain (release ≥ warmup).
  std::vector<Duration> ages;
  std::size_t incomplete = 0;
};

/// Measure data ages along `chain` (head must be this chain's first task;
/// it need not be a source).
DataAgeMeasurement measured_data_ages(const TaskGraph& g, const Trace& trace,
                                      const Path& chain,
                                      Instant warmup = Instant::zero());

struct ReactionMeasurement {
  /// For each source job (stimulus) released in [warmup, horizon): the
  /// delay until the first tail output whose traced sample was taken at
  /// or after the stimulus.  Stimuli never answered within the trace are
  /// counted in `unanswered` (end-of-trace effect), not included here.
  std::vector<Duration> reactions;
  std::size_t unanswered = 0;
};

/// Measure reaction times of `chain` (head must be a source task).
/// `horizon` limits which stimuli are queried so end-of-trace truncation
/// does not bias the result; pass the simulation duration minus the
/// reaction bound, or Instant::max() to query all stimuli.
ReactionMeasurement measured_reaction_times(const TaskGraph& g,
                                            const Trace& trace,
                                            const Path& chain,
                                            Instant warmup, Instant horizon);

}  // namespace ceta
