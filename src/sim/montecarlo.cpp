#include "sim/montecarlo.hpp"

#include <algorithm>
#include <chrono>
#include <future>
#include <utility>

#include "common/error.hpp"
#include "common/math.hpp"
#include "engine/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sim/exec_model.hpp"
#include "sim/simulator.hpp"

namespace ceta::sim {

void MonteCarloOptions::validate(const TaskGraph& g) const {
  sim.validate();
  if (replications == 0) {
    throw InvalidOptionsError("MonteCarloOptions: replications must be >= 1");
  }
  if (sim.record_trace) {
    throw InvalidOptionsError(
        "MonteCarloOptions: record_trace is unsupported at replication "
        "scale (memory ~ jobs x replications); trace a single "
        "Simulator::run instead");
  }
  for (const TaskId t : observed) {
    if (t >= g.num_tasks()) {
      throw InvalidOptionsError("MonteCarloOptions: observed task id out of "
                                "range for this graph");
    }
  }
  if (!bounds.empty()) {
    if (observed.empty()) {
      throw InvalidOptionsError(
          "MonteCarloOptions: bounds require an explicit observed list "
          "(parallel vectors)");
    }
    if (bounds.size() != observed.size()) {
      throw InvalidOptionsError(
          "MonteCarloOptions: bounds must be parallel to observed");
    }
  }
  if (fault_scale_samples < 1) {
    throw InvalidOptionsError(
        "MonteCarloOptions: fault_scale_samples must be >= 1");
  }
}

namespace {

/// One worker's aggregate; merged single-threaded after the fan-in.
struct Partial {
  std::uint64_t replications = 0;
  std::uint64_t events = 0;
  std::uint64_t jobs_finished = 0;
  std::vector<TaskMonteCarlo> tasks;

  void merge(const Partial& o) {
    replications += o.replications;
    events += o.events;
    jobs_finished += o.jobs_finished;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      tasks[i].disparity.merge(o.tasks[i].disparity);
      tasks[i].data_age.merge(o.tasks[i].data_age);
      tasks[i].reaction.merge(o.tasks[i].reaction);
      tasks[i].bound_violations += o.tasks[i].bound_violations;
      tasks[i].worst_sample =
          std::max(tasks[i].worst_sample, o.tasks[i].worst_sample);
    }
  }
};

/// Streams observed jobs of one Simulator into per-task histograms.
class Collector final : public JobObserver {
 public:
  Collector(const Simulator& sim, const std::vector<TaskId>& observed,
            const std::vector<Duration>& bounds, std::int64_t fault_scale)
      : sim_(sim), fault_scale_(fault_scale) {
    const TaskGraph& g = sim.graph();
    observed_slot_.assign(g.num_tasks(), -1);
    tasks_.resize(observed.size());
    for (std::size_t i = 0; i < observed.size(); ++i) {
      observed_slot_[observed[i]] = static_cast<std::int32_t>(i);
      tasks_[i].task = observed[i];
      if (!bounds.empty()) {
        tasks_[i].bound_checked = true;
        tasks_[i].bound = bounds[i];
      }
    }
    rstate_.resize(observed.size() * sim.num_sources());
  }

  void on_run_begin(std::uint64_t seed) override {
    seed_ = seed;
    std::fill(rstate_.begin(), rstate_.end(), RState{});
  }

  void on_observed_job(TaskId task, std::int64_t /*job*/, Instant /*release*/,
                       Instant /*start*/, Instant finish,
                       const Instant* min_ts, const Instant* max_ts,
                       std::size_t num_sources) override {
    const std::int32_t slot = observed_slot_[task];
    if (slot < 0) return;
    TaskMonteCarlo& agg = tasks_[static_cast<std::size_t>(slot)];

    Instant lo = Duration::max();
    Instant hi = Duration::min();
    for (std::size_t s = 0; s < num_sources; ++s) {
      lo = std::min(lo, min_ts[s]);
      hi = std::max(hi, max_ts[s]);
    }
    if (lo == Duration::max()) return;  // no stamp (observer filters, but
                                        // stay total)

    const Duration sample =
        Duration::ns((hi - lo).count() * fault_scale_);
    agg.disparity.add(sample);
    agg.worst_sample = std::max(agg.worst_sample, sample);
    if (agg.bound_checked && sample > agg.bound) ++agg.bound_violations;

    agg.data_age.add(finish - lo);

    // Reaction: each source job first reflected at this finish (its
    // timestamp pushed the per-source running maximum) reacted after
    // finish - release.  The jittered releases are recomputed from the
    // run seed — see exec_model.hpp.
    for (std::size_t s = 0; s < num_sources; ++s) {
      const Instant m = max_ts[s];
      if (m == Duration::min()) continue;  // source absent from this job
      RState& st =
          rstate_[static_cast<std::size_t>(slot) * num_sources + s];
      if (st.has && m <= st.max_seen) continue;
      const TaskId sid = sim_.source_task(s);
      const Task& src = sim_.graph().task(sid);
      std::int64_t k_cap = floor_div(m - src.offset, src.period);
      if (k_cap < -1) k_cap = -1;
      if (!st.has) {
        // First output of the run: baseline only, nothing to attribute.
        st.has = true;
        st.max_seen = m;
        st.credited = k_cap;
        continue;
      }
      const SimStream stream(seed_);
      for (std::int64_t k = st.credited + 1; k <= k_cap; ++k) {
        const Instant nominal = src.offset + src.period * k;
        const Instant r = sample_release(src, sid, k, nominal, stream);
        agg.reaction.add(std::max(finish - r, Duration::zero()));
      }
      st.credited = k_cap;
      st.max_seen = m;
    }
  }

  Partial take(const SimBatchResult& batch) {
    Partial p;
    p.replications = batch.replications;
    p.events = batch.events;
    for (const std::int64_t f : batch.jobs_finished) {
      p.jobs_finished += static_cast<std::uint64_t>(f);
    }
    p.tasks = std::move(tasks_);
    return p;
  }

 private:
  struct RState {
    bool has = false;
    Instant max_seen;
    std::int64_t credited = -1;
  };

  const Simulator& sim_;
  std::int64_t fault_scale_;
  std::vector<std::int32_t> observed_slot_;  ///< task -> slot or -1
  std::vector<TaskMonteCarlo> tasks_;
  std::vector<RState> rstate_;  ///< slot-major [slot][source]
  std::uint64_t seed_ = 0;
};

}  // namespace

MonteCarloResult run_monte_carlo(const TaskGraph& g,
                                 const MonteCarloOptions& opt) {
  opt.validate(g);
  const std::vector<TaskId> observed =
      opt.observed.empty() ? g.sinks() : opt.observed;

  obs::Span span("sim", "montecarlo.run");
  span.arg("replications", static_cast<std::int64_t>(opt.replications));
  const auto t0 = std::chrono::steady_clock::now();

  const std::size_t threads =
      opt.num_threads != 0 ? opt.num_threads : ThreadPool::default_concurrency();

  // One Simulator + collector per chunk: arenas warm up once per worker,
  // the hot loop is lock-free, and the merge below is order-independent.
  const auto run_chunk = [&](std::uint64_t first,
                             std::uint64_t count) -> Partial {
    Simulator simulator(g, opt.sim);
    Collector collector(simulator, observed, opt.bounds,
                        opt.fault_scale_samples);
    simulator.set_observer(&collector);
    const SimBatchResult batch = simulator.run_batch(first, count);
    return collector.take(batch);
  };

  Partial total;
  // Pool jobs must not nest (thread_pool.hpp); run inline from a worker.
  if (threads <= 1 || opt.replications == 1 ||
      ThreadPool::current_thread_in_pool()) {
    total = run_chunk(opt.first_seed, opt.replications);
  } else {
    const std::uint64_t chunks = std::min<std::uint64_t>(
        opt.replications, static_cast<std::uint64_t>(threads) * 4);
    ThreadPool pool(threads);
    std::vector<std::future<Partial>> partials;
    partials.reserve(chunks);
    for (std::uint64_t c = 0; c < chunks; ++c) {
      const std::uint64_t lo = opt.replications * c / chunks;
      const std::uint64_t hi = opt.replications * (c + 1) / chunks;
      partials.push_back(pool.submit(
          [&, lo, hi] { return run_chunk(opt.first_seed + lo, hi - lo); }));
    }
    bool first = true;
    for (std::future<Partial>& f : partials) {
      Partial p = f.get();
      if (first) {
        total = std::move(p);
        first = false;
      } else {
        total.merge(p);
      }
    }
  }

  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - t0;

  MonteCarloResult result;
  result.replications = total.replications;
  result.events = total.events;
  result.jobs_finished = total.jobs_finished;
  result.wall_seconds = wall.count();
  if (wall.count() > 0.0) {
    result.sims_per_sec = static_cast<double>(total.replications) /
                          wall.count();
    result.events_per_sec = static_cast<double>(total.events) / wall.count();
  }
  result.tasks = std::move(total.tasks);
  for (TaskMonteCarlo& t : result.tasks) {
    if (t.bound_checked) {
      if (t.bound_violations > 0) result.all_within_bounds = false;
      if (t.bound > Duration::zero()) {
        t.tightness = t.worst_sample.ratio(t.bound);
      }
    }
  }

  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  reg.counter("sim.mc.replications").add(total.replications);
  reg.counter("sim.mc.events").add(total.events);
  return result;
}

}  // namespace ceta::sim
