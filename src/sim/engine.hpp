// Legacy front door of src/sim/ — kept so existing includes keep working.
//
// The simulator proper now lives in simulator.hpp (ceta::sim::Simulator,
// resettable and Monte-Carlo-scale) with the shared option/result structs
// in options.hpp.  This header re-exports both and declares the original
// one-shot entry point as a thin shim.

#pragma once

#include "sim/options.hpp"
#include "sim/simulator.hpp"

namespace ceta {

/// One-shot simulation: constructs a Simulator and runs opt.seed.
/// Bit-identical to Simulator(g, opt).run() — prefer the Simulator API,
/// which amortizes the setup across seeded replications.
SimResult simulate(const TaskGraph& g, const SimOptions& opt);

}  // namespace ceta
