// Discrete-event simulator of the run-time behavior in §II-B.
//
// Semantics implemented:
//  * every task releases jobs periodically from its release offset;
//  * source tasks execute in zero time at their release (external stimuli,
//    no ECU) and emit a token stamped with the release time;
//  * each ECU (and the bus, if modeled as a resource) dispatches ready
//    jobs non-preemptively by fixed priority (smaller value first, ties
//    by task id);
//  * implicit communication — a job reads *all* input channels when it
//    starts and writes all output channels when it finishes;
//  * channels are FIFO sliding windows of the last n tokens (n = 1 is the
//    plain overwrite register); reads return the oldest buffered token;
//  * at equal instants, finish events (writes) are processed before
//    release events, matching Definition 1's "finishes no later than the
//    start" (inclusive).
//
// The simulator measures, per task, the maximum observed time disparity
// (an unsafe lower bound on the worst case — the paper's "Sim") and can
// optionally record a full trace for backward-chain reconstruction.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/task_graph.hpp"
#include "sched/npfp_rta.hpp"
#include "sim/exec_model.hpp"
#include "sim/trace.hpp"

namespace ceta {

struct SimOptions {
  /// Dispatching discipline of every ECU.  The paper's model (and the
  /// default) is non-preemptive; kPreemptive suspends the running job
  /// whenever a higher-priority job is released on its ECU.  Implicit
  /// communication reads stay at the job's *first* start.
  SchedPolicy policy = SchedPolicy::kNonPreemptive;
  /// Simulated horizon; jobs released at t < duration are processed to
  /// completion.
  Duration duration = Duration::s(1);
  /// Jobs released before this instant are excluded from disparity
  /// statistics (lets FIFO buffers fill — Lemma 6 holds "in the long
  /// term").
  Duration warmup = Duration::zero();
  std::uint64_t seed = 1;
  ExecTimeModel exec_model = ExecTimeModel::kUniform;
  ExecTimeHook exec_hook;  ///< used when exec_model == kCustom
  /// Record a full trace (memory ∝ number of jobs).
  bool record_trace = false;
  /// Hard cap on processed jobs; CapacityError beyond it.
  std::uint64_t max_jobs = 100'000'000;
};

struct SimResult {
  /// Per task: maximum observed time disparity over jobs released in
  /// [warmup, duration); zero when no job carried >= 1 source stamp.
  std::vector<Duration> max_disparity;
  /// Per task: number of jobs whose disparity was observed.
  std::vector<std::int64_t> jobs_observed;
  /// Per task: total finished jobs.
  std::vector<std::int64_t> jobs_finished;
  /// Per task: maximum observed response time (sanity/schedulability).
  std::vector<Duration> max_response_time;
  /// Per task: times one of its jobs was preempted (always 0 under
  /// non-preemptive dispatch).
  std::vector<std::int64_t> preemptions;
  /// Present when SimOptions::record_trace.
  Trace trace;
};

/// Run the simulation.  The graph must pass TaskGraph::validate().
SimResult simulate(const TaskGraph& g, const SimOptions& opt);

}  // namespace ceta
