// Immediate-backward-job-chain reconstruction from a recorded trace
// (Definition 1), used to validate the analytical bounds against ground
// truth.
//
// Under implicit communication, the job of π^{i-1} in the immediate
// backward job chain is exactly the producer of the token the π^i job read
// on that channel, so the trace's ReadLinks reconstruct the chain directly.

#pragma once

#include <vector>

#include "graph/paths.hpp"
#include "graph/task_graph.hpp"
#include "sim/trace.hpp"

namespace ceta {

struct BackwardMeasurement {
  /// len(π̄_k) = r(tail job) − r(head job) for each tail job whose chain is
  /// complete (release ≥ warmup filter applied at collection).
  std::vector<Duration> lengths;
  /// Tail jobs whose backward chain hit an empty channel or a missing
  /// record (the paper defines len = 0 for those; we count them apart so
  /// bound validation is not polluted by start-up effects).
  std::size_t incomplete = 0;
};

/// Walk the immediate backward job chain of `tail_job` (a record of
/// chain.back()) to the chain head; nullptr if some channel was empty or
/// a record is missing.
const JobRecord* trace_head_job(const TaskGraph& g, const Trace& trace,
                                const Path& chain, const JobRecord& tail_job);

/// Measure backward times of `chain` over all recorded tail-task jobs
/// released at or after `warmup`.
BackwardMeasurement measured_backward_times(const TaskGraph& g,
                                            const Trace& trace,
                                            const Path& chain,
                                            Instant warmup = Instant::zero());

/// For each tail job (released ≥ warmup) whose backward chains on both
/// `lambda` and `nu` are complete, |t(λ̄¹) − t(ν̄¹)| — the quantity bounded
/// by Theorems 1 and 2.  Chain heads must be source tasks.
std::vector<Duration> measured_pair_timestamp_diffs(
    const TaskGraph& g, const Trace& trace, const Path& lambda,
    const Path& nu, Instant warmup = Instant::zero());

}  // namespace ceta
