// Execution traces recorded by the simulator (optional).
//
// A trace stores, per job: release/start/finish and — per input channel —
// which producer job's token it read.  That is exactly the information
// needed to reconstruct immediate backward job chains (Definition 1) and
// validate the backward-time bounds of Lemmas 4–6 against ground truth.

#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "graph/task.hpp"

namespace ceta {

/// Which token a job read on one of its input channels.
struct ReadLink {
  TaskId from = 0;              ///< producing task (channel's edge source)
  std::int64_t producer_job = -1;  ///< job index at the producer; -1 = empty
  Instant producer_release;     ///< release time of that producer job
};

struct JobRecord {
  std::int64_t index = 0;  ///< k-th job of its task (0-based)
  Instant release;
  Instant start;
  Instant finish;
  /// One entry per input channel, aligned with graph.predecessors(task).
  std::vector<ReadLink> reads;
};

struct TaskTrace {
  std::vector<JobRecord> jobs;  ///< ascending by index
};

struct Trace {
  std::vector<TaskTrace> tasks;  ///< indexed by TaskId

  /// The record of job `k` of `task`, or nullptr if not recorded.
  const JobRecord* find(TaskId task, std::int64_t k) const;
};

}  // namespace ceta
