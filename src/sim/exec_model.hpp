// Execution-time models for simulated jobs.
//
// The analyses bound behavior for *any* per-job execution time in
// [BCET, WCET]; the simulator draws concrete values.  Uniform sampling is
// the default for the evaluation's Sim curves; the extreme models are
// useful in tests (and adversarial mixes via the custom hook).

#pragma once

#include <functional>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "graph/task.hpp"

namespace ceta {

enum class ExecTimeModel {
  kWorstCase,  ///< always WCET
  kBestCase,   ///< always BCET
  kUniform,    ///< uniform in [BCET, WCET]
  kCustom,     ///< user hook
};

/// User hook: must return a value in [task.bcet, task.wcet].
using ExecTimeHook = std::function<Duration(const Task&, std::int64_t job,
                                            Rng&)>;

/// Draw the execution time of job `job` of `task` under the given model.
/// Validates that a custom hook stays within [BCET, WCET].
Duration sample_execution_time(ExecTimeModel model, const ExecTimeHook& hook,
                               const Task& task, std::int64_t job, Rng& rng);

}  // namespace ceta
