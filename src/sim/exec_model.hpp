// Execution-time models and counter-based draw streams for simulated jobs.
//
// The analyses bound behavior for *any* per-job execution time in
// [BCET, WCET]; the simulator draws concrete values.  Uniform sampling is
// the default for the evaluation's Sim curves; the extreme models are
// useful in tests (and adversarial mixes via the custom hook).
//
// Determinism contract
// --------------------
// Every random quantity of a simulation run is produced by a SimStream: a
// stateless counter-based generator whose draw for (task, job, purpose)
// is a pure function of the run seed and those coordinates — there is no
// evolving generator state.  Consequences, relied upon across the stack:
//  * a draw does not depend on *when* it is sampled, so event-processing
//    order, preemptions and queue implementation cannot perturb it;
//  * two engines simulating the same (graph, options, seed) sample
//    identical jitters and execution times — the basis of the old-vs-new
//    trace-equivalence sweep (reference_engine.hpp);
//  * Simulator::run_batch and the Monte-Carlo driver are bit-identical
//    regardless of thread count, chunking or scheduling order, because
//    replication k always runs under SimStream(first_seed + k);
//  * any per-run quantity (e.g. the jittered k-th release of a source) is
//    *recomputable* after the fact from (seed, task, k) alone — the
//    Monte-Carlo reaction-time accounting exploits this.
// Bounded draws use a fixed-point multiply of the 64-bit mix output; the
// bias is < range/2^64 and accepted in exchange for statelessness.

#pragma once

#include <cstdint>
#include <functional>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "graph/task.hpp"

namespace ceta {

enum class ExecTimeModel {
  kWorstCase,  ///< always WCET
  kBestCase,   ///< always BCET
  kUniform,    ///< uniform in [BCET, WCET]
  kCustom,     ///< user hook
};

/// User hook: must return a value in [task.bcet, task.wcet].  The Rng is
/// freshly seeded per (run seed, task, job) — see SimStream::kHook — so
/// hook draws inherit the determinism contract above.
using ExecTimeHook = std::function<Duration(const Task&, std::int64_t job,
                                            Rng&)>;

/// Stateless counter-based per-run draw stream (SplitMix64 finalizer over
/// the (seed, task, job, purpose) coordinates).
class SimStream {
 public:
  /// Purpose coordinate of a draw; extend rather than reuse so distinct
  /// quantities never share bits.
  enum Draw : std::uint32_t {
    kJitter = 0,  ///< release jitter in [0, task.jitter]
    kExec = 1,    ///< execution time under kUniform
    kHook = 2,    ///< seed of the per-job Rng handed to a custom hook
  };

  explicit SimStream(std::uint64_t seed) : seed_(seed) {}

  std::uint64_t seed() const { return seed_; }

  /// Raw 64-bit draw for (task, job, purpose); pure in all four inputs.
  std::uint64_t bits(TaskId task, std::int64_t job, Draw purpose) const {
    std::uint64_t h = seed_;
    h = mix(h + kGamma * (static_cast<std::uint64_t>(task) + 1));
    h = mix(h + kGamma * (static_cast<std::uint64_t>(job) + 1));
    h = mix(h + kGamma * (static_cast<std::uint64_t>(purpose) + 1));
    return h;
  }

  /// Uniform duration in [lo, hi] (inclusive) for (task, job, purpose).
  Duration uniform_duration(Duration lo, Duration hi, TaskId task,
                            std::int64_t job, Draw purpose) const {
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi.count() - lo.count()) + 1;
    const std::uint64_t raw = bits(task, job, purpose);
    // span == 0 means the full 2^64 range (unreachable for durations, but
    // keep the arithmetic total).
    if (span == 0) return Duration::ns(static_cast<std::int64_t>(raw));
    __extension__ using Wide = unsigned __int128;
    const auto off =
        static_cast<std::uint64_t>((static_cast<Wide>(raw) * span) >> 64);
    return lo + Duration::ns(static_cast<std::int64_t>(off));
  }

 private:
  static constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ull;

  static std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
  }

  std::uint64_t seed_;
};

/// Draw the execution time of job `job` of task `id` under the given
/// model.  Validates that a custom hook stays within [BCET, WCET].
Duration sample_execution_time(ExecTimeModel model, const ExecTimeHook& hook,
                               const Task& task, TaskId id, std::int64_t job,
                               const SimStream& stream);

/// The jittered release of job `job` of task `id`: `nominal` plus a
/// uniform draw in [0, task.jitter] (no draw when the task is
/// jitter-free).  Both engines and the Monte-Carlo reaction accounting
/// call exactly this.
Instant sample_release(const Task& task, TaskId id, std::int64_t job,
                       Instant nominal, const SimStream& stream);

}  // namespace ceta
