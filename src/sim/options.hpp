// Shared option/result contract of the simulation front doors.
//
// SimOptions is consumed by three entry points — the resettable
// sim::Simulator (simulator.hpp), the legacy simulate() shim
// (engine.hpp) and the Monte-Carlo replication driver (montecarlo.hpp) —
// all of which funnel through the same validate() gate, mirroring the
// DisparityOptions contract: a nonsensical combination raises
// InvalidOptionsError before any simulation state is built, instead of
// silently producing an empty trace.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/task_graph.hpp"
#include "sched/npfp_rta.hpp"
#include "sim/exec_model.hpp"
#include "sim/trace.hpp"

namespace ceta {

struct SimOptions {
  /// Dispatching-discipline override.  nullopt (the default) simulates
  /// each ECU under its own TaskGraph::policy(); setting a value forces
  /// that discipline on every ECU.  kPreemptive suspends the running job
  /// whenever a higher-priority job is released on its ECU; kEdf whenever
  /// a ready job has a strictly earlier absolute deadline (release +
  /// period).  Implicit communication reads stay at the job's *first*
  /// start under every discipline.
  std::optional<SchedPolicy> policy;
  /// Simulated horizon; jobs released at t < duration are processed to
  /// completion.
  Duration duration = Duration::s(1);
  /// Jobs released before this instant are excluded from disparity
  /// statistics (lets FIFO buffers fill — Lemma 6 holds "in the long
  /// term").
  Duration warmup = Duration::zero();
  /// Base seed of the run's counter-based draw streams (exec_model.hpp).
  /// Identical (graph, options, seed) triples replay bit-identically.
  std::uint64_t seed = 1;
  ExecTimeModel exec_model = ExecTimeModel::kUniform;
  ExecTimeHook exec_hook;  ///< used when exec_model == kCustom
  /// Record a full trace (memory ∝ number of jobs).
  bool record_trace = false;
  /// Hard cap on processed jobs; CapacityError beyond it.
  std::uint64_t max_jobs = 100'000'000;

  /// Throws InvalidOptionsError unless the combination is simulatable:
  ///  * duration must be positive and warmup must lie in [0, duration);
  ///  * max_jobs must be >= 1;
  ///  * exec_model == kCustom requires exec_hook, and a hook is rejected
  ///    under any other model (it would be silently ignored).
  /// Shared verbatim by Simulator, the simulate() shim and the
  /// Monte-Carlo driver.
  void validate() const;
};

struct SimResult {
  /// Per task: maximum observed time disparity over jobs released in
  /// [warmup, duration); zero when no job carried >= 1 source stamp.
  std::vector<Duration> max_disparity;
  /// Per task: number of jobs whose disparity was observed.
  std::vector<std::int64_t> jobs_observed;
  /// Per task: total finished jobs.
  std::vector<std::int64_t> jobs_finished;
  /// Per task: maximum observed response time (sanity/schedulability).
  std::vector<Duration> max_response_time;
  /// Per task: times one of its jobs was preempted (always 0 under
  /// non-preemptive dispatch).
  std::vector<std::int64_t> preemptions;
  /// Present when SimOptions::record_trace.
  Trace trace;
};

}  // namespace ceta
