// Reference simulator: the pre-calendar-queue engine, kept verbatim for
// differential testing.
//
// simulate_reference() implements exactly the §II-B semantics of
// simulator.hpp with the original data structures (binary heap event
// queue, std::deque channels, per-job Provenance vectors, per-run
// allocation).  Randomness goes through the same counter-based SimStream
// as the new core, so for any (graph, options, seed) the two engines
// process the identical event sequence and must produce field-for-field
// identical SimResults — the property pinned by the 100-seed equivalence
// sweep in tests/ and re-checked by bench/perf_sim.cpp on every perf run.
//
// Do not extend this engine; new functionality goes into Simulator.  Its
// only jobs are (a) being the oracle for trace equivalence and (b) being
// the baseline of the old-vs-new speedup reported in BENCH_sim.json.

#pragma once

#include "graph/task_graph.hpp"
#include "sim/options.hpp"

namespace ceta::sim {

/// Run one simulation on the reference engine.  Same contract as
/// Simulator::run(options.seed): validates options (InvalidOptionsError)
/// and the graph, throws CapacityError past max_jobs.  Flushes
/// "sim.reference.*" metrics so benchmarks can separate the two engines.
SimResult simulate_reference(const TaskGraph& g, const SimOptions& opt);

}  // namespace ceta::sim
