// Token provenance: which sensor samples an output originates from.
//
// Definition 2 needs, for each job J, the timestamps of *all* J's sources.
// The time disparity Δ(J) is the max pairwise difference of those
// timestamps, which equals (max − min) over the whole multiset, so it
// suffices to track, per source task, the min and max timestamp that
// reaches the job along any chain — a compact summary that merges in
// O(#sources) at every hop.

#pragma once

#include <vector>

#include "common/time.hpp"
#include "graph/task.hpp"

namespace ceta {

/// Min/max timestamp of samples of one source task reaching a token.
struct SourceStamp {
  TaskId source = 0;
  Instant min_ts;
  Instant max_ts;
};

/// Sorted-by-source compact provenance summary.
class Provenance {
 public:
  Provenance() = default;

  /// Provenance of a fresh source sample.
  static Provenance of_source(TaskId source, Instant timestamp);

  /// Merge another provenance into this one (union, keeping min/max).
  void merge(const Provenance& other);

  bool empty() const { return stamps_.empty(); }
  std::size_t num_sources() const { return stamps_.size(); }
  const std::vector<SourceStamp>& stamps() const { return stamps_; }

  /// Time disparity of a job whose inputs carry this provenance:
  /// max timestamp − min timestamp over all sources; zero when fewer than
  /// one stamp is present.
  Duration disparity() const;

  /// Oldest / newest source timestamps; precondition: not empty.
  Instant min_timestamp() const;
  Instant max_timestamp() const;

 private:
  std::vector<SourceStamp> stamps_;  // sorted by source id
};

}  // namespace ceta
