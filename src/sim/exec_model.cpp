#include "sim/exec_model.hpp"

#include "common/error.hpp"

namespace ceta {

Duration sample_execution_time(ExecTimeModel model, const ExecTimeHook& hook,
                               const Task& task, std::int64_t job, Rng& rng) {
  switch (model) {
    case ExecTimeModel::kWorstCase:
      return task.wcet;
    case ExecTimeModel::kBestCase:
      return task.bcet;
    case ExecTimeModel::kUniform:
      if (task.bcet == task.wcet) return task.wcet;
      return rng.uniform_duration(task.bcet, task.wcet);
    case ExecTimeModel::kCustom: {
      CETA_EXPECTS(static_cast<bool>(hook),
                   "sample_execution_time: kCustom requires a hook");
      const Duration e = hook(task, job, rng);
      CETA_EXPECTS(e >= task.bcet && e <= task.wcet,
                   "sample_execution_time: hook value outside [BCET, WCET]");
      return e;
    }
  }
  throw InvariantError("sample_execution_time: unknown model");
}

}  // namespace ceta
