#include "sim/exec_model.hpp"

#include "common/error.hpp"

namespace ceta {

Duration sample_execution_time(ExecTimeModel model, const ExecTimeHook& hook,
                               const Task& task, TaskId id, std::int64_t job,
                               const SimStream& stream) {
  switch (model) {
    case ExecTimeModel::kWorstCase:
      return task.wcet;
    case ExecTimeModel::kBestCase:
      return task.bcet;
    case ExecTimeModel::kUniform:
      if (task.bcet == task.wcet) return task.wcet;
      return stream.uniform_duration(task.bcet, task.wcet, id, job,
                                     SimStream::kExec);
    case ExecTimeModel::kCustom: {
      CETA_EXPECTS(static_cast<bool>(hook),
                   "sample_execution_time: kCustom requires a hook");
      Rng rng(stream.bits(id, job, SimStream::kHook));
      const Duration e = hook(task, job, rng);
      CETA_EXPECTS(e >= task.bcet && e <= task.wcet,
                   "sample_execution_time: hook value outside [BCET, WCET]");
      return e;
    }
  }
  throw InvariantError("sample_execution_time: unknown model");
}

Instant sample_release(const Task& task, TaskId id, std::int64_t job,
                       Instant nominal, const SimStream& stream) {
  if (task.jitter <= Duration::zero()) return nominal;
  return nominal + stream.uniform_duration(Duration::zero(), task.jitter, id,
                                           job, SimStream::kJitter);
}

}  // namespace ceta
