#include "sim/latency.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "sim/backward.hpp"

namespace ceta {

DataAgeMeasurement measured_data_ages(const TaskGraph& g, const Trace& trace,
                                      const Path& chain, Instant warmup) {
  CETA_EXPECTS(is_path(g, chain), "measured_data_ages: not a path");
  CETA_EXPECTS(chain.back() < trace.tasks.size(),
               "measured_data_ages: trace lacks the tail task");
  DataAgeMeasurement out;
  for (const JobRecord& tail : trace.tasks[chain.back()].jobs) {
    if (tail.release < warmup) continue;
    const JobRecord* head = trace_head_job(g, trace, chain, tail);
    if (head == nullptr) {
      ++out.incomplete;
      continue;
    }
    out.ages.push_back(tail.finish - head->release);
  }
  return out;
}

ReactionMeasurement measured_reaction_times(const TaskGraph& g,
                                            const Trace& trace,
                                            const Path& chain,
                                            Instant warmup, Instant horizon) {
  CETA_EXPECTS(is_path(g, chain), "measured_reaction_times: not a path");
  CETA_EXPECTS(g.is_source(chain.front()),
               "measured_reaction_times: chain head must be a source");
  CETA_EXPECTS(chain.back() < trace.tasks.size() &&
                   chain.front() < trace.tasks.size(),
               "measured_reaction_times: trace lacks chain endpoints");

  // Collect (finish time, traced sample release) of every complete tail
  // output, ordered by finish.
  struct Output {
    Instant finish;
    Instant sampled;
  };
  std::vector<Output> outputs;
  for (const JobRecord& tail : trace.tasks[chain.back()].jobs) {
    const JobRecord* head = trace_head_job(g, trace, chain, tail);
    if (head == nullptr) continue;
    outputs.push_back(Output{tail.finish, head->release});
  }
  std::sort(outputs.begin(), outputs.end(),
            [](const Output& a, const Output& b) { return a.finish < b.finish; });
  // Running maximum of the sampled timestamp: the first output index at
  // which the running max reaches r answers the stimulus at r.
  std::vector<Instant> run_max(outputs.size());
  Instant m = Duration::min();
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    m = std::max(m, outputs[i].sampled);
    run_max[i] = m;
  }

  ReactionMeasurement out;
  std::size_t idx = 0;
  for (const JobRecord& stim : trace.tasks[chain.front()].jobs) {
    if (stim.release < warmup || stim.release >= horizon) continue;
    // Stimuli are queried in ascending release order, so idx only moves
    // forward.
    while (idx < outputs.size() && run_max[idx] < stim.release) ++idx;
    if (idx == outputs.size()) {
      ++out.unanswered;
      continue;
    }
    out.reactions.push_back(outputs[idx].finish - stim.release);
  }
  return out;
}

}  // namespace ceta
