// Seeded Monte-Carlo replication driver over the resettable Simulator.
//
// Fans `replications` seeds (first_seed, first_seed + 1, ...) across the
// engine ThreadPool; every worker owns one Simulator + one histogram
// collector and simulates whole seed chunks, so the hot path allocates
// nothing and takes no locks.  Per-worker partial results are merged
// single-threaded after the fan-in; every merge (histogram counts, int64
// sums, min/max) is associative and commutative, and every sample is a
// pure function of its seed (see the determinism contract in
// exec_model.hpp) — so the aggregate is bit-identical for any thread
// count, chunking, or completion order.
//
// Collected per observed task, over all observed jobs of all runs:
//  * time disparity (max over source stamps - min over source stamps);
//  * data age (finish - oldest source stamp still reflected);
//  * reaction time (finish - release of each newly-reflected source job,
//    attributed via a per-(task, source) running maximum; the jittered
//    source releases are *recomputed* from the seed, which is what the
//    counter-based streams exist for).  With jitter windows larger than a
//    source period the attribution is approximate (samples clamp at 0).
//
// When analyzer bounds are supplied the driver cross-checks every
// empirical disparity sample against them (measured <= bound, the paper's
// Sim-vs-bound tightness experiment) and reports violations — the basis
// of the montecarlo_within_bounds verify property.

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "graph/task_graph.hpp"
#include "sim/options.hpp"

namespace ceta::sim {

struct MonteCarloOptions {
  /// Per-replication simulation options; `sim.seed` is ignored (seeds
  /// come from first_seed) and `sim.record_trace` must be off.
  SimOptions sim;
  std::uint64_t first_seed = 1;
  std::uint64_t replications = 1000;
  /// Worker threads; 0 = ThreadPool::default_concurrency().  The result
  /// is bit-identical for every value.
  std::size_t num_threads = 0;
  /// Tasks whose jobs feed the histograms; empty = the graph's sinks.
  std::vector<TaskId> observed;
  /// Analyzer disparity bounds parallel to `observed` (requires an
  /// explicit `observed`); empty = no cross-check.
  std::vector<Duration> bounds;
  /// Test-only fault injection: scales every disparity sample before the
  /// bound check (verify uses it to prove the property can fail).  Keep
  /// at 1.
  std::int64_t fault_scale_samples = 1;

  /// InvalidOptionsError unless the combination makes sense for graph
  /// `g`: sim validates, replications >= 1, record_trace off, observed
  /// tasks exist, bounds (if any) parallel to an explicit observed,
  /// fault_scale_samples >= 1.
  void validate(const TaskGraph& g) const;
};

/// Fixed-footprint log2 histogram of durations (bucket k holds samples
/// with bit_width(ns) == k; nonpositive samples land in bucket 0).
struct EmpiricalHistogram {
  std::array<std::uint64_t, 64> buckets{};
  std::uint64_t count = 0;
  Duration min_value = Duration::max();
  Duration max_value = Duration::min();
  std::int64_t sum_ns = 0;

  static std::size_t bucket_of(Duration v) {
    const std::int64_t ns = v.count();
    if (ns <= 0) return 0;
    return static_cast<std::size_t>(
        64 - __builtin_clzll(static_cast<std::uint64_t>(ns)));
  }

  void add(Duration v) {
    ++buckets[bucket_of(v)];
    ++count;
    min_value = std::min(min_value, v);
    max_value = std::max(max_value, v);
    sum_ns += v.count();
  }

  void merge(const EmpiricalHistogram& o) {
    for (std::size_t i = 0; i < buckets.size(); ++i) buckets[i] += o.buckets[i];
    count += o.count;
    min_value = std::min(min_value, o.min_value);
    max_value = std::max(max_value, o.max_value);
    sum_ns += o.sum_ns;
  }

  Duration mean() const {
    return count == 0 ? Duration::zero()
                      : Duration::ns(sum_ns / static_cast<std::int64_t>(count));
  }
};

/// Per-observed-task aggregate over all replications.
struct TaskMonteCarlo {
  TaskId task = 0;
  EmpiricalHistogram disparity;
  EmpiricalHistogram data_age;
  EmpiricalHistogram reaction;
  /// Bound cross-check (bound_checked when a bound was supplied).
  bool bound_checked = false;
  Duration bound = Duration::zero();
  std::uint64_t bound_violations = 0;
  /// Worst empirical disparity sample; tightness = worst / bound in
  /// [0, 1] when checked and bound > 0 (how close Sim gets to the bound).
  Duration worst_sample = Duration::zero();
  double tightness = 0.0;
};

struct MonteCarloResult {
  std::uint64_t replications = 0;
  std::uint64_t events = 0;
  std::uint64_t jobs_finished = 0;
  double wall_seconds = 0.0;
  double sims_per_sec = 0.0;
  double events_per_sec = 0.0;
  std::vector<TaskMonteCarlo> tasks;  ///< one per observed task
  /// False iff any disparity sample exceeded its supplied bound.
  bool all_within_bounds = true;
};

/// Run the fleet.  Validates options, fans out, merges, cross-checks.
MonteCarloResult run_monte_carlo(const TaskGraph& g,
                                 const MonteCarloOptions& opt);

}  // namespace ceta::sim
