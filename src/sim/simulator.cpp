#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>
#include <map>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace ceta {

void SimOptions::validate() const {
  if (duration <= Duration::zero()) {
    throw InvalidOptionsError("SimOptions: duration must be positive");
  }
  if (warmup < Duration::zero() || warmup >= duration) {
    throw InvalidOptionsError("SimOptions: warmup must lie in [0, duration)");
  }
  if (max_jobs == 0) {
    throw InvalidOptionsError("SimOptions: max_jobs must be >= 1");
  }
  if (exec_model == ExecTimeModel::kCustom && !exec_hook) {
    throw InvalidOptionsError("SimOptions: kCustom requires an exec_hook");
  }
  if (exec_model != ExecTimeModel::kCustom && exec_hook) {
    throw InvalidOptionsError(
        "SimOptions: exec_hook is set but exec_model is not kCustom (it "
        "would be silently ignored)");
  }
}

}  // namespace ceta

namespace ceta::sim {

namespace {
constexpr std::uint32_t kNoEcuIdx = UINT32_MAX;
}  // namespace

void SimBatchResult::merge(const SimBatchResult& other) {
  CETA_EXPECTS(max_disparity.size() == other.max_disparity.size(),
               "SimBatchResult::merge: task-count mismatch");
  replications += other.replications;
  events += other.events;
  for (std::size_t i = 0; i < max_disparity.size(); ++i) {
    max_disparity[i] = std::max(max_disparity[i], other.max_disparity[i]);
    jobs_observed[i] += other.jobs_observed[i];
    jobs_finished[i] += other.jobs_finished[i];
    max_response_time[i] =
        std::max(max_response_time[i], other.max_response_time[i]);
    preemptions[i] += other.preemptions[i];
  }
}

Simulator::Simulator(const TaskGraph& g, SimOptions opt)
    : g_(g), opt_(std::move(opt)) {
  opt_.validate();
  g_.validate();

  const std::size_t n = g_.num_tasks();

  // Dense ECU indexing, in order of first appearance by task id (the
  // reference engine's std::map over EcuId yields the same dense set; the
  // indices themselves never leak into results).
  std::map<EcuId, std::uint32_t> ecu_index;
  ecu_of_task_.assign(n, kNoEcuIdx);
  for (TaskId id = 0; id < n; ++id) {
    const EcuId e = g_.task(id).ecu;
    if (e == kNoEcu) continue;
    const auto [it, fresh] =
        ecu_index.emplace(e, static_cast<std::uint32_t>(ecu_index.size()));
    (void)fresh;
    ecu_of_task_[id] = it->second;
  }
  num_ecus_ = static_cast<std::uint32_t>(ecu_index.size());
  ecus_.resize(num_ecus_);
  ecu_policy_.assign(num_ecus_, SchedPolicy::kNonPreemptive);
  for (const auto& [ecu, idx] : ecu_index) {
    ecu_policy_[idx] = opt_.policy.value_or(g_.policy(ecu));
  }

  // Flatten per-task constants for the event handlers.
  rows_.resize(n);
  for (TaskId id = 0; id < n; ++id) {
    const Task& t = g_.task(id);
    TaskRow& r = rows_[id];
    r.offset = t.offset;
    r.period = t.period;
    r.jitter = t.jitter;
    r.bcet = t.bcet;
    r.wcet = t.wcet;
    r.priority = t.priority;
    r.ecu_idx = ecu_of_task_[id];
    r.is_let = t.comm == CommSemantics::kLet;
    r.is_source = g_.is_source(id);
  }

  // Dense source order (ascending task id).
  source_index_.assign(n, -1);
  for (TaskId id = 0; id < n; ++id) {
    if (g_.is_source(id)) {
      source_index_[id] = static_cast<std::int32_t>(sources_.size());
      sources_.push_back(id);
    }
  }

  // CSR input/output edge lists; inputs sorted to predecessors order so
  // trace ReadLinks line up (same rule as the reference engine).
  const std::size_t m = g_.edges().size();
  std::vector<std::vector<std::uint32_t>> ins(n), outs(n);
  for (std::size_t e = 0; e < m; ++e) {
    ins[g_.edges()[e].to].push_back(static_cast<std::uint32_t>(e));
    outs[g_.edges()[e].from].push_back(static_cast<std::uint32_t>(e));
  }
  for (TaskId id = 0; id < n; ++id) {
    const auto& preds = g_.predecessors(id);
    std::sort(ins[id].begin(), ins[id].end(),
              [&](std::uint32_t a, std::uint32_t b) {
                const TaskId fa = g_.edges()[a].from;
                const TaskId fb = g_.edges()[b].from;
                const auto pa = std::find(preds.begin(), preds.end(), fa);
                const auto pb = std::find(preds.begin(), preds.end(), fb);
                return pa < pb;
              });
  }
  in_off_.assign(n + 1, 0);
  out_off_.assign(n + 1, 0);
  for (TaskId id = 0; id < n; ++id) {
    in_off_[id + 1] = in_off_[id] + static_cast<std::uint32_t>(ins[id].size());
    out_off_[id + 1] =
        out_off_[id] + static_cast<std::uint32_t>(outs[id].size());
    in_edges_.insert(in_edges_.end(), ins[id].begin(), ins[id].end());
    out_edges_.insert(out_edges_.end(), outs[id].begin(), outs[id].end());
  }

  // Channel rings: one arena of token slots, one of provenance blocks.
  chan_off_.assign(m + 1, 0);
  chan_cap_.assign(m, 0);
  for (std::size_t e = 0; e < m; ++e) {
    chan_cap_[e] =
        static_cast<std::uint32_t>(g_.edges()[e].channel.buffer_size);
    chan_off_[e + 1] = chan_off_[e] + chan_cap_[e];
  }
  token_slots_.resize(chan_off_[m]);
  token_prov_.resize(static_cast<std::size_t>(chan_off_[m]) * prov_stride());
  chan_head_.assign(m, 0);
  chan_count_.assign(m, 0);
  scratch_prov_.resize(prov_stride());

  // Calendar geometry from the release lattice: a bucket is roughly an
  // eighth of the shortest period (rounded down to a power of two so the
  // bucket hash is a shift), and one "year" (1024 buckets) spans ~128 short
  // periods — next-release events almost always land inside it, and the
  // whole-year cursor sweep is paid rarely.
  Duration min_period = Duration::max();
  for (TaskId id = 0; id < n; ++id) {
    min_period = std::min(min_period, g_.task(id).period);
  }
  const std::uint64_t raw =
      std::max<std::int64_t>(std::int64_t{1}, min_period.count() / 8);
  const Duration width =
      Duration::ns(static_cast<std::int64_t>(std::bit_floor(raw)));
  queue_.configure(width, 1024);

  reset();
}

void Simulator::reset() {
  queue_.clear();
  for (EcuRun& e : ecus_) {
    e.busy = false;
    e.expected_finish_gen = 0;
    e.ready.clear();
  }
  std::fill(chan_head_.begin(), chan_head_.end(), 0u);
  std::fill(chan_count_.begin(), chan_count_.end(), 0u);
  free_jobs_.clear();
  for (std::uint32_t i = 0; i < jobs_.size(); ++i) free_jobs_.push_back(i);
  free_publish_.clear();
  for (std::uint32_t i = 0; i < publish_slots_.size(); ++i) {
    free_publish_.push_back(i);
  }
  pending_dispatch_.clear();
  seq_ = 0;
  finish_gen_ = 0;
  jobs_created_ = 0;
  events_run_ = 0;

  const std::size_t n = g_.num_tasks();
  result_.max_disparity.assign(n, Duration::zero());
  result_.jobs_observed.assign(n, 0);
  result_.jobs_finished.assign(n, 0);
  result_.max_response_time.assign(n, Duration::zero());
  result_.preemptions.assign(n, 0);
  result_.trace.tasks.clear();
  if (opt_.record_trace) result_.trace.tasks.resize(n);
}

// --- provenance blocks ------------------------------------------------------

void Simulator::prov_clear(Instant* p) const {
  const std::size_t s = sources_.size();
  for (std::size_t i = 0; i < s; ++i) p[i] = Duration::max();
  for (std::size_t i = 0; i < s; ++i) p[s + i] = Duration::min();
  p[2 * s] = Duration::max();      // lo
  p[2 * s + 1] = Duration::min();  // hi
}

void Simulator::prov_merge(Instant* dst, const Instant* src) const {
  const std::size_t s = sources_.size();
  // lo rides with the mins and hi with the maxes: index 2s is a min
  // aggregate, 2s+1 a max aggregate, so the two loops cover them too.
  for (std::size_t i = 0; i < s; ++i) dst[i] = std::min(dst[i], src[i]);
  dst[2 * s] = std::min(dst[2 * s], src[2 * s]);
  for (std::size_t i = 0; i < s; ++i) {
    dst[s + i] = std::max(dst[s + i], src[s + i]);
  }
  dst[2 * s + 1] = std::max(dst[2 * s + 1], src[2 * s + 1]);
}

bool Simulator::prov_empty(const Instant* p) const {
  return p[2 * sources_.size()] == Duration::max();
}

Duration Simulator::prov_disparity(const Instant* p) const {
  const std::size_t s = sources_.size();
  if (p[2 * s] == Duration::max()) return Duration::zero();
  return p[2 * s + 1] - p[2 * s];
}

// --- arenas -----------------------------------------------------------------

std::uint32_t Simulator::alloc_job() {
  if (free_jobs_.empty()) {
    jobs_.emplace_back();
    job_prov_.resize(jobs_.size() * prov_stride());
    free_jobs_.push_back(static_cast<std::uint32_t>(jobs_.size() - 1));
  }
  const std::uint32_t slot = free_jobs_.back();
  free_jobs_.pop_back();
  JobSlot& js = jobs_[slot];
  js.has_snapshot = false;
  js.started = false;
  js.reads.clear();
  // The provenance block stays uninitialized: read_inputs() fills it
  // exactly once before any consumer (on_finish) looks at it.
  return slot;
}

void Simulator::free_job(std::uint32_t slot) { free_jobs_.push_back(slot); }

std::uint32_t Simulator::alloc_publish() {
  if (free_publish_.empty()) {
    publish_slots_.emplace_back();
    publish_prov_.resize(publish_slots_.size() * prov_stride());
    free_publish_.push_back(
        static_cast<std::uint32_t>(publish_slots_.size() - 1));
  }
  const std::uint32_t slot = free_publish_.back();
  free_publish_.pop_back();
  return slot;
}

void Simulator::free_publish(std::uint32_t slot) {
  free_publish_.push_back(slot);
}

// --- channels ---------------------------------------------------------------

void Simulator::read_inputs(TaskId task, Instant* prov,
                            std::vector<ReadLink>* reads) {
  // `prov` arrives uninitialized: the first token is copied, later ones
  // merged, and the no-token case falls back to a sentinel clear — one
  // pass less than clear-then-merge-all.
  const std::size_t stride = prov_stride();
  bool fresh = true;
  for (std::uint32_t i = in_off_[task]; i < in_off_[task + 1]; ++i) {
    const std::uint32_t e = in_edges_[i];
    const bool has = chan_count_[e] > 0;
    std::uint32_t slot = 0;
    if (has) {
      // Reads return the *oldest* buffered token (FIFO sliding window).
      slot = chan_off_[e] + chan_head_[e];
      const Instant* src = token_prov_.data() + slot * stride;
      if (fresh) {
        std::copy_n(src, stride, prov);
        fresh = false;
      } else {
        prov_merge(prov, src);
      }
    }
    if (reads) {
      ReadLink link;
      link.from = g_.edges()[e].from;
      if (has) {
        link.producer_job = token_slots_[slot].job;
        link.producer_release = token_slots_[slot].release;
      }
      reads->push_back(link);
    }
  }
  if (fresh) prov_clear(prov);
}

void Simulator::write_outputs(TaskId task, const TokenSlot& tok,
                              const Instant* prov) {
  const std::size_t stride = prov_stride();
  for (std::uint32_t i = out_off_[task]; i < out_off_[task + 1]; ++i) {
    const std::uint32_t e = out_edges_[i];
    const std::uint32_t cap = chan_cap_[e];
    if (chan_count_[e] == cap) {  // evict the oldest
      if (++chan_head_[e] == cap) chan_head_[e] = 0;
      --chan_count_[e];
    }
    // head + count < 2*cap, so one conditional wrap replaces the modulo.
    std::uint32_t pos = chan_head_[e] + chan_count_[e];
    if (pos >= cap) pos -= cap;
    const std::uint32_t slot = chan_off_[e] + pos;
    token_slots_[slot] = tok;
    std::copy_n(prov, stride, token_prov_.data() + slot * stride);
    ++chan_count_[e];
  }
}

// --- event handlers ---------------------------------------------------------

void Simulator::push_release(TaskId task, std::int64_t job, Instant nominal) {
  if (++jobs_created_ > opt_.max_jobs) {
    throw CapacityError("simulate: job cap exceeded (max_jobs)");
  }
  const TaskRow& t = rows_[task];
  // Same draw as sample_release(), without the TaskGraph indirection.
  Instant actual = nominal;
  if (t.jitter > Duration::zero()) {
    actual = nominal + stream_.uniform_duration(Duration::zero(), t.jitter,
                                                task, job, SimStream::kJitter);
  }
  const EventKind kind =
      t.is_source ? EventKind::kSourceRelease : EventKind::kRelease;
  queue_.push(SimEvent{actual, kind, 0, seq_++, task, job});
}

void Simulator::schedule_next_release(TaskId task, std::int64_t job) {
  const TaskRow& t = rows_[task];
  const Instant next = t.offset + t.period * (job + 1);
  if (next < opt_.duration) push_release(task, job + 1, next);
}

Duration Simulator::exec_time(TaskId task, std::int64_t job) const {
  const TaskRow& t = rows_[task];
  switch (opt_.exec_model) {
    case ExecTimeModel::kWorstCase:
      return t.wcet;
    case ExecTimeModel::kBestCase:
      return t.bcet;
    case ExecTimeModel::kUniform:
      if (t.bcet == t.wcet) return t.wcet;
      return stream_.uniform_duration(t.bcet, t.wcet, task, job,
                                      SimStream::kExec);
    case ExecTimeModel::kCustom:
      break;
  }
  return sample_execution_time(opt_.exec_model, opt_.exec_hook, g_.task(task),
                               task, job, stream_);
}

void Simulator::on_source_release(const SimEvent& ev) {
  const Instant now = ev.time;
  // Source tasks execute in zero time; the token timestamp is the release
  // time (t(J) = r(J), §II-B).
  const TokenSlot tok{ev.task, ev.job, now, now};
  Instant* prov = scratch_prov_.data();
  prov_clear(prov);
  const auto si =
      static_cast<std::size_t>(source_index_[ev.task]);
  prov[si] = now;
  prov[sources_.size() + si] = now;
  prov[2 * sources_.size()] = now;      // lo
  prov[2 * sources_.size() + 1] = now;  // hi
  write_outputs(ev.task, tok, prov);
  ++result_.jobs_finished[ev.task];
  if (opt_.record_trace) {
    result_.trace.tasks[ev.task].jobs.push_back(
        JobRecord{ev.job, now, now, now, {}});
  }
  schedule_next_release(ev.task, ev.job);
}

void Simulator::on_release(const SimEvent& ev) {
  const std::uint32_t idx = ecu_of_task_[ev.task];
  const std::uint32_t slot = alloc_job();
  JobSlot& js = jobs_[slot];
  js.task = ev.task;
  js.job = ev.job;
  js.release = ev.time;
  // Implicit absolute deadline: actual release + period (orders EDF
  // dispatch; inert under the fixed-priority disciplines).
  js.deadline = ev.time + rows_[ev.task].period;
  if (rows_[ev.task].is_let) {
    // LET: inputs are logically read at release.
    read_inputs(ev.task, job_prov_.data() + slot * prov_stride(),
                opt_.record_trace ? &js.reads : nullptr);
    js.has_snapshot = true;
  }
  ecus_[idx].ready.push_back(slot);
  pending_dispatch_.push_back(idx);
  schedule_next_release(ev.task, ev.job);
}

void Simulator::maybe_preempt(std::uint32_t ecu_idx, Instant now) {
  const SchedPolicy policy = ecu_policy_[ecu_idx];
  if (policy == SchedPolicy::kNonPreemptive) return;
  EcuRun& ecu = ecus_[ecu_idx];
  if (!ecu.busy || ecu.ready.empty()) return;
  JobSlot& run = jobs_[ecu.running];
  bool higher_ready = false;
  if (policy == SchedPolicy::kPreemptive) {
    const std::int32_t running_prio = rows_[run.task].priority;
    for (const std::uint32_t s : ecu.ready) {
      if (rows_[jobs_[s].task].priority < running_prio) {
        higher_ready = true;
        break;
      }
    }
  } else {  // kEdf: a strictly earlier absolute deadline preempts
    for (const std::uint32_t s : ecu.ready) {
      if (jobs_[s].deadline < run.deadline) {
        higher_ready = true;
        break;
      }
    }
  }
  if (!higher_ready) return;
  run.remaining -= now - ecu.resumed_at;
  CETA_ASSERT(run.remaining > Duration::zero(),
              "preempting a job that should already have finished");
  ++result_.preemptions[run.task];
  ecu.expected_finish_gen = 0;  // invalidate the outstanding finish
  ecu.ready.push_back(ecu.running);
  ecu.busy = false;
}

void Simulator::dispatch(std::uint32_t ecu_idx, Instant now) {
  EcuRun& ecu = ecus_[ecu_idx];
  CETA_ASSERT(!ecu.busy, "dispatch on a busy ECU");
  if (ecu.ready.empty()) return;
  // Fixed priority: highest priority first (smaller value), ties by task
  // id, then by release (a preempted job resumes before a later
  // instance).  EDF: earliest absolute deadline first, same tie order.
  const bool edf = ecu_policy_[ecu_idx] == SchedPolicy::kEdf;
  auto best = ecu.ready.begin();
  for (auto it = ecu.ready.begin() + 1; it != ecu.ready.end(); ++it) {
    const JobSlot& ja = jobs_[*it];
    const JobSlot& jb = jobs_[*best];
    bool wins = false;
    if (edf) {
      wins = ja.deadline < jb.deadline ||
             (ja.deadline == jb.deadline &&
              (ja.task < jb.task ||
               (ja.task == jb.task && ja.release < jb.release)));
    } else {
      const std::int32_t pa = rows_[ja.task].priority;
      const std::int32_t pb = rows_[jb.task].priority;
      wins = pa < pb ||
             (pa == pb && (ja.task < jb.task ||
                           (ja.task == jb.task && ja.release < jb.release)));
    }
    if (wins) best = it;
  }
  const std::uint32_t slot = *best;
  ecu.ready.erase(best);

  JobSlot& js = jobs_[slot];
  if (!js.started) {
    if (!js.has_snapshot) {
      // Implicit communication: read every input channel at the first
      // start (preemptions do not re-read).
      read_inputs(js.task, job_prov_.data() + slot * prov_stride(),
                  opt_.record_trace ? &js.reads : nullptr);
    }
    js.start = now;
    js.remaining = exec_time(js.task, js.job);
    js.started = true;
  }

  ecu.busy = true;
  ecu.resumed_at = now;
  ecu.expected_finish_gen = ++finish_gen_;
  const Instant finish_at = now + js.remaining;
  ecu.running = slot;
  queue_.push(SimEvent{finish_at, EventKind::kFinish, ecu_idx, seq_++, 0,
                       static_cast<std::int64_t>(ecu.expected_finish_gen)});
}

void Simulator::on_finish(const SimEvent& ev) {
  EcuRun& ecu = ecus_[ev.ecu];
  // Discard finish events invalidated by a preemption.
  if (!ecu.busy ||
      static_cast<std::uint64_t>(ev.job) != ecu.expected_finish_gen) {
    return;
  }
  const std::uint32_t slot = ecu.running;
  JobSlot& js = jobs_[slot];
  const Instant now = ev.time;
  Instant* prov = job_prov_.data() + slot * prov_stride();

  // Implicit tasks write at finish; LET tasks publish at their deadline
  // (or at the finish instant if the deadline was missed, to preserve
  // causality).
  TokenSlot tok{js.task, js.job, js.release, now};
  if (rows_[js.task].is_let) {
    const Instant deadline = js.release + rows_[js.task].period;
    const Instant publish_at = std::max(now, deadline);
    tok.write = publish_at;
    const std::uint32_t ps = alloc_publish();
    publish_slots_[ps] = tok;
    std::copy_n(prov, prov_stride(),
                publish_prov_.data() + ps * prov_stride());
    queue_.push(SimEvent{publish_at, EventKind::kPublish, 0, seq_++, js.task,
                         static_cast<std::int64_t>(ps)});
  } else {
    write_outputs(js.task, tok, prov);
  }

  // Metrics.
  ++result_.jobs_finished[js.task];
  result_.max_response_time[js.task] =
      std::max(result_.max_response_time[js.task], now - js.release);
  if (js.release >= opt_.warmup && !prov_empty(prov)) {
    result_.max_disparity[js.task] =
        std::max(result_.max_disparity[js.task], prov_disparity(prov));
    ++result_.jobs_observed[js.task];
    if (observer_) {
      observer_->on_observed_job(js.task, js.job, js.release, js.start, now,
                                 prov, prov + sources_.size(),
                                 sources_.size());
    }
  }
  if (opt_.record_trace) {
    result_.trace.tasks[js.task].jobs.push_back(JobRecord{
        js.job, js.release, js.start, now, std::move(js.reads)});
  }

  ecu.busy = false;
  ecu.expected_finish_gen = 0;
  pending_dispatch_.push_back(ev.ecu);
  free_job(slot);
}

void Simulator::on_publish(const SimEvent& ev) {
  const auto ps = static_cast<std::uint32_t>(ev.job);
  write_outputs(ev.task, publish_slots_[ps],
                publish_prov_.data() + ps * prov_stride());
  free_publish(ps);
}

// --- run loop ---------------------------------------------------------------

void Simulator::run_core(std::uint64_t seed) {
  reset();
  stream_ = SimStream(seed);
  if (observer_) observer_->on_run_begin(seed);

  // Seed the first release of every task.
  for (TaskId id = 0; id < g_.num_tasks(); ++id) {
    const Task& t = g_.task(id);
    if (t.offset < opt_.duration) push_release(id, 0, t.offset);
  }

  // Two-phase processing per instant: first drain *all* events at the
  // current time (so that every job released at t is visible before any
  // arbitration decision at t — a lower-priority job must not grab the
  // ECU just because its release event was queued first), then dispatch
  // the affected ECUs.  Zero-execution jobs can push fresh finish events
  // at the same instant, hence the middle loop.
  std::uint64_t events_processed = 0;
  while (!queue_.empty()) {
    const Instant now = queue_.peek().time;
    while (!queue_.empty() && queue_.peek().time == now) {
      while (!queue_.empty() && queue_.peek().time == now) {
        const SimEvent ev = queue_.pop();
        ++events_processed;
        switch (ev.kind) {
          case EventKind::kSourceRelease:
            on_source_release(ev);
            break;
          case EventKind::kRelease:
            on_release(ev);
            break;
          case EventKind::kFinish:
            on_finish(ev);
            break;
          case EventKind::kPublish:
            on_publish(ev);
            break;
        }
      }
      for (const std::uint32_t idx : pending_dispatch_) {
        maybe_preempt(idx, now);
        if (!ecus_[idx].busy) dispatch(idx, now);
      }
      pending_dispatch_.clear();
    }
  }
  events_run_ = events_processed;
  events_total_ += events_processed;
}

namespace {

void flush_run_metrics(const SimResult& r, std::uint64_t runs,
                       std::uint64_t events) {
  std::uint64_t finished = 0;
  std::uint64_t preempted = 0;
  for (std::size_t id = 0; id < r.jobs_finished.size(); ++id) {
    finished += static_cast<std::uint64_t>(r.jobs_finished[id]);
    preempted += static_cast<std::uint64_t>(r.preemptions[id]);
  }
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  reg.counter("sim.runs").add(runs);
  reg.counter("sim.events").add(events);
  reg.counter("sim.jobs_finished").add(finished);
  reg.counter("sim.preemptions").add(preempted);
}

}  // namespace

SimResult Simulator::run(std::uint64_t seed) {
  obs::Span span("sim", "simulator.run");
  span.arg("tasks", static_cast<std::int64_t>(g_.num_tasks()));
  span.arg("duration_ns", opt_.duration.count());
  run_core(seed);
  flush_run_metrics(result_, 1, events_run_);
  return std::move(result_);
}

SimBatchResult Simulator::run_batch(std::uint64_t first_seed,
                                    std::uint64_t replications) {
  obs::Span span("sim", "simulator.run_batch");
  span.arg("replications", static_cast<std::int64_t>(replications));
  const std::size_t n = g_.num_tasks();
  SimBatchResult batch;
  batch.max_disparity.assign(n, Duration::zero());
  batch.jobs_observed.assign(n, 0);
  batch.jobs_finished.assign(n, 0);
  batch.max_response_time.assign(n, Duration::zero());
  batch.preemptions.assign(n, 0);

  std::uint64_t finished = 0;
  std::uint64_t preempted = 0;
  for (std::uint64_t k = 0; k < replications; ++k) {
    run_core(first_seed + k);
    ++batch.replications;
    batch.events += events_run_;
    for (std::size_t i = 0; i < n; ++i) {
      batch.max_disparity[i] =
          std::max(batch.max_disparity[i], result_.max_disparity[i]);
      batch.jobs_observed[i] += result_.jobs_observed[i];
      batch.jobs_finished[i] += result_.jobs_finished[i];
      batch.max_response_time[i] =
          std::max(batch.max_response_time[i], result_.max_response_time[i]);
      batch.preemptions[i] += result_.preemptions[i];
      finished += static_cast<std::uint64_t>(result_.jobs_finished[i]);
      preempted += static_cast<std::uint64_t>(result_.preemptions[i]);
    }
  }
  // Hot loop: flush the registry once per batch (metrics.hpp pattern).
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  reg.counter("sim.runs").add(batch.replications);
  reg.counter("sim.events").add(batch.events);
  reg.counter("sim.jobs_finished").add(finished);
  reg.counter("sim.preemptions").add(preempted);
  return batch;
}

}  // namespace ceta::sim
