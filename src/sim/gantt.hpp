// ASCII Gantt rendering of a recorded trace — a quick debugging view of
// who ran when and which samples were taken.
//
//   S       ^.........^.........^.........
//   filter  .####......####......####.....
//   fuse    ......##........##........##..
//
// Legend: '#' = a job of the row's task occupies the interval between its
// start and finish (suspensions of preempted jobs are not subdivided),
// '^' = a release with no execution in the same cell, '.' = idle.

#pragma once

#include <string>

#include "graph/task_graph.hpp"
#include "sim/trace.hpp"

namespace ceta {

struct GanttOptions {
  /// Rendered window [from, to); `to` <= `from` renders from the earliest
  /// to the latest recorded event.
  Instant from = Instant::zero();
  Instant to = Instant::zero();
  /// Number of time cells per row.
  int width = 80;
};

/// Render the trace as one row per task (graph order).  Returns an empty
/// string when the trace holds no jobs.
std::string render_gantt(const TaskGraph& g, const Trace& trace,
                         const GanttOptions& opt = {});

}  // namespace ceta
