#include "sim/reference_engine.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <vector>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sim/channel.hpp"
#include "sim/exec_model.hpp"

namespace ceta::sim {

namespace {

enum class EventKind : int {
  kFinish = 0,         // writes become visible first at any instant
  kPublish = 1,        // LET publishes too (before same-instant reads)
  kSourceRelease = 2,  // source tokens appear before same-instant starts
  kRelease = 3,
};

struct Event {
  Instant time;
  EventKind kind;
  std::uint64_t seq;  // deterministic tie-break
  TaskId task;        // release events
  std::int64_t job;   // release events
  std::size_t ecu;    // finish events (dense ECU index)

  bool operator>(const Event& o) const {
    if (time != o.time) return time > o.time;
    if (kind != o.kind) return static_cast<int>(kind) > static_cast<int>(o.kind);
    return seq > o.seq;
  }
};

/// A job anywhere between release and completion: freshly released,
/// running, or preempted with partial progress.
struct JobState {
  TaskId task = 0;
  std::int64_t job = -1;
  Instant release;
  /// Implicit absolute deadline (release + period); orders EDF dispatch.
  Instant deadline;
  /// LET jobs snapshot their inputs at release; implicit jobs read when
  /// they first start.
  bool has_snapshot = false;
  /// Set once at the first dispatch; preserved across preemptions.
  bool started = false;
  Instant start;
  Duration remaining;  // execution time left (valid once started)
  Provenance provenance;
  std::vector<ReadLink> reads;  // recorded only when tracing
};

struct EcuState {
  bool busy = false;
  JobState running;
  /// Progress timestamp of the running job (for preemption accounting).
  Instant resumed_at;
  /// Generation of the outstanding finish event; 0 = none.  A stale
  /// finish event (after a preemption) carries an older generation and is
  /// discarded.
  std::uint64_t expected_finish_gen = 0;
  std::vector<JobState> ready;
};

class ReferenceEngine {
 public:
  ReferenceEngine(const TaskGraph& g, const SimOptions& opt)
      : g_(g), opt_(opt), stream_(opt.seed) {
    opt_.validate();
    g_.validate();

    // Dense ECU indexing, plus the resolved discipline per dense index
    // (options override if set, else the graph's per-ECU policy).
    for (TaskId id = 0; id < g_.num_tasks(); ++id) {
      const EcuId e = g_.task(id).ecu;
      if (e != kNoEcu && !ecu_index_.count(e)) {
        const std::size_t idx = ecus_.size();
        ecu_index_[e] = idx;
        ecus_.emplace_back();
        ecu_policy_.push_back(opt_.policy.value_or(g_.policy(e)));
      }
    }

    // Channel per edge, indexed by edge order; per-task input/output maps.
    for (const Edge& e : g_.edges()) {
      channels_.emplace_back(e.channel.buffer_size);
    }
    inputs_.resize(g_.num_tasks());
    outputs_.resize(g_.num_tasks());
    for (std::size_t i = 0; i < g_.edges().size(); ++i) {
      const Edge& e = g_.edges()[i];
      inputs_[e.to].push_back(i);
      outputs_[e.from].push_back(i);
    }
    // Align each task's input channels with g.predecessors(task) order so
    // trace ReadLinks line up.
    for (TaskId id = 0; id < g_.num_tasks(); ++id) {
      auto& ins = inputs_[id];
      const auto& preds = g_.predecessors(id);
      std::sort(ins.begin(), ins.end(), [&](std::size_t a, std::size_t b) {
        const TaskId fa = g_.edges()[a].from;
        const TaskId fb = g_.edges()[b].from;
        const auto pa = std::find(preds.begin(), preds.end(), fa);
        const auto pb = std::find(preds.begin(), preds.end(), fb);
        return pa < pb;
      });
    }

    result_.max_disparity.assign(g_.num_tasks(), Duration::zero());
    result_.jobs_observed.assign(g_.num_tasks(), 0);
    result_.jobs_finished.assign(g_.num_tasks(), 0);
    result_.max_response_time.assign(g_.num_tasks(), Duration::zero());
    result_.preemptions.assign(g_.num_tasks(), 0);
    if (opt_.record_trace) result_.trace.tasks.resize(g_.num_tasks());
  }

  SimResult run() {
    // Seed the first release of every task.
    for (TaskId id = 0; id < g_.num_tasks(); ++id) {
      const Task& t = g_.task(id);
      if (t.offset < opt_.duration) {
        push_release(id, 0, t.offset);
      }
    }
    // Two-phase processing per instant (see simulator.cpp for the
    // rationale; the loops must stay structurally identical).
    std::uint64_t events_processed = 0;
    while (!queue_.empty()) {
      const Instant now = queue_.top().time;
      while (!queue_.empty() && queue_.top().time == now) {
        while (!queue_.empty() && queue_.top().time == now) {
          const Event ev = queue_.top();
          queue_.pop();
          ++events_processed;
          switch (ev.kind) {
            case EventKind::kSourceRelease:
              on_source_release(ev);
              break;
            case EventKind::kRelease:
              on_release(ev);
              break;
            case EventKind::kFinish:
              on_finish(ev);
              break;
            case EventKind::kPublish:
              on_publish(ev);
              break;
          }
        }
        for (const std::size_t idx : pending_dispatch_) {
          maybe_preempt(idx, now);
          if (!ecus_[idx].busy) dispatch(idx, now);
        }
        pending_dispatch_.clear();
      }
    }

    std::uint64_t finished = 0;
    std::uint64_t preempted = 0;
    for (TaskId id = 0; id < g_.num_tasks(); ++id) {
      finished += static_cast<std::uint64_t>(result_.jobs_finished[id]);
      preempted += static_cast<std::uint64_t>(result_.preemptions[id]);
    }
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    reg.counter("sim.reference.runs").add();
    reg.counter("sim.reference.events").add(events_processed);
    reg.counter("sim.reference.jobs_finished").add(finished);
    reg.counter("sim.reference.preemptions").add(preempted);
    return std::move(result_);
  }

 private:
  /// Schedule job `job` of `task`: nominal release offset + job·T, plus
  /// the SimStream's jitter draw for (task, job).
  void push_release(TaskId task, std::int64_t job, Instant nominal) {
    if (++jobs_created_ > opt_.max_jobs) {
      throw CapacityError("simulate: job cap exceeded (max_jobs)");
    }
    const Task& t = g_.task(task);
    const Instant actual = sample_release(t, task, job, nominal, stream_);
    const EventKind kind = g_.is_source(task) ? EventKind::kSourceRelease
                                              : EventKind::kRelease;
    queue_.push(Event{actual, kind, seq_++, task, job, 0});
  }

  void schedule_next_release(TaskId task, std::int64_t job) {
    const Task& t = g_.task(task);
    const Instant next = t.offset + t.period * (job + 1);
    if (next < opt_.duration) push_release(task, job + 1, next);
  }

  void on_source_release(const Event& ev) {
    const Instant now = ev.time;
    // Source tasks execute in zero time; the token timestamp is the
    // release time (t(J) = r(J), §II-B).
    Token token;
    token.producer_task = ev.task;
    token.producer_job = ev.job;
    token.producer_release = now;
    token.write_time = now;
    token.provenance = Provenance::of_source(ev.task, now);
    for (std::size_t ch : outputs_[ev.task]) {
      channels_[ch].write(token);
    }
    ++result_.jobs_finished[ev.task];
    if (opt_.record_trace) {
      result_.trace.tasks[ev.task].jobs.push_back(
          JobRecord{ev.job, now, now, now, {}});
    }
    schedule_next_release(ev.task, ev.job);
  }

  void on_release(const Event& ev) {
    const std::size_t idx = ecu_index_.at(g_.task(ev.task).ecu);
    JobState job;
    job.task = ev.task;
    job.job = ev.job;
    job.release = ev.time;
    job.deadline = ev.time + g_.task(ev.task).period;
    if (g_.task(ev.task).comm == CommSemantics::kLet) {
      // LET: inputs are logically read at release.
      read_inputs(ev.task, job.provenance, job.reads);
      job.has_snapshot = true;
    }
    ecus_[idx].ready.push_back(std::move(job));
    pending_dispatch_.push_back(idx);
    schedule_next_release(ev.task, ev.job);
  }

  /// Under preemptive scheduling: if a strictly higher-priority (FP) or
  /// strictly earlier-deadline (EDF) job is ready while another runs,
  /// suspend the running job (its pending finish event goes stale) and
  /// requeue it with its remaining work.
  void maybe_preempt(std::size_t ecu_idx, Instant now) {
    const SchedPolicy policy = ecu_policy_[ecu_idx];
    if (policy == SchedPolicy::kNonPreemptive) return;
    EcuState& ecu = ecus_[ecu_idx];
    if (!ecu.busy || ecu.ready.empty()) return;
    bool higher_ready = false;
    if (policy == SchedPolicy::kPreemptive) {
      const Task& running = g_.task(ecu.running.task);
      for (const JobState& j : ecu.ready) {
        if (g_.task(j.task).priority < running.priority) {
          higher_ready = true;
          break;
        }
      }
    } else {  // kEdf
      for (const JobState& j : ecu.ready) {
        if (j.deadline < ecu.running.deadline) {
          higher_ready = true;
          break;
        }
      }
    }
    if (!higher_ready) return;
    ecu.running.remaining -= now - ecu.resumed_at;
    CETA_ASSERT(ecu.running.remaining > Duration::zero(),
                "preempting a job that should already have finished");
    ++result_.preemptions[ecu.running.task];
    ecu.expected_finish_gen = 0;  // invalidate the outstanding finish
    ecu.ready.push_back(std::move(ecu.running));
    ecu.busy = false;
  }

  /// Read every input channel of `task`; fill provenance and (when
  /// tracing) the read links.
  void read_inputs(TaskId task, Provenance& provenance,
                   std::vector<ReadLink>& reads) {
    for (std::size_t ch : inputs_[task]) {
      const std::optional<Token> tok = channels_[ch].read();
      if (tok) provenance.merge(tok->provenance);
      if (opt_.record_trace) {
        ReadLink link;
        link.from = g_.edges()[ch].from;
        if (tok) {
          link.producer_job = tok->producer_job;
          link.producer_release = tok->producer_release;
        }
        reads.push_back(link);
      }
    }
  }

  void dispatch(std::size_t ecu_idx, Instant now) {
    EcuState& ecu = ecus_[ecu_idx];
    CETA_ASSERT(!ecu.busy, "dispatch on a busy ECU");
    if (ecu.ready.empty()) return;
    // Fixed priority: highest priority first (smaller value), ties by
    // task id, then by release (a preempted job resumes before a later
    // instance).  EDF: earliest absolute deadline first, same tie order.
    const bool edf = ecu_policy_[ecu_idx] == SchedPolicy::kEdf;
    auto best = ecu.ready.begin();
    for (auto it = ecu.ready.begin() + 1; it != ecu.ready.end(); ++it) {
      bool wins = false;
      if (edf) {
        wins = it->deadline < best->deadline ||
               (it->deadline == best->deadline &&
                (it->task < best->task ||
                 (it->task == best->task && it->release < best->release)));
      } else {
        const Task& a = g_.task(it->task);
        const Task& b = g_.task(best->task);
        wins = a.priority < b.priority ||
               (a.priority == b.priority &&
                (it->task < best->task ||
                 (it->task == best->task && it->release < best->release)));
      }
      if (wins) best = it;
    }
    JobState job = std::move(*best);
    ecu.ready.erase(best);

    if (!job.started) {
      if (!job.has_snapshot) {
        // Implicit communication: read every input channel at the first
        // start (preemptions do not re-read).
        read_inputs(job.task, job.provenance, job.reads);
      }
      job.start = now;
      job.remaining =
          sample_execution_time(opt_.exec_model, opt_.exec_hook,
                                g_.task(job.task), job.task, job.job, stream_);
      job.started = true;
    }

    ecu.busy = true;
    ecu.resumed_at = now;
    ecu.expected_finish_gen = ++finish_gen_;
    const Instant finish_at = now + job.remaining;
    ecu.running = std::move(job);
    queue_.push(Event{finish_at, EventKind::kFinish, seq_++, 0,
                      static_cast<std::int64_t>(ecu.expected_finish_gen),
                      ecu_idx});
  }

  void on_finish(const Event& ev) {
    EcuState& ecu = ecus_[ev.ecu];
    // Discard finish events invalidated by a preemption.
    if (!ecu.busy ||
        static_cast<std::uint64_t>(ev.job) != ecu.expected_finish_gen) {
      return;
    }
    JobState& run = ecu.running;
    const Instant now = ev.time;

    // Implicit tasks write at finish; LET tasks publish at their deadline
    // (or at the finish instant if the deadline was missed, to preserve
    // causality).
    Token token;
    token.producer_task = run.task;
    token.producer_job = run.job;
    token.producer_release = run.release;
    token.provenance = run.provenance;
    if (g_.task(run.task).comm == CommSemantics::kLet) {
      const Instant deadline = run.release + g_.task(run.task).period;
      const Instant publish_at = std::max(now, deadline);
      token.write_time = publish_at;
      const std::uint64_t key = seq_++;
      pending_publish_.emplace(key, std::move(token));
      queue_.push(Event{publish_at, EventKind::kPublish, key, run.task, 0, 0});
    } else {
      token.write_time = now;
      for (std::size_t ch : outputs_[run.task]) {
        channels_[ch].write(token);
      }
    }

    // Metrics.
    ++result_.jobs_finished[run.task];
    result_.max_response_time[run.task] =
        std::max(result_.max_response_time[run.task], now - run.release);
    if (run.release >= opt_.warmup && !run.provenance.empty()) {
      result_.max_disparity[run.task] = std::max(
          result_.max_disparity[run.task], run.provenance.disparity());
      ++result_.jobs_observed[run.task];
    }
    if (opt_.record_trace) {
      result_.trace.tasks[run.task].jobs.push_back(JobRecord{
          run.job, run.release, run.start, now, std::move(run.reads)});
    }

    ecu.busy = false;
    ecu.expected_finish_gen = 0;
    pending_dispatch_.push_back(ev.ecu);
  }

  void on_publish(const Event& ev) {
    const auto it = pending_publish_.find(ev.seq);
    CETA_ASSERT(it != pending_publish_.end(),
                "publish event without pending token");
    for (std::size_t ch : outputs_[ev.task]) {
      channels_[ch].write(it->second);
    }
    pending_publish_.erase(it);
  }

  const TaskGraph& g_;
  SimOptions opt_;
  SimStream stream_;

  std::map<EcuId, std::size_t> ecu_index_;
  std::vector<EcuState> ecus_;
  std::vector<SchedPolicy> ecu_policy_;  // resolved, by dense ECU index
  std::vector<SimChannel> channels_;           // by edge index
  std::vector<std::vector<std::size_t>> inputs_;   // task -> edge indices
  std::vector<std::vector<std::size_t>> outputs_;  // task -> edge indices

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::vector<std::size_t> pending_dispatch_;  // ECUs to arbitrate this instant
  std::map<std::uint64_t, Token> pending_publish_;  // LET tokens in flight
  std::uint64_t finish_gen_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t jobs_created_ = 0;

  SimResult result_;
};

}  // namespace

SimResult simulate_reference(const TaskGraph& g, const SimOptions& opt) {
  obs::Span span("sim", "simulate_reference");
  span.arg("tasks", static_cast<std::int64_t>(g.num_tasks()));
  span.arg("duration_ns", opt.duration.count());
  ReferenceEngine engine(g, opt);
  return engine.run();
}

}  // namespace ceta::sim
