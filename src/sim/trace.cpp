#include "sim/trace.hpp"

namespace ceta {

const JobRecord* Trace::find(TaskId task, std::int64_t k) const {
  if (task >= tasks.size()) return nullptr;
  const auto& jobs = tasks[task].jobs;
  // Jobs are appended in finish order; indices are unique per task, so a
  // binary search over index works after sorting-by-index is established.
  // Finish order can deviate from index order across ECUs? No — jobs of
  // one task finish in release order under non-preemptive FP on one ECU,
  // but be defensive and search linearly from the likely position.
  if (!jobs.empty()) {
    const std::int64_t first = jobs.front().index;
    const std::int64_t pos = k - first;
    if (pos >= 0 && pos < static_cast<std::int64_t>(jobs.size()) &&
        jobs[static_cast<std::size_t>(pos)].index == k) {
      return &jobs[static_cast<std::size_t>(pos)];
    }
  }
  for (const JobRecord& j : jobs) {
    if (j.index == k) return &j;
  }
  return nullptr;
}

}  // namespace ceta
