// A small fixed-size thread pool for fanning out independent analysis
// units (sinks, chain pairs) in AnalysisEngine::disparity_all.
//
// Design constraints, in order: correctness under TSan, deterministic
// results (the pool only schedules; each job is a pure function of the
// engine's immutable graph), and simplicity — analyses are CPU-bound and
// coarse-grained (milliseconds per sink), so a mutex-guarded deque is
// plenty and lock-free cleverness would buy nothing.
//
// Workers are std::jthread, so destruction is safe by construction: the
// destructor marks the pool as stopping, wakes every worker, lets them
// drain the remaining queue, and the jthread destructors join.

#pragma once

#include <cerrno>
#include <condition_variable>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "obs/tracer.hpp"

namespace ceta {

/// Fixed-size worker pool used by AnalysisEngine to fan out independent
/// analysis units; see the file comment for the design constraints.
class ThreadPool {
 public:
  /// Spawn `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads) {
    CETA_EXPECTS(num_threads >= 1, "ThreadPool: need at least one thread");
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this, i] {
        obs::set_thread_name("pool-worker-" + std::to_string(i));
        run();
      });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue, then joins all workers (jobs posted before
  /// destruction all execute).
  ~ThreadPool() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    ready_.notify_all();
  }

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// True when called from a worker thread of *any* ThreadPool.  Pool
  /// jobs must not submit sub-jobs and block on them — with no work
  /// stealing, every worker could end up waiting on queued sub-jobs no
  /// one is left to run.  Nested fan-out (e.g. the pairwise kernel inside
  /// disparity_all's per-sink jobs) checks this and runs inline instead.
  static bool current_thread_in_pool() { return in_worker_flag(); }

  /// Enqueue a fire-and-forget job.
  void post(std::function<void()> job) {
    CETA_EXPECTS(job != nullptr, "ThreadPool::post: empty job");
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(std::move(job));
    }
    ready_.notify_one();
  }

  /// Enqueue a job and get a future for its result; exceptions thrown by
  /// the job surface at future::get().
  template <typename F>
  std::future<std::invoke_result_t<F&>> submit(F&& f) {
    using R = std::invoke_result_t<F&>;
    // std::function requires copyable callables; hold the packaged_task
    // behind a shared_ptr.
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    post([task]() { (*task)(); });
    return result;
  }

  /// Ceiling on a CETA_THREADS override: anything above this is certainly
  /// a typo (or strtol's LONG_MAX saturation on overflow), not a real
  /// machine, and would make the constructor try to spawn that many
  /// jthreads.
  static constexpr long kMaxEnvThreads = 1024;

  /// Default worker count for analysis fan-out.  Precedence (documented in
  /// DESIGN.md): an explicit EngineOptions::num_threads bypasses this
  /// function entirely; otherwise a CETA_THREADS environment override wins
  /// (a plain integer in [1, kMaxEnvThreads]; anything else — zero,
  /// negative, non-numeric, overflowing — falls back to the hardware
  /// default with a stderr warning); otherwise hardware_concurrency,
  /// capped at 8 — past a small handful the per-sink units are too few to
  /// split.
  static std::size_t default_concurrency() {
    const unsigned hw = std::thread::hardware_concurrency();
    const std::size_t hw_default =
        hw == 0 ? 1 : (hw > 8 ? std::size_t{8} : static_cast<std::size_t>(hw));
    if (const char* env = std::getenv("CETA_THREADS"); env && *env) {
      char* end = nullptr;
      errno = 0;
      const long v = std::strtol(env, &end, 10);
      // strtol saturates to LONG_MIN/LONG_MAX with errno == ERANGE on
      // overflow while still consuming every digit, so the end-pointer
      // check alone would accept e.g. CETA_THREADS=99999999999999999999.
      if (end != nullptr && *end == '\0' && errno != ERANGE && v >= 1 &&
          v <= kMaxEnvThreads) {
        return static_cast<std::size_t>(v);
      }
      std::fprintf(stderr,
                   "ceta: ignoring invalid CETA_THREADS='%s' (want an "
                   "integer in [1, %ld]); using %zu worker(s)\n",
                   env, kMaxEnvThreads, hw_default);
    }
    return hw_default;
  }

 private:
  static bool& in_worker_flag() {
    static thread_local bool in_worker = false;
    return in_worker;
  }

  void run() {
    in_worker_flag() = true;
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping and drained
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      obs::Span span("engine", "pool.job");
      job();
    }
  }

  // Declaration order matters: workers_ must be destroyed (joined) while
  // the mutex, condition variable and queue are still alive.
  std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::jthread> workers_;
};

}  // namespace ceta
