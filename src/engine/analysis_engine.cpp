#include "engine/analysis_engine.hpp"

#include <chrono>
#include <future>
#include <utility>

#include "chain/latency.hpp"
#include "common/error.hpp"
#include "disparity/pair_kernel.hpp"
#include "engine/thread_pool.hpp"
#include "obs/tracer.hpp"

namespace ceta {

namespace {

/// Wall-clock duration for the engine's compute histograms.
Duration elapsed_since(std::chrono::steady_clock::time_point t0) {
  return Duration::ns(std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count());
}

/// FNV-1a over a byte-sized stream of values.
std::size_t hash_mix(std::size_t seed, std::uint64_t v) {
  seed ^= static_cast<std::size_t>(v) + 0x9e3779b97f4a7c15ull + (seed << 6) +
          (seed >> 2);
  return seed;
}

}  // namespace

std::size_t AnalysisEngine::ChainKeyHash::operator()(const ChainKey& k) const {
  std::size_t h = hash_mix(0, static_cast<std::uint64_t>(k.method));
  for (const TaskId id : k.chain) h = hash_mix(h, id);
  return h;
}

std::size_t AnalysisEngine::ReportKeyHash::operator()(
    const ReportKey& k) const {
  std::size_t h = hash_mix(0, k.task);
  h = hash_mix(h, static_cast<std::uint64_t>(k.method));
  h = hash_mix(h, static_cast<std::uint64_t>(k.hop_method));
  h = hash_mix(h, k.path_cap);
  h = hash_mix(h, static_cast<std::uint64_t>(k.truncation));
  h = hash_mix(h, static_cast<std::uint64_t>(k.keep_pairs));
  h = hash_mix(h, k.top_k);
  return h;
}

AnalysisEngine::Instruments::Instruments(obs::MetricsRegistry& r)
    : rta_runs(r.counter("engine.rta.runs")),
      hop_hits(r.counter("engine.hop.hits")),
      hop_misses(r.counter("engine.hop.misses")),
      chain_bound_hits(r.counter("engine.chain_bounds.hits")),
      chain_bound_misses(r.counter("engine.chain_bounds.misses")),
      chain_set_hits(r.counter("engine.chain_sets.hits")),
      chain_set_misses(r.counter("engine.chain_sets.misses")),
      report_hits(r.counter("engine.reports.hits")),
      report_misses(r.counter("engine.reports.misses")),
      rta_compute(r.histogram("engine.rta.compute")),
      disparity_compute(r.histogram("engine.disparity.compute")) {}

AnalysisEngine::AnalysisEngine(TaskGraph graph, EngineOptions opt)
    : graph_(std::move(graph)), opt_(opt) {
  graph_.validate();
}

AnalysisEngine::AnalysisEngine(TaskGraph graph, ResponseTimeMap rtm,
                               EngineOptions opt)
    : graph_(std::move(graph)), opt_(opt) {
  graph_.validate();
  CETA_EXPECTS(rtm.size() == graph_.num_tasks(),
               "AnalysisEngine: response-time map size mismatch");
  external_rtm_ = std::make_unique<ResponseTimeMap>(std::move(rtm));
}

AnalysisEngine::~AnalysisEngine() = default;

void AnalysisEngine::ensure_rta() const {
  const std::lock_guard<std::mutex> lock(rta_mutex_);
  if (rta_ || external_rtm_) return;
  obs::Span span("engine", "rta");
  span.arg("tasks", static_cast<std::int64_t>(graph_.num_tasks()));
  const auto t0 = std::chrono::steady_clock::now();
  rta_ = std::make_unique<RtaResult>(analyze_response_times(graph_, opt_.rta));
  ins_.rta_compute.observe(elapsed_since(t0));
  ins_.rta_runs.add();
}

const RtaResult& AnalysisEngine::rta() const {
  CETA_EXPECTS(!external_rtm_,
               "AnalysisEngine::rta: engine adopted an external "
               "response-time map and owns no RtaResult");
  ensure_rta();
  return *rta_;
}

const ResponseTimeMap& AnalysisEngine::response_times() const {
  if (external_rtm_) return *external_rtm_;
  ensure_rta();
  return rta_->response_time;
}

bool AnalysisEngine::schedulable() const {
  if (external_rtm_) {
    for (const Duration r : *external_rtm_) {
      if (r == Duration::max()) return false;
    }
    return true;
  }
  return rta().all_schedulable;
}

Duration AnalysisEngine::hop(TaskId from, TaskId to,
                             HopBoundMethod method) const {
  // Edge ids are dense (< num_tasks each), so (from, to, method) packs
  // losslessly into one word.
  const std::uint64_t key =
      (static_cast<std::uint64_t>(from) * graph_.num_tasks() + to) * 2 +
      static_cast<std::uint64_t>(method);
  obs::Span span("engine", "hop");
  {
    const std::lock_guard<std::mutex> lock(hop_mutex_);
    const auto it = hop_cache_.find(key);
    if (it != hop_cache_.end()) {
      ins_.hop_hits.add();
      span.arg("cache", "hit");
      return it->second;
    }
  }
  span.arg("cache", "miss");
  const Duration theta =
      hop_bound(graph_, from, to, response_times(), method);
  const std::lock_guard<std::mutex> lock(hop_mutex_);
  ins_.hop_misses.add();
  hop_cache_.emplace(key, theta);
  return theta;
}

BackwardBounds AnalysisEngine::chain_bounds(const Path& chain,
                                            HopBoundMethod method) const {
  ChainKey key{chain, method};
  obs::Span span("engine", "chain_bounds");
  {
    const std::lock_guard<std::mutex> lock(chain_bound_mutex_);
    const auto it = chain_bound_cache_.find(key);
    if (it != chain_bound_cache_.end()) {
      ins_.chain_bound_hits.add();
      span.arg("cache", "hit");
      return it->second;
    }
  }
  span.arg("cache", "miss");
  // B(π) first: bcbt_bound validates the chain (path of the graph, finite
  // WCRTs), exactly like the free backward_bounds entry point.  W(π) is
  // then assembled from the memoized hops — bit-identical to wcbt_bound,
  // which sums the same θs left to right.
  BackwardBounds b;
  b.bcbt = bcbt_bound(graph_, chain, response_times());
  if (chain.size() == 1) {
    b.wcbt = Duration::zero();
  } else {
    Duration total = Duration::zero();
    for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
      total += hop(chain[i], chain[i + 1], method);
    }
    b.wcbt = total + fifo_shift_upper(graph_, chain);
  }
  const std::lock_guard<std::mutex> lock(chain_bound_mutex_);
  ins_.chain_bound_misses.add();
  chain_bound_cache_.emplace(std::move(key), b);
  return b;
}

const std::vector<Path>& AnalysisEngine::chains(TaskId task,
                                                std::size_t path_cap) const {
  CETA_EXPECTS(task < graph_.num_tasks(), "AnalysisEngine::chains: bad id");
  const std::uint64_t key =
      static_cast<std::uint64_t>(task) ^ (static_cast<std::uint64_t>(path_cap)
                                          << 32);
  obs::Span span("engine", "chains");
  span.arg("task", static_cast<std::int64_t>(task));
  {
    const std::lock_guard<std::mutex> lock(chain_set_mutex_);
    const auto it = chain_set_cache_.find(key);
    if (it != chain_set_cache_.end()) {
      ins_.chain_set_hits.add();
      span.arg("cache", "hit");
      return *it->second;
    }
  }
  span.arg("cache", "miss");
  auto set = std::make_unique<std::vector<Path>>(
      enumerate_source_chains(graph_, task, path_cap));
  const std::lock_guard<std::mutex> lock(chain_set_mutex_);
  // A concurrent caller may have inserted meanwhile; keep the first entry
  // (both are identical) so previously returned references stay unique.
  auto [it, inserted] = chain_set_cache_.emplace(key, std::move(set));
  if (inserted) {
    ins_.chain_set_misses.add();
  } else {
    ins_.chain_set_hits.add();
  }
  return *it->second;
}

std::vector<TaskId> AnalysisEngine::fusing_tasks() const {
  std::vector<TaskId> out;
  for (TaskId id = 0; id < graph_.num_tasks(); ++id) {
    if (count_source_chains(graph_, id) >= 2) out.push_back(id);
  }
  return out;
}

BackwardBoundsFn AnalysisEngine::bounds_provider() const {
  return [this](const Path& chain, HopBoundMethod m) {
    return chain_bounds(chain, m);
  };
}

DisparityReport AnalysisEngine::disparity(TaskId task,
                                          const DisparityOptions& opt) const {
  CETA_EXPECTS(task < graph_.num_tasks(), "analyze_time_disparity: bad task id");
  const ReportKey key{task, opt.method, opt.hop_method, opt.path_cap,
                      opt.truncation, opt.keep_pairs,
                      opt.keep_pairs == KeepPairs::kTopK ? opt.top_k : 0};
  obs::Span span("engine", "disparity");
  span.arg("task", static_cast<std::int64_t>(task));
  {
    const std::lock_guard<std::mutex> lock(report_mutex_);
    const auto it = report_cache_.find(key);
    if (it != report_cache_.end()) {
      ins_.report_hits.add();
      span.arg("cache", "hit");
      return *it->second;
    }
  }
  span.arg("cache", "miss");
  const auto t0 = std::chrono::steady_clock::now();

  // The pairwise kernel (disparity/pair_kernel.hpp) does the O(|P|²) work,
  // bit-identically to analyze_time_disparity; the engine supplies its
  // memoized chain set and full-chain bounds (so the chain-bound cache
  // keeps amortizing across hop methods and later latency queries) and,
  // when the pair count warrants it, its thread pool for the intra-sink
  // tiled reduction.  Never hand the pool over from inside one of its own
  // workers (disparity_all's per-sink jobs): with no work stealing, tiles
  // queued behind blocked workers would deadlock.
  const std::vector<Path>& chain_list = chains(task, opt.path_cap);
  const std::size_t n = chain_list.size();
  std::vector<BackwardBounds> full;
  full.reserve(n);
  for (const Path& c : chain_list) {
    full.push_back(chain_bounds(c, opt.hop_method));
  }
  ThreadPool* tile_pool = nullptr;
  const std::size_t total_pairs = n < 2 ? 0 : n * (n - 1) / 2;
  if (opt_.num_threads != 1 && total_pairs >= 128 &&
      !ThreadPool::current_thread_in_pool()) {
    tile_pool = &pool();
  }
  auto report = std::make_shared<DisparityReport>(
      pair_kernel_analyze(graph_, chain_list, response_times(), opt,
                          tile_pool, &full));

  ins_.disparity_compute.observe(elapsed_since(t0));
  const std::lock_guard<std::mutex> lock(report_mutex_);
  auto [it, inserted] = report_cache_.emplace(key, std::move(report));
  if (inserted) {
    ins_.report_misses.add();
  } else {
    ins_.report_hits.add();
  }
  return *it->second;
}

ThreadPool& AnalysisEngine::pool() const {
  const std::lock_guard<std::mutex> lock(pool_mutex_);
  if (!pool_) {
    const std::size_t n = opt_.num_threads == 0
                              ? ThreadPool::default_concurrency()
                              : opt_.num_threads;
    pool_ = std::make_unique<ThreadPool>(n);
  }
  return *pool_;
}

std::vector<DisparityReport> AnalysisEngine::disparity_all(
    const std::vector<TaskId>& tasks, const DisparityOptions& opt) const {
  obs::Span span("engine", "disparity_all");
  span.arg("tasks", static_cast<std::int64_t>(tasks.size()));
  std::vector<DisparityReport> out(tasks.size());
  const std::size_t threads = opt_.num_threads == 0
                                  ? ThreadPool::default_concurrency()
                                  : opt_.num_threads;
  if (threads <= 1 || tasks.size() < 2) {
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      out[i] = disparity(tasks[i], opt);
    }
    return out;
  }

  // Fan each task out as one unit; results land positionally so the output
  // is independent of completion order.  Worker exceptions (CapacityError
  // on a dense sink, ...) surface at get(), like in the serial loop.
  ThreadPool& p = pool();
  std::vector<std::future<DisparityReport>> results;
  results.reserve(tasks.size());
  for (const TaskId task : tasks) {
    results.push_back(
        p.submit([this, task, &opt] { return disparity(task, opt); }));
  }
  for (std::size_t i = 0; i < results.size(); ++i) {
    out[i] = results[i].get();
  }
  return out;
}

LatencyReport AnalysisEngine::latency(const Path& chain,
                                      HopBoundMethod method) const {
  const ResponseTimeMap& rtm = response_times();
  LatencyReport r;
  r.backward = chain_bounds(chain, method);
  r.max_data_age = r.backward.wcbt + rtm.at(chain.back());
  r.min_data_age = r.backward.bcbt + graph_.task(chain.back()).bcet;
  r.max_reaction_time = max_reaction_time_bound(graph_, chain, rtm);
  return r;
}

BufferDesign AnalysisEngine::optimize_buffer_pair(const Path& lambda,
                                                  const Path& nu,
                                                  HopBoundMethod method) const {
  return design_buffer(graph_, lambda, nu, response_times(), method);
}

MultiBufferDesign AnalysisEngine::optimize_buffers(
    TaskId task, const DisparityOptions& opt) const {
  return design_buffers_for_task(graph_, task, response_times(), opt);
}

obs::MetricsSnapshot AnalysisEngine::metrics() const {
  return metrics_.snapshot();
}

EngineCacheStats AnalysisEngine::cache_stats() const {
  // Shim: the registry counters are the source of truth; this struct view
  // remains for existing callers.
  EngineCacheStats s;
  s.rta_runs = static_cast<std::size_t>(ins_.rta_runs.value());
  s.hop_hits = static_cast<std::size_t>(ins_.hop_hits.value());
  s.hop_misses = static_cast<std::size_t>(ins_.hop_misses.value());
  s.chain_bound_hits = static_cast<std::size_t>(ins_.chain_bound_hits.value());
  s.chain_bound_misses =
      static_cast<std::size_t>(ins_.chain_bound_misses.value());
  s.chain_set_hits = static_cast<std::size_t>(ins_.chain_set_hits.value());
  s.chain_set_misses = static_cast<std::size_t>(ins_.chain_set_misses.value());
  s.report_hits = static_cast<std::size_t>(ins_.report_hits.value());
  s.report_misses = static_cast<std::size_t>(ins_.report_misses.value());
  return s;
}

}  // namespace ceta
